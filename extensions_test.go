package cloudalloc

import (
	"bytes"
	"math"
	"testing"
)

func TestPublicAPIEpochs(t *testing.T) {
	scen := genScenario(t, 15, 31)
	cfg := DefaultEpochConfig()
	cfg.Epochs = 4
	results, err := RunEpochs(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.PlannedProfit <= 0 {
			t.Fatalf("epoch %d planned %v", r.Epoch, r.PlannedProfit)
		}
	}
}

func TestPublicAPISolveFrom(t *testing.T) {
	scen := genScenario(t, 15, 32)
	al, err := NewAllocator(scen)
	if err != nil {
		t.Fatal(err)
	}
	prev, _, err := al.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := al.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same scenario warm-started from its own solution should not lose
	// profit.
	if a.Profit() < prev.Profit()-1e-6 {
		t.Fatalf("warm restart lost profit: %v -> %v", prev.Profit(), a.Profit())
	}
}

func TestPublicAPIStochasticComparators(t *testing.T) {
	scen := genScenario(t, 12, 33)
	sa := DefaultSAConfig()
	sa.Anneal.Steps = 40
	fromSA, err := SolveAnnealing(scen, sa)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromSA.Validate(); err != nil {
		t.Fatal(err)
	}
	ga := DefaultGAConfig()
	ga.Population = 6
	ga.Generations = 3
	fromGA, err := SolveGenetic(scen, ga)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromGA.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExhaustiveMatchesHeuristicOnTiny(t *testing.T) {
	// The paper reports the heuristic within ~9% of the best found on
	// average; individual adversarial tiny instances can be worse, so the
	// claim is checked statistically over several seeds.
	var ratioSum float64
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		cfg := DefaultWorkloadConfig()
		cfg.NumClients = 3
		cfg.NumClusters = 2
		cfg.MinServersPerCluster = 2
		cfg.MaxServersPerCluster = 2
		cfg.Seed = 34 + seed
		scen, err := GenerateScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := SolveExhaustive(scen)
		if err != nil {
			t.Fatal(err)
		}
		al, err := NewAllocator(scen)
		if err != nil {
			t.Fatal(err)
		}
		prop, _, err := al.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ratio := prop.Profit() / exh.Profit()
		if ratio < 0.75 {
			t.Errorf("seed %d: heuristic %v far below exhaustive %v", cfg.Seed, prop.Profit(), exh.Profit())
		}
		ratioSum += ratio
	}
	if mean := ratioSum / seeds; mean < 0.9 {
		t.Fatalf("mean heuristic/exhaustive ratio %v below the paper's band", mean)
	}
}

func TestPublicAPIMultiTier(t *testing.T) {
	scen := genScenario(t, 1, 35)
	apps := []App{{
		ID: 0, Base: 8, Slope: 1, ArrivalRate: 1.5, PredictedRate: 1.5,
		Tiers: []Tier{
			{ProcTime: 0.4, CommTime: 0.5, DiskNeed: 0.5},
			{ProcTime: 0.6, CommTime: 0.4, DiskNeed: 1},
		},
	}}
	sol, err := SolveMultiTier(scen.Cloud, apps, DefaultMultiTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Served[0] {
		t.Fatal("app not served")
	}
	if math.IsNaN(sol.Profit) {
		t.Fatal("NaN profit")
	}
}

func TestPublicAPISLAHelpers(t *testing.T) {
	scen := genScenario(t, 10, 36)
	al, err := NewAllocator(scen)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := al.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var id ClientID = -1
	for i := 0; i < scen.NumClients(); i++ {
		if a.Assigned(ClientID(i)) {
			id = ClientID(i)
			break
		}
	}
	if id < 0 {
		t.Fatal("nothing assigned")
	}
	mean, err := a.ResponseTime(id)
	if err != nil {
		t.Fatal(err)
	}
	p95, err := ResponsePercentile(a, id, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p95 <= mean {
		t.Fatalf("P95 %v should exceed the mean %v", p95, mean)
	}
	missTight, err := DeadlineMissProbability(a, id, mean/10)
	if err != nil {
		t.Fatal(err)
	}
	missLoose, err := DeadlineMissProbability(a, id, mean*20)
	if err != nil {
		t.Fatal(err)
	}
	if missTight <= missLoose {
		t.Fatalf("tighter deadline must miss more: %v vs %v", missTight, missLoose)
	}
	if missTight <= 0 || missTight > 1 || missLoose < 0 || missLoose > 1 {
		t.Fatalf("probabilities out of range: %v %v", missTight, missLoose)
	}
	if _, err := DeadlineMissProbability(a, ClientID(scen.NumClients()-1), 1); err != nil {
		// Only fails when that client is unassigned; either way no panic.
		t.Logf("last client: %v", err)
	}
}

func TestPublicAPIControllerAndPredictors(t *testing.T) {
	scen := genScenario(t, 12, 37)
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	tr, err := GenerateTrace(base, 5, []Pattern{Diurnal{Period: 5, Amplitude: 0.3}}, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}

	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2) != len(tr) {
		t.Fatalf("trace round trip lost epochs: %d vs %d", len(tr2), len(tr))
	}

	// Every facade predictor constructor.
	ewma, err := NewEWMAPredictor(0.5)
	if err != nil {
		t.Fatal(err)
	}
	holt, err := NewHoltPredictor(0.6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := NewSlidingMeanPredictor(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Predictor{NewLastValuePredictor(), ewma, holt, mean} {
		m, err := BacktestPredictor(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		if m.Epochs != 4 {
			t.Fatalf("backtest epochs = %d", m.Epochs)
		}
	}

	cfg := DefaultControllerConfig()
	cfg.Predictor = NewLastValuePredictor()
	sum, err := RunController(scen, tr2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Decisions == 0 || len(sum.Steps) != 5 {
		t.Fatalf("controller run malformed: %+v", sum)
	}
}

func TestPublicAPISaveLoadAllocation(t *testing.T) {
	scen := genScenario(t, 8, 38)
	al, err := NewAllocator(scen, WithParallel(true), WithLocalSearchBudget(5))
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := al.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAllocation(scen, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Profit()-a.Profit()) > 1e-9 {
		t.Fatalf("profit %v != %v after save/load", got.Profit(), a.Profit())
	}
}

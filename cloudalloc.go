// Package cloudalloc is an open-source reproduction of "Maximizing Profit
// in Cloud Computing System via Resource Allocation" (Goudarzi & Pedram,
// ICDCS 2011): SLA-based, profit-maximizing allocation of processing,
// communication and storage resources in a cloud of heterogeneous
// clusters.
//
// The package is a facade over the internal implementation:
//
//   - GenerateScenario builds random problem instances with the paper's
//     parameter distributions (internal/workload).
//   - NewAllocator runs the paper's Resource_Alloc heuristic
//     (internal/core): a multi-start greedy initial solution built from
//     per-cluster Assign_Distribute evaluations, then a local search that
//     adjusts GPS shares, dispersion rates and the active server set.
//   - SolveModifiedPS and RunMonteCarlo are the paper's two comparators
//     (internal/baseline).
//   - Simulate drives a discrete-event simulation of an allocation to
//     validate the analytical M/M/1 GPS model (internal/sim).
//   - NewManager / NewLocalAgent / ServeAgent / DialAgent run the
//     distributed manager-and-cluster-agents decomposition, in-process or
//     over TCP (internal/cluster, internal/agentrpc).
//
// Profit evaluation — the inner loop of every solver and baseline — is
// incremental: the allocation keeps a dirty-tracked, per-cluster profit
// ledger (internal/alloc), so re-evaluating after a local-search move
// costs O(touched clients and servers) rather than O(cloud), and
// speculative moves commit or roll back through a transactional API.
//
// See DESIGN.md for the system inventory (§7 covers the evaluation
// engine) and EXPERIMENTS.md for the paper-vs-measured record of every
// reproduced figure.
package cloudalloc

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"

	"repro/internal/agentrpc"
	"repro/internal/alloc"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Core model types, re-exported for users of the public API.
type (
	// Scenario is a complete problem instance: cloud plus clients.
	Scenario = model.Scenario
	// Cloud describes clusters, servers and classes.
	Cloud = model.Cloud
	// Client is one SLA-bearing workload.
	Client = model.Client
	// Server is one machine in a cluster.
	Server = model.Server
	// ServerClass is a hardware type with capacities and costs.
	ServerClass = model.ServerClass
	// UtilityClass is an SLA class with a linear utility of response time.
	UtilityClass = model.UtilityClass
	// Cluster is a named group of servers.
	Cluster = model.Cluster
	// ClientID identifies a client in a scenario.
	ClientID = model.ClientID
	// ServerID identifies a server in a cloud.
	ServerID = model.ServerID
	// ClusterID identifies a cluster in a cloud.
	ClusterID = model.ClusterID
	// ServerClassID identifies a server class.
	ServerClassID = model.ServerClassID
	// UtilityClassID identifies an SLA utility class.
	UtilityClassID = model.UtilityClassID

	// Allocation is a solution: assignments, dispersion rates and shares.
	Allocation = alloc.Allocation
	// Portion is one client's slice on one server.
	Portion = alloc.Portion
	// Breakdown decomposes an allocation's profit.
	Breakdown = alloc.Breakdown

	// SolveStats reports what the allocator did.
	SolveStats = core.Stats
	// ProfitAttribution decomposes a solve's profit delta by phase.
	ProfitAttribution = core.Attribution
	// PhaseTimings reports wall-clock time per solver phase.
	PhaseTimings = core.PhaseTimings

	// PSConfig tunes the modified Proportional Share baseline.
	PSConfig = baseline.PSConfig
	// MCConfig tunes the Monte-Carlo envelope.
	MCConfig = baseline.MCConfig
	// Envelope is the Monte-Carlo best/worst profit summary.
	Envelope = baseline.Envelope

	// SimConfig tunes the discrete-event simulator.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result

	// WorkloadConfig parameterizes scenario generation.
	WorkloadConfig = workload.Config

	// Agent is a cluster-side worker of the distributed solver.
	Agent = cluster.Agent
	// Manager coordinates cluster agents.
	Manager = cluster.Manager
	// ManagerConfig tunes the distributed solve.
	ManagerConfig = cluster.ManagerConfig
	// ManagerStats reports a distributed solve.
	ManagerStats = cluster.ManagerStats
	// ManagerAttribution decomposes a distributed solve's profit by stage.
	ManagerAttribution = cluster.ManagerAttribution

	// Telemetry bundles a metrics registry, a span tracer and a
	// structured logger. A nil *Telemetry disables observability at zero
	// cost everywhere it is accepted.
	Telemetry = telemetry.Set
	// SpanRecord is one finished span from the telemetry trace buffer.
	SpanRecord = telemetry.SpanRecord
	// TraceRef addresses a span so child work — including work on the
	// far side of an agent RPC — can parent under it.
	TraceRef = telemetry.TraceRef
	// FlightEvent is one recorded solver decision from the flight
	// recorder ring.
	FlightEvent = telemetry.Event

	// OnlineService is the streaming serving path: lock-free admission
	// and placement decisions over a client churn stream, with deferred-
	// commit write filtering into warm incremental re-solves.
	OnlineService = online.Service
	// OnlineConfig tunes the online service (commit thresholds, solver
	// budget, background commits).
	OnlineConfig = online.Config
	// OnlineEvent is one element of the churn stream.
	OnlineEvent = online.Event
	// OnlineEventKind discriminates arrivals, departures and rate changes.
	OnlineEventKind = online.EventKind
	// OnlineDecision is the service's answer to one event.
	OnlineDecision = online.Decision
	// ChurnConfig parameterizes the seeded churn event generator.
	ChurnConfig = online.ChurnConfig
	// Churn generates a deterministic churn event stream over a scenario.
	Churn = online.Churn
)

// Churn stream event kinds, re-exported from internal/online.
const (
	OnlineArrive     = online.EventArrive
	OnlineDepart     = online.EventDepart
	OnlineRateChange = online.EventRateChange
)

// LoadScenario reads a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) { return model.LoadFile(path) }

// DefaultWorkloadConfig returns the paper's experimental parameters.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// GenerateScenario builds a random scenario from the configuration.
func GenerateScenario(cfg WorkloadConfig) (*Scenario, error) { return workload.Generate(cfg) }

// NewAllocation creates an empty allocation over a validated scenario.
func NewAllocation(scen *Scenario) *Allocation { return alloc.New(scen) }

// LoadAllocation rebuilds a saved allocation (Allocation.WriteJSON) over
// the scenario, re-validating every placement.
func LoadAllocation(scen *Scenario, r io.Reader) (*Allocation, error) {
	return alloc.ReadJSON(scen, r)
}

// Option customizes an Allocator.
type Option interface {
	apply(*core.Config)
}

type optionFunc func(*core.Config)

func (f optionFunc) apply(c *core.Config) { f(c) }

// WithSeed fixes the allocator's randomized client ordering.
func WithSeed(seed int64) Option {
	return optionFunc(func(c *core.Config) { c.Seed = seed })
}

// WithInitialSolutions sets the number of greedy multi-start passes
// (the paper uses 3).
func WithInitialSolutions(n int) Option {
	return optionFunc(func(c *core.Config) { c.NumInitSolutions = n })
}

// WithAlphaGranularity sets the dispersion-rate grid of the
// Assign_Distribute dynamic program.
func WithAlphaGranularity(g int) Option {
	return optionFunc(func(c *core.Config) { c.AlphaGranularity = g })
}

// WithParallel evaluates and improves clusters concurrently (the paper's
// distributed decision making, executed with goroutines).
func WithParallel(on bool) Option {
	return optionFunc(func(c *core.Config) { c.Parallel = on })
}

// WithWorkers sizes the solver's fan-out worker pools — the multi-start
// greedy phase and the reassignment pass's scoring stage: 0 (the
// default) uses GOMAXPROCS, 1 runs sequentially. Results are
// bit-identical for every worker count (each greedy start draws from
// its own seed-split RNG stream); only wall-clock time changes. The
// baselines have matching knobs: MCConfig.Workers fans out Monte-Carlo
// draws and PSConfig.Workers the active-fraction sweep.
func WithWorkers(n int) Option {
	return optionFunc(func(c *core.Config) { c.Workers = n })
}

// WithCandidateClusters enables index-pruned candidate generation: the
// greedy placement and reassignment phases rank clusters by a provable
// upper bound on the client's placement gain and evaluate only the top
// k exactly, pruning the rest. 0 (the default) keeps the exhaustive
// scan; k >= the cluster count reproduces it bit-for-bit. Small k makes
// per-client work O(k) instead of O(clusters) at a sub-percent profit
// cost on paper-sized instances.
func WithCandidateClusters(k int) Option {
	return optionFunc(func(c *core.Config) { c.CandidateClusters = k })
}

// WithShards partitions the clusters across n independent shards that
// build and improve the solution in parallel, with a serial cross-shard
// reconciliation pass between rounds. Sharding changes the search
// trajectory (it is deterministic at any worker count, but not
// equivalent to the unsharded solve); use it for very large instances
// where whole-cloud passes are too slow. 0 or 1 disables sharding.
func WithShards(n int) Option {
	return optionFunc(func(c *core.Config) { c.Shards = n })
}

// WithLocalSearchBudget bounds the improvement loop.
func WithLocalSearchBudget(iters int) Option {
	return optionFunc(func(c *core.Config) { c.MaxLocalSearchIters = iters })
}

// WithShadowPriceScale tunes the calibrated capacity shadow price used by
// the greedy share formula (>1 reserves more headroom for future clients).
func WithShadowPriceScale(scale float64) Option {
	return optionFunc(func(c *core.Config) { c.ShadowPriceScale = scale })
}

// WithTelemetry routes solver metrics, phase spans and ledger counters
// to the set (nil leaves observability disabled).
func WithTelemetry(set *Telemetry) Option {
	return optionFunc(func(c *core.Config) { c.Telemetry = set })
}

// NewTelemetry builds an enabled telemetry set: a fresh metrics
// registry, a default-capacity span tracer and the given logger (a
// discarding logger when nil). Hand it to solvers, agents, managers and
// RPC endpoints, then expose it with DebugHandler.
func NewTelemetry(log *slog.Logger) *Telemetry { return telemetry.New(log) }

// NewTextLogger builds a structured text logger writing to w; level is
// an slog level ("info" semantics at 0, "debug" at -4).
func NewTextLogger(w io.Writer, level int) *slog.Logger {
	return telemetry.NewTextLogger(w, slog.Level(level))
}

// DebugHandler serves the set's observability surface over HTTP:
// /metrics (Prometheus text), /debug/vars (expvar JSON), /debug/trace
// (recent spans as JSON, ASCII trees with ?format=tree, Chrome
// trace-event JSON with ?format=chrome), /debug/flight (recent flight-
// recorder events) and /debug/pprof. A nil set yields a handler whose
// endpoints report telemetry as disabled.
func DebugHandler(set *Telemetry) http.Handler { return telemetry.Handler(set) }

// ConfigureFlight replaces the set's flight recorder: the ring retains
// the last capacity events (0 keeps the default) and client-scoped
// events are sampled 1-in-every by a deterministic hash of the client ID
// (<=1 records all). Call before handing the set to a solver. No-op on
// a nil set.
func ConfigureFlight(set *Telemetry, capacity, every int) {
	if set != nil {
		set.Flight = telemetry.NewFlight(capacity, every)
	}
}

// WriteChromeTrace writes spans as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing (cloudalloc solve -trace-out).
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return telemetry.WriteChromeTrace(w, spans)
}

// WriteTraceTree renders spans as indented ASCII trace trees, one per
// TraceID, the same view /debug/trace?format=tree serves.
func WriteTraceTree(w io.Writer, spans []SpanRecord) {
	telemetry.WriteTraceTree(w, spans)
}

// Allocator runs the paper's Resource_Alloc heuristic.
type Allocator struct {
	solver *core.Solver
}

// NewAllocator validates the scenario and prepares a solver.
func NewAllocator(scen *Scenario, opts ...Option) (*Allocator, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	solver, err := core.NewSolver(scen, cfg)
	if err != nil {
		return nil, err
	}
	return &Allocator{solver: solver}, nil
}

// Solve runs the full heuristic and returns the allocation.
func (al *Allocator) Solve() (*Allocation, SolveStats, error) { return al.solver.Solve() }

// Improve runs the local-search phases on an existing allocation.
func (al *Allocator) Improve(a *Allocation) {
	al.solver.ImproveLocal(a, nil)
}

// Evaluate returns the approximate profit and portions of placing client
// id on cluster k without mutating the allocation.
func (al *Allocator) Evaluate(a *Allocation, id ClientID, k ClusterID) (float64, []Portion, error) {
	return al.solver.AssignDistribute(a, id, k)
}

// DefaultOnlineConfig returns production-shaped online-service defaults:
// synchronous (deterministic) commits at 10% relative drift with a cheap
// incremental solver. Raise CommitRel/CommitFloor to amortize commits
// over more events; set Background for lock-free serving latency.
func DefaultOnlineConfig() OnlineConfig { return online.DefaultConfig() }

// NewOnlineService starts the streaming allocation service over the
// scenario (clients with zero rates start absent). The service owns a
// deep copy; the caller's scenario is not touched.
func NewOnlineService(scen *Scenario, cfg OnlineConfig) (*OnlineService, error) {
	return online.New(scen, cfg)
}

// DefaultChurnConfig returns a balanced churn mix: equal arrivals and
// departures with twice as much rate jitter, no flash crowd.
func DefaultChurnConfig() ChurnConfig { return online.DefaultChurnConfig() }

// NewChurn builds the deterministic churn event generator the online
// benchmark and replay tests drive the service with.
func NewChurn(scen *Scenario, cfg ChurnConfig) *Churn { return online.NewChurn(scen, cfg) }

// DefaultPSConfig returns the modified Proportional Share defaults.
func DefaultPSConfig() PSConfig { return baseline.DefaultPSConfig() }

// SolveModifiedPS runs the modified Proportional Share baseline.
func SolveModifiedPS(scen *Scenario, cfg PSConfig) (*Allocation, error) {
	return baseline.SolveModifiedPS(scen, cfg)
}

// DefaultMCConfig returns a medium-effort Monte-Carlo configuration.
func DefaultMCConfig() MCConfig { return baseline.DefaultMCConfig() }

// RunMonteCarlo computes the random-assignment best/worst envelope.
func RunMonteCarlo(scen *Scenario, cfg MCConfig) (Envelope, error) {
	return baseline.RunMonteCarlo(scen, cfg)
}

// RandomAllocation builds one random-assignment solution using the
// allocator's cluster-level machinery (useful as a comparison point).
func (al *Allocator) RandomAllocation(rng *rand.Rand) (*Allocation, error) {
	return baseline.RandomAssignment(al.solver, rng)
}

// DefaultSimConfig returns the simulator defaults.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate runs the discrete-event simulation of an allocation.
func Simulate(a *Allocation, cfg SimConfig) (*SimResult, error) { return sim.Simulate(a, cfg) }

// DefaultManagerConfig returns the distributed-solve defaults.
func DefaultManagerConfig() ManagerConfig { return cluster.DefaultManagerConfig() }

// NewLocalAgent builds an in-process agent for cluster k.
func NewLocalAgent(scen *Scenario, k ClusterID, opts ...Option) (Agent, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cluster.NewLocalAgent(scen, k, cfg)
}

// NewManager wires a central manager to one agent per cluster.
func NewManager(scen *Scenario, agents []Agent, cfg ManagerConfig) (*Manager, error) {
	return cluster.NewManager(scen, agents, cfg)
}

// AgentServer serves one cluster agent over TCP.
type AgentServer = agentrpc.Server

// ServeAgent wraps an agent behind a TCP listener; call Serve on the
// returned server.
func ServeAgent(l net.Listener, ag Agent) *AgentServer { return agentrpc.NewServer(l, ag) }

// ServeAgentWith is ServeAgent with server-side RPC telemetry (per-op
// call/error counters, latency histograms, byte counters and spans).
func ServeAgentWith(l net.Listener, ag Agent, set *Telemetry) *AgentServer {
	return agentrpc.NewServer(l, ag, agentrpc.WithTelemetry(set))
}

// DialAgent connects to a served agent and returns it as an Agent.
func DialAgent(addr string) (Agent, error) { return agentrpc.Dial(addr) }

// DialAgentWith is DialAgent with client-side RPC telemetry.
func DialAgentWith(addr string, set *Telemetry) (Agent, error) {
	return agentrpc.Dial(addr, agentrpc.WithTelemetry(set))
}

// AgentCallPolicy shapes the client side's fault handling on a dialed
// agent: per-attempt conn deadlines, retry with deterministic backoff +
// jitter, connection-pool bounds and read-only call hedging.
type AgentCallPolicy = agentrpc.Policy

// DefaultAgentCallPolicy returns the production defaults (generous
// deadline, a few retries, hedging off).
func DefaultAgentCallPolicy() AgentCallPolicy { return agentrpc.DefaultPolicy() }

// DialAgentPolicy is DialAgentWith with an explicit call policy; set is
// optional (nil disables client-side RPC telemetry).
func DialAgentPolicy(addr string, pol AgentCallPolicy, set *Telemetry) (Agent, error) {
	opts := []agentrpc.Option{agentrpc.WithPolicy(pol)}
	if set != nil {
		opts = append(opts, agentrpc.WithTelemetry(set))
	}
	return agentrpc.Dial(addr, opts...)
}

// DeadlineMissProbability returns the analytic probability that a request
// of client id exceeds the deadline under allocation a, aggregated over
// the client's portions (tail of the tandem M/M/1 sojourn times).
func DeadlineMissProbability(a *Allocation, id ClientID, deadline float64) (float64, error) {
	scen := a.Scenario()
	if !a.Assigned(id) {
		return 0, fmt.Errorf("cloudalloc: client %d unassigned", id)
	}
	cl := &scen.Clients[id]
	var portions []queueing.Portion
	for _, p := range a.Portions(id) {
		class := scen.Cloud.ServerClass(p.Server)
		portions = append(portions, queueing.Portion{
			Alpha:  p.Alpha,
			Shares: queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
			Caps:   queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
		})
	}
	return queueing.DeadlineMissProbability(portions,
		queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
		cl.PredictedRate, deadline)
}

// ResponsePercentile returns the analytic q-quantile of client id's
// response time on one of its portions aggregated as the worst portion
// percentile (a conservative SLA bound).
func ResponsePercentile(a *Allocation, id ClientID, q float64) (float64, error) {
	scen := a.Scenario()
	if !a.Assigned(id) {
		return 0, fmt.Errorf("cloudalloc: client %d unassigned", id)
	}
	cl := &scen.Clients[id]
	var worst float64
	for _, p := range a.Portions(id) {
		class := scen.Cloud.ServerClass(p.Server)
		v, err := queueing.TandemSojournPercentile(
			queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
			queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
			queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
			p.Alpha*cl.PredictedRate, q,
		)
		if err != nil {
			return 0, err
		}
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}

package cloudalloc

// Benchmark harness: one benchmark per paper artifact (see DESIGN.md §4).
//
//	BenchmarkFig4NormalizedProfit — Figure 4 series (proposed / modified
//	  PS / best-found, normalized). Normalized profits are attached as
//	  custom metrics (proposed/best, ps/best).
//	BenchmarkFig5WorstCase — Figure 5 worst-case envelope metrics.
//	BenchmarkComplexityScaling — Section VI decision-time scaling:
//	  sequential vs cluster-parallel solver across client counts.
//	BenchmarkDistributedSpeedup — manager + per-cluster agents vs the
//	  sequential solver.
//	BenchmarkSimValidation — analytic model vs discrete-event simulation
//	  (mean relative response-time error as a metric).
//	BenchmarkAblations — profit of each solver variant relative to full.
//
// Absolute numbers are hardware-dependent; the paper-shape assertions
// live in the test suite and EXPERIMENTS.md records a full run.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/multitier"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScenario builds a deterministic paper-shaped scenario.
func benchScenario(b *testing.B, n int, seed int64) *model.Scenario {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return scen
}

// BenchmarkFig4NormalizedProfit regenerates the Figure 4 comparison on a
// reduced sweep per iteration and reports the normalized series as
// metrics. Run cmd/experiments -run fig4 for the full paper-scale sweep.
func BenchmarkFig4NormalizedProfit(b *testing.B) {
	for _, n := range []int{20, 50, 100, 200} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			cfg := experiment.DefaultSweepConfig()
			cfg.ClientCounts = []int{n}
			cfg.ScenariosPerCount = 3
			cfg.ScenariosAtMaxCount = 3
			cfg.MCDraws = 30
			cfg.MCPasses = 3
			var last experiment.Fig4Row
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				points, err := experiment.RunSweep(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = experiment.Fig4Rows(points)[0]
			}
			b.ReportMetric(last.Proposed, "proposed/best")
			b.ReportMetric(last.ModifiedPS, "ps/best")
			b.ReportMetric(last.BestFound, "mc/best")
		})
	}
}

// BenchmarkFig5WorstCase regenerates the Figure 5 worst-case envelope on
// a reduced sweep per iteration.
func BenchmarkFig5WorstCase(b *testing.B) {
	for _, n := range []int{20, 100} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			cfg := experiment.DefaultSweepConfig()
			cfg.ClientCounts = []int{n}
			cfg.ScenariosPerCount = 3
			cfg.ScenariosAtMaxCount = 3
			cfg.MCDraws = 30
			cfg.MCPasses = 3
			var last experiment.Fig5Row
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				points, err := experiment.RunSweep(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = experiment.Fig5Rows(points)[0]
			}
			b.ReportMetric(last.WorstInitialBefore, "worstInit/best")
			b.ReportMetric(last.WorstInitialAfter, "worstLS/best")
			b.ReportMetric(last.WorstProposed, "worstProposed/best")
		})
	}
}

// BenchmarkComplexityScaling measures one full solve per iteration at
// each client count, sequential and cluster-parallel (the paper's
// distributed speedup claim).
func BenchmarkComplexityScaling(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		for _, parallel := range []bool{false, true} {
			name := fmt.Sprintf("clients=%d/parallel=%v", n, parallel)
			b.Run(name, func(b *testing.B) {
				scen := benchScenario(b, n, int64(n))
				cfg := core.DefaultConfig()
				cfg.Parallel = parallel
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					solver, err := core.NewSolver(scen, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := solver.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDistributedSpeedup runs the manager-with-agents decomposition.
func BenchmarkDistributedSpeedup(b *testing.B) {
	for _, n := range []int{50, 100} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			scen := benchScenario(b, n, int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agents := make([]Agent, scen.Cloud.NumClusters())
				for k := range agents {
					ag, err := NewLocalAgent(scen, ClusterID(k))
					if err != nil {
						b.Fatal(err)
					}
					agents[k] = ag
				}
				mgr, err := NewManager(scen, agents, DefaultManagerConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := mgr.Solve(); err != nil {
					b.Fatal(err)
				}
				mgr.Close()
			}
		})
	}
}

// BenchmarkSimValidation solves and simulates one scenario per iteration
// and reports the model error as metrics.
func BenchmarkSimValidation(b *testing.B) {
	cfg := experiment.DefaultValidationConfig()
	cfg.Clients = 30
	cfg.Sim.Horizon = 5000
	cfg.Sim.Warmup = 500
	var last experiment.ValidationResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := experiment.RunValidation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
	b.ReportMetric(last.MeanAbsRelRespErr, "respRelErr")
	b.ReportMetric(last.ProfitRelErr, "profitRelErr")
}

// BenchmarkAblations evaluates the solver variants and reports the
// relative profit of the fully-disabled local search.
func BenchmarkAblations(b *testing.B) {
	cfg := experiment.DefaultAblationConfig()
	cfg.Clients = 40
	cfg.Scenarios = 2
	var rows []experiment.AblationRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Variant == "no-local-search" {
			b.ReportMetric(r.Relative, "noLS/full")
		}
	}
}

// --- micro-benchmarks of the building blocks ---

// paperAllocation builds a populated allocation on the paper-sized
// instance (250 clients, 5 clusters × 16 servers = 80 servers) by
// round-robining clients through Assign_Distribute.
func paperAllocation(b *testing.B) *alloc.Allocation {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = 250
	cfg.MinServersPerCluster = 16
	cfg.MaxServersPerCluster = 16
	cfg.Seed = 42
	scen, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := alloc.New(scen)
	numK := scen.Cloud.NumClusters()
	for i := 0; i < scen.NumClients(); i++ {
		id := model.ClientID(i)
		for off := 0; off < numK; off++ {
			k := model.ClusterID((i + off) % numK)
			if _, portions, err := solver.AssignDistribute(a, id, k); err == nil {
				if a.Assign(id, k, portions) == nil {
					break
				}
			}
		}
	}
	if a.NumAssigned() < scen.NumClients()/2 {
		b.Fatalf("only %d/%d clients placed", a.NumAssigned(), scen.NumClients())
	}
	return a
}

// benchProfitSink defeats dead-code elimination of the profit reads.
var benchProfitSink float64

// profitMutationLoop drives the sweep-style workload the solver's local
// search generates — move one client, then re-evaluate total profit —
// with eval either the incremental or the from-scratch path.
func profitMutationLoop(b *testing.B, a *alloc.Allocation, eval func() float64) {
	b.Helper()
	var ids []model.ClientID
	for i := 0; i < a.Scenario().NumClients(); i++ {
		if a.Assigned(model.ClientID(i)) {
			ids = append(ids, model.ClientID(i))
		}
	}
	benchProfitSink = a.Profit() // settle the ledger outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		k := model.ClusterID(a.ClusterOf(id))
		portions := a.Portions(id)
		a.Unassign(id)
		if err := a.Assign(id, k, portions); err != nil {
			b.Fatal(err)
		}
		benchProfitSink = eval()
	}
}

// BenchmarkProfitFull is the pre-refactor evaluation cost: every
// mutation pays a from-scratch O(clients+servers) profit recompute.
func BenchmarkProfitFull(b *testing.B) {
	a := paperAllocation(b)
	profitMutationLoop(b, a, func() float64 { return a.RecomputeBreakdown().Profit })
}

// BenchmarkProfitIncremental is the ledger path: the same mutation
// stream re-prices only the touched client and servers (O(touched)).
func BenchmarkProfitIncremental(b *testing.B) {
	a := paperAllocation(b)
	profitMutationLoop(b, a, func() float64 { return a.ProfitBreakdown().Profit })
}

// BenchmarkSolveProposed is the raw heuristic cost per solve.
func BenchmarkSolveProposed(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			scen := benchScenario(b, n, 9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solver, err := core.NewSolver(scen, core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := solver.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveMultiStart isolates the solver's multi-start greedy
// fan-out (local search disabled): 8 seed-split starts, one worker vs
// all workers. Both arms produce bit-identical solutions; only the
// wall-clock differs.
func BenchmarkSolveMultiStart(b *testing.B) {
	for _, n := range []int{50, 250} {
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("clients=%d/workers=%d", n, workers)
			b.Run(name, func(b *testing.B) {
				scen := benchScenario(b, n, 16)
				cfg := core.DefaultConfig()
				cfg.NumInitSolutions = 8
				cfg.MaxLocalSearchIters = 0
				cfg.Workers = workers
				solver, err := core.NewSolver(scen, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := solver.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMonteCarlo is the parallel draw loop: per-draw seed-split
// RNGs, per-worker arena reuse, one worker vs all workers.
func BenchmarkMonteCarlo(b *testing.B) {
	for _, n := range []int{50, 250} {
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("clients=%d/workers=%d", n, workers)
			b.Run(name, func(b *testing.B) {
				scen := benchScenario(b, n, 17)
				cfg := baseline.DefaultMCConfig()
				cfg.Draws = 16
				cfg.MaxSearchPasses = 3
				cfg.Workers = workers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := baseline.RunMonteCarlo(scen, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkModifiedPS is the baseline's cost per solve.
func BenchmarkModifiedPS(b *testing.B) {
	scen := benchScenario(b, 100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SolveModifiedPS(scen, baseline.DefaultPSConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloDraw is the cost of one random draw + local search.
func BenchmarkMonteCarloDraw(b *testing.B) {
	scen := benchScenario(b, 50, 11)
	cfg := baseline.DefaultMCConfig()
	cfg.Draws = 1
	cfg.MaxSearchPasses = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := baseline.RunMonteCarlo(scen, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate is the discrete-event simulator's throughput.
func BenchmarkSimulate(b *testing.B) {
	scen := benchScenario(b, 30, 12)
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a, _, err := solver.Solve()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Horizon: 2000, Warmup: 200, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := sim.Simulate(a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkComparators runs the quality-vs-time table (proposed vs PS vs
// MC vs SA vs GA) once per iteration on reduced settings.
func BenchmarkComparators(b *testing.B) {
	cfg := experiment.DefaultComparatorConfig()
	cfg.Clients = 30
	cfg.Scenarios = 2
	cfg.MC.Draws = 20
	cfg.SA.Anneal.Steps = 50
	cfg.GA.Population = 8
	cfg.GA.Generations = 4
	var rows []experiment.ComparatorRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunComparators(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Method == "modified PS" {
			b.ReportMetric(r.Relative, "ps/proposed")
		}
		if r.Method == "simulated annealing" {
			b.ReportMetric(r.Relative, "sa/proposed")
		}
	}
}

// BenchmarkEpochPolicies runs the decision-policy trace experiment.
func BenchmarkEpochPolicies(b *testing.B) {
	cfg := experiment.DefaultEpochsConfig()
	cfg.Clients = 25
	cfg.Epochs = 8
	var rows []experiment.EpochsRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunEpochsExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var always, never float64
	for _, r := range rows {
		switch r.Policy {
		case "always":
			always = r.TotalProfit
		case "never":
			never = r.TotalProfit
		}
	}
	if always > 0 {
		b.ReportMetric(never/always, "never/always")
	}
}

// BenchmarkWarmStart measures an epoch re-solve warm vs cold.
func BenchmarkWarmStart(b *testing.B) {
	scen := benchScenario(b, 100, 13)
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	prev, _, err := solver.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SolveFrom(prev); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWaterfill is the per-server KKT share solve.
func BenchmarkWaterfill(b *testing.B) {
	items := make([]opt.ShareItem, 8)
	for i := range items {
		items[i] = opt.ShareItem{
			Weight:      0.5 + float64(i)*0.3,
			Exec:        0.4 + 0.05*float64(i),
			PortionRate: 0.2 + 0.02*float64(i),
			Cap:         4,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.WaterfillShares(items, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombinePortions is the Assign_Distribute dynamic program.
func BenchmarkCombinePortions(b *testing.B) {
	const servers, grid = 25, 10
	rows := make([][]float64, servers)
	for s := range rows {
		row := make([]float64, grid+1)
		for g := 1; g <= grid; g++ {
			row[g] = float64((s*7+g*3)%11) - 2
		}
		rows[s] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.CombinePortions(rows, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignDistribute is one client×cluster placement evaluation.
func BenchmarkAssignDistribute(b *testing.B) {
	scen := benchScenario(b, 50, 14)
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := alloc.New(scen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := model.ClientID(i % scen.NumClients())
		if _, _, err := solver.AssignDistribute(a, id, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchRoute is the per-request routing cost.
func BenchmarkDispatchRoute(b *testing.B) {
	d, err := dispatch.New([]alloc.Portion{
		{Server: 0, Alpha: 0.5},
		{Server: 1, Alpha: 0.3},
		{Server: 2, Alpha: 0.2},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Route(rng)
	}
}

// BenchmarkMultiTier solves a 3-tier × N-apps instance.
func BenchmarkMultiTier(b *testing.B) {
	scen := benchScenario(b, 1, 15)
	apps := make([]multitier.App, 10)
	for i := range apps {
		apps[i] = multitier.App{
			ID: i, Base: 9, Slope: 0.8,
			ArrivalRate: 1 + float64(i%3)*0.5, PredictedRate: 1 + float64(i%3)*0.5,
			Tiers: []multitier.Tier{
				{ProcTime: 0.3, CommTime: 0.5, DiskNeed: 0.3},
				{ProcTime: 0.8, CommTime: 0.3, DiskNeed: 0.5},
				{ProcTime: 0.5, CommTime: 0.4, DiskNeed: 1.5},
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multitier.Solve(scen.Cloud, apps, multitier.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

package cloudalloc

import (
	"context"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
)

func genScenario(t *testing.T, n int, seed int64) *Scenario {
	t.Helper()
	cfg := DefaultWorkloadConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

func TestPublicAPISolve(t *testing.T) {
	scen := genScenario(t, 30, 1)
	al, err := NewAllocator(scen, WithSeed(7), WithInitialSolutions(2))
	if err != nil {
		t.Fatal(err)
	}
	a, stats, err := al.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Profit() <= 0 {
		t.Fatalf("profit %v", a.Profit())
	}
	if stats.FinalProfit < stats.InitialProfit-1e-9 {
		t.Fatalf("stats: %+v", stats)
	}
	b := a.ProfitBreakdown()
	if b.Revenue <= b.EnergyCost {
		t.Fatalf("revenue %v should exceed cost %v on a paper-shaped instance", b.Revenue, b.EnergyCost)
	}
}

func TestPublicAPIOptionsValidated(t *testing.T) {
	scen := genScenario(t, 5, 1)
	if _, err := NewAllocator(scen, WithAlphaGranularity(0)); err == nil {
		t.Fatal("invalid option accepted")
	}
	if _, err := NewAllocator(scen, WithShadowPriceScale(-1)); err == nil {
		t.Fatal("negative shadow price accepted")
	}
}

func TestPublicAPIEvaluateAndImprove(t *testing.T) {
	scen := genScenario(t, 10, 2)
	al, err := NewAllocator(scen)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocation(scen)
	est, portions, err := al.Evaluate(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(portions) == 0 || math.IsNaN(est) {
		t.Fatalf("est=%v portions=%v", est, portions)
	}
	if err := a.Assign(0, 0, portions); err != nil {
		t.Fatal(err)
	}
	before := a.Profit()
	al.Improve(a)
	if a.Profit() < before-1e-9 {
		t.Fatalf("Improve regressed profit: %v -> %v", before, a.Profit())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	scen := genScenario(t, 20, 3)
	ps, err := SolveModifiedPS(scen, DefaultPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	mc := DefaultMCConfig()
	mc.Draws = 5
	env, err := RunMonteCarlo(scen, mc)
	if err != nil {
		t.Fatal(err)
	}
	if env.Best == nil {
		t.Fatal("no best MC allocation")
	}

	al, err := NewAllocator(scen)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := al.RandomAllocation(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISimulate(t *testing.T) {
	scen := genScenario(t, 10, 4)
	al, err := NewAllocator(scen)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := al.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.Horizon = 2000
	cfg.Warmup = 200
	res, err := Simulate(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("simulation completed no requests")
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	scen := genScenario(t, 15, 5)
	agents := make([]Agent, scen.Cloud.NumClusters())
	for k := range agents {
		ag, err := NewLocalAgent(scen, ClusterID(k))
		if err != nil {
			t.Fatal(err)
		}
		agents[k] = ag
	}
	mgr, err := NewManager(scen, agents, DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 15 {
		t.Fatalf("assigned %d, stats %+v", a.NumAssigned(), stats)
	}
}

func TestPublicAPIDistributedTCP(t *testing.T) {
	scen := genScenario(t, 10, 6)
	local, err := NewLocalAgent(scen, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeAgent(l, local)
	go srv.Serve()
	defer srv.Close()
	remote, err := DialAgent(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if k, err := remote.ClusterID(context.Background()); err != nil || k != 0 {
		t.Fatalf("remote ClusterID = %v, %v", k, err)
	}
}

func TestPublicAPIScenarioRoundTrip(t *testing.T) {
	scen := genScenario(t, 5, 7)
	path := filepath.Join(t.TempDir(), "s.json")
	if err := scen.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClients() != 5 {
		t.Fatalf("loaded %d clients", got.NumClients())
	}
}

func TestPublicAPIOnlineService(t *testing.T) {
	scen := genScenario(t, 20, 9)
	// First five clients start absent so the churn stream has arrivals.
	for i := 0; i < 5; i++ {
		scen.Clients[i].ArrivalRate = 0
		scen.Clients[i].PredictedRate = 0
	}
	svc, err := NewOnlineService(scen, DefaultOnlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ccfg := DefaultChurnConfig()
	ccfg.Events = 500
	churn := NewChurn(scen, ccfg)
	var admits int
	for {
		ev, ok := churn.Next()
		if !ok {
			break
		}
		if d := svc.Decide(ev); ev.Kind == OnlineArrive && d.Admitted {
			admits++
		}
	}
	if admits == 0 {
		t.Fatal("no arrival admitted over 500 churn events")
	}
	a := svc.Flush()
	if err := a.Validate(); err != nil {
		t.Fatalf("flushed allocation invalid: %v", err)
	}
	if svc.Profit() <= 0 {
		t.Fatalf("profit %v after churn", svc.Profit())
	}
}

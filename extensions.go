package cloudalloc

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/multitier"
	"repro/internal/predict"
)

// Extension types: decision epochs, stochastic comparators, multi-tier
// applications.
type (
	// EpochConfig drives the decision-epoch controller.
	EpochConfig = epoch.Config
	// EpochResult is one epoch's outcome.
	EpochResult = epoch.Result
	// RateProcess evolves client arrival rates between epochs.
	RateProcess = epoch.RateProcess
	// RandomWalk is a multiplicative random-walk rate process.
	RandomWalk = epoch.RandomWalk
	// Burst is a bursty rate process.
	Burst = epoch.Burst
	// Trace is a per-epoch, per-client matrix of arrival rates.
	Trace = epoch.Trace
	// Pattern shapes a client's rate over epochs.
	Pattern = epoch.Pattern
	// Diurnal is a day/night sinusoidal rate pattern.
	Diurnal = epoch.Diurnal
	// FlashCrowd is a transient rate spike pattern.
	FlashCrowd = epoch.FlashCrowd
	// Policy decides when drift warrants a new cloud-level decision.
	Policy = epoch.Policy
	// ThresholdPolicy re-decides on relative rate drift.
	ThresholdPolicy = epoch.ThresholdPolicy
	// PeriodicPolicy re-decides on a fixed cadence.
	PeriodicPolicy = epoch.PeriodicPolicy
	// AlwaysPolicy re-decides every epoch.
	AlwaysPolicy = epoch.AlwaysPolicy
	// NeverPolicy never re-decides after the first epoch.
	NeverPolicy = epoch.NeverPolicy
	// ControllerConfig tunes a trace-driven controller run.
	ControllerConfig = epoch.ControllerConfig
	// ControllerSummary aggregates a controller run.
	ControllerSummary = epoch.ControllerSummary
	// ControllerStep is one epoch of a controller run.
	ControllerStep = epoch.Step

	// Predictor forecasts next-epoch arrival rates.
	Predictor = predict.Predictor
	// PredictMetrics summarize a forecast backtest.
	PredictMetrics = predict.Metrics

	// SAConfig tunes the simulated-annealing comparator.
	SAConfig = baseline.SAConfig
	// GAConfig tunes the genetic-search comparator.
	GAConfig = baseline.GAConfig

	// Tier is one stage of a multi-tier application.
	Tier = multitier.Tier
	// App is a multi-tier application with an end-to-end SLA.
	App = multitier.App
	// MultiTierConfig tunes the multi-tier solve.
	MultiTierConfig = multitier.Config
	// MultiTierSolution is a multi-tier solve result.
	MultiTierSolution = multitier.Solution
	// TierPlacement reports where one tier landed.
	TierPlacement = multitier.TierPlacement
)

// DefaultEpochConfig drifts rates with a 10% random walk over 20 epochs,
// warm-starting like the paper's pseudo-code.
func DefaultEpochConfig() EpochConfig { return epoch.DefaultConfig() }

// RunEpochs simulates decision epochs with drifting arrival rates,
// re-solving each epoch (warm or cold) and measuring realized profit.
func RunEpochs(scen *Scenario, cfg EpochConfig) ([]EpochResult, error) {
	return epoch.Run(scen, cfg)
}

// GenerateTrace builds a per-epoch rate trace from base rates, patterns
// and multiplicative noise.
func GenerateTrace(base []float64, epochs int, patterns []Pattern, noiseSigma float64, seed int64) (Trace, error) {
	return epoch.GenerateTrace(base, epochs, patterns, noiseSigma, seed)
}

// DefaultControllerConfig re-decides on >20% drift with warm starts.
func DefaultControllerConfig() ControllerConfig { return epoch.DefaultControllerConfig() }

// RunController replays a rate trace against a decision policy: the
// policy decides when to pay for a new cloud-level allocation, and
// realized profit is always priced at the actual rates.
func RunController(scen *Scenario, tr Trace, cfg ControllerConfig) (ControllerSummary, error) {
	return epoch.RunController(scen, tr, cfg)
}

// SolveFrom re-solves the allocator's scenario warm-starting from a
// previous epoch's allocation (paper Figure 3's "state of the cluster at
// end of prev. epoch").
func (al *Allocator) SolveFrom(prev *Allocation) (*Allocation, SolveStats, error) {
	return al.solver.SolveFrom(prev)
}

// DefaultSAConfig returns a medium-effort annealing schedule.
func DefaultSAConfig() SAConfig { return baseline.DefaultSAConfig() }

// SolveAnnealing optimizes the client→cluster assignment by simulated
// annealing (the stochastic alternative the paper names in Section V).
func SolveAnnealing(scen *Scenario, cfg SAConfig) (*Allocation, error) {
	return baseline.SolveAnnealing(scen, cfg)
}

// DefaultGAConfig returns a small genetic-search configuration.
func DefaultGAConfig() GAConfig { return baseline.DefaultGAConfig() }

// SolveGenetic optimizes the client→cluster assignment with a simple
// generational genetic algorithm.
func SolveGenetic(scen *Scenario, cfg GAConfig) (*Allocation, error) {
	return baseline.SolveGenetic(scen, cfg)
}

// SolveExhaustive enumerates every client→cluster assignment; tiny
// instances only (≤ baseline.MaxExhaustiveClients clients).
func SolveExhaustive(scen *Scenario) (*Allocation, error) {
	return baseline.SolveExhaustive(scen, core.DefaultConfig())
}

// DefaultMultiTierConfig uses the standard solver settings.
func DefaultMultiTierConfig() MultiTierConfig { return multitier.DefaultConfig() }

// SolveMultiTier places every tier of every multi-tier application on the
// cloud (the paper's future-work extension).
func SolveMultiTier(cloud Cloud, apps []App, cfg MultiTierConfig) (*MultiTierSolution, error) {
	return multitier.Solve(cloud, apps, cfg)
}

// NewLastValuePredictor forecasts a repeat of the last observation.
func NewLastValuePredictor() Predictor { return predict.NewLastValue() }

// NewEWMAPredictor forecasts with exponential smoothing (0 < alpha ≤ 1).
func NewEWMAPredictor(alpha float64) (Predictor, error) { return predict.NewEWMA(alpha) }

// NewHoltPredictor forecasts with double exponential smoothing (level +
// trend).
func NewHoltPredictor(alpha, beta float64) (Predictor, error) { return predict.NewHolt(alpha, beta) }

// NewSlidingMeanPredictor forecasts the mean of the last window epochs.
func NewSlidingMeanPredictor(window int) (Predictor, error) { return predict.NewSlidingMean(window) }

// BacktestPredictor replays a trace through a predictor and reports its
// forecast error.
func BacktestPredictor(tr Trace, p Predictor) (PredictMetrics, error) {
	return predict.Backtest(tr, p)
}

// ReadTraceCSV parses a rate trace written by Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (Trace, error) { return epoch.ReadCSV(r) }

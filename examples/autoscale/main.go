// Autoscale: a trace-driven decision controller. Client demand follows a
// diurnal curve with a flash crowd at midday; the controller watches the
// drift and re-runs the cloud-level allocator only when it exceeds a
// threshold (paper Section III: small changes are absorbed by cluster
// dispatchers, large changes need a new decision epoch). Compare the
// profit and decision effort of several policies.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wcfg := cloudalloc.DefaultWorkloadConfig()
	wcfg.NumClients = 40
	wcfg.Seed = 13
	scen, err := cloudalloc.GenerateScenario(wcfg)
	if err != nil {
		return err
	}

	// A 24-epoch "day": diurnal swing ±40%, flash crowd at noon hitting a
	// quarter of the clients, 5% noise.
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	tr, err := cloudalloc.GenerateTrace(base, 24, []cloudalloc.Pattern{
		cloudalloc.Diurnal{Period: 24, Amplitude: 0.4, Phase: 0.2},
		cloudalloc.FlashCrowd{At: 12, Duration: 3, Boost: 2.5, Every: 4},
	}, 0.05, 7)
	if err != nil {
		return err
	}

	policies := []struct {
		name   string
		policy cloudalloc.Policy
	}{
		{"re-decide always", cloudalloc.AlwaysPolicy{}},
		{"threshold 15%", cloudalloc.ThresholdPolicy{RelChange: 0.15}},
		{"threshold 40%", cloudalloc.ThresholdPolicy{RelChange: 0.4}},
		{"periodic every 6", &cloudalloc.PeriodicPolicy{Every: 6}},
		{"never re-decide", cloudalloc.NeverPolicy{}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\ttotal profit\tdecisions\tsolve time\tsaturated client-epochs")
	for _, p := range policies {
		cfg := cloudalloc.DefaultControllerConfig()
		cfg.Policy = p.policy
		sum, err := cloudalloc.RunController(scen, tr, cfg)
		if err != nil {
			return err
		}
		var saturated int
		for _, st := range sum.Steps {
			saturated += st.SaturatedClients
		}
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%s\t%d\n",
			p.name, sum.TotalProfit, sum.Decisions, sum.TotalSolveTime.Round(1e6), saturated)
	}
	w.Flush()
	fmt.Println("\nthe threshold policy keeps most of the always-re-decide profit at a")
	fmt.Println("fraction of the decision effort; never re-deciding saturates SLAs")
	fmt.Println("when the flash crowd hits.")
	return nil
}

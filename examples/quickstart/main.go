// Quickstart: generate a paper-shaped scenario, run the profit-maximizing
// allocator, and inspect the solution.
package main

import (
	"fmt"
	"log"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A random cloud with the paper's parameter distributions: 5 clusters,
	// 10 server classes, 5 SLA classes.
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = 60
	cfg.Seed = 42
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		return err
	}

	// The Resource_Alloc heuristic: greedy multi-start initial solution,
	// then local search over shares, dispersion rates and the active set.
	al, err := cloudalloc.NewAllocator(scen, cloudalloc.WithSeed(1))
	if err != nil {
		return err
	}
	a, stats, err := al.Solve()
	if err != nil {
		return err
	}

	b := a.ProfitBreakdown()
	fmt.Printf("solved %d clients in %s\n", b.Assigned, stats.Elapsed)
	fmt.Printf("profit %.2f = revenue %.2f − energy cost %.2f\n", b.Profit, b.Revenue, b.EnergyCost)
	fmt.Printf("active servers: %d of %d\n", b.ActiveServers, scen.Cloud.NumServers())

	// Inspect one client's placement: its response time and the servers
	// its request stream is split across. (Admission control may leave a
	// few unprofitable clients unserved, so pick the first served one.)
	id := cloudalloc.ClientID(-1)
	for i := 0; i < scen.NumClients(); i++ {
		if a.Assigned(cloudalloc.ClientID(i)) {
			id = cloudalloc.ClientID(i)
			break
		}
	}
	if id < 0 {
		return fmt.Errorf("no client was served")
	}
	resp, err := a.ResponseTime(id)
	if err != nil {
		return err
	}
	fmt.Printf("\nclient %d: mean response time %.3f, revenue %.2f\n", id, resp, a.Revenue(id))
	for _, p := range a.Portions(id) {
		fmt.Printf("  %.0f%% of requests → server %d (proc share %.3f, comm share %.3f)\n",
			100*p.Alpha, p.Server, p.ProcShare, p.CommShare)
	}
	return nil
}

// What-if capacity planning: sweep the datacenter size for a fixed client
// population, solve each configuration, and locate the profit knee —
// then validate the chosen configuration with the discrete-event
// simulator. This is the kind of downstream use the paper's model
// enables beyond the runtime allocator itself.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const clients = 80
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "servers/cluster\ttotal servers\tprofit\tactive\tserved")

	var (
		bestProfit float64
		bestAlloc  *cloudalloc.Allocation
		bestSize   int
	)
	for _, perCluster := range []int{4, 6, 8, 12, 16, 20} {
		cfg := cloudalloc.DefaultWorkloadConfig()
		cfg.NumClients = clients
		cfg.MinServersPerCluster = perCluster
		cfg.MaxServersPerCluster = perCluster
		cfg.Seed = 21
		scen, err := cloudalloc.GenerateScenario(cfg)
		if err != nil {
			return err
		}
		al, err := cloudalloc.NewAllocator(scen, cloudalloc.WithSeed(1))
		if err != nil {
			return err
		}
		a, _, err := al.Solve()
		if err != nil {
			return err
		}
		b := a.ProfitBreakdown()
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%d\t%d/%d\n",
			perCluster, scen.Cloud.NumServers(), b.Profit, b.ActiveServers, b.Served, clients)
		if b.Profit > bestProfit {
			bestProfit, bestAlloc, bestSize = b.Profit, a, perCluster
		}
	}
	w.Flush()

	if bestAlloc == nil {
		return fmt.Errorf("no profitable configuration found")
	}
	fmt.Printf("\nbest configuration: %d servers per cluster (profit %.2f)\n", bestSize, bestProfit)

	// Double-check the winner with the discrete-event simulator.
	simCfg := cloudalloc.DefaultSimConfig()
	simCfg.Horizon = 10000
	simCfg.Warmup = 1000
	res, err := cloudalloc.Simulate(bestAlloc, simCfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %d requests, realized profit %.2f vs analytic %.2f\n",
		res.Completed, res.Profit, res.AnalyticValue)
	return nil
}

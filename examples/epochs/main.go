// Epochs: decision epochs with drifting client arrival rates (paper
// Section III). Each epoch the allocator re-solves — warm-started from
// the previous epoch's allocation, like the paper's pseudo-code — and we
// track planned vs realized profit, SLA saturation and migration churn.
// A second run with stale predictions shows why the predicted arrival
// rates matter.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wcfg := cloudalloc.DefaultWorkloadConfig()
	wcfg.NumClients = 40
	wcfg.Seed = 9
	scen, err := cloudalloc.GenerateScenario(wcfg)
	if err != nil {
		return err
	}

	cfg := cloudalloc.DefaultEpochConfig()
	cfg.Epochs = 10
	cfg.Process = cloudalloc.RandomWalk{Sigma: 0.25, Min: 0.2, Max: 8}

	results, err := cloudalloc.RunEpochs(scen, cfg)
	if err != nil {
		return err
	}
	fmt.Println("warm-started epochs with perfect rate prediction:")
	printEpochs(results)

	stale := cfg
	stale.PredictionLag = 1 // provision for last epoch's rates
	lagged, err := cloudalloc.RunEpochs(scen, stale)
	if err != nil {
		return err
	}
	fmt.Println("\nsame drift, but the allocator provisions for LAST epoch's rates:")
	printEpochs(lagged)

	var perfect, laggedTotal float64
	for e := range results {
		perfect += results[e].RealizedProfit
		laggedTotal += lagged[e].RealizedProfit
	}
	fmt.Printf("\ntotal realized profit: perfect prediction %.2f vs stale prediction %.2f\n",
		perfect, laggedTotal)
	return nil
}

func printEpochs(results []cloudalloc.EpochResult) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "epoch\tplanned\trealized\tsaturated\tmigrations\tactive\tsolve")
	for _, r := range results {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%d\t%d\t%d\t%s\n",
			r.Epoch, r.PlannedProfit, r.RealizedProfit, r.SaturatedClients,
			r.Migrations, r.ActiveServers, r.SolveTime.Round(1e6))
	}
	w.Flush()
}

// Consolidation: the energy side of the paper. On a lightly loaded cloud
// the allocator packs clients onto few servers and powers the rest off;
// this example compares it against a random spread with the same
// cluster-level machinery, and against the modified Proportional Share
// baseline, on active-server count and energy cost.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Few clients, lots of servers: consolidation headroom.
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = 15
	cfg.MinServersPerCluster = 12
	cfg.MaxServersPerCluster = 16
	cfg.Seed = 3
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		return err
	}

	al, err := cloudalloc.NewAllocator(scen, cloudalloc.WithSeed(1))
	if err != nil {
		return err
	}
	proposed, _, err := al.Solve()
	if err != nil {
		return err
	}

	random, err := al.RandomAllocation(rand.New(rand.NewSource(2)))
	if err != nil {
		return err
	}

	ps, err := cloudalloc.SolveModifiedPS(scen, cloudalloc.DefaultPSConfig())
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tprofit\trevenue\tenergy\tactive servers")
	for _, row := range []struct {
		name string
		a    *cloudalloc.Allocation
	}{
		{"proposed (Resource_Alloc)", proposed},
		{"random assignment", random},
		{"modified PS", ps},
	} {
		b := row.a.ProfitBreakdown()
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%d/%d\n",
			row.name, b.Profit, b.Revenue, b.EnergyCost, b.ActiveServers, scen.Cloud.NumServers())
	}
	w.Flush()

	fmt.Println("\nper-cluster active servers (proposed):")
	for k := 0; k < scen.Cloud.NumClusters(); k++ {
		var active, total int
		for _, j := range scen.Cloud.ClusterServers(cloudalloc.ClusterID(k)) {
			total++
			if proposed.Active(j) {
				active++
			}
		}
		fmt.Printf("  cluster %d: %d of %d on\n", k, active, total)
	}
	return nil
}

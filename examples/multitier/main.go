// Multi-tier: the paper's future-work extension. Three-tier applications
// (web → app → database) with an SLA on the end-to-end response time are
// compiled into per-tier workloads, placed by the standard allocator, and
// re-aggregated into app-level revenue.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A cloud with the paper's distributions (clients discarded; we bring
	// our own multi-tier apps).
	wcfg := cloudalloc.DefaultWorkloadConfig()
	wcfg.NumClients = 1
	wcfg.Seed = 5
	scen, err := cloudalloc.GenerateScenario(wcfg)
	if err != nil {
		return err
	}

	apps := []cloudalloc.App{
		storefront(0, 2.5),
		storefront(1, 1.2),
		analytics(2, 0.8),
	}
	sol, err := cloudalloc.SolveMultiTier(scen.Cloud, apps, cloudalloc.DefaultMultiTierConfig())
	if err != nil {
		return err
	}

	fmt.Printf("profit %.2f across %d apps (%d tier placements)\n\n",
		sol.Profit, len(apps), len(sol.Placements))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "app\tend-to-end response\trevenue\tserved")
	for ai, app := range apps {
		fmt.Fprintf(w, "%d\t%.3f\t%.2f\t%v\n", app.ID, sol.AppResponse[ai], sol.AppRevenue[ai], sol.Served[ai])
	}
	w.Flush()

	fmt.Println("\ntier placements (app 0):")
	for _, p := range sol.Placements {
		if p.App != 0 {
			continue
		}
		fmt.Printf("  tier %d → cluster %d, response %.3f, %d portion(s)\n",
			p.Tier, p.Cluster, p.Response, len(p.Portions))
	}
	return nil
}

// storefront is a latency-sensitive web/app/db chain.
func storefront(id int, rate float64) cloudalloc.App {
	return cloudalloc.App{
		ID:            id,
		Base:          10,
		Slope:         1.2,
		ArrivalRate:   rate,
		PredictedRate: rate,
		Tiers: []cloudalloc.Tier{
			{ProcTime: 0.3, CommTime: 0.6, DiskNeed: 0.2},
			{ProcTime: 0.8, CommTime: 0.3, DiskNeed: 0.4},
			{ProcTime: 0.5, CommTime: 0.4, DiskNeed: 1.6},
		},
	}
}

// analytics is a throughput-oriented two-tier pipeline.
func analytics(id int, rate float64) cloudalloc.App {
	return cloudalloc.App{
		ID:            id,
		Base:          6,
		Slope:         0.3,
		ArrivalRate:   rate,
		PredictedRate: rate,
		Tiers: []cloudalloc.Tier{
			{ProcTime: 0.9, CommTime: 0.4, DiskNeed: 0.8},
			{ProcTime: 0.7, CommTime: 0.5, DiskNeed: 1.9},
		},
	}
}

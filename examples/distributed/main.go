// Distributed: the paper's central-manager-plus-cluster-agents
// decomposition, end to end over real TCP sockets. One agent per cluster
// is served on a loopback listener; the manager dials all of them,
// fans out evaluations in parallel and merges the final allocation.
//
// In production the agents would run next to their clusters (see
// cmd/allocd and cmd/allocctl for the daemon form).
package main

import (
	"fmt"
	"log"
	"net"

	cloudalloc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = 40
	cfg.Seed = 11
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		return err
	}

	// Serve one agent per cluster on its own TCP listener.
	var servers []*cloudalloc.AgentServer
	var agents []cloudalloc.Agent
	for k := 0; k < scen.Cloud.NumClusters(); k++ {
		local, err := cloudalloc.NewLocalAgent(scen, cloudalloc.ClusterID(k))
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := cloudalloc.ServeAgent(l, local)
		go func() {
			if err := srv.Serve(); err != nil {
				log.Printf("agent serve: %v", err)
			}
		}()
		servers = append(servers, srv)
		fmt.Printf("cluster %d agent listening on %s\n", k, srv.Addr())

		remote, err := cloudalloc.DialAgent(srv.Addr().String())
		if err != nil {
			return err
		}
		agents = append(agents, remote)
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	mgr, err := cloudalloc.NewManager(scen, agents, cloudalloc.DefaultManagerConfig())
	if err != nil {
		return err
	}
	defer mgr.Close()

	a, stats, err := mgr.Solve()
	if err != nil {
		return err
	}
	b := a.ProfitBreakdown()
	fmt.Printf("\ndistributed solve: %d clients placed, profit %.2f in %s (%d improve rounds)\n",
		b.Assigned, b.Profit, stats.Elapsed, stats.ImproveRounds)
	fmt.Printf("activations %d, deactivations %d, active servers %d\n",
		stats.Activations, stats.Deactivations, b.ActiveServers)
	return nil
}

// SaaS provider: a hand-built cloud with three SLA tiers (gold, silver,
// bronze) showing how the allocator trades response time against energy
// cost per tier. This mirrors the paper's motivation: SaaS workloads of
// different classes sharing a datacenter under per-class utility
// functions.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
)

const (
	gold   = 0
	silver = 1
	bronze = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scen := buildScenario()
	if err := scen.Validate(); err != nil {
		return err
	}

	al, err := cloudalloc.NewAllocator(scen, cloudalloc.WithSeed(1))
	if err != nil {
		return err
	}
	a, _, err := al.Solve()
	if err != nil {
		return err
	}

	// Aggregate response time and revenue per SLA tier.
	type tierStats struct {
		clients int
		resp    float64
		revenue float64
	}
	tiers := map[int]*tierStats{gold: {}, silver: {}, bronze: {}}
	names := map[int]string{gold: "gold", silver: "silver", bronze: "bronze"}
	for i := range scen.Clients {
		id := cloudalloc.ClientID(i)
		ts := tiers[int(scen.Clients[i].Class)]
		ts.clients++
		if r, err := a.ResponseTime(id); err == nil {
			ts.resp += r
		}
		ts.revenue += a.Revenue(id)
	}

	b := a.ProfitBreakdown()
	fmt.Printf("profit %.2f (revenue %.2f, energy %.2f), %d active servers\n\n",
		b.Profit, b.Revenue, b.EnergyCost, b.ActiveServers)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tier\tclients\tmean response\trevenue")
	for _, t := range []int{gold, silver, bronze} {
		ts := tiers[t]
		mean := 0.0
		if ts.clients > 0 {
			mean = ts.resp / float64(ts.clients)
		}
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.2f\n", names[t], ts.clients, mean, ts.revenue)
	}
	w.Flush()
	fmt.Println("\ngold pays most per request and decays fastest with latency —")
	fmt.Println("the allocator gives it the largest GPS shares (lowest response times).")
	return nil
}

// buildScenario assembles the cloud by hand through the public model
// types: two clusters of big/small machines, 30 clients across 3 tiers.
func buildScenario() *cloudalloc.Scenario {
	classes := []cloudalloc.ServerClass{
		// Big boxes: fast but expensive to keep on.
		{ID: 0, ProcCap: 8, StoreCap: 8, CommCap: 8, FixedCost: 6, UtilizationCost: 3},
		// Small boxes: slower, cheap.
		{ID: 1, ProcCap: 3, StoreCap: 4, CommCap: 3, FixedCost: 2, UtilizationCost: 1},
	}
	utilities := []cloudalloc.UtilityClass{
		{ID: gold, Base: 8, Slope: 2.0},    // pays a lot, hates latency
		{ID: silver, Base: 5, Slope: 0.8},  // middle of the road
		{ID: bronze, Base: 3, Slope: 0.25}, // batch-ish, latency-tolerant
	}

	var servers []cloudalloc.Server
	var clusters []cloudalloc.Cluster
	addCluster := func(k cloudalloc.ClusterID, classCounts map[int]int) {
		var ids []cloudalloc.ServerID
		for class, n := range classCounts {
			for c := 0; c < n; c++ {
				id := cloudalloc.ServerID(len(servers))
				servers = append(servers, cloudalloc.Server{
					ID: id, Class: cloudalloc.ServerClassID(class), Cluster: k,
				})
				ids = append(ids, id)
			}
		}
		clusters = append(clusters, cloudalloc.Cluster{ID: k, Servers: ids})
	}
	addCluster(0, map[int]int{0: 4, 1: 6})
	addCluster(1, map[int]int{0: 2, 1: 8})

	rng := rand.New(rand.NewSource(7))
	var clients []cloudalloc.Client
	addClients := func(tier, n int, rate, exec float64) {
		for c := 0; c < n; c++ {
			arrival := rate * (0.8 + 0.4*rng.Float64())
			clients = append(clients, cloudalloc.Client{
				ID:            cloudalloc.ClientID(len(clients)),
				Class:         cloudalloc.UtilityClassID(tier),
				ArrivalRate:   arrival,
				PredictedRate: arrival,
				ProcTime:      exec * (0.9 + 0.2*rng.Float64()),
				CommTime:      exec * 0.6 * (0.9 + 0.2*rng.Float64()),
				DiskNeed:      0.3 + rng.Float64(),
			})
		}
	}
	addClients(gold, 6, 2.0, 0.5)
	addClients(silver, 10, 1.5, 0.6)
	addClients(bronze, 14, 1.0, 0.8)

	return &cloudalloc.Scenario{
		Cloud: cloudalloc.Cloud{
			ServerClasses:  classes,
			UtilityClasses: utilities,
			Clusters:       clusters,
			Servers:        servers,
		},
		Clients: clients,
	}
}

package cloudalloc_test

import (
	"fmt"
	"log"

	cloudalloc "repro"
)

// ExampleUtilityClass_Value shows the SLA utility: revenue per request
// decays linearly with mean response time and never goes negative.
func ExampleUtilityClass_Value() {
	gold := cloudalloc.UtilityClass{Base: 4, Slope: 0.5}
	fmt.Println(gold.Value(0))  // instant responses earn the full price
	fmt.Println(gold.Value(2))  // 2 time units of latency cost 1.0
	fmt.Println(gold.Value(10)) // beyond break-even the request is free
	// Output:
	// 4
	// 3
	// 0
}

// ExampleNewAllocator runs the full Resource_Alloc pipeline on a random
// paper-shaped scenario.
func ExampleNewAllocator() {
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = 30
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	al, err := cloudalloc.NewAllocator(scen, cloudalloc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	a, _, err := al.Solve()
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Profit() > 0)
	// Output:
	// true
}

// ExampleSimulate validates an allocation with the discrete-event
// simulator.
func ExampleSimulate() {
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = 10
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	al, err := cloudalloc.NewAllocator(scen)
	if err != nil {
		log.Fatal(err)
	}
	a, _, err := al.Solve()
	if err != nil {
		log.Fatal(err)
	}
	simCfg := cloudalloc.DefaultSimConfig()
	simCfg.Horizon = 1000
	simCfg.Warmup = 100
	res, err := cloudalloc.Simulate(a, simCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Completed > 0)
	// Output:
	// true
}

// ExampleGenerateTrace builds a diurnal rate trace for the decision
// controller.
func ExampleGenerateTrace() {
	base := []float64{1, 2, 3}
	tr, err := cloudalloc.GenerateTrace(base, 4, []cloudalloc.Pattern{
		cloudalloc.Diurnal{Period: 4, Amplitude: 0.5},
	}, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(tr), len(tr[0]))
	// Output:
	// 4 3
}

package main

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiment"
)

// TestLoadtestSmoke runs the full schedule set on a small instance: the
// CI convergence gate in miniature. Any schedule failing to converge to
// the baseline profit fails the run.
func TestLoadtestSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_faults.json")
	cfg := config{
		clients:         12,
		clusters:        3,
		seed:            1,
		rate:            0.12,
		delay:           time.Millisecond,
		crashAfterReads: 40,
		crashDown:       30 * time.Millisecond,
		hedge:           5 * time.Millisecond,
		attempts:        16,
		timeout:         10 * time.Second,
		out:             out,
	}
	rep, failed, err := execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("schedules did not converge:\n%s", experiment.FaultsTable(rep))
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rep.Rows))
	}
	mixed := rep.Rows[1]
	if mixed.Retries == 0 {
		t.Fatal("mixed schedule injected faults but the client never retried")
	}
	if mixed.Crashes != 1 {
		t.Fatalf("crash-restart fired %d times, want 1", mixed.Crashes)
	}
	hedged := rep.Rows[2]
	if hedged.HedgeWins == 0 {
		t.Fatal("slow+hedge schedule never won a hedge")
	}
}

// Command loadtest is the chaos proving ground for the distributed
// control plane: it spawns one in-process agent per cluster behind real
// TCP listeners, runs the distributed solve under seeded fault
// schedules (connection drops, injected I/O errors, delays, truncated
// frames, one agent crash-restart) and asserts the solve converges to
// the fault-free profit. Retry/hedge/redial/dedup traffic is recorded
// through the telemetry layer into BENCH_faults.json.
//
// Exit status is non-zero when any fault schedule fails to converge —
// the CI smoke gate for ROADMAP item 3.
//
// Usage:
//
//	loadtest -clients 40 -clusters 5 -rate 0.12 -out BENCH_faults.json
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"time"

	"repro/internal/agentrpc"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

type config struct {
	clients  int
	clusters int
	seed     int64
	rate     float64
	delay    time.Duration
	// crashAfterReads arms the mixed schedule's one-shot crash-restart
	// of agent 0 after that many server-side reads; crashDown is the
	// refuse-dials window.
	crashAfterReads int64
	crashDown       time.Duration
	hedge           time.Duration
	attempts        int
	timeout         time.Duration
	out             string
	table           bool
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	var cfg config
	fs.IntVar(&cfg.clients, "clients", 40, "clients in the generated scenario")
	fs.IntVar(&cfg.clusters, "clusters", 5, "clusters (= agents) in the generated scenario")
	fs.Int64Var(&cfg.seed, "seed", 1, "master seed: workload, manager order, fault schedule, retry jitter")
	fs.Float64Var(&cfg.rate, "rate", 0.12, "per-I/O-op fault probability of the mixed schedule (split across drop/error/delay/truncate)")
	fs.DurationVar(&cfg.delay, "delay", 2*time.Millisecond, "injected delay length")
	fs.Int64Var(&cfg.crashAfterReads, "crash-after-reads", 60, "crash-restart agent 0 after this many server-side reads (0 disables)")
	fs.DurationVar(&cfg.crashDown, "crash-down", 50*time.Millisecond, "crash-restart down window")
	fs.DurationVar(&cfg.hedge, "hedge", 5*time.Millisecond, "hedge delay of the slow-agent schedule")
	fs.IntVar(&cfg.attempts, "retries", 16, "max attempts per RPC")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-attempt RPC deadline")
	fs.StringVar(&cfg.out, "out", "", "write the FaultsReport JSON here (e.g. BENCH_faults.json)")
	fs.BoolVar(&cfg.table, "table", true, "print the human-readable table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, failed, err := execute(cfg)
	if err != nil {
		return err
	}
	if cfg.table {
		fmt.Fprint(stdout, experiment.FaultsTable(rep))
	}
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiment.WriteFaultsJSON(f, rep); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("one or more fault schedules did not converge to the fault-free profit")
	}
	return nil
}

// schedule is one chaos configuration to solve under.
type schedule struct {
	name    string
	faults  func(agent int, conn int) chaos.Faults
	crash   bool // arm crash-restart of agent 0
	hedge   time.Duration
	rate    float64
	baseRef bool // this run defines the reference profit
}

func execute(cfg config) (*experiment.FaultsReport, bool, error) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = cfg.clients
	wcfg.NumClusters = cfg.clusters
	wcfg.Seed = cfg.seed
	scen, err := workload.Generate(wcfg)
	if err != nil {
		return nil, false, err
	}

	// The mixed schedule's band split: 30/30/30/10 drop/err/delay/trunc.
	mixed := chaos.Faults{
		DropProb:  cfg.rate * 0.3,
		ErrProb:   cfg.rate * 0.3,
		DelayProb: cfg.rate * 0.3,
		Delay:     cfg.delay,
		TruncProb: cfg.rate * 0.1,
	}
	schedules := []schedule{
		{name: "baseline", faults: nil, baseRef: true},
		{name: "mixed+crash", rate: cfg.rate, crash: cfg.crashAfterReads > 0,
			faults: func(int, int) chaos.Faults { return mixed }},
		{name: "slow+hedge", hedge: cfg.hedge,
			// Agent 0's first connection stalls every I/O op long enough
			// that hedging onto a fresh connection always pays.
			faults: func(agent, conn int) chaos.Faults {
				if agent == 0 && conn == 0 {
					return chaos.Faults{DelayProb: 1, Delay: 50 * time.Millisecond}
				}
				return chaos.Faults{}
			}},
	}

	rep := &experiment.FaultsReport{BenchMeta: experiment.NewBenchMeta()}
	var refProfit float64
	failed := false
	for _, sch := range schedules {
		row, err := runSchedule(scen, cfg, sch, refProfit)
		if err != nil {
			return nil, false, fmt.Errorf("schedule %s: %w", sch.name, err)
		}
		if sch.baseRef {
			refProfit = row.Profit
			row.RefProfit = refProfit
			row.Converged = true
		}
		if !row.Converged {
			failed = true
		}
		rep.Rows = append(rep.Rows, *row)
	}
	return rep, failed, nil
}

func runSchedule(scen *model.Scenario, cfg config, sch schedule, refProfit float64) (*experiment.FaultsRow, error) {
	clientSet := telemetry.New(nil)
	serverSet := telemetry.New(nil)

	pol := agentrpc.DefaultPolicy()
	pol.Timeout = cfg.timeout
	pol.MaxAttempts = cfg.attempts
	pol.BackoffBase = time.Millisecond
	pol.BackoffMax = 50 * time.Millisecond
	pol.HedgeDelay = sch.hedge
	pol.Seed = cfg.seed

	agents := make([]cluster.Agent, scen.Cloud.NumClusters())
	listeners := make([]*chaos.Listener, len(agents))
	servers := make([]*agentrpc.Server, len(agents))
	defer func() {
		for _, ag := range agents {
			if ag != nil {
				ag.Close()
			}
		}
		for _, srv := range servers {
			if srv != nil {
				srv.Close()
			}
		}
	}()
	for k := range agents {
		la, err := cluster.NewLocalAgent(scen, model.ClusterID(k), core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		var perConn func(int) chaos.Faults
		if sch.faults != nil {
			agentIdx := k
			perConn = func(conn int) chaos.Faults { return sch.faults(agentIdx, conn) }
		}
		cl := chaos.NewListener(l, cfg.seed+int64(k), perConn)
		listeners[k] = cl
		srv := agentrpc.NewServer(cl, la, agentrpc.WithTelemetry(serverSet))
		servers[k] = srv
		go srv.Serve()
		ra, err := agentrpc.Dial(l.Addr().String(), agentrpc.WithPolicy(pol), agentrpc.WithTelemetry(clientSet))
		if err != nil {
			return nil, err
		}
		agents[k] = ra
	}
	if sch.crash {
		listeners[0].CrashAfterReads(cfg.crashAfterReads, cfg.crashDown)
	}

	mcfg := cluster.DefaultManagerConfig()
	mcfg.Seed = cfg.seed
	mgr, err := cluster.NewManager(scen, agents, mcfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	a, stats, err := mgr.Solve()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(t0)

	var injected chaos.Stats
	for _, cl := range listeners {
		s := cl.Stats()
		injected.Drops += s.Drops
		injected.Errs += s.Errs
		injected.Delays += s.Delays
		injected.Truncs += s.Truncs
		injected.Crashes += s.Crashes
	}
	row := &experiment.FaultsRow{
		Schedule:       sch.name,
		Clients:        scen.NumClients(),
		Clusters:       scen.Cloud.NumClusters(),
		Seed:           cfg.seed,
		FaultRate:      sch.rate,
		Crashes:        injected.Crashes,
		Profit:         a.Profit(),
		RefProfit:      refProfit,
		Unplaced:       stats.Unplaced,
		Rounds:         stats.ImproveRounds,
		Elapsed:        elapsed,
		Retries:        clientSet.Counter("rpc_client_retries_total").Value(),
		Redials:        clientSet.Counter("rpc_client_redials_total").Value(),
		Hedges:         clientSet.Counter("rpc_client_hedges_total").Value(),
		HedgeWins:      clientSet.Counter("rpc_client_hedge_wins_total").Value(),
		DedupHits:      serverSet.Counter("rpc_server_dedup_hits_total").Value(),
		InjectedDrops:  injected.Drops,
		InjectedErrs:   injected.Errs,
		InjectedDelays: injected.Delays,
		InjectedTruncs: injected.Truncs,
	}
	for _, op := range []string{"cluster_id", "reset", "evaluate", "commit", "remove", "improve", "profit", "snapshot"} {
		row.Calls += clientSet.Counter(telemetry.Name("rpc_client_calls_total", "op", op)).Value()
		row.CallErrs += clientSet.Counter(telemetry.Name("rpc_client_errors_total", "op", op)).Value()
	}
	if elapsed > 0 {
		row.RoundsPerSec = float64(row.Rounds) / elapsed.Seconds()
	}
	if refProfit != 0 {
		row.RelProfitGap = math.Abs(row.Profit-refProfit) / math.Max(1, math.Abs(refProfit))
		row.Converged = row.RelProfitGap <= 1e-9
	}
	return row, nil
}

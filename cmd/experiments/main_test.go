package main

import "testing"

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "frobnicate"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-run"}); err == nil {
		t.Fatal("dangling flag accepted")
	}
}

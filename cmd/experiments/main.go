// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments -run fig4|fig5|complexity|sim|ablation|reassign|multistart|scale|all [-quick] [-seed 1]
//
// -quick reduces scenario and Monte-Carlo draw counts for a fast run;
// without it the sweep uses the paper's counts (≥20 scenarios per point,
// 5 at 200 clients, 10,000 Monte-Carlo draws) and takes a while.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which     = fs.String("run", "all", "fig4, fig5, complexity, sim, ablation, comparators, epochs, predictors, reassign, multistart, scale or all")
		benchOut  = fs.String("bench-out", "BENCH_reassign.json", "output path for the reassign benchmark record (empty = don't write)")
		msOut     = fs.String("multistart-out", "BENCH_multistart.json", "output path for the multistart benchmark record (empty = don't write)")
		scaleOut  = fs.String("scale-out", "BENCH_scale.json", "output path for the scale benchmark record (empty = don't write)")
		scaleMax  = fs.Int("scale-max", 0, "cap the scale ladder's client counts (0 = full 1k..1M ladder)")
		quick     = fs.Bool("quick", false, "reduced scenario/draw counts")
		seed      = fs.Int64("seed", 1, "base seed")
		draws     = fs.Int("draws", 0, "override Monte-Carlo draws per scenario (0 = mode default)")
		scenarios = fs.Int("scenarios", 0, "override scenarios per client count (0 = mode default)")
		metrics   = fs.Bool("metrics", false, "collect solver telemetry across the run and dump it (Prometheus text) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tel *telemetry.Set
	if *metrics {
		tel = telemetry.New(nil)
		defer tel.Metrics.WritePrometheus(os.Stderr)
	}

	var sweepPoints []experiment.SweepPoint
	needSweep := *which == "all" || *which == "fig4" || *which == "fig5"
	if needSweep {
		cfg := sweepConfig(*quick, *seed)
		cfg.Solver.Telemetry = tel
		if *draws > 0 {
			cfg.MCDraws = *draws
		}
		if *scenarios > 0 {
			cfg.ScenariosPerCount = *scenarios
			if cfg.ScenariosAtMaxCount > *scenarios {
				cfg.ScenariosAtMaxCount = *scenarios
			}
		}
		fmt.Printf("running sweep: counts=%v scenarios=%d (max-count %d) draws=%d...\n",
			cfg.ClientCounts, cfg.ScenariosPerCount, cfg.ScenariosAtMaxCount, cfg.MCDraws)
		pts, err := experiment.RunSweep(cfg)
		if err != nil {
			return err
		}
		sweepPoints = pts
	}

	switch *which {
	case "fig4":
		fmt.Println(experiment.Fig4Table(sweepPoints))
		fmt.Println(experiment.Fig4Chart(sweepPoints))
	case "fig5":
		fmt.Println(experiment.Fig5Table(sweepPoints))
		fmt.Println(experiment.Fig5Chart(sweepPoints))
	case "complexity":
		return runComplexity(*quick, *seed, tel)
	case "sim":
		return runSim(*quick, *seed, tel)
	case "ablation":
		return runAblation(*quick, *seed, tel)
	case "comparators":
		return runComparators(*quick, *seed, tel)
	case "epochs":
		return runEpochs(*quick, *seed, tel)
	case "predictors":
		return runPredictors(*quick, *seed, tel)
	case "reassign":
		return runReassign(*quick, *seed, tel, *benchOut)
	case "multistart":
		return runMultistart(*quick, *seed, tel, *msOut)
	case "scale":
		return runScale(*quick, *seed, *scaleOut, *scaleMax)
	case "all":
		fmt.Println(experiment.Fig4Table(sweepPoints))
		fmt.Println(experiment.Fig4Chart(sweepPoints))
		fmt.Println(experiment.Fig5Table(sweepPoints))
		fmt.Println(experiment.Fig5Chart(sweepPoints))
		if err := runComplexity(*quick, *seed, tel); err != nil {
			return err
		}
		if err := runSim(*quick, *seed, tel); err != nil {
			return err
		}
		if err := runAblation(*quick, *seed, tel); err != nil {
			return err
		}
		if err := runComparators(*quick, *seed, tel); err != nil {
			return err
		}
		if err := runEpochs(*quick, *seed, tel); err != nil {
			return err
		}
		if err := runPredictors(*quick, *seed, tel); err != nil {
			return err
		}
		if err := runReassign(*quick, *seed, tel, *benchOut); err != nil {
			return err
		}
		return runMultistart(*quick, *seed, tel, *msOut)
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}

func sweepConfig(quick bool, seed int64) experiment.SweepConfig {
	cfg := experiment.DefaultSweepConfig()
	cfg.BaseSeed = seed
	if quick {
		cfg.ClientCounts = []int{10, 20, 50, 100, 150, 200}
		cfg.ScenariosPerCount = 5
		cfg.ScenariosAtMaxCount = 3
		cfg.MCDraws = 100
		cfg.MCPasses = 3
		return cfg
	}
	// Paper-scale scenario counts; the Monte-Carlo draw count is reduced
	// from the paper's 10,000 to 1,500 — each of our draws already includes
	// the reassignment local search, and the best-found envelope saturates
	// well before that (see EXPERIMENTS.md).
	cfg.ScenariosPerCount = 20
	cfg.ScenariosAtMaxCount = 5
	cfg.MCDraws = 1500
	cfg.MCPasses = 5
	return cfg
}

func runComplexity(quick bool, seed int64, tel *telemetry.Set) error {
	cfg := experiment.DefaultComplexityConfig()
	cfg.BaseSeed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.ClientCounts = []int{25, 50, 100}
		cfg.Repeats = 2
	}
	rows, err := experiment.RunComplexity(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.ComplexityTable(rows))
	return nil
}

func runSim(quick bool, seed int64, tel *telemetry.Set) error {
	cfg := experiment.DefaultValidationConfig()
	cfg.Seed = seed
	cfg.Solver.Telemetry = tel
	cfg.Sim.Telemetry = tel
	if quick {
		cfg.Clients = 30
		cfg.Sim.Horizon = 5000
		cfg.Sim.Warmup = 500
	}
	v, err := experiment.RunValidation(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.ValidationTable(v))
	return nil
}

func runAblation(quick bool, seed int64, tel *telemetry.Set) error {
	cfg := experiment.DefaultAblationConfig()
	cfg.BaseSeed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.Clients = 50
		cfg.Scenarios = 4
	}
	rows, err := experiment.RunAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.AblationTable(rows))
	return nil
}

func runComparators(quick bool, seed int64, tel *telemetry.Set) error {
	cfg := experiment.DefaultComparatorConfig()
	cfg.BaseSeed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.Clients = 40
		cfg.Scenarios = 3
		cfg.MC.Draws = 50
	}
	rows, err := experiment.RunComparators(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.ComparatorTable(rows))
	return nil
}

func runEpochs(quick bool, seed int64, tel *telemetry.Set) error {
	cfg := experiment.DefaultEpochsConfig()
	cfg.Seed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.Clients = 30
		cfg.Epochs = 12
	}
	rows, err := experiment.RunEpochsExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.EpochsTable(rows))
	return nil
}

func runReassign(quick bool, seed int64, tel *telemetry.Set, out string) error {
	cfg := experiment.DefaultReassignConfig()
	cfg.BaseSeed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.ClientCounts = []int{50, 250}
		cfg.Repeats = 2
	}
	rep, err := experiment.RunReassign(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.ReassignTable(rep))
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiment.WriteReassignJSON(f, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}

func runMultistart(quick bool, seed int64, tel *telemetry.Set, out string) error {
	cfg := experiment.DefaultMultistartConfig()
	cfg.BaseSeed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.ClientCounts = []int{50}
		cfg.MCDraws = 16
		cfg.Repeats = 2
	}
	rep, err := experiment.RunMultistart(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.MultistartTable(rep))
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiment.WriteMultistartJSON(f, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}

func runPredictors(quick bool, seed int64, tel *telemetry.Set) error {
	cfg := experiment.DefaultPredictorConfig()
	cfg.Seed = seed
	cfg.Solver.Telemetry = tel
	if quick {
		cfg.Clients = 25
		cfg.Epochs = 10
	}
	rows, err := experiment.RunPredictors(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiment.PredictorTable(rows))
	return nil
}

// runScale is deliberately not part of -run all: the full ladder ends at
// a 1M-client instance and takes minutes even in scale mode.
func runScale(quick bool, seed int64, out string, maxClients int) error {
	cfg := experiment.DefaultScaleExpConfig()
	cfg.BaseSeed = seed
	if quick {
		cfg.ClientCounts = []int{1_000, 10_000}
	}
	if maxClients > 0 {
		var counts []int
		for _, n := range cfg.ClientCounts {
			if n <= maxClients {
				counts = append(counts, n)
			}
		}
		cfg.ClientCounts = counts
	}
	rep, err := experiment.RunScale(cfg, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Println(experiment.ScaleTable(rep))
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiment.WriteScaleJSON(f, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}

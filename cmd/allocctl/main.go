// Command allocctl is the central resource manager of the paper's
// distributed solver: it connects to one allocd agent per cluster and
// coordinates the initial greedy solution and the improvement rounds.
//
// Usage:
//
//	allocctl -scenario scenario.json -agents 127.0.0.1:7070,127.0.0.1:7071,...
//
// The agent list must be ordered by cluster index and cover every
// cluster of the scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	cloudalloc "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "allocctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("allocctl", flag.ContinueOnError)
	var (
		path    = fs.String("scenario", "", "scenario JSON path (required)")
		addrs   = fs.String("agents", "", "comma-separated agent addresses, one per cluster, in cluster order")
		seed    = fs.Int64("seed", 1, "manager seed")
		metrics = fs.Bool("metrics", false, "after the solve, dump manager and client-side RPC metrics (Prometheus text) to stderr")

		rpcTimeout  = fs.Duration("rpc-timeout", cloudalloc.DefaultAgentCallPolicy().Timeout, "per-attempt RPC deadline (0 disables)")
		rpcAttempts = fs.Int("rpc-attempts", cloudalloc.DefaultAgentCallPolicy().MaxAttempts, "max attempts per RPC (transport failures retry on a fresh connection)")
		hedge       = fs.Duration("hedge", 0, "hedge read-only RPCs on a second connection after this delay (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *addrs == "" {
		return fmt.Errorf("-scenario and -agents are required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	var tel *cloudalloc.Telemetry
	if *metrics {
		tel = cloudalloc.NewTelemetry(nil)
	}
	pol := cloudalloc.DefaultAgentCallPolicy()
	pol.Timeout = *rpcTimeout
	pol.MaxAttempts = *rpcAttempts
	pol.HedgeDelay = *hedge
	pol.Seed = *seed
	var agents []cloudalloc.Agent
	for _, addr := range strings.Split(*addrs, ",") {
		ag, err := cloudalloc.DialAgentPolicy(strings.TrimSpace(addr), pol, tel)
		if err != nil {
			return err
		}
		agents = append(agents, ag)
	}
	cfg := cloudalloc.DefaultManagerConfig()
	cfg.Seed = *seed
	cfg.Telemetry = tel
	mgr, err := cloudalloc.NewManager(scen, agents, cfg)
	if err != nil {
		return err
	}
	defer mgr.Close()

	a, stats, err := mgr.Solve()
	if err != nil {
		return err
	}
	b := a.ProfitBreakdown()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "initial profit\t%.2f\n", stats.InitialProfit)
	fmt.Fprintf(w, "final profit\t%.2f\n", stats.FinalProfit)
	fmt.Fprintf(w, "improve rounds Δ\t%+.2f\n", stats.Attribution.Improve)
	fmt.Fprintf(w, "central reassign Δ\t%+.2f\n", stats.Attribution.CentralReassign)
	fmt.Fprintf(w, "improve rounds\t%d\n", stats.ImproveRounds)
	fmt.Fprintf(w, "activations / deactivations\t%d / %d\n", stats.Activations, stats.Deactivations)
	fmt.Fprintf(w, "clients assigned\t%d of %d\n", b.Assigned, scen.NumClients())
	fmt.Fprintf(w, "active servers\t%d\n", b.ActiveServers)
	fmt.Fprintf(w, "initial pass\t%s\n", stats.InitElapsed)
	for i, d := range stats.RoundDurations {
		fmt.Fprintf(w, "round %d\t%s\n", i+1, d)
	}
	fmt.Fprintf(w, "elapsed\t%s\n", stats.Elapsed)
	w.Flush()
	if tel != nil {
		tel.Metrics.WritePrometheus(os.Stderr)
	}
	return nil
}

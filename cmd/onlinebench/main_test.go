package main

import (
	"testing"
)

// TestOnlinebenchSmoke runs both modes on a small instance: the CI
// retention gate in miniature. Throughput is not gated here — test
// hosts are too noisy for a dec/s floor — but the profit-retention
// gate and the report shape are.
func TestOnlinebenchSmoke(t *testing.T) {
	cfg := config{
		clients:      120,
		clusters:     4,
		seed:         1,
		events:       8000,
		absentFrac:   0.3,
		commitRel:    0.20,
		commitFloor:  30,
		flash:        true,
		minRetention: 0.99,
	}
	rep, failures, err := execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) > 0 {
		t.Fatalf("gate failures: %v", failures)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Events != cfg.events {
			t.Fatalf("%s: %d events recorded, want %d", r.Mode, r.Events, cfg.events)
		}
		if r.DecisionsPerSec <= 0 || r.P99Latency <= 0 {
			t.Fatalf("%s: empty throughput/latency: %+v", r.Mode, r)
		}
		if r.Admits == 0 {
			t.Fatalf("%s: churn stream admitted nothing", r.Mode)
		}
		if r.Retention < cfg.minRetention {
			t.Fatalf("%s: retention %.4f below %.2f", r.Mode, r.Retention, cfg.minRetention)
		}
	}
	if sync := rep.Rows[0]; sync.Commits == 0 {
		t.Fatal("sync run never committed — thresholds too high for the stream")
	}
}

// Command onlinebench drives the online allocation service with a
// seeded Poisson churn workload (arrivals, departures, rate jitter,
// optional flash-crowd burst) and reports sustained decisions/sec,
// p50/p99 decision latency, commit amortization, and the profit retained
// after the stream versus a cold full re-solve of the true final
// scenario. Results land in BENCH_online.json with BenchMeta.
//
// Exit status is non-zero when throughput or profit retention misses the
// gates — the CI smoke for the streaming serving path.
//
// Usage:
//
//	onlinebench -clients 2000 -clusters 8 -events 200000 -out BENCH_online.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/workload"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "onlinebench:", err)
		os.Exit(1)
	}
}

type config struct {
	clients      int
	clusters     int
	seed         int64
	events       int
	absentFrac   float64
	commitRel    float64
	commitFloor  float64
	flash        bool
	minDecPerSec float64
	minRetention float64
	out          string
	table        bool
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("onlinebench", flag.ContinueOnError)
	var cfg config
	fs.IntVar(&cfg.clients, "clients", 2000, "clients in the generated scenario")
	fs.IntVar(&cfg.clusters, "clusters", 8, "clusters in the generated scenario")
	fs.Int64Var(&cfg.seed, "seed", 1, "master seed: workload, churn stream, solver")
	fs.IntVar(&cfg.events, "events", 200000, "events per run")
	fs.Float64Var(&cfg.absentFrac, "absent", 0.3, "fraction of clients starting absent (arrival headroom)")
	fs.Float64Var(&cfg.commitRel, "commit-rel", 0.20, "relative commit threshold (fraction of cluster committed rate)")
	fs.Float64Var(&cfg.commitFloor, "commit-floor", 30, "absolute commit threshold floor (λ̃ units)")
	fs.BoolVar(&cfg.flash, "flash", true, "inject a flash-crowd burst mid-stream")
	fs.Float64Var(&cfg.minDecPerSec, "min-dps", 100000, "throughput gate: minimum decisions/sec in background mode, the serving configuration (0 disables)")
	fs.Float64Var(&cfg.minRetention, "min-retention", 0.99, "profit gate: minimum online/cold profit ratio, enforced in both modes (0 disables)")
	fs.StringVar(&cfg.out, "out", "", "write the OnlineReport JSON here (e.g. BENCH_online.json)")
	fs.BoolVar(&cfg.table, "table", true, "print the human-readable table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, failures, err := execute(cfg)
	if err != nil {
		return err
	}
	if cfg.table {
		fmt.Fprint(stdout, experiment.OnlineTable(rep))
	}
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiment.WriteOnlineJSON(f, rep); err != nil {
			return err
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate failures: %v", failures)
	}
	return nil
}

func execute(cfg config) (*experiment.OnlineReport, []string, error) {
	rep := &experiment.OnlineReport{BenchMeta: experiment.NewBenchMeta()}
	var failures []string
	for _, mode := range []string{"sync", "background"} {
		row, err := runMode(cfg, mode)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", mode, err)
		}
		rep.Rows = append(rep.Rows, row)
		// Throughput is gated on background mode — the serving
		// configuration, with commits off the hot path. Sync mode exists
		// for deterministic replay and is commit-bound by construction, so
		// its throughput is reported but not gated. Profit retention is
		// gated in both modes.
		if mode == "background" && cfg.minDecPerSec > 0 && row.DecisionsPerSec < cfg.minDecPerSec {
			failures = append(failures, fmt.Sprintf(
				"background throughput %.0f dec/s below gate %.0f", row.DecisionsPerSec, cfg.minDecPerSec))
		}
		if cfg.minRetention > 0 && row.Retention < cfg.minRetention {
			failures = append(failures, fmt.Sprintf(
				"%s profit retention %.4f below gate %.4f", mode, row.Retention, cfg.minRetention))
		}
	}
	return rep, failures, nil
}

func runMode(cfg config, mode string) (experiment.OnlineRow, error) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = cfg.clients
	wcfg.NumClusters = cfg.clusters
	wcfg.Seed = cfg.seed
	// Capacity-match the cloud to the population: keep the seed workload's
	// ~2.5 servers/client ratio so profit is set by placement quality, not
	// by which fraction of an oversubscribed population gets picked.
	if per := cfg.clients * 5 / (2 * cfg.clusters); per > wcfg.MaxServersPerCluster {
		wcfg.MinServersPerCluster = per
		wcfg.MaxServersPerCluster = per
	}
	scen, err := workload.Generate(wcfg)
	if err != nil {
		return experiment.OnlineRow{}, err
	}
	for i := 0; i < int(float64(cfg.clients)*cfg.absentFrac); i++ {
		scen.Clients[i].ArrivalRate = 0
		scen.Clients[i].PredictedRate = 0
	}

	ocfg := online.DefaultConfig()
	ocfg.CommitRel = cfg.commitRel
	ocfg.CommitFloor = cfg.commitFloor
	ocfg.Solver.Seed = cfg.seed
	ocfg.Background = mode == "background"
	svc, err := online.New(scen, ocfg)
	if err != nil {
		return experiment.OnlineRow{}, err
	}
	defer svc.Close()

	ccfg := online.DefaultChurnConfig()
	ccfg.Events = cfg.events
	ccfg.Seed = cfg.seed
	if cfg.flash {
		ccfg.FlashAt = cfg.events / 2
		ccfg.FlashSize = cfg.clients / 20
		ccfg.FlashBoost = 1.5
	}
	churn := online.NewChurn(scen, ccfg)

	// Slam the whole stream (no pacing): decisions/sec is events over
	// wall clock, latencies are measured per call into a preallocated
	// sample buffer so the measurement itself stays allocation-free.
	lat := make([]time.Duration, 0, cfg.events)
	start := time.Now()
	for {
		ev, ok := churn.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		svc.Decide(ev)
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)

	svc.Flush()
	onlineProfit := svc.Profit()

	// Cold baseline: a full batch solve of the true final scenario (every
	// present client at its final rate, including clients the online path
	// rejected).
	final := model.CloneScenario(scen)
	rates := make([]float64, len(final.Clients))
	churn.Rates(rates)
	for i := range final.Clients {
		final.Clients[i].ArrivalRate = rates[i]
		final.Clients[i].PredictedRate = rates[i]
	}
	solver, err := core.NewSolver(final, coldConfig(cfg.seed))
	if err != nil {
		return experiment.OnlineRow{}, err
	}
	cold, _, err := solver.Solve()
	if err != nil {
		return experiment.OnlineRow{}, err
	}
	coldProfit := cold.Profit()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	row := experiment.OnlineRow{
		Mode:            mode,
		Clients:         cfg.clients,
		Clusters:        cfg.clusters,
		Seed:            cfg.seed,
		Events:          len(lat),
		Flash:           cfg.flash,
		CommitRel:       cfg.commitRel,
		CommitFloor:     cfg.commitFloor,
		Elapsed:         elapsed,
		DecisionsPerSec: float64(len(lat)) / elapsed.Seconds(),
		P50Latency:      percentile(lat, 0.50),
		P99Latency:      percentile(lat, 0.99),
		Admits:          svc.Admits(),
		Rejects:         svc.Rejects(),
		Commits:         svc.Commits(),
		OnlineProfit:    onlineProfit,
		ColdProfit:      coldProfit,
	}
	if row.Commits > 0 {
		row.EventsPerCommit = float64(len(lat)) / float64(row.Commits)
	}
	if coldProfit != 0 {
		row.Retention = onlineProfit / coldProfit
	}
	return row, nil
}

// coldConfig is the full-quality batch configuration used for the
// baseline re-solve.
func coldConfig(seed int64) core.Config {
	c := core.DefaultConfig()
	c.Seed = seed
	return c
}

// percentile returns the q-quantile of the sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Command cloudalloc generates scenarios and runs the profit-maximizing
// resource allocators on them.
//
// Usage:
//
//	cloudalloc gen -out scenario.json [-clients 50] [-seed 1]
//	cloudalloc solve -scenario scenario.json [-method proposed|ps|montecarlo|annealing|genetic|exhaustive] [-simulate]
//	cloudalloc inspect -scenario scenario.json
//	cloudalloc trace -scenario scenario.json -out trace.csv [-epochs 24]
//	cloudalloc controller -scenario scenario.json -trace trace.csv [-policy threshold:0.2] [-predictor ewma:0.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	cloudalloc "repro"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudalloc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cloudalloc <gen|solve|inspect|trace|controller|replay> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "solve":
		return runSolve(args[1:])
	case "inspect":
		return runInspect(args[1:])
	case "trace":
		return runTrace(args[1:])
	case "controller":
		return runController(args[1:])
	case "replay":
		return runReplay(args[1:])
	default:
		return fmt.Errorf("unknown command %q (want gen, solve, inspect, trace, controller or replay)", args[0])
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		out      = fs.String("out", "scenario.json", "output path")
		clients  = fs.Int("clients", 50, "number of clients")
		seed     = fs.Int64("seed", 1, "generator seed")
		clusters = fs.Int("clusters", 5, "number of clusters")
		servers  = fs.Int("servers", 0, "exact servers per cluster (0 keeps the default random range)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = *clients
	cfg.Seed = *seed
	cfg.NumClusters = *clusters
	if *servers > 0 {
		cfg.MinServersPerCluster = *servers
		cfg.MaxServersPerCluster = *servers
	}
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		return err
	}
	if err := scen.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d clients, %d clusters, %d servers\n",
		*out, scen.NumClients(), scen.Cloud.NumClusters(), scen.Cloud.NumServers())
	return nil
}

func runSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	var (
		path         = fs.String("scenario", "", "scenario JSON path (required)")
		method       = fs.String("method", "proposed", "proposed, ps, montecarlo, annealing, genetic or exhaustive")
		seed         = fs.Int64("seed", 1, "solver seed")
		parallel     = fs.Bool("parallel", false, "parallel per-cluster evaluation")
		workers      = fs.Int("workers", 0, "fan-out workers for multi-start, Monte-Carlo draws and the PS sweep (0 = GOMAXPROCS, 1 = sequential; results are identical either way)")
		draws        = fs.Int("draws", 200, "Monte-Carlo draws")
		topk         = fs.Int("topk", 0, "proposed: evaluate only the top-k index-ranked clusters per client (0 = exhaustive scan)")
		shards       = fs.Int("shards", 0, "proposed: partition clusters across this many parallel shards (0/1 = unsharded)")
		simulate     = fs.Bool("simulate", false, "validate the result with the discrete-event simulator")
		save         = fs.String("save", "", "write the resulting allocation to this JSON file")
		metrics      = fs.Bool("metrics", false, "collect solver/simulator telemetry and dump it (Prometheus text) to stderr")
		traceOut     = fs.String("trace-out", "", "write the solve's span tree as Chrome trace-event JSON to this file (Perfetto-loadable; implies telemetry)")
		flightOut    = fs.String("flight-out", "", "write the flight recorder's solver decisions as JSON to this file (implies telemetry)")
		flightSample = fs.Int("flight-sample", 1, "record flight events for 1-in-N clients (deterministic hash of the client ID)")
		flightCap    = fs.Int("flight-cap", 0, "flight recorder ring capacity (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("solve: -scenario is required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	var tel *cloudalloc.Telemetry
	if *metrics || *traceOut != "" || *flightOut != "" {
		tel = cloudalloc.NewTelemetry(nil)
		cloudalloc.ConfigureFlight(tel, *flightCap, *flightSample)
	}

	var a *cloudalloc.Allocation
	switch *method {
	case "proposed":
		al, err := cloudalloc.NewAllocator(scen, cloudalloc.WithSeed(*seed),
			cloudalloc.WithParallel(*parallel), cloudalloc.WithWorkers(*workers),
			cloudalloc.WithCandidateClusters(*topk), cloudalloc.WithShards(*shards),
			cloudalloc.WithTelemetry(tel))
		if err != nil {
			return err
		}
		var stats cloudalloc.SolveStats
		a, stats, err = al.Solve()
		if err != nil {
			return err
		}
		fmt.Printf("proposed: initial %.2f → final %.2f in %d local-search iters (%s)\n",
			stats.InitialProfit, stats.FinalProfit, stats.LocalSearchIters, stats.Elapsed)
		printAttribution(stats)
	case "ps":
		psCfg := cloudalloc.DefaultPSConfig()
		psCfg.Workers = *workers
		a, err = cloudalloc.SolveModifiedPS(scen, psCfg)
		if err != nil {
			return err
		}
	case "montecarlo":
		cfg := cloudalloc.DefaultMCConfig()
		cfg.Draws = *draws
		cfg.Seed = *seed
		cfg.Workers = *workers
		env, err := cloudalloc.RunMonteCarlo(scen, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("monte carlo over %d draws: best %.2f worst %.2f (initial: best %.2f worst %.2f)\n",
			env.Draws, env.BestOptimized, env.WorstOptimized, env.BestInitial, env.WorstInitial)
		a = env.Best
	case "annealing":
		cfg := cloudalloc.DefaultSAConfig()
		cfg.Seed = *seed
		a, err = cloudalloc.SolveAnnealing(scen, cfg)
		if err != nil {
			return err
		}
	case "genetic":
		cfg := cloudalloc.DefaultGAConfig()
		cfg.Seed = *seed
		a, err = cloudalloc.SolveGenetic(scen, cfg)
		if err != nil {
			return err
		}
	case "exhaustive":
		a, err = cloudalloc.SolveExhaustive(scen)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	printBreakdown(a)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := a.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("allocation written to %s\n", *save)
	}
	if *simulate {
		cfg := cloudalloc.DefaultSimConfig()
		cfg.Telemetry = tel
		res, err := cloudalloc.Simulate(a, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("simulation: %d requests completed, realized profit %.2f (analytic %.2f)\n",
			res.Completed, res.Profit, res.AnalyticValue)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := cloudalloc.WriteChromeTrace(f, tel.Tracer.Snapshot()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	if *flightOut != "" {
		events := tel.Flight.Snapshot()
		f, err := os.Create(*flightOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("flight recorder: %d retained events written to %s\n", len(events), *flightOut)
	}
	if *metrics && tel != nil {
		tel.Metrics.WritePrometheus(os.Stderr)
	}
	return nil
}

// printAttribution reports where the profit came from, phase by phase:
// the greedy initial solution, then each local-search phase's delta.
func printAttribution(stats cloudalloc.SolveStats) {
	at, tm := stats.Attribution, stats.Timings
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "phase\tprofit Δ\ttime\n")
	fmt.Fprintf(w, "greedy initial\t%+.2f\t%s\n", at.Initial, tm.Greedy)
	fmt.Fprintf(w, "share adjust\t%+.2f\t\n", at.ShareAdjust)
	fmt.Fprintf(w, "dispersion adjust\t%+.2f\t\n", at.DispersionAdjust)
	fmt.Fprintf(w, "server turn-on\t%+.2f\t\n", at.TurnOn)
	fmt.Fprintf(w, "server turn-off\t%+.2f\t%s (sweeps)\n", at.TurnOff, tm.Sweep)
	fmt.Fprintf(w, "reassignment\t%+.2f\t%s\n", at.Reassign, tm.Reassign)
	if at.Reconcile != 0 || tm.Reconcile != 0 {
		fmt.Fprintf(w, "reconciliation\t%+.2f\t%s\n", at.Reconcile, tm.Reconcile)
	}
	fmt.Fprintf(w, "final\t%.2f\t(residual %+.2g)\n", at.Final, at.Residual())
	w.Flush()
}

func printBreakdown(a *cloudalloc.Allocation) {
	b := a.ProfitBreakdown()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "profit\t%.2f\n", b.Profit)
	fmt.Fprintf(w, "revenue\t%.2f\n", b.Revenue)
	fmt.Fprintf(w, "energy cost\t%.2f\n", b.EnergyCost)
	fmt.Fprintf(w, "clients assigned\t%d (served %d)\n", b.Assigned, b.Served)
	fmt.Fprintf(w, "active servers\t%d\n", b.ActiveServers)
	w.Flush()
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	path := fs.String("scenario", "", "scenario JSON path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("inspect: -scenario is required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "clients\t%d\n", scen.NumClients())
	fmt.Fprintf(w, "clusters\t%d\n", scen.Cloud.NumClusters())
	fmt.Fprintf(w, "servers\t%d\n", scen.Cloud.NumServers())
	fmt.Fprintf(w, "server classes\t%d\n", len(scen.Cloud.ServerClasses))
	fmt.Fprintf(w, "utility classes\t%d\n", len(scen.Cloud.UtilityClasses))
	var load, capacity float64
	for i := range scen.Clients {
		load += scen.Clients[i].PredictedRate * scen.Clients[i].ProcTime
	}
	for j := range scen.Cloud.Servers {
		capacity += scen.Cloud.ServerClass(model.ServerID(j)).ProcCap
	}
	fmt.Fprintf(w, "processing load / capacity\t%.1f / %.1f (%.0f%%)\n",
		load, capacity, 100*load/capacity)
	w.Flush()
	return nil
}

// runReplay loads a saved allocation and simulates it.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		path      = fs.String("scenario", "", "scenario JSON path (required)")
		allocPath = fs.String("alloc", "", "allocation JSON path (required)")
		horizon   = fs.Float64("horizon", 5000, "simulated time span")
		seed      = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *allocPath == "" {
		return fmt.Errorf("replay: -scenario and -alloc are required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	f, err := os.Open(*allocPath)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := cloudalloc.LoadAllocation(scen, f)
	if err != nil {
		return err
	}
	printBreakdown(a)
	cfg := cloudalloc.DefaultSimConfig()
	cfg.Horizon = *horizon
	cfg.Warmup = *horizon / 10
	cfg.Seed = *seed
	res, err := cloudalloc.Simulate(a, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulation: %d requests, realized profit %.2f (analytic %.2f)\n",
		res.Completed, res.Profit, res.AnalyticValue)
	return nil
}

package main

import (
	"path/filepath"
	"testing"
)

func TestRunRequiresCommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no command accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestGenSolveInspectPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	if err := runGen([]string{"-out", path, "-clients", "8", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := runInspect([]string{"-scenario", path}); err != nil {
		t.Fatal(err)
	}
	if err := runSolve([]string{"-scenario", path, "-method", "proposed"}); err != nil {
		t.Fatal(err)
	}
	if err := runSolve([]string{"-scenario", path, "-method", "ps"}); err != nil {
		t.Fatal(err)
	}
	if err := runSolve([]string{"-scenario", path, "-method", "montecarlo", "-draws", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveValidation(t *testing.T) {
	if err := runSolve([]string{"-method", "proposed"}); err == nil {
		t.Fatal("missing scenario accepted")
	}
	path := filepath.Join(t.TempDir(), "s.json")
	if err := runGen([]string{"-out", path, "-clients", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := runSolve([]string{"-scenario", path, "-method", "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := runSolve([]string{"-scenario", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestInspectValidation(t *testing.T) {
	if err := runInspect(nil); err == nil {
		t.Fatal("missing scenario accepted")
	}
}

func TestGenValidation(t *testing.T) {
	if err := runGen([]string{"-out", filepath.Join(t.TempDir(), "s.json"), "-clients", "0"}); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestTraceAndControllerPipeline(t *testing.T) {
	dir := t.TempDir()
	scen := filepath.Join(dir, "s.json")
	trace := filepath.Join(dir, "t.csv")
	if err := runGen([]string{"-out", scen, "-clients", "6", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := runTrace([]string{"-scenario", scen, "-out", trace, "-epochs", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := runController([]string{"-scenario", scen, "-trace", trace, "-policy", "threshold:0.2"}); err != nil {
		t.Fatal(err)
	}
	if err := runController([]string{"-scenario", scen, "-trace", trace,
		"-policy", "periodic:2", "-predictor", "ewma:0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerValidation(t *testing.T) {
	if err := runController([]string{"-policy", "always"}); err == nil {
		t.Fatal("missing paths accepted")
	}
	dir := t.TempDir()
	scen := filepath.Join(dir, "s.json")
	trace := filepath.Join(dir, "t.csv")
	if err := runGen([]string{"-out", scen, "-clients", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := runTrace([]string{"-scenario", scen, "-out", trace, "-epochs", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := runController([]string{"-scenario", scen, "-trace", trace, "-policy", "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if err := runController([]string{"-scenario", scen, "-trace", trace, "-predictor", "bogus:1"}); err == nil {
		t.Fatal("bogus predictor accepted")
	}
	if err := runController([]string{"-scenario", scen, "-trace", trace, "-policy", "threshold:-1"}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if err := runController([]string{"-scenario", scen, "-trace", trace, "-predictor", "holt:0.5"}); err == nil {
		t.Fatal("holt without beta accepted")
	}
}

func TestTraceValidation(t *testing.T) {
	if err := runTrace(nil); err == nil {
		t.Fatal("missing scenario accepted")
	}
}

func TestSolveSaveReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	scen := filepath.Join(dir, "s.json")
	allocPath := filepath.Join(dir, "a.json")
	if err := runGen([]string{"-out", scen, "-clients", "6", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := runSolve([]string{"-scenario", scen, "-save", allocPath}); err != nil {
		t.Fatal(err)
	}
	if err := runReplay([]string{"-scenario", scen, "-alloc", allocPath, "-horizon", "500"}); err != nil {
		t.Fatal(err)
	}
	if err := runReplay([]string{"-scenario", scen}); err == nil {
		t.Fatal("missing alloc path accepted")
	}
}

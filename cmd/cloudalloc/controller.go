package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	cloudalloc "repro"
)

// runTrace generates a per-epoch rate trace CSV for a scenario.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		path    = fs.String("scenario", "", "scenario JSON path (required)")
		out     = fs.String("out", "trace.csv", "output CSV path")
		epochs  = fs.Int("epochs", 24, "number of epochs")
		diurnal = fs.Float64("diurnal", 0.4, "diurnal amplitude (0 disables)")
		flashAt = fs.Int("flash-at", -1, "epoch a flash crowd starts (-1 disables)")
		boost   = fs.Float64("flash-boost", 2.5, "flash crowd rate multiplier")
		noise   = fs.Float64("noise", 0.05, "lognormal noise sigma")
		seed    = fs.Int64("seed", 1, "trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("trace: -scenario is required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	var patterns []cloudalloc.Pattern
	if *diurnal > 0 {
		patterns = append(patterns, cloudalloc.Diurnal{Period: *epochs, Amplitude: *diurnal, Phase: 0.1})
	}
	if *flashAt >= 0 {
		patterns = append(patterns, cloudalloc.FlashCrowd{At: *flashAt, Duration: 2, Boost: *boost, Every: 4})
	}
	tr, err := cloudalloc.GenerateTrace(base, *epochs, patterns, *noise, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d epochs × %d clients\n", *out, *epochs, scen.NumClients())
	return nil
}

// runController replays a trace against a decision policy.
func runController(args []string) error {
	fs := flag.NewFlagSet("controller", flag.ContinueOnError)
	var (
		path      = fs.String("scenario", "", "scenario JSON path (required)")
		tracePath = fs.String("trace", "", "trace CSV path (required)")
		policyArg = fs.String("policy", "threshold:0.2", "always, never, threshold:<rel>, periodic:<n>")
		predArg   = fs.String("predictor", "", "'' (oracle), last, ewma:<alpha>, holt:<alpha>,<beta>, mean:<window>")
		metrics   = fs.Bool("metrics", false, "collect controller/solver telemetry and dump it (Prometheus text) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *tracePath == "" {
		return fmt.Errorf("controller: -scenario and -trace are required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := cloudalloc.ReadTraceCSV(f)
	if err != nil {
		return err
	}

	cfg := cloudalloc.DefaultControllerConfig()
	cfg.Policy, err = parsePolicy(*policyArg)
	if err != nil {
		return err
	}
	cfg.Predictor, err = parsePredictor(*predArg)
	if err != nil {
		return err
	}
	var tel *cloudalloc.Telemetry
	if *metrics {
		tel = cloudalloc.NewTelemetry(nil)
		cfg.Telemetry = tel
	}

	sum, err := cloudalloc.RunController(scen, tr, cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "epoch\tdrift\tre-decided\trealized profit\tsaturated\tsolve time")
	for _, st := range sum.Steps {
		fmt.Fprintf(w, "%d\t%.2f\t%v\t%.2f\t%d\t%s\n",
			st.Epoch, st.Drift, st.Resolved, st.RealizedProfit, st.SaturatedClients, st.SolveTime.Round(1e6))
	}
	fmt.Fprintf(w, "total\t\t%d decisions\t%.2f\t\t%s\n",
		sum.Decisions, sum.TotalProfit, sum.TotalSolveTime.Round(1e6))
	w.Flush()
	if tel != nil {
		tel.Metrics.WritePrometheus(os.Stderr)
	}
	return nil
}

// parsePolicy understands always, never, threshold:<rel>, periodic:<n>.
func parsePolicy(s string) (cloudalloc.Policy, error) {
	name, arg, _ := strings.Cut(s, ":")
	switch name {
	case "always":
		return cloudalloc.AlwaysPolicy{}, nil
	case "never":
		return cloudalloc.NeverPolicy{}, nil
	case "threshold":
		rel, err := strconv.ParseFloat(arg, 64)
		if err != nil || rel <= 0 {
			return nil, fmt.Errorf("controller: bad threshold %q", arg)
		}
		return cloudalloc.ThresholdPolicy{RelChange: rel}, nil
	case "periodic":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("controller: bad period %q", arg)
		}
		return &cloudalloc.PeriodicPolicy{Every: n}, nil
	default:
		return nil, fmt.Errorf("controller: unknown policy %q", s)
	}
}

// parsePredictor understands ”, last, ewma:<alpha>, holt:<a>,<b>,
// mean:<window>.
func parsePredictor(s string) (cloudalloc.Predictor, error) {
	if s == "" {
		return nil, nil
	}
	name, arg, _ := strings.Cut(s, ":")
	switch name {
	case "last":
		return cloudalloc.NewLastValuePredictor(), nil
	case "ewma":
		alpha, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("controller: bad ewma alpha %q", arg)
		}
		return cloudalloc.NewEWMAPredictor(alpha)
	case "holt":
		a, b, ok := strings.Cut(arg, ",")
		if !ok {
			return nil, fmt.Errorf("controller: holt needs alpha,beta")
		}
		alpha, err1 := strconv.ParseFloat(a, 64)
		beta, err2 := strconv.ParseFloat(b, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("controller: bad holt gains %q", arg)
		}
		return cloudalloc.NewHoltPredictor(alpha, beta)
	case "mean":
		w, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("controller: bad window %q", arg)
		}
		return cloudalloc.NewSlidingMeanPredictor(w)
	default:
		return nil, fmt.Errorf("controller: unknown predictor %q", s)
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cloudalloc "repro"
)

// freePort reserves an ephemeral loopback port and returns its address.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRunServesDebugEndpoints boots the daemon with -debug-addr, drives
// one RPC through it, and checks the observability surface end to end.
func TestRunServesDebugEndpoints(t *testing.T) {
	cfg := cloudalloc.DefaultWorkloadConfig()
	cfg.NumClients = 8
	cfg.Seed = 3
	scen, err := cloudalloc.GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := scen.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	listen, debug := freePort(t), freePort(t)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-scenario", path, "-cluster", "0", "-listen", listen, "-debug-addr", debug})
	}()

	// Wait for the agent listener, then make a real RPC so the server-side
	// metrics have something to show.
	var agent cloudalloc.Agent
	deadline := time.Now().Add(10 * time.Second)
	for {
		agent, err = cloudalloc.DialAgent(listen)
		if err == nil {
			break
		}
		select {
		case rerr := <-errc:
			t.Fatalf("run exited early: %v", rerr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer agent.Close()
	if k, err := agent.ClusterID(context.Background()); err != nil || k != 0 {
		t.Fatalf("ClusterID = %v, %v", k, err)
	}
	if _, err := agent.Evaluate(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", debug, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE rpc_server_calls_total counter",
		`rpc_server_calls_total{op="evaluate"} 1`,
		"rpc_server_latency_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if trace := get("/debug/trace"); !strings.Contains(trace, "rpc.evaluate") {
		t.Errorf("/debug/trace missing rpc.evaluate span: %s", trace)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "rpc_server_calls_total") {
		t.Errorf("/debug/vars missing counters: %s", vars)
	}
}

// TestRunRequiresScenario keeps the flag contract honest.
func TestRunRequiresScenario(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("run without -scenario succeeded")
	}
}

// Command allocd serves one cluster agent over TCP — the cluster-side
// half of the paper's distributed decision making. Start one allocd per
// cluster, then point allocctl (the central manager) at them.
//
// Usage:
//
//	allocd -scenario scenario.json -cluster 0 -listen 127.0.0.1:7070
//
// With -debug-addr the daemon also serves its observability surface:
//
//	allocd -scenario scenario.json -cluster 0 -debug-addr 127.0.0.1:9090
//	curl 127.0.0.1:9090/metrics      # Prometheus text exposition
//	curl 127.0.0.1:9090/debug/trace  # recent solver/RPC spans as JSON
//	curl 127.0.0.1:9090/debug/vars   # expvar JSON
//	go tool pprof 127.0.0.1:9090/debug/pprof/profile
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	cloudalloc "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "allocd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("allocd", flag.ContinueOnError)
	var (
		path      = fs.String("scenario", "", "scenario JSON path (required)")
		clustID   = fs.Int("cluster", 0, "cluster index this agent manages")
		listen    = fs.String("listen", "127.0.0.1:7070", "listen address")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/trace, /debug/flight and /debug/pprof on this address; also enables telemetry")
		verbose   = fs.Bool("v", false, "structured debug logging to stderr")

		flightSample = fs.Int("flight-sample", 1, "flight recorder: record events for 1-in-N clients (deterministic hash of the client ID)")
		flightCap    = fs.Int("flight-cap", 0, "flight recorder ring capacity (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-scenario is required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}

	// Telemetry is opt-in: without -debug-addr the set stays nil and every
	// instrumentation site in the agent collapses to a nil check.
	var tel *cloudalloc.Telemetry
	if *debugAddr != "" {
		var logLevel = 0 // slog info
		if *verbose {
			logLevel = -4 // slog debug
		}
		tel = cloudalloc.NewTelemetry(cloudalloc.NewTextLogger(os.Stderr, logLevel))
		cloudalloc.ConfigureFlight(tel, *flightCap, *flightSample)
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		go func() {
			if err := http.Serve(dl, cloudalloc.DebugHandler(tel)); err != nil {
				tel.Logger().Error("debug server stopped", "err", err)
			}
		}()
		fmt.Printf("allocd: debug endpoints on http://%s/metrics\n", dl.Addr())
	}

	agent, err := cloudalloc.NewLocalAgent(scen, cloudalloc.ClusterID(*clustID),
		cloudalloc.WithTelemetry(tel))
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := cloudalloc.ServeAgentWith(l, agent, tel)
	tel.Logger().Info("serving", "cluster", *clustID, "scenario", *path, "addr", srv.Addr().String())
	fmt.Printf("allocd: serving cluster %d of %s on %s\n", *clustID, *path, srv.Addr())
	return srv.Serve()
}

// Command allocd serves one cluster agent over TCP — the cluster-side
// half of the paper's distributed decision making. Start one allocd per
// cluster, then point allocctl (the central manager) at them.
//
// Usage:
//
//	allocd -scenario scenario.json -cluster 0 -listen 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	cloudalloc "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "allocd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("allocd", flag.ContinueOnError)
	var (
		path    = fs.String("scenario", "", "scenario JSON path (required)")
		clustID = fs.Int("cluster", 0, "cluster index this agent manages")
		listen  = fs.String("listen", "127.0.0.1:7070", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-scenario is required")
	}
	scen, err := cloudalloc.LoadScenario(*path)
	if err != nil {
		return err
	}
	agent, err := cloudalloc.NewLocalAgent(scen, cloudalloc.ClusterID(*clustID))
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := cloudalloc.ServeAgent(l, agent)
	fmt.Printf("allocd: serving cluster %d of %s on %s\n", *clustID, *path, srv.Addr())
	return srv.Serve()
}

package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parallel"
)

// MCConfig tunes the Monte-Carlo envelope.
type MCConfig struct {
	// Draws is the number of random solutions to generate (the paper uses
	// at least 10,000 per scenario).
	Draws int
	// Seed drives the random assignments. Each draw derives its own RNG
	// stream by seed-splitting (internal/parallel), so the envelope is
	// identical for every worker count.
	Seed int64
	// MaxSearchPasses bounds the per-draw client-reassignment local
	// search ("repeats until no further reassignment is possible").
	MaxSearchPasses int
	// Workers bounds the draw fan-out: 0, the default, uses GOMAXPROCS;
	// 1 draws sequentially. The envelope — every field, including which
	// draw wins Best — does not depend on the worker count.
	Workers int
	// Solver configures the cluster-level resource allocation used for
	// every random assignment (the paper allocates resources in clusters
	// "based on the proposed solution").
	Solver core.Config
}

// DefaultMCConfig returns a medium-effort configuration; benchmarks raise
// Draws to the paper's numbers.
func DefaultMCConfig() MCConfig {
	cfg := core.DefaultConfig()
	return MCConfig{
		Draws:           200,
		Seed:            1,
		MaxSearchPasses: 10,
		Solver:          cfg,
	}
}

// Envelope summarizes a Monte-Carlo run. "Initial" profits are measured
// right after the random assignment; "optimized" profits after the
// client-reassignment local search.
type Envelope struct {
	Draws          int
	BestInitial    float64
	WorstInitial   float64
	BestOptimized  float64
	WorstOptimized float64
	// Best is the best optimized allocation found.
	Best *alloc.Allocation
}

// RunMonteCarlo generates Draws random client→cluster assignments with
// proposed-solution resource allocation inside each cluster, optimizes
// each with the client-level reassignment search, and reports the
// best/worst envelope (paper Section VI, Figures 4 and 5).
//
// Draws fan out over a bounded worker pool; each worker recycles one
// allocation arena across its draws (alloc.Reset) and keeps only its
// running best under (optimized profit desc, draw index asc). The
// per-draw profits are folded into the envelope serially in draw order
// afterwards, so the result is bit-identical for W=1 and W=N.
func RunMonteCarlo(scen *model.Scenario, cfg MCConfig) (Envelope, error) {
	if cfg.Draws <= 0 {
		return Envelope{}, fmt.Errorf("baseline: Draws = %d", cfg.Draws)
	}
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		return Envelope{}, err
	}

	type drawResult struct {
		initial, optimized float64
		err                error
	}
	type workerBest struct {
		a      *alloc.Allocation
		profit float64
		index  int
	}
	n := cfg.Draws
	workers := parallel.Bound(cfg.Workers, n)
	results := make([]drawResult, n)
	curs := make([]*alloc.Allocation, workers)
	bests := make([]workerBest, workers)
	parallel.For(parallel.Options{Workers: workers, Tel: cfg.Solver.Telemetry, Phase: "mc_draws"},
		n, func(w, d int) {
			a := curs[w]
			if a == nil {
				a = alloc.New(scen)
			} else {
				a.Reset()
			}
			if err := randomAssign(solver, a, parallel.Rand(cfg.Seed, uint64(d))); err != nil {
				results[d].err = err
				curs[w] = a
				return
			}
			// First evaluation of a fresh draw settles every ledger entry
			// (O(clients+servers), unavoidable); the post-search evaluation
			// below then re-prices only the clients the search actually moved.
			p0 := a.Profit()
			ReassignmentSearch(solver, a, cfg.MaxSearchPasses)
			p1 := a.Profit()
			results[d] = drawResult{initial: p0, optimized: p1}
			if b := &bests[w]; b.a == nil || p1 > b.profit || (p1 == b.profit && d < b.index) {
				curs[w] = b.a
				*b = workerBest{a: a, profit: p1, index: d}
			} else {
				curs[w] = a
			}
		})

	env := Envelope{
		Draws:          n,
		BestInitial:    math.Inf(-1),
		WorstInitial:   math.Inf(1),
		BestOptimized:  math.Inf(-1),
		WorstOptimized: math.Inf(1),
	}
	for d := range results {
		r := &results[d]
		if r.err != nil {
			return Envelope{}, r.err
		}
		env.BestInitial = math.Max(env.BestInitial, r.initial)
		env.WorstInitial = math.Min(env.WorstInitial, r.initial)
		env.BestOptimized = math.Max(env.BestOptimized, r.optimized)
		env.WorstOptimized = math.Min(env.WorstOptimized, r.optimized)
	}
	bestProfit, bestIndex := math.Inf(-1), n
	for w := range bests {
		b := &bests[w]
		if b.a == nil {
			continue
		}
		if env.Best == nil || b.profit > bestProfit || (b.profit == bestProfit && b.index < bestIndex) {
			env.Best, bestProfit, bestIndex = b.a, b.profit, b.index
		}
	}
	return env, nil
}

// RandomAssignment assigns every client to a uniformly random cluster
// (falling back to the remaining clusters in random order when the drawn
// one cannot host it) with the proposed cluster-level resource allocation.
func RandomAssignment(solver *core.Solver, rng *rand.Rand) (*alloc.Allocation, error) {
	a := alloc.New(solver.Scenario())
	if err := randomAssign(solver, a, rng); err != nil {
		return nil, err
	}
	return a, nil
}

// randomAssign fills an empty (fresh or Reset) allocation with one
// random draw.
func randomAssign(solver *core.Solver, a *alloc.Allocation, rng *rand.Rand) error {
	scen := solver.Scenario()
	numK := scen.Cloud.NumClusters()
	for _, ci := range rng.Perm(scen.NumClients()) {
		i := model.ClientID(ci)
		for _, k := range rng.Perm(numK) {
			_, portions, err := solver.AssignDistribute(a, i, model.ClusterID(k))
			if err != nil {
				if errors.Is(err, core.ErrCannotPlace) {
					continue
				}
				return err
			}
			if err := a.Assign(i, model.ClusterID(k), portions); err == nil {
				break
			}
		}
	}
	return nil
}

// ReassignmentSearch is the client-level local search used on random
// solutions: each client in turn is removed and re-placed on its best
// cluster; passes repeat until no reassignment improves the profit or the
// pass budget is exhausted. It delegates to the solver's cloud-level
// ReassignmentPass (the same move the proposed heuristic uses). Returns
// the number of improving moves.
func ReassignmentSearch(solver *core.Solver, a *alloc.Allocation, maxPasses int) int {
	var moves int
	for pass := 0; pass < maxPasses; pass++ {
		m := solver.ReassignmentPass(a)
		moves += m
		if m == 0 {
			break
		}
	}
	return moves
}

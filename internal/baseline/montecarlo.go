package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
)

// MCConfig tunes the Monte-Carlo envelope.
type MCConfig struct {
	// Draws is the number of random solutions to generate (the paper uses
	// at least 10,000 per scenario).
	Draws int
	// Seed drives the random assignments.
	Seed int64
	// MaxSearchPasses bounds the per-draw client-reassignment local
	// search ("repeats until no further reassignment is possible").
	MaxSearchPasses int
	// Solver configures the cluster-level resource allocation used for
	// every random assignment (the paper allocates resources in clusters
	// "based on the proposed solution").
	Solver core.Config
}

// DefaultMCConfig returns a medium-effort configuration; benchmarks raise
// Draws to the paper's numbers.
func DefaultMCConfig() MCConfig {
	cfg := core.DefaultConfig()
	return MCConfig{
		Draws:           200,
		Seed:            1,
		MaxSearchPasses: 10,
		Solver:          cfg,
	}
}

// Envelope summarizes a Monte-Carlo run. "Initial" profits are measured
// right after the random assignment; "optimized" profits after the
// client-reassignment local search.
type Envelope struct {
	Draws          int
	BestInitial    float64
	WorstInitial   float64
	BestOptimized  float64
	WorstOptimized float64
	// Best is the best optimized allocation found.
	Best *alloc.Allocation
}

// RunMonteCarlo generates Draws random client→cluster assignments with
// proposed-solution resource allocation inside each cluster, optimizes
// each with the client-level reassignment search, and reports the
// best/worst envelope (paper Section VI, Figures 4 and 5).
func RunMonteCarlo(scen *model.Scenario, cfg MCConfig) (Envelope, error) {
	if cfg.Draws <= 0 {
		return Envelope{}, fmt.Errorf("baseline: Draws = %d", cfg.Draws)
	}
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		return Envelope{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	env := Envelope{
		Draws:          cfg.Draws,
		BestInitial:    math.Inf(-1),
		WorstInitial:   math.Inf(1),
		BestOptimized:  math.Inf(-1),
		WorstOptimized: math.Inf(1),
	}
	for d := 0; d < cfg.Draws; d++ {
		a, err := RandomAssignment(solver, rng)
		if err != nil {
			return Envelope{}, err
		}
		// First evaluation of a fresh draw settles every ledger entry
		// (O(clients+servers), unavoidable); the post-search evaluation
		// below then re-prices only the clients the search actually moved.
		p0 := a.Profit()
		env.BestInitial = math.Max(env.BestInitial, p0)
		env.WorstInitial = math.Min(env.WorstInitial, p0)

		ReassignmentSearch(solver, a, cfg.MaxSearchPasses)
		p1 := a.Profit()
		env.WorstOptimized = math.Min(env.WorstOptimized, p1)
		if p1 > env.BestOptimized {
			env.BestOptimized = p1
			env.Best = a
		}
	}
	return env, nil
}

// RandomAssignment assigns every client to a uniformly random cluster
// (falling back to the remaining clusters in random order when the drawn
// one cannot host it) with the proposed cluster-level resource allocation.
func RandomAssignment(solver *core.Solver, rng *rand.Rand) (*alloc.Allocation, error) {
	scen := solver.Scenario()
	a := alloc.New(scen)
	numK := scen.Cloud.NumClusters()
	for _, ci := range rng.Perm(scen.NumClients()) {
		i := model.ClientID(ci)
		for _, k := range rng.Perm(numK) {
			_, portions, err := solver.AssignDistribute(a, i, model.ClusterID(k))
			if err != nil {
				if errors.Is(err, core.ErrCannotPlace) {
					continue
				}
				return nil, err
			}
			if err := a.Assign(i, model.ClusterID(k), portions); err == nil {
				break
			}
		}
	}
	return a, nil
}

// ReassignmentSearch is the client-level local search used on random
// solutions: each client in turn is removed and re-placed on its best
// cluster; passes repeat until no reassignment improves the profit or the
// pass budget is exhausted. It delegates to the solver's cloud-level
// ReassignmentPass (the same move the proposed heuristic uses). Returns
// the number of improving moves.
func ReassignmentSearch(solver *core.Solver, a *alloc.Allocation, maxPasses int) int {
	var moves int
	for pass := 0; pass < maxPasses; pass++ {
		m := solver.ReassignmentPass(a)
		moves += m
		if m == 0 {
			break
		}
	}
	return moves
}

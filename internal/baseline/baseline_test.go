package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func genScenario(t *testing.T, n int, seed int64) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

func TestModifiedPSProducesValidAllocation(t *testing.T) {
	scen := genScenario(t, 30, 1)
	a, err := SolveModifiedPS(scen, DefaultPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() == 0 {
		t.Fatal("PS placed no clients")
	}
}

func TestModifiedPSConfigValidation(t *testing.T) {
	scen := genScenario(t, 5, 1)
	if _, err := SolveModifiedPS(scen, PSConfig{Headroom: 1.05}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := SolveModifiedPS(scen, PSConfig{ActiveFractions: []float64{0.5}, Headroom: 0.9}); err == nil {
		t.Fatal("headroom <= 1 accepted")
	}
	if _, err := SolveModifiedPS(scen, PSConfig{ActiveFractions: []float64{1.5}, Headroom: 1.1}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestModifiedPSSweepPicksBest(t *testing.T) {
	scen := genScenario(t, 30, 2)
	full, err := SolveModifiedPS(scen, DefaultPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	single, err := SolveModifiedPS(scen, PSConfig{ActiveFractions: []float64{1.0}, Headroom: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	if full.Profit() < single.Profit()-1e-9 {
		t.Fatalf("sweep (%v) worse than its own member (%v)", full.Profit(), single.Profit())
	}
}

func TestProposedBeatsModifiedPS(t *testing.T) {
	// The headline qualitative claim of Figure 4: the proposed heuristic
	// clearly beats the modified PS baseline.
	scen := genScenario(t, 40, 3)
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	proposed, _, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := SolveModifiedPS(scen, DefaultPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if proposed.Profit() <= ps.Profit() {
		t.Fatalf("proposed %v should beat PS %v", proposed.Profit(), ps.Profit())
	}
}

func TestRandomAssignmentValid(t *testing.T) {
	scen := genScenario(t, 25, 4)
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	a, err := RandomAssignment(solver, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 25 {
		t.Fatalf("random assignment placed %d of 25", a.NumAssigned())
	}
}

func TestReassignmentSearchImproves(t *testing.T) {
	scen := genScenario(t, 25, 5)
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a, err := RandomAssignment(solver, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Profit()
	ReassignmentSearch(solver, a, 10)
	if a.Profit() < before-1e-9 {
		t.Fatalf("local search regressed: %v -> %v", before, a.Profit())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMonteCarloEnvelope(t *testing.T) {
	scen := genScenario(t, 20, 6)
	cfg := DefaultMCConfig()
	cfg.Draws = 8
	cfg.MaxSearchPasses = 3
	env, err := RunMonteCarlo(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if env.Draws != 8 {
		t.Fatalf("draws = %d", env.Draws)
	}
	if env.Best == nil {
		t.Fatal("no best allocation recorded")
	}
	if err := env.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if env.BestInitial < env.WorstInitial {
		t.Fatalf("initial envelope inverted: %v < %v", env.BestInitial, env.WorstInitial)
	}
	if env.BestOptimized < env.WorstOptimized {
		t.Fatalf("optimized envelope inverted: %+v", env)
	}
	if env.BestOptimized < env.BestInitial-1e-9 {
		t.Fatalf("optimization made the best draw worse: %+v", env)
	}
	if env.WorstOptimized < env.WorstInitial-1e-9 {
		t.Fatalf("worst optimized %v below worst initial %v", env.WorstOptimized, env.WorstInitial)
	}
	if math.Abs(env.Best.Profit()-env.BestOptimized) > 1e-9 {
		t.Fatalf("best allocation profit %v != recorded %v", env.Best.Profit(), env.BestOptimized)
	}
}

func TestRunMonteCarloRejectsBadConfig(t *testing.T) {
	scen := genScenario(t, 5, 7)
	cfg := DefaultMCConfig()
	cfg.Draws = 0
	if _, err := RunMonteCarlo(scen, cfg); err == nil {
		t.Fatal("zero draws accepted")
	}
	cfg = DefaultMCConfig()
	cfg.Solver.AlphaGranularity = -1
	if _, err := RunMonteCarlo(scen, cfg); err == nil {
		t.Fatal("invalid solver config accepted")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	scen := genScenario(t, 15, 8)
	cfg := DefaultMCConfig()
	cfg.Draws = 5
	cfg.MaxSearchPasses = 2
	e1, err := RunMonteCarlo(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := RunMonteCarlo(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e1.BestOptimized != e2.BestOptimized || e1.WorstInitial != e2.WorstInitial {
		t.Fatalf("same seed, different envelopes: %+v vs %+v", e1, e2)
	}
}

// randSource builds a deterministic rand.Rand for tests.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestSolveAnnealingProducesValidSolution(t *testing.T) {
	scen := genScenario(t, 15, 10)
	cfg := DefaultSAConfig()
	cfg.Anneal.Steps = 60
	a, err := SolveAnnealing(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() == 0 {
		t.Fatal("annealing placed nothing")
	}
}

func TestSolveAnnealingBeatsRandomStart(t *testing.T) {
	scen := genScenario(t, 15, 11)
	cfg := DefaultSAConfig()
	cfg.Anneal.Steps = 120
	a, err := SolveAnnealing(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the raw random start the annealer began from.
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomAssignment(solver, randSource(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if a.Profit() < rnd.Profit()-1e-9 {
		t.Fatalf("annealing (%v) worse than a random draw (%v)", a.Profit(), rnd.Profit())
	}
}

func TestSolveAnnealingConfigValidation(t *testing.T) {
	scen := genScenario(t, 5, 12)
	cfg := DefaultSAConfig()
	cfg.Anneal.Steps = 0
	if _, err := SolveAnnealing(scen, cfg); err == nil {
		t.Fatal("zero steps accepted")
	}
	cfg = DefaultSAConfig()
	cfg.Anneal.Cooling = 1.5
	if _, err := SolveAnnealing(scen, cfg); err == nil {
		t.Fatal("cooling > 1 accepted")
	}
}

func TestSolveGeneticProducesValidSolution(t *testing.T) {
	scen := genScenario(t, 15, 13)
	cfg := DefaultGAConfig()
	cfg.Population = 8
	cfg.Generations = 4
	a, err := SolveGenetic(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() == 0 {
		t.Fatal("GA placed nothing")
	}
}

func TestSolveGeneticConfigValidation(t *testing.T) {
	scen := genScenario(t, 5, 14)
	cfg := DefaultGAConfig()
	cfg.Population = 1
	if _, err := SolveGenetic(scen, cfg); err == nil {
		t.Fatal("population 1 accepted")
	}
	cfg = DefaultGAConfig()
	cfg.Elite = cfg.Population
	if _, err := SolveGenetic(scen, cfg); err == nil {
		t.Fatal("elite >= population accepted")
	}
	cfg = DefaultGAConfig()
	cfg.MutationRate = 2
	if _, err := SolveGenetic(scen, cfg); err == nil {
		t.Fatal("mutation rate 2 accepted")
	}
}

func TestSolveExhaustiveTinyInstance(t *testing.T) {
	// The heuristic tracks the polished exhaustive optimum closely on
	// average (the paper's ≤9%-gap claim in miniature); single adversarial
	// seeds may dip lower.
	var ratioSum float64
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		wcfg := workload.DefaultConfig()
		wcfg.NumClients = 4
		wcfg.NumClusters = 3
		wcfg.MinServersPerCluster = 2
		wcfg.MaxServersPerCluster = 3
		wcfg.Seed = 15 + s
		scen, err := workload.Generate(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := SolveExhaustive(scen, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := exh.Validate(); err != nil {
			t.Fatal(err)
		}
		solver, err := core.NewSolver(scen, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		prop, _, err := solver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ratio := prop.Profit() / exh.Profit()
		if ratio < 0.75 {
			t.Errorf("seed %d: heuristic %v far below exhaustive %v", wcfg.Seed, prop.Profit(), exh.Profit())
		}
		if ratio > 1+1e-6 {
			t.Errorf("seed %d: exhaustive %v below heuristic %v — enumeration bug",
				wcfg.Seed, exh.Profit(), prop.Profit())
		}
		ratioSum += ratio
	}
	if mean := ratioSum / seeds; mean < 0.9 {
		t.Fatalf("mean heuristic/exhaustive ratio %v below the paper's band", mean)
	}
}

func TestSolveExhaustiveRejectsLargeInstance(t *testing.T) {
	scen := genScenario(t, MaxExhaustiveClients+1, 16)
	if _, err := SolveExhaustive(scen, core.DefaultConfig()); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

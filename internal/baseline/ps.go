// Package baseline implements the two comparators of the paper's
// evaluation (Section VI): the modified Proportional Share scheduler
// (adapted from Liu, Squillante & Wolf) and the Monte-Carlo
// random-assignment envelope that brackets the best/worst achievable
// profit.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/parallel"
)

// PSConfig tunes the modified Proportional Share baseline.
type PSConfig struct {
	// ActiveFractions is the sweep over the fraction of each cluster's
	// servers (efficiency-ranked) to keep active; the best-profit setting
	// wins (the paper's "iterative approach to find the best possible set
	// of active servers").
	ActiveFractions []float64
	// Headroom multiplies the stability floor when sizing each client's
	// minimum capacity.
	Headroom float64
	// Workers bounds the sweep fan-out over ActiveFractions: 0, the
	// default, uses GOMAXPROCS; 1 sweeps sequentially. The winning
	// setting does not depend on the worker count.
	Workers int
}

// DefaultPSConfig returns the defaults used in the experiments.
func DefaultPSConfig() PSConfig {
	return PSConfig{
		ActiveFractions: []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Headroom:        1.05,
	}
}

// SolveModifiedPS runs the modified Proportional Share baseline:
//
//  1. For each candidate active-server fraction, rank servers inside each
//     cluster by cost efficiency and keep the top fraction active.
//  2. Sort clients by utility slope, most response-time-sensitive first
//     (the paper's modification to respect client classes).
//  3. Give each client a capacity target proportional to its
//     slope-weighted work on the aggregated virtual server, then First-Fit
//     the target onto real servers, splitting to the next server when the
//     best one cannot fit the remainder (the paper's modified First Fit).
//  4. Keep the sweep setting with the best total profit.
func SolveModifiedPS(scen *model.Scenario, cfg PSConfig) (*alloc.Allocation, error) {
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if len(cfg.ActiveFractions) == 0 {
		return nil, errors.New("baseline: no active fractions to sweep")
	}
	if cfg.Headroom <= 1 {
		return nil, fmt.Errorf("baseline: headroom %v must exceed 1", cfg.Headroom)
	}
	for _, f := range cfg.ActiveFractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("baseline: active fraction %v outside (0,1]", f)
		}
	}

	// The sweep settings are independent; fan them out. Each worker
	// recycles one allocation arena and keeps its best attempt under
	// (profit desc, fraction index asc); the global winner under the
	// same order is the one a sequential sweep would keep, for any
	// worker count. Each attempt's first Profit() settles its whole
	// ledger once; any later re-evaluation of the winner is incremental.
	type workerBest struct {
		a      *alloc.Allocation
		profit float64
		index  int
	}
	n := len(cfg.ActiveFractions)
	workers := parallel.Bound(cfg.Workers, n)
	curs := make([]*alloc.Allocation, workers)
	bests := make([]workerBest, workers)
	parallel.For(parallel.Options{Workers: workers, Phase: "ps_sweep"}, n, func(w, idx int) {
		a := curs[w]
		if a == nil {
			a = alloc.New(scen)
		} else {
			a.Reset()
		}
		psAttempt(a, scen, cfg.ActiveFractions[idx], cfg.Headroom)
		p := a.Profit()
		if b := &bests[w]; b.a == nil || p > b.profit || (p == b.profit && idx < b.index) {
			curs[w] = b.a
			*b = workerBest{a: a, profit: p, index: idx}
		} else {
			curs[w] = a
		}
	})
	var best *alloc.Allocation
	bestProfit, bestIndex := math.Inf(-1), n
	for w := range bests {
		b := &bests[w]
		if b.a == nil {
			continue
		}
		if best == nil || b.profit > bestProfit || (b.profit == bestProfit && b.index < bestIndex) {
			best, bestProfit, bestIndex = b.a, b.profit, b.index
		}
	}
	return best, nil
}

// psAttempt builds one PS solution with the given active fraction into
// an empty (fresh or Reset) allocation.
func psAttempt(a *alloc.Allocation, scen *model.Scenario, fraction, headroom float64) {
	active := activeSets(scen, fraction)

	// Virtual-server shares: weight each client by slope × work.
	type psClient struct {
		id     model.ClientID
		slope  float64
		weight float64
	}
	clients := make([]psClient, scen.NumClients())
	var totalWeight float64
	for i := range scen.Clients {
		cl := &scen.Clients[i]
		slope := scen.Utility(model.ClientID(i)).Slope
		w := slope * cl.ArrivalRate * cl.ProcTime
		clients[i] = psClient{id: model.ClientID(i), slope: slope, weight: w}
		totalWeight += w
	}
	// Most slope-sensitive clients are served first.
	sort.SliceStable(clients, func(x, y int) bool { return clients[x].slope > clients[y].slope })

	var totalCap float64
	for k := range active {
		for _, j := range active[k] {
			totalCap += scen.Cloud.ServerClass(j).ProcCap
		}
	}
	for _, pc := range clients {
		cl := &scen.Clients[pc.id]
		// PS target: proportional share of the aggregate capacity, at
		// least the stability floor with headroom.
		minCapP := cl.PredictedRate * cl.ProcTime * headroom
		minCapB := cl.PredictedRate * cl.CommTime * headroom
		targetP := minCapP
		if totalWeight > 0 {
			if t := pc.weight / totalWeight * totalCap; t > targetP {
				targetP = t
			}
		}
		targetB := targetP * cl.CommTime / cl.ProcTime
		if targetB < minCapB {
			targetB = minCapB
		}
		// Clusters tried in order of remaining aggregate capacity.
		for _, k := range clustersByRemaining(scen, a, active) {
			if portions := packFirstFit(scen, a, cl, active[k], targetP, targetB, minCapP, minCapB); portions != nil {
				if err := a.Assign(pc.id, k, portions); err == nil {
					break
				}
			}
		}
	}
}

// activeSets returns, per cluster, the servers kept active: the top
// fraction ranked by processing capacity per unit fixed-plus-utilization
// cost (at least one per cluster).
func activeSets(scen *model.Scenario, fraction float64) [][]model.ServerID {
	sets := make([][]model.ServerID, scen.Cloud.NumClusters())
	for k := range sets {
		servers := append([]model.ServerID(nil), scen.Cloud.ClusterServers(model.ClusterID(k))...)
		sort.SliceStable(servers, func(x, y int) bool {
			return psEfficiency(scen, servers[x]) > psEfficiency(scen, servers[y])
		})
		n := int(math.Ceil(fraction * float64(len(servers))))
		if n < 1 {
			n = 1
		}
		if n > len(servers) {
			n = len(servers)
		}
		sets[k] = servers[:n]
	}
	return sets
}

func psEfficiency(scen *model.Scenario, j model.ServerID) float64 {
	class := scen.Cloud.ServerClass(j)
	return class.ProcCap / (class.FixedCost + class.UtilizationCost)
}

// clustersByRemaining orders clusters by remaining aggregate processing
// capacity (descending).
func clustersByRemaining(scen *model.Scenario, a *alloc.Allocation, active [][]model.ServerID) []model.ClusterID {
	type rem struct {
		k model.ClusterID
		c float64
	}
	rems := make([]rem, len(active))
	for k := range active {
		var c float64
		for _, j := range active[k] {
			class := scen.Cloud.ServerClass(j)
			c += (1 - a.ProcShareUsed(j)) * class.ProcCap
		}
		rems[k] = rem{k: model.ClusterID(k), c: c}
	}
	sort.SliceStable(rems, func(x, y int) bool { return rems[x].c > rems[y].c })
	out := make([]model.ClusterID, len(rems))
	for n, r := range rems {
		out[n] = r.k
	}
	return out
}

// packFirstFit splits the client's capacity targets across the cluster's
// active servers, best (largest remaining) first; when the best server
// cannot host the remainder it takes what fits and the next server
// continues (the paper's modified First Fit). Returns nil when the
// cluster cannot host the client.
func packFirstFit(scen *model.Scenario, a *alloc.Allocation, cl *model.Client,
	servers []model.ServerID, targetP, targetB, minCapP, minCapB float64) []alloc.Portion {
	type slot struct {
		j            model.ServerID
		remP, remB   float64 // remaining capacity in absolute units
		capP, capB   float64
		diskFeasible bool
	}
	slots := make([]slot, 0, len(servers))
	for _, j := range servers {
		class := scen.Cloud.ServerClass(j)
		slots = append(slots, slot{
			j:            j,
			remP:         (1 - a.ProcShareUsed(j)) * class.ProcCap,
			remB:         (1 - a.CommShareUsed(j)) * class.CommCap,
			capP:         class.ProcCap,
			capB:         class.CommCap,
			diskFeasible: a.DiskUsed(j)+cl.DiskNeed <= class.StoreCap,
		})
	}
	sort.SliceStable(slots, func(x, y int) bool { return slots[x].remP > slots[y].remP })

	var portions []alloc.Portion
	remainingP := targetP
	for _, sl := range slots {
		if remainingP <= 0 {
			break
		}
		if !sl.diskFeasible {
			continue
		}
		// The chunk must keep its own stability: a fraction q of the
		// stream needs q·minCap of capacity in both dimensions.
		chunkP := math.Min(remainingP, sl.remP)
		q := chunkP / targetP
		chunkB := q * targetB
		if chunkB > sl.remB {
			// Scale the chunk down to what the communication side allows.
			q = sl.remB / targetB
			chunkP = q * targetP
			chunkB = sl.remB
		}
		if q <= 1e-9 || chunkP < q*minCapP || chunkB < q*minCapB {
			continue
		}
		portions = append(portions, alloc.Portion{
			Server:    sl.j,
			Alpha:     q,
			ProcShare: chunkP / sl.capP,
			CommShare: chunkB / sl.capB,
		})
		remainingP -= chunkP
	}
	if remainingP > 1e-9*targetP {
		return nil
	}
	// Normalize α drift from the chunking arithmetic.
	var sum float64
	for _, p := range portions {
		sum += p.Alpha
	}
	if math.Abs(sum-1) > 1e-9 {
		if sum <= 0 {
			return nil
		}
		for n := range portions {
			portions[n].Alpha /= sum
		}
	}
	return portions
}

package baseline

import (
	"reflect"
	"testing"
)

// TestMonteCarloWorkerEquivalence: every envelope field — including
// which draw wins Best — must be identical for W=1 and W=N. Each draw
// has its own seed-split RNG and the Best reduction's total order
// (optimized profit desc, draw index asc) is scheduling-independent.
// Run under -race in CI.
func TestMonteCarloWorkerEquivalence(t *testing.T) {
	scen := genScenario(t, 30, 5)
	run := func(workers int) Envelope {
		cfg := DefaultMCConfig()
		cfg.Draws = 24
		cfg.Seed = 11
		cfg.MaxSearchPasses = 3
		cfg.Workers = workers
		env, err := RunMonteCarlo(scen, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if env.Best == nil {
			t.Fatalf("workers=%d: nil Best", workers)
		}
		if err := env.Best.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return env
	}

	ref := run(1)
	for _, workers := range []int{4, 8} {
		env := run(workers)
		if env.BestInitial != ref.BestInitial || env.WorstInitial != ref.WorstInitial ||
			env.BestOptimized != ref.BestOptimized || env.WorstOptimized != ref.WorstOptimized {
			t.Errorf("workers=%d: envelope %+v != W=1's (best-init %v worst-init %v best-opt %v worst-opt %v)",
				workers, env, ref.BestInitial, ref.WorstInitial, ref.BestOptimized, ref.WorstOptimized)
		}
		if got, want := env.Best.Profit(), ref.Best.Profit(); got != want {
			t.Errorf("workers=%d: Best profit %v != W=1's %v", workers, got, want)
		}
		if !reflect.DeepEqual(env.Best.Snapshot(), ref.Best.Snapshot()) {
			t.Errorf("workers=%d: Best placements differ from W=1", workers)
		}
	}
}

// TestPSWorkerEquivalence: the active-fraction sweep picks the same
// winner at any worker count.
func TestPSWorkerEquivalence(t *testing.T) {
	scen := genScenario(t, 30, 5)
	run := func(workers int) *allocResult {
		cfg := DefaultPSConfig()
		cfg.Workers = workers
		a, err := SolveModifiedPS(scen, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return &allocResult{profit: a.Profit(), snap: a.Snapshot()}
	}
	ref := run(1)
	for _, workers := range []int{3, 8} {
		got := run(workers)
		if got.profit != ref.profit {
			t.Errorf("workers=%d: profit %v != W=1's %v", workers, got.profit, ref.profit)
		}
		if !reflect.DeepEqual(got.snap, ref.snap) {
			t.Errorf("workers=%d: placements differ from W=1", workers)
		}
	}
}

type allocResult struct {
	profit float64
	snap   any
}

package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/opt"
)

// RejectClient in a client→cluster vector leaves the client unserved
// (admission control).
const RejectClient = -1

// evalAssignment builds an allocation from a client→cluster vector using
// the proposed cluster-level resource allocation, and returns it with its
// profit. Clients whose designated cluster cannot host them are skipped
// (they simply earn nothing).
func evalAssignment(solver *core.Solver, clusters []int) (*alloc.Allocation, float64, error) {
	scen := solver.Scenario()
	a := alloc.New(scen)
	for i, k := range clusters {
		id := model.ClientID(i)
		if k == RejectClient {
			continue
		}
		if k < 0 || k >= scen.Cloud.NumClusters() {
			return nil, 0, fmt.Errorf("baseline: client %d assigned to cluster %d", i, k)
		}
		_, portions, err := solver.AssignDistribute(a, id, model.ClusterID(k))
		if err != nil {
			if errors.Is(err, core.ErrCannotPlace) {
				continue
			}
			return nil, 0, err
		}
		if err := a.Assign(id, model.ClusterID(k), portions); err != nil {
			continue
		}
	}
	return a, a.Profit(), nil
}

// assignmentState adapts a client→cluster vector to opt.AnnealState.
type assignmentState struct {
	solver   *core.Solver
	clusters []int
	energy   float64 // −profit, memoized at construction
}

var _ opt.AnnealState = (*assignmentState)(nil)

func newAssignmentState(solver *core.Solver, clusters []int) (*assignmentState, error) {
	_, profit, err := evalAssignment(solver, clusters)
	if err != nil {
		return nil, err
	}
	return &assignmentState{solver: solver, clusters: clusters, energy: -profit}, nil
}

// Energy implements opt.AnnealState (−profit: annealing minimizes).
func (st *assignmentState) Energy() float64 { return st.energy }

// Neighbor implements opt.AnnealState: move one random client to a random
// different cluster.
func (st *assignmentState) Neighbor(rng *rand.Rand) opt.AnnealState {
	numK := st.solver.Scenario().Cloud.NumClusters()
	next := append([]int(nil), st.clusters...)
	i := rng.Intn(len(next))
	if numK > 1 {
		k := rng.Intn(numK - 1)
		if k >= next[i] {
			k++
		}
		next[i] = k
	}
	ns, err := newAssignmentState(st.solver, next)
	if err != nil {
		// Proposal failed to evaluate; stay put (infinite energy would
		// also work but this keeps the walk alive).
		return st
	}
	return ns
}

// SAConfig tunes the simulated-annealing comparator (the stochastic
// alternative the paper names in Section V).
type SAConfig struct {
	Anneal opt.AnnealConfig
	// Seed drives the initial random assignment.
	Seed int64
	// Solver configures the cluster-level resource allocation.
	Solver core.Config
}

// DefaultSAConfig returns a medium-effort schedule.
func DefaultSAConfig() SAConfig {
	a := opt.DefaultAnnealConfig()
	a.Steps = 300
	a.InitialTemp = 5
	a.Cooling = 0.99
	return SAConfig{Anneal: a, Seed: 1, Solver: core.DefaultConfig()}
}

// SolveAnnealing optimizes the client→cluster assignment by simulated
// annealing over single-client moves, with the proposed cluster-level
// allocation as the evaluator.
func SolveAnnealing(scen *model.Scenario, cfg SAConfig) (*alloc.Allocation, error) {
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := make([]int, scen.NumClients())
	for i := range start {
		start[i] = rng.Intn(scen.Cloud.NumClusters())
	}
	st, err := newAssignmentState(solver, start)
	if err != nil {
		return nil, err
	}
	best, err := opt.Anneal(st, cfg.Anneal)
	if err != nil {
		return nil, err
	}
	final, ok := best.(*assignmentState)
	if !ok {
		return nil, errors.New("baseline: annealer returned foreign state")
	}
	a, _, err := evalAssignment(solver, final.clusters)
	return a, err
}

// GAConfig tunes the genetic-search comparator.
type GAConfig struct {
	Population  int
	Generations int
	// MutationRate is the per-gene probability of a random cluster.
	MutationRate float64
	// Elite keeps the top individuals unchanged each generation.
	Elite int
	Seed  int64
	// Solver configures the cluster-level resource allocation.
	Solver core.Config
}

// DefaultGAConfig returns a small population suitable for the evaluation.
func DefaultGAConfig() GAConfig {
	return GAConfig{
		Population:   20,
		Generations:  15,
		MutationRate: 0.05,
		Elite:        2,
		Seed:         1,
		Solver:       core.DefaultConfig(),
	}
}

// SolveGenetic optimizes the client→cluster assignment with a simple
// generational GA: tournament selection, uniform crossover, per-gene
// mutation, elitism.
func SolveGenetic(scen *model.Scenario, cfg GAConfig) (*alloc.Allocation, error) {
	if cfg.Population < 2 || cfg.Generations <= 0 {
		return nil, fmt.Errorf("baseline: GA population=%d generations=%d", cfg.Population, cfg.Generations)
	}
	if cfg.Elite < 0 || cfg.Elite >= cfg.Population {
		return nil, fmt.Errorf("baseline: GA elite=%d", cfg.Elite)
	}
	if cfg.MutationRate < 0 || cfg.MutationRate > 1 {
		return nil, fmt.Errorf("baseline: GA mutation rate=%v", cfg.MutationRate)
	}
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numK := scen.Cloud.NumClusters()
	n := scen.NumClients()

	type individual struct {
		genes   []int
		fitness float64
	}
	evaluate := func(genes []int) (float64, error) {
		_, p, err := evalAssignment(solver, genes)
		return p, err
	}
	pop := make([]individual, cfg.Population)
	for p := range pop {
		genes := make([]int, n)
		for i := range genes {
			genes[i] = rng.Intn(numK)
		}
		fit, err := evaluate(genes)
		if err != nil {
			return nil, err
		}
		pop[p] = individual{genes: genes, fitness: fit}
	}
	sortPop := func() {
		// Insertion sort by descending fitness; populations are tiny.
		for i := 1; i < len(pop); i++ {
			for j := i; j > 0 && pop[j].fitness > pop[j-1].fitness; j-- {
				pop[j], pop[j-1] = pop[j-1], pop[j]
			}
		}
	}
	tournament := func() individual {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.fitness >= b.fitness {
			return a
		}
		return b
	}
	sortPop()
	for g := 0; g < cfg.Generations; g++ {
		next := make([]individual, 0, cfg.Population)
		next = append(next, pop[:cfg.Elite]...)
		for len(next) < cfg.Population {
			p1, p2 := tournament(), tournament()
			child := make([]int, n)
			for i := range child {
				if rng.Float64() < 0.5 {
					child[i] = p1.genes[i]
				} else {
					child[i] = p2.genes[i]
				}
				if rng.Float64() < cfg.MutationRate {
					child[i] = rng.Intn(numK)
				}
			}
			fit, err := evaluate(child)
			if err != nil {
				return nil, err
			}
			next = append(next, individual{genes: child, fitness: fit})
		}
		pop = next
		sortPop()
	}
	a, _, err := evalAssignment(solver, pop[0].genes)
	return a, err
}

// MaxExhaustiveClients bounds the brute-force search; beyond this the
// K^N enumeration is pointless.
const MaxExhaustiveClients = 10

// SolveExhaustive enumerates every client→cluster assignment — including
// rejecting a client outright (admission control) — with the proposed
// cluster-level allocation, and returns the best. Only feasible for tiny
// instances: the paper's "exhaustive search … in the case of very small
// input size".
func SolveExhaustive(scen *model.Scenario, cfg core.Config) (*alloc.Allocation, error) {
	if scen.NumClients() > MaxExhaustiveClients {
		return nil, fmt.Errorf("baseline: %d clients exceed exhaustive limit %d",
			scen.NumClients(), MaxExhaustiveClients)
	}
	solver, err := core.NewSolver(scen, cfg)
	if err != nil {
		return nil, err
	}
	// Each enumerated assignment is polished with the assignment-
	// preserving local-search phases so the comparison point reflects the
	// best resource allocation for that assignment, not just the greedy
	// one.
	improveCfg := cfg
	improveCfg.DisableReassign = true
	improver, err := core.NewSolver(scen, improveCfg)
	if err != nil {
		return nil, err
	}
	numK := scen.Cloud.NumClusters()
	n := scen.NumClients()
	assign := make([]int, n)
	var (
		best       *alloc.Allocation
		bestProfit = math.Inf(-1)
	)
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			a, _, err := evalAssignment(solver, assign)
			if err != nil {
				return err
			}
			improver.ImproveLocal(a, nil)
			if p := a.Profit(); p > bestProfit {
				best, bestProfit = a, p
			}
			return nil
		}
		for k := RejectClient; k < numK; k++ {
			assign[i] = k
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return best, nil
}

package alloc

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
)

// build places both testScenario clients, dirtying every bookkeeping
// structure Reset must clear.
func build(t *testing.T, a *Allocation) {
	t.Helper()
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(1, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
}

func TestResetEmptiesAllocation(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	build(t, a)
	if a.Profit() == 0 {
		t.Fatal("test build produced zero profit; nothing to reset")
	}

	a.Reset()
	if got := a.NumAssigned(); got != 0 {
		t.Fatalf("NumAssigned = %d after Reset", got)
	}
	if got := a.NumActiveServers(); got != 0 {
		t.Fatalf("NumActiveServers = %d after Reset", got)
	}
	if got := a.Profit(); got != 0 {
		t.Fatalf("Profit = %v after Reset", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate after Reset: %v", err)
	}
	if n := len(a.Snapshot().Placements); n != 0 {
		t.Fatalf("%d placements survive Reset", n)
	}
}

// TestResetRebuildMatchesFresh: an arena recycled through Reset must be
// indistinguishable from a fresh New — same profit ledger, same snapshot,
// consistent incremental bookkeeping. This is what lets fan-out workers
// reuse one allocation across greedy starts and Monte-Carlo draws.
func TestResetRebuildMatchesFresh(t *testing.T) {
	s := testScenario(t)
	recycled := New(s)
	build(t, recycled)
	_ = recycled.Profit() // settle the ledger so Reset must clear it
	recycled.Reset()
	build(t, recycled)

	fresh := New(s)
	build(t, fresh)

	if rp, fp := recycled.Profit(), fresh.Profit(); rp != fp {
		t.Fatalf("recycled profit %v != fresh profit %v", rp, fp)
	}
	if !reflect.DeepEqual(recycled.Snapshot(), fresh.Snapshot()) {
		t.Fatal("recycled snapshot differs from fresh")
	}
	rb, fb := recycled.ProfitBreakdown(), fresh.ProfitBreakdown()
	if math.Abs(rb.Revenue-fb.Revenue) != 0 || math.Abs(rb.EnergyCost-fb.EnergyCost) != 0 {
		t.Fatalf("breakdowns differ: recycled %+v fresh %+v", rb, fb)
	}
	if err := recycled.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResetBumpsClusterVersions: Reset is a mutation, so version-keyed
// caches (the reassignment pass's cross-pass marks) must see every
// cluster change. Versions must grow, never restart.
func TestResetBumpsClusterVersions(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	build(t, a)
	before := make([]uint64, s.Cloud.NumClusters())
	for k := range before {
		before[k] = a.ClusterVersion(model.ClusterID(k))
	}
	a.Reset()
	for k := range before {
		after := a.ClusterVersion(model.ClusterID(k))
		if after <= before[k] {
			t.Errorf("cluster %d: version %d -> %d, want strictly greater", k, before[k], after)
		}
	}
}

package alloc

import (
	"fmt"

	"repro/internal/model"
)

// Txn is a speculative-mutation scope over an allocation: the local
// search opens one, captures each client it is about to touch, mutates
// freely through Assign/Unassign/Reassign, reads the exact profit change
// with Delta, and then either Commits (keeps the mutations) or Rolls
// back (restores every captured client, newest first). The ledger stays
// consistent on both paths because restoration replays through the same
// Assign/Unassign mutation hooks.
//
// A transaction scoped to one cluster (BeginCluster) reads and writes
// only that cluster's ledger, so per-cluster goroutines may each run
// their own transaction concurrently — the replacement for the solver's
// previous ad-hoc undo log plus clone-and-full-recompute profit helpers.
type Txn struct {
	a *Allocation
	// clusters is the transaction's scope: nil for the whole cloud, the
	// touched clusters otherwise (BeginCluster scopes one, BeginClusters
	// several — the sharded reassignment commit scopes a move's source
	// and target so it never settles another shard's ledgers).
	clusters []model.ClusterID
	base     float64
	entries  []txnEntry
	seen     map[model.ClientID]struct{}
	// verSnap holds the cluster-version counters at Begin — the whole
	// vector for a whole-cloud scope, one entry per scoped cluster
	// otherwise — so Rollback can restore them: a rolled-back experiment
	// leaves the placement state untouched and must not register as a
	// change to the dirty-cluster tracking (allocation.go ClusterVersion).
	verSnap []uint64
}

type txnEntry struct {
	client   model.ClientID
	cluster  model.ClusterID
	portions []Portion
	assigned bool
}

// Begin opens a whole-cloud transaction: Delta measures total profit.
// Only safe when no other goroutine is mutating the allocation (it
// settles every cluster's ledger).
func (a *Allocation) Begin() *Txn {
	return &Txn{
		a:       a,
		base:    a.Profit(),
		seen:    make(map[model.ClientID]struct{}),
		verSnap: append([]uint64(nil), a.clusterVer...),
	}
}

// BeginCluster opens a transaction scoped to cluster k: Delta measures
// the change in that cluster's profit contribution, and the transaction
// touches no other cluster's ledger. Mutations inside the transaction
// must stay within cluster k.
func (a *Allocation) BeginCluster(k model.ClusterID) *Txn {
	return a.BeginClusters(k)
}

// BeginClusters opens a transaction scoped to several clusters: Delta
// measures the summed change of their profit contributions, and the
// transaction reads and writes no other cluster's ledger or version
// counter — so per-shard goroutines may each run their own transaction
// concurrently as long as their scopes are disjoint. Mutations inside
// the transaction must stay within the scoped clusters.
func (a *Allocation) BeginClusters(ks ...model.ClusterID) *Txn {
	t := &Txn{
		a:        a,
		clusters: ks,
		seen:     make(map[model.ClientID]struct{}),
		verSnap:  make([]uint64, len(ks)),
	}
	for idx, k := range ks {
		t.base += a.ClusterProfit(k)
		t.verSnap[idx] = a.clusterVer[k]
	}
	return t
}

// Capture snapshots client i's current placement the first time it is
// touched, so Rollback can restore it. Call before mutating the client.
func (t *Txn) Capture(i model.ClientID) {
	if _, ok := t.seen[i]; ok {
		return
	}
	t.seen[i] = struct{}{}
	e := txnEntry{client: i}
	if t.a.Assigned(i) {
		e.assigned = true
		e.cluster = model.ClusterID(t.a.ClusterOf(i))
		e.portions = t.a.Portions(i)
	}
	t.entries = append(t.entries, e)
}

// Delta returns the exact profit change since Begin, evaluated through
// the incremental ledger: O(touched) per call.
func (t *Txn) Delta() float64 {
	if t.clusters == nil {
		return t.a.Profit() - t.base
	}
	var cur float64
	for _, k := range t.clusters {
		cur += t.a.ClusterProfit(k)
	}
	return cur - t.base
}

// Commit keeps the mutations and discards the undo entries. The Txn must
// not be reused afterwards.
func (t *Txn) Commit() {
	t.entries = nil
	t.seen = nil
}

// Rollback restores every captured client, newest first. Restoring a
// previously-feasible placement cannot fail; an error therefore means
// the allocation was corrupted mid-transaction and the caller should
// surface it (Validate will also catch it).
func (t *Txn) Rollback() error {
	for idx := len(t.entries) - 1; idx >= 0; idx-- {
		e := t.entries[idx]
		t.a.Unassign(e.client)
		if !e.assigned {
			continue
		}
		if err := t.a.Assign(e.client, e.cluster, e.portions); err != nil {
			return fmt.Errorf("alloc: transaction rollback of client %d failed: %w", e.client, err)
		}
	}
	// The replay above restored the placement state exactly; restore the
	// version counters too, so the speculative mutations do not mark the
	// scoped clusters as changed.
	if t.clusters == nil {
		copy(t.a.clusterVer, t.verSnap)
	} else {
		for idx, k := range t.clusters {
			t.a.clusterVer[k] = t.verSnap[idx]
		}
	}
	t.entries = nil
	t.seen = nil
	return nil
}

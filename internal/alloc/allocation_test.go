package alloc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

// testScenario: 2 clusters; cluster 0 has servers 0,1 (class 0), cluster 1
// has server 2 (class 1). Class 0: all caps 4, P0=2, P1=1. Class 1: caps
// 2/1/3 with small disk. One utility class U(R)=4−0.5R.
func testScenario(t *testing.T) *model.Scenario {
	t.Helper()
	s := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses: []model.ServerClass{
				{ID: 0, ProcCap: 4, StoreCap: 4, CommCap: 4, FixedCost: 2, UtilizationCost: 1},
				{ID: 1, ProcCap: 2, StoreCap: 1, CommCap: 3, FixedCost: 3, UtilizationCost: 2},
			},
			UtilityClasses: []model.UtilityClass{{ID: 0, Base: 4, Slope: 0.5}},
			Clusters: []model.Cluster{
				{ID: 0, Servers: []model.ServerID{0, 1}},
				{ID: 1, Servers: []model.ServerID{2}},
			},
			Servers: []model.Server{
				{ID: 0, Class: 0, Cluster: 0},
				{ID: 1, Class: 0, Cluster: 0},
				{ID: 2, Class: 1, Cluster: 1},
			},
		},
		Clients: []model.Client{
			{ID: 0, Class: 0, ArrivalRate: 1, PredictedRate: 1, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1},
			{ID: 1, Class: 0, ArrivalRate: 2, PredictedRate: 2, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 0.5},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("test scenario invalid: %v", err)
	}
	return s
}

// fullPortion gives client i's whole stream to one server with shares 0.5.
func fullPortion(server model.ServerID) []Portion {
	return []Portion{{Server: server, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}
}

func TestAssignAndResponseTime(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if !a.Assigned(0) || a.ClusterOf(0) != 0 {
		t.Fatalf("assignment not recorded")
	}
	// μp = 0.5·4/0.5 = 4; λ = 1 → 1/3 per stage → R = 2/3.
	r, err := a.ResponseTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("R = %v, want 2/3", r)
	}
	// Revenue = λ·(4 − 0.5·R) = 1·(4 − 1/3).
	if rev := a.Revenue(0); math.Abs(rev-(4-1.0/3)) > 1e-12 {
		t.Fatalf("revenue = %v", rev)
	}
}

func TestAssignRejectsDoubleAssign(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(0, 0, fullPortion(1)); err == nil {
		t.Fatal("double assignment accepted")
	}
}

func TestAssignConstraintViolations(t *testing.T) {
	s := testScenario(t)
	tests := []struct {
		name     string
		cluster  model.ClusterID
		portions []Portion
		wantSub  string
	}{
		{"unknown cluster", 9, fullPortion(0), "unknown cluster"},
		{"server outside cluster", 0, fullPortion(2), "outside cluster"},
		{"alpha not summing", 0, []Portion{{Server: 0, Alpha: 0.5, ProcShare: 0.5, CommShare: 0.5}}, "sum to"},
		{"negative alpha", 0, []Portion{
			{Server: 0, Alpha: -0.5, ProcShare: 0.5, CommShare: 0.5},
			{Server: 1, Alpha: 1.5, ProcShare: 0.9, CommShare: 0.9},
		}, "α"},
		{"duplicate server", 0, []Portion{
			{Server: 0, Alpha: 0.5, ProcShare: 0.3, CommShare: 0.3},
			{Server: 0, Alpha: 0.5, ProcShare: 0.3, CommShare: 0.3},
		}, "duplicate"},
		{"unstable proc share", 0, []Portion{{Server: 0, Alpha: 1, ProcShare: 0.125, CommShare: 0.5}}, "unstable"},
		{"unstable comm share", 0, []Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.125}}, "unstable"},
		{"proc budget exceeded", 0, []Portion{{Server: 0, Alpha: 1, ProcShare: 1.2, CommShare: 0.5}}, "budget exceeded"},
		{"unknown server", 0, []Portion{{Server: 77, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}, "unknown server"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := New(s)
			err := a.Assign(0, tt.cluster, tt.portions)
			if err == nil {
				t.Fatal("violation accepted")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tt.wantSub)
			}
			if a.Assigned(0) {
				t.Fatal("failed assign mutated state")
			}
		})
	}
}

func TestDiskConstraint(t *testing.T) {
	s := testScenario(t)
	// Server 2 (class 1) has StoreCap 1; client 0 needs disk 1, client 1
	// needs 0.5: together they exceed it.
	a := New(s)
	p := []Portion{{Server: 2, Alpha: 1, ProcShare: 0.9, CommShare: 0.9}}
	if err := a.Assign(0, 1, p); err != nil {
		t.Fatal(err)
	}
	p2 := []Portion{{Server: 2, Alpha: 1, ProcShare: 0.05, CommShare: 0.05}}
	err := a.Assign(1, 1, p2)
	if err == nil {
		t.Fatal("disk overflow accepted")
	}
	if !strings.Contains(err.Error(), "disk") && !strings.Contains(err.Error(), "unstable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUnassignRestoresState(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	k, ps := a.Unassign(0)
	if k != 0 || len(ps) != 1 {
		t.Fatalf("Unassign returned %v %v", k, ps)
	}
	if a.Assigned(0) || a.Active(0) {
		t.Fatal("state not cleared")
	}
	if a.ProcShareUsed(0) != 0 || a.DiskUsed(0) != 0 || a.ProcUtilization(0) != 0 {
		t.Fatal("server bookkeeping not restored")
	}
	if k, ps := a.Unassign(0); k != Unassigned || ps != nil {
		t.Fatal("double unassign should be a no-op")
	}
}

func TestReassignMovesAndRestoresOnFailure(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Reassign(0, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
	if a.Active(0) || !a.Active(1) {
		t.Fatal("reassign did not move the client")
	}
	// Failing reassign (unstable share) must restore the old allocation.
	bad := []Portion{{Server: 0, Alpha: 1, ProcShare: 0.01, CommShare: 0.5}}
	if err := a.Reassign(0, 0, bad); err == nil {
		t.Fatal("bad reassign accepted")
	}
	if !a.Active(1) || a.ClusterOf(0) != 0 {
		t.Fatal("failed reassign did not restore previous allocation")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfitBreakdown(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(1, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
	b := a.ProfitBreakdown()
	if b.Assigned != 2 || b.ActiveServers != 2 {
		t.Fatalf("breakdown %+v", b)
	}
	// Client 0 on server 0: R = 2/3, revenue 1·(4−1/3) = 11/3.
	// Client 1 on server 1: μ = 4, λ = 2 → 0.5 per stage, R = 1,
	// revenue 2·(4−0.5) = 7.
	// Costs: server 0: 2 + 1·(1·0.5/4) = 2.125; server 1: 2 + 1·(2·0.5/4) = 2.25.
	wantRev := 11.0/3 + 7
	wantCost := 2.125 + 2.25
	if math.Abs(b.Revenue-wantRev) > 1e-9 {
		t.Fatalf("revenue = %v, want %v", b.Revenue, wantRev)
	}
	if math.Abs(b.EnergyCost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", b.EnergyCost, wantCost)
	}
	if math.Abs(a.Profit()-(wantRev-wantCost)) > 1e-9 {
		t.Fatalf("profit = %v", a.Profit())
	}
	if b.Served != 2 {
		t.Fatalf("served = %d", b.Served)
	}
}

func TestInactiveServerCostsNothing(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if a.ServerCost(0) != 0 {
		t.Fatal("inactive server has cost")
	}
	if a.NumActiveServers() != 0 {
		t.Fatal("no server should be active")
	}
}

func TestClientsOnSorted(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	half := func(alpha float64) []Portion {
		return []Portion{
			{Server: 0, Alpha: alpha, ProcShare: 0.4, CommShare: 0.4},
			{Server: 1, Alpha: 1 - alpha, ProcShare: 0.4, CommShare: 0.4},
		}
	}
	if err := a.Assign(1, 0, half(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(0, 0, half(0.5)); err != nil {
		t.Fatal(err)
	}
	ids := a.ClientsOn(0)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("ClientsOn = %v", ids)
	}
	if got := a.ClientsOn(2); got != nil {
		t.Fatalf("empty server returned %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	c.Unassign(0)
	if !a.Assigned(0) {
		t.Fatal("clone mutation leaked into original")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Profit() == c.Profit() {
		t.Fatal("profits should differ after divergence")
	}
}

// TestCloneLedgerIndependence clones an allocation whose ledger is
// mid-flight (dirty entries pending) and checks that mutations on either
// side never leak into the other's cached profit state — a clone sharing
// cache arrays by accident would corrupt the solver's multi-start loop.
func TestCloneLedgerIndependence(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	// Clone while client 0 is still dirty (no profit evaluation yet).
	c := a.Clone()

	// Diverge: the original drops its client, the clone gains one.
	a.Unassign(0)
	if err := c.Assign(1, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}

	wantA, gotA := a.RecomputeBreakdown(), a.ProfitBreakdown()
	wantC, gotC := c.RecomputeBreakdown(), c.ProfitBreakdown()
	if math.Abs(gotA.Profit-wantA.Profit) > 1e-12 || gotA.Assigned != 0 {
		t.Fatalf("original ledger corrupted by clone divergence: %+v vs %+v", gotA, wantA)
	}
	if math.Abs(gotC.Profit-wantC.Profit) > 1e-12 || gotC.Assigned != 2 {
		t.Fatalf("clone ledger corrupted by original divergence: %+v vs %+v", gotC, wantC)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	// Mutating the original after the clone has settled must not dirty
	// the clone, and vice versa.
	if err := a.Assign(0, 1, []Portion{{Server: 2, Alpha: 1, ProcShare: 0.9, CommShare: 0.9}}); err != nil {
		t.Fatal(err)
	}
	c.Unassign(1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterTxnDeltaExact: a cluster-scoped transaction's Delta equals
// the difference of from-scratch profit recomputes.
func TestClusterTxnDeltaExact(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(1, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
	before := a.RecomputeBreakdown().Profit

	txn := a.BeginCluster(0)
	txn.Capture(1)
	a.Unassign(1)
	after := a.RecomputeBreakdown().Profit
	if delta := txn.Delta(); math.Abs(delta-(after-before)) > 1e-12 {
		t.Fatalf("delta = %v, want %v", delta, after-before)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if p := a.RecomputeBreakdown().Profit; math.Abs(p-before) > 1e-12 {
		t.Fatalf("profit after rollback = %v, want %v", p, before)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRevenueErrDistinguishesZeroCases: unassigned and saturated clients
// both price at zero but must be distinguishable for the local search.
func TestRevenueErrDistinguishesZeroCases(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if _, err := a.RevenueErr(0); !errors.Is(err, ErrUnassigned) {
		t.Fatalf("err = %v, want ErrUnassigned", err)
	}
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	rev, err := a.RevenueErr(0)
	if err != nil || rev <= 0 {
		t.Fatalf("rev = %v, err = %v", rev, err)
	}
	// Saturate the portion behind the allocator's back: quadruple the
	// predicted rate so μ = φ·C/t no longer exceeds α·λ̃.
	s.Clients[0].PredictedRate = 100
	a.portions[0][0].Alpha = 1 // re-dirty the client to force recompute
	a.markClientDirty(0, 0)
	a.clientDirty[0] = true
	if _, err := a.RevenueErr(0); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if a.Revenue(0) != 0 {
		t.Fatal("saturated client should price at zero")
	}
	if b := a.ProfitBreakdown(); b.Saturated != 1 || b.Served != 0 {
		t.Fatalf("breakdown %+v", b)
	}
	s.Clients[0].PredictedRate = 1 // restore the shared scenario
}

func TestPortionsReturnsCopy(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	ps := a.Portions(0)
	ps[0].Alpha = 0.1
	if got := a.Portions(0); got[0].Alpha != 1 {
		t.Fatal("Portions exposed internal state")
	}
	if a.Portions(1) != nil {
		t.Fatal("unassigned client should have nil portions")
	}
}

func TestPreAllocatedState(t *testing.T) {
	s := testScenario(t)
	s.Cloud.Servers[0].PreProcShare = 0.8
	s.Cloud.Servers[0].PreDisk = 3.5
	a := New(s)
	if a.ProcShareUsed(0) != 0.8 || a.DiskUsed(0) != 3.5 {
		t.Fatal("pre-allocated state not loaded")
	}
	// Only 0.2 processing share left: a 0.5 share must be rejected.
	if err := a.Assign(0, 0, fullPortion(0)); err == nil {
		t.Fatal("pre-allocated budget ignored")
	}
	// Disk: 3.5 used + 1 needed > 4.
	p := []Portion{{Server: 0, Alpha: 1, ProcShare: 0.19, CommShare: 0.5}}
	if err := a.Assign(0, 0, p); err == nil {
		t.Fatal("pre-allocated disk ignored")
	}
}

func TestResponseTimeUnassigned(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if _, err := a.ResponseTime(0); err == nil {
		t.Fatal("unassigned response time should error")
	}
	if rev := a.Revenue(0); rev != 0 {
		t.Fatalf("unassigned revenue = %v", rev)
	}
}

func TestValidateDetectsDrift(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	a.servers[0].procShare += 0.3 // corrupt bookkeeping
	if err := a.Validate(); err == nil {
		t.Fatal("drifted bookkeeping accepted")
	}
}

package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/workload"
)

// randomFeasiblePortions builds a feasible portion set for client i on a
// random cluster given the current allocation state, or nil if the dice
// land on nothing feasible.
func randomFeasiblePortions(rng *rand.Rand, a *Allocation, i model.ClientID) (model.ClusterID, []Portion) {
	scen := a.Scenario()
	k := model.ClusterID(rng.Intn(scen.Cloud.NumClusters()))
	cl := &scen.Clients[i]
	servers := scen.Cloud.ClusterServers(k)

	// Pick 1..3 distinct servers with disk headroom.
	perm := rng.Perm(len(servers))
	var chosen []model.ServerID
	for _, si := range perm {
		j := servers[si]
		class := scen.Cloud.ServerClass(j)
		if a.DiskUsed(j)+cl.DiskNeed > class.StoreCap {
			continue
		}
		chosen = append(chosen, j)
		if len(chosen) == 1+rng.Intn(3) {
			break
		}
	}
	if len(chosen) == 0 {
		return 0, nil
	}
	alpha := 1.0 / float64(len(chosen))
	var ps []Portion
	for _, j := range chosen {
		class := scen.Cloud.ServerClass(j)
		rate := alpha * cl.PredictedRate
		floorP := queueing.MinStableShare(class.ProcCap, cl.ProcTime, rate)
		floorB := queueing.MinStableShare(class.CommCap, cl.CommTime, rate)
		phiP := floorP * (1.2 + rng.Float64())
		phiB := floorB * (1.2 + rng.Float64())
		if a.ProcShareUsed(j)+phiP > 1 || a.CommShareUsed(j)+phiB > 1 {
			return 0, nil
		}
		ps = append(ps, Portion{Server: j, Alpha: alpha, ProcShare: phiP, CommShare: phiB})
	}
	return k, ps
}

// TestAllocationStateMachineProperty drives random assign/unassign/
// reassign sequences and checks that the incremental bookkeeping always
// matches a from-scratch rebuild (Validate) and that profit stays finite.
func TestAllocationStateMachineProperty(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 12
	cfg.MinServersPerCluster = 3
	cfg.MaxServersPerCluster = 5
	f := func(seed int64) bool {
		wcfg := cfg
		wcfg.Seed = seed
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		a := New(scen)
		for op := 0; op < 60; op++ {
			i := model.ClientID(rng.Intn(scen.NumClients()))
			switch {
			case !a.Assigned(i):
				if k, ps := randomFeasiblePortions(rng, a, i); ps != nil {
					// Assign may legitimately fail on borderline shares;
					// state must stay clean either way.
					_ = a.Assign(i, k, ps)
				}
			case rng.Float64() < 0.5:
				a.Unassign(i)
			default:
				if k, ps := randomFeasiblePortions(rng, a, i); ps != nil {
					_ = a.Reassign(i, k, ps)
				}
			}
		}
		if err := a.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		p := a.Profit()
		return p == p && p < 1e12 && p > -1e12 // finite, sane
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalLedgerProperty drives random assign/unassign/reassign/
// transaction sequences — including speculative mutations rolled back via
// Txn — and checks after every few operations that the incremental
// ProfitBreakdown matches a from-scratch recompute within 1e-9 and that
// Validate's ledger cross-check holds.
func TestIncrementalLedgerProperty(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 15
	cfg.MinServersPerCluster = 3
	cfg.MaxServersPerCluster = 6
	f := func(seed int64) bool {
		wcfg := cfg
		wcfg.Seed = seed
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x1ed9e4))
		a := New(scen)
		check := func(op int) bool {
			inc := a.ProfitBreakdown()
			full := a.RecomputeBreakdown()
			if math.Abs(inc.Profit-full.Profit) > 1e-9 ||
				math.Abs(inc.Revenue-full.Revenue) > 1e-9 ||
				math.Abs(inc.EnergyCost-full.EnergyCost) > 1e-9 ||
				inc.Served != full.Served || inc.Assigned != full.Assigned ||
				inc.ActiveServers != full.ActiveServers || inc.Saturated != full.Saturated {
				t.Logf("seed %d op %d: incremental %+v != recomputed %+v", seed, op, inc, full)
				return false
			}
			return true
		}
		for op := 0; op < 80; op++ {
			i := model.ClientID(rng.Intn(scen.NumClients()))
			switch {
			case !a.Assigned(i):
				if k, ps := randomFeasiblePortions(rng, a, i); ps != nil {
					_ = a.Assign(i, k, ps)
				}
			case rng.Float64() < 0.3:
				a.Unassign(i)
			case rng.Float64() < 0.5:
				if k, ps := randomFeasiblePortions(rng, a, i); ps != nil {
					_ = a.Reassign(i, k, ps)
				}
			default:
				// Speculative transaction: mutate a client (possibly across
				// clusters, hence global scope), read the delta, then commit
				// or roll back at random. Both paths must leave the ledger
				// consistent.
				txn := a.Begin()
				txn.Capture(i)
				a.Unassign(i)
				if k2, ps := randomFeasiblePortions(rng, a, i); ps != nil {
					_ = a.Assign(i, k2, ps)
				}
				if _ = txn.Delta(); rng.Float64() < 0.5 {
					txn.Commit()
				} else if err := txn.Rollback(); err != nil {
					t.Logf("seed %d op %d: rollback failed: %v", seed, op, err)
					return false
				}
			}
			if op%7 == 0 && !check(op) {
				return false
			}
		}
		if !check(-1) {
			return false
		}
		if err := a.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneEqualsOriginalProperty: a clone reports identical profit,
// response times and server state.
func TestCloneEqualsOriginalProperty(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 8
	f := func(seed int64) bool {
		wcfg := cfg
		wcfg.Seed = seed
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		a := New(scen)
		for i := 0; i < scen.NumClients(); i++ {
			if k, ps := randomFeasiblePortions(rng, a, model.ClientID(i)); ps != nil {
				_ = a.Assign(model.ClientID(i), k, ps)
			}
		}
		c := a.Clone()
		if a.Profit() != c.Profit() || a.NumActiveServers() != c.NumActiveServers() {
			return false
		}
		for j := 0; j < scen.Cloud.NumServers(); j++ {
			id := model.ServerID(j)
			if a.ProcShareUsed(id) != c.ProcShareUsed(id) ||
				a.DiskUsed(id) != c.DiskUsed(id) ||
				a.ProcUtilization(id) != c.ProcUtilization(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

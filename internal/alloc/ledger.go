package alloc

import (
	"math"

	"repro/internal/model"
)

// This file holds the incremental profit ledger: per-client revenue and
// per-server cost caches, per-cluster running totals, and the dirty sets
// that make Profit()/ProfitBreakdown() O(touched) instead of O(cloud).
//
// Invariants (see DESIGN.md §7):
//
//   - A client is "dirty" iff it is assigned and its cached revenue has
//     not been recomputed since its portions last changed. Unassigned
//     clients are never dirty: Unassign settles them eagerly by removing
//     their cached revenue from the ledger.
//   - A dirty client's ID appears in its cluster's dirtyClients list.
//     Stale list entries (the client was since unassigned, settled on
//     read, or moved to another cluster) are tolerated and skipped at
//     flush time via the clientDirty flag and the cluster check.
//   - A server is "dirty" iff any portion was added to or removed from it
//     since its cached cost was last recomputed. Servers never change
//     cluster, so the dirtyServers list needs no cluster check.
//   - Every ledger mutation touches only the cluster owning the mutated
//     client/server, so per-cluster goroutines (solver Parallel mode)
//     never race on ledger state as long as each goroutine confines its
//     mutations and profit reads to its own cluster.

// kahanSum is a compensated accumulator: the ledger totals absorb long
// streams of small deltas and must stay within 1e-9 of a from-scratch
// sum (the Validate cross-check), which plain accumulation cannot
// guarantee over millions of local-search moves.
type kahanSum struct {
	sum, comp float64
}

func (s *kahanSum) add(x float64) {
	y := x - s.comp
	t := s.sum + y
	s.comp = (t - s.sum) - y
	s.sum = t
}

func (s *kahanSum) value() float64 { return s.sum }

// clusterLedger aggregates one cluster's profit contribution.
type clusterLedger struct {
	rev       kahanSum // Σ cached revenue of the cluster's clients
	cost      kahanSum // Σ cached cost of the cluster's servers
	served    int      // clients with positive cached revenue
	saturated int      // assigned clients whose portions are saturated
	active    int      // servers with at least one portion
	assigned  int      // clients assigned to this cluster

	dirtyClients []model.ClientID
	dirtyServers []model.ServerID
}

// markClientDirty queues client i (assigned to cluster k) for revenue
// recomputation. Callers guarantee the client is not already dirty.
func (a *Allocation) markClientDirty(i model.ClientID, k int) {
	a.clientDirty[i] = true
	a.ledgers[k].dirtyClients = append(a.ledgers[k].dirtyClients, i)
}

// markServerDirty queues server j for cost recomputation.
func (a *Allocation) markServerDirty(j model.ServerID) {
	if a.serverDirty[j] {
		return
	}
	a.serverDirty[j] = true
	k := a.scen.Cloud.Servers[j].Cluster
	a.ledgers[k].dirtyServers = append(a.ledgers[k].dirtyServers, j)
}

// settleClient recomputes client i's revenue and folds the change into
// its cluster's ledger. The client must be assigned to the ledger's
// cluster.
func (a *Allocation) settleClient(i model.ClientID, led *clusterLedger) {
	a.clientDirty[i] = false
	rev, sat := a.computeRevenue(i)
	led.rev.add(rev - a.clientRev[i])
	a.clientRev[i] = rev
	if served := rev > 0; served != a.clientServed[i] {
		if served {
			led.served++
		} else {
			led.served--
		}
		a.clientServed[i] = served
	}
	if sat != a.clientSat[i] {
		if sat {
			led.saturated++
		} else {
			led.saturated--
		}
		a.clientSat[i] = sat
	}
}

// settleServer recomputes server j's cost and folds the change into its
// cluster's ledger.
func (a *Allocation) settleServer(j model.ServerID, led *clusterLedger) {
	a.serverDirty[j] = false
	cost := a.ServerCost(j)
	led.cost.add(cost - a.serverCost[j])
	a.serverCost[j] = cost
	if on := a.Active(j); on != a.serverOn[j] {
		if on {
			led.active++
		} else {
			led.active--
		}
		a.serverOn[j] = on
	}
}

// flush settles every dirty entry of cluster k's ledger. It reads and
// writes only cluster-k state, so concurrent flushes of distinct
// clusters are safe.
func (a *Allocation) flush(k int) {
	led := &a.ledgers[k]
	var settledC, settledS int
	if len(led.dirtyClients) > 0 {
		for _, i := range led.dirtyClients {
			// Skip stale entries: the client was settled on read,
			// unassigned, or moved to another cluster since it was queued.
			if !a.clientDirty[i] || a.clusterOf[i] != k {
				continue
			}
			a.settleClient(i, led)
			settledC++
		}
		led.dirtyClients = led.dirtyClients[:0]
	}
	if len(led.dirtyServers) > 0 {
		for _, j := range led.dirtyServers {
			if !a.serverDirty[j] {
				continue
			}
			a.settleServer(j, led)
			settledS++
		}
		led.dirtyServers = led.dirtyServers[:0]
	}
	if a.tel != nil {
		a.tel.recordFlush(k, settledC, settledS)
	}
}

// ClusterProfit returns cluster k's profit contribution — the revenue of
// its assigned clients minus the cost of its servers — settling only that
// cluster's dirty ledger entries: O(touched), not O(cloud). It touches no
// other cluster's state, so concurrent calls for distinct clusters are
// safe under the solver's per-cluster parallelism.
func (a *Allocation) ClusterProfit(k model.ClusterID) float64 {
	a.flush(int(k))
	led := &a.ledgers[k]
	return led.rev.value() - led.cost.value()
}

// RecomputeBreakdown computes the profit breakdown from scratch, ignoring
// every cached value. It is the O(cloud) reference the incremental ledger
// is checked against (Validate, property tests, benchmarks); production
// paths should use ProfitBreakdown.
func (a *Allocation) RecomputeBreakdown() Breakdown {
	var b Breakdown
	for i := range a.scen.Clients {
		id := model.ClientID(i)
		if !a.Assigned(id) {
			continue
		}
		b.Assigned++
		rev, sat := a.computeRevenue(id)
		if sat {
			b.Saturated++
		}
		if rev > 0 {
			b.Served++
		}
		b.Revenue += rev
	}
	for j := range a.servers {
		id := model.ServerID(j)
		if a.Active(id) {
			b.ActiveServers++
			b.EnergyCost += a.ServerCost(id)
		}
	}
	b.Profit = b.Revenue - b.EnergyCost
	return b
}

// ledgerCheck compares the incremental breakdown against a from-scratch
// recompute; used by Validate. tol bounds the float drift the compensated
// totals are allowed to accumulate, relative to each total's magnitude
// (an absolute bound cannot serve both a 50-client paper instance and a
// 1M-client scale instance whose revenue is seven orders larger).
func (a *Allocation) ledgerCheck(tol float64) (Breakdown, Breakdown, bool) {
	inc := a.ProfitBreakdown()
	full := a.RecomputeBreakdown()
	near := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*(1+math.Max(math.Abs(x), math.Abs(y)))
	}
	ok := near(inc.Revenue, full.Revenue) &&
		near(inc.EnergyCost, full.EnergyCost) &&
		near(inc.Profit, full.Profit) &&
		inc.ActiveServers == full.ActiveServers &&
		inc.Served == full.Served &&
		inc.Saturated == full.Saturated &&
		inc.Assigned == full.Assigned
	return inc, full, ok
}

// Package alloc holds the mutable state of a resource-allocation solution:
// which cluster each client is assigned to, the dispersion rates α_ij, the
// GPS shares φp_ij / φb_ij, per-server bookkeeping, profit evaluation and
// full feasibility validation against the paper's constraints (3)–(12).
package alloc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/queueing"
)

// Unassigned is the cluster value of a client that is not yet placed.
const Unassigned = -1

// _alphaTol absorbs floating-point error in "Σα = 1" checks.
const _alphaTol = 1e-6

// _shareTol absorbs floating-point error in share-budget checks.
const _shareTol = 1e-6

// Portion is the allocation of one slice of a client's request stream on
// one server: the dispersion rate α and the two GPS shares.
type Portion struct {
	Server    model.ServerID
	Alpha     float64
	ProcShare float64
	CommShare float64
}

type serverState struct {
	procShare float64 // allocated processing share incl. pre-allocated
	commShare float64 // allocated communication share incl. pre-allocated
	disk      float64 // reserved disk incl. pre-allocated
	procLoad  float64 // Σ α·λ̃·tp / Cp over portions (utilization, for cost)
	clients   map[model.ClientID]struct{}
}

// Allocation is a complete (possibly partial) solution over a scenario.
// Alongside the raw placement state it maintains an incremental profit
// ledger (see ledger.go): per-client revenue and per-server cost caches
// plus per-cluster running totals, kept consistent by dirty-marking every
// mutation so profit evaluation costs O(touched) instead of O(cloud).
type Allocation struct {
	scen      *model.Scenario
	clusterOf []int
	portions  [][]Portion
	servers   []serverState

	// Incremental profit ledger (ledger.go). Entry-indexed caches are
	// owned by the cluster the client/server belongs to; per-cluster
	// totals and dirty sets live in ledgers.
	clientRev    []float64
	clientServed []bool
	clientSat    []bool
	clientDirty  []bool
	serverCost   []float64
	serverOn     []bool
	serverDirty  []bool
	ledgers      []clusterLedger

	// clusterVer counts the mutations applied to each cluster: Assign and
	// Unassign bump the touched cluster's counter, and a rolled-back
	// transaction restores the counters it scoped (txn.go) so speculative
	// experiments do not register as changes. The reassignment pass uses
	// the counters to skip rescoring clients whose relevant clusters are
	// untouched since the previous round.
	clusterVer []uint64

	// tel instruments the ledger (nil, the default, disables it); see
	// Instrument.
	tel *ledgerTel
}

// New creates an empty allocation (every client unassigned) for the
// scenario, which must already be validated.
func New(scen *model.Scenario) *Allocation {
	a := &Allocation{
		scen:      scen,
		clusterOf: make([]int, len(scen.Clients)),
		portions:  make([][]Portion, len(scen.Clients)),
		servers:   make([]serverState, len(scen.Cloud.Servers)),

		clientRev:    make([]float64, len(scen.Clients)),
		clientServed: make([]bool, len(scen.Clients)),
		clientSat:    make([]bool, len(scen.Clients)),
		clientDirty:  make([]bool, len(scen.Clients)),
		serverCost:   make([]float64, len(scen.Cloud.Servers)),
		serverOn:     make([]bool, len(scen.Cloud.Servers)),
		serverDirty:  make([]bool, len(scen.Cloud.Servers)),
		ledgers:      make([]clusterLedger, scen.Cloud.NumClusters()),
		clusterVer:   make([]uint64, scen.Cloud.NumClusters()),
	}
	for i := range a.clusterOf {
		a.clusterOf[i] = Unassigned
	}
	for j := range a.servers {
		srv := &scen.Cloud.Servers[j]
		a.servers[j] = serverState{
			procShare: srv.PreProcShare,
			commShare: srv.PreCommShare,
			disk:      srv.PreDisk,
			clients:   make(map[model.ClientID]struct{}),
		}
	}
	return a
}

// Scenario returns the scenario the allocation is for.
func (a *Allocation) Scenario() *model.Scenario { return a.scen }

// ClusterOf returns the cluster of client i, or Unassigned.
func (a *Allocation) ClusterOf(i model.ClientID) int { return a.clusterOf[i] }

// Assigned reports whether client i is placed.
func (a *Allocation) Assigned(i model.ClientID) bool { return a.clusterOf[i] != Unassigned }

// ClusterVersion returns cluster k's mutation counter: it advances on
// every committed Assign/Unassign touching the cluster and is restored by
// rolled-back transactions, so an unchanged value means the cluster's
// placement state is exactly as it was.
func (a *Allocation) ClusterVersion(k model.ClusterID) uint64 { return a.clusterVer[k] }

// ClusterVersionSum folds all cluster versions into one value; a change
// anywhere in the cloud changes the sum (up to the astronomically
// unlikely exact cancellation of a bump against a rollback restore).
func (a *Allocation) ClusterVersionSum() uint64 {
	var sum uint64
	for _, v := range a.clusterVer {
		sum += v
	}
	return sum
}

// ClusterVersionSumOf folds the version counters of a subset of clusters
// — the scoped twin of ClusterVersionSum. Shard-scoped reassignment
// passes use it so a "did anything I can see change?" check never reads
// the counters of clusters another shard is mutating concurrently.
func (a *Allocation) ClusterVersionSumOf(ks []model.ClusterID) uint64 {
	var sum uint64
	for _, k := range ks {
		sum += a.clusterVer[k]
	}
	return sum
}

// Portions returns a copy of client i's portions.
func (a *Allocation) Portions(i model.ClientID) []Portion {
	ps := a.portions[i]
	if len(ps) == 0 {
		return nil
	}
	out := make([]Portion, len(ps))
	copy(out, ps)
	return out
}

// Assign places an unassigned client on cluster k with the given portions.
// Portions with Alpha == 0 are dropped. The assignment is validated for
// feasibility (budget, disk, stability, Σα = 1, single cluster) and the
// state is only mutated when it is feasible.
func (a *Allocation) Assign(i model.ClientID, k model.ClusterID, portions []Portion) error {
	if a.Assigned(i) {
		return fmt.Errorf("alloc: client %d already assigned to cluster %d", i, a.clusterOf[i])
	}
	kept, err := a.checkPortions(i, k, portions)
	if err != nil {
		return err
	}
	a.clusterOf[i] = int(k)
	a.portions[i] = kept
	cl := &a.scen.Clients[i]
	for _, p := range kept {
		st := &a.servers[p.Server]
		class := a.scen.Cloud.ServerClass(p.Server)
		st.procShare += p.ProcShare
		st.commShare += p.CommShare
		st.procLoad += queueing.LoadFraction(class.ProcCap, cl.ProcTime, p.Alpha*cl.PredictedRate)
		if _, ok := st.clients[i]; !ok {
			st.clients[i] = struct{}{}
			st.disk += cl.DiskNeed
		}
		a.markServerDirty(p.Server)
	}
	a.ledgers[k].assigned++
	a.markClientDirty(i, int(k))
	a.clusterVer[k]++
	return nil
}

// Unassign removes client i from the allocation and returns its previous
// cluster and portions so callers can restore them.
func (a *Allocation) Unassign(i model.ClientID) (model.ClusterID, []Portion) {
	if !a.Assigned(i) {
		return Unassigned, nil
	}
	k := model.ClusterID(a.clusterOf[i])
	ps := a.portions[i]
	cl := &a.scen.Clients[i]
	for _, p := range ps {
		st := &a.servers[p.Server]
		class := a.scen.Cloud.ServerClass(p.Server)
		st.procShare -= p.ProcShare
		st.commShare -= p.CommShare
		st.procLoad -= queueing.LoadFraction(class.ProcCap, cl.ProcTime, p.Alpha*cl.PredictedRate)
		if _, ok := st.clients[i]; ok {
			delete(st.clients, i)
			st.disk -= cl.DiskNeed
		}
		a.markServerDirty(p.Server)
	}
	// Settle the client eagerly so unassigned clients are never dirty:
	// remove its cached revenue attribution from the cluster's ledger. Any
	// stale dirty-list entry is skipped at flush time via the flag.
	led := &a.ledgers[k]
	led.assigned--
	a.clientDirty[i] = false
	led.rev.add(-a.clientRev[i])
	a.clientRev[i] = 0
	if a.clientServed[i] {
		led.served--
		a.clientServed[i] = false
	}
	if a.clientSat[i] {
		led.saturated--
		a.clientSat[i] = false
	}
	a.clusterOf[i] = Unassigned
	a.portions[i] = nil
	a.clusterVer[k]++
	return k, ps
}

// Reassign atomically replaces client i's allocation (possibly moving it
// to another cluster). On error the previous allocation is restored.
func (a *Allocation) Reassign(i model.ClientID, k model.ClusterID, portions []Portion) error {
	prevK, prev := a.Unassign(i)
	if err := a.Assign(i, k, portions); err != nil {
		if prevK != Unassigned {
			if restoreErr := a.Assign(i, prevK, prev); restoreErr != nil {
				return errors.Join(err, fmt.Errorf("alloc: restore failed: %w", restoreErr))
			}
		}
		return err
	}
	return nil
}

// checkPortions validates a candidate assignment against the current state
// and returns the non-zero portions.
func (a *Allocation) checkPortions(i model.ClientID, k model.ClusterID, portions []Portion) ([]Portion, error) {
	if int(k) < 0 || int(k) >= a.scen.Cloud.NumClusters() {
		return nil, fmt.Errorf("alloc: unknown cluster %d", k)
	}
	cl := &a.scen.Clients[i]
	var kept []Portion
	var alphaSum float64
	seen := make(map[model.ServerID]struct{}, len(portions))
	for _, p := range portions {
		if p.Alpha == 0 {
			continue
		}
		if p.Alpha < 0 || p.Alpha > 1+_alphaTol {
			return nil, fmt.Errorf("alloc: client %d portion on server %d has α=%v", i, p.Server, p.Alpha)
		}
		if int(p.Server) < 0 || int(p.Server) >= len(a.servers) {
			return nil, fmt.Errorf("alloc: client %d references unknown server %d", i, p.Server)
		}
		if a.scen.Cloud.Servers[p.Server].Cluster != k {
			return nil, fmt.Errorf("alloc: client %d portion on server %d outside cluster %d (constraint 6)",
				i, p.Server, k)
		}
		if _, dup := seen[p.Server]; dup {
			return nil, fmt.Errorf("alloc: client %d has duplicate portions on server %d", i, p.Server)
		}
		seen[p.Server] = struct{}{}

		class := a.scen.Cloud.ServerClass(p.Server)
		rate := p.Alpha * cl.PredictedRate
		if p.ProcShare <= queueing.MinStableShare(class.ProcCap, cl.ProcTime, rate) {
			return nil, fmt.Errorf("alloc: client %d on server %d: processing share %v unstable (constraint 7)",
				i, p.Server, p.ProcShare)
		}
		if p.CommShare <= queueing.MinStableShare(class.CommCap, cl.CommTime, rate) {
			return nil, fmt.Errorf("alloc: client %d on server %d: communication share %v unstable (constraint 7)",
				i, p.Server, p.CommShare)
		}
		st := &a.servers[p.Server]
		if st.procShare+p.ProcShare > 1+_shareTol {
			return nil, fmt.Errorf("alloc: server %d processing share budget exceeded (constraint 4)", p.Server)
		}
		if st.commShare+p.CommShare > 1+_shareTol {
			return nil, fmt.Errorf("alloc: server %d communication share budget exceeded (constraint 4)", p.Server)
		}
		if st.disk+cl.DiskNeed > class.StoreCap+_shareTol {
			return nil, fmt.Errorf("alloc: server %d disk capacity exceeded (constraints 5,8)", p.Server)
		}
		alphaSum += p.Alpha
		kept = append(kept, p)
	}
	if math.Abs(alphaSum-1) > _alphaTol {
		return nil, fmt.Errorf("alloc: client %d dispersion rates sum to %v, want 1 (constraint 6)", i, alphaSum)
	}
	return kept, nil
}

package alloc

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
)

// Snapshot is the serializable form of an allocation: the per-client
// placements. Server bookkeeping is derived, so it is not stored.
type Snapshot struct {
	Placements []Placement `json:"placements"`
}

// Placement is one client's stored assignment.
type Placement struct {
	Client   model.ClientID  `json:"client"`
	Cluster  model.ClusterID `json:"cluster"`
	Portions []Portion       `json:"portions"`
}

// PortionJSON mirrors Portion for encoding. Portion itself has exported
// fields, so it marshals directly; this alias documents the stability of
// the wire format.
type PortionJSON = Portion

// Snapshot extracts the serializable state of the allocation.
func (a *Allocation) Snapshot() Snapshot {
	var s Snapshot
	for i := range a.scen.Clients {
		id := model.ClientID(i)
		if !a.Assigned(id) {
			continue
		}
		s.Placements = append(s.Placements, Placement{
			Client:   id,
			Cluster:  model.ClusterID(a.ClusterOf(id)),
			Portions: a.Portions(id),
		})
	}
	return s
}

// WriteJSON serializes the allocation snapshot to w.
func (a *Allocation) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a.Snapshot()); err != nil {
		return fmt.Errorf("alloc: encode snapshot: %w", err)
	}
	return nil
}

// FromSnapshot rebuilds an allocation over the scenario, validating every
// placement against the scenario's constraints.
func FromSnapshot(scen *model.Scenario, s Snapshot) (*Allocation, error) {
	a := New(scen)
	for _, pl := range s.Placements {
		if int(pl.Client) < 0 || int(pl.Client) >= scen.NumClients() {
			return nil, fmt.Errorf("alloc: snapshot references unknown client %d", pl.Client)
		}
		if err := a.Assign(pl.Client, pl.Cluster, pl.Portions); err != nil {
			return nil, fmt.Errorf("alloc: snapshot placement rejected: %w", err)
		}
	}
	return a, nil
}

// ReadJSON parses a snapshot from r and rebuilds the allocation over the
// scenario.
func ReadJSON(scen *model.Scenario, r io.Reader) (*Allocation, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("alloc: decode snapshot: %w", err)
	}
	return FromSnapshot(scen, s)
}

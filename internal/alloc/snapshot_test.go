package alloc

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(1, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Profit()-a.Profit()) > 1e-12 {
		t.Fatalf("profit %v != %v after round trip", got.Profit(), a.Profit())
	}
	if got.NumAssigned() != 2 || got.ClusterOf(0) != 0 {
		t.Fatalf("placements lost: %+v", got.Snapshot())
	}
}

func TestSnapshotSkipsUnassigned(t *testing.T) {
	s := testScenario(t)
	a := New(s)
	if err := a.Assign(1, 1, []Portion{{Server: 2, Alpha: 1, ProcShare: 0.9, CommShare: 0.9}}); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if len(snap.Placements) != 1 || snap.Placements[0].Client != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestFromSnapshotRejectsInvalid(t *testing.T) {
	s := testScenario(t)
	if _, err := FromSnapshot(s, Snapshot{Placements: []Placement{{Client: 99, Cluster: 0}}}); err == nil {
		t.Fatal("unknown client accepted")
	}
	bad := Snapshot{Placements: []Placement{{
		Client:  0,
		Cluster: 0,
		// Unstable share.
		Portions: []Portion{{Server: 0, Alpha: 1, ProcShare: 0.01, CommShare: 0.5}},
	}}}
	if _, err := FromSnapshot(s, bad); err == nil {
		t.Fatal("infeasible placement accepted")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	s := testScenario(t)
	if _, err := ReadJSON(s, strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

package alloc

import (
	"repro/internal/telemetry"
)

// ledgerTel holds the ledger's pre-resolved metric handles. A nil
// *ledgerTel on the Allocation (the default) disables instrumentation;
// the settle path then pays one nil check per flush.
type ledgerTel struct {
	set            *telemetry.Set
	flushes        *telemetry.Counter
	settledClients *telemetry.Counter
	settledServers *telemetry.Counter
}

// settleSpanMinEntries keeps per-flush spans out of the trace ring for
// the (very frequent) tiny settles: only batch flushes — the ones worth
// seeing in /debug/trace — are recorded. Metrics count every flush.
const settleSpanMinEntries = 32

// Instrument attaches telemetry to the allocation's profit ledger:
// flush/settle counters and a span per batch settle. Passing nil
// detaches. Clones inherit the instrumentation.
func (a *Allocation) Instrument(set *telemetry.Set) {
	if set == nil {
		a.tel = nil
		return
	}
	set.Metrics.Help("ledger_flushes_total", "profit-ledger flushes that settled at least one dirty entry")
	a.tel = &ledgerTel{
		set:            set,
		flushes:        set.Counter("ledger_flushes_total"),
		settledClients: set.Counter("ledger_settled_clients_total"),
		settledServers: set.Counter("ledger_settled_servers_total"),
	}
}

// recordFlush folds one flush's settle counts into the metrics and, for
// batch settles, the trace ring.
func (t *ledgerTel) recordFlush(k int, clients, servers int) {
	if clients+servers == 0 {
		return
	}
	t.flushes.Inc()
	t.settledClients.Add(int64(clients))
	t.settledServers.Add(int64(servers))
	if clients+servers >= settleSpanMinEntries {
		sp := t.set.Start("ledger.settle")
		sp.Attr("cluster", k)
		sp.Attr("clients", clients)
		sp.Attr("servers", servers)
		sp.End()
	}
}

package alloc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// mutateAndMeasureGain is the reference the View must reproduce: the
// exact marginal gain of placing client i on (k, portions), measured by
// actually unassigning, assigning, reading revenue and server costs, and
// undoing everything — the sequence the legacy reassignment pass runs.
func mutateAndMeasureGain(a *Allocation, i model.ClientID, k model.ClusterID, portions []Portion) (float64, bool) {
	prevK, prev := a.Unassign(i)
	restore := func() {
		if prevK != Unassigned {
			if err := a.Assign(i, prevK, prev); err != nil {
				panic(err)
			}
		}
	}
	serverCost := func() float64 {
		var cost float64
		seen := make(map[model.ServerID]struct{}, len(portions))
		for _, p := range portions {
			if _, ok := seen[p.Server]; ok {
				continue
			}
			seen[p.Server] = struct{}{}
			cost += a.ServerCost(p.Server)
		}
		return cost
	}
	costBefore := serverCost()
	if err := a.Assign(i, k, portions); err != nil {
		restore()
		return 0, false
	}
	rev, revErr := a.RevenueErr(i)
	gain := rev - (serverCost() - costBefore)
	a.Unassign(i)
	restore()
	if revErr != nil {
		return 0, false
	}
	return gain, true
}

// TestPlacementGainMatchesMutateAndMeasure drives random allocation
// states and random (sometimes infeasible) candidates and checks that
// the read-only View evaluation agrees exactly — same feasibility
// verdict, same gain — with the mutate-and-measure reference, and that
// evaluating through the View changes nothing.
func TestPlacementGainMatchesMutateAndMeasure(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 25
	wcfg.Seed = 7
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	a := New(scen)
	for i := range scen.Clients {
		id := model.ClientID(i)
		if k, ps := randomFeasiblePortions(rng, a, id); ps != nil {
			if err := a.Assign(id, k, ps); err != nil {
				continue
			}
		}
	}
	if a.NumAssigned() == 0 {
		t.Fatal("no clients assigned; scenario too tight for the test")
	}

	var scratch GainScratch
	var checked int
	for trial := 0; trial < 2000; trial++ {
		i := model.ClientID(rng.Intn(scen.NumClients()))

		// Build a candidate against the state without i, like the real
		// scoring path does.
		b := a.Clone()
		b.Unassign(i)
		k, cand := randomFeasiblePortions(rng, b, i)
		if cand == nil {
			continue
		}
		// Occasionally corrupt the candidate to exercise the reject paths.
		switch rng.Intn(8) {
		case 0:
			cand[0].Alpha *= 1.5 // Σα ≠ 1
		case 1:
			cand[0].ProcShare = 0 // unstable share
		case 2:
			cand = append(cand, cand[0]) // duplicate server
		case 3:
			k = model.ClusterID((int(k) + 1) % scen.Cloud.NumClusters()) // wrong cluster
		}

		view := a.Excluding(i)
		gotGain, gotOK := view.PlacementGain(k, cand, &scratch)
		wantGain, wantOK := mutateAndMeasureGain(a, i, k, cand)
		if gotOK != wantOK {
			t.Fatalf("trial %d: feasibility mismatch: view %v, reference %v (client %d cluster %d)",
				trial, gotOK, wantOK, i, k)
		}
		if !gotOK {
			continue
		}
		checked++
		if math.Abs(gotGain-wantGain) > 1e-9*(1+math.Abs(wantGain)) {
			t.Fatalf("trial %d: gain mismatch: view %v, reference %v (client %d cluster %d)",
				trial, gotGain, wantGain, i, k)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d feasible candidates exercised; test too weak", checked)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("allocation corrupted by read-only evaluation: %v", err)
	}
}

// TestExcludingViewMatchesUnassign checks the View's read surface equals
// the state an actual Unassign would produce.
func TestExcludingViewMatchesUnassign(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 15
	wcfg.Seed = 3
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := New(scen)
	for i := range scen.Clients {
		id := model.ClientID(i)
		if k, ps := randomFeasiblePortions(rng, a, id); ps != nil {
			_ = a.Assign(id, k, ps)
		}
	}
	for i := range scen.Clients {
		id := model.ClientID(i)
		view := a.Excluding(id)
		b := a.Clone()
		b.Unassign(id)
		for j := range scen.Cloud.Servers {
			sid := model.ServerID(j)
			if got, want := view.ProcShareUsed(sid), b.ProcShareUsed(sid); got != want {
				t.Fatalf("client %d server %d: ProcShareUsed %v != %v", id, sid, got, want)
			}
			if got, want := view.CommShareUsed(sid), b.CommShareUsed(sid); got != want {
				t.Fatalf("client %d server %d: CommShareUsed %v != %v", id, sid, got, want)
			}
			if got, want := view.DiskUsed(sid), b.DiskUsed(sid); got != want {
				t.Fatalf("client %d server %d: DiskUsed %v != %v", id, sid, got, want)
			}
			if got, want := view.Active(sid), b.Active(sid); got != want {
				t.Fatalf("client %d server %d: Active %v != %v", id, sid, got, want)
			}
			if got, want := view.procLoad(sid), b.ProcUtilization(sid); got != want {
				t.Fatalf("client %d server %d: procLoad %v != %v", id, sid, got, want)
			}
		}
	}
}

// TestClusterVersionTracking checks the dirty-cluster contract: real
// mutations advance the touched cluster's version, rolled-back
// transactions restore it, and commits keep it.
func TestClusterVersionTracking(t *testing.T) {
	scen := testScenario(t)
	a := New(scen)
	v0, v1 := a.ClusterVersion(0), a.ClusterVersion(1)

	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	if a.ClusterVersion(0) == v0 {
		t.Fatal("Assign did not advance cluster 0's version")
	}
	if a.ClusterVersion(1) != v1 {
		t.Fatal("Assign advanced an untouched cluster's version")
	}

	// A rolled-back transaction must not register as a change.
	before := a.ClusterVersion(0)
	sum := a.ClusterVersionSum()
	txn := a.BeginCluster(0)
	txn.Capture(0)
	a.Unassign(0)
	if err := a.Assign(0, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if a.ClusterVersion(0) != before {
		t.Fatalf("rollback left cluster 0 at version %d, want %d", a.ClusterVersion(0), before)
	}
	if a.ClusterVersionSum() != sum {
		t.Fatal("rollback changed the version sum")
	}
	if a.ClusterOf(0) != 0 {
		t.Fatal("rollback did not restore the placement")
	}

	// A committed transaction keeps the advanced version.
	txn = a.Begin()
	txn.Capture(0)
	a.Unassign(0)
	if err := a.Assign(0, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if a.ClusterVersion(0) == before {
		t.Fatal("commit did not keep the advanced version")
	}

	// Clones carry the counters.
	c := a.Clone()
	if c.ClusterVersion(0) != a.ClusterVersion(0) || c.ClusterVersionSum() != a.ClusterVersionSum() {
		t.Fatal("clone dropped version counters")
	}
}

package alloc

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/queueing"
)

// ResponseTime returns the mean response time R̄_i of client i under the
// current allocation (paper eq. (1)). It returns an error if the client is
// unassigned or any portion is saturated.
func (a *Allocation) ResponseTime(i model.ClientID) (float64, error) {
	if !a.Assigned(i) {
		return 0, fmt.Errorf("alloc: client %d unassigned", i)
	}
	cl := &a.scen.Clients[i]
	var r float64
	for _, p := range a.portions[i] {
		class := a.scen.Cloud.ServerClass(p.Server)
		d, err := queueing.TandemDelay(
			queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
			queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
			queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
			p.Alpha*cl.PredictedRate,
		)
		if err != nil {
			return 0, fmt.Errorf("alloc: client %d portion on server %d: %w", i, p.Server, err)
		}
		r += p.Alpha * d
	}
	return r, nil
}

// Revenue returns the revenue earned from client i: λ_i · U_{c(i)}(R̄_i),
// priced at the agreed arrival rate. Saturated or unassigned clients earn
// zero.
func (a *Allocation) Revenue(i model.ClientID) float64 {
	r, err := a.ResponseTime(i)
	if err != nil {
		return 0
	}
	return a.scen.Clients[i].ArrivalRate * a.scen.Utility(i).Value(r)
}

// Active reports whether server j serves at least one portion (paper
// constraint (3): a server with allocated resources is ON).
func (a *Allocation) Active(j model.ServerID) bool {
	return len(a.servers[j].clients) > 0
}

// ServerCost returns the operation cost of server j under the current
// allocation: P0 + P1·(processing utilization) when active, 0 otherwise.
func (a *Allocation) ServerCost(j model.ServerID) float64 {
	if !a.Active(j) {
		return 0
	}
	class := a.scen.Cloud.ServerClass(j)
	return class.FixedCost + class.UtilizationCost*a.servers[j].procLoad
}

// Breakdown decomposes the total profit.
type Breakdown struct {
	Revenue       float64
	EnergyCost    float64
	Profit        float64
	ActiveServers int
	Served        int // clients with positive revenue
	Assigned      int
}

// Profit returns total profit: Σ revenue − Σ active-server cost.
func (a *Allocation) Profit() float64 { return a.ProfitBreakdown().Profit }

// ProfitBreakdown computes the profit and its components in one pass.
func (a *Allocation) ProfitBreakdown() Breakdown {
	var b Breakdown
	for i := range a.scen.Clients {
		if !a.Assigned(model.ClientID(i)) {
			continue
		}
		b.Assigned++
		rev := a.Revenue(model.ClientID(i))
		if rev > 0 {
			b.Served++
		}
		b.Revenue += rev
	}
	for j := range a.servers {
		if cost := a.ServerCost(model.ServerID(j)); cost > 0 {
			b.EnergyCost += cost
			b.ActiveServers++
		}
	}
	b.Profit = b.Revenue - b.EnergyCost
	return b
}

// ProcShareUsed returns the consumed processing-share budget of server j
// (including pre-allocated share), in [0,1].
func (a *Allocation) ProcShareUsed(j model.ServerID) float64 { return a.servers[j].procShare }

// CommShareUsed returns the consumed communication-share budget of server j.
func (a *Allocation) CommShareUsed(j model.ServerID) float64 { return a.servers[j].commShare }

// DiskUsed returns the reserved disk on server j in absolute units.
func (a *Allocation) DiskUsed(j model.ServerID) float64 { return a.servers[j].disk }

// ProcUtilization returns the processing-domain utilization of server j
// from this allocation's portions (the quantity the P1 cost multiplies).
func (a *Allocation) ProcUtilization(j model.ServerID) float64 { return a.servers[j].procLoad }

// ClientsOn returns the IDs of clients with a portion on server j, in
// ascending order.
func (a *Allocation) ClientsOn(j model.ServerID) []model.ClientID {
	st := &a.servers[j]
	if len(st.clients) == 0 {
		return nil
	}
	out := make([]model.ClientID, 0, len(st.clients))
	for id := range st.clients {
		out = append(out, id)
	}
	sortClientIDs(out)
	return out
}

// NumActiveServers returns the number of active servers.
func (a *Allocation) NumActiveServers() int {
	var n int
	for j := range a.servers {
		if a.Active(model.ServerID(j)) {
			n++
		}
	}
	return n
}

// NumAssigned returns the number of assigned clients.
func (a *Allocation) NumAssigned() int {
	var n int
	for _, k := range a.clusterOf {
		if k != Unassigned {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the allocation sharing the (immutable)
// scenario.
func (a *Allocation) Clone() *Allocation {
	c := &Allocation{
		scen:      a.scen,
		clusterOf: append([]int(nil), a.clusterOf...),
		portions:  make([][]Portion, len(a.portions)),
		servers:   make([]serverState, len(a.servers)),
	}
	for i, ps := range a.portions {
		if len(ps) > 0 {
			c.portions[i] = append([]Portion(nil), ps...)
		}
	}
	for j, st := range a.servers {
		cs := st
		cs.clients = make(map[model.ClientID]struct{}, len(st.clients))
		for id := range st.clients {
			cs.clients[id] = struct{}{}
		}
		c.servers[j] = cs
	}
	return c
}

// Validate re-derives all server state from the portions and checks every
// problem constraint; it reports the first violation found. Useful as a
// post-solver invariant check and in property tests.
func (a *Allocation) Validate() error {
	fresh := New(a.scen)
	for i := range a.scen.Clients {
		id := model.ClientID(i)
		if !a.Assigned(id) {
			continue
		}
		if err := fresh.Assign(id, model.ClusterID(a.clusterOf[i]), a.portions[i]); err != nil {
			return err
		}
	}
	for j := range a.servers {
		got, want := a.servers[j], fresh.servers[j]
		if math.Abs(got.procShare-want.procShare) > 1e-6 ||
			math.Abs(got.commShare-want.commShare) > 1e-6 ||
			math.Abs(got.disk-want.disk) > 1e-6 ||
			math.Abs(got.procLoad-want.procLoad) > 1e-6 ||
			len(got.clients) != len(want.clients) {
			return fmt.Errorf("alloc: server %d bookkeeping drifted: have %+v want %+v", j, got, want)
		}
	}
	return nil
}

func sortClientIDs(ids []model.ClientID) {
	// Insertion sort: server client sets are small and this avoids an
	// import cycle on sort wrappers.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

package alloc

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/model"
	"repro/internal/queueing"
)

// ErrUnassigned reports a revenue query for a client that is not placed.
var ErrUnassigned = errors.New("alloc: client unassigned")

// ErrSaturated reports a client whose current portions cannot sustain its
// predicted arrival rate (a portion's tandem queue is unstable). The
// solver treats this as "infeasible move", distinct from a placement that
// is merely worth zero revenue.
var ErrSaturated = errors.New("alloc: client portion saturated")

// ResponseTime returns the mean response time R̄_i of client i under the
// current allocation (paper eq. (1)). It returns an error if the client is
// unassigned or any portion is saturated.
func (a *Allocation) ResponseTime(i model.ClientID) (float64, error) {
	if !a.Assigned(i) {
		return 0, fmt.Errorf("alloc: client %d: %w", i, ErrUnassigned)
	}
	cl := &a.scen.Clients[i]
	var r float64
	for _, p := range a.portions[i] {
		class := a.scen.Cloud.ServerClass(p.Server)
		d, err := queueing.TandemDelay(
			queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
			queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
			queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
			p.Alpha*cl.PredictedRate,
		)
		if err != nil {
			return 0, fmt.Errorf("alloc: client %d portion on server %d: %w", i, p.Server, err)
		}
		r += p.Alpha * d
	}
	return r, nil
}

// computeRevenue evaluates client i's revenue from scratch: λ_i ·
// U_{c(i)}(R̄_i) priced at the agreed arrival rate, plus a flag marking a
// saturated placement. The client must be assigned.
func (a *Allocation) computeRevenue(i model.ClientID) (rev float64, saturated bool) {
	r, err := a.ResponseTime(i)
	if err != nil {
		return 0, true
	}
	return a.scen.Clients[i].ArrivalRate * a.scen.Utility(i).Value(r), false
}

// Revenue returns the revenue earned from client i. Saturated or
// unassigned clients earn zero; use RevenueErr to tell the cases apart.
// The value is served from the ledger cache when clean and settled into
// it otherwise, so repeated reads inside a local-search sweep are O(1).
func (a *Allocation) Revenue(i model.ClientID) float64 {
	rev, _ := a.RevenueErr(i)
	return rev
}

// RevenueErr returns client i's revenue, distinguishing the two zero
// cases the plain Revenue conflates: ErrUnassigned when the client is not
// placed and ErrSaturated when its portions cannot sustain the predicted
// rate (an infeasible, not merely worthless, placement).
func (a *Allocation) RevenueErr(i model.ClientID) (float64, error) {
	if !a.Assigned(i) {
		return 0, fmt.Errorf("alloc: client %d: %w", i, ErrUnassigned)
	}
	if a.clientDirty[i] {
		// Settle on read; the stale dirty-list entry is skipped at flush.
		a.settleClient(i, &a.ledgers[a.clusterOf[i]])
	}
	if a.clientSat[i] {
		return 0, fmt.Errorf("alloc: client %d: %w", i, ErrSaturated)
	}
	return a.clientRev[i], nil
}

// Active reports whether server j serves at least one portion (paper
// constraint (3): a server with allocated resources is ON).
func (a *Allocation) Active(j model.ServerID) bool {
	return len(a.servers[j].clients) > 0
}

// ServerCost returns the operation cost of server j under the current
// allocation: P0 + P1·(processing utilization) when active, 0 otherwise.
func (a *Allocation) ServerCost(j model.ServerID) float64 {
	if !a.Active(j) {
		return 0
	}
	class := a.scen.Cloud.ServerClass(j)
	return class.FixedCost + class.UtilizationCost*a.servers[j].procLoad
}

// Breakdown decomposes the total profit.
type Breakdown struct {
	Revenue       float64
	EnergyCost    float64
	Profit        float64
	ActiveServers int
	Served        int // clients with positive revenue
	Saturated     int // assigned clients with saturated portions
	Assigned      int
}

// Profit returns total profit: Σ revenue − Σ active-server cost.
func (a *Allocation) Profit() float64 { return a.ProfitBreakdown().Profit }

// ProfitBreakdown returns the profit and its components from the
// incremental ledger: only entries dirtied since the previous evaluation
// are recomputed, so the cost is O(touched + clusters) rather than
// O(clients + servers). RecomputeBreakdown is the from-scratch reference.
func (a *Allocation) ProfitBreakdown() Breakdown {
	var b Breakdown
	for k := range a.ledgers {
		a.flush(k)
		led := &a.ledgers[k]
		b.Revenue += led.rev.value()
		b.EnergyCost += led.cost.value()
		b.ActiveServers += led.active
		b.Served += led.served
		b.Saturated += led.saturated
		b.Assigned += led.assigned
	}
	b.Profit = b.Revenue - b.EnergyCost
	return b
}

// ProcShareUsed returns the consumed processing-share budget of server j
// (including pre-allocated share), in [0,1].
func (a *Allocation) ProcShareUsed(j model.ServerID) float64 { return a.servers[j].procShare }

// CommShareUsed returns the consumed communication-share budget of server j.
func (a *Allocation) CommShareUsed(j model.ServerID) float64 { return a.servers[j].commShare }

// DiskUsed returns the reserved disk on server j in absolute units.
func (a *Allocation) DiskUsed(j model.ServerID) float64 { return a.servers[j].disk }

// ProcUtilization returns the processing-domain utilization of server j
// from this allocation's portions (the quantity the P1 cost multiplies).
func (a *Allocation) ProcUtilization(j model.ServerID) float64 { return a.servers[j].procLoad }

// ClientsOn returns the IDs of clients with a portion on server j, in
// ascending order.
func (a *Allocation) ClientsOn(j model.ServerID) []model.ClientID {
	st := &a.servers[j]
	if len(st.clients) == 0 {
		return nil
	}
	out := make([]model.ClientID, 0, len(st.clients))
	for id := range st.clients {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// NumActiveServers returns the number of active servers.
func (a *Allocation) NumActiveServers() int {
	var n int
	for j := range a.servers {
		if a.Active(model.ServerID(j)) {
			n++
		}
	}
	return n
}

// NumAssigned returns the number of assigned clients.
func (a *Allocation) NumAssigned() int {
	var n int
	for _, k := range a.clusterOf {
		if k != Unassigned {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the allocation — including the profit
// ledger, so the copy and the original can diverge without corrupting
// each other's cached totals — sharing the (immutable) scenario.
func (a *Allocation) Clone() *Allocation {
	c := &Allocation{
		scen:      a.scen,
		clusterOf: append([]int(nil), a.clusterOf...),
		portions:  make([][]Portion, len(a.portions)),
		servers:   make([]serverState, len(a.servers)),

		clientRev:    append([]float64(nil), a.clientRev...),
		clientServed: append([]bool(nil), a.clientServed...),
		clientSat:    append([]bool(nil), a.clientSat...),
		clientDirty:  append([]bool(nil), a.clientDirty...),
		serverCost:   append([]float64(nil), a.serverCost...),
		serverOn:     append([]bool(nil), a.serverOn...),
		serverDirty:  append([]bool(nil), a.serverDirty...),
		ledgers:      make([]clusterLedger, len(a.ledgers)),
		clusterVer:   append([]uint64(nil), a.clusterVer...),
		tel:          a.tel, // clones keep reporting to the same metrics
	}
	for i, ps := range a.portions {
		if len(ps) > 0 {
			c.portions[i] = append([]Portion(nil), ps...)
		}
	}
	for j, st := range a.servers {
		cs := st
		cs.clients = make(map[model.ClientID]struct{}, len(st.clients))
		for id := range st.clients {
			cs.clients[id] = struct{}{}
		}
		c.servers[j] = cs
	}
	for k, led := range a.ledgers {
		cl := led
		cl.dirtyClients = append([]model.ClientID(nil), led.dirtyClients...)
		cl.dirtyServers = append([]model.ServerID(nil), led.dirtyServers...)
		c.ledgers[k] = cl
	}
	return c
}

// Validate re-derives all server state from the portions and checks every
// problem constraint, then cross-checks the incremental profit ledger
// against a from-scratch recompute; it reports the first violation found.
// Useful as a post-solver invariant check and in property tests.
func (a *Allocation) Validate() error {
	fresh := New(a.scen)
	for i := range a.scen.Clients {
		id := model.ClientID(i)
		if !a.Assigned(id) {
			continue
		}
		if err := fresh.Assign(id, model.ClusterID(a.clusterOf[i]), a.portions[i]); err != nil {
			return err
		}
	}
	for j := range a.servers {
		got, want := a.servers[j], fresh.servers[j]
		if math.Abs(got.procShare-want.procShare) > 1e-6 ||
			math.Abs(got.commShare-want.commShare) > 1e-6 ||
			math.Abs(got.disk-want.disk) > 1e-6 ||
			math.Abs(got.procLoad-want.procLoad) > 1e-6 ||
			len(got.clients) != len(want.clients) {
			return fmt.Errorf("alloc: server %d bookkeeping drifted: have %+v want %+v", j, got, want)
		}
	}
	if inc, full, ok := a.ledgerCheck(1e-9); !ok {
		return fmt.Errorf("alloc: profit ledger drifted: incremental %+v vs recomputed %+v", inc, full)
	}
	return nil
}

package alloc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// buildBusyAllocation assigns as many clients as the dice allow so the
// index sees a realistically fragmented state.
func buildBusyAllocation(t *testing.T, scen *model.Scenario, seed int64) *Allocation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := New(scen)
	for i := range scen.Clients {
		id := model.ClientID(i)
		if k, ps := randomFeasiblePortions(rng, a, id); ps != nil {
			_ = a.Assign(id, k, ps)
		}
	}
	if a.NumAssigned() == 0 {
		t.Fatal("no clients assigned; scenario too tight for the test")
	}
	return a
}

// TestGainUpperBoundIsSound drives random allocation states and random
// feasible candidates and checks the index invariant the pruning relies
// on: whenever the exact PlacementGain accepts a candidate on a cluster
// the client holds no resources in, the index must not have declared the
// cluster infeasible, and its bound must dominate the exact gain.
func TestGainUpperBoundIsSound(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 25
	wcfg.Seed = 7
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	a := buildBusyAllocation(t, scen, 13)
	ix := NewIndex(a)
	ix.Refresh()

	var scratch GainScratch
	var checked int
	for trial := 0; trial < 4000; trial++ {
		i := model.ClientID(rng.Intn(scen.NumClients()))

		// Build a candidate against the state without i, like the real
		// scoring path does.
		b := a.Clone()
		b.Unassign(i)
		k, cand := randomFeasiblePortions(rng, b, i)
		if cand == nil {
			continue
		}
		if int(k) == a.ClusterOf(i) {
			// The bound's contract excludes the client's own cluster: the
			// exclusion view frees the client's shares there, and the raw
			// aggregates cannot see that headroom.
			continue
		}
		view := a.Excluding(i)
		gain, ok := view.PlacementGain(k, cand, &scratch)
		if !ok {
			continue
		}
		checked++
		bound, feasible := ix.GainUpperBound(i, k)
		if !feasible {
			t.Fatalf("trial %d: index declared cluster %d infeasible for client %d, but exact gain %v exists",
				trial, k, i, gain)
		}
		if bound < gain-1e-9*(1+math.Abs(gain)) {
			t.Fatalf("trial %d: bound %v below exact gain %v (client %d cluster %d)",
				trial, bound, gain, i, k)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d feasible candidates exercised; test too weak", checked)
	}
}

// TestIndexRefreshMatchesRebuild checks the version-stamped lazy refresh:
// after an arbitrary mutation history, Refresh must reproduce exactly the
// aggregates a from-scratch index computes.
func TestIndexRefreshMatchesRebuild(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 20
	wcfg.Seed = 3
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := New(scen)
	ix := NewIndex(a)
	ix.Refresh()

	for op := 0; op < 200; op++ {
		i := model.ClientID(rng.Intn(scen.NumClients()))
		if a.Assigned(i) {
			a.Unassign(i)
		} else if k, ps := randomFeasiblePortions(rng, a, i); ps != nil {
			_ = a.Assign(i, k, ps)
		}
		if op%17 == 0 {
			a.Reset()
		}
		ix.Refresh()
		fresh := NewIndex(a)
		fresh.Refresh()
		for k := range ix.aggs {
			if ix.aggs[k] != fresh.aggs[k] {
				t.Fatalf("op %d: cluster %d aggregates diverged: incremental %+v, rebuild %+v",
					op, k, ix.aggs[k], fresh.aggs[k])
			}
			if ix.statics[k] != fresh.statics[k] {
				t.Fatalf("op %d: cluster %d statics diverged", op, k)
			}
		}
	}
}

// TestIndexRefreshSkipsCleanClusters checks the ledger-version contract:
// a refresh after mutations in one cluster must not recompute (or change)
// any other cluster's row.
func TestIndexRefreshSkipsCleanClusters(t *testing.T) {
	scen := testScenario(t)
	a := New(scen)
	ix := NewIndex(a)
	ix.Refresh()
	agg1 := ix.aggs[1]

	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	ix.Refresh()
	if ix.aggs[1] != agg1 {
		t.Fatal("refresh touched an unmutated cluster's aggregates")
	}
	if ix.aggs[0].active != 1 {
		t.Fatalf("refresh missed the mutated cluster: active = %d, want 1", ix.aggs[0].active)
	}

	// A rolled-back transaction restores the version counter, so the next
	// refresh must treat the cluster as clean.
	txn := a.BeginCluster(0)
	txn.Capture(1)
	if err := a.Assign(1, 0, fullPortion(1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	before := ix.aggs[0]
	ix.Refresh()
	if ix.aggs[0] != before {
		t.Fatal("refresh after rollback recomputed to a different state")
	}
}

// TestTopKOrderAndSubset checks the deterministic candidate order (bound
// descending, cluster ascending) and the subset restriction.
func TestTopKOrderAndSubset(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 10
	wcfg.Seed = 21
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	a := buildBusyAllocation(t, scen, 23)
	ix := NewIndex(a)
	ix.Refresh()
	numK := scen.Cloud.NumClusters()

	for i := 0; i < scen.NumClients(); i++ {
		id := model.ClientID(i)
		// Reference: all feasible bounds, fully sorted.
		var all []Candidate
		for k := 0; k < numK; k++ {
			if b, ok := ix.GainUpperBound(id, model.ClusterID(k)); ok {
				all = append(all, Candidate{Cluster: model.ClusterID(k), Bound: b})
			}
		}
		for x := 1; x < len(all); x++ {
			for y := x; y > 0; y-- {
				p, q := &all[y-1], &all[y]
				if q.Bound > p.Bound || (q.Bound == p.Bound && q.Cluster < p.Cluster) {
					*p, *q = *q, *p
				} else {
					break
				}
			}
		}
		for k := 1; k <= numK; k++ {
			got := ix.TopK(id, k, nil, nil)
			want := all
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("client %d top-%d: got %d candidates, want %d", id, k, len(got), len(want))
			}
			for idx := range got {
				if got[idx] != want[idx] {
					t.Fatalf("client %d top-%d[%d]: got %+v, want %+v", id, k, idx, got[idx], want[idx])
				}
			}
		}
		// Subset restriction: only the listed clusters may appear.
		subset := []model.ClusterID{0, model.ClusterID(numK - 1)}
		for _, c := range ix.TopK(id, numK, subset, nil) {
			if c.Cluster != 0 && c.Cluster != model.ClusterID(numK-1) {
				t.Fatalf("client %d: subset scan returned out-of-subset cluster %d", id, c.Cluster)
			}
		}
	}
}

// TestClusterVersionSumOf checks the scoped version fold against the
// whole-cloud one.
func TestClusterVersionSumOf(t *testing.T) {
	scen := testScenario(t)
	a := New(scen)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	all := []model.ClusterID{0, 1}
	if got, want := a.ClusterVersionSumOf(all), a.ClusterVersionSum(); got != want {
		t.Fatalf("ClusterVersionSumOf(all) = %d, want %d", got, want)
	}
	only0 := a.ClusterVersionSumOf([]model.ClusterID{0})
	if only0 != a.ClusterVersion(0) {
		t.Fatalf("ClusterVersionSumOf([0]) = %d, want %d", only0, a.ClusterVersion(0))
	}
}

// TestBeginClustersScope checks the multi-cluster transaction: Delta sees
// changes in every scoped cluster, rollback restores placements and the
// scoped version counters, commit keeps them.
func TestBeginClustersScope(t *testing.T) {
	scen := testScenario(t)
	a := New(scen)
	if err := a.Assign(0, 0, fullPortion(0)); err != nil {
		t.Fatal(err)
	}
	v0, v1 := a.ClusterVersion(0), a.ClusterVersion(1)
	profit := a.Profit()

	txn := a.BeginClusters(0, 1)
	txn.Capture(0)
	txn.Capture(1)
	a.Unassign(0)
	if err := a.Assign(1, 1, []Portion{{Server: 2, Alpha: 1, ProcShare: 0.9, CommShare: 0.9}}); err != nil {
		t.Fatal(err)
	}
	wholeDelta := a.Profit() - profit
	if d := txn.Delta(); math.Abs(d-wholeDelta) > 1e-9*(1+math.Abs(wholeDelta)) {
		t.Fatalf("scoped Delta %v, whole-cloud delta %v", d, wholeDelta)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if a.ClusterOf(0) != 0 || a.Assigned(1) {
		t.Fatal("rollback did not restore the placements")
	}
	if a.ClusterVersion(0) != v0 || a.ClusterVersion(1) != v1 {
		t.Fatal("rollback did not restore the scoped version counters")
	}
	if got := a.Profit(); math.Abs(got-profit) > 1e-9*(1+math.Abs(profit)) {
		t.Fatalf("rollback profit %v, want %v", got, profit)
	}

	txn = a.BeginClusters(0, 1)
	txn.Capture(0)
	a.Unassign(0)
	txn.Commit()
	if a.Assigned(0) {
		t.Fatal("commit did not keep the mutation")
	}
	if a.ClusterVersion(0) == v0 {
		t.Fatal("commit did not keep the advanced version counter")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

package alloc

import (
	"math"

	"repro/internal/model"
	"repro/internal/queueing"
)

// View is a read-only window onto an allocation with one client's
// resources subtracted on the fly — the state the reassignment pass
// prices candidate placements against ("what would the cloud look like
// without this client"). It never mutates the allocation or its ledger,
// so any number of Views over the same allocation may be read
// concurrently as long as nothing mutates the allocation meanwhile.
type View struct {
	a        *Allocation
	client   model.ClientID
	portions []Portion // the excluded client's live portions (aliased)
	diskNeed float64
}

// Excluding returns a View of the allocation without client i's
// resources. If i is unassigned the View reads the raw state.
func (a *Allocation) Excluding(i model.ClientID) View {
	v := View{a: a, client: i}
	if a.Assigned(i) {
		v.portions = a.portions[i]
		v.diskNeed = a.scen.Clients[i].DiskNeed
	}
	return v
}

// exclPortion returns the excluded client's portion on server j, if any.
func (v *View) exclPortion(j model.ServerID) (Portion, bool) {
	for _, p := range v.portions {
		if p.Server == j {
			return p, true
		}
	}
	return Portion{}, false
}

// ProcShareUsed mirrors Allocation.ProcShareUsed without the excluded
// client.
func (v *View) ProcShareUsed(j model.ServerID) float64 {
	u := v.a.servers[j].procShare
	if p, ok := v.exclPortion(j); ok {
		u -= p.ProcShare
	}
	return u
}

// CommShareUsed mirrors Allocation.CommShareUsed without the excluded
// client.
func (v *View) CommShareUsed(j model.ServerID) float64 {
	u := v.a.servers[j].commShare
	if p, ok := v.exclPortion(j); ok {
		u -= p.CommShare
	}
	return u
}

// DiskUsed mirrors Allocation.DiskUsed without the excluded client.
func (v *View) DiskUsed(j model.ServerID) float64 {
	u := v.a.servers[j].disk
	if _, ok := v.exclPortion(j); ok {
		u -= v.diskNeed
	}
	return u
}

// Active mirrors Allocation.Active without the excluded client.
func (v *View) Active(j model.ServerID) bool {
	n := len(v.a.servers[j].clients)
	if _, ok := v.exclPortion(j); ok {
		n--
	}
	return n > 0
}

// procLoad returns server j's processing utilization without the
// excluded client, reproducing the float arithmetic an actual Unassign
// would perform (procLoad -= LoadFraction).
func (v *View) procLoad(j model.ServerID) float64 {
	load := v.a.servers[j].procLoad
	if p, ok := v.exclPortion(j); ok {
		cl := &v.a.scen.Clients[v.client]
		class := v.a.scen.Cloud.ServerClass(j)
		load -= queueing.LoadFraction(class.ProcCap, cl.ProcTime, p.Alpha*cl.PredictedRate)
	}
	return load
}

// GainScratch holds PlacementGain's per-call working memory so a hot
// caller can amortize it across candidates.
type GainScratch struct {
	seen []model.ServerID
}

// PlacementGain evaluates the exact marginal profit of placing the
// excluded client on cluster k with the given portions, against the
// "client unserved" state: the client's revenue minus the change in the
// cost of the servers it would join. It is the read-only equivalent of
// the mutate-and-measure sequence Unassign → Assign → Revenue → cost
// delta → Unassign, and rejects exactly the candidates a real Assign (or
// a saturated RevenueErr) would reject, returning ok=false.
func (v *View) PlacementGain(k model.ClusterID, portions []Portion, scratch *GainScratch) (gain float64, ok bool) {
	a := v.a
	scen := a.scen
	if int(k) < 0 || int(k) >= scen.Cloud.NumClusters() {
		return 0, false
	}
	cl := &scen.Clients[v.client]
	var alphaSum, resp, costBefore, costAfter float64
	seen := scratch.seen[:0]
	defer func() { scratch.seen = seen }()
	for _, p := range portions {
		if p.Alpha == 0 {
			continue // Assign drops zero portions
		}
		if p.Alpha < 0 || p.Alpha > 1+_alphaTol {
			return 0, false
		}
		if int(p.Server) < 0 || int(p.Server) >= len(a.servers) {
			return 0, false
		}
		if scen.Cloud.Servers[p.Server].Cluster != k {
			return 0, false
		}
		for _, s := range seen {
			if s == p.Server {
				return 0, false // duplicate portions on one server
			}
		}
		seen = append(seen, p.Server)

		class := scen.Cloud.ServerClass(p.Server)
		rate := p.Alpha * cl.PredictedRate
		if p.ProcShare <= queueing.MinStableShare(class.ProcCap, cl.ProcTime, rate) {
			return 0, false
		}
		if p.CommShare <= queueing.MinStableShare(class.CommCap, cl.CommTime, rate) {
			return 0, false
		}
		if v.ProcShareUsed(p.Server)+p.ProcShare > 1+_shareTol {
			return 0, false
		}
		if v.CommShareUsed(p.Server)+p.CommShare > 1+_shareTol {
			return 0, false
		}
		if v.DiskUsed(p.Server)+cl.DiskNeed > class.StoreCap+_shareTol {
			return 0, false
		}
		alphaSum += p.Alpha

		// Revenue term: the portion's tandem delay. An unstable stage is
		// the ErrSaturated case — an infeasible, not merely worthless,
		// placement.
		d, err := queueing.TandemDelay(
			queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
			queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
			queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
			rate,
		)
		if err != nil {
			return 0, false
		}
		resp += p.Alpha * d

		// Cost terms: the server's cost without the client vs with the
		// candidate portion added.
		base := v.procLoad(p.Server)
		if v.Active(p.Server) {
			costBefore += class.FixedCost + class.UtilizationCost*base
		}
		costAfter += class.FixedCost + class.UtilizationCost*(base+queueing.LoadFraction(class.ProcCap, cl.ProcTime, rate))
	}
	if math.Abs(alphaSum-1) > _alphaTol {
		return 0, false
	}
	rev := cl.ArrivalRate * scen.Utility(v.client).Value(resp)
	return rev - (costAfter - costBefore), true
}

// CurrentGain evaluates PlacementGain for the excluded client's own
// current placement — the "gain of staying put" term of the reassignment
// decision. ok is false when the client is unassigned or its placement
// has become saturated under the current predicted rates.
func (v *View) CurrentGain(scratch *GainScratch) (float64, bool) {
	k := v.a.ClusterOf(v.client)
	if k == Unassigned {
		return 0, false
	}
	return v.PlacementGain(model.ClusterID(k), v.portions, scratch)
}

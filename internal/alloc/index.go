package alloc

import (
	"math"

	"repro/internal/model"
)

// Index is the per-cluster price/headroom summary the solver's candidate
// generation queries instead of scanning every cluster: for any client it
// yields a cheap, provably sound upper bound on the exact PlacementGain
// the cluster could offer, so clusters whose bound cannot beat the
// client's best known option are pruned before the expensive
// Assign_Distribute + View.PlacementGain evaluation ever runs.
//
// The index extends the allocation's incremental machinery rather than
// bypassing it: each cluster's aggregate row is stamped with the
// cluster's ledger version counter (ClusterVersion) and recomputed lazily
// on Refresh only when the counter moved — the same dirty-cluster
// contract the reassignment pass's skip marks rely on. Refresh costs
// O(servers of the touched clusters); an untouched cluster costs one
// integer compare.
//
// Concurrency: Refresh/RefreshClusters mutate the index and must not run
// while another goroutine mutates the allocation or reads the index.
// GainUpperBound and TopK are read-only and may be called from any number
// of goroutines concurrently, as long as the clusters they consult are
// not mutated (and therefore not stale) meanwhile — the same contract as
// alloc.View. In the sharded solve each shard keeps its own Index and
// refreshes only its own clusters, so shards never read each other's
// server state.
type Index struct {
	a       *Allocation
	statics []clusterStatic
	aggs    []clusterAgg
}

// clusterStatic caches the scenario-derived constants of one cluster.
type clusterStatic struct {
	maxProcCap float64 // largest ProcCap among the cluster's server classes
	maxCommCap float64 // largest CommCap among the cluster's server classes
	// minUtilCostPerProcCap is min over the cluster's classes of
	// UtilizationCost/ProcCap: the cheapest possible marginal energy cost
	// per unit of work routed to the cluster.
	minUtilCostPerProcCap float64
	// minFixedCost is the cheapest activation cost among the cluster's
	// classes — a floor on the cost of waking an all-idle cluster.
	minFixedCost float64
	// shareSlack absorbs the per-server _shareTol budgets when comparing
	// a client's aggregate share need against the cluster's free total.
	shareSlack float64
}

// clusterAgg caches the allocation-dependent headroom of one cluster,
// valid for version == ClusterVersion(k). Alongside the whole-cluster
// aggregates it keeps the same figures restricted to the currently
// active servers: the gain bound splits placements into "active servers
// only" (no activation cost, active-subset headroom) and "touches an
// inactive server" (whole-cluster headroom plus the cheapest inactive
// server's fixed cost) — without the split, idle capacity looks free and
// the bound ranks idle clusters far above what any placement achieves.
type clusterAgg struct {
	version uint64
	fresh   bool

	freeProc    float64 // Σ max(0, 1 − procShare) over servers
	freeComm    float64 // Σ max(0, 1 − commShare)
	maxFreeProc float64 // largest single-server free processing share
	maxFreeComm float64 // largest single-server free communication share
	maxFreeDisk float64 // largest single-server free disk capacity
	active      int     // servers currently hosting at least one client

	freeProcAct    float64 // Σ max(0, 1 − procShare) over active servers
	freeCommAct    float64
	maxFreeProcAct float64 // largest free processing share on an active server
	maxFreeCommAct float64
	maxFreeDiskAct float64 // largest free disk on an active server
	maxProcCapAct  float64 // largest ProcCap among active servers
	maxCommCapAct  float64
	minFixedInact  float64 // cheapest inactive server's FixedCost; +Inf when all active
}

// Candidate is one cluster surviving the index's feasibility screen,
// with its gain upper bound.
type Candidate struct {
	Cluster model.ClusterID
	Bound   float64
}

// NewIndex builds an index over the allocation. The static per-cluster
// data is computed once; call Refresh before the first query.
func NewIndex(a *Allocation) *Index {
	numK := a.scen.Cloud.NumClusters()
	ix := &Index{
		a:       a,
		statics: make([]clusterStatic, numK),
		aggs:    make([]clusterAgg, numK),
	}
	for k := 0; k < numK; k++ {
		st := &ix.statics[k]
		st.minUtilCostPerProcCap = math.Inf(1)
		st.minFixedCost = math.Inf(1)
		servers := a.scen.Cloud.ClusterServers(model.ClusterID(k))
		st.shareSlack = float64(len(servers)) * _shareTol
		for _, j := range servers {
			class := a.scen.Cloud.ServerClass(j)
			if class.ProcCap > st.maxProcCap {
				st.maxProcCap = class.ProcCap
			}
			if class.CommCap > st.maxCommCap {
				st.maxCommCap = class.CommCap
			}
			if c := class.UtilizationCost / class.ProcCap; c < st.minUtilCostPerProcCap {
				st.minUtilCostPerProcCap = c
			}
			if class.FixedCost < st.minFixedCost {
				st.minFixedCost = class.FixedCost
			}
		}
		if len(servers) == 0 {
			st.minUtilCostPerProcCap = 0
			st.minFixedCost = 0
		}
	}
	return ix
}

// Allocation returns the allocation the index summarizes.
func (ix *Index) Allocation() *Allocation { return ix.a }

// Refresh brings every cluster's aggregates up to date with the
// allocation, recomputing only clusters whose version counter moved.
func (ix *Index) Refresh() {
	for k := range ix.aggs {
		ix.refreshCluster(model.ClusterID(k))
	}
}

// RefreshClusters is Refresh restricted to a subset — the sharded solve
// uses it so a shard never reads another shard's server state.
func (ix *Index) RefreshClusters(ks []model.ClusterID) {
	for _, k := range ks {
		ix.refreshCluster(k)
	}
}

func (ix *Index) refreshCluster(k model.ClusterID) {
	agg := &ix.aggs[k]
	ver := ix.a.clusterVer[k]
	if agg.fresh && agg.version == ver {
		return
	}
	*agg = clusterAgg{version: ver, fresh: true}
	agg.maxFreeDisk = math.Inf(-1)
	agg.minFixedInact = math.Inf(1)
	for _, j := range ix.a.scen.Cloud.ClusterServers(k) {
		st := &ix.a.servers[j]
		class := ix.a.scen.Cloud.ServerClass(j)
		active := len(st.clients) > 0
		freeP := 1 - st.procShare
		if freeP < 0 {
			freeP = 0
		}
		freeB := 1 - st.commShare
		if freeB < 0 {
			freeB = 0
		}
		agg.freeProc += freeP
		agg.freeComm += freeB
		if freeP > agg.maxFreeProc {
			agg.maxFreeProc = freeP
		}
		if freeB > agg.maxFreeComm {
			agg.maxFreeComm = freeB
		}
		freeDisk := class.StoreCap - st.disk
		if freeDisk > agg.maxFreeDisk {
			agg.maxFreeDisk = freeDisk
		}
		if active {
			agg.active++
			agg.freeProcAct += freeP
			agg.freeCommAct += freeB
			if freeP > agg.maxFreeProcAct {
				agg.maxFreeProcAct = freeP
			}
			if freeB > agg.maxFreeCommAct {
				agg.maxFreeCommAct = freeB
			}
			if freeDisk > agg.maxFreeDiskAct {
				agg.maxFreeDiskAct = freeDisk
			}
			if class.ProcCap > agg.maxProcCapAct {
				agg.maxProcCapAct = class.ProcCap
			}
			if class.CommCap > agg.maxCommCapAct {
				agg.maxCommCapAct = class.CommCap
			}
		} else if class.FixedCost < agg.minFixedInact {
			agg.minFixedInact = class.FixedCost
		}
	}
	if math.IsInf(agg.maxFreeDisk, -1) {
		agg.maxFreeDisk = 0
	}
}

// GainUpperBound returns an upper bound on View.PlacementGain for placing
// client i on cluster k, or ok=false when the index can prove no feasible
// placement exists. The bound is sound for any client that currently
// holds no resources in cluster k (an unassigned client, or any cluster
// other than the client's own — the caller must evaluate the client's own
// cluster exactly, since the exclusion view frees the client's shares
// there and the raw aggregates underestimate that headroom).
//
// Derivation: every portion's tandem delay is at least
// tp/(φp·Cp) + tb/(φb·Cb) ≥ tp/(φmax·Cpmax) + tb/(φmax·Cbmax), and the
// utility is non-increasing, so revenue ≤ λ·U(R_lb). Every portion adds
// at least UtilizationCost/ProcCap · α·λ̃·tp of energy cost (Σα = 1). The
// activation cost splits the bound in two: a placement that stays on the
// currently active servers pays none but is limited to their headroom
// and capacities, while a placement touching any inactive server pays at
// least the cheapest inactive FixedCost. The bound is the better of the
// two branches — each also dominates the greedy Assign_Distribute
// estimate of such a placement (the DP's per-portion delay and cost
// terms obey the same inequalities), so estimate-threshold pruning in
// the greedy phase is sound too.
func (ix *Index) GainUpperBound(i model.ClientID, k model.ClusterID) (bound float64, ok bool) {
	cl := &ix.a.scen.Clients[i]
	return ix.GainUpperBoundAt(i, k, cl.ArrivalRate, cl.PredictedRate, PendingLoad{})
}

// PendingLoad is uncommitted load the online service has admitted to a
// cluster but not yet written into the allocation: share-equivalents
// (Σ λ̃·t / maxCap over pending clients) subtracted from the cluster's
// free totals before the bound is computed. Negative values (net
// departures) add headroom back. Only the aggregate free totals are
// shaded — the per-server maxima cannot be attributed without knowing
// which servers the pending clients would land on, so the bound stays an
// upper bound (shading only ever tightens the feasibility screens).
type PendingLoad struct {
	Proc float64 // pending processing share-equivalents (λ̃·tp/maxProcCap units)
	Comm float64 // pending communication share-equivalents
}

// GainUpperBoundAt is GainUpperBound with the client's rates supplied by
// the caller instead of read from the scenario, and with uncommitted
// pending load shading the cluster's free totals. The online service's
// lock-free decision path uses it so it never reads the mutable
// ArrivalRate/PredictedRate fields the commit path rewrites — only the
// client's immutable ProcTime/CommTime/DiskNeed and the frozen snapshot's
// aggregates.
func (ix *Index) GainUpperBoundAt(i model.ClientID, k model.ClusterID,
	arrivalRate, predictedRate float64, pend PendingLoad) (bound float64, ok bool) {
	st := &ix.statics[k]
	agg := &ix.aggs[k]
	cl := &ix.a.scen.Clients[i]

	freeProc := agg.freeProc - pend.Proc
	freeComm := agg.freeComm - pend.Comm
	freeProcAct := agg.freeProcAct - pend.Proc
	freeCommAct := agg.freeCommAct - pend.Comm

	// Feasibility screens: each mirrors a constraint Assign/PlacementGain
	// enforces exactly, relaxed to cluster aggregates so a violation here
	// is a proof, not a heuristic.
	if agg.maxFreeDisk+_shareTol < cl.DiskNeed {
		return 0, false // no server has the disk (constraints 5, 8)
	}
	needProc := predictedRate * cl.ProcTime / st.maxProcCap
	if freeProc+st.shareSlack <= needProc {
		return 0, false // total free share cannot sustain the load (4, 7)
	}
	needComm := predictedRate * cl.CommTime / st.maxCommCap
	if freeComm+st.shareSlack <= needComm {
		return 0, false
	}

	utilFloor := st.minUtilCostPerProcCap * predictedRate * cl.ProcTime
	u := ix.a.scen.Utility(i)
	bound = math.Inf(-1)

	// Branch 1: the placement uses active servers only — no activation
	// cost, but headroom and capacities restricted to the active subset.
	// The φ terms are the emptiest eligible server's free budget plus the
	// per-server tolerance, deliberately not clamped to 1: checkPortions
	// admits shares up to 1+_shareTol, and shaving that sliver could push
	// the "upper" bound below an achievable gain.
	if agg.active > 0 &&
		agg.maxFreeDiskAct+_shareTol >= cl.DiskNeed &&
		freeProcAct+st.shareSlack > predictedRate*cl.ProcTime/agg.maxProcCapAct &&
		freeCommAct+st.shareSlack > predictedRate*cl.CommTime/agg.maxCommCapAct {
		phiP := agg.maxFreeProcAct + _shareTol
		phiB := agg.maxFreeCommAct + _shareTol
		rLB := cl.ProcTime/(phiP*agg.maxProcCapAct) + cl.CommTime/(phiB*agg.maxCommCapAct)
		bound = arrivalRate*u.Value(rLB) - utilFloor
		ok = true
	}

	// Branch 2: the placement touches at least one inactive server —
	// whole-cluster headroom, plus the cheapest activation cost.
	if !math.IsInf(agg.minFixedInact, 1) {
		phiP := agg.maxFreeProc + _shareTol
		phiB := agg.maxFreeComm + _shareTol
		rLB := cl.ProcTime/(phiP*st.maxProcCap) + cl.CommTime/(phiB*st.maxCommCap)
		if b := arrivalRate*u.Value(rLB) - utilFloor - agg.minFixedInact; !ok || b > bound {
			bound = b
		}
		ok = true
	}
	if !ok {
		return 0, false
	}
	return bound, true
}

// TopK returns up to k candidate clusters for client i ordered by (bound
// descending, cluster ID ascending) — a deterministic order, so callers
// that evaluate candidates in sequence get the same result at any worker
// count. subset restricts the scan (nil means every cluster; the sharded
// solve passes its own clusters). Clusters the index proves infeasible
// are omitted. The result reuses out's backing array.
func (ix *Index) TopK(i model.ClientID, k int, subset []model.ClusterID, out []Candidate) []Candidate {
	out = out[:0]
	if k <= 0 {
		return out
	}
	consider := func(kid model.ClusterID) {
		b, ok := ix.GainUpperBound(i, kid)
		if !ok {
			return
		}
		c := Candidate{Cluster: kid, Bound: b}
		if len(out) == k {
			last := &out[len(out)-1]
			if b < last.Bound || (b == last.Bound && kid > last.Cluster) {
				return
			}
			out = out[:len(out)-1]
		}
		// Insertion sort: k is small and the slice is already ordered.
		pos := len(out)
		for pos > 0 {
			p := &out[pos-1]
			if c.Bound < p.Bound || (c.Bound == p.Bound && c.Cluster > p.Cluster) {
				break
			}
			pos--
		}
		out = append(out, Candidate{})
		copy(out[pos+1:], out[pos:])
		out[pos] = c
	}
	if subset != nil {
		for _, kid := range subset {
			consider(kid)
		}
	} else {
		for kid := 0; kid < len(ix.aggs); kid++ {
			consider(model.ClusterID(kid))
		}
	}
	return out
}

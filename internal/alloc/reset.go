package alloc

// Reset returns the allocation to the empty state — every client
// unassigned, every server back to its pre-allocated shares, the profit
// ledger zeroed — while keeping the allocated arenas (slices, per-server
// client maps, ledger dirty lists) for reuse. Fan-out workers recycle
// one allocation across greedy starts and Monte-Carlo draws this way
// instead of paying a fresh New per task.
//
// Every cluster's version counter is bumped: a reset is a mutation, so
// version-based caches (the reassignment pass's cross-pass skip marks)
// must observe that nothing they priced survives. Versions only grow
// here and in Assign/Unassign, and a transaction's rollback can only
// restore counters captured after any earlier reset, so a stale-mark
// check can never see a pre-reset value again.
func (a *Allocation) Reset() {
	for i := range a.clusterOf {
		a.clusterOf[i] = Unassigned
		a.portions[i] = nil
		a.clientRev[i] = 0
		a.clientServed[i] = false
		a.clientSat[i] = false
		a.clientDirty[i] = false
	}
	for j := range a.servers {
		srv := &a.scen.Cloud.Servers[j]
		st := &a.servers[j]
		st.procShare = srv.PreProcShare
		st.commShare = srv.PreCommShare
		st.disk = srv.PreDisk
		st.procLoad = 0
		clear(st.clients)
		a.serverCost[j] = 0
		a.serverOn[j] = false
		a.serverDirty[j] = false
	}
	for k := range a.ledgers {
		led := &a.ledgers[k]
		led.rev = kahanSum{}
		led.cost = kahanSum{}
		led.served = 0
		led.saturated = 0
		led.active = 0
		led.assigned = 0
		led.dirtyClients = led.dirtyClients[:0]
		led.dirtyServers = led.dirtyServers[:0]
		a.clusterVer[k]++
	}
}

// Package sim is a discrete-event simulator for an allocation: Poisson
// request arrivals per client, α-weighted dispatch across the client's
// portions, and tandem processing→communication M/M/1 queues whose
// service rates are the GPS shares of the allocation. It measures the
// realized mean response times, server utilizations and profit, and is
// used to validate the paper's analytical queueing model (eq. (1)).
package sim

import "container/heap"

// eventKind discriminates simulator events.
type eventKind int

const (
	evArrival eventKind = iota + 1 // a client emits a request
	evProcDone
	evCommDone
)

// event is one scheduled simulator occurrence.
type event struct {
	at   float64
	kind eventKind
	// client is the emitting client for evArrival.
	client int
	// queue indexes the portion queue for completions.
	queue int
	// req is the request being completed.
	req *request
}

// request tracks one job through its tandem queues.
type request struct {
	client    int
	arrivedAt float64
	// procDoneAt is when processing finished (start of the communication
	// stage wait); used by telemetry to measure comm queueing delay.
	procDoneAt float64
}

// eventHeap is a min-heap on event time.
type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*eventHeap)(nil)

// fifoQueue is an exponential-service FCFS queue (M/M/1 sojourn times
// match the GPS analytical model for Poisson arrivals).
type fifoQueue struct {
	rate     float64 // service rate μ = φ·C/t
	busy     bool
	waiting  []*request
	busySum  float64 // accumulated busy time
	lastBusy float64 // when the current service started
}

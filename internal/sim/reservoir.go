package sim

import (
	"math/rand"
	"sort"
)

// _reservoirSize bounds the per-client response-time sample used for
// percentile estimates.
const _reservoirSize = 2048

// reservoir is a classic uniform reservoir sample.
type reservoir struct {
	cap     int
	seen    int
	samples []float64
}

func newReservoir(capacity int) *reservoir {
	return &reservoir{cap: capacity}
}

// add offers a value; each of the seen values ends up in the sample with
// equal probability.
func (r *reservoir) add(rng *rand.Rand, v float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	if idx := rng.Intn(r.seen); idx < r.cap {
		r.samples[idx] = v
	}
}

// percentile estimates the q-quantile from the sample (0 when empty).
func (r *reservoir) percentile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.samples...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/workload"
)

// singleQueueScenario: one cluster, one server, one client with a known
// M/M/1 configuration.
func singleQueueScenario(t *testing.T) *model.Scenario {
	t.Helper()
	s := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses:  []model.ServerClass{{ID: 0, ProcCap: 4, StoreCap: 4, CommCap: 4, FixedCost: 2, UtilizationCost: 1}},
			UtilityClasses: []model.UtilityClass{{ID: 0, Base: 6, Slope: 0.5}},
			Clusters:       []model.Cluster{{ID: 0, Servers: []model.ServerID{0}}},
			Servers:        []model.Server{{ID: 0, Class: 0, Cluster: 0}},
		},
		Clients: []model.Client{{
			ID: 0, Class: 0, ArrivalRate: 1, PredictedRate: 1,
			ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1,
		}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimulateMatchesMM1Theory(t *testing.T) {
	scen := singleQueueScenario(t)
	a := alloc.New(scen)
	// Shares 0.5 → μ = 4 per stage, λ = 1 → per-stage W = 1/3, R̄ = 2/3.
	if err := a.Assign(0, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Horizon: 200000, Warmup: 5000, Seed: 1}
	res, err := Simulate(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Clients[0]
	if cs.Completed < 100000 {
		t.Fatalf("only %d completions", cs.Completed)
	}
	want := 2.0 / 3
	if math.Abs(cs.MeanResponse-want) > 0.02 {
		t.Fatalf("measured R̄ = %v, want ≈ %v", cs.MeanResponse, want)
	}
	if math.Abs(cs.AnalyticMean-want) > 1e-9 {
		t.Fatalf("analytic R̄ = %v, want %v", cs.AnalyticMean, want)
	}
	// Measured utilization ≈ analytic λ·t/C = 0.125.
	if math.Abs(res.Servers[0].Busy-res.Servers[0].Analytic) > 0.01 {
		t.Fatalf("utilization: measured %v vs analytic %v", res.Servers[0].Busy, res.Servers[0].Analytic)
	}
	// Simulated profit should approximate the analytic profit closely.
	if math.Abs(res.Profit-res.AnalyticValue) > 0.1*math.Abs(res.AnalyticValue) {
		t.Fatalf("profit: simulated %v vs analytic %v", res.Profit, res.AnalyticValue)
	}
}

func TestSimulateSplitStreams(t *testing.T) {
	scen := singleQueueScenario(t)
	// Add a second server so the client can split 50/50.
	scen.Cloud.Servers = append(scen.Cloud.Servers, model.Server{ID: 1, Class: 0, Cluster: 0})
	scen.Cloud.Clusters[0].Servers = append(scen.Cloud.Clusters[0].Servers, 1)
	if err := scen.Validate(); err != nil {
		t.Fatal(err)
	}
	a := alloc.New(scen)
	portions := []alloc.Portion{
		{Server: 0, Alpha: 0.5, ProcShare: 0.25, CommShare: 0.25},
		{Server: 1, Alpha: 0.5, ProcShare: 0.25, CommShare: 0.25},
	}
	if err := a.Assign(0, 0, portions); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(a, Config{Horizon: 200000, Warmup: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each portion: μ = 2, λ = 0.5 → W = 2/3 per stage → R̄ = 4/3.
	want := 4.0 / 3
	got := res.Clients[0].MeanResponse
	if math.Abs(got-want) > 0.04 {
		t.Fatalf("split-stream R̄ = %v, want ≈ %v", got, want)
	}
	if math.Abs(res.Clients[0].AnalyticMean-want) > 1e-9 {
		t.Fatalf("analytic = %v", res.Clients[0].AnalyticMean)
	}
}

func TestSimulateConfigValidation(t *testing.T) {
	scen := singleQueueScenario(t)
	a := alloc.New(scen)
	if _, err := Simulate(a, Config{Horizon: 0, Warmup: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Simulate(a, Config{Horizon: 10, Warmup: 10}); err == nil {
		t.Fatal("warmup >= horizon accepted")
	}
	if _, err := Simulate(a, Config{Horizon: 10, Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestSimulateEmptyAllocation(t *testing.T) {
	scen := singleQueueScenario(t)
	a := alloc.New(scen)
	res, err := Simulate(a, Config{Horizon: 100, Warmup: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Profit != 0 {
		t.Fatalf("empty allocation produced work: %+v", res)
	}
}

func TestSimulateAgreedVsPredictedRate(t *testing.T) {
	scen := singleQueueScenario(t)
	scen.Clients[0].PredictedRate = 0.5 // allocator believes half the load
	a := alloc.New(scen)
	if err := a.Assign(0, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}); err != nil {
		t.Fatal(err)
	}
	pred, err := Simulate(a, Config{Horizon: 50000, Warmup: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	agreed, err := Simulate(a, Config{Horizon: 50000, Warmup: 1000, Seed: 3, UseAgreedRate: true})
	if err != nil {
		t.Fatal(err)
	}
	if agreed.Completed <= pred.Completed {
		t.Fatalf("agreed-rate run should complete more requests: %d vs %d", agreed.Completed, pred.Completed)
	}
	if agreed.Clients[0].MeanResponse <= pred.Clients[0].MeanResponse {
		t.Fatalf("heavier load should increase response time: %v vs %v",
			agreed.Clients[0].MeanResponse, pred.Clients[0].MeanResponse)
	}
}

// TestSimulateValidatesSolvedAllocation: the end-to-end validation bench
// in miniature — solve a paper-shaped scenario and check the analytical
// response times against measurement.
func TestSimulateValidatesSolvedAllocation(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 20
	wcfg.Seed = 11
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(a, Config{Horizon: 30000, Warmup: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for i, cs := range res.Clients {
		if cs.Completed < 2000 {
			continue
		}
		checked++
		if cs.AnalyticMean <= 0 {
			t.Fatalf("client %d: analytic mean %v", i, cs.AnalyticMean)
		}
		relErr := math.Abs(cs.MeanResponse-cs.AnalyticMean) / cs.AnalyticMean
		if relErr > 0.25 {
			t.Errorf("client %d: measured %v vs analytic %v (rel err %.2f)",
				i, cs.MeanResponse, cs.AnalyticMean, relErr)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d clients had enough completions", checked)
	}
}

func TestSimulateP95MatchesAnalyticTail(t *testing.T) {
	scen := singleQueueScenario(t)
	a := alloc.New(scen)
	if err := a.Assign(0, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(a, Config{Horizon: 200000, Warmup: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Clients[0].P95
	want, err := queueing.TandemSojournPercentile(
		queueing.PortionShares{Proc: 0.5, Comm: 0.5},
		queueing.ServerCaps{Proc: 4, Comm: 4},
		queueing.ExecTimes{Proc: 0.5, Comm: 0.5},
		1, 0.95,
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("measured P95 %v vs analytic %v", got, want)
	}
	if got <= res.Clients[0].MeanResponse {
		t.Fatal("P95 must exceed the mean")
	}
}

func TestReservoirPercentile(t *testing.T) {
	r := newReservoir(8)
	rng := rand.New(rand.NewSource(1))
	for _, v := range []float64{5, 1, 3, 2, 4} {
		r.add(rng, v)
	}
	if got := r.percentile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := r.percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := r.percentile(1); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	empty := newReservoir(4)
	if got := empty.percentile(0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Overflow keeps the sample bounded.
	big := newReservoir(16)
	for i := 0; i < 10000; i++ {
		big.add(rng, float64(i))
	}
	if len(big.samples) != 16 {
		t.Fatalf("reservoir grew to %d", len(big.samples))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	scen := singleQueueScenario(t)
	a := alloc.New(scen)
	if err := a.Assign(0, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Horizon: 2000, Warmup: 100, Seed: 7}
	r1, err := Simulate(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed != r2.Completed || r1.Clients[0].MeanResponse != r2.Clients[0].MeanResponse {
		t.Fatalf("same seed diverged: %v vs %v", r1.Clients[0], r2.Clients[0])
	}
	cfg.Seed = 8
	r3, err := Simulate(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Completed == r1.Completed && r3.Clients[0].MeanResponse == r1.Clients[0].MeanResponse {
		t.Fatal("different seeds produced identical runs")
	}
}

package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/dispatch"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/telemetry"
)

// simTel holds the simulator's pre-resolved metric handles; nil
// disables instrumentation. All values are in simulated time units.
type simTel struct {
	procDelay  *telemetry.Histogram
	commDelay  *telemetry.Histogram
	response   *telemetry.Histogram
	slaViols   *telemetry.Counter
	completed  *telemetry.Counter
	dispatched *telemetry.Counter
	breakEven  []float64 // per client: response beyond which utility < 0
}

func newSimTel(set *telemetry.Set, scen *model.Scenario) *simTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("sim_queue_delay", "request queueing delay per tandem stage, simulated time units")
	set.Metrics.Help("sim_sla_violations_total", "completed requests whose response time exceeded the client's break-even SLA response")
	t := &simTel{
		procDelay:  set.Histogram(telemetry.Name("sim_queue_delay", "stage", "proc"), telemetry.DurationBuckets),
		commDelay:  set.Histogram(telemetry.Name("sim_queue_delay", "stage", "comm"), telemetry.DurationBuckets),
		response:   set.Histogram("sim_response", telemetry.DurationBuckets),
		slaViols:   set.Counter("sim_sla_violations_total"),
		completed:  set.Counter("sim_requests_completed_total"),
		dispatched: set.Counter("sim_requests_dispatched_total"),
		breakEven:  make([]float64, scen.NumClients()),
	}
	for i := range scen.Clients {
		t.breakEven[i] = scen.Utility(model.ClientID(i)).BreakEvenResponse()
	}
	return t
}

// Config controls a simulation run.
type Config struct {
	// Horizon is the simulated time span.
	Horizon float64
	// Warmup discards measurements before this time (must be < Horizon).
	Warmup float64
	// Seed drives arrivals, dispatch and service draws.
	Seed int64
	// UseAgreedRate simulates the agreed contract arrival rates instead of
	// the predicted rates the allocator provisioned for.
	UseAgreedRate bool
	// Telemetry, when non-nil, records queueing delays, response times,
	// SLA violations and dispatch counts during the run.
	Telemetry *telemetry.Set
}

// DefaultConfig simulates 5000 time units with a 10% warmup.
func DefaultConfig() Config {
	return Config{Horizon: 5000, Warmup: 500, Seed: 1}
}

// ClientStats reports one client's measured behaviour.
type ClientStats struct {
	Completed    int
	MeanResponse float64
	AnalyticMean float64 // model prediction R̄ for comparison
	Revenue      float64 // λ_agreed · U(measured mean response)
	// P95 is the measured 95th-percentile response time (from a bounded
	// reservoir sample; 0 when too few completions).
	P95 float64
}

// ServerStats reports one server's measured processing utilization.
type ServerStats struct {
	Busy     float64 // fraction of horizon the processing stage was busy
	Analytic float64 // Σ α·λ̃·t/C from the allocation
}

// Result is the outcome of a simulation run.
type Result struct {
	Clients       []ClientStats
	Servers       []ServerStats
	Profit        float64 // revenue at measured response times − energy cost
	AnalyticValue float64 // the allocation's analytical profit
	Completed     int
}

// portionQueues is the tandem queue pair serving one (client, server)
// portion.
type portionQueues struct {
	proc fifoQueue
	comm fifoQueue
	srv  model.ServerID
	// procShare converts the queue's busy time (fraction of its GPS
	// share) into server utilization.
	procShare float64
}

// Simulate runs the discrete-event simulation of allocation a.
func Simulate(a *alloc.Allocation, cfg Config) (*Result, error) {
	if cfg.Horizon <= 0 || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("sim: invalid horizon/warmup %v/%v", cfg.Horizon, cfg.Warmup)
	}
	scen := a.Scenario()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tel := newSimTel(cfg.Telemetry, scen)

	// Build one tandem queue pair per portion, and per-client dispatchers.
	var (
		queues      []*portionQueues
		dispatchers = make([]*dispatch.Dispatcher, scen.NumClients())
		queueIndex  = make(map[[2]int]int) // (client, portionIdx) → queue
		rates       = make([]float64, scen.NumClients())
	)
	for i := range scen.Clients {
		id := model.ClientID(i)
		if !a.Assigned(id) {
			continue
		}
		cl := &scen.Clients[i]
		rates[i] = cl.PredictedRate
		if cfg.UseAgreedRate {
			rates[i] = cl.ArrivalRate
		}
		ps := a.Portions(id)
		d, err := dispatch.New(ps)
		if err != nil {
			return nil, fmt.Errorf("sim: client %d: %w", i, err)
		}
		dispatchers[i] = d
		if tel != nil {
			d.Instrument(tel.dispatched)
		}
		for pi, p := range ps {
			class := scen.Cloud.ServerClass(p.Server)
			queueIndex[[2]int{i, pi}] = len(queues)
			queues = append(queues, &portionQueues{
				proc:      fifoQueue{rate: queueing.GPSServiceRate(p.ProcShare, class.ProcCap, cl.ProcTime)},
				comm:      fifoQueue{rate: queueing.GPSServiceRate(p.CommShare, class.CommCap, cl.CommTime)},
				srv:       p.Server,
				procShare: p.ProcShare,
			})
		}
	}

	// Measurement accumulators; percentiles come from per-client
	// reservoir samples so memory stays bounded on long horizons.
	respSum := make([]float64, scen.NumClients())
	respCnt := make([]int, scen.NumClients())
	reservoirs := make([]*reservoir, scen.NumClients())
	for i := range reservoirs {
		reservoirs[i] = newReservoir(_reservoirSize)
	}

	var h eventHeap
	heap.Init(&h)
	for i := range scen.Clients {
		if dispatchers[i] == nil {
			continue
		}
		heap.Push(&h, event{at: rng.ExpFloat64() / rates[i], kind: evArrival, client: i})
	}

	expDraw := func(rate float64) float64 { return rng.ExpFloat64() / rate }

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if e.at > cfg.Horizon {
			break
		}
		switch e.kind {
		case evArrival:
			i := e.client
			// Next arrival for this client.
			heap.Push(&h, event{at: e.at + expDraw(rates[i]), kind: evArrival, client: i})
			pi := dispatchers[i].Route(rng)
			q := queues[queueIndex[[2]int{i, pi}]]
			req := &request{client: i, arrivedAt: e.at}
			if startService(&q.proc, e.at) {
				if tel != nil && e.at >= cfg.Warmup {
					tel.procDelay.Observe(0)
				}
				heap.Push(&h, event{at: e.at + expDraw(q.proc.rate), kind: evProcDone,
					queue: queueIndex[[2]int{i, pi}], req: req})
			} else {
				q.proc.waiting = append(q.proc.waiting, req)
			}
		case evProcDone:
			q := queues[e.queue]
			if next := finishService(&q.proc, e.at); next != nil {
				if tel != nil && next.arrivedAt >= cfg.Warmup {
					tel.procDelay.Observe(e.at - next.arrivedAt)
				}
				heap.Push(&h, event{at: e.at + expDraw(q.proc.rate), kind: evProcDone, queue: e.queue, req: next})
			}
			e.req.procDoneAt = e.at
			if startService(&q.comm, e.at) {
				if tel != nil && e.req.arrivedAt >= cfg.Warmup {
					tel.commDelay.Observe(0)
				}
				heap.Push(&h, event{at: e.at + expDraw(q.comm.rate), kind: evCommDone, queue: e.queue, req: e.req})
			} else {
				q.comm.waiting = append(q.comm.waiting, e.req)
			}
		case evCommDone:
			q := queues[e.queue]
			if next := finishService(&q.comm, e.at); next != nil {
				if tel != nil && next.arrivedAt >= cfg.Warmup {
					tel.commDelay.Observe(e.at - next.procDoneAt)
				}
				heap.Push(&h, event{at: e.at + expDraw(q.comm.rate), kind: evCommDone, queue: e.queue, req: next})
			}
			if e.req.arrivedAt >= cfg.Warmup {
				resp := e.at - e.req.arrivedAt
				respSum[e.req.client] += resp
				respCnt[e.req.client]++
				reservoirs[e.req.client].add(rng, resp)
				if tel != nil {
					tel.response.Observe(resp)
					tel.completed.Inc()
					if resp > tel.breakEven[e.req.client] {
						tel.slaViols.Inc()
					}
				}
			}
		}
	}

	return summarize(a, cfg, queues, respSum, respCnt, reservoirs)
}

// startService reports whether the queue was idle (service starts now);
// busy-time accounting begins.
func startService(q *fifoQueue, now float64) bool {
	if q.busy {
		return false
	}
	q.busy = true
	q.lastBusy = now
	return true
}

// finishService completes the in-service request at time now and returns
// the next waiting request, if any (its service starts immediately).
func finishService(q *fifoQueue, now float64) *request {
	q.busySum += now - q.lastBusy
	q.busy = false
	if len(q.waiting) == 0 {
		return nil
	}
	next := q.waiting[0]
	q.waiting = q.waiting[1:]
	q.busy = true
	q.lastBusy = now
	return next
}

// summarize folds the raw accumulators into a Result.
func summarize(a *alloc.Allocation, cfg Config, queues []*portionQueues,
	respSum []float64, respCnt []int, reservoirs []*reservoir) (*Result, error) {
	scen := a.Scenario()
	res := &Result{
		Clients:       make([]ClientStats, scen.NumClients()),
		Servers:       make([]ServerStats, scen.Cloud.NumServers()),
		AnalyticValue: a.Profit(),
	}
	window := cfg.Horizon - cfg.Warmup
	if window <= 0 {
		return nil, errors.New("sim: empty measurement window")
	}
	var revenue float64
	for i := range scen.Clients {
		id := model.ClientID(i)
		cs := ClientStats{Completed: respCnt[i]}
		if a.Assigned(id) {
			if r, err := a.ResponseTime(id); err == nil {
				cs.AnalyticMean = r
			}
		}
		if respCnt[i] > 0 {
			cs.MeanResponse = respSum[i] / float64(respCnt[i])
			cs.Revenue = scen.Clients[i].ArrivalRate * scen.Utility(id).Value(cs.MeanResponse)
			cs.P95 = reservoirs[i].percentile(0.95)
		}
		revenue += cs.Revenue
		res.Completed += respCnt[i]
		res.Clients[i] = cs
	}
	busyByServer := make([]float64, scen.Cloud.NumServers())
	for _, q := range queues {
		// Close out a service still in flight at the horizon, then weight
		// the queue's busy time by its GPS share to get server
		// utilization.
		busy := q.proc.busySum
		if q.proc.busy {
			busy += cfg.Horizon - q.proc.lastBusy
		}
		busyByServer[q.srv] += busy * q.procShare
	}
	var cost float64
	for j := range res.Servers {
		id := model.ServerID(j)
		res.Servers[j] = ServerStats{
			Busy:     busyByServer[j] / cfg.Horizon,
			Analytic: a.ProcUtilization(id),
		}
		cost += a.ServerCost(id)
	}
	res.Profit = revenue - cost
	return res, nil
}

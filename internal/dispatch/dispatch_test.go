package dispatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/model"
)

func TestNewRejectsBadPortions(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty portions accepted")
	}
	if _, err := New([]alloc.Portion{{Server: 0, Alpha: 0.4}}); err == nil {
		t.Fatal("α sum 0.4 accepted")
	}
	if _, err := New([]alloc.Portion{{Server: 0, Alpha: -0.5}, {Server: 1, Alpha: 1.5}}); err == nil {
		t.Fatal("negative α accepted")
	}
}

func TestRouteFrequenciesMatchAlphas(t *testing.T) {
	d, err := New([]alloc.Portion{
		{Server: 3, Alpha: 0.5},
		{Server: 7, Alpha: 0.3},
		{Server: 9, Alpha: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	for i := 0; i < n; i++ {
		idx := d.Route(rng)
		if idx < 0 || idx > 2 {
			t.Fatalf("route returned %d", idx)
		}
	}
	if d.Total() != n {
		t.Fatalf("total = %d", d.Total())
	}
	wants := []float64{0.5, 0.3, 0.2}
	for i, want := range wants {
		if got := d.Fraction(i); math.Abs(got-want) > 0.01 {
			t.Fatalf("portion %d frequency %v, want ≈%v", i, got, want)
		}
	}
	if d.Server(1) != model.ServerID(7) {
		t.Fatalf("Server(1) = %v", d.Server(1))
	}
}

func TestRouteSinglePortion(t *testing.T) {
	d, err := New([]alloc.Portion{{Server: 2, Alpha: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if d.Route(rng) != 0 {
			t.Fatal("single portion must always be chosen")
		}
	}
	if d.Fraction(0) != 1 {
		t.Fatalf("fraction = %v", d.Fraction(0))
	}
}

func TestFractionBeforeRouting(t *testing.T) {
	d, err := New([]alloc.Portion{{Server: 0, Alpha: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Fraction(0) != 0 {
		t.Fatal("fraction before routing should be 0")
	}
}

package dispatch

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/parallel"
)

func TestNewRejectsBadPortions(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty portions accepted")
	}
	if _, err := New([]alloc.Portion{{Server: 0, Alpha: 0.4}}); err == nil {
		t.Fatal("α sum 0.4 accepted")
	}
	if _, err := New([]alloc.Portion{{Server: 0, Alpha: -0.5}, {Server: 1, Alpha: 1.5}}); err == nil {
		t.Fatal("negative α accepted")
	}
}

func TestRouteFrequenciesMatchAlphas(t *testing.T) {
	d, err := New([]alloc.Portion{
		{Server: 3, Alpha: 0.5},
		{Server: 7, Alpha: 0.3},
		{Server: 9, Alpha: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	for i := 0; i < n; i++ {
		idx := d.Route(rng)
		if idx < 0 || idx > 2 {
			t.Fatalf("route returned %d", idx)
		}
	}
	if d.Total() != n {
		t.Fatalf("total = %d", d.Total())
	}
	wants := []float64{0.5, 0.3, 0.2}
	for i, want := range wants {
		if got := d.Fraction(i); math.Abs(got-want) > 0.01 {
			t.Fatalf("portion %d frequency %v, want ≈%v", i, got, want)
		}
	}
	if d.Server(1) != model.ServerID(7) {
		t.Fatalf("Server(1) = %v", d.Server(1))
	}
}

func TestRouteSinglePortion(t *testing.T) {
	d, err := New([]alloc.Portion{{Server: 2, Alpha: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if d.Route(rng) != 0 {
			t.Fatal("single portion must always be chosen")
		}
	}
	if d.Fraction(0) != 1 {
		t.Fatalf("fraction = %v", d.Fraction(0))
	}
}

func TestFractionBeforeRouting(t *testing.T) {
	d, err := New([]alloc.Portion{{Server: 0, Alpha: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Fraction(0) != 0 {
		t.Fatal("fraction before routing should be 0")
	}
}

// TestRouteConcurrent hammers one dispatcher from many goroutines, each
// holding its own seed-split RNG (the documented concurrency contract).
// Run under -race this pins that counts/total are atomic; the frequency
// check pins that concurrent increments are not lost.
func TestRouteConcurrent(t *testing.T) {
	d, err := New([]alloc.Portion{
		{Server: 0, Alpha: 0.6},
		{Server: 1, Alpha: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(parallel.SplitSeed(42, uint64(w))))
			for i := 0; i < perWorker; i++ {
				d.Route(rng)
			}
		}(w)
	}
	wg.Wait()
	if got := d.Total(); got != workers*perWorker {
		t.Fatalf("lost updates: total = %d, want %d", got, workers*perWorker)
	}
	if got := d.Fraction(0); math.Abs(got-0.6) > 0.02 {
		t.Fatalf("portion 0 frequency %v, want ≈0.6", got)
	}
}

// TestRouteAllocFree pins the hot path allocation-free: the simulator
// calls Route once per simulated request.
func TestRouteAllocFree(t *testing.T) {
	d, err := New([]alloc.Portion{
		{Server: 0, Alpha: 0.5},
		{Server: 1, Alpha: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if n := testing.AllocsPerRun(1000, func() { d.Route(rng) }); n != 0 {
		t.Fatalf("Route allocates %v times per call, want 0", n)
	}
}

func BenchmarkRoute(b *testing.B) {
	d, err := New([]alloc.Portion{
		{Server: 0, Alpha: 0.3},
		{Server: 1, Alpha: 0.3},
		{Server: 2, Alpha: 0.4},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Route(rng)
	}
}

func BenchmarkRouteParallel(b *testing.B) {
	d, err := New([]alloc.Portion{
		{Server: 0, Alpha: 0.3},
		{Server: 1, Alpha: 0.3},
		{Server: 2, Alpha: 0.4},
	})
	if err != nil {
		b.Fatal(err)
	}
	var worker atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(parallel.SplitSeed(1, worker.Add(1))))
		for pb.Next() {
			d.Route(rng)
		}
	})
}

// Package dispatch implements the cluster request dispatcher of the paper
// (Figure 2): it routes each incoming request of a client to one of the
// client's portions with probability equal to the dispersion rate α_ij.
// By the Poisson splitting property the per-portion streams remain
// Poisson, which is what makes the analytical M/M/1 model exact.
package dispatch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Dispatcher routes requests of a single client across its portions.
//
// Route is safe for concurrent use as long as each calling goroutine
// holds its own *rand.Rand (split one per worker with
// parallel.SplitSeed): the routing table is immutable after New and the
// empirical counters are atomic. The telemetry counter is atomic too, so
// Instrument may race with routing only in the sense that a concurrent
// Route may or may not see the new counter.
type Dispatcher struct {
	servers []model.ServerID
	cum     []float64 // cumulative α; immutable after New
	counts  []atomic.Int64
	total   atomic.Int64
	routed  *telemetry.Counter
}

// New builds a dispatcher from a client's portions. The dispersion rates
// must sum to 1.
func New(portions []alloc.Portion) (*Dispatcher, error) {
	if len(portions) == 0 {
		return nil, errors.New("dispatch: no portions")
	}
	d := &Dispatcher{
		servers: make([]model.ServerID, len(portions)),
		cum:     make([]float64, len(portions)),
		counts:  make([]atomic.Int64, len(portions)),
	}
	var sum float64
	for i, p := range portions {
		if p.Alpha < 0 {
			return nil, fmt.Errorf("dispatch: negative dispersion rate %v", p.Alpha)
		}
		sum += p.Alpha
		d.servers[i] = p.Server
		d.cum[i] = sum
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("dispatch: dispersion rates sum to %v, want 1", sum)
	}
	// Guard the last boundary against floating-point shortfall.
	d.cum[len(d.cum)-1] = math.Max(sum, 1)
	return d, nil
}

// Instrument attaches a telemetry counter incremented once per routed
// request. Counters are shareable, so many dispatchers (one per client)
// can feed the same cloud-wide counter; nil detaches.
func (d *Dispatcher) Instrument(c *telemetry.Counter) { d.routed = c }

// Route picks a portion index for the next request. rng must be owned by
// the calling goroutine; everything else is atomic.
func (d *Dispatcher) Route(rng *rand.Rand) int {
	d.routed.Inc() // nil-safe no-op when uninstrumented
	u := rng.Float64()
	// Portions are few (≤ number of servers a client spans); linear scan
	// beats binary search at this size.
	idx := len(d.cum) - 1
	for i, c := range d.cum {
		if u < c {
			idx = i
			break
		}
	}
	d.counts[idx].Add(1)
	d.total.Add(1)
	return idx
}

// Server returns the server of portion idx.
func (d *Dispatcher) Server(idx int) model.ServerID { return d.servers[idx] }

// Fraction returns the empirical fraction of requests routed to portion
// idx so far (0 before any routing). Under concurrent routing the two
// loads are not a consistent snapshot; the fraction converges regardless.
func (d *Dispatcher) Fraction(idx int) float64 {
	total := d.total.Load()
	if total == 0 {
		return 0
	}
	return float64(d.counts[idx].Load()) / float64(total)
}

// Total returns the number of requests routed.
func (d *Dispatcher) Total() int64 { return d.total.Load() }

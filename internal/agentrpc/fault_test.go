package agentrpc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// blackholeListener accepts connections and never reads or writes —
// the pathological hung server.
func blackholeListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			_ = c // accepted, then silence
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l
}

// TestCancelAbortsHungCall is the regression test for the satellite
// fix: before the Policy rework, RemoteAgent.call ignored context
// cancellation entirely, so a hung server blocked the caller — and any
// SolveCtx above it — forever. Now cancellation pokes the conn deadline
// into the past and the in-flight gob round trip aborts promptly.
func TestCancelAbortsHungCall(t *testing.T) {
	l := blackholeListener(t)
	pol := DefaultPolicy()
	pol.Timeout = 0 // no per-attempt deadline: cancellation must do it alone
	pol.MaxAttempts = 1
	remote, err := Dial(l.Addr().String(), WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	cctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := remote.Profit(cctx)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call get stuck in Decode
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("hung call returned nil error after cancel")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in chain, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call still hung after 5s — cancellation does not abort the round trip")
	}
}

// TestDeadlineAbortsHungSolve proves the same property one layer up: a
// manager SolveCtx against a hung remote agent returns once its context
// deadline passes instead of stalling the whole solve.
func TestDeadlineAbortsHungSolve(t *testing.T) {
	scen := genScenario(t, 4)
	// Healthy remote agents for all clusters but the last, which points
	// at a black hole once construction-time checks have passed.
	agents := make([]cluster.Agent, scen.Cloud.NumClusters())
	for k := range agents {
		agents[k] = startServer(t, scen, model.ClusterID(k))
	}
	l := blackholeListener(t)
	pol := DefaultPolicy()
	pol.Timeout = 0
	pol.MaxAttempts = 1
	hungRemote, err := Dial(l.Addr().String(), WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	agents[len(agents)-1].Close()
	agents[len(agents)-1] = &hungAgent{id: model.ClusterID(len(agents) - 1), inner: hungRemote}
	mgr, err := cluster.NewManager(scen, agents, cluster.DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	dctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := mgr.SolveCtx(dctx)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("solve against a hung agent succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SolveCtx still hung 10s after its deadline")
	}
}

// hungAgent answers ClusterID locally (so NewManager's construction
// check passes) and forwards everything else to a remote whose server
// never replies.
type hungAgent struct {
	id    model.ClusterID
	inner *RemoteAgent
}

func (h *hungAgent) ClusterID(ctx context.Context) (model.ClusterID, error) { return h.id, nil }
func (h *hungAgent) Reset(ctx context.Context) error                        { return h.inner.Reset(ctx) }
func (h *hungAgent) Evaluate(ctx context.Context, id model.ClientID) (cluster.EvalResult, error) {
	return h.inner.Evaluate(ctx, id)
}
func (h *hungAgent) Commit(ctx context.Context, id model.ClientID, p []alloc.Portion) error {
	return h.inner.Commit(ctx, id, p)
}
func (h *hungAgent) Remove(ctx context.Context, id model.ClientID) error {
	return h.inner.Remove(ctx, id)
}
func (h *hungAgent) Improve(ctx context.Context) (cluster.ImproveStats, error) {
	return h.inner.Improve(ctx)
}
func (h *hungAgent) Profit(ctx context.Context) (float64, error) { return h.inner.Profit(ctx) }
func (h *hungAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	return h.inner.Snapshot(ctx)
}
func (h *hungAgent) Close() error { return h.inner.Close() }

// TestRetryRedialsAfterConnKill: killing the server side of every live
// connection makes the next call fail its first attempt, redial and
// succeed — with the retry and redial visible in telemetry.
func TestRetryRedialsAfterConnKill(t *testing.T) {
	scen := genScenario(t, 5)
	local, err := cluster.NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns atomic.Value // latest accepted conn
	wrapped := &connTrackListener{Listener: l, latest: &conns}
	srv := NewServer(wrapped, local)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	set := telemetry.New(nil)
	pol := DefaultPolicy()
	pol.Seed = 11 // deterministic backoff
	pol.BackoffBase = time.Millisecond
	remote, err := Dial(l.Addr().String(), WithPolicy(pol), WithTelemetry(set))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if _, err := remote.Profit(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Kill the server side of the pooled connection: the client's next
	// attempt on it fails, and the retry must redial.
	if c, ok := conns.Load().(net.Conn); ok {
		c.Close()
	}
	if _, err := remote.Profit(context.Background()); err != nil {
		t.Fatalf("call after conn kill: %v", err)
	}
	if got := set.Counter("rpc_client_retries_total").Value(); got < 1 {
		t.Fatalf("rpc_client_retries_total = %d, want >= 1", got)
	}
	if got := set.Counter("rpc_client_redials_total").Value(); got < 1 {
		t.Fatalf("rpc_client_redials_total = %d, want >= 1", got)
	}
}

type connTrackListener struct {
	net.Listener
	latest *atomic.Value
}

func (l *connTrackListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.latest.Store(c)
	}
	return c, err
}

// TestRemoteErrorNotRetried: application-level errors are final — the
// retry counter stays at zero.
func TestRemoteErrorNotRetried(t *testing.T) {
	scen := genScenario(t, 5)
	set := telemetry.New(nil)
	local, err := cluster.NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, local)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	remote, err := Dial(l.Addr().String(), WithTelemetry(set))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Committing a valid client with no portions violates Σα = 1 — a
	// remote application error, deterministic and final.
	err = remote.Commit(context.Background(), 0, nil)
	if err == nil {
		t.Fatal("bogus commit succeeded")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %T: %v", err, err)
	}
	if got := set.Counter("rpc_client_retries_total").Value(); got != 0 {
		t.Fatalf("remote error was retried %d times", got)
	}
}

// TestServerSurvivesInsaneRequest: a decoded request whose payload is
// out of range (hostile or fuzzed peer) fails that one call with a
// remote error instead of panicking the server process.
func TestServerSurvivesInsaneRequest(t *testing.T) {
	scen := genScenario(t, 5)
	remote := startServer(t, scen, 0)
	err := remote.Commit(context.Background(), model.ClientID(scen.NumClients()+10), nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %T: %v", err, err)
	}
	// The server is still alive and serving.
	if _, err := remote.Profit(context.Background()); err != nil {
		t.Fatalf("server dead after insane request: %v", err)
	}
}

// TestBackoffDeterministic: the same (Seed, Seq) yields the same
// jittered schedule — the property every chaos test's replayability
// rests on.
func TestBackoffDeterministic(t *testing.T) {
	pol := Policy{BackoffBase: time.Millisecond, BackoffMax: 100 * time.Millisecond, Seed: 42}
	for seq := uint64(1); seq <= 3; seq++ {
		a := samplBackoffs(pol, seq)
		b := samplBackoffs(pol, seq)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seq %d attempt %d: %v != %v", seq, i+1, a[i], b[i])
			}
			d := time.Duration(1) << uint(i) * pol.BackoffBase
			if d > pol.BackoffMax {
				d = pol.BackoffMax
			}
			if a[i] < d/2 || a[i] > d {
				t.Fatalf("seq %d attempt %d: backoff %v outside [%v, %v]", seq, i+1, a[i], d/2, d)
			}
		}
	}
}

func samplBackoffs(pol Policy, seq uint64) []time.Duration {
	rng := parallel.Rand(pol.Seed, seq)
	out := make([]time.Duration, 6)
	for n := 1; n <= len(out); n++ {
		out[n-1] = pol.backoff(n, rng)
	}
	return out
}

package agentrpc

import (
	"net"

	"repro/internal/telemetry"
)

// Option configures a Server or RemoteAgent.
type Option func(*options)

type options struct {
	tel *telemetry.Set
	pol Policy
}

// WithTelemetry wires RPC metrics (per-op latency histograms,
// call/error counters, byte counters) and per-call spans into the
// server or client it is passed to.
func WithTelemetry(set *telemetry.Set) Option {
	return func(o *options) { o.tel = set }
}

// WithPolicy replaces the client's DefaultPolicy: per-attempt deadline,
// retry/backoff schedule, hedging delay, connection bound and the seed
// driving jitter + idempotency ids. Ignored by servers.
func WithPolicy(p Policy) Option {
	return func(o *options) { o.pol = p }
}

// rpcTel holds pre-resolved per-op handles, indexed by op. A nil
// *rpcTel disables instrumentation.
type rpcTel struct {
	set       *telemetry.Set
	calls     [opEnd]*telemetry.Counter
	errors    [opEnd]*telemetry.Counter
	latency   [opEnd]*telemetry.Histogram
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	spanNames [opEnd]string

	// Fault-handling counters. Client side: retries (attempts after the
	// first), redials (replacement dials after a broken conn), hedges
	// (second attempts launched) and hedgeWins (hedge returned first).
	// Server side: dedupHits (retried mutating calls answered from the
	// idempotency cache instead of re-applied).
	retries   *telemetry.Counter
	redials   *telemetry.Counter
	hedges    *telemetry.Counter
	hedgeWins *telemetry.Counter
	dedupHits *telemetry.Counter
}

// newRPCTel resolves handles for one side of the protocol; side is
// "client" or "server".
func newRPCTel(set *telemetry.Set, side string) *rpcTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("rpc_"+side+"_latency_seconds", "agentrpc "+side+"-side round-trip latency per op")
	t := &rpcTel{
		set:      set,
		bytesIn:  set.Counter("rpc_" + side + "_bytes_received_total"),
		bytesOut: set.Counter("rpc_" + side + "_bytes_sent_total"),
	}
	for o := op(0); o < opEnd; o++ {
		name := o.String()
		t.calls[o] = set.Counter(telemetry.Name("rpc_"+side+"_calls_total", "op", name))
		t.errors[o] = set.Counter(telemetry.Name("rpc_"+side+"_errors_total", "op", name))
		t.latency[o] = set.Histogram(telemetry.Name("rpc_"+side+"_latency_seconds", "op", name), telemetry.DurationBuckets)
		t.spanNames[o] = "rpc." + name
	}
	switch side {
	case "client":
		set.Metrics.Help("rpc_client_retries_total", "agentrpc retry attempts after transport failures")
		set.Metrics.Help("rpc_client_hedge_wins_total", "hedged read-only calls whose second attempt returned first")
		t.retries = set.Counter("rpc_client_retries_total")
		t.redials = set.Counter("rpc_client_redials_total")
		t.hedges = set.Counter("rpc_client_hedges_total")
		t.hedgeWins = set.Counter("rpc_client_hedge_wins_total")
	case "server":
		set.Metrics.Help("rpc_server_dedup_hits_total", "retried mutating calls answered from the idempotency cache")
		t.dedupHits = set.Counter("rpc_server_dedup_hits_total")
	}
	return t
}

// handles returns the per-op instruments, tolerating out-of-range ops
// (a corrupt or future peer) by folding them onto index 0.
func (t *rpcTel) handles(o op) (*telemetry.Counter, *telemetry.Counter, *telemetry.Histogram, string) {
	if o <= 0 || o >= opEnd {
		o = 0
	}
	return t.calls[o], t.errors[o], t.latency[o], t.spanNames[o]
}

// countingConn counts bytes crossing a net.Conn into telemetry
// counters; the counters are atomic so the conn needs no extra locking.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

package agentrpc

import (
	"net"

	"repro/internal/telemetry"
)

// Option configures a Server or RemoteAgent.
type Option func(*options)

type options struct {
	tel *telemetry.Set
}

// WithTelemetry wires RPC metrics (per-op latency histograms,
// call/error counters, byte counters) and per-call spans into the
// server or client it is passed to.
func WithTelemetry(set *telemetry.Set) Option {
	return func(o *options) { o.tel = set }
}

// rpcTel holds pre-resolved per-op handles, indexed by op. A nil
// *rpcTel disables instrumentation.
type rpcTel struct {
	set       *telemetry.Set
	calls     [opEnd]*telemetry.Counter
	errors    [opEnd]*telemetry.Counter
	latency   [opEnd]*telemetry.Histogram
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	spanNames [opEnd]string
}

// newRPCTel resolves handles for one side of the protocol; side is
// "client" or "server".
func newRPCTel(set *telemetry.Set, side string) *rpcTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("rpc_"+side+"_latency_seconds", "agentrpc "+side+"-side round-trip latency per op")
	t := &rpcTel{
		set:      set,
		bytesIn:  set.Counter("rpc_" + side + "_bytes_received_total"),
		bytesOut: set.Counter("rpc_" + side + "_bytes_sent_total"),
	}
	for o := op(0); o < opEnd; o++ {
		name := o.String()
		t.calls[o] = set.Counter(telemetry.Name("rpc_"+side+"_calls_total", "op", name))
		t.errors[o] = set.Counter(telemetry.Name("rpc_"+side+"_errors_total", "op", name))
		t.latency[o] = set.Histogram(telemetry.Name("rpc_"+side+"_latency_seconds", "op", name), telemetry.DurationBuckets)
		t.spanNames[o] = "rpc." + name
	}
	return t
}

// handles returns the per-op instruments, tolerating out-of-range ops
// (a corrupt or future peer) by folding them onto index 0.
func (t *rpcTel) handles(o op) (*telemetry.Counter, *telemetry.Counter, *telemetry.Histogram, string) {
	if o <= 0 || o >= opEnd {
		o = 0
	}
	return t.calls[o], t.errors[o], t.latency[o], t.spanNames[o]
}

// countingConn counts bytes crossing a net.Conn into telemetry
// counters; the counters are atomic so the conn needs no extra locking.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Package agentrpc exposes a cluster.Agent over TCP with gob encoding, so
// the paper's cluster agents can run on separate machines from the
// central manager. The protocol is a simple synchronous request/response
// stream per connection.
package agentrpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// op enumerates the remote operations.
type op int

const (
	opClusterID op = iota + 1
	opReset
	opEvaluate
	opCommit
	opRemove
	opImprove
	opProfit
	opSnapshot

	opEnd // sentinel: number of ops + 1
)

var opNames = [opEnd]string{
	opClusterID: "cluster_id",
	opReset:     "reset",
	opEvaluate:  "evaluate",
	opCommit:    "commit",
	opRemove:    "remove",
	opImprove:   "improve",
	opProfit:    "profit",
	opSnapshot:  "snapshot",
}

// String names the op for error messages, metric labels and spans.
func (o op) String() string {
	if o > 0 && o < opEnd {
		return opNames[o]
	}
	return "unknown"
}

// request is the wire format of one call. Trace carries the caller's
// trace context across the process boundary: the server rehydrates it
// (telemetry.ContextWithRef) so its own spans — and any spans the agent
// records while handling the call — parent into the manager's trace
// tree. A zero Trace (older peers, tracing disabled) decodes fine and
// leaves the server spans as roots, so the field is wire-compatible in
// both directions.
type request struct {
	Op       op
	Client   model.ClientID
	Portions []alloc.Portion
	Trace    telemetry.TraceRef
}

// response is the wire format of one reply.
type response struct {
	Err      string
	Cluster  model.ClusterID
	Eval     cluster.EvalResult
	Improve  cluster.ImproveStats
	Profit   float64
	Snapshot map[model.ClientID][]alloc.Portion
}

// Server serves one agent to any number of sequential connections.
type Server struct {
	listener net.Listener
	agent    cluster.Agent
	tel      *rpcTel

	mu sync.Mutex // serializes agent access across connections
	wg sync.WaitGroup
}

// NewServer wraps an agent behind a listener. Call Serve to start.
func NewServer(l net.Listener, ag cluster.Agent, opts ...Option) *Server {
	var o options
	for _, apply := range opts {
		apply(&o)
	}
	return &Server{listener: l, agent: ag, tel: newRPCTel(o.tel, "server")}
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("agentrpc: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Addr returns the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	var rw io.ReadWriter = conn
	if s.tel != nil {
		rw = &countingConn{Conn: conn, in: s.tel.bytesIn, out: s.tel.bytesOut}
	}
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt; nothing to reply to
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	// Rehydrate the caller's trace context: the server-side span (and any
	// span the agent itself records) parents into the manager's tree.
	ctx := telemetry.ContextWithRef(context.Background(), req.Trace)
	var (
		t0          time.Time
		calls, errs *telemetry.Counter
		latency     *telemetry.Histogram
		spanName    string
		sp          telemetry.Span
	)
	if s.tel != nil {
		calls, errs, latency, spanName = s.tel.handles(req.Op)
		calls.Inc()
		sp, ctx = s.tel.set.StartCtx(ctx, spanName)
		t0 = time.Now()
	}
	s.mu.Lock()
	var resp response
	var err error
	switch req.Op {
	case opClusterID:
		resp.Cluster, err = s.agent.ClusterID(ctx)
	case opReset:
		err = s.agent.Reset(ctx)
	case opEvaluate:
		resp.Eval, err = s.agent.Evaluate(ctx, req.Client)
	case opCommit:
		err = s.agent.Commit(ctx, req.Client, req.Portions)
	case opRemove:
		err = s.agent.Remove(ctx, req.Client)
	case opImprove:
		resp.Improve, err = s.agent.Improve(ctx)
	case opProfit:
		resp.Profit, err = s.agent.Profit(ctx)
	case opSnapshot:
		resp.Snapshot, err = s.agent.Snapshot(ctx)
	default:
		err = fmt.Errorf("agentrpc: unknown op %d", req.Op)
	}
	s.mu.Unlock()
	if err != nil {
		resp.Err = err.Error()
	}
	if s.tel != nil {
		latency.ObserveSince(t0)
		if err != nil {
			errs.Inc()
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	return resp
}

// RemoteAgent is the client side: a cluster.Agent backed by a TCP
// connection to a Server.
type RemoteAgent struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	tel  *rpcTel
}

var _ cluster.Agent = (*RemoteAgent)(nil)

// Dial connects to a served agent.
func Dial(addr string, opts ...Option) (*RemoteAgent, error) {
	var o options
	for _, apply := range opts {
		apply(&o)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentrpc: dial %s: %w", addr, err)
	}
	r := &RemoteAgent{addr: addr, conn: conn, tel: newRPCTel(o.tel, "client")}
	var rw io.ReadWriter = conn
	if r.tel != nil {
		rw = &countingConn{Conn: conn, in: r.tel.bytesIn, out: r.tel.bytesOut}
	}
	r.enc = gob.NewEncoder(rw)
	r.dec = gob.NewDecoder(rw)
	return r, nil
}

// call performs one synchronous round trip. Every error is annotated
// with the op name and the peer address so a multi-agent manager can
// tell which cluster and which call failed; client-side RPC telemetry
// (latency, calls, errors, spans) hangs off the same path. The client
// span's identity rides the wire in req.Trace so the server's span —
// and the remote agent's own spans — become its children; with
// client-side tracing disabled the caller's trace context is forwarded
// unchanged, so the remote spans still join the caller's tree.
func (r *RemoteAgent) call(ctx context.Context, req request) (response, error) {
	var (
		t0          time.Time
		calls, errs *telemetry.Counter
		latency     *telemetry.Histogram
		sp          telemetry.Span
	)
	if r.tel != nil {
		var spanName string
		calls, errs, latency, spanName = r.tel.handles(req.Op)
		calls.Inc()
		sp, _ = r.tel.set.StartCtx(ctx, spanName)
		sp.Attr("peer", r.addr)
		req.Trace = sp.Ref()
		t0 = time.Now()
	} else {
		req.Trace = telemetry.RefFromContext(ctx)
	}
	resp, err := r.roundTrip(req)
	if r.tel != nil {
		latency.ObserveSince(t0)
		if err != nil {
			errs.Inc()
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	return resp, err
}

func (r *RemoteAgent) roundTrip(req request) (response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("agentrpc: %s %s: send: %w", req.Op, r.addr, err)
	}
	var resp response
	if err := r.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return response{}, fmt.Errorf("agentrpc: %s %s: connection closed: %w", req.Op, r.addr, err)
		}
		return response{}, fmt.Errorf("agentrpc: %s %s: receive: %w", req.Op, r.addr, err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("agentrpc: %s %s: remote: %s", req.Op, r.addr, resp.Err)
	}
	return resp, nil
}

// ClusterID implements cluster.Agent.
func (r *RemoteAgent) ClusterID(ctx context.Context) (model.ClusterID, error) {
	resp, err := r.call(ctx, request{Op: opClusterID})
	return resp.Cluster, err
}

// Reset implements cluster.Agent.
func (r *RemoteAgent) Reset(ctx context.Context) error {
	_, err := r.call(ctx, request{Op: opReset})
	return err
}

// Evaluate implements cluster.Agent.
func (r *RemoteAgent) Evaluate(ctx context.Context, id model.ClientID) (cluster.EvalResult, error) {
	resp, err := r.call(ctx, request{Op: opEvaluate, Client: id})
	return resp.Eval, err
}

// Commit implements cluster.Agent.
func (r *RemoteAgent) Commit(ctx context.Context, id model.ClientID, portions []alloc.Portion) error {
	_, err := r.call(ctx, request{Op: opCommit, Client: id, Portions: portions})
	return err
}

// Remove implements cluster.Agent.
func (r *RemoteAgent) Remove(ctx context.Context, id model.ClientID) error {
	_, err := r.call(ctx, request{Op: opRemove, Client: id})
	return err
}

// Improve implements cluster.Agent.
func (r *RemoteAgent) Improve(ctx context.Context) (cluster.ImproveStats, error) {
	resp, err := r.call(ctx, request{Op: opImprove})
	return resp.Improve, err
}

// Profit implements cluster.Agent.
func (r *RemoteAgent) Profit(ctx context.Context) (float64, error) {
	resp, err := r.call(ctx, request{Op: opProfit})
	return resp.Profit, err
}

// Snapshot implements cluster.Agent.
func (r *RemoteAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	resp, err := r.call(ctx, request{Op: opSnapshot})
	return resp.Snapshot, err
}

// Close implements cluster.Agent.
func (r *RemoteAgent) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn.Close()
}

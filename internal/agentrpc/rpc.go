// Package agentrpc exposes a cluster.Agent over TCP with gob encoding, so
// the paper's cluster agents can run on separate machines from the
// central manager. The protocol is a simple synchronous request/response
// stream per connection.
//
// The client side is hardened for unreliable agents and networks
// (Policy): per-attempt deadlines are enforced as conn deadlines and a
// cancelled context aborts an in-flight round trip; transport failures
// retry on a fresh connection with deterministic exponential backoff +
// jitter (splitmix64 seed-splitting); mutating calls carry (Src, Seq)
// idempotency ids the server deduplicates, so a retry after an
// ambiguous failure — request applied, response lost — replays the
// recorded outcome instead of re-applying; and read-only calls can
// hedge a second connection when the first is slow. internal/chaos is
// the proving ground for all of it.
package agentrpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// op enumerates the remote operations.
type op int

const (
	opClusterID op = iota + 1
	opReset
	opEvaluate
	opCommit
	opRemove
	opImprove
	opProfit
	opSnapshot

	opEnd // sentinel: number of ops + 1
)

var opNames = [opEnd]string{
	opClusterID: "cluster_id",
	opReset:     "reset",
	opEvaluate:  "evaluate",
	opCommit:    "commit",
	opRemove:    "remove",
	opImprove:   "improve",
	opProfit:    "profit",
	opSnapshot:  "snapshot",
}

// String names the op for error messages, metric labels and spans.
func (o op) String() string {
	if o > 0 && o < opEnd {
		return opNames[o]
	}
	return "unknown"
}

// mutating reports whether the op changes agent state. Mutating ops are
// deduplicated server-side by (Src, Seq) so retries are idempotent, and
// they are never hedged.
func (o op) mutating() bool {
	switch o {
	case opReset, opCommit, opRemove, opImprove:
		return true
	}
	return false
}

// hedgeable reports whether a slow call of this op may race a second
// attempt on another connection: read-only ops only, where executing
// twice (or concurrently) is harmless.
func (o op) hedgeable() bool {
	return o > 0 && o < opEnd && !o.mutating()
}

// request is the wire format of one call. Trace carries the caller's
// trace context across the process boundary: the server rehydrates it
// (telemetry.ContextWithRef) so its own spans — and any spans the agent
// records while handling the call — parent into the manager's trace
// tree. Src and Seq are the call's idempotency id: Src identifies the
// dialing client, Seq the logical call, and both stay fixed across
// retries of the same call so the server can deduplicate mutating ops.
// Zero values (older peers, dedup disabled) decode fine on both sides,
// so all three fields are wire-compatible in both directions.
type request struct {
	Op       op
	Client   model.ClientID
	Portions []alloc.Portion
	Trace    telemetry.TraceRef
	Src      uint64
	Seq      uint64
}

// response is the wire format of one reply.
type response struct {
	Err      string
	Cluster  model.ClusterID
	Eval     cluster.EvalResult
	Improve  cluster.ImproveStats
	Profit   float64
	Snapshot map[model.ClientID][]alloc.Portion
}

// Server serves one agent to any number of concurrent connections.
type Server struct {
	listener net.Listener
	agent    cluster.Agent
	tel      *rpcTel

	mu   sync.Mutex // serializes agent access across connections
	seen *dedupCache
	wg   sync.WaitGroup
}

// NewServer wraps an agent behind a listener. Call Serve to start.
func NewServer(l net.Listener, ag cluster.Agent, opts ...Option) *Server {
	var o options
	for _, apply := range opts {
		apply(&o)
	}
	return &Server{
		listener: l,
		agent:    ag,
		tel:      newRPCTel(o.tel, "server"),
		seen:     newDedupCache(0),
	}
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("agentrpc: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Addr returns the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	var rw io.ReadWriter = conn
	if s.tel != nil {
		rw = &countingConn{Conn: conn, in: s.tel.bytesIn, out: s.tel.bytesOut}
	}
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt; nothing to reply to
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	// Rehydrate the caller's trace context: the server-side span (and any
	// span the agent itself records) parents into the manager's tree.
	ctx := telemetry.ContextWithRef(context.Background(), req.Trace)
	var (
		t0          time.Time
		calls, errs *telemetry.Counter
		latency     *telemetry.Histogram
		spanName    string
		sp          telemetry.Span
	)
	if s.tel != nil {
		calls, errs, latency, spanName = s.tel.handles(req.Op)
		calls.Inc()
		sp, ctx = s.tel.set.StartCtx(ctx, spanName)
		t0 = time.Now()
	}

	key := dedupKey{src: req.Src, seq: req.Seq}
	dedup := req.Op.mutating() && req.Src != 0
	var entry *dedupEntry

	s.mu.Lock()
	if dedup {
		if e, ok := s.seen.get(key); ok {
			// A retry of a call we have seen: the op may have been
			// applied with only its response lost (ambiguous failure),
			// or may still be executing on another connection. Either
			// way, wait for — never re-apply — the one true outcome.
			s.mu.Unlock()
			<-e.done
			if s.tel != nil {
				s.tel.dedupHits.Inc()
				latency.ObserveSince(t0)
				sp.Attr("dedup", true)
				sp.End()
			}
			return e.resp
		}
		entry = &dedupEntry{done: make(chan struct{})}
		s.seen.put(key, entry)
	}
	var resp response
	// The request decoded, but its payload may still be insane (a fuzzed
	// or hostile peer sending an out-of-range client id): a panic in the
	// agent must fail the one request, not the server.
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("agentrpc: %s: bad request: %v", req.Op, p)
			}
		}()
		switch req.Op {
		case opClusterID:
			resp.Cluster, err = s.agent.ClusterID(ctx)
		case opReset:
			err = s.agent.Reset(ctx)
		case opEvaluate:
			resp.Eval, err = s.agent.Evaluate(ctx, req.Client)
		case opCommit:
			err = s.agent.Commit(ctx, req.Client, req.Portions)
		case opRemove:
			err = s.agent.Remove(ctx, req.Client)
		case opImprove:
			resp.Improve, err = s.agent.Improve(ctx)
		case opProfit:
			resp.Profit, err = s.agent.Profit(ctx)
		case opSnapshot:
			resp.Snapshot, err = s.agent.Snapshot(ctx)
		default:
			err = fmt.Errorf("agentrpc: unknown op %d", req.Op)
		}
		return err
	}()
	if err != nil {
		resp.Err = err.Error()
	}
	if dedup {
		entry.resp = resp
		close(entry.done)
	}
	s.mu.Unlock()
	if s.tel != nil {
		latency.ObserveSince(t0)
		if err != nil {
			errs.Inc()
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	return resp
}

// wire is one live connection with its gob codec state. A wire whose
// round trip fails is discarded: after a transport error the stream
// position is unknown, so positional request/response matching on it
// would be unsound.
type wire struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// RemoteAgent is the client side: a cluster.Agent backed by a pool of
// TCP connections to a Server, with deadlines, retries, redials and
// hedging per its Policy.
type RemoteAgent struct {
	addr string
	pol  Policy
	tel  *rpcTel
	src  uint64
	seq  atomic.Uint64

	dialed atomic.Bool   // first dial done; later dials count as redials
	slots  chan struct{} // bounds in-flight attempts (MaxConns)

	mu     sync.Mutex
	idle   []*wire
	closed bool
}

var _ cluster.Agent = (*RemoteAgent)(nil)

// Dial connects to a served agent with DefaultPolicy unless WithPolicy
// overrides it. The initial connection is established eagerly so an
// unreachable address fails here, not on the first call.
func Dial(addr string, opts ...Option) (*RemoteAgent, error) {
	o := options{pol: DefaultPolicy()}
	for _, apply := range opts {
		apply(&o)
	}
	r := &RemoteAgent{
		addr:  addr,
		pol:   o.pol,
		tel:   newRPCTel(o.tel, "client"),
		src:   o.pol.srcID(),
		slots: make(chan struct{}, o.pol.maxConns()),
	}
	w, err := r.dialWire()
	if err != nil {
		return nil, fmt.Errorf("agentrpc: dial %s: %w", addr, err)
	}
	r.mu.Lock()
	r.idle = append(r.idle, w)
	r.mu.Unlock()
	return r, nil
}

// dialWire opens one fresh connection. Dials after the first are
// redials (a broken connection being replaced) and are counted.
func (r *RemoteAgent) dialWire() (*wire, error) {
	conn, err := net.Dial("tcp", r.addr)
	if err != nil {
		return nil, err
	}
	if r.dialed.Swap(true) && r.tel != nil {
		r.tel.redials.Inc()
	}
	var rw io.ReadWriter = conn
	if r.tel != nil {
		rw = &countingConn{Conn: conn, in: r.tel.bytesIn, out: r.tel.bytesOut}
	}
	return &wire{conn: conn, enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}, nil
}

// getWire pops an idle connection or dials a new one. The caller must
// hold an in-flight slot.
func (r *RemoteAgent) getWire() (*wire, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("client closed")
	}
	var w *wire
	if n := len(r.idle); n > 0 {
		w, r.idle = r.idle[n-1], r.idle[:n-1]
	}
	r.mu.Unlock()
	if w != nil {
		return w, nil
	}
	return r.dialWire()
}

// putWire returns a healthy connection to the pool.
func (r *RemoteAgent) putWire(w *wire) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		w.conn.Close()
		return
	}
	r.idle = append(r.idle, w)
	r.mu.Unlock()
}

// call performs one logical round trip with telemetry. Every error is
// annotated with the op name and the peer address so a multi-agent
// manager can tell which cluster and which call failed. The client
// span's identity rides the wire in req.Trace so the server's span —
// and the remote agent's own spans — become its children; with
// client-side tracing disabled the caller's trace context is forwarded
// unchanged, so the remote spans still join the caller's tree.
func (r *RemoteAgent) call(ctx context.Context, req request) (response, error) {
	var (
		t0          time.Time
		calls, errs *telemetry.Counter
		latency     *telemetry.Histogram
		sp          telemetry.Span
	)
	if r.tel != nil {
		var spanName string
		calls, errs, latency, spanName = r.tel.handles(req.Op)
		calls.Inc()
		sp, _ = r.tel.set.StartCtx(ctx, spanName)
		sp.Attr("peer", r.addr)
		req.Trace = sp.Ref()
		t0 = time.Now()
	} else {
		req.Trace = telemetry.RefFromContext(ctx)
	}
	resp, err := r.do(ctx, req)
	if r.tel != nil {
		latency.ObserveSince(t0)
		if err != nil {
			errs.Inc()
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	return resp, err
}

// do drives one logical call through the retry loop: transport failures
// get MaxAttempts tries with deterministic jittered backoff, each on a
// clean connection; remote application errors and context
// cancellations are final. The (Src, Seq) idempotency id is fixed
// before the first attempt, so every retry is the same logical call to
// the server.
func (r *RemoteAgent) do(ctx context.Context, req request) (response, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return response{}, fmt.Errorf("agentrpc: %s %s: client closed", req.Op, r.addr)
	}
	req.Src = r.src
	req.Seq = r.seq.Add(1)
	attempts := r.pol.attempts()
	var rng *rand.Rand
	var lastResp response
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if rng == nil {
				// The backoff schedule derives from (Seed, Seq), not
				// from shared global state: deterministic under test,
				// uncorrelated across concurrent calls.
				rng = parallel.Rand(r.pol.Seed, req.Seq)
			}
			if !sleepCtx(ctx, r.pol.backoff(a, rng)) {
				return lastResp, fmt.Errorf("agentrpc: %s %s: %w (giving up after %d attempts: %v)",
					req.Op, r.addr, ctx.Err(), a, lastErr)
			}
			if r.tel != nil {
				r.tel.retries.Inc()
			}
		}
		resp, err := r.hedged(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastResp, lastErr = resp, err
		if !retryable(err) || ctx.Err() != nil {
			return resp, err
		}
	}
	return lastResp, lastErr
}

// hedged runs one attempt, racing a second connection after HedgeDelay
// for read-only ops: tail latency from one slow conn or a stalled peer
// loses to the fresh attempt, and the loser is abandoned (its
// connection dies with the cancelled context).
func (r *RemoteAgent) hedged(ctx context.Context, req request) (response, error) {
	if r.pol.HedgeDelay <= 0 || !req.Op.hedgeable() {
		return r.attempt(ctx, req)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp  response
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	run := func(hedge bool) {
		resp, err := r.attempt(actx, req)
		ch <- result{resp: resp, err: err, hedge: hedge}
	}
	go run(false)
	timer := time.NewTimer(r.pol.HedgeDelay)
	defer timer.Stop()
	inFlight, hedgedOff := 1, false
	var first *result
	for {
		select {
		case res := <-ch:
			inFlight--
			if res.err == nil {
				if res.hedge && r.tel != nil {
					r.tel.hedgeWins.Inc()
				}
				return res.resp, nil
			}
			if first == nil {
				c := res
				first = &c
			}
			if inFlight == 0 {
				return first.resp, first.err
			}
		case <-timer.C:
			if !hedgedOff {
				hedgedOff = true
				if r.tel != nil {
					r.tel.hedges.Inc()
				}
				inFlight++
				go run(true)
			}
		}
	}
}

// attempt performs one round trip on one pooled connection. The
// attempt's deadline (Policy.Timeout, clipped by the context deadline)
// is enforced as a conn deadline, and a cancelled context pokes the
// deadline into the past so the blocking gob round trip aborts — a
// hung server can no longer block the caller forever. Any transport
// failure closes the connection; the retry layer redials.
func (r *RemoteAgent) attempt(ctx context.Context, req request) (response, error) {
	select {
	case r.slots <- struct{}{}:
	case <-ctx.Done():
		return response{}, fmt.Errorf("agentrpc: %s %s: %w", req.Op, r.addr, ctx.Err())
	}
	defer func() { <-r.slots }()

	w, err := r.getWire()
	if err != nil {
		return response{}, &TransportError{Op: req.Op.String(), Addr: r.addr, Phase: "dial", Err: err}
	}
	var deadline time.Time
	if r.pol.Timeout > 0 {
		deadline = time.Now().Add(r.pol.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		w.conn.SetDeadline(deadline)
	}
	stop := context.AfterFunc(ctx, func() {
		w.conn.SetDeadline(time.Unix(1, 0)) // the distant past: fail in-flight I/O now
	})

	fail := func(phase string, err error) (response, error) {
		stop()
		w.conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return response{}, fmt.Errorf("agentrpc: %s %s: %s aborted: %w", req.Op, r.addr, phase, cerr)
		}
		if phase == "receive" && errors.Is(err, io.EOF) {
			return response{}, &TransportError{Op: req.Op.String(), Addr: r.addr, Phase: "connection closed", Err: err}
		}
		return response{}, &TransportError{Op: req.Op.String(), Addr: r.addr, Phase: phase, Err: err}
	}

	if err := w.enc.Encode(req); err != nil {
		return fail("send", err)
	}
	var resp response
	if err := w.dec.Decode(&resp); err != nil {
		return fail("receive", err)
	}
	if stop() {
		// The cancel watcher never ran: the conn deadline is ours to
		// clear, and the stream is positioned at a message boundary —
		// safe to pool.
		w.conn.SetDeadline(time.Time{})
		r.putWire(w)
	} else {
		// Cancellation raced our success; the conn deadline state is
		// unknown, so don't pool the wire.
		w.conn.Close()
	}
	if resp.Err != "" {
		return resp, &RemoteError{Op: req.Op.String(), Addr: r.addr, Msg: resp.Err}
	}
	return resp, nil
}

// ClusterID implements cluster.Agent.
func (r *RemoteAgent) ClusterID(ctx context.Context) (model.ClusterID, error) {
	resp, err := r.call(ctx, request{Op: opClusterID})
	return resp.Cluster, err
}

// Reset implements cluster.Agent.
func (r *RemoteAgent) Reset(ctx context.Context) error {
	_, err := r.call(ctx, request{Op: opReset})
	return err
}

// Evaluate implements cluster.Agent.
func (r *RemoteAgent) Evaluate(ctx context.Context, id model.ClientID) (cluster.EvalResult, error) {
	resp, err := r.call(ctx, request{Op: opEvaluate, Client: id})
	return resp.Eval, err
}

// Commit implements cluster.Agent.
func (r *RemoteAgent) Commit(ctx context.Context, id model.ClientID, portions []alloc.Portion) error {
	_, err := r.call(ctx, request{Op: opCommit, Client: id, Portions: portions})
	return err
}

// Remove implements cluster.Agent.
func (r *RemoteAgent) Remove(ctx context.Context, id model.ClientID) error {
	_, err := r.call(ctx, request{Op: opRemove, Client: id})
	return err
}

// Improve implements cluster.Agent.
func (r *RemoteAgent) Improve(ctx context.Context) (cluster.ImproveStats, error) {
	resp, err := r.call(ctx, request{Op: opImprove})
	return resp.Improve, err
}

// Profit implements cluster.Agent.
func (r *RemoteAgent) Profit(ctx context.Context) (float64, error) {
	resp, err := r.call(ctx, request{Op: opProfit})
	return resp.Profit, err
}

// Snapshot implements cluster.Agent.
func (r *RemoteAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	resp, err := r.call(ctx, request{Op: opSnapshot})
	return resp.Snapshot, err
}

// Close implements cluster.Agent: no further calls are accepted and all
// pooled connections are closed. In-flight attempts run to completion
// (their connections are closed on return instead of pooled).
func (r *RemoteAgent) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	var errs []error
	for _, w := range idle {
		errs = append(errs, w.conn.Close())
	}
	return errors.Join(errs...)
}

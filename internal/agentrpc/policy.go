package agentrpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
)

// Policy shapes the client side's fault handling: per-attempt deadlines,
// retry with deterministic exponential backoff + jitter, connection-pool
// bounds, and slow-call hedging for read-only ops. The zero value is not
// usable directly; Dial fills in DefaultPolicy unless WithPolicy is
// given.
type Policy struct {
	// Timeout bounds one attempt's round trip. It is enforced as a
	// net.Conn deadline, so a hung peer fails the attempt instead of
	// blocking the caller forever. <= 0 disables the per-attempt
	// deadline (a context deadline still applies).
	Timeout time.Duration
	// MaxAttempts bounds the total tries per logical call (first attempt
	// + retries). Only transport failures (dial, send, receive,
	// deadline) are retried; remote application errors are final.
	// Values < 1 mean one attempt.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: attempt n sleeps a jittered duration in
	// [d/2, d] with d = min(BackoffBase << (n-1), BackoffMax). The
	// jitter derives from Seed and the call's Seq via splitmix64
	// seed-splitting, so retry schedules are deterministic under test.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay, when > 0, launches a second attempt of a read-only
	// call (ClusterID, Evaluate, Profit, Snapshot) on its own
	// connection after this delay; the first result wins and the loser
	// is abandoned. Mutating calls never hedge. 0 disables hedging.
	HedgeDelay time.Duration
	// MaxConns bounds the connections — and hence concurrent in-flight
	// attempts — per RemoteAgent. <= 0 means 4. Hedging needs at least
	// 2 to be useful.
	MaxConns int
	// Seed drives the retry jitter and the client's idempotency Src id.
	// 0 (the default) draws a random Src; a fixed seed makes both the
	// backoff schedule and the Src deterministic per dial order.
	Seed int64
}

// DefaultPolicy is the production default: generous per-attempt
// deadline, a few retries with millisecond-scale backoff, hedging off.
func DefaultPolicy() Policy {
	return Policy{
		Timeout:     2 * time.Minute,
		MaxAttempts: 4,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
		MaxConns:    4,
	}
}

func (p Policy) maxConns() int {
	if p.MaxConns > 0 {
		return p.MaxConns
	}
	return 4
}

func (p Policy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 1
}

// backoff returns the jittered sleep before retry attempt n (n >= 1).
func (p Policy) backoff(n int, rng *rand.Rand) time.Duration {
	base, max := p.BackoffBase, p.BackoffMax
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 500 * time.Millisecond
	}
	d := base
	for i := 1; i < n; i++ {
		d <<= 1
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := int64(d / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// dialCount distinguishes the Src ids of same-seed dials: two
// RemoteAgents sharing a Policy (and a server) must not collide on
// (Src, Seq) idempotency keys.
var dialCount atomic.Uint64

// srcID derives the client's idempotency source id: deterministic per
// dial order under a fixed seed, random otherwise. Never 0 (0 on the
// wire means "no dedup" for older peers).
func (p Policy) srcID() uint64 {
	n := dialCount.Add(1)
	if p.Seed != 0 {
		if v := uint64(parallel.SplitSeed(p.Seed, n)); v != 0 {
			return v
		}
		return 1
	}
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// A TransportError is a connection-level failure: dial, send, receive,
// or deadline. The outcome of the call is unknown ("ambiguous"), and a
// retry is safe — mutating ops are deduplicated server-side by their
// (Src, Seq) idempotency id.
type TransportError struct {
	Op    string // op name ("commit", "evaluate", ...)
	Addr  string // peer address
	Phase string // "dial", "send", "receive"
	Err   error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("agentrpc: %s %s: %s: %v", e.Op, e.Addr, e.Phase, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// A RemoteError is an application-level error the remote agent
// returned. It is deterministic (the remote state machine already
// decided) and is never retried.
type RemoteError struct {
	Op   string
	Addr string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("agentrpc: %s %s: remote: %s", e.Op, e.Addr, e.Msg)
}

// retryable reports whether err is a transport failure worth another
// attempt.
func retryable(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// sleepCtx sleeps d or until ctx is done; reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// dedupKey identifies one logical mutating call across retries.
type dedupKey struct{ src, seq uint64 }

// dedupEntry is the recorded (or in-progress) outcome of one mutating
// call. done is closed once resp is final, so a retry that arrives
// while the original is still executing waits for the one true outcome
// instead of re-applying the op.
type dedupEntry struct {
	done chan struct{}
	resp response
}

// dedupCache remembers the outcomes of recent mutating calls so a retry
// after an ambiguous failure (request applied, response lost) replays
// the recorded response instead of re-applying the operation. Bounded
// FIFO eviction; the window only needs to cover the client's retry
// horizon, not history.
type dedupCache struct {
	cap  int
	m    map[dedupKey]*dedupEntry
	ring []dedupKey
	next int
}

const defaultDedupWindow = 4096

func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = defaultDedupWindow
	}
	return &dedupCache{cap: capacity, m: make(map[dedupKey]*dedupEntry, capacity)}
}

func (c *dedupCache) get(k dedupKey) (*dedupEntry, bool) {
	e, ok := c.m[k]
	return e, ok
}

func (c *dedupCache) put(k dedupKey, e *dedupEntry) {
	if _, ok := c.m[k]; ok {
		return
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, k)
	} else {
		delete(c.m, c.ring[c.next])
		c.ring[c.next] = k
		c.next = (c.next + 1) % c.cap
	}
	c.m[k] = e
}

package agentrpc

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// seedFrames returns real captured wire frames: every op's request as
// the client encodes it, plus a response with every field populated.
// The fuzz corpora start from genuine gob streams, so mutations explore
// the decoder's state machine instead of bouncing off the magic bytes.
func seedRequestFrames(t testing.TB) [][]byte {
	t.Helper()
	var frames [][]byte
	reqs := []request{
		{Op: opClusterID, Src: 7, Seq: 1},
		{Op: opReset, Src: 7, Seq: 2},
		{Op: opEvaluate, Client: 3, Src: 7, Seq: 3},
		{Op: opCommit, Client: 3, Portions: []alloc.Portion{{Server: 2, Alpha: 1, ProcShare: 0.5, CommShare: 0.25}}, Src: 7, Seq: 4},
		{Op: opRemove, Client: 3, Src: 7, Seq: 5},
		{Op: opImprove, Src: 7, Seq: 6},
		{Op: opProfit, Src: 7, Seq: 7},
		{Op: opSnapshot, Trace: telemetry.TraceRef{TraceID: 9, SpanID: 4}, Src: 7, Seq: 8},
	}
	for _, rq := range reqs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rq); err != nil {
			t.Fatalf("encode seed request: %v", err)
		}
		frames = append(frames, buf.Bytes())
	}
	return frames
}

func seedResponseFrames(t testing.TB) [][]byte {
	t.Helper()
	resps := []response{
		{Cluster: 2},
		{Err: "agent exploded"},
		{Eval: cluster.EvalResult{Feasible: true, Est: 12.5, Portions: []alloc.Portion{{Server: 1, Alpha: 1, ProcShare: 1, CommShare: 1}}}},
		{Improve: cluster.ImproveStats{Activations: 2, Deactivations: 1, Profit: 99.25}},
		{Profit: 42.125},
		{Snapshot: map[model.ClientID][]alloc.Portion{4: {{Server: 0, Alpha: 1, ProcShare: 0.25, CommShare: 0.25}}}},
	}
	var frames [][]byte
	for _, rs := range resps {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
			t.Fatalf("encode seed response: %v", err)
		}
		frames = append(frames, buf.Bytes())
	}
	return frames
}

// FuzzDecodeRequest feeds arbitrary bytes to the server's frame
// decoder. A malformed or truncated frame must surface as a decode
// error — never a panic and never a hang. Two decodes per input
// exercise the decoder's cross-frame state (gob type descriptors are
// stream-scoped).
func FuzzDecodeRequest(f *testing.F) {
	for _, frame := range seedRequestFrames(f) {
		f.Add(frame)
		if len(frame) > 4 {
			f.Add(frame[:len(frame)/2]) // truncated mid-frame
			f.Add(frame[:len(frame)-3]) // truncated mid-value
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 2; i++ {
			var req request
			if err := dec.Decode(&req); err != nil {
				return // error is the contract; panic or hang is the bug
			}
		}
	})
}

// FuzzDecodeResponse is the client-side mirror: a corrupt server reply
// must fail the decode, not the process.
func FuzzDecodeResponse(f *testing.F) {
	for _, frame := range seedResponseFrames(f) {
		f.Add(frame)
		if len(frame) > 4 {
			f.Add(frame[:len(frame)/2])
			f.Add(frame[:len(frame)-3])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 2; i++ {
			var resp response
			if err := dec.Decode(&resp); err != nil {
				return
			}
		}
	})
}

package agentrpc

import (
	"context"
	"math"
	"net"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

var ctx = context.Background()

// startServer serves cluster k of the scenario on a loopback listener and
// returns a connected RemoteAgent.
func startServer(t *testing.T, scen *model.Scenario, k model.ClusterID) *RemoteAgent {
	t.Helper()
	local, err := cluster.NewLocalAgent(scen, k, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, local)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	remote, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return remote
}

func genScenario(t *testing.T, n int) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = 7
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

func TestRemoteAgentRoundTrip(t *testing.T) {
	scen := genScenario(t, 10)
	remote := startServer(t, scen, 1)

	if k, err := remote.ClusterID(ctx); err != nil || k != 1 {
		t.Fatalf("ClusterID = %v, %v", k, err)
	}
	bid, err := remote.Evaluate(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bid.Feasible || len(bid.Portions) == 0 {
		t.Fatalf("bid = %+v", bid)
	}
	if err := remote.Commit(ctx, 3, bid.Portions); err != nil {
		t.Fatal(err)
	}
	p, err := remote.Profit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("profit should be nonzero after commit")
	}
	snap, err := remote.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if _, err := remote.Improve(ctx); err != nil {
		t.Fatal(err)
	}
	if err := remote.Remove(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := remote.Reset(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAgentErrorsPropagate(t *testing.T) {
	scen := genScenario(t, 5)
	remote := startServer(t, scen, 0)
	// Committing garbage portions must surface the server-side error.
	bid, err := remote.Evaluate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := bid.Portions
	bad[0].Alpha = 0.5 // Σα no longer 1
	if err := remote.Commit(ctx, 0, bad[:1]); err == nil {
		t.Fatal("invalid commit accepted remotely")
	}
}

func TestDistributedSolveOverTCP(t *testing.T) {
	scen := genScenario(t, 20)
	agents := make([]cluster.Agent, scen.Cloud.NumClusters())
	for k := range agents {
		agents[k] = startServer(t, scen, model.ClusterID(k))
	}
	mgr, err := cluster.NewManager(scen, agents, cluster.DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 20 {
		t.Fatalf("assigned %d of 20", a.NumAssigned())
	}
	if math.Abs(a.Profit()-stats.FinalProfit) > 1e-6 {
		t.Fatalf("profit mismatch: %v vs %v", a.Profit(), stats.FinalProfit)
	}

	// Same seed in-process gives the same answer: the transport must not
	// change the algorithm.
	scen2 := genScenario(t, 20)
	locals := make([]cluster.Agent, scen2.Cloud.NumClusters())
	for k := range locals {
		la, err := cluster.NewLocalAgent(scen2, model.ClusterID(k), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		locals[k] = la
	}
	mgr2, err := cluster.NewManager(scen2, locals, cluster.DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	a2, _, err := mgr2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Profit()-a2.Profit()) > 1e-9 {
		t.Fatalf("TCP result %v != in-process result %v", a.Profit(), a2.Profit())
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestConcurrentConnectionsSerialize(t *testing.T) {
	scen := genScenario(t, 8)
	local, err := cluster.NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, local)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		<-done
	}()

	// Several clients hammer the same agent; the server's mutex must keep
	// the (non-thread-safe) agent consistent.
	const clients = 4
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func() {
			remote, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer remote.Close()
			for i := 0; i < 20; i++ {
				if _, err := remote.Evaluate(ctx, 0); err != nil {
					errs <- err
					return
				}
				if _, err := remote.Profit(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientSurvivesServerClose(t *testing.T) {
	scen := genScenario(t, 5)
	remote := startServer(t, scen, 0)
	if _, err := remote.Evaluate(ctx, 0); err != nil {
		t.Fatal(err)
	}
	// Closing the client connection makes further calls fail cleanly.
	if err := remote.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Evaluate(ctx, 0); err == nil {
		t.Fatal("call on closed connection succeeded")
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	scen := genScenario(t, 5)
	local, err := cluster.NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, local)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		<-done
	}()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not gob")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection without crashing; a healthy
	// client must still be served afterwards.
	remote, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if k, err := remote.ClusterID(ctx); err != nil || k != 0 {
		t.Fatalf("healthy client failed after garbage frame: %v %v", k, err)
	}
}

package agentrpc

import (
	"net"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// TestDistributedSolveTelemetry runs a full manager + TCP-agents solve
// with telemetry enabled end to end and checks that every layer actually
// reported: client- and server-side RPC latency histograms, byte
// counters, solver phase spans on the agent side, and manager round
// spans on the manager side.
func TestDistributedSolveTelemetry(t *testing.T) {
	scen := genScenario(t, 20)

	// One telemetry set per allocd-like process, one for the manager side.
	mgrTel := telemetry.New(nil)
	agentTel := telemetry.New(nil)

	agents := make([]cluster.Agent, scen.Cloud.NumClusters())
	for k := range agents {
		cfg := core.DefaultConfig()
		cfg.Telemetry = agentTel
		local, err := cluster.NewLocalAgent(scen, model.ClusterID(k), cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := serveWith(t, local, agentTel)
		remote, err := Dial(srv.Addr().String(), WithTelemetry(mgrTel))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { remote.Close() })
		agents[k] = remote
	}

	mcfg := cluster.DefaultManagerConfig()
	mcfg.Telemetry = mgrTel
	mgr, err := cluster.NewManager(scen, agents, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 20 {
		t.Fatalf("assigned %d of 20", a.NumAssigned())
	}

	// Client-side RPC metrics: evaluate is called for every client on
	// every cluster, so its latency histogram must have entries.
	evalLat := mgrTel.Histogram(telemetry.Name("rpc_client_latency_seconds", "op", "evaluate"), telemetry.DurationBuckets)
	if evalLat.Count() == 0 {
		t.Fatal("client-side evaluate latency histogram is empty")
	}
	if got := mgrTel.Counter("rpc_client_bytes_sent_total").Value(); got == 0 {
		t.Fatal("client sent zero bytes according to telemetry")
	}
	if got := mgrTel.Counter(telemetry.Name("rpc_client_errors_total", "op", "evaluate")).Value(); got != 0 {
		t.Fatalf("unexpected client-side evaluate errors: %d", got)
	}

	// Server-side mirror.
	srvCalls := agentTel.Counter(telemetry.Name("rpc_server_calls_total", "op", "evaluate"))
	if srvCalls.Value() == 0 {
		t.Fatal("server-side evaluate call counter is zero")
	}
	if got := agentTel.Counter("rpc_server_bytes_received_total").Value(); got == 0 {
		t.Fatal("server received zero bytes according to telemetry")
	}

	// Manager spans: the solve and at least one improvement round.
	mgrSpans := spanNames(mgrTel)
	for _, want := range []string{"manager.solve", "manager.initial_pass", "rpc.evaluate"} {
		if !mgrSpans[want] {
			t.Fatalf("manager trace is missing %q spans (have %v)", want, keys(mgrSpans))
		}
	}
	if stats.ImproveRounds > 0 && !mgrSpans["manager.improve_round"] {
		t.Fatal("manager trace has no improve_round span despite rounds > 0")
	}

	// Agent spans: the RPC handler and the solver's cluster-local phases
	// (share adjustment runs inside every Improve call).
	agentSpans := spanNames(agentTel)
	for _, want := range []string{"rpc.evaluate", "rpc.improve"} {
		if !agentSpans[want] {
			t.Fatalf("agent trace is missing %q spans (have %v)", want, keys(agentSpans))
		}
	}

	// The tentpole invariant across the RPC boundary: the manager's and
	// the agents' tracers are separate rings (separate processes in real
	// deployments), yet the trace context riding the wire request must
	// stitch their spans into ONE tree rooted at manager.solve.
	union := append(mgrTel.Tracer.Snapshot(), agentTel.Tracer.Snapshot()...)
	byID := make(map[telemetry.ID]telemetry.SpanRecord, len(union))
	var root telemetry.SpanRecord
	var roots int
	for _, sp := range union {
		if sp.SpanID != 0 {
			byID[sp.SpanID] = sp
		}
		if sp.Name == "manager.solve" {
			root, roots = sp, roots+1
		}
	}
	if roots != 1 {
		t.Fatalf("want one manager.solve root, got %d", roots)
	}
	var agentSideInTrace int
	for _, sp := range agentTel.Tracer.Snapshot() {
		if sp.TraceID == root.TraceID {
			agentSideInTrace++
		}
	}
	if agentSideInTrace == 0 {
		t.Fatal("no agent-side span joined the manager's trace: TraceRef did not cross the RPC boundary")
	}
	for _, sp := range union {
		if sp.TraceID != root.TraceID {
			continue // e.g. pre-solve cluster_id RPCs traced before the root opened
		}
		cur := sp
		for hops := 0; cur.SpanID != root.SpanID; hops++ {
			if hops > len(union) {
				t.Fatalf("span %q: parent chain does not terminate at the root", sp.Name)
			}
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %q: parent %s of %q missing from both tracers", sp.Name, cur.ParentID, cur.Name)
			}
			cur = parent
		}
	}

	// Per-round timing satellite: the manager stats expose what the
	// round spans measure.
	if len(stats.RoundDurations) != stats.ImproveRounds {
		t.Fatalf("RoundDurations has %d entries for %d rounds", len(stats.RoundDurations), stats.ImproveRounds)
	}
	if stats.InitElapsed <= 0 {
		t.Fatal("InitElapsed not recorded")
	}

	// The Prometheus exposition of the manager registry must contain the
	// RPC histogram family with non-zero counts.
	var sb strings.Builder
	mgrTel.Metrics.WritePrometheus(&sb)
	text := sb.String()
	if !strings.Contains(text, `rpc_client_latency_seconds_bucket{op="evaluate",le="+Inf"}`) {
		t.Fatalf("Prometheus text lacks evaluate latency buckets:\n%s", text)
	}
}

// TestSolverPhaseSpans checks that a plain (non-distributed) solve with
// telemetry produces the per-phase spans the tracing tentpole promises.
func TestSolverPhaseSpans(t *testing.T) {
	scen := genScenario(t, 15)
	cfg := core.DefaultConfig()
	set := telemetry.New(nil)
	cfg.Telemetry = set
	solver, err := core.NewSolver(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := solver.Solve(); err != nil {
		t.Fatal(err)
	}
	spans := spanNames(set)
	for _, want := range []string{"solver.solve", "solver.greedy", "solver.round"} {
		if !spans[want] {
			t.Fatalf("solver trace is missing %q spans (have %v)", want, keys(spans))
		}
	}
	if set.Histogram(telemetry.Name("solver_phase_seconds", "phase", "share_adjust"), telemetry.DurationBuckets).Count() == 0 {
		t.Fatal("share_adjust phase histogram is empty")
	}
	if set.Counter("solver_solves_total").Value() != 1 {
		t.Fatal("solver_solves_total != 1")
	}
}

// serveWith starts a telemetry-instrumented server for the agent.
func serveWith(t *testing.T, ag cluster.Agent, set *telemetry.Set) *Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ag, WithTelemetry(set))
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv
}

func spanNames(set *telemetry.Set) map[string]bool {
	out := make(map[string]bool)
	for _, r := range set.Tracer.Snapshot() {
		out[r.Name] = true
	}
	return out
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

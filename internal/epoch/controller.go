package epoch

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/predict"
)

// Policy decides whether the drift since the last decision warrants a new
// cloud-level allocation (paper Section III: "some small changes … can be
// effectively tracked and responded to by proper reaction of request
// dispatchers in the clusters; large changes cannot be handled by the
// local managers").
type Policy interface {
	// ShouldResolve compares the rates at the last decision with the
	// current rates.
	ShouldResolve(lastDecision, current []float64) bool
}

// ThresholdPolicy re-decides when any client's rate moved by more than
// RelChange relative to the last decision.
type ThresholdPolicy struct {
	RelChange float64
}

// ShouldResolve implements Policy.
func (p ThresholdPolicy) ShouldResolve(lastDecision, current []float64) bool {
	for i := range current {
		base := lastDecision[i]
		if base <= 0 {
			return true
		}
		diff := current[i] - base
		if diff < 0 {
			diff = -diff
		}
		if diff/base > p.RelChange {
			return true
		}
	}
	return false
}

// PeriodicPolicy re-decides every Every epochs regardless of drift. The
// counter lives on the policy, so use it by pointer.
type PeriodicPolicy struct {
	Every int

	count int
}

// ShouldResolve implements Policy; it is called once per epoch.
func (p *PeriodicPolicy) ShouldResolve(lastDecision, current []float64) bool {
	p.count++
	if p.Every <= 1 || p.count >= p.Every {
		p.count = 0
		return true
	}
	return false
}

// AlwaysPolicy re-decides every epoch (the upper bound on decision cost).
type AlwaysPolicy struct{}

// ShouldResolve implements Policy.
func (AlwaysPolicy) ShouldResolve(_, _ []float64) bool { return true }

// NeverPolicy never re-decides after the first epoch (the "set and
// forget" lower bound).
type NeverPolicy struct{}

// ShouldResolve implements Policy.
func (NeverPolicy) ShouldResolve(_, _ []float64) bool { return false }

// ControllerConfig tunes a trace-driven controller run.
type ControllerConfig struct {
	Policy Policy
	// WarmStart re-solves from the previous allocation when re-deciding.
	WarmStart bool
	// Solver configures the allocator.
	Solver core.Config
	// Predictor forecasts the rates the allocator provisions for; nil
	// means an oracle (the actual rates, the paper's implicit assumption).
	// The policy also sees the forecast, mirroring a real deployment where
	// the actual rates are only known in hindsight.
	Predictor predict.Predictor
}

// DefaultControllerConfig re-decides on >20% drift with warm starts.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Policy:    ThresholdPolicy{RelChange: 0.2},
		WarmStart: true,
		Solver:    core.DefaultConfig(),
	}
}

// Step is one epoch of a controller run.
type Step struct {
	Epoch            int
	Resolved         bool
	RealizedProfit   float64
	SaturatedClients int
	SolveTime        time.Duration
}

// ControllerSummary aggregates a run.
type ControllerSummary struct {
	Steps          []Step
	TotalProfit    float64
	Decisions      int
	TotalSolveTime time.Duration
}

// RunController replays a rate trace against the decision policy: each
// epoch the actual rates change; the policy decides whether to pay for a
// new cloud-level allocation or keep the standing one (whose shares the
// cluster dispatchers keep using). Realized profit is always priced at
// the actual rates.
func RunController(scen *model.Scenario, tr Trace, cfg ControllerConfig) (ControllerSummary, error) {
	if cfg.Policy == nil {
		return ControllerSummary{}, errors.New("epoch: nil policy")
	}
	if err := scen.Validate(); err != nil {
		return ControllerSummary{}, fmt.Errorf("epoch: %w", err)
	}
	if err := tr.Validate(scen.NumClients()); err != nil {
		return ControllerSummary{}, err
	}

	cur := CloneScenario(scen)
	var (
		summary      ControllerSummary
		current      *alloc.Allocation
		lastDecision = make([]float64, scen.NumClients())
	)
	for e, rates := range tr {
		// The allocator and policy work from the forecast; realized profit
		// is always priced at the actual rates.
		forecast := rates
		if cfg.Predictor != nil && e > 0 {
			if f := cfg.Predictor.Predict(); len(f) == len(rates) {
				forecast = f
			}
		}
		for i := range cur.Clients {
			cur.Clients[i].ArrivalRate = rates[i]
			cur.Clients[i].PredictedRate = forecast[i]
		}
		step := Step{Epoch: e}
		if current == nil || cfg.Policy.ShouldResolve(lastDecision, forecast) {
			solver, err := core.NewSolver(cur, cfg.Solver)
			if err != nil {
				return ControllerSummary{}, err
			}
			start := time.Now()
			var a *alloc.Allocation
			if cfg.WarmStart && current != nil {
				a, _, err = solver.SolveFrom(current)
			} else {
				a, _, err = solver.Solve()
			}
			if err != nil {
				return ControllerSummary{}, err
			}
			step.SolveTime = time.Since(start)
			step.Resolved = true
			summary.Decisions++
			summary.TotalSolveTime += step.SolveTime
			current = a
			copy(lastDecision, forecast)
		}
		step.RealizedProfit, step.SaturatedClients = Realize(cur, current)
		summary.TotalProfit += step.RealizedProfit
		summary.Steps = append(summary.Steps, step)
		if cfg.Predictor != nil {
			if err := cfg.Predictor.Observe(rates); err != nil {
				return ControllerSummary{}, fmt.Errorf("epoch: predictor: %w", err)
			}
		}
	}
	return summary, nil
}

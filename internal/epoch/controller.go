package epoch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/telemetry"
)

// ctlTel holds the controller's pre-resolved metric handles; nil
// disables instrumentation.
type ctlTel struct {
	set      *telemetry.Set
	resolves *telemetry.Counter
	skips    *telemetry.Counter
	drift    *telemetry.Gauge
	solveDur *telemetry.Histogram
}

func newCtlTel(set *telemetry.Set) *ctlTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("epoch_drift_max_rel", "largest relative per-client rate drift vs the standing decision, this epoch")
	return &ctlTel{
		set:      set,
		resolves: set.Counter("epoch_resolves_total"),
		skips:    set.Counter("epoch_skips_total"),
		drift:    set.Gauge("epoch_drift_max_rel"),
		solveDur: set.Histogram("epoch_solve_seconds", telemetry.DurationBuckets),
	}
}

// Policy decides whether the drift since the last decision warrants a new
// cloud-level allocation (paper Section III: "some small changes … can be
// effectively tracked and responded to by proper reaction of request
// dispatchers in the clusters; large changes cannot be handled by the
// local managers").
type Policy interface {
	// ShouldResolve compares the rates at the last decision with the
	// current rates.
	ShouldResolve(lastDecision, current []float64) bool
}

// ThresholdPolicy re-decides when any client's rate moved by more than
// RelChange relative to the last decision.
type ThresholdPolicy struct {
	RelChange float64
}

// ShouldResolve implements Policy.
func (p ThresholdPolicy) ShouldResolve(lastDecision, current []float64) bool {
	for i := range current {
		base := lastDecision[i]
		if base <= 0 {
			return true
		}
		diff := current[i] - base
		if diff < 0 {
			diff = -diff
		}
		if diff/base > p.RelChange {
			return true
		}
	}
	return false
}

// PeriodicPolicy re-decides every Every epochs regardless of drift. The
// counter lives on the policy, so use it by pointer.
type PeriodicPolicy struct {
	Every int

	count int
}

// ShouldResolve implements Policy; it is called once per epoch.
func (p *PeriodicPolicy) ShouldResolve(lastDecision, current []float64) bool {
	p.count++
	if p.Every <= 1 || p.count >= p.Every {
		p.count = 0
		return true
	}
	return false
}

// AlwaysPolicy re-decides every epoch (the upper bound on decision cost).
type AlwaysPolicy struct{}

// ShouldResolve implements Policy.
func (AlwaysPolicy) ShouldResolve(_, _ []float64) bool { return true }

// NeverPolicy never re-decides after the first epoch (the "set and
// forget" lower bound).
type NeverPolicy struct{}

// ShouldResolve implements Policy.
func (NeverPolicy) ShouldResolve(_, _ []float64) bool { return false }

// ControllerConfig tunes a trace-driven controller run.
type ControllerConfig struct {
	Policy Policy
	// WarmStart re-solves from the previous allocation when re-deciding.
	WarmStart bool
	// Solver configures the allocator.
	Solver core.Config
	// Predictor forecasts the rates the allocator provisions for; nil
	// means an oracle (the actual rates, the paper's implicit assumption).
	// The policy also sees the forecast, mirroring a real deployment where
	// the actual rates are only known in hindsight.
	Predictor predict.Predictor
	// Telemetry, when non-nil, records drift magnitudes, resolve/skip
	// decisions, solve latency and per-epoch spans. It is also handed to
	// the solver unless Solver.Telemetry is already set.
	Telemetry *telemetry.Set
}

// DefaultControllerConfig re-decides on >20% drift with warm starts.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Policy:    ThresholdPolicy{RelChange: 0.2},
		WarmStart: true,
		Solver:    core.DefaultConfig(),
	}
}

// Step is one epoch of a controller run.
type Step struct {
	Epoch            int
	Resolved         bool
	RealizedProfit   float64
	SaturatedClients int
	SolveTime        time.Duration
	// Drift is the largest relative per-client rate change versus the
	// standing decision (0 on the first epoch, when there is none).
	Drift float64
}

// maxRelDrift returns the largest |current-base|/base over clients; a
// non-positive base counts as unbounded drift (reported as 1).
func maxRelDrift(base, current []float64) float64 {
	var max float64
	for i := range current {
		b := base[i]
		if b <= 0 {
			if current[i] > 0 && max < 1 {
				max = 1
			}
			continue
		}
		d := (current[i] - b) / b
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// ControllerSummary aggregates a run.
type ControllerSummary struct {
	Steps          []Step
	TotalProfit    float64
	Decisions      int
	TotalSolveTime time.Duration
}

// RunController replays a rate trace against the decision policy: each
// epoch the actual rates change; the policy decides whether to pay for a
// new cloud-level allocation or keep the standing one (whose shares the
// cluster dispatchers keep using). Realized profit is always priced at
// the actual rates.
func RunController(scen *model.Scenario, tr Trace, cfg ControllerConfig) (ControllerSummary, error) {
	if cfg.Policy == nil {
		return ControllerSummary{}, errors.New("epoch: nil policy")
	}
	if err := scen.Validate(); err != nil {
		return ControllerSummary{}, fmt.Errorf("epoch: %w", err)
	}
	if err := tr.Validate(scen.NumClients()); err != nil {
		return ControllerSummary{}, err
	}

	tel := newCtlTel(cfg.Telemetry)
	if cfg.Telemetry != nil && cfg.Solver.Telemetry == nil {
		cfg.Solver.Telemetry = cfg.Telemetry
	}

	cur := CloneScenario(scen)
	var (
		summary      ControllerSummary
		current      *alloc.Allocation
		lastDecision = make([]float64, scen.NumClients())
	)
	for e, rates := range tr {
		// The allocator and policy work from the forecast; realized profit
		// is always priced at the actual rates.
		forecast := rates
		if cfg.Predictor != nil && e > 0 {
			if f := cfg.Predictor.Predict(); len(f) == len(rates) {
				forecast = f
			}
		}
		for i := range cur.Clients {
			cur.Clients[i].ArrivalRate = rates[i]
			cur.Clients[i].PredictedRate = forecast[i]
		}
		step := Step{Epoch: e}
		if current != nil {
			step.Drift = maxRelDrift(lastDecision, forecast)
		}
		var sp telemetry.Span
		ctx := context.Background()
		if tel != nil {
			// Root span per epoch: the solver's solve/solve_from spans
			// below become its children, so one trace covers the whole
			// step (drift check, solve, realization).
			sp, ctx = tel.set.StartCtx(ctx, "epoch.step")
			sp.Attr("epoch", e)
			tel.drift.Set(step.Drift)
		}
		if current == nil || cfg.Policy.ShouldResolve(lastDecision, forecast) {
			solver, err := core.NewSolver(cur, cfg.Solver)
			if err != nil {
				return ControllerSummary{}, err
			}
			start := time.Now()
			var a *alloc.Allocation
			if cfg.WarmStart && current != nil {
				a, _, err = solver.SolveFromCtx(ctx, current)
			} else {
				a, _, err = solver.SolveCtx(ctx)
			}
			if err != nil {
				return ControllerSummary{}, err
			}
			step.SolveTime = time.Since(start)
			step.Resolved = true
			summary.Decisions++
			summary.TotalSolveTime += step.SolveTime
			current = a
			copy(lastDecision, forecast)
		}
		step.RealizedProfit, step.SaturatedClients = Realize(cur, current)
		summary.TotalProfit += step.RealizedProfit
		summary.Steps = append(summary.Steps, step)
		if tel != nil {
			if step.Resolved {
				tel.resolves.Inc()
				tel.solveDur.Observe(step.SolveTime.Seconds())
			} else {
				tel.skips.Inc()
			}
			sp.Attr("drift", step.Drift)
			sp.Attr("resolved", step.Resolved)
			sp.Attr("profit", step.RealizedProfit)
			sp.End()
		}
		if cfg.Predictor != nil {
			if err := cfg.Predictor.Observe(rates); err != nil {
				return ControllerSummary{}, fmt.Errorf("epoch: predictor: %w", err)
			}
		}
	}
	return summary, nil
}

package epoch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func genScenario(t *testing.T, n int, seed int64) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

func TestRandomWalkProcess(t *testing.T) {
	p := RandomWalk{Sigma: 0.2, Min: 0.5, Max: 4}
	rng := rand.New(rand.NewSource(1))
	rate := 2.0
	for i := 0; i < 1000; i++ {
		rate = p.Next(rng, rate)
		if rate < 0.5 || rate > 4 {
			t.Fatalf("rate %v escaped [0.5, 4]", rate)
		}
	}
}

func TestBurstProcess(t *testing.T) {
	always := Burst{Prob: 1, Factor: 3, Min: 0.1, Max: 100}
	rng := rand.New(rand.NewSource(1))
	if got := always.Next(rng, 2); math.Abs(got-6) > 1e-12 {
		t.Fatalf("burst rate = %v, want 6", got)
	}
	never := Burst{Prob: 0, Factor: 3, Min: 0.1, Max: 100}
	if got := never.Next(rng, 2); got != 2 {
		t.Fatalf("no-burst rate = %v, want 2", got)
	}
	clamped := Burst{Prob: 1, Factor: 100, Min: 0.1, Max: 5}
	if got := clamped.Next(rng, 2); got != 5 {
		t.Fatalf("clamped rate = %v, want 5", got)
	}
}

func TestRunEpochsWarmStart(t *testing.T) {
	scen := genScenario(t, 25, 1)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	results, err := Run(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for e, r := range results {
		if r.Epoch != e {
			t.Fatalf("epoch numbering broken: %+v", r)
		}
		if r.PlannedProfit <= 0 {
			t.Fatalf("epoch %d planned profit %v", e, r.PlannedProfit)
		}
		if r.ActiveServers <= 0 {
			t.Fatalf("epoch %d active servers %d", e, r.ActiveServers)
		}
		if r.SolveTime <= 0 {
			t.Fatalf("epoch %d solve time %v", e, r.SolveTime)
		}
	}
	// With perfect prediction (lag 0), realized ≈ planned in every epoch.
	for e, r := range results {
		if r.SaturatedClients != 0 {
			t.Fatalf("epoch %d: %d saturated clients with perfect prediction", e, r.SaturatedClients)
		}
		if math.Abs(r.RealizedProfit-r.PlannedProfit) > 1e-6*(1+math.Abs(r.PlannedProfit)) {
			t.Fatalf("epoch %d: realized %v != planned %v with perfect prediction",
				e, r.RealizedProfit, r.PlannedProfit)
		}
	}
	// First epoch has no previous allocation → no migrations counted.
	if results[0].Migrations != 0 {
		t.Fatalf("epoch 0 migrations = %d", results[0].Migrations)
	}
}

func TestRunEpochsPredictionLagHurts(t *testing.T) {
	scen := genScenario(t, 25, 2)
	perfect := DefaultConfig()
	perfect.Epochs = 8
	perfect.Process = RandomWalk{Sigma: 0.35, Min: 0.2, Max: 9}
	lagged := perfect
	lagged.PredictionLag = 1 // always provisions for last epoch's rates

	rp, err := Run(scen, perfect)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(scen, lagged)
	if err != nil {
		t.Fatal(err)
	}
	var perfectTotal, laggedTotal float64
	var laggedSaturated int
	for e := range rp {
		perfectTotal += rp[e].RealizedProfit
		laggedTotal += rl[e].RealizedProfit
		laggedSaturated += rl[e].SaturatedClients
	}
	if laggedTotal >= perfectTotal {
		t.Fatalf("stale predictions should cost profit: lagged %v >= perfect %v",
			laggedTotal, perfectTotal)
	}
	if laggedSaturated == 0 {
		t.Fatal("strong drift with stale predictions should saturate some clients")
	}
}

func TestRunEpochsWarmVsColdQuality(t *testing.T) {
	scen := genScenario(t, 20, 3)
	warm := DefaultConfig()
	warm.Epochs = 6
	cold := warm
	cold.WarmStart = false

	rw, err := Run(scen, warm)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(scen, cold)
	if err != nil {
		t.Fatal(err)
	}
	var warmTotal, coldTotal float64
	var warmMigrations, coldMigrations int
	for e := range rw {
		warmTotal += rw[e].PlannedProfit
		coldTotal += rc[e].PlannedProfit
		warmMigrations += rw[e].Migrations
		coldMigrations += rc[e].Migrations
	}
	// Warm starts must stay competitive on profit...
	if warmTotal < 0.9*coldTotal {
		t.Fatalf("warm-start profit %v far below cold %v", warmTotal, coldTotal)
	}
	// ...and cause no more migration churn than re-solving from scratch.
	if warmMigrations > coldMigrations {
		t.Fatalf("warm-start migrations %d exceed cold %d", warmMigrations, coldMigrations)
	}
}

func TestRunValidation(t *testing.T) {
	scen := genScenario(t, 5, 4)
	cfg := DefaultConfig()
	cfg.Epochs = 0
	if _, err := Run(scen, cfg); err == nil {
		t.Fatal("zero epochs accepted")
	}
	cfg = DefaultConfig()
	cfg.Process = nil
	if _, err := Run(scen, cfg); err == nil {
		t.Fatal("nil process accepted")
	}
	cfg = DefaultConfig()
	cfg.PredictionLag = 2
	if _, err := Run(scen, cfg); err == nil {
		t.Fatal("lag > 1 accepted")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	scen := genScenario(t, 10, 5)
	before := scen.Clients[0].ArrivalRate
	cfg := DefaultConfig()
	cfg.Epochs = 3
	if _, err := Run(scen, cfg); err != nil {
		t.Fatal(err)
	}
	if scen.Clients[0].ArrivalRate != before {
		t.Fatal("Run mutated the caller's scenario")
	}
}

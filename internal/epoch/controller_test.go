package epoch

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/predict"
)

func baseRates(scenClients int) []float64 {
	rates := make([]float64, scenClients)
	for i := range rates {
		rates[i] = 1 + float64(i%4)*0.5
	}
	return rates
}

func TestGenerateTraceShapes(t *testing.T) {
	base := baseRates(10)
	tr, err := GenerateTrace(base, 12, []Pattern{Diurnal{Period: 12, Amplitude: 0.5}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(10); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 12 {
		t.Fatalf("epochs = %d", len(tr))
	}
	// A diurnal pattern with no noise peaks around Period/4.
	if tr[3][0] <= tr[0][0] {
		t.Fatalf("diurnal peak missing: epoch0 %v epoch3 %v", tr[0][0], tr[3][0])
	}
	// Same seed reproduces; different seed with noise differs.
	tr2, err := GenerateTrace(base, 12, []Pattern{Diurnal{Period: 12, Amplitude: 0.5}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := range tr {
		for i := range tr[e] {
			if tr[e][i] != tr2[e][i] {
				t.Fatal("same inputs, different trace")
			}
		}
	}
}

func TestGenerateTraceFlashCrowd(t *testing.T) {
	base := baseRates(4)
	tr, err := GenerateTrace(base, 10, []Pattern{FlashCrowd{At: 4, Duration: 2, Boost: 3}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr[4][0]-3*base[0]) > 1e-9 || math.Abs(tr[5][0]-3*base[0]) > 1e-9 {
		t.Fatalf("flash crowd missing: %v", tr[4])
	}
	if math.Abs(tr[3][0]-base[0]) > 1e-9 || math.Abs(tr[6][0]-base[0]) > 1e-9 {
		t.Fatalf("flash crowd leaked outside window: %v %v", tr[3][0], tr[6][0])
	}
	// Every=2 hits only even clients.
	tr2, err := GenerateTrace(base, 10, []Pattern{FlashCrowd{At: 0, Duration: 1, Boost: 2, Every: 2}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr2[0][0] != 2*base[0] || tr2[0][1] != base[1] {
		t.Fatalf("selective crowd wrong: %v", tr2[0])
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	if _, err := GenerateTrace(nil, 5, nil, 0, 1); err == nil {
		t.Fatal("empty base accepted")
	}
	if _, err := GenerateTrace([]float64{1}, 0, nil, 0, 1); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := GenerateTrace([]float64{1}, 5, nil, -1, 1); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(baseRates(5), 6, nil, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("epochs %d != %d", len(got), len(tr))
	}
	for e := range tr {
		for i := range tr[e] {
			if math.Abs(got[e][i]-tr[e][i]) > 1e-12 {
				t.Fatalf("trace[%d][%d] %v != %v", e, i, got[e][i], tr[e][i])
			}
		}
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n")); err == nil {
		t.Fatal("garbage CSV accepted")
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := ThresholdPolicy{RelChange: 0.2}
	if p.ShouldResolve([]float64{1, 1}, []float64{1.1, 1}) {
		t.Fatal("10% drift should not trigger a 20% policy")
	}
	if !p.ShouldResolve([]float64{1, 1}, []float64{1, 1.5}) {
		t.Fatal("50% drift must trigger")
	}
	if !p.ShouldResolve([]float64{0, 1}, []float64{1, 1}) {
		t.Fatal("zero baseline must trigger")
	}
}

func TestPeriodicPolicy(t *testing.T) {
	p := &PeriodicPolicy{Every: 3}
	var fired int
	for e := 0; e < 9; e++ {
		if p.ShouldResolve(nil, nil) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times in 9 epochs with Every=3", fired)
	}
}

func TestRunControllerPolicies(t *testing.T) {
	scen := genScenario(t, 20, 41)
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	tr, err := GenerateTrace(base, 8, []Pattern{Diurnal{Period: 8, Amplitude: 0.4}}, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}

	always := DefaultControllerConfig()
	always.Policy = AlwaysPolicy{}
	sAlways, err := RunController(scen, tr, always)
	if err != nil {
		t.Fatal(err)
	}
	if sAlways.Decisions != 8 {
		t.Fatalf("always policy decided %d times", sAlways.Decisions)
	}

	never := DefaultControllerConfig()
	never.Policy = NeverPolicy{}
	sNever, err := RunController(scen, tr, never)
	if err != nil {
		t.Fatal(err)
	}
	if sNever.Decisions != 1 {
		t.Fatalf("never policy decided %d times (first epoch always decides)", sNever.Decisions)
	}

	thresh := DefaultControllerConfig()
	thresh.Policy = ThresholdPolicy{RelChange: 0.3}
	sThresh, err := RunController(scen, tr, thresh)
	if err != nil {
		t.Fatal(err)
	}
	if sThresh.Decisions <= 1 || sThresh.Decisions >= 8 {
		t.Fatalf("threshold policy decided %d times, want strictly between", sThresh.Decisions)
	}

	// More decisions must not produce less profit than never re-deciding,
	// and the threshold policy should sit between the extremes on solve
	// effort.
	if sAlways.TotalProfit < sNever.TotalProfit-1e-6 {
		t.Fatalf("re-deciding every epoch (%v) earned less than never (%v)",
			sAlways.TotalProfit, sNever.TotalProfit)
	}
	if sThresh.TotalSolveTime > sAlways.TotalSolveTime {
		t.Fatalf("threshold spent more solve time than always: %v > %v",
			sThresh.TotalSolveTime, sAlways.TotalSolveTime)
	}
	if len(sThresh.Steps) != 8 {
		t.Fatalf("steps = %d", len(sThresh.Steps))
	}
}

func TestRunControllerValidation(t *testing.T) {
	scen := genScenario(t, 5, 42)
	tr, err := GenerateTrace(baseRates(5), 3, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultControllerConfig()
	cfg.Policy = nil
	if _, err := RunController(scen, tr, cfg); err == nil {
		t.Fatal("nil policy accepted")
	}
	badTr, err := GenerateTrace(baseRates(4), 3, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunController(scen, badTr, DefaultControllerConfig()); err == nil {
		t.Fatal("shape-mismatched trace accepted")
	}
}

func TestRunControllerWithPredictor(t *testing.T) {
	scen := genScenario(t, 20, 43)
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	// A strong diurnal swing: forecast quality matters.
	tr, err := GenerateTrace(base, 10, []Pattern{Diurnal{Period: 10, Amplitude: 0.5}}, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}

	oracle := DefaultControllerConfig()
	oracle.Policy = AlwaysPolicy{}
	sOracle, err := RunController(scen, tr, oracle)
	if err != nil {
		t.Fatal(err)
	}

	naive := DefaultControllerConfig()
	naive.Policy = AlwaysPolicy{}
	naive.Predictor = predict.NewLastValue()
	sNaive, err := RunController(scen, tr, naive)
	if err != nil {
		t.Fatal(err)
	}

	// The oracle knows each epoch's rates exactly; a last-value forecast
	// must not beat it.
	if sNaive.TotalProfit > sOracle.TotalProfit+1e-6 {
		t.Fatalf("naive forecast (%v) beat the oracle (%v)", sNaive.TotalProfit, sOracle.TotalProfit)
	}
	if sNaive.Decisions == 0 || len(sNaive.Steps) != 10 {
		t.Fatalf("predictor run malformed: %+v", sNaive)
	}
}

package epoch

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// A Trace is a per-epoch, per-client matrix of actual arrival rates:
// Trace[e][i] is client i's rate during epoch e.
type Trace [][]float64

// Validate checks the trace shape against a client count.
func (tr Trace) Validate(numClients int) error {
	if len(tr) == 0 {
		return fmt.Errorf("epoch: empty trace")
	}
	for e, row := range tr {
		if len(row) != numClients {
			return fmt.Errorf("epoch: trace epoch %d has %d clients, want %d", e, len(row), numClients)
		}
		for i, r := range row {
			if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("epoch: trace[%d][%d] = %v", e, i, r)
			}
		}
	}
	return nil
}

// Pattern shapes a client's rate over epochs, multiplying its base rate.
type Pattern interface {
	// Factor returns the multiplicative rate factor at epoch e for client i.
	Factor(e int, client int) float64
}

// Diurnal is a day/night sinusoid: factor = 1 + Amplitude·sin(2π(e+Phase)/Period).
type Diurnal struct {
	Period    int
	Amplitude float64
	// Phase staggers clients: client i is shifted by Phase·i epochs.
	Phase float64
}

// Factor implements Pattern.
func (p Diurnal) Factor(e, client int) float64 {
	if p.Period <= 0 {
		return 1
	}
	x := 2 * math.Pi * (float64(e) + p.Phase*float64(client)) / float64(p.Period)
	f := 1 + p.Amplitude*math.Sin(x)
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// FlashCrowd multiplies the rate by Factor for epochs in [At, At+Duration).
type FlashCrowd struct {
	At       int
	Duration int
	Boost    float64
	// Clients restricts the crowd to client indices i with i%Every == 0;
	// Every ≤ 1 hits everyone.
	Every int
}

// Factor implements Pattern.
func (p FlashCrowd) Factor(e, client int) float64 {
	if e < p.At || e >= p.At+p.Duration {
		return 1
	}
	if p.Every > 1 && client%p.Every != 0 {
		return 1
	}
	return p.Boost
}

// GenerateTrace builds a trace for the given base rates: per epoch, the
// product of all pattern factors times multiplicative lognormal noise.
func GenerateTrace(base []float64, epochs int, patterns []Pattern, noiseSigma float64, seed int64) (Trace, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("epoch: epochs = %d", epochs)
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("epoch: no base rates")
	}
	if noiseSigma < 0 {
		return nil, fmt.Errorf("epoch: noiseSigma = %v", noiseSigma)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := make(Trace, epochs)
	for e := 0; e < epochs; e++ {
		row := make([]float64, len(base))
		for i, b := range base {
			f := 1.0
			for _, p := range patterns {
				f *= p.Factor(e, i)
			}
			if noiseSigma > 0 {
				f *= math.Exp(rng.NormFloat64() * noiseSigma)
			}
			r := b * f
			if r < 1e-6 {
				r = 1e-6
			}
			row[i] = r
		}
		tr[e] = row
	}
	return tr, nil
}

// WriteCSV serializes the trace, one epoch per row.
func (tr Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, row := range tr {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("epoch: write trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("epoch: write trace: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	var tr Trace
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("epoch: read trace: %w", err)
		}
		row := make([]float64, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("epoch: read trace: %w", err)
			}
			row[i] = v
		}
		tr = append(tr, row)
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("epoch: empty trace")
	}
	return tr, nil
}

// Package epoch runs the allocator across decision epochs (paper Section
// III: the resource allocation problem is re-solved each decision epoch
// as client request rates drift; small changes are absorbed by cluster
// dispatchers, large ones trigger a new cloud-level decision).
//
// Each epoch mutates the client arrival rates with a configurable
// stochastic process, re-solves either warm (from the previous epoch's
// allocation, as the paper's pseudo-code does) or cold (from scratch),
// and measures realized profit under the *actual* rates — including the
// SLA damage when the drift saturates previously adequate shares.
package epoch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
)

// RateProcess evolves a client's arrival rate between epochs.
type RateProcess interface {
	// Next returns the new rate given the current one.
	Next(rng *rand.Rand, current float64) float64
}

// RandomWalk multiplies the rate by exp(N(0,Sigma)) and clamps to
// [Min, Max].
type RandomWalk struct {
	Sigma float64
	Min   float64
	Max   float64
}

// Next implements RateProcess.
func (p RandomWalk) Next(rng *rand.Rand, current float64) float64 {
	next := current * math.Exp(rng.NormFloat64()*p.Sigma)
	return clamp(next, p.Min, p.Max)
}

// Burst keeps the rate unless a burst fires (probability Prob), which
// multiplies it by Factor for one epoch; clamped to [Min, Max].
type Burst struct {
	Prob   float64
	Factor float64
	Min    float64
	Max    float64
}

// Next implements RateProcess.
func (p Burst) Next(rng *rand.Rand, current float64) float64 {
	if rng.Float64() < p.Prob {
		return clamp(current*p.Factor, p.Min, p.Max)
	}
	return clamp(current, p.Min, p.Max)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if hi > 0 && x > hi {
		return hi
	}
	return x
}

// Config controls an epoch run.
type Config struct {
	// Epochs is the number of decision epochs to simulate.
	Epochs int
	// Process drifts every client's rate between epochs.
	Process RateProcess
	// WarmStart re-solves from the previous epoch's allocation (the
	// paper's approach); false re-solves from scratch every epoch.
	WarmStart bool
	// PredictionLag blends the allocator's predicted rate: the epoch-k
	// prediction is lag·(previous actual) + (1−lag)·(new actual). 0 means
	// perfect prediction; 1 means the allocator always provisions for
	// last epoch's rates.
	PredictionLag float64
	// Seed drives the drift.
	Seed int64
	// Solver configures the allocator.
	Solver core.Config
}

// DefaultConfig drifts rates with a 10% random walk over 20 epochs,
// warm-starting like the paper.
func DefaultConfig() Config {
	return Config{
		Epochs:    20,
		Process:   RandomWalk{Sigma: 0.1, Min: 0.1, Max: 10},
		WarmStart: true,
		Seed:      1,
		Solver:    core.DefaultConfig(),
	}
}

// Result is one epoch's outcome.
type Result struct {
	Epoch int
	// PlannedProfit is the allocator's analytic profit at its predicted
	// rates.
	PlannedProfit float64
	// RealizedProfit re-prices the allocation at the actual rates
	// (saturated clients earn nothing).
	RealizedProfit float64
	// SaturatedClients had at least one portion overwhelmed by the actual
	// rates.
	SaturatedClients int
	// Migrations counts clients whose server set changed vs the previous
	// epoch.
	Migrations int
	// ActiveServers after this epoch's decision.
	ActiveServers int
	// SolveTime of the epoch's decision.
	SolveTime time.Duration
}

// Run simulates the epochs on (a copy of) the scenario.
func Run(scen *model.Scenario, cfg Config) ([]Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("epoch: Epochs = %d", cfg.Epochs)
	}
	if cfg.Process == nil {
		return nil, errors.New("epoch: nil rate process")
	}
	if cfg.PredictionLag < 0 || cfg.PredictionLag > 1 {
		return nil, fmt.Errorf("epoch: PredictionLag = %v", cfg.PredictionLag)
	}
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("epoch: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Work on a private copy: epochs mutate client rates.
	cur := CloneScenario(scen)
	var (
		results []Result
		prev    *alloc.Allocation
	)
	for e := 0; e < cfg.Epochs; e++ {
		if e > 0 {
			drift(cur, cfg, rng)
		}
		solver, err := core.NewSolver(cur, cfg.Solver)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var a *alloc.Allocation
		if cfg.WarmStart && prev != nil {
			a, _, err = solver.SolveFrom(prev)
		} else {
			a, _, err = solver.Solve()
		}
		if err != nil {
			return nil, err
		}
		res := Result{
			Epoch:         e,
			SolveTime:     time.Since(start),
			PlannedProfit: a.Profit(),
			ActiveServers: a.NumActiveServers(),
		}
		res.RealizedProfit, res.SaturatedClients = Realize(cur, a)
		if prev != nil {
			res.Migrations = migrations(prev, a)
		}
		results = append(results, res)
		prev = a
	}
	return results, nil
}

// drift advances every client's actual rate and sets the predicted rate
// the allocator will see.
func drift(scen *model.Scenario, cfg Config, rng *rand.Rand) {
	for i := range scen.Clients {
		cl := &scen.Clients[i]
		prevActual := cl.ArrivalRate
		cl.ArrivalRate = cfg.Process.Next(rng, cl.ArrivalRate)
		cl.PredictedRate = cfg.PredictionLag*prevActual + (1-cfg.PredictionLag)*cl.ArrivalRate
	}
}

// Realize prices the allocation at the actual arrival rates: response
// times are recomputed with the actual per-portion loads; a saturated
// portion voids the client's revenue for the epoch. Returns the realized
// profit and the number of saturated clients.
func Realize(scen *model.Scenario, a *alloc.Allocation) (float64, int) {
	var profit float64
	var saturated int
	actualLoad := make([]float64, scen.Cloud.NumServers())
	for i := range scen.Clients {
		id := model.ClientID(i)
		if !a.Assigned(id) {
			continue
		}
		cl := &scen.Clients[i]
		var resp float64
		ok := true
		for _, p := range a.Portions(id) {
			class := scen.Cloud.ServerClass(p.Server)
			rate := p.Alpha * cl.ArrivalRate
			actualLoad[p.Server] += queueing.LoadFraction(class.ProcCap, cl.ProcTime, rate)
			d, err := queueing.TandemDelay(
				queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
				queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
				queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
				rate,
			)
			if err != nil {
				ok = false
				break
			}
			resp += p.Alpha * d
		}
		if !ok {
			saturated++
			continue
		}
		profit += cl.ArrivalRate * scen.Utility(id).Value(resp)
	}
	// The energy cost is paid at the actual utilization, not the planned
	// one. A saturated portion still occupies its full GPS share; charge
	// its utilization capped at the share itself.
	for j := range scen.Cloud.Servers {
		id := model.ServerID(j)
		if !a.Active(id) {
			continue
		}
		class := scen.Cloud.ServerClass(id)
		load := actualLoad[j]
		if lim := a.ProcShareUsed(id); load > lim {
			load = lim
		}
		profit -= class.FixedCost + class.UtilizationCost*load
	}
	return profit, saturated
}

// migrations counts clients whose serving-server set changed.
func migrations(prev, next *alloc.Allocation) int {
	var n int
	for i := 0; i < prev.Scenario().NumClients(); i++ {
		id := model.ClientID(i)
		if !sameServers(prev.Portions(id), next.Portions(id)) {
			n++
		}
	}
	return n
}

func sameServers(a, b []alloc.Portion) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[model.ServerID]struct{}, len(a))
	for _, p := range a {
		set[p.Server] = struct{}{}
	}
	for _, p := range b {
		if _, ok := set[p.Server]; !ok {
			return false
		}
	}
	return true
}

// CloneScenario deep-copies a scenario so callers can mutate rates
// without touching the original. It now lives in internal/model (the
// online service needs it without importing epoch); this alias keeps the
// historical epoch-level name working.
func CloneScenario(s *model.Scenario) *model.Scenario {
	return model.CloneScenario(s)
}

//go:build race

package online

// raceEnabled reports whether the race detector is compiled in. The
// allocation-free pin on the decision path gates on it: the detector's
// instrumentation allocates, so the pin only holds in a normal build.
const raceEnabled = true

package online

import (
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/parallel"
)

// ChurnConfig parameterizes the seeded Poisson-churn event stream. The
// stream is a pure function of (scenario, config): the same seed always
// yields the same events, which is what makes service replay tests and
// the benchmark's profit-retention comparison meaningful.
type ChurnConfig struct {
	// Events is the stream length.
	Events int
	// ArriveWeight/DepartWeight/JitterWeight set the per-event kind mix
	// (normalized internally). Arrivals draw from the absent set,
	// departures and jitter from the present set; an empty source set
	// falls back to the others.
	ArriveWeight float64
	DepartWeight float64
	JitterWeight float64
	// JitterSigma is the lognormal σ applied to a client's nominal rate
	// on arrivals and rate changes. Jitter is mean-reverting: every draw
	// multiplies the client's fixed nominal rate, not the previous
	// jittered value, so per-client rates fluctuate around the original
	// workload instead of following a geometric random walk whose
	// variance explodes with stream length.
	JitterSigma float64
	// FlashAt injects a flash crowd at that event index (<0 disables):
	// FlashSize consecutive arrival events at FlashBoost× the base rate.
	FlashAt    int
	FlashSize  int
	FlashBoost float64
	// Seed drives the whole stream via splitmix64-split sub-streams.
	Seed int64
}

// DefaultChurnConfig returns a balanced churn mix: equal arrivals and
// departures (stationary population) with twice as much rate jitter, and
// no flash crowd.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Events:       10000,
		ArriveWeight: 1,
		DepartWeight: 1,
		JitterWeight: 2,
		JitterSigma:  0.25,
		FlashAt:      -1,
		FlashSize:    0,
		FlashBoost:   1.5,
		Seed:         1,
	}
}

// Churn generates the event stream. Not safe for concurrent use — it is
// the single producer feeding Service.Decide.
type Churn struct {
	cfg      ChurnConfig
	rng      *rand.Rand
	nom      []float64 // per-client nominal rate the jitter multiplies
	base     []float64 // per-client current offered rate (last jitter draw)
	present  []model.ClientID
	absent   []model.ClientID
	pos      []int // client → position in its current set
	inPres   []bool
	emitted  int
	flashRem int
}

// NewChurn builds a generator over the scenario's client population.
// Clients with positive rates start present at those rates; zero-rate
// clients start absent. Absent clients' base rates are sampled from the
// present population's empirical range so arrivals look like the
// original workload.
func NewChurn(scen *model.Scenario, cfg ChurnConfig) *Churn {
	n := scen.NumClients()
	c := &Churn{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(parallel.SplitSeed(cfg.Seed, 0xC0FFEE))),
		nom:    make([]float64, n),
		base:   make([]float64, n),
		pos:    make([]int, n),
		inPres: make([]bool, n),
	}
	var minRate, maxRate float64 = math.Inf(1), 0
	for i := range scen.Clients {
		if r := scen.Clients[i].PredictedRate; r > 0 {
			c.nom[i] = r
			minRate = math.Min(minRate, r)
			maxRate = math.Max(maxRate, r)
		}
	}
	if math.IsInf(minRate, 1) {
		minRate, maxRate = 0.5, 4.5 // all-absent population: workload defaults
	}
	for i := range scen.Clients {
		id := model.ClientID(i)
		if c.nom[i] > 0 {
			c.base[i] = c.nom[i]
			c.inPres[i] = true
			c.pos[i] = len(c.present)
			c.present = append(c.present, id)
		} else {
			c.nom[i] = minRate + c.rng.Float64()*(maxRate-minRate)
			c.pos[i] = len(c.absent)
			c.absent = append(c.absent, id)
		}
	}
	return c
}

// Present returns the number of currently present clients.
func (c *Churn) Present() int { return len(c.present) }

// Rates writes each present client's current offered rate into out
// (len ≥ NumClients; absent clients get 0). The benchmark uses it to
// build the "true final scenario" for the cold re-solve comparison.
func (c *Churn) Rates(out []float64) {
	for i := range out {
		out[i] = 0
	}
	for _, id := range c.present {
		out[id] = c.base[id]
	}
}

// Next returns the next event, or ok=false when the stream is exhausted.
func (c *Churn) Next() (Event, bool) {
	if c.emitted >= c.cfg.Events {
		return Event{}, false
	}
	if c.cfg.FlashAt >= 0 && c.emitted == c.cfg.FlashAt {
		c.flashRem = c.cfg.FlashSize
	}
	c.emitted++

	if c.flashRem > 0 && len(c.absent) > 0 {
		c.flashRem--
		id := c.takeAbsent()
		c.nom[id] *= math.Max(c.cfg.FlashBoost, 1)
		rate := c.jitter(c.nom[id])
		c.putPresent(id, rate)
		return Event{Kind: EventArrive, Client: id, Rate: rate}, true
	}
	c.flashRem = 0

	wa, wd, wj := c.cfg.ArriveWeight, c.cfg.DepartWeight, c.cfg.JitterWeight
	if len(c.absent) == 0 {
		wa = 0
	}
	if len(c.present) == 0 {
		wd, wj = 0, 0
	}
	total := wa + wd + wj
	if total == 0 {
		// Degenerate config/population: emit an idempotent no-op event.
		return Event{Kind: EventDepart, Client: 0}, true
	}
	u := c.rng.Float64() * total
	switch {
	case u < wa:
		id := c.takeAbsent()
		rate := c.jitter(c.nom[id])
		c.putPresent(id, rate)
		return Event{Kind: EventArrive, Client: id, Rate: rate}, true
	case u < wa+wd:
		id := c.takePresent()
		c.putAbsent(id)
		return Event{Kind: EventDepart, Client: id}, true
	default:
		id := c.present[c.rng.Intn(len(c.present))]
		rate := c.jitter(c.nom[id])
		c.base[id] = rate
		return Event{Kind: EventRateChange, Client: id, Rate: rate}, true
	}
}

// jitter applies a lognormal multiplier with σ = JitterSigma.
func (c *Churn) jitter(base float64) float64 {
	if c.cfg.JitterSigma <= 0 {
		return base
	}
	return base * math.Exp(c.rng.NormFloat64()*c.cfg.JitterSigma)
}

// takeAbsent removes and returns a uniformly random absent client.
func (c *Churn) takeAbsent() model.ClientID {
	idx := c.rng.Intn(len(c.absent))
	id := c.absent[idx]
	last := len(c.absent) - 1
	c.absent[idx] = c.absent[last]
	c.pos[c.absent[idx]] = idx
	c.absent = c.absent[:last]
	return id
}

// takePresent removes and returns a uniformly random present client.
func (c *Churn) takePresent() model.ClientID {
	idx := c.rng.Intn(len(c.present))
	id := c.present[idx]
	last := len(c.present) - 1
	c.present[idx] = c.present[last]
	c.pos[c.present[idx]] = idx
	c.present = c.present[:last]
	return id
}

func (c *Churn) putPresent(id model.ClientID, rate float64) {
	c.base[id] = rate
	c.inPres[id] = true
	c.pos[id] = len(c.present)
	c.present = append(c.present, id)
}

func (c *Churn) putAbsent(id model.ClientID) {
	c.inPres[id] = false
	c.pos[id] = len(c.absent)
	c.absent = append(c.absent, id)
}

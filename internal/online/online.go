// Package online is the streaming serving path: an event-driven
// allocation service that admits, places, and evicts clients as they
// arrive, depart, and change rates — without re-running the batch solver
// per event.
//
// # Architecture
//
// The service keeps two planes of state:
//
//   - A committed plane: an immutable snapshot (allocation + refreshed
//     candidate index + per-cluster committed rates and commit
//     thresholds) published through an atomic pointer, RCU-style.
//     Decisions read it lock-free; it only changes wholesale at commit.
//   - A pending plane: per-client desired rates and per-cluster delta
//     accumulators, all atomics. Every decision folds its load change
//     into the accumulators; self-canceling traffic (an arrival followed
//     by a departure, jitter up then down) nets out to zero there and
//     never touches the solver.
//
// A cluster's accumulated |net Δλ̃| crossing its commit threshold
// triggers a commit: the solver lock is taken, all desired rates are
// written into the owned scenario, a warm-started incremental re-solve
// (core.SolveFromCtx) replays the previous allocation and re-places the
// drift, a fresh index is built, and the new snapshot is published. The
// threshold is deferred-commit write filtering: the hot path pays a few
// atomic CAS loops per event, and the expensive ledger mutation is
// amortized over the many events a threshold's worth of drift contains.
//
// # Determinism
//
// In the default synchronous mode the commit runs inline on the event
// that crossed the threshold, so the full decision stream is a pure
// function of (initial scenario, event sequence, solver seed) — replay
// the events and every admission, placement, and commit lands
// identically. Background mode trades that for latency: commits run on
// one background goroutine while decisions continue against the old
// snapshot, so the mapping from events to snapshot versions depends on
// commit timing (each individual decision is still correct against the
// snapshot it read).
//
// # Races avoided by construction
//
// The commit path mutates only the rate fields of the owned scenario's
// clients. The decision path never reads those fields: it prices
// placements with Index.GainUpperBoundAt, which takes the rates as
// arguments and reads only immutable client constants (ProcTime,
// CommTime, DiskNeed, Class) plus the frozen snapshot's aggregates.
package online

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// EventKind discriminates stream events.
type EventKind uint8

const (
	// EventArrive offers a (previously absent) client at Event.Rate.
	EventArrive EventKind = iota
	// EventDepart withdraws a present client; Event.Rate is ignored.
	EventDepart
	// EventRateChange moves a present client to Event.Rate. For an
	// absent client it is treated as an arrival.
	EventRateChange
)

// Event is one element of the client churn stream.
type Event struct {
	Kind   EventKind
	Client model.ClientID
	Rate   float64 // offered λ (= λ̃): contract and provisioning rate
}

// Decision is the service's answer to one event.
type Decision struct {
	// Admitted reports whether an arrival was accepted. Departures and
	// rejected arrivals report false.
	Admitted bool
	// Cluster is the advisory placement for an admitted arrival (the
	// cluster whose gain bound won), or the vacated home cluster for a
	// departure. Unassigned (-1) otherwise. The binding placement is
	// decided at commit by the warm re-solve.
	Cluster model.ClusterID
	// Bound is the winning gain upper bound for an admitted arrival.
	Bound float64
	// Committed reports whether this event triggered (and, in
	// synchronous mode, completed) a commit.
	Committed bool
}

// Config parameterizes the service.
type Config struct {
	// Solver configures the commit-time re-solves. Seed fixes the
	// decision stream in synchronous mode; Workers bounds the solver's
	// internal fan-out (internal/parallel).
	Solver core.Config
	// CommitRel is the relative commit threshold: a cluster commits when
	// its |net Δλ̃| reaches CommitRel × the cluster's committed rate.
	CommitRel float64
	// CommitFloor is the absolute threshold floor, in λ̃ units — it
	// governs cold clusters whose committed rate is near zero.
	CommitFloor float64
	// Background moves commits to a dedicated goroutine. Decisions stay
	// lock-free and keep reading the old snapshot during a commit;
	// byte-for-byte replay determinism is no longer guaranteed.
	Background bool
	// Telemetry instruments the service (nil disables). The decision
	// latency histogram uses telemetry.MicroBuckets.
	Telemetry *telemetry.Set
}

// DefaultConfig returns production-shaped defaults: synchronous commits
// at 10% relative drift, and a cheap solver tuned for incremental
// re-solves rather than from-scratch quality.
func DefaultConfig() Config {
	sc := core.DefaultConfig()
	sc.NumInitSolutions = 1
	sc.MaxLocalSearchIters = 1
	// Streaming commits are warm incremental re-solves: index-pruned
	// candidate generation and per-cluster fan-out cut the per-commit
	// latency without changing determinism (both are deterministic for a
	// fixed config; see core.Config.CandidateClusters/Workers).
	sc.CandidateClusters = 2
	sc.Parallel = true
	return Config{
		Solver:      sc,
		CommitRel:   0.10,
		CommitFloor: 1.0,
	}
}

// snapshot is the committed plane: everything a lock-free decision needs,
// immutable once published.
type snapshot struct {
	a  *alloc.Allocation
	ix *alloc.Index
	// clusterRate is the committed Σλ̃ per cluster.
	clusterRate []float64
	// threshold is max(CommitFloor, CommitRel·clusterRate) per cluster.
	threshold []float64
	version   uint64
}

// clusterAcc is one cluster's pending plane: atomic float accumulators
// (CAS on the bit pattern, the telemetry.Gauge technique). net carries
// the signed Δλ̃ the commit threshold watches; pendProc/pendComm carry
// the same deltas converted to share-equivalents (λ̃·t/maxCap) that
// shade the index's headroom; gross counts |Δλ̃| for telemetry only.
type clusterAcc struct {
	net      atomic.Uint64
	pendProc atomic.Uint64
	pendComm atomic.Uint64
	gross    atomic.Uint64
}

// addFloat CAS-adds delta to the float64 stored in u's bits and returns
// the new value.
func addFloat(u *atomic.Uint64, delta float64) float64 {
	for {
		old := u.Load()
		next := math.Float64frombits(old) + delta
		if u.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

func loadFloat(u *atomic.Uint64) float64 { return math.Float64frombits(u.Load()) }

// Service is the online allocation service. Decide is safe for
// concurrent use; construction, Flush, and Close are not concurrent with
// each other.
type Service struct {
	cfg Config

	// mu is the solver lock: held only by commits (and Profit, which
	// reads rates). The decision path never takes it.
	mu     sync.Mutex
	scen   *model.Scenario // owned clone; only rate fields mutate
	solver *core.Solver
	// flushSolver is the full-quality solver Flush commits with: the
	// streaming commits trade solution quality for latency, and the
	// final flush buys the quality back.
	flushSolver *core.Solver

	snap atomic.Pointer[snapshot]

	// desired[i] holds the float bits of client i's currently requested
	// λ̃ (0 = absent or rejected); home[i] the advisory cluster.
	desired []atomic.Uint64
	home    []atomic.Int32

	acc []clusterAcc

	// maxProcCap/maxCommCap normalize rate deltas into the share units
	// GainUpperBoundAt's feasibility screens use. Immutable.
	maxProcCap []float64
	maxCommCap []float64

	// Background commit machinery.
	commitCh chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	// Always-on counters (the telemetry handles below are nil without a
	// Set; the benchmark needs the tallies regardless).
	nDecisions atomic.Int64
	nAdmits    atomic.Int64
	nRejects   atomic.Int64
	nCommits   atomic.Int64

	decisions *telemetry.Counter
	admits    *telemetry.Counter
	rejects   *telemetry.Counter
	commits   *telemetry.Counter
	decideDur *telemetry.Histogram
	commitDur *telemetry.Histogram
	grossRate *telemetry.Gauge
}

// New builds the service: clones the scenario, runs one cold solve for
// the initial committed plane, and (in background mode) starts the
// commit goroutine. Clients with zero rates are absent until they
// arrive.
func New(scen *model.Scenario, cfg Config) (*Service, error) {
	if cfg.CommitRel < 0 || cfg.CommitFloor < 0 {
		return nil, fmt.Errorf("online: negative commit threshold (rel=%v floor=%v)", cfg.CommitRel, cfg.CommitFloor)
	}
	cfg.Solver.Telemetry = cfg.Telemetry
	own := model.CloneScenario(scen)
	solver, err := core.NewSolver(own, cfg.Solver)
	if err != nil {
		return nil, err
	}
	// Flush restores at least the default local-search budget so the
	// final committed allocation is batch-quality even when streaming
	// commits run with a trimmed budget.
	flushCfg := cfg.Solver
	if d := core.DefaultConfig(); flushCfg.MaxLocalSearchIters < d.MaxLocalSearchIters {
		flushCfg.MaxLocalSearchIters = d.MaxLocalSearchIters
	}
	flushSolver, err := core.NewSolver(own, flushCfg)
	if err != nil {
		return nil, err
	}
	numK := own.Cloud.NumClusters()
	s := &Service{
		cfg:         cfg,
		scen:        own,
		solver:      solver,
		flushSolver: flushSolver,
		desired:     make([]atomic.Uint64, own.NumClients()),
		home:        make([]atomic.Int32, own.NumClients()),
		acc:         make([]clusterAcc, numK),
		maxProcCap:  make([]float64, numK),
		maxCommCap:  make([]float64, numK),
	}
	for k := 0; k < numK; k++ {
		for _, j := range own.Cloud.ClusterServers(model.ClusterID(k)) {
			class := own.Cloud.ServerClass(j)
			s.maxProcCap[k] = math.Max(s.maxProcCap[k], class.ProcCap)
			s.maxCommCap[k] = math.Max(s.maxCommCap[k], class.CommCap)
		}
		// A serverless cluster can never be priced; 1 keeps the
		// normalization finite.
		if s.maxProcCap[k] == 0 {
			s.maxProcCap[k] = 1
		}
		if s.maxCommCap[k] == 0 {
			s.maxCommCap[k] = 1
		}
	}
	if tel := cfg.Telemetry; tel != nil {
		s.decisions = tel.Counter("online_decisions_total")
		s.admits = tel.Counter("online_admits_total")
		s.rejects = tel.Counter("online_rejects_total")
		s.commits = tel.Counter("online_commits_total")
		s.decideDur = tel.Histogram("online_decide_seconds", telemetry.MicroBuckets)
		s.commitDur = tel.Histogram("online_commit_seconds", telemetry.DurationBuckets)
		s.grossRate = tel.Gauge("online_gross_pending_rate")
	}

	a, _, err := solver.Solve()
	if err != nil {
		return nil, fmt.Errorf("online: initial solve: %w", err)
	}
	for i := range own.Clients {
		id := model.ClientID(i)
		if own.Clients[i].PredictedRate > 0 {
			s.desired[i].Store(math.Float64bits(own.Clients[i].PredictedRate))
		}
		s.home[i].Store(int32(a.ClusterOf(id)))
	}
	s.publish(a, 1)

	if cfg.Background {
		s.commitCh = make(chan struct{}, 1)
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.commitLoop()
	}
	return s, nil
}

// publish builds the index and derived per-cluster tables for allocation
// a and swaps in the new snapshot. Caller holds mu (or is New).
func (s *Service) publish(a *alloc.Allocation, version uint64) {
	ix := alloc.NewIndex(a)
	ix.Refresh()
	numK := len(s.acc)
	sn := &snapshot{
		a:           a,
		ix:          ix,
		clusterRate: make([]float64, numK),
		threshold:   make([]float64, numK),
		version:     version,
	}
	for i := range s.scen.Clients {
		if k := a.ClusterOf(model.ClientID(i)); k != alloc.Unassigned {
			sn.clusterRate[k] += s.scen.Clients[i].PredictedRate
		}
	}
	for k := 0; k < numK; k++ {
		sn.threshold[k] = math.Max(s.cfg.CommitFloor, s.cfg.CommitRel*sn.clusterRate[k])
	}
	s.snap.Store(sn)
}

// Decide processes one event and returns the decision. Lock-free except
// when it triggers a synchronous commit.
func (s *Service) Decide(ev Event) Decision {
	var t0 time.Time
	if s.decideDur != nil {
		t0 = time.Now()
	}
	s.nDecisions.Add(1)
	s.decisions.Inc()
	var d Decision
	switch ev.Kind {
	case EventArrive:
		d = s.decideOffer(ev.Client, ev.Rate)
	case EventRateChange:
		d = s.decideOffer(ev.Client, ev.Rate)
	case EventDepart:
		d = s.decideDepart(ev.Client)
	}
	if s.decideDur != nil {
		s.decideDur.ObserveSince(t0)
	}
	return d
}

// decideOffer handles arrivals and rate changes: price the offered rate
// against every cluster's shaded gain bound, admit on the best positive
// bound, and fold the load delta into the pending plane.
func (s *Service) decideOffer(i model.ClientID, rate float64) Decision {
	if rate <= 0 {
		// A rate change to zero is a departure in disguise.
		return s.decideDepart(i)
	}
	sn := s.snap.Load()
	cl := &s.scen.Clients[i] // only immutable fields are read below
	bestK := -1
	bestBound := math.Inf(-1)
	for k := range s.acc {
		pend := alloc.PendingLoad{
			Proc: loadFloat(&s.acc[k].pendProc),
			Comm: loadFloat(&s.acc[k].pendComm),
		}
		b, ok := sn.ix.GainUpperBoundAt(i, model.ClusterID(k), rate, rate, pend)
		if ok && b > bestBound {
			bestBound = b
			bestK = k
		}
	}
	admitted := bestK >= 0 && (!s.cfg.Solver.AdmissionControl || bestBound > 0)

	// The desired rate is recorded either way: a rejected offer is
	// waitlisted, and every commit's re-solve reconsiders it under the
	// solver's own admission control (capacity freed by later departures
	// can turn a reject into a placement). The accumulators track only
	// *placed* load, so a waitlisted client contributes no pending load
	// until a commit actually places it.
	old := math.Float64frombits(s.desired[i].Swap(math.Float64bits(rate)))
	h := int(s.home[i].Load())
	var committed bool
	switch {
	case h >= 0:
		// Currently placed (by a commit, or advisory): charge the delta
		// to its home so a later reversal cancels in place.
		committed = s.addPending(h, rate-old, cl)
	case admitted:
		// Newly pending on the advisory cluster: charge the full rate
		// (nothing was charged while absent or waitlisted).
		s.home[i].Store(int32(bestK))
		committed = s.addPending(bestK, rate, cl)
	}
	if !admitted {
		s.nRejects.Add(1)
		s.rejects.Inc()
		return Decision{Cluster: model.ClusterID(alloc.Unassigned), Committed: committed}
	}
	s.nAdmits.Add(1)
	s.admits.Inc()
	return Decision{Admitted: true, Cluster: model.ClusterID(bestK), Bound: bestBound, Committed: committed}
}

// decideDepart withdraws client i's pending load.
func (s *Service) decideDepart(i model.ClientID) Decision {
	old := math.Float64frombits(s.desired[i].Swap(0))
	if old == 0 {
		return Decision{Cluster: model.ClusterID(alloc.Unassigned)}
	}
	k := int(s.home[i].Load())
	s.home[i].Store(int32(alloc.Unassigned))
	if k < 0 {
		// Waitlisted (never placed): nothing was charged, nothing to
		// withdraw.
		return Decision{Cluster: model.ClusterID(alloc.Unassigned)}
	}
	cl := &s.scen.Clients[i]
	committed := s.addPending(k, -old, cl)
	return Decision{Cluster: model.ClusterID(k), Committed: committed}
}

// addPending folds a λ̃ delta for client cl into cluster k's accumulators
// and fires the commit protocol when the net crosses the threshold.
// Reports whether a commit was triggered.
func (s *Service) addPending(k int, delta float64, cl *model.Client) bool {
	acc := &s.acc[k]
	net := addFloat(&acc.net, delta)
	addFloat(&acc.pendProc, delta*cl.ProcTime/s.maxProcCap[k])
	addFloat(&acc.pendComm, delta*cl.CommTime/s.maxCommCap[k])
	addFloat(&acc.gross, math.Abs(delta))
	s.grossRate.Add(math.Abs(delta))
	sn := s.snap.Load()
	if math.Abs(net) < sn.threshold[k] {
		return false
	}
	if s.cfg.Background {
		select {
		case s.commitCh <- struct{}{}:
		default: // a commit is already queued
		}
		return true
	}
	s.commit(s.solver)
	return true
}

// commitLoop is the background committer: one goroutine, one commit at a
// time, triggered by threshold crossings.
func (s *Service) commitLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.commitCh:
			s.commit(s.solver)
		}
	}
}

// commit folds the pending plane into the committed plane: write desired
// rates into the owned scenario, warm re-solve from the previous
// allocation, publish the new snapshot, and subtract exactly the
// accumulator values observed at rate-copy time (deltas raced in by
// concurrent deciders survive as the next pending residue).
func (s *Service) commit(solver *core.Solver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t0 time.Time
	if s.commitDur != nil {
		t0 = time.Now()
	}
	prev := s.snap.Load()

	// Observe the accumulators before copying rates: every decision
	// writes desired first, then the accumulator, so an acc value
	// observed here only covers desired values already visible.
	numK := len(s.acc)
	type accSeen struct{ net, pendProc, pendComm, gross float64 }
	seen := make([]accSeen, numK)
	for k := range s.acc {
		seen[k] = accSeen{
			net:      loadFloat(&s.acc[k].net),
			pendProc: loadFloat(&s.acc[k].pendProc),
			pendComm: loadFloat(&s.acc[k].pendComm),
			gross:    loadFloat(&s.acc[k].gross),
		}
	}
	for i := range s.scen.Clients {
		r := math.Float64frombits(s.desired[i].Load())
		s.scen.Clients[i].ArrivalRate = r
		s.scen.Clients[i].PredictedRate = r
	}

	a, _, err := solver.SolveFromCtx(context.Background(), prev.a)
	if err != nil {
		// A commit failure leaves the previous snapshot standing and the
		// pending plane intact; the next threshold crossing retries.
		s.cfg.Telemetry.Logger().Error("online: commit re-solve failed", "err", err)
		return
	}
	// The re-solve's placements supersede the advisory homes.
	for i := range s.scen.Clients {
		s.home[i].Store(int32(a.ClusterOf(model.ClientID(i))))
	}
	s.publish(a, prev.version+1)
	for k := range s.acc {
		addFloat(&s.acc[k].net, -seen[k].net)
		addFloat(&s.acc[k].pendProc, -seen[k].pendProc)
		addFloat(&s.acc[k].pendComm, -seen[k].pendComm)
		addFloat(&s.acc[k].gross, -seen[k].gross)
		s.grossRate.Add(-seen[k].gross)
	}
	s.nCommits.Add(1)
	s.commits.Inc()
	if s.commitDur != nil {
		s.commitDur.ObserveSince(t0)
	}
}

// Flush forces a commit of all pending deltas regardless of thresholds,
// waiting for it to complete, using the full-quality flush solver. The
// returned allocation is the committed plane after the flush; it remains
// owned by the service.
func (s *Service) Flush() *alloc.Allocation {
	s.commit(s.flushSolver)
	return s.snap.Load().a
}

// Close stops the background committer (no-op in synchronous mode). It
// does not flush.
func (s *Service) Close() {
	if s.done != nil {
		close(s.done)
		s.wg.Wait()
		s.done = nil
	}
}

// Snapshot returns the committed allocation and its version. The
// allocation is shared — treat it as read-only.
func (s *Service) Snapshot() (*alloc.Allocation, uint64) {
	sn := s.snap.Load()
	return sn.a, sn.version
}

// Version returns the committed snapshot version (1 after construction).
func (s *Service) Version() uint64 { return s.snap.Load().version }

// Profit prices the committed allocation at the committed rates. It
// takes the solver lock (rates are read), so it must not be called from
// a latency-critical path.
func (s *Service) Profit() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap.Load().a.Profit()
}

// Decisions returns the number of events processed.
func (s *Service) Decisions() int64 { return s.nDecisions.Load() }

// Admits returns the number of admitted offers (arrivals and rate
// changes).
func (s *Service) Admits() int64 { return s.nAdmits.Load() }

// Rejects returns the number of rejected offers.
func (s *Service) Rejects() int64 { return s.nRejects.Load() }

// Commits returns the number of completed commits (Flush included).
func (s *Service) Commits() int64 { return s.nCommits.Load() }

// Scenario returns the service's owned scenario. Rates reflect the last
// commit; callers must hold no expectations across commits.
func (s *Service) Scenario() *model.Scenario { return s.scen }

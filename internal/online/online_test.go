package online

import (
	"math"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// testScenario generates a paper-shaped scenario with n clients, the
// first absentFrac of which start absent (zero rates).
func testScenario(t testing.TB, n int, seed int64, absentFrac float64) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(float64(n)*absentFrac); i++ {
		scen.Clients[i].ArrivalRate = 0
		scen.Clients[i].PredictedRate = 0
	}
	return scen
}

func newTestService(t testing.TB, scen *model.Scenario, mutate func(*Config)) *Service {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drainChurn runs a full churn stream through the service and returns
// the decision sequence.
func drainChurn(s *Service, c *Churn) []Decision {
	var out []Decision
	for {
		ev, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, s.Decide(ev))
	}
}

// TestDeterministicReplay pins the synchronous-mode determinism claim:
// the same scenario, config, and event stream yield byte-identical
// decision sequences and the same committed profit.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]Decision, float64, uint64) {
		scen := testScenario(t, 60, 11, 0.3)
		s := newTestService(t, scen, nil)
		defer s.Close()
		cc := DefaultChurnConfig()
		cc.Events = 3000
		cc.Seed = 7
		decisions := drainChurn(s, NewChurn(scen, cc))
		s.Flush()
		return decisions, s.Profit(), s.Version()
	}
	d1, p1, v1 := run()
	d2, p2, v2 := run()
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	if p1 != p2 {
		t.Fatalf("profits differ: %v vs %v", p1, p2)
	}
	if v1 != v2 {
		t.Fatalf("versions differ: %d vs %d", v1, v2)
	}
	if v1 < 2 {
		t.Fatalf("stream never committed (version %d); thresholds too loose for the test", v1)
	}
}

// TestArrivalAdmission pins the basic decision semantics: an arrival
// into an empty-ish cloud is admitted with a positive bound and a valid
// cluster; a departure of an absent client is a no-op.
func TestArrivalAdmission(t *testing.T) {
	scen := testScenario(t, 20, 12, 0.5)
	s := newTestService(t, scen, nil)
	defer s.Close()

	d := s.Decide(Event{Kind: EventArrive, Client: 0, Rate: 2})
	if !d.Admitted {
		t.Fatalf("arrival rejected: %+v", d)
	}
	if d.Cluster < 0 || int(d.Cluster) >= scen.Cloud.NumClusters() {
		t.Fatalf("admitted to invalid cluster %d", d.Cluster)
	}
	if d.Bound <= 0 {
		t.Fatalf("admitted with non-positive bound %v", d.Bound)
	}

	no := s.Decide(Event{Kind: EventDepart, Client: 1})
	if no.Admitted || no.Committed {
		t.Fatalf("absent departure not a no-op: %+v", no)
	}
}

// TestRejectUnprofitable: with admission control on, a client whose best
// gain bound is non-positive must be rejected. An enormous rate makes
// every cluster either infeasible or unprofitable.
func TestRejectUnprofitable(t *testing.T) {
	scen := testScenario(t, 20, 13, 0.5)
	s := newTestService(t, scen, nil)
	defer s.Close()
	d := s.Decide(Event{Kind: EventArrive, Client: 0, Rate: 1e9})
	if d.Admitted {
		t.Fatalf("hopeless client admitted: %+v", d)
	}
	if int(d.Cluster) != alloc.Unassigned {
		t.Fatalf("rejected decision names cluster %d", d.Cluster)
	}
}

// TestSelfCancelingEventsDoNotCommit pins the deferred-commit write
// filter: an arrival/departure pair nets to zero pending load, so a long
// alternating stream must never trigger a commit.
func TestSelfCancelingEventsDoNotCommit(t *testing.T) {
	scen := testScenario(t, 30, 14, 0.5)
	s := newTestService(t, scen, func(c *Config) {
		// Threshold above one event's |Δλ̃| but far below 500 events'
		// worth: only the *net* staying at zero avoids the commit.
		c.CommitFloor = 5
		c.CommitRel = 0
	})
	defer s.Close()
	v0 := s.Version()
	for iter := 0; iter < 500; iter++ {
		if d := s.Decide(Event{Kind: EventArrive, Client: 2, Rate: 1.5}); !d.Admitted {
			t.Fatalf("iter %d: arrival rejected", iter)
		}
		s.Decide(Event{Kind: EventDepart, Client: 2})
	}
	if v := s.Version(); v != v0 {
		t.Fatalf("self-canceling stream committed: version %d → %d", v0, v)
	}
}

// TestThresholdTriggersCommit: pushing one cluster past its commit
// threshold must publish a new snapshot that includes the pending load.
func TestThresholdTriggersCommit(t *testing.T) {
	scen := testScenario(t, 30, 15, 0.5)
	s := newTestService(t, scen, nil)
	defer s.Close()
	v0 := s.Version()
	var committed bool
	for i := 0; i < 15 && !committed; i++ {
		d := s.Decide(Event{Kind: EventArrive, Client: model.ClientID(i), Rate: 3})
		committed = committed || d.Committed
	}
	if !committed {
		t.Fatal("15 arrivals never crossed the commit threshold")
	}
	if s.Version() == v0 {
		t.Fatal("commit reported but no snapshot published")
	}
	a, _ := s.Snapshot()
	if err := a.Validate(); err != nil {
		t.Fatalf("committed allocation invalid: %v", err)
	}
}

// TestFlushCommitsPending: Flush must fold every pending delta into the
// committed plane even below threshold.
func TestFlushCommitsPending(t *testing.T) {
	scen := testScenario(t, 30, 16, 0.5)
	s := newTestService(t, scen, func(c *Config) {
		c.CommitFloor = 1e9 // never auto-commit
		c.CommitRel = 0
	})
	defer s.Close()
	d := s.Decide(Event{Kind: EventArrive, Client: 0, Rate: 2})
	if !d.Admitted || d.Committed {
		t.Fatalf("unexpected decision: %+v", d)
	}
	a := s.Flush()
	if !a.Assigned(0) {
		t.Fatal("flushed allocation does not include the pending arrival")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Scenario().Clients[0].PredictedRate; got != 2 {
		t.Fatalf("committed rate %v, want 2", got)
	}
}

// TestChurnProfitRetention mirrors the benchmark's gate at test scale:
// after a full churn stream and a flush, the online profit must be
// within a few percent of a cold full re-solve on the true final
// scenario.
func TestChurnProfitRetention(t *testing.T) {
	scen := testScenario(t, 60, 17, 0.3)
	s := newTestService(t, scen, nil)
	defer s.Close()
	cc := DefaultChurnConfig()
	cc.Events = 4000
	cc.Seed = 3
	churn := NewChurn(scen, cc)
	drainChurn(s, churn)
	s.Flush()
	online := s.Profit()

	final := model.CloneScenario(scen)
	rates := make([]float64, len(final.Clients))
	churn.Rates(rates)
	for i := range final.Clients {
		final.Clients[i].ArrivalRate = rates[i]
		final.Clients[i].PredictedRate = rates[i]
	}
	solver, err := core.NewSolver(final, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if coldP := cold.Profit(); online < 0.95*coldP {
		t.Fatalf("online profit %v below 95%% of cold %v", online, coldP)
	}
}

// TestConcurrentDeciders hammers Decide from many goroutines in
// background-commit mode. Run under -race this is the primary
// lock-freedom safety check; the invariant checked at the end is that a
// final flush yields a valid allocation and every desired rate matches
// what some goroutine last requested (no lost or torn updates for the
// per-client slots each goroutine owns).
func TestConcurrentDeciders(t *testing.T) {
	scen := testScenario(t, 64, 18, 0.5)
	s := newTestService(t, scen, func(c *Config) { c.Background = true })
	defer s.Close()

	const workers = 8
	perWorker := scen.NumClients() / workers
	var wg sync.WaitGroup
	finalRate := make([]float64, scen.NumClients())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := parallel.Rand(99, uint64(w))
			lo := w * perWorker
			for iter := 0; iter < 400; iter++ {
				ci := lo + rng.Intn(perWorker)
				id := model.ClientID(ci)
				switch rng.Intn(3) {
				case 0:
					rate := 0.5 + rng.Float64()*2
					if d := s.Decide(Event{Kind: EventArrive, Client: id, Rate: rate}); d.Admitted {
						finalRate[ci] = rate
					}
				case 1:
					s.Decide(Event{Kind: EventDepart, Client: id})
					finalRate[ci] = 0
				default:
					rate := 0.5 + rng.Float64()*2
					if d := s.Decide(Event{Kind: EventRateChange, Client: id, Rate: rate}); d.Admitted {
						finalRate[ci] = rate
					}
				}
			}
		}(w)
	}
	wg.Wait()
	a := s.Flush()
	if err := a.Validate(); err != nil {
		t.Fatalf("allocation invalid after concurrent churn: %v", err)
	}
	for ci, want := range finalRate {
		// A rate-change on an absent client is an arrival; a rejected
		// offer leaves the old rate. Both are per-slot deterministic
		// because each goroutine owns its client range.
		if got := s.Scenario().Clients[ci].PredictedRate; got != want {
			// Rejected offers make `want` stale; only flag impossible
			// values (a rate no event ever carried).
			if got != 0 && (got < 0.5 || got > 2.5) {
				t.Fatalf("client %d committed rate %v, never requested", ci, got)
			}
		}
	}
}

// TestDecideAllocFree pins the acceptance criterion: in the steady state
// (no commit triggered) a decision performs zero heap allocations.
func TestDecideAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	scen := testScenario(t, 40, 19, 0.5)
	s := newTestService(t, scen, func(c *Config) {
		c.CommitFloor = 1e12 // keep every event below threshold
		c.CommitRel = 0
		c.Telemetry = telemetry.New(nil)
	})
	defer s.Close()

	evs := []Event{
		{Kind: EventArrive, Client: 3, Rate: 1.2},
		{Kind: EventRateChange, Client: 3, Rate: 1.4},
		{Kind: EventDepart, Client: 3},
	}
	var i int
	if n := testing.AllocsPerRun(2000, func() {
		s.Decide(evs[i%len(evs)])
		i++
	}); n != 0 {
		t.Fatalf("Decide allocates %v times per event, want 0", n)
	}
}

// TestBackgroundCommitEventuallyPublishes: in background mode a
// threshold crossing must lead to a new snapshot without any further
// events.
func TestBackgroundCommitEventuallyPublishes(t *testing.T) {
	scen := testScenario(t, 30, 20, 0.5)
	s := newTestService(t, scen, func(c *Config) { c.Background = true })
	defer s.Close()
	v0 := s.Version()
	var triggered bool
	for i := 0; i < 15 && !triggered; i++ {
		d := s.Decide(Event{Kind: EventArrive, Client: model.ClientID(i), Rate: 3})
		triggered = triggered || d.Committed
	}
	if !triggered {
		t.Fatal("threshold never crossed")
	}
	// Flush synchronizes with the background committer via the solver
	// lock, so after it the version must have moved.
	s.Flush()
	if s.Version() == v0 {
		t.Fatal("no snapshot published after background trigger + flush")
	}
}

// TestChurnStreamDeterminism pins the generator itself: same seed, same
// events.
func TestChurnStreamDeterminism(t *testing.T) {
	scen := testScenario(t, 50, 21, 0.4)
	cc := DefaultChurnConfig()
	cc.Events = 2000
	cc.Seed = 5
	cc.FlashAt = 500
	cc.FlashSize = 10
	a, b := NewChurn(scen, cc), NewChurn(scen, cc)
	for {
		ea, oka := a.Next()
		eb, okb := b.Next()
		if oka != okb {
			t.Fatal("stream lengths differ")
		}
		if !oka {
			break
		}
		if ea != eb {
			t.Fatalf("events differ: %+v vs %+v", ea, eb)
		}
	}
}

// TestChurnFlashCrowd: the flash window must emit consecutive arrivals
// with boosted rates.
func TestChurnFlashCrowd(t *testing.T) {
	scen := testScenario(t, 50, 22, 0.8) // plenty of absent clients
	cc := DefaultChurnConfig()
	cc.Events = 300
	cc.Seed = 9
	cc.FlashAt = 100
	cc.FlashSize = 20
	c := NewChurn(scen, cc)
	var got int
	for i := 0; ; i++ {
		ev, ok := c.Next()
		if !ok {
			break
		}
		if i >= 100 && i < 120 {
			if ev.Kind != EventArrive {
				t.Fatalf("event %d in flash window is %v, want arrival", i, ev.Kind)
			}
			got++
		}
	}
	if got != 20 {
		t.Fatalf("flash window emitted %d arrivals, want 20", got)
	}
}

// TestPendingLoadSharing cross-checks the accumulator bookkeeping: after
// events that net to zero the gross gauge reflects traffic while the
// committed snapshot stays untouched.
func TestPendingLoadSharing(t *testing.T) {
	scen := testScenario(t, 20, 23, 0.5)
	tel := telemetry.New(nil)
	s := newTestService(t, scen, func(c *Config) {
		c.Telemetry = tel
		c.CommitFloor = 100 // keep the pair below threshold
		c.CommitRel = 0
	})
	defer s.Close()
	s.Decide(Event{Kind: EventArrive, Client: 0, Rate: 1})
	s.Decide(Event{Kind: EventDepart, Client: 0})
	if g := tel.Gauge("online_gross_pending_rate").Value(); g < 2-1e-9 {
		t.Fatalf("gross pending gauge %v, want ≥ 2", g)
	}
	net := math.Abs(loadFloat(&s.acc[0].net))
	for k := 1; k < len(s.acc); k++ {
		net += math.Abs(loadFloat(&s.acc[k].net))
	}
	if net > 1e-9 {
		t.Fatalf("net pending %v after self-canceling pair, want 0", net)
	}
}

// Package parallel is the shared fan-out engine for the repository's
// embarrassingly-parallel loops: the solver's multi-start greedy phase,
// the Monte-Carlo draw loop, the Proportional-Share active-fraction
// sweep and the experiment scenario jobs all route through it.
//
// Two properties make the engine safe to drop into result-bearing code:
//
//   - Determinism by seed-splitting. Randomized tasks must not share one
//     rand.Rand consumed in scheduling order; instead each task derives
//     its own stream with SplitSeed(master, index) (a splitmix64 step),
//     so task i sees the same random numbers whether it runs first on a
//     single worker or last on sixteen. Combined with an index-ordered
//     (or otherwise order-free) reduction in the caller, results are
//     bit-identical for every worker count.
//
//   - Bounded, observable workers. For/ForErr run at most
//     Bound(opts.Workers, tasks) goroutines, hand every callback its
//     worker index so callers can keep per-worker scratch state (arena
//     reuse), and — when a telemetry set is attached — publish per-phase
//     task counts, worker counts, busy time and utilization plus a span
//     per fan-out.
package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// splitmix64 constants (Steele, Lea & Flood; the JDK SplittableRandom
// gamma and the murmur-style finalizer).
const (
	splitGamma = 0x9E3779B97F4A7C15
	splitMix1  = 0xBF58476D1CE4E5B9
	splitMix2  = 0x94D049BB133111EB
)

// SplitSeed derives the seed of task stream `index` from the master
// seed: one splitmix64 advance-and-finalize. Adjacent indices yield
// statistically independent seeds, so per-task rand.Rand streams do not
// overlap the way a shared sequential source sliced at arbitrary
// scheduling points would.
func SplitSeed(master int64, index uint64) int64 {
	z := uint64(master) + (index+1)*splitGamma
	z = (z ^ (z >> 30)) * splitMix1
	z = (z ^ (z >> 27)) * splitMix2
	z ^= z >> 31
	return int64(z)
}

// Rand builds the deterministic RNG of task stream `index`.
func Rand(master int64, index uint64) *rand.Rand {
	return rand.New(rand.NewSource(SplitSeed(master, index)))
}

// Bound resolves a configured worker count against a task count:
// workers <= 0 means GOMAXPROCS, and the result never exceeds the
// number of tasks (nor drops below 1).
func Bound(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Options configures one fan-out.
type Options struct {
	// Workers bounds the pool; <= 0 uses GOMAXPROCS. The worker count
	// never changes results for callers that follow the seed-splitting
	// and index-ordered-reduction contract — only wall-clock time.
	Workers int
	// Tel, when non-nil, records the fan-out: a span plus per-phase
	// fanout_* metrics. Nil (the default) costs nothing per task.
	Tel *telemetry.Set
	// Phase labels the telemetry ("multistart", "mc_draws", ...).
	Phase string
	// Ctx, when non-nil and carrying trace context, parents the fan-out
	// span under the caller's span so the fan-out shows up inside the
	// solve's trace tree. Task callbacks that start their own spans
	// should derive them from the same ctx with deterministic indices
	// (telemetry.Tracer.StartCtxAt) to stay scheduling-independent.
	Ctx context.Context
}

// For runs fn(worker, task) for every task in [0, n) on a bounded pool.
// worker is in [0, Bound(o.Workers, n)) and is stable for the goroutine
// invoking fn, so callers may index per-worker scratch state with it.
// Tasks are claimed from an atomic counter; every task runs exactly once.
func For(o Options, n int, fn func(worker, task int)) {
	_ = ForErr(o, n, func(w, t int) error { fn(w, t); return nil })
}

// ForErr is For over fallible tasks. Every task runs regardless of
// failures elsewhere (so side effects match the single-worker run), and
// the error of the lowest-indexed failing task is returned — the same
// error a sequential loop that collected errors would report first.
func ForErr(o Options, n int, fn func(worker, task int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Bound(o.Workers, n)
	ft := newFanTel(o.Tel, o.Phase)
	sp := ft.span(o.Ctx, n, workers)

	var firstErr struct {
		sync.Mutex
		idx int
		err error
	}
	firstErr.idx = n
	record := func(idx int, err error) {
		firstErr.Lock()
		if idx < firstErr.idx {
			firstErr.idx, firstErr.err = idx, err
		}
		firstErr.Unlock()
	}

	start := time.Now()
	if workers == 1 {
		for t := 0; t < n; t++ {
			if err := fn(0, t); err != nil {
				record(t, err)
			}
		}
		ft.finish(n, workers, time.Since(start), time.Since(start), sp)
		if firstErr.err != nil {
			return firstErr.err
		}
		return nil
	}

	var next atomic.Int64
	var busyTotal atomic.Int64 // summed per-worker busy nanoseconds
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var busy time.Duration
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					break
				}
				var t0 time.Time
				if ft != nil {
					t0 = time.Now()
				}
				if err := fn(w, t); err != nil {
					record(t, err)
				}
				if ft != nil {
					busy += time.Since(t0)
				}
			}
			if ft != nil {
				busyTotal.Add(int64(busy))
			}
		}(w)
	}
	wg.Wait()
	ft.finish(n, workers, time.Since(start), time.Duration(busyTotal.Load()), sp)
	if firstErr.err != nil {
		return firstErr.err
	}
	return nil
}

// fanTel holds one fan-out's resolved metric handles; nil disables.
type fanTel struct {
	set         *telemetry.Set
	phase       string
	runs        *telemetry.Counter
	tasks       *telemetry.Counter
	workers     *telemetry.Gauge
	busySeconds *telemetry.Gauge
	utilization *telemetry.Gauge
}

func newFanTel(set *telemetry.Set, phase string) *fanTel {
	if set == nil {
		return nil
	}
	if phase == "" {
		phase = "unnamed"
	}
	set.Metrics.Help("fanout_runs_total", "fan-outs executed per phase")
	set.Metrics.Help("fanout_tasks_total", "fan-out tasks executed per phase")
	set.Metrics.Help("fanout_workers", "worker count of the most recent fan-out per phase")
	set.Metrics.Help("fanout_busy_seconds_total", "summed per-worker busy time per phase")
	set.Metrics.Help("fanout_utilization", "busy / (workers x wall) of the most recent fan-out per phase")
	return &fanTel{
		set:         set,
		phase:       phase,
		runs:        set.Counter(telemetry.Name("fanout_runs_total", "phase", phase)),
		tasks:       set.Counter(telemetry.Name("fanout_tasks_total", "phase", phase)),
		workers:     set.Gauge(telemetry.Name("fanout_workers", "phase", phase)),
		busySeconds: set.Gauge(telemetry.Name("fanout_busy_seconds_total", "phase", phase)),
		utilization: set.Gauge(telemetry.Name("fanout_utilization", "phase", phase)),
	}
}

func (t *fanTel) span(ctx context.Context, tasks, workers int) telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	var sp telemetry.Span
	if ctx != nil {
		sp, _ = t.set.StartCtx(ctx, "fanout."+t.phase)
	} else {
		sp = t.set.Start("fanout." + t.phase)
	}
	sp.Attr("tasks", tasks)
	sp.Attr("workers", workers)
	return sp
}

func (t *fanTel) finish(tasks, workers int, wall, busy time.Duration, sp telemetry.Span) {
	if t == nil {
		return
	}
	t.runs.Inc()
	t.tasks.Add(int64(tasks))
	t.workers.Set(float64(workers))
	t.busySeconds.Add(busy.Seconds())
	if denom := float64(workers) * wall.Seconds(); denom > 0 {
		t.utilization.Set(busy.Seconds() / denom)
	}
	sp.Attr("busy_seconds", busy.Seconds())
	sp.End()
}

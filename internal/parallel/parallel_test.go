package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func TestSplitSeedDistinct(t *testing.T) {
	const n = 1 << 16
	seen := make(map[int64]uint64, n)
	for i := uint64(0); i < n; i++ {
		s := SplitSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SplitSeed(42, %d) == SplitSeed(42, %d) == %d", i, prev, s)
		}
		seen[s] = i
	}
}

func TestSplitSeedMasterSensitivity(t *testing.T) {
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different masters produced the same task-0 seed")
	}
}

// TestSplitStreamsNonOverlapping checks the property the engine's
// determinism contract rests on: adjacent task streams are statistically
// independent, unlike slices of one shared sequential source. 256 draws
// per stream across many adjacent index pairs must never collide.
func TestSplitStreamsNonOverlapping(t *testing.T) {
	const draws = 256
	for _, master := range []int64{0, 1, 1 << 40, -7} {
		for idx := uint64(0); idx < 64; idx++ {
			a, b := Rand(master, idx), Rand(master, idx+1)
			seen := make(map[uint64]bool, draws)
			for d := 0; d < draws; d++ {
				seen[a.Uint64()] = true
			}
			for d := 0; d < draws; d++ {
				if v := b.Uint64(); seen[v] {
					t.Fatalf("master %d: streams %d and %d share value %d", master, idx, idx+1, v)
				}
			}
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := Rand(7, 3), Rand(7, 3)
	for d := 0; d < 100; d++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", d, x, y)
		}
	}
}

func TestBound(t *testing.T) {
	cases := []struct{ workers, tasks, min, max int }{
		{1, 10, 1, 1},
		{4, 10, 4, 4},
		{4, 2, 2, 2},       // capped to tasks
		{0, 1000, 1, 1000}, // GOMAXPROCS, whatever it is
		{-3, 2, 1, 2},
		{5, 0, 1, 1}, // never below 1
	}
	for _, c := range cases {
		got := Bound(c.workers, c.tasks)
		if got < c.min || got > c.max {
			t.Errorf("Bound(%d, %d) = %d, want in [%d, %d]", c.workers, c.tasks, got, c.min, c.max)
		}
	}
}

func TestForVisitsEveryTaskOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 7, 16, 0} {
		counts := make([]atomic.Int32, n)
		maxW := Bound(workers, n)
		For(Options{Workers: workers}, n, func(w, task int) {
			if w < 0 || w >= maxW {
				t.Errorf("worker index %d outside [0, %d)", w, maxW)
			}
			counts[task].Add(1)
		})
		for task := range counts {
			if c := counts[task].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, task, c)
			}
		}
	}
}

// TestForErrLowestIndex: every task still runs when some fail, and the
// reported error belongs to the lowest failing index — both independent
// of the worker count.
func TestForErrLowestIndex(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForErr(Options{Workers: workers}, n, func(_, task int) error {
			ran.Add(1)
			if task == 3 || task == 7 || task == 40 {
				return fmt.Errorf("task %d failed", task)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: got error %v, want task 3's", workers, err)
		}
		if got := ran.Load(); got != n {
			t.Fatalf("workers=%d: only %d of %d tasks ran", workers, got, n)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(Options{Workers: 3}, 10, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForErr(Options{}, 0, func(_, _ int) error { return errors.New("never runs") }); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutTelemetry(t *testing.T) {
	set := telemetry.New(nil)
	For(Options{Workers: 2, Tel: set, Phase: "test_phase"}, 8, func(_, _ int) {})
	For(Options{Workers: 2, Tel: set, Phase: "test_phase"}, 8, func(_, _ int) {})
	if got := set.Counter(telemetry.Name("fanout_runs_total", "phase", "test_phase")).Value(); got != 2 {
		t.Errorf("fanout_runs_total = %d, want 2", got)
	}
	if got := set.Counter(telemetry.Name("fanout_tasks_total", "phase", "test_phase")).Value(); got != 16 {
		t.Errorf("fanout_tasks_total = %d, want 16", got)
	}
	if got := set.Gauge(telemetry.Name("fanout_workers", "phase", "test_phase")).Value(); got != 2 {
		t.Errorf("fanout_workers = %v, want 2", got)
	}
	if got := set.Gauge(telemetry.Name("fanout_utilization", "phase", "test_phase")).Value(); got < 0 || got > 1.0001 {
		t.Errorf("fanout_utilization = %v outside [0, 1]", got)
	}
}

package multitier

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// testCloud builds a paper-shaped cloud without clients.
func testCloud(t *testing.T, seed int64) model.Cloud {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = 1 // generator requires ≥1; we discard the clients
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen.Cloud
}

func threeTierApp(id int, rate float64) App {
	return App{
		ID:            id,
		Base:          9,
		Slope:         0.8,
		ArrivalRate:   rate,
		PredictedRate: rate,
		Tiers: []Tier{
			{ProcTime: 0.3, CommTime: 0.5, DiskNeed: 0.3}, // web: network heavy
			{ProcTime: 0.8, CommTime: 0.3, DiskNeed: 0.5}, // app: compute heavy
			{ProcTime: 0.5, CommTime: 0.4, DiskNeed: 1.5}, // db: storage heavy
		},
	}
}

func TestAppValidate(t *testing.T) {
	good := threeTierApp(0, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*App)
	}{
		{"no tiers", func(a *App) { a.Tiers = nil }},
		{"zero rate", func(a *App) { a.ArrivalRate = 0 }},
		{"negative slope", func(a *App) { a.Slope = -1 }},
		{"zero tier exec", func(a *App) { a.Tiers[1].ProcTime = 0 }},
		{"negative tier disk", func(a *App) { a.Tiers[2].DiskNeed = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			app := threeTierApp(0, 1)
			tt.mutate(&app)
			if err := app.Validate(); err == nil {
				t.Fatal("invalid app accepted")
			}
		})
	}
}

func TestSolveMultiTier(t *testing.T) {
	cloud := testCloud(t, 1)
	apps := []App{
		threeTierApp(0, 1.5),
		threeTierApp(1, 2.0),
		threeTierApp(2, 0.8),
	}
	sol, err := Solve(cloud, apps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Alloc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sol.Compiled.Clients) != 9 {
		t.Fatalf("compiled %d pseudo-clients, want 9", len(sol.Compiled.Clients))
	}
	for ai, app := range apps {
		if !sol.Served[ai] {
			t.Fatalf("app %d not fully served", app.ID)
		}
		if sol.AppResponse[ai] <= 0 {
			t.Fatalf("app %d response %v", app.ID, sol.AppResponse[ai])
		}
		want := app.ArrivalRate * math.Max(0, app.Base-app.Slope*sol.AppResponse[ai])
		if math.Abs(sol.AppRevenue[ai]-want) > 1e-9 {
			t.Fatalf("app %d revenue %v, want %v", app.ID, sol.AppRevenue[ai], want)
		}
	}
	// Every app has one placement per tier.
	counts := make(map[int]int)
	for _, p := range sol.Placements {
		counts[p.App]++
	}
	for _, app := range apps {
		if counts[app.ID] != len(app.Tiers) {
			t.Fatalf("app %d has %d placements", app.ID, counts[app.ID])
		}
	}
	// End-to-end response is the sum of tier responses.
	var app0 float64
	for _, p := range sol.Placements {
		if p.App == 0 {
			app0 += p.Response
		}
	}
	if math.Abs(app0-sol.AppResponse[0]) > 1e-9 {
		t.Fatalf("tier responses %v do not sum to app response %v", app0, sol.AppResponse[0])
	}
	if sol.Profit <= 0 {
		t.Fatalf("profit %v", sol.Profit)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	cloud := testCloud(t, 2)
	if _, err := Solve(cloud, nil, DefaultConfig()); err == nil {
		t.Fatal("empty app list accepted")
	}
	bad := threeTierApp(0, 1)
	bad.Tiers[0].ProcTime = -1
	if _, err := Solve(cloud, []App{bad}, DefaultConfig()); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestProfitAccountsForClipping(t *testing.T) {
	// An app with a very tight SLA that cannot be met earns zero revenue
	// at the app level even when individual tiers look fine.
	cloud := testCloud(t, 3)
	tight := threeTierApp(0, 2)
	tight.Base = 0.5
	tight.Slope = 10
	sol, err := Solve(cloud, []App{tight}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Served[0] {
		t.Skip("app not placed; nothing to assert")
	}
	if sol.AppRevenue[0] != 0 {
		t.Fatalf("unmeetable SLA should earn 0, got %v", sol.AppRevenue[0])
	}
	if sol.Profit >= 0 {
		t.Fatalf("serving only an unmeetable SLA should lose money, profit %v", sol.Profit)
	}
}

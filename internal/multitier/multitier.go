// Package multitier extends the allocator to multi-tier applications —
// the paper's declared future work ("the model will be expanded to
// deployment of complex multi-tier applications"). A request of an app
// traverses its tiers in sequence (web → app → database …); response
// times are additive across tiers, and the SLA utility applies to the
// end-to-end response time.
//
// Because every request visits every tier exactly once, each tier sees a
// Poisson stream with the app's arrival rate, and the end-to-end delay is
// Σ_t R_t. The true objective slope on each tier's delay is therefore the
// app's slope b: the package compiles each app into one pseudo-client per
// tier (slope b, base a/T), solves the compiled scenario with the
// standard Resource_Alloc heuristic, and re-aggregates exact app-level
// profit (clipping the utility at the app level, where it belongs).
package multitier

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
)

// Tier is one stage of an application's request path.
type Tier struct {
	// ProcTime and CommTime are the tier's mean execution times per unit
	// resource; DiskNeed is its storage reservation.
	ProcTime float64
	CommTime float64
	DiskNeed float64
}

// App is a multi-tier application with an SLA on its end-to-end response
// time: revenue per request is max(0, Base − Slope·ΣR_t).
type App struct {
	ID            int
	Base          float64
	Slope         float64
	ArrivalRate   float64
	PredictedRate float64
	Tiers         []Tier
}

// Validate checks the app's parameters.
func (a App) Validate() error {
	if len(a.Tiers) == 0 {
		return fmt.Errorf("multitier: app %d has no tiers", a.ID)
	}
	if a.ArrivalRate <= 0 || a.PredictedRate <= 0 {
		return fmt.Errorf("multitier: app %d has non-positive rates", a.ID)
	}
	if a.Base < 0 || a.Slope < 0 {
		return fmt.Errorf("multitier: app %d has negative utility parameters", a.ID)
	}
	for t, tier := range a.Tiers {
		if tier.ProcTime <= 0 || tier.CommTime <= 0 || tier.DiskNeed < 0 {
			return fmt.Errorf("multitier: app %d tier %d invalid: %+v", a.ID, t, tier)
		}
	}
	return nil
}

// Config tunes the multi-tier solve.
type Config struct {
	Solver core.Config
}

// DefaultConfig uses the standard solver settings.
func DefaultConfig() Config { return Config{Solver: core.DefaultConfig()} }

// TierPlacement reports where one tier of an app landed.
type TierPlacement struct {
	App      int
	Tier     int
	Cluster  model.ClusterID
	Response float64
	Portions []alloc.Portion
}

// Solution is the result of a multi-tier solve.
type Solution struct {
	// Alloc is the allocation of the compiled per-tier scenario.
	Alloc *alloc.Allocation
	// Compiled is the derived single-tier scenario.
	Compiled *model.Scenario
	// Placements lists every placed (app, tier).
	Placements []TierPlacement
	// AppResponse is each app's end-to-end mean response time (indexed
	// like the input apps); NaN-free: unplaced tiers make the app
	// unserved instead.
	AppResponse []float64
	// AppRevenue is each app's exact revenue (utility clipped at the app
	// level).
	AppRevenue []float64
	// Served marks apps with every tier placed.
	Served []bool
	// Profit is Σ app revenue − Σ active server cost.
	Profit float64
}

// Solve places every tier of every app on the cloud.
func Solve(cloud model.Cloud, apps []App, cfg Config) (*Solution, error) {
	if len(apps) == 0 {
		return nil, errors.New("multitier: no apps")
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	compiled, index, err := compile(cloud, apps)
	if err != nil {
		return nil, err
	}
	// Admission decisions are all-or-nothing at the app level: a tier's
	// compiled base (a/T) understates its marginal value, so per-tier
	// admission control would wrongly drop tiers of profitable apps.
	cfg.Solver.AdmissionControl = false
	solver, err := core.NewSolver(compiled, cfg.Solver)
	if err != nil {
		return nil, err
	}
	a, _, err := solver.Solve()
	if err != nil {
		return nil, err
	}
	return aggregate(cloud, apps, compiled, index, a)
}

// tierKey maps a compiled client back to its (app index, tier index).
type tierKey struct {
	app  int
	tier int
}

// compile derives the single-tier scenario: one pseudo-client and one
// utility class per (app, tier).
func compile(cloud model.Cloud, apps []App) (*model.Scenario, []tierKey, error) {
	scen := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses: append([]model.ServerClass(nil), cloud.ServerClasses...),
			Clusters:      make([]model.Cluster, len(cloud.Clusters)),
			Servers:       append([]model.Server(nil), cloud.Servers...),
		},
	}
	for k, cl := range cloud.Clusters {
		scen.Cloud.Clusters[k] = model.Cluster{
			ID:      cl.ID,
			Servers: append([]model.ServerID(nil), cl.Servers...),
		}
	}
	var index []tierKey
	for ai, app := range apps {
		nT := float64(len(app.Tiers))
		for ti, tier := range app.Tiers {
			ucID := model.UtilityClassID(len(scen.Cloud.UtilityClasses))
			scen.Cloud.UtilityClasses = append(scen.Cloud.UtilityClasses, model.UtilityClass{
				ID:    ucID,
				Base:  app.Base / nT,
				Slope: app.Slope,
			})
			clID := model.ClientID(len(scen.Clients))
			scen.Clients = append(scen.Clients, model.Client{
				ID:            clID,
				Class:         ucID,
				ArrivalRate:   app.ArrivalRate,
				PredictedRate: app.PredictedRate,
				ProcTime:      tier.ProcTime,
				CommTime:      tier.CommTime,
				DiskNeed:      tier.DiskNeed,
			})
			index = append(index, tierKey{app: ai, tier: ti})
		}
	}
	if err := scen.Validate(); err != nil {
		return nil, nil, fmt.Errorf("multitier: compiled scenario invalid: %w", err)
	}
	return scen, index, nil
}

// aggregate folds the compiled solution back to app level.
func aggregate(cloud model.Cloud, apps []App, compiled *model.Scenario,
	index []tierKey, a *alloc.Allocation) (*Solution, error) {
	sol := &Solution{
		Alloc:       a,
		Compiled:    compiled,
		AppResponse: make([]float64, len(apps)),
		AppRevenue:  make([]float64, len(apps)),
		Served:      make([]bool, len(apps)),
	}
	placedTiers := make([]int, len(apps))
	for ci, key := range index {
		id := model.ClientID(ci)
		if !a.Assigned(id) {
			continue
		}
		resp, err := a.ResponseTime(id)
		if err != nil {
			continue
		}
		placedTiers[key.app]++
		sol.AppResponse[key.app] += resp
		sol.Placements = append(sol.Placements, TierPlacement{
			App:      apps[key.app].ID,
			Tier:     key.tier,
			Cluster:  model.ClusterID(a.ClusterOf(id)),
			Response: resp,
			Portions: a.Portions(id),
		})
	}
	var revenue float64
	for ai, app := range apps {
		if placedTiers[ai] != len(app.Tiers) {
			sol.AppResponse[ai] = 0
			continue
		}
		sol.Served[ai] = true
		u := app.Base - app.Slope*sol.AppResponse[ai]
		if u < 0 {
			u = 0
		}
		sol.AppRevenue[ai] = app.ArrivalRate * u
		revenue += sol.AppRevenue[ai]
	}
	var cost float64
	for j := range cloud.Servers {
		cost += a.ServerCost(model.ServerID(j))
	}
	sol.Profit = revenue - cost
	return sol, nil
}

package cluster

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

var testCtx = context.Background()

func genScenario(t *testing.T, n int, seed int64) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

func localAgents(t *testing.T, scen *model.Scenario) []Agent {
	t.Helper()
	agents := make([]Agent, scen.Cloud.NumClusters())
	for k := range agents {
		ag, err := NewLocalAgent(scen, model.ClusterID(k), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		agents[k] = ag
	}
	return agents
}

func TestNewLocalAgentValidation(t *testing.T) {
	scen := genScenario(t, 5, 1)
	if _, err := NewLocalAgent(scen, 99, core.DefaultConfig()); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	bad := core.DefaultConfig()
	bad.AlphaGranularity = 0
	if _, err := NewLocalAgent(scen, 0, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestNewManagerValidation(t *testing.T) {
	scen := genScenario(t, 5, 1)
	agents := localAgents(t, scen)
	if _, err := NewManager(scen, agents[:2], DefaultManagerConfig()); err == nil {
		t.Fatal("wrong agent count accepted")
	}
	// Agents out of order.
	swapped := append([]Agent(nil), agents...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := NewManager(scen, swapped, DefaultManagerConfig()); err == nil {
		t.Fatal("misordered agents accepted")
	}
	bad := DefaultManagerConfig()
	bad.NumInitSolutions = 0
	if _, err := NewManager(scen, agents, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAgentLifecycle(t *testing.T) {
	scen := genScenario(t, 10, 2)
	ag, err := NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()
	if k, err := ag.ClusterID(testCtx); err != nil || k != 0 {
		t.Fatalf("ClusterID = %v, %v", k, err)
	}
	bid, err := ag.Evaluate(testCtx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bid.Feasible {
		t.Fatal("fresh cluster should host client 0")
	}
	if err := ag.Commit(testCtx, 0, bid.Portions); err != nil {
		t.Fatal(err)
	}
	p1, err := ag.Profit(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ag.Snapshot(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0]) == 0 {
		t.Fatalf("snapshot = %v", snap)
	}
	if _, err := ag.Improve(testCtx); err != nil {
		t.Fatal(err)
	}
	if err := ag.Remove(testCtx, 0); err != nil {
		t.Fatal(err)
	}
	p2, err := ag.Profit(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != 0 {
		t.Fatalf("profit after removal = %v", p2)
	}
	if p1 == 0 {
		t.Fatal("profit with a client should be nonzero")
	}
	if err := ag.Reset(testCtx); err != nil {
		t.Fatal(err)
	}
}

func TestManagerSolveMatchesQuality(t *testing.T) {
	scen := genScenario(t, 30, 3)
	mgr, err := NewManager(scen, localAgents(t, scen), DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 30 {
		t.Fatalf("assigned %d of 30", a.NumAssigned())
	}
	if math.Abs(a.Profit()-stats.FinalProfit) > 1e-6 {
		t.Fatalf("merged profit %v != reported %v", a.Profit(), stats.FinalProfit)
	}
	if stats.FinalProfit < stats.InitialProfit-1e-9 {
		t.Fatalf("improvement rounds regressed: %+v", stats)
	}
	// Stage attribution: the three deltas are defined as differences, so
	// the identity is exact, and the endpoints must match the stats.
	at := stats.Attribution
	if at.Initial != stats.InitialProfit || at.Final != stats.FinalProfit {
		t.Fatalf("attribution endpoints %+v disagree with stats %+v", at, stats)
	}
	if got := at.Initial + at.Improve + at.CentralReassign; math.Abs(got-at.Final) > 1e-9 {
		t.Fatalf("attribution %+v does not sum to final: %v", at, got)
	}

	// The distributed solve should be competitive with the sequential
	// solver on the same scenario (same building blocks, same greedy).
	solver, err := core.NewSolver(scen, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Profit() < 0.9*seq.Profit() {
		t.Fatalf("distributed profit %v far below sequential %v", a.Profit(), seq.Profit())
	}
}

func TestManagerCentralReassign(t *testing.T) {
	scen := genScenario(t, 30, 3)

	off := DefaultManagerConfig()
	off.CentralReassign = false
	mOff, err := NewManager(scen, localAgents(t, scen), off)
	if err != nil {
		t.Fatal(err)
	}
	defer mOff.Close()
	aOff, stOff, err := mOff.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if stOff.Reassignments != 0 {
		t.Fatalf("CentralReassign off but %d reassignments reported", stOff.Reassignments)
	}

	mOn, err := NewManager(scen, localAgents(t, scen), DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mOn.Close()
	aOn, stOn, err := mOn.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := aOn.Validate(); err != nil {
		t.Fatal(err)
	}
	// The polish must never drop a served client (it runs without
	// admission control) and must never lose profit.
	if aOn.NumAssigned() != aOff.NumAssigned() {
		t.Fatalf("polish changed assignment count: %d vs %d", aOn.NumAssigned(), aOff.NumAssigned())
	}
	if aOn.Profit() < aOff.Profit()-1e-9 {
		t.Fatalf("central reassign lost profit: %v -> %v", aOff.Profit(), aOn.Profit())
	}
	if math.Abs(aOn.Profit()-stOn.FinalProfit) > 1e-6 {
		t.Fatalf("merged profit %v != reported %v", aOn.Profit(), stOn.FinalProfit)
	}

	bad := DefaultManagerConfig()
	bad.MaxReassignPasses = -1
	if _, err := NewManager(scen, localAgents(t, scen), bad); err == nil {
		t.Fatal("negative MaxReassignPasses accepted")
	}
}

func TestManagerDeterministic(t *testing.T) {
	scen := genScenario(t, 15, 4)
	m1, err := NewManager(scen, localAgents(t, scen), DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := NewManager(scen, localAgents(t, scen), DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	a1, _, err := m1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := m2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.Profit()-a2.Profit()) > 1e-9 {
		t.Fatalf("same seed, different profits: %v vs %v", a1.Profit(), a2.Profit())
	}
}

// failingAgent wraps a LocalAgent and fails selected operations, to
// exercise the manager's error propagation.
type failingAgent struct {
	Agent

	failEvaluate bool
	failImprove  bool
	failSnapshot bool
	failReset    bool
}

func (f *failingAgent) Evaluate(ctx context.Context, id model.ClientID) (EvalResult, error) {
	if f.failEvaluate {
		return EvalResult{}, errTestInjected
	}
	return f.Agent.Evaluate(ctx, id)
}

func (f *failingAgent) Improve(ctx context.Context) (ImproveStats, error) {
	if f.failImprove {
		return ImproveStats{}, errTestInjected
	}
	return f.Agent.Improve(ctx)
}

func (f *failingAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	if f.failSnapshot {
		return nil, errTestInjected
	}
	return f.Agent.Snapshot(ctx)
}

func (f *failingAgent) Reset(ctx context.Context) error {
	if f.failReset {
		return errTestInjected
	}
	return f.Agent.Reset(ctx)
}

var errTestInjected = errors.New("injected failure")

func TestManagerPropagatesAgentFailures(t *testing.T) {
	scen := genScenario(t, 8, 5)
	tests := []struct {
		name   string
		mutate func(*failingAgent)
	}{
		{"evaluate", func(f *failingAgent) { f.failEvaluate = true }},
		{"improve", func(f *failingAgent) { f.failImprove = true }},
		{"snapshot", func(f *failingAgent) { f.failSnapshot = true }},
		{"reset", func(f *failingAgent) { f.failReset = true }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			agents := localAgents(t, scen)
			fa := &failingAgent{Agent: agents[2]}
			tt.mutate(fa)
			agents[2] = fa
			mgr, err := NewManager(scen, agents, DefaultManagerConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Close()
			if _, _, err := mgr.Solve(); !errors.Is(err, errTestInjected) {
				t.Fatalf("err = %v, want injected failure", err)
			}
		})
	}
}

func TestEvaluateReportsInfeasibleAsPass(t *testing.T) {
	// An agent whose cluster cannot host a client bids "not feasible"
	// rather than erroring, so one full cluster cannot stall the manager.
	cfg := workload.DefaultConfig()
	cfg.NumClients = 2
	cfg.NumClusters = 2
	cfg.MinServersPerCluster = 1
	cfg.MaxServersPerCluster = 1
	cfg.Seed = 6
	cfg.DiskNeed = workload.Range{Min: 100, Max: 100} // nothing fits anywhere
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bid, err := ag.Evaluate(testCtx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bid.Feasible {
		t.Fatal("impossible placement reported feasible")
	}
}

package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
)

// ManagerConfig tunes the distributed solve.
type ManagerConfig struct {
	// NumInitSolutions mirrors core.Config: randomized greedy passes.
	NumInitSolutions int
	// MaxImproveRounds bounds the distributed local-search rounds.
	MaxImproveRounds int
	// Tolerance is the relative profit improvement under which the
	// improvement loop stops.
	Tolerance float64
	// Seed drives the client processing order.
	Seed int64
}

// DefaultManagerConfig matches the sequential solver's defaults.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		NumInitSolutions: 3,
		MaxImproveRounds: 20,
		Tolerance:        1e-4,
		Seed:             1,
	}
}

// ManagerStats summarizes a distributed solve.
type ManagerStats struct {
	InitialProfit float64
	FinalProfit   float64
	ImproveRounds int
	Activations   int
	Deactivations int
	Unplaced      int
	Elapsed       time.Duration
}

// Manager is the paper's central resource manager: it owns the client
// list and coordinates one agent per cluster.
type Manager struct {
	scen   *model.Scenario
	agents []Agent
	cfg    ManagerConfig
}

// NewManager wires a manager to its cluster agents. Exactly one agent per
// cluster is required, in cluster order.
func NewManager(scen *model.Scenario, agents []Agent, cfg ManagerConfig) (*Manager, error) {
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if len(agents) != scen.Cloud.NumClusters() {
		return nil, fmt.Errorf("cluster: %d agents for %d clusters", len(agents), scen.Cloud.NumClusters())
	}
	for k, ag := range agents {
		id, err := ag.ClusterID()
		if err != nil {
			return nil, fmt.Errorf("cluster: agent %d: %w", k, err)
		}
		if id != model.ClusterID(k) {
			return nil, fmt.Errorf("cluster: agent %d manages cluster %d", k, id)
		}
	}
	if cfg.NumInitSolutions <= 0 || cfg.MaxImproveRounds < 0 || cfg.Tolerance < 0 {
		return nil, fmt.Errorf("cluster: invalid config %+v", cfg)
	}
	return &Manager{scen: scen, agents: agents, cfg: cfg}, nil
}

// Solve runs the distributed heuristic and merges the agents' final
// cluster states into a single allocation.
func (m *Manager) Solve() (*alloc.Allocation, ManagerStats, error) {
	start := time.Now()
	rng := rand.New(rand.NewSource(m.cfg.Seed))

	var (
		bestAssign map[model.ClientID]assignment
		bestProfit float64
		haveBest   bool
	)
	for iter := 0; iter < m.cfg.NumInitSolutions; iter++ {
		assignments, profit, err := m.initialPass(rng)
		if err != nil {
			return nil, ManagerStats{}, err
		}
		if !haveBest || profit > bestProfit {
			bestAssign, bestProfit, haveBest = assignments, profit, true
		}
	}

	// Load the best initial solution back into the agents.
	if err := m.load(bestAssign); err != nil {
		return nil, ManagerStats{}, err
	}
	stats := ManagerStats{InitialProfit: bestProfit}

	prev := bestProfit
	for round := 0; round < m.cfg.MaxImproveRounds; round++ {
		stats.ImproveRounds = round + 1
		total, err := m.improveRound(&stats)
		if err != nil {
			return nil, ManagerStats{}, err
		}
		if total-prev <= m.cfg.Tolerance*(1+abs(prev)) {
			prev = total
			break
		}
		prev = total
	}
	stats.FinalProfit = prev

	merged, err := m.merge()
	if err != nil {
		return nil, ManagerStats{}, err
	}
	stats.Unplaced = m.scen.NumClients() - merged.NumAssigned()
	stats.Elapsed = time.Since(start)
	return merged, stats, nil
}

type assignment struct {
	cluster  model.ClusterID
	portions []alloc.Portion
}

// initialPass runs one randomized greedy pass across the agents and
// returns the assignment map and its total profit.
func (m *Manager) initialPass(rng *rand.Rand) (map[model.ClientID]assignment, float64, error) {
	for _, ag := range m.agents {
		if err := ag.Reset(); err != nil {
			return nil, 0, fmt.Errorf("cluster: reset: %w", err)
		}
	}
	assignments := make(map[model.ClientID]assignment, m.scen.NumClients())
	for _, ci := range rng.Perm(m.scen.NumClients()) {
		id := model.ClientID(ci)
		bids, err := m.broadcastEvaluate(id)
		if err != nil {
			return nil, 0, err
		}
		bestK := -1
		for k, bid := range bids {
			if !bid.Feasible {
				continue
			}
			if bestK == -1 || bid.Est > bids[bestK].Est {
				bestK = k
			}
		}
		for bestK != -1 {
			if err := m.agents[bestK].Commit(id, bids[bestK].Portions); err == nil {
				assignments[id] = assignment{cluster: model.ClusterID(bestK), portions: bids[bestK].Portions}
				break
			}
			bids[bestK].Feasible = false
			bestK = -1
			for k, bid := range bids {
				if !bid.Feasible {
					continue
				}
				if bestK == -1 || bid.Est > bids[bestK].Est {
					bestK = k
				}
			}
		}
	}
	profit, err := m.totalProfit()
	if err != nil {
		return nil, 0, err
	}
	return assignments, profit, nil
}

// broadcastEvaluate collects all agents' bids for a client in parallel —
// the distributed analogue of trying every cluster.
func (m *Manager) broadcastEvaluate(id model.ClientID) ([]EvalResult, error) {
	bids := make([]EvalResult, len(m.agents))
	errs := make([]error, len(m.agents))
	var wg sync.WaitGroup
	for k := range m.agents {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			bids[k], errs[k] = m.agents[k].Evaluate(id)
		}(k)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("cluster: evaluate client %d: %w", id, err)
	}
	return bids, nil
}

// load resets the agents and replays an assignment map into them.
func (m *Manager) load(assignments map[model.ClientID]assignment) error {
	for _, ag := range m.agents {
		if err := ag.Reset(); err != nil {
			return fmt.Errorf("cluster: reset: %w", err)
		}
	}
	for i := 0; i < m.scen.NumClients(); i++ {
		id := model.ClientID(i)
		as, ok := assignments[id]
		if !ok {
			continue
		}
		if err := m.agents[as.cluster].Commit(id, as.portions); err != nil {
			return fmt.Errorf("cluster: replay client %d: %w", id, err)
		}
	}
	return nil
}

// improveRound runs one Improve on every agent in parallel and returns
// the total profit afterwards.
func (m *Manager) improveRound(stats *ManagerStats) (float64, error) {
	results := make([]ImproveStats, len(m.agents))
	errs := make([]error, len(m.agents))
	var wg sync.WaitGroup
	for k := range m.agents {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = m.agents[k].Improve()
		}(k)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, fmt.Errorf("cluster: improve round: %w", err)
	}
	var total float64
	for _, r := range results {
		total += r.Profit
		stats.Activations += r.Activations
		stats.Deactivations += r.Deactivations
	}
	return total, nil
}

// totalProfit sums the agents' cluster profits. Each agent answers from
// its allocation's incremental ledger, so a round's total costs
// O(mutations since the previous round), not O(cloud).
func (m *Manager) totalProfit() (float64, error) {
	var total float64
	for k, ag := range m.agents {
		p, err := ag.Profit()
		if err != nil {
			return 0, fmt.Errorf("cluster: profit of cluster %d: %w", k, err)
		}
		total += p
	}
	return total, nil
}

// merge combines every agent's snapshot into one allocation.
func (m *Manager) merge() (*alloc.Allocation, error) {
	merged := alloc.New(m.scen)
	for k, ag := range m.agents {
		snap, err := ag.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot of cluster %d: %w", k, err)
		}
		for id, portions := range snap {
			if err := merged.Assign(id, model.ClusterID(k), portions); err != nil {
				return nil, fmt.Errorf("cluster: merge client %d: %w", id, err)
			}
		}
	}
	return merged, nil
}

// Close closes all agents, returning the first error.
func (m *Manager) Close() error {
	var errs []error
	for _, ag := range m.agents {
		errs = append(errs, ag.Close())
	}
	return errors.Join(errs...)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

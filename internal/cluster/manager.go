package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// ManagerConfig tunes the distributed solve.
type ManagerConfig struct {
	// NumInitSolutions mirrors core.Config: randomized greedy passes.
	NumInitSolutions int
	// MaxImproveRounds bounds the distributed local-search rounds.
	MaxImproveRounds int
	// Tolerance is the relative profit improvement under which the
	// improvement loop stops.
	Tolerance float64
	// Seed drives the client processing order.
	Seed int64
	// CentralReassign runs the cloud-level reassignment pipeline on the
	// merged allocation after the distributed improvement rounds.
	// Cross-cluster client moves are a central-manager operation (paper
	// Section V) the per-cluster agents cannot perform; without this
	// polish the distributed solve never moves a client between clusters
	// after the initial greedy placement.
	CentralReassign bool
	// MaxReassignPasses bounds the central reassignment rounds; each
	// pass after the first costs roughly O(changed clients) thanks to
	// the solver's dirty-cluster tracking.
	MaxReassignPasses int
	// ReassignWorkers sizes the central pass's scoring worker pool
	// (core.Config.Workers): 0 uses GOMAXPROCS.
	ReassignWorkers int
	// ReassignTopK bounds the central pass's candidate generation
	// (core.Config.CandidateClusters): each client is scored against at
	// most this many index-ranked clusters instead of the whole cloud.
	// 0 keeps the exhaustive scan; >= the cluster count is equivalent
	// to it.
	ReassignTopK int
	// MaxInFlight bounds concurrent per-agent RPCs in every manager
	// fan-out (evaluate broadcasts, replay loads, improve rounds,
	// profit polls, snapshot merges) — the round loop's backpressure:
	// hundreds of agents never become hundreds of simultaneous
	// in-flight calls. 0 uses DefaultMaxInFlight.
	MaxInFlight int
	// CallTimeout, when > 0, bounds each per-agent unit of work in a
	// fan-out (one Evaluate, one Improve, one snapshot, one replay)
	// with a context deadline; the RPC layer turns it into conn
	// deadlines, so a hung agent fails its round instead of stalling
	// the whole solve. 0 leaves rounds unbounded (the dialing policy's
	// per-attempt Timeout still applies to remote agents).
	CallTimeout time.Duration
	// Telemetry, when non-nil, instruments the manager: solve/round
	// spans, round-latency histograms and per-cluster profit gauges.
	Telemetry *telemetry.Set
}

// DefaultMaxInFlight is the fan-out concurrency bound when
// ManagerConfig.MaxInFlight is 0. Agent RPCs are I/O-bound, so the
// bound is deliberately above GOMAXPROCS on small hosts.
const DefaultMaxInFlight = 16

// DefaultManagerConfig matches the sequential solver's defaults.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		NumInitSolutions:  3,
		MaxImproveRounds:  20,
		Tolerance:         1e-4,
		Seed:              1,
		CentralReassign:   true,
		MaxReassignPasses: 3,
	}
}

// ManagerAttribution splits a distributed solve's final profit into the
// contribution of each manager-level phase: the greedy initial pass, the
// distributed improvement rounds, and the central reassignment polish.
// Initial + Improve + CentralReassign = Final up to float summation
// order — the manager-side counterpart of core.Attribution.
type ManagerAttribution struct {
	Initial         float64 `json:"initial"`
	Improve         float64 `json:"improve"`
	CentralReassign float64 `json:"central_reassign"`
	Final           float64 `json:"final"`
}

// ManagerStats summarizes a distributed solve.
type ManagerStats struct {
	InitialProfit float64
	FinalProfit   float64
	ImproveRounds int
	Activations   int
	Deactivations int
	// Reassignments counts the cross-cluster moves of the central
	// reassignment polish (0 when CentralReassign is off).
	Reassignments int
	Unplaced      int
	// Elapsed is the wall-clock time of the whole solve; InitElapsed the
	// share spent building (and replaying) the initial solutions.
	Elapsed     time.Duration
	InitElapsed time.Duration
	// RoundDurations has one entry per improvement round, in order —
	// the distributed counterpart of core.Stats timing.
	RoundDurations []time.Duration
	// Attribution is the per-phase profit breakdown of the solve.
	Attribution ManagerAttribution
}

// mgrTel holds the manager's pre-resolved metric handles; nil disables.
type mgrTel struct {
	set           *telemetry.Set
	solves        *telemetry.Counter
	initDur       *telemetry.Histogram
	roundDur      *telemetry.Histogram
	clusterProfit []*telemetry.Gauge // one per cluster
}

func newMgrTel(set *telemetry.Set, numK int) *mgrTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("manager_cluster_profit", "per-cluster profit after the most recent improvement round")
	t := &mgrTel{
		set:      set,
		solves:   set.Counter("manager_solves_total"),
		initDur:  set.Histogram("manager_initial_pass_seconds", telemetry.DurationBuckets),
		roundDur: set.Histogram("manager_round_seconds", telemetry.DurationBuckets),
	}
	for k := 0; k < numK; k++ {
		t.clusterProfit = append(t.clusterProfit,
			set.Gauge(telemetry.Name("manager_cluster_profit", "cluster", strconv.Itoa(k))))
	}
	return t
}

func (t *mgrTel) startCtx(ctx context.Context, name string) (telemetry.Span, context.Context) {
	if t == nil {
		return telemetry.Span{}, ctx
	}
	return t.set.StartCtx(ctx, name)
}

// Manager is the paper's central resource manager: it owns the client
// list and coordinates one agent per cluster.
type Manager struct {
	scen   *model.Scenario
	agents []Agent
	cfg    ManagerConfig
	tel    *mgrTel
	// reassigner runs the central reassignment polish on the merged
	// allocation (nil when CentralReassign is off). Its cross-round
	// dirty-cluster marks persist between Solve calls.
	reassigner *core.Solver
}

// NewManager wires a manager to its cluster agents. Exactly one agent per
// cluster is required, in cluster order.
func NewManager(scen *model.Scenario, agents []Agent, cfg ManagerConfig) (*Manager, error) {
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if len(agents) != scen.Cloud.NumClusters() {
		return nil, fmt.Errorf("cluster: %d agents for %d clusters", len(agents), scen.Cloud.NumClusters())
	}
	for k, ag := range agents {
		id, err := ag.ClusterID(context.Background())
		if err != nil {
			return nil, fmt.Errorf("cluster: agent %d: %w", k, err)
		}
		if id != model.ClusterID(k) {
			return nil, fmt.Errorf("cluster: agent %d manages cluster %d", k, id)
		}
	}
	if cfg.NumInitSolutions <= 0 || cfg.MaxImproveRounds < 0 || cfg.Tolerance < 0 ||
		cfg.MaxReassignPasses < 0 || cfg.ReassignWorkers < 0 || cfg.ReassignTopK < 0 ||
		cfg.MaxInFlight < 0 || cfg.CallTimeout < 0 {
		return nil, fmt.Errorf("cluster: invalid config %+v", cfg)
	}
	m := &Manager{
		scen:   scen,
		agents: agents,
		cfg:    cfg,
		tel:    newMgrTel(cfg.Telemetry, scen.Cloud.NumClusters()),
	}
	if cfg.CentralReassign && cfg.MaxReassignPasses > 0 {
		ccfg := core.DefaultConfig()
		ccfg.Workers = cfg.ReassignWorkers
		ccfg.CandidateClusters = cfg.ReassignTopK
		ccfg.Telemetry = cfg.Telemetry
		// The polish only moves clients between clusters; dropping an
		// already-served client would break the distributed solve's
		// constraint-(6) contract (every admitted client stays served).
		ccfg.AdmissionControl = false
		solver, err := core.NewSolver(scen, ccfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: central reassigner: %w", err)
		}
		m.reassigner = solver
	}
	return m, nil
}

// Solve runs the distributed heuristic and merges the agents' final
// cluster states into a single allocation.
func (m *Manager) Solve() (*alloc.Allocation, ManagerStats, error) {
	return m.SolveCtx(context.Background())
}

// SolveCtx is Solve under a caller-provided context. The whole solve —
// initial passes, improvement rounds, every RPC to every agent, and the
// agents' own spans on the far side of the wire — records as one trace
// tree rooted at the manager.solve span (or at the caller's span when
// ctx already carries trace context).
func (m *Manager) SolveCtx(ctx context.Context) (*alloc.Allocation, ManagerStats, error) {
	start := time.Now()
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	sp, ctx := m.tel.startCtx(ctx, "manager.solve")
	sp.Attr("clients", m.scen.NumClients())
	sp.Attr("clusters", len(m.agents))
	if m.tel != nil {
		m.tel.solves.Inc()
	}

	isp, ictx := m.tel.startCtx(ctx, "manager.initial_pass")
	var (
		bestAssign map[model.ClientID]assignment
		bestProfit float64
		haveBest   bool
	)
	for iter := 0; iter < m.cfg.NumInitSolutions; iter++ {
		assignments, profit, err := m.initialPass(ictx, rng)
		if err != nil {
			return nil, ManagerStats{}, err
		}
		if !haveBest || profit > bestProfit {
			bestAssign, bestProfit, haveBest = assignments, profit, true
		}
	}

	// Load the best initial solution back into the agents.
	if err := m.load(ictx, bestAssign); err != nil {
		return nil, ManagerStats{}, err
	}
	stats := ManagerStats{InitialProfit: bestProfit, InitElapsed: time.Since(start)}
	if m.tel != nil {
		m.tel.initDur.Observe(stats.InitElapsed.Seconds())
		isp.Attr("initial_profit", bestProfit)
	}
	isp.End()

	prev := bestProfit
	for round := 0; round < m.cfg.MaxImproveRounds; round++ {
		stats.ImproveRounds = round + 1
		rsp, rctx := m.tel.startCtx(ctx, "manager.improve_round")
		t0 := time.Now()
		total, err := m.improveRound(rctx, &stats)
		if err != nil {
			return nil, ManagerStats{}, err
		}
		roundDur := time.Since(t0)
		stats.RoundDurations = append(stats.RoundDurations, roundDur)
		if m.tel != nil {
			m.tel.roundDur.Observe(roundDur.Seconds())
			rsp.Attr("round", round+1)
			rsp.Attr("profit", total)
			rsp.Attr("delta", total-prev)
		}
		rsp.End()
		if total-prev <= m.cfg.Tolerance*(1+abs(prev)) {
			prev = total
			break
		}
		prev = total
	}
	stats.FinalProfit = prev
	improved := prev // profit after the distributed rounds, pre-polish

	merged, err := m.merge(ctx)
	if err != nil {
		return nil, ManagerStats{}, err
	}

	// Central reassignment polish: the one local-search move only the
	// manager can make — moving clients across clusters on the merged
	// global state (paper Section V).
	if m.reassigner != nil {
		csp, cctx := m.tel.startCtx(ctx, "manager.central_reassign")
		if m.cfg.Telemetry != nil {
			merged.Instrument(m.cfg.Telemetry)
		}
		for pass := 0; pass < m.cfg.MaxReassignPasses; pass++ {
			moved := m.reassigner.ReassignmentPassCtx(cctx, merged)
			stats.Reassignments += moved
			if moved == 0 {
				break
			}
		}
		if stats.Reassignments > 0 {
			stats.FinalProfit = merged.Profit()
		}
		csp.Attr("moves", stats.Reassignments)
		csp.End()
	}
	stats.Attribution = ManagerAttribution{
		Initial:         stats.InitialProfit,
		Improve:         improved - stats.InitialProfit,
		CentralReassign: stats.FinalProfit - improved,
		Final:           stats.FinalProfit,
	}
	stats.Unplaced = m.scen.NumClients() - merged.NumAssigned()
	stats.Elapsed = time.Since(start)
	if m.tel != nil {
		sp.Attr("final_profit", stats.FinalProfit)
		sp.Attr("rounds", stats.ImproveRounds)
	}
	sp.End()
	return merged, stats, nil
}

type assignment struct {
	cluster  model.ClusterID
	portions []alloc.Portion
}

// initialPass runs one randomized greedy pass across the agents and
// returns the assignment map and its total profit.
func (m *Manager) initialPass(ctx context.Context, rng *rand.Rand) (map[model.ClientID]assignment, float64, error) {
	errs := m.fanOut(ctx, func(ctx context.Context, k int) error {
		return m.agents[k].Reset(ctx)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, 0, fmt.Errorf("cluster: reset: %w", err)
	}
	assignments := make(map[model.ClientID]assignment, m.scen.NumClients())
	var heap bidHeap
	for _, ci := range rng.Perm(m.scen.NumClients()) {
		id := model.ClientID(ci)
		bids, err := m.broadcastEvaluate(ctx, id)
		if err != nil {
			return nil, 0, err
		}
		// Feasible bids go into a max-heap on (Est desc, cluster asc),
		// so a commit retry pops the runner-up in O(log K) instead of
		// re-scanning all K bids per rejected cluster.
		heap = heap[:0]
		for k, bid := range bids {
			if bid.Feasible {
				heap = heap.push(bidRef{est: bid.Est, k: k})
			}
		}
		for len(heap) > 0 {
			var top bidRef
			heap, top = heap.pop()
			if err := m.agents[top.k].Commit(ctx, id, bids[top.k].Portions); err == nil {
				assignments[id] = assignment{cluster: model.ClusterID(top.k), portions: bids[top.k].Portions}
				break
			}
		}
	}
	profit, err := m.totalProfit(ctx)
	if err != nil {
		return nil, 0, err
	}
	return assignments, profit, nil
}

// bidRef is one feasible cluster bid in the initial pass's commit heap.
type bidRef struct {
	est float64
	k   int
}

// bidBefore orders the heap: higher estimate first, lower cluster index
// on ties — the order the former linear rescan selected.
func bidBefore(x, y bidRef) bool {
	if x.est != y.est {
		return x.est > y.est
	}
	return x.k < y.k
}

// bidHeap is a binary max-heap on a recycled slice.
type bidHeap []bidRef

func (h bidHeap) push(b bidRef) bidHeap {
	h = append(h, b)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !bidBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func (h bidHeap) pop() (bidHeap, bidRef) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < len(h) && bidBefore(h[l], h[next]) {
			next = l
		}
		if r < len(h) && bidBefore(h[r], h[next]) {
			next = r
		}
		if next == i {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return h, top
}

// maxInFlight resolves the fan-out concurrency bound.
func (m *Manager) maxInFlight() int {
	if m.cfg.MaxInFlight > 0 {
		return m.cfg.MaxInFlight
	}
	return DefaultMaxInFlight
}

// fanOut runs fn once per agent on a bounded worker pool — the round
// loop's backpressure: at most maxInFlight agent calls are in flight at
// once, regardless of how many agents the manager coordinates. Each
// per-agent unit runs under CallTimeout when configured, so one hung
// agent fails its own slot instead of wedging the round. The returned
// slice has one entry per agent in agent order (nil on success), so
// callers keep deterministic error folding.
func (m *Manager) fanOut(ctx context.Context, fn func(ctx context.Context, k int) error) []error {
	errs := make([]error, len(m.agents))
	parallel.For(parallel.Options{Workers: m.maxInFlight(), Ctx: ctx}, len(m.agents), func(_, k int) {
		actx := ctx
		if m.cfg.CallTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, m.cfg.CallTimeout)
			defer cancel()
		}
		errs[k] = fn(actx, k)
	})
	return errs
}

// broadcastEvaluate collects all agents' bids for a client on the
// bounded fan-out — the distributed analogue of trying every cluster.
func (m *Manager) broadcastEvaluate(ctx context.Context, id model.ClientID) ([]EvalResult, error) {
	bids := make([]EvalResult, len(m.agents))
	errs := m.fanOut(ctx, func(ctx context.Context, k int) error {
		var err error
		bids[k], err = m.agents[k].Evaluate(ctx, id)
		return err
	})
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("cluster: evaluate client %d: %w", id, err)
	}
	return bids, nil
}

// load resets the agents and replays an assignment map into them. Each
// agent only sees its own cluster's clients, so the replays are grouped
// per cluster (in client-ID order within each group, for deterministic
// agent-side state) and run on the bounded fan-out — the same shape as
// broadcastEvaluate. CallTimeout covers one agent's whole replay, not
// each Commit, so size it for the largest cluster.
func (m *Manager) load(ctx context.Context, assignments map[model.ClientID]assignment) error {
	groups := make([][]model.ClientID, len(m.agents))
	for i := 0; i < m.scen.NumClients(); i++ {
		id := model.ClientID(i)
		if as, ok := assignments[id]; ok {
			groups[as.cluster] = append(groups[as.cluster], id)
		}
	}
	errs := m.fanOut(ctx, func(ctx context.Context, k int) error {
		if err := m.agents[k].Reset(ctx); err != nil {
			return fmt.Errorf("cluster: reset: %w", err)
		}
		for _, id := range groups[k] {
			if err := m.agents[k].Commit(ctx, id, assignments[id].portions); err != nil {
				return fmt.Errorf("cluster: replay client %d: %w", id, err)
			}
		}
		return nil
	})
	return errors.Join(errs...)
}

// improveRound runs one Improve on every agent (bounded fan-out) and
// returns the total profit afterwards.
func (m *Manager) improveRound(ctx context.Context, stats *ManagerStats) (float64, error) {
	results := make([]ImproveStats, len(m.agents))
	errs := m.fanOut(ctx, func(ctx context.Context, k int) error {
		var err error
		results[k], err = m.agents[k].Improve(ctx)
		return err
	})
	if err := errors.Join(errs...); err != nil {
		return 0, fmt.Errorf("cluster: improve round: %w", err)
	}
	var total float64
	for k, r := range results {
		total += r.Profit
		stats.Activations += r.Activations
		stats.Deactivations += r.Deactivations
		if m.tel != nil {
			m.tel.clusterProfit[k].Set(r.Profit)
		}
	}
	return total, nil
}

// totalProfit sums the agents' cluster profits. Each agent answers from
// its allocation's incremental ledger, so a round's total costs
// O(mutations since the previous round), not O(cloud). The queries run
// on the bounded fan-out; the sum folds in fixed agent order, so the
// floating-point total is independent of scheduling.
func (m *Manager) totalProfit(ctx context.Context) (float64, error) {
	profits := make([]float64, len(m.agents))
	errs := m.fanOut(ctx, func(ctx context.Context, k int) error {
		p, err := m.agents[k].Profit(ctx)
		if err != nil {
			return fmt.Errorf("cluster: profit of cluster %d: %w", k, err)
		}
		profits[k] = p
		return nil
	})
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	var total float64
	for _, p := range profits {
		total += p
	}
	return total, nil
}

// merge combines every agent's snapshot into one allocation. Snapshots
// are fetched on the bounded fan-out, then folded serially in agent
// order with sorted client IDs, so the merged allocation's mutation
// order — and hence its ledger's float summation order — is identical
// run to run. That determinism is what lets the chaos tests compare a
// faulty solve against the fault-free one bit-for-bit.
func (m *Manager) merge(ctx context.Context) (*alloc.Allocation, error) {
	snaps := make([]map[model.ClientID][]alloc.Portion, len(m.agents))
	errs := m.fanOut(ctx, func(ctx context.Context, k int) error {
		snap, err := m.agents[k].Snapshot(ctx)
		if err != nil {
			return fmt.Errorf("cluster: snapshot of cluster %d: %w", k, err)
		}
		snaps[k] = snap
		return nil
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	merged := alloc.New(m.scen)
	for k, snap := range snaps {
		ids := make([]model.ClientID, 0, len(snap))
		for id := range snap {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := merged.Assign(id, model.ClusterID(k), snap[id]); err != nil {
				return nil, fmt.Errorf("cluster: merge client %d: %w", id, err)
			}
		}
	}
	return merged, nil
}

// Close closes all agents, returning the first error.
func (m *Manager) Close() error {
	var errs []error
	for _, ag := range m.agents {
		errs = append(errs, ag.Close())
	}
	return errors.Join(errs...)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestDistributedSolveSingleTraceTree runs a three-agent in-process
// distributed solve with one shared telemetry set and checks the
// tentpole invariant: every span the solve records belongs to one trace
// and is reachable from the manager.solve root by parent links — one
// connected tree spanning the manager and all agents.
func TestDistributedSolveSingleTraceTree(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 15
	cfg.NumClusters = 3
	cfg.Seed = 11
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	set := telemetry.New(nil)
	agents := make([]Agent, scen.Cloud.NumClusters())
	for k := range agents {
		ccfg := core.DefaultConfig()
		ccfg.Telemetry = set
		ag, err := NewLocalAgent(scen, model.ClusterID(k), ccfg)
		if err != nil {
			t.Fatal(err)
		}
		agents[k] = ag
	}
	mcfg := DefaultManagerConfig()
	mcfg.Telemetry = set
	mgr, err := NewManager(scen, agents, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, _, err := mgr.Solve(); err != nil {
		t.Fatal(err)
	}

	spans := set.Tracer.Snapshot()
	byID := make(map[telemetry.ID]telemetry.SpanRecord, len(spans))
	var root telemetry.SpanRecord
	var roots int
	for _, sp := range spans {
		if sp.SpanID == 0 {
			t.Fatalf("span %q recorded without an ID", sp.Name)
		}
		byID[sp.SpanID] = sp
		if sp.Name == "manager.solve" {
			root = sp
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("want exactly one manager.solve root, got %d", roots)
	}
	if root.ParentID != 0 {
		t.Fatalf("manager.solve has parent %s, want root", root.ParentID)
	}

	// Connectivity: every span belongs to the root's trace and walks up
	// to it. A broken parent link or a second trace ID means the tree
	// fell apart somewhere between manager and agents.
	agentImproves := map[any]bool{}
	for _, sp := range spans {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %q is in trace %s, want %s (single tree)", sp.Name, sp.TraceID, root.TraceID)
		}
		cur := sp
		for hops := 0; cur.SpanID != root.SpanID; hops++ {
			if hops > len(spans) {
				t.Fatalf("span %q: parent chain does not terminate", sp.Name)
			}
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %q: parent %s of %q not in snapshot", sp.Name, cur.ParentID, cur.Name)
			}
			cur = parent
		}
		if sp.Name == "agent.improve" {
			for _, a := range sp.Attrs {
				if a.Key == "cluster" {
					agentImproves[a.Value] = true
				}
			}
		}
	}
	if len(agentImproves) != 3 {
		t.Fatalf("agent.improve spans cover %d clusters, want all 3", len(agentImproves))
	}
}

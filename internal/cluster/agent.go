// Package cluster implements the paper's distributed decision making: a
// central manager holds the client set while one agent per cluster
// evaluates placements and improves its own cluster in parallel (Section
// V: "the local agents are used to parallelize the solution and decrease
// the decision time"). Agents can run in-process (LocalAgent) or behind a
// TCP transport (internal/agentrpc).
package cluster

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// EvalResult is an agent's bid for hosting a client.
type EvalResult struct {
	// Feasible is false when the cluster cannot host the client.
	Feasible bool
	// Est is the approximate profit of the placement.
	Est float64
	// Portions realize the placement.
	Portions []alloc.Portion
}

// ImproveStats reports one cluster-local improvement round.
type ImproveStats struct {
	Activations   int
	Deactivations int
	Profit        float64
}

// Agent is the cluster-side interface of the distributed solver. Every
// operation takes a context carrying the manager's trace context
// (telemetry.RefFromContext), so spans an agent records — in-process or
// on the far side of an RPC hop — parent into the manager's trace tree.
type Agent interface {
	// ClusterID identifies the cluster the agent manages.
	ClusterID(ctx context.Context) (model.ClusterID, error)
	// Reset clears all assignments (start of a fresh initial solution).
	Reset(ctx context.Context) error
	// Evaluate bids for hosting client id against current cluster state.
	Evaluate(ctx context.Context, id model.ClientID) (EvalResult, error)
	// Commit places client id with the given portions.
	Commit(ctx context.Context, id model.ClientID, portions []alloc.Portion) error
	// Remove unassigns client id.
	Remove(ctx context.Context, id model.ClientID) error
	// Improve runs one round of cluster-local search phases.
	Improve(ctx context.Context) (ImproveStats, error)
	// Profit returns the cluster-local profit.
	Profit(ctx context.Context) (float64, error)
	// Snapshot returns the cluster's current assignments.
	Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error)
	// Close releases agent resources.
	Close() error
}

// LocalAgent runs a cluster agent in-process.
type LocalAgent struct {
	k      model.ClusterID
	solver *core.Solver
	a      *alloc.Allocation
	tel    *telemetry.Set // nil when telemetry is disabled
}

var _ Agent = (*LocalAgent)(nil)

// NewLocalAgent builds an agent for cluster k of the scenario. When
// cfg.Telemetry is set, both the agent's solver and its allocation
// ledger report to it.
func NewLocalAgent(scen *model.Scenario, k model.ClusterID, cfg core.Config) (*LocalAgent, error) {
	if int(k) < 0 || int(k) >= scen.Cloud.NumClusters() {
		return nil, fmt.Errorf("cluster: unknown cluster %d", k)
	}
	// Agents are single-cluster sequential workers; the manager provides
	// the parallelism.
	cfg.Parallel = false
	solver, err := core.NewSolver(scen, cfg)
	if err != nil {
		return nil, err
	}
	ag := &LocalAgent{k: k, solver: solver, a: alloc.New(scen), tel: cfg.Telemetry}
	ag.a.Instrument(ag.tel)
	return ag, nil
}

// ClusterID implements Agent.
func (ag *LocalAgent) ClusterID(ctx context.Context) (model.ClusterID, error) { return ag.k, nil }

// Reset implements Agent.
func (ag *LocalAgent) Reset(ctx context.Context) error {
	ag.a = alloc.New(ag.solver.Scenario())
	ag.a.Instrument(ag.tel)
	return nil
}

// Evaluate implements Agent.
func (ag *LocalAgent) Evaluate(ctx context.Context, id model.ClientID) (EvalResult, error) {
	est, portions, err := ag.solver.AssignDistribute(ag.a, id, ag.k)
	if err != nil {
		// Infeasibility is a valid bid ("pass"), not a transport error.
		return EvalResult{}, nil
	}
	return EvalResult{Feasible: true, Est: est, Portions: portions}, nil
}

// Commit implements Agent.
func (ag *LocalAgent) Commit(ctx context.Context, id model.ClientID, portions []alloc.Portion) error {
	return ag.a.Assign(id, ag.k, portions)
}

// Remove implements Agent.
func (ag *LocalAgent) Remove(ctx context.Context, id model.ClientID) error {
	ag.a.Unassign(id)
	return nil
}

// Improve implements Agent: one sweep of the paper's cluster-local
// phases. The sweep records an agent.improve span under the caller's
// trace context — across an RPC hop this is the leaf of the manager's
// trace tree.
func (ag *LocalAgent) Improve(ctx context.Context) (ImproveStats, error) {
	sp, ctx := ag.tel.StartCtx(ctx, "agent.improve")
	sp.Attr("cluster", int(ag.k))
	defer sp.End()
	scen := ag.solver.Scenario()
	for _, j := range scen.Cloud.ClusterServers(ag.k) {
		ag.solver.AdjustResourceShares(ag.a, j)
	}
	for i := range scen.Clients {
		id := model.ClientID(i)
		if ag.a.ClusterOf(id) == int(ag.k) {
			ag.solver.AdjustDispersionRates(ag.a, id)
		}
	}
	st := ImproveStats{
		Activations:   ag.solver.TurnOnServers(ag.a, ag.k),
		Deactivations: ag.solver.TurnOffServers(ag.a, ag.k),
	}
	p, err := ag.Profit(ctx)
	if err != nil {
		return st, err
	}
	st.Profit = p
	return st, nil
}

// Profit implements Agent: the cluster's profit contribution read from
// the allocation's incremental ledger — O(entries touched since the last
// evaluation) instead of a full scan over clients and servers, so the
// manager can poll agents every improvement round at scale.
func (ag *LocalAgent) Profit(ctx context.Context) (float64, error) {
	return ag.a.ClusterProfit(ag.k), nil
}

// Snapshot implements Agent.
func (ag *LocalAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	out := make(map[model.ClientID][]alloc.Portion)
	scen := ag.solver.Scenario()
	for i := range scen.Clients {
		id := model.ClientID(i)
		if ag.a.ClusterOf(id) == int(ag.k) {
			out[id] = ag.a.Portions(id)
		}
	}
	return out, nil
}

// Close implements Agent.
func (ag *LocalAgent) Close() error { return nil }

package cluster

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestBidHeapOrdering: the commit-retry heap must yield bids in the
// order the former linear rescan selected — estimate descending,
// cluster index ascending on ties — for any insertion order.
func TestBidHeapOrdering(t *testing.T) {
	tests := []struct {
		name string
		in   []bidRef
		want []int // expected cluster index pop order
	}{
		{"empty", nil, nil},
		{"single", []bidRef{{est: 1, k: 0}}, []int{0}},
		{
			"descending estimates",
			[]bidRef{{est: 1, k: 0}, {est: 3, k: 1}, {est: 2, k: 2}},
			[]int{1, 2, 0},
		},
		{
			"ties break on lower cluster",
			[]bidRef{{est: 5, k: 3}, {est: 5, k: 1}, {est: 5, k: 2}},
			[]int{1, 2, 3},
		},
		{
			"duplicates survive",
			[]bidRef{{est: 2, k: 1}, {est: 2, k: 1}, {est: 7, k: 0}},
			[]int{0, 1, 1},
		},
		{
			"negative and zero estimates",
			[]bidRef{{est: -1, k: 0}, {est: 0, k: 1}, {est: -3, k: 2}},
			[]int{1, 0, 2},
		},
		{
			"already sorted input",
			[]bidRef{{est: 9, k: 0}, {est: 8, k: 1}, {est: 7, k: 2}, {est: 6, k: 3}},
			[]int{0, 1, 2, 3},
		},
		{
			"reverse sorted input",
			[]bidRef{{est: 6, k: 3}, {est: 7, k: 2}, {est: 8, k: 1}, {est: 9, k: 0}},
			[]int{0, 1, 2, 3},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var h bidHeap
			for _, b := range tt.in {
				h = h.push(b)
			}
			var got []int
			var prev *bidRef
			for len(h) > 0 {
				var top bidRef
				h, top = h.pop()
				if prev != nil && bidBefore(top, *prev) {
					t.Fatalf("heap yielded %+v after %+v", top, *prev)
				}
				p := top
				prev = &p
				got = append(got, top.k)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("popped %d bids, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("pop order %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// TestMergeRejectsDuplicateClient: two agents both claiming the same
// client is a state corruption the merge must refuse, not silently
// double-count.
func TestMergeRejectsDuplicateClient(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 4
	cfg.NumClusters = 2
	cfg.Seed = 11
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agents := localAgents(t, scen)
	// Commit client 0 into BOTH agents: each agent's local state is
	// fine in isolation; only the merge can see the conflict.
	for _, ag := range agents {
		bid, err := ag.Evaluate(testCtx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bid.Feasible {
			t.Skip("client 0 infeasible in generated scenario")
		}
		if err := ag.Commit(testCtx, 0, bid.Portions); err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := NewManager(scen, agents, DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, err := mgr.merge(testCtx); err == nil {
		t.Fatal("merge accepted a client assigned to two clusters")
	} else if !strings.Contains(err.Error(), "merge client 0") {
		t.Fatalf("unexpected merge error: %v", err)
	}
}

// rejectAgent bids infeasible for everything — the all-full cloud.
type rejectAgent struct {
	id model.ClusterID
}

func (r *rejectAgent) ClusterID(ctx context.Context) (model.ClusterID, error) { return r.id, nil }
func (r *rejectAgent) Reset(ctx context.Context) error                        { return nil }
func (r *rejectAgent) Evaluate(ctx context.Context, id model.ClientID) (EvalResult, error) {
	return EvalResult{Feasible: false}, nil
}
func (r *rejectAgent) Commit(ctx context.Context, id model.ClientID, p []alloc.Portion) error {
	panic("commit on all-reject agent")
}
func (r *rejectAgent) Remove(ctx context.Context, id model.ClientID) error { return nil }
func (r *rejectAgent) Improve(ctx context.Context) (ImproveStats, error)   { return ImproveStats{}, nil }
func (r *rejectAgent) Profit(ctx context.Context) (float64, error)         { return 0, nil }
func (r *rejectAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	return nil, nil
}
func (r *rejectAgent) Close() error { return nil }

// TestSolveAllReject: when no cluster accepts any client the solve
// still terminates cleanly with zero profit and every client unplaced —
// and never commits anything.
func TestSolveAllReject(t *testing.T) {
	scen := genScenario(t, 6, 3)
	agents := make([]Agent, scen.Cloud.NumClusters())
	for k := range agents {
		agents[k] = &rejectAgent{id: model.ClusterID(k)}
	}
	cfg := DefaultManagerConfig()
	cfg.CentralReassign = false // nothing to polish; keep the stub pure
	mgr, err := NewManager(scen, agents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalProfit != 0 {
		t.Fatalf("profit %f from an all-reject cloud", stats.FinalProfit)
	}
	if stats.Unplaced != scen.NumClients() {
		t.Fatalf("Unplaced = %d, want %d", stats.Unplaced, scen.NumClients())
	}
	if a.NumAssigned() != 0 {
		t.Fatalf("%d clients assigned by rejecting agents", a.NumAssigned())
	}
}

// TestSolveSingleAgentDegenerate: one cluster, no peers to bid against —
// the solve degenerates to that agent's local search and must still
// satisfy the attribution identity.
func TestSolveSingleAgentDegenerate(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 6
	cfg.NumClusters = 1
	cfg.Seed = 9
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agents := localAgents(t, scen)
	if len(agents) != 1 {
		t.Fatalf("%d agents for a 1-cluster scenario", len(agents))
	}
	mgr, err := NewManager(scen, agents, DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Profit()-stats.FinalProfit) > 1e-9*(1+math.Abs(stats.FinalProfit)) {
		t.Fatalf("allocation profit %f != stats profit %f", a.Profit(), stats.FinalProfit)
	}
	at := stats.Attribution
	if got := at.Initial + at.Improve + at.CentralReassign; math.Abs(got-at.Final) > 1e-6*(1+math.Abs(at.Final)) {
		t.Fatalf("attribution identity broken: %+v", at)
	}
}

// TestManagerConfigFaultFieldsValidation: the new fan-out knobs reject
// negatives like every other config field.
func TestManagerConfigFaultFieldsValidation(t *testing.T) {
	scen := genScenario(t, 5, 1)
	agents := localAgents(t, scen)
	bad := DefaultManagerConfig()
	bad.MaxInFlight = -1
	if _, err := NewManager(scen, agents, bad); err == nil {
		t.Fatal("negative MaxInFlight accepted")
	}
	bad = DefaultManagerConfig()
	bad.CallTimeout = -time.Second
	if _, err := NewManager(scen, agents, bad); err == nil {
		t.Fatal("negative CallTimeout accepted")
	}
	// And the good path: explicit bounds work end to end.
	good := DefaultManagerConfig()
	good.MaxInFlight = 2
	good.CallTimeout = time.Minute
	mgr, err := NewManager(scen, agents, good)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, _, err := mgr.Solve(); err != nil {
		t.Fatal(err)
	}
}

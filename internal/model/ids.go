// Package model defines the entities of the cloud computing system from
// Goudarzi & Pedram (ICDCS 2011): server classes, servers, clusters,
// utility (SLA) classes, clients, and complete scenarios.
//
// All capacities are normalized units, as in the paper. The model carries
// no behaviour beyond bookkeeping, validation and serialization; queueing
// math lives in internal/queueing and solvers in internal/core and
// internal/baseline.
package model

// ServerClassID identifies a server class (hardware type) within a Cloud.
type ServerClassID int

// UtilityClassID identifies an SLA utility class within a Cloud.
type UtilityClassID int

// ClusterID identifies a cluster within a Cloud.
type ClusterID int

// ServerID identifies a server globally within a Cloud (index into
// Cloud.Servers).
type ServerID int

// ClientID identifies a client within a Scenario (index into
// Scenario.Clients).
type ClientID int

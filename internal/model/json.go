package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the scenario to w as indented JSON.
func (s *Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("encode scenario: %w", err)
	}
	return nil
}

// ReadJSON parses a scenario from r and validates it.
func ReadJSON(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decode scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// SaveFile writes the scenario to path.
func (s *Scenario) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save scenario: %w", err)
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("save scenario: %w", err)
	}
	return nil
}

// LoadFile reads and validates a scenario from path.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load scenario: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

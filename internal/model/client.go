package model

import (
	"errors"
	"fmt"
)

// Client is one application workload with an SLA.
//
// ArrivalRate is the agreed (contract) Poisson request rate λ used to price
// the SLA; PredictedRate is the rate λ̃ the allocator provisions for
// (Section III of the paper: "predicted average request arrival rates are
// used to allocate resources"). ProcTime and CommTime are the mean
// execution times of one request on one unit of processing and
// communication capacity. DiskNeed is the constant storage reservation m_i
// required on every server that serves any portion of the client.
type Client struct {
	ID            ClientID       `json:"id"`
	Class         UtilityClassID `json:"class"`
	ArrivalRate   float64        `json:"arrivalRate"`
	PredictedRate float64        `json:"predictedRate"`
	ProcTime      float64        `json:"procTime"`
	CommTime      float64        `json:"commTime"`
	DiskNeed      float64        `json:"diskNeed"`
}

// Validate checks the client parameters against the cloud it targets.
func (cl Client) Validate(c *Cloud) error {
	if int(cl.Class) < 0 || int(cl.Class) >= len(c.UtilityClasses) {
		return fmt.Errorf("client %d: unknown utility class %d", cl.ID, cl.Class)
	}
	if cl.ArrivalRate < 0 {
		return fmt.Errorf("client %d: negative arrival rate", cl.ID)
	}
	if cl.PredictedRate < 0 {
		return fmt.Errorf("client %d: negative predicted rate", cl.ID)
	}
	// Both rates zero marks an absent client (departed, or not yet
	// arrived — the online service models churn this way); exactly one
	// zero is a contradiction between contract and provisioning.
	if (cl.ArrivalRate == 0) != (cl.PredictedRate == 0) {
		return fmt.Errorf("client %d: one of arrival/predicted rate is zero, the other positive", cl.ID)
	}
	if cl.ProcTime <= 0 || cl.CommTime <= 0 {
		return fmt.Errorf("client %d: non-positive execution time", cl.ID)
	}
	if cl.DiskNeed < 0 {
		return fmt.Errorf("client %d: negative disk need", cl.ID)
	}
	return nil
}

// Scenario is a complete problem instance: a cloud plus the client set to
// place on it.
type Scenario struct {
	Cloud   Cloud    `json:"cloud"`
	Clients []Client `json:"clients"`
}

// CloneScenario deep-copies a scenario so callers can mutate rates
// without touching the original. The epoch controller uses it to realize
// drifted epochs; the online service clones its input once and owns the
// copy for the lifetime of the service.
func CloneScenario(s *Scenario) *Scenario {
	c := &Scenario{
		Cloud: Cloud{
			ServerClasses:  append([]ServerClass(nil), s.Cloud.ServerClasses...),
			UtilityClasses: append([]UtilityClass(nil), s.Cloud.UtilityClasses...),
			Clusters:       make([]Cluster, len(s.Cloud.Clusters)),
			Servers:        append([]Server(nil), s.Cloud.Servers...),
		},
		Clients: append([]Client(nil), s.Clients...),
	}
	for k, cl := range s.Cloud.Clusters {
		c.Cloud.Clusters[k] = Cluster{
			ID:      cl.ID,
			Servers: append([]ServerID(nil), cl.Servers...),
		}
	}
	return c
}

// Utility returns the utility class of client i.
func (s *Scenario) Utility(i ClientID) UtilityClass {
	return s.Cloud.UtilityClasses[s.Clients[i].Class]
}

// NumClients returns the number of clients in the scenario.
func (s *Scenario) NumClients() int { return len(s.Clients) }

// Validate checks the whole scenario for internal consistency.
func (s *Scenario) Validate() error {
	if err := s.Cloud.Validate(); err != nil {
		return err
	}
	if len(s.Clients) == 0 {
		return errors.New("scenario: no clients")
	}
	for i, cl := range s.Clients {
		if cl.ID != ClientID(i) {
			return fmt.Errorf("scenario: client %d has ID %d", i, cl.ID)
		}
		if err := cl.Validate(&s.Cloud); err != nil {
			return err
		}
	}
	return nil
}

package model

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// tinyCloud builds a small valid cloud: 2 clusters, 2 server classes,
// 1 utility class, 3 servers.
func tinyCloud() Cloud {
	return Cloud{
		ServerClasses: []ServerClass{
			{ID: 0, ProcCap: 4, StoreCap: 4, CommCap: 4, FixedCost: 2, UtilizationCost: 1},
			{ID: 1, ProcCap: 2, StoreCap: 6, CommCap: 3, FixedCost: 3, UtilizationCost: 2},
		},
		UtilityClasses: []UtilityClass{{ID: 0, Base: 4, Slope: 0.5}},
		Clusters: []Cluster{
			{ID: 0, Servers: []ServerID{0, 1}},
			{ID: 1, Servers: []ServerID{2}},
		},
		Servers: []Server{
			{ID: 0, Class: 0, Cluster: 0},
			{ID: 1, Class: 1, Cluster: 0},
			{ID: 2, Class: 0, Cluster: 1},
		},
	}
}

func tinyScenario() *Scenario {
	return &Scenario{
		Cloud: tinyCloud(),
		Clients: []Client{
			{ID: 0, Class: 0, ArrivalRate: 1, PredictedRate: 1, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1},
			{ID: 1, Class: 0, ArrivalRate: 2, PredictedRate: 2, ProcTime: 0.7, CommTime: 0.4, DiskNeed: 0.5},
		},
	}
}

func TestUtilityValue(t *testing.T) {
	u := UtilityClass{Base: 4, Slope: 0.5}
	tests := []struct {
		resp, want float64
	}{
		{0, 4},
		{2, 3},
		{8, 0},
		{100, 0}, // clipped at zero: utility is non-increasing, never negative
	}
	for _, tt := range tests {
		if got := u.Value(tt.resp); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Value(%v) = %v, want %v", tt.resp, got, tt.want)
		}
	}
}

func TestUtilityBreakEven(t *testing.T) {
	u := UtilityClass{Base: 4, Slope: 0.5}
	if got := u.BreakEvenResponse(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("BreakEvenResponse = %v, want 8", got)
	}
	flat := UtilityClass{Base: 4, Slope: 0}
	if got := flat.BreakEvenResponse(); got != _maxFiniteResponse {
		t.Fatalf("flat class break-even = %v, want sentinel", got)
	}
}

func TestCloudValidateOK(t *testing.T) {
	c := tinyCloud()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid cloud rejected: %v", err)
	}
}

func TestCloudValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(c *Cloud)
		wantSub string
	}{
		{"no classes", func(c *Cloud) { c.ServerClasses = nil }, "no server classes"},
		{"no utilities", func(c *Cloud) { c.UtilityClasses = nil }, "no utility classes"},
		{"bad class id", func(c *Cloud) { c.ServerClasses[1].ID = 5 }, "has ID"},
		{"negative capacity", func(c *Cloud) { c.ServerClasses[0].ProcCap = -1 }, "non-positive capacity"},
		{"negative cost", func(c *Cloud) { c.ServerClasses[0].FixedCost = -1 }, "negative cost"},
		{"negative utility", func(c *Cloud) { c.UtilityClasses[0].Slope = -1 }, "negative parameter"},
		{"unknown server in cluster", func(c *Cloud) { c.Clusters[0].Servers[0] = 99 }, "unknown server"},
		{"duplicate server", func(c *Cloud) { c.Clusters[1].Servers = []ServerID{2, 0} }, "in clusters"},
		{"server class unknown", func(c *Cloud) { c.Servers[0].Class = 9 }, "unknown class"},
		{"orphan server", func(c *Cloud) { c.Clusters[1].Servers = nil }, "belongs to no cluster"},
		{"wrong home cluster", func(c *Cloud) { c.Servers[2].Cluster = 0 }, "declares cluster"},
		{"pre share out of range", func(c *Cloud) { c.Servers[0].PreProcShare = 1.5 }, "pre-allocated share"},
		{"pre disk too large", func(c *Cloud) { c.Servers[0].PreDisk = 100 }, "pre-allocated disk"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := tinyCloud()
			tt.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("mutated cloud accepted")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestScenarioValidate(t *testing.T) {
	s := tinyScenario()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(s *Scenario)
	}{
		{"no clients", func(s *Scenario) { s.Clients = nil }},
		{"bad client id", func(s *Scenario) { s.Clients[1].ID = 7 }},
		{"unknown class", func(s *Scenario) { s.Clients[0].Class = 9 }},
		{"zero arrival only", func(s *Scenario) { s.Clients[0].ArrivalRate = 0 }},
		{"zero predicted only", func(s *Scenario) { s.Clients[0].PredictedRate = 0 }},
		{"negative arrival", func(s *Scenario) {
			s.Clients[0].ArrivalRate = -1
			s.Clients[0].PredictedRate = -1
		}},
		{"zero exec", func(s *Scenario) { s.Clients[0].ProcTime = 0 }},
		{"negative disk", func(s *Scenario) { s.Clients[0].DiskNeed = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := tinyScenario()
			tt.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("mutated scenario accepted")
			}
		})
	}
}

func TestCloudAccessors(t *testing.T) {
	c := tinyCloud()
	if got := c.ServerClass(1); got.ID != 1 {
		t.Fatalf("ServerClass(1).ID = %v", got.ID)
	}
	if got := c.ClusterServers(0); len(got) != 2 || got[0] != 0 {
		t.Fatalf("ClusterServers(0) = %v", got)
	}
	if c.NumServers() != 3 || c.NumClusters() != 2 {
		t.Fatalf("counts: servers=%d clusters=%d", c.NumServers(), c.NumClusters())
	}
	s := tinyScenario()
	if s.NumClients() != 2 {
		t.Fatalf("NumClients = %d", s.NumClients())
	}
	if got := s.Utility(0); got.Base != 4 {
		t.Fatalf("Utility(0) = %+v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := tinyScenario()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClients() != s.NumClients() || got.Cloud.NumServers() != s.Cloud.NumServers() {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Clients[1].ProcTime != s.Clients[1].ProcTime {
		t.Fatalf("client field mismatch after round trip")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"cloud":{},"clients":[]}`)); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scen.json")
	s := tinyScenario()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClients() != 2 {
		t.Fatalf("loaded %d clients", got.NumClients())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestUtilityNonIncreasingProperty: the SLA utility never increases with
// response time and is never negative (the paper's non-increasing utility
// class requirement).
func TestUtilityNonIncreasingProperty(t *testing.T) {
	f := func(baseRaw, slopeRaw, r1Raw, r2Raw float64) bool {
		u := UtilityClass{
			Base:  math.Mod(math.Abs(baseRaw), 10),
			Slope: math.Mod(math.Abs(slopeRaw), 3),
		}
		r1 := math.Mod(math.Abs(r1Raw), 50)
		r2 := r1 + math.Mod(math.Abs(r2Raw), 50)
		v1, v2 := u.Value(r1), u.Value(r2)
		return v1 >= v2 && v2 >= 0 && v1 <= u.Base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBreakEvenConsistency: at the break-even response time the utility
// is zero (for positive slopes).
func TestBreakEvenConsistency(t *testing.T) {
	f := func(baseRaw, slopeRaw float64) bool {
		u := UtilityClass{
			Base:  0.1 + math.Mod(math.Abs(baseRaw), 10),
			Slope: 0.1 + math.Mod(math.Abs(slopeRaw), 3),
		}
		be := u.BreakEvenResponse()
		return u.Value(be) < 1e-9 && u.Value(be*0.99) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAbsentClientValidates pins the zero-rate convention the online
// service relies on: both rates zero marks an absent (departed or
// not-yet-arrived) client and is valid; exactly one zero is not.
func TestAbsentClientValidates(t *testing.T) {
	s := tinyScenario()
	s.Clients[0].ArrivalRate = 0
	s.Clients[0].PredictedRate = 0
	if err := s.Validate(); err != nil {
		t.Fatalf("absent client rejected: %v", err)
	}
}

// TestCloneScenarioIsDeep pins that mutating a clone's rates and cluster
// membership never leaks into the original.
func TestCloneScenarioIsDeep(t *testing.T) {
	s := tinyScenario()
	c := CloneScenario(s)
	c.Clients[0].ArrivalRate = 99
	c.Cloud.Clusters[0].Servers[0] = 2
	if s.Clients[0].ArrivalRate == 99 {
		t.Fatal("clone shares the client slice")
	}
	if s.Cloud.Clusters[0].Servers[0] == 2 {
		t.Fatal("clone shares a cluster's server slice")
	}
	if err := c.Validate(); err == nil {
		// Mutated clone may or may not validate; the point is isolation.
		_ = err
	}
}

package model

import (
	"errors"
	"fmt"
)

// ServerClass describes a hardware type available to clusters.
//
// Capacities are the paper's normalized Cp (processing), Cm (local data
// storage) and Cb (communication). The operation cost of an active server
// of this class is FixedCost + UtilizationCost × (processing utilization).
type ServerClass struct {
	ID        ServerClassID `json:"id"`
	ProcCap   float64       `json:"procCap"`
	StoreCap  float64       `json:"storeCap"`
	CommCap   float64       `json:"commCap"`
	FixedCost float64       `json:"fixedCost"`
	// UtilizationCost is the paper's P1: cost per unit of processing-domain
	// utilization while the server is active.
	UtilizationCost float64 `json:"utilizationCost"`
}

// UtilityClass is an SLA class with a linear, non-increasing utility of the
// mean response time: U(R) = max(0, Base − Slope·R), interpreted as revenue
// per served request.
type UtilityClass struct {
	ID    UtilityClassID `json:"id"`
	Base  float64        `json:"base"`
	Slope float64        `json:"slope"`
}

// Value returns the per-request revenue at mean response time resp.
func (u UtilityClass) Value(resp float64) float64 {
	v := u.Base - u.Slope*resp
	if v < 0 {
		return 0
	}
	return v
}

// BreakEvenResponse returns the response time at which the utility reaches
// zero. For a zero slope it returns +Inf-free math by reporting Base/0 as a
// very large sentinel is avoided: callers must check Slope > 0 first; for
// Slope <= 0 the utility never decays and the returned value is the largest
// finite float the caller should treat as "no deadline".
func (u UtilityClass) BreakEvenResponse() float64 {
	if u.Slope <= 0 {
		return _maxFiniteResponse
	}
	return u.Base / u.Slope
}

// _maxFiniteResponse is a sentinel for "utility never reaches zero".
const _maxFiniteResponse = 1e18

// Server is a concrete machine inside a cluster.
//
// PreProcShare and PreCommShare are the fractions of the GPS share budget
// already consumed by workloads outside the allocation problem (the paper's
// cluster "initial state"); PreDisk is pre-reserved storage in absolute
// units.
type Server struct {
	ID           ServerID      `json:"id"`
	Class        ServerClassID `json:"class"`
	Cluster      ClusterID     `json:"cluster"`
	PreProcShare float64       `json:"preProcShare,omitempty"`
	PreCommShare float64       `json:"preCommShare,omitempty"`
	PreDisk      float64       `json:"preDisk,omitempty"`
}

// Cluster is a named group of servers managed by one cluster-level agent.
type Cluster struct {
	ID      ClusterID  `json:"id"`
	Servers []ServerID `json:"servers"`
}

// Cloud is the static description of the datacenter: server classes,
// utility classes, clusters and servers.
type Cloud struct {
	ServerClasses  []ServerClass  `json:"serverClasses"`
	UtilityClasses []UtilityClass `json:"utilityClasses"`
	Clusters       []Cluster      `json:"clusters"`
	Servers        []Server       `json:"servers"`
}

// ServerClass returns the class descriptor of server j.
func (c *Cloud) ServerClass(j ServerID) ServerClass {
	return c.ServerClasses[c.Servers[j].Class]
}

// ClusterServers returns the server IDs of cluster k. The returned slice is
// owned by the Cloud and must not be mutated.
func (c *Cloud) ClusterServers(k ClusterID) []ServerID {
	return c.Clusters[k].Servers
}

// NumServers returns the total number of servers in the cloud.
func (c *Cloud) NumServers() int { return len(c.Servers) }

// NumClusters returns the number of clusters in the cloud.
func (c *Cloud) NumClusters() int { return len(c.Clusters) }

// Validate checks internal consistency of the cloud description.
func (c *Cloud) Validate() error {
	if len(c.ServerClasses) == 0 {
		return errors.New("cloud: no server classes")
	}
	if len(c.UtilityClasses) == 0 {
		return errors.New("cloud: no utility classes")
	}
	for i, sc := range c.ServerClasses {
		if sc.ID != ServerClassID(i) {
			return fmt.Errorf("cloud: server class %d has ID %d", i, sc.ID)
		}
		if sc.ProcCap <= 0 || sc.StoreCap <= 0 || sc.CommCap <= 0 {
			return fmt.Errorf("cloud: server class %d has non-positive capacity", i)
		}
		if sc.FixedCost < 0 || sc.UtilizationCost < 0 {
			return fmt.Errorf("cloud: server class %d has negative cost", i)
		}
	}
	for i, uc := range c.UtilityClasses {
		if uc.ID != UtilityClassID(i) {
			return fmt.Errorf("cloud: utility class %d has ID %d", i, uc.ID)
		}
		if uc.Base < 0 || uc.Slope < 0 {
			return fmt.Errorf("cloud: utility class %d has negative parameter", i)
		}
	}
	seen := make(map[ServerID]ClusterID, len(c.Servers))
	for ki, cl := range c.Clusters {
		if cl.ID != ClusterID(ki) {
			return fmt.Errorf("cloud: cluster %d has ID %d", ki, cl.ID)
		}
		for _, j := range cl.Servers {
			if int(j) < 0 || int(j) >= len(c.Servers) {
				return fmt.Errorf("cloud: cluster %d references unknown server %d", ki, j)
			}
			if prev, dup := seen[j]; dup {
				return fmt.Errorf("cloud: server %d in clusters %d and %d", j, prev, ki)
			}
			seen[j] = cl.ID
		}
	}
	for ji, srv := range c.Servers {
		if srv.ID != ServerID(ji) {
			return fmt.Errorf("cloud: server %d has ID %d", ji, srv.ID)
		}
		if int(srv.Class) < 0 || int(srv.Class) >= len(c.ServerClasses) {
			return fmt.Errorf("cloud: server %d has unknown class %d", ji, srv.Class)
		}
		home, ok := seen[srv.ID]
		if !ok {
			return fmt.Errorf("cloud: server %d belongs to no cluster", ji)
		}
		if home != srv.Cluster {
			return fmt.Errorf("cloud: server %d declares cluster %d but is listed in %d",
				ji, srv.Cluster, home)
		}
		if srv.PreProcShare < 0 || srv.PreProcShare > 1 ||
			srv.PreCommShare < 0 || srv.PreCommShare > 1 {
			return fmt.Errorf("cloud: server %d has pre-allocated share outside [0,1]", ji)
		}
		if srv.PreDisk < 0 || srv.PreDisk > c.ServerClasses[srv.Class].StoreCap {
			return fmt.Errorf("cloud: server %d has invalid pre-allocated disk", ji)
		}
	}
	return nil
}

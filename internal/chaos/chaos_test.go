package chaos_test

import (
	"context"
	"errors"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agentrpc"
	"repro/internal/alloc"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func genScenario(t testing.TB, n int) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = 7
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

// faultFreeSolve is the reference: the same manager config over
// in-process local agents. TCP transport equality (within float
// round-off) is already covered by the agentrpc tests, so any drift
// beyond 1e-9 in a chaos run means a fault corrupted agent state.
func faultFreeSolve(t testing.TB, scen *model.Scenario, mcfg cluster.ManagerConfig) (float64, cluster.ManagerStats) {
	t.Helper()
	agents := make([]cluster.Agent, scen.Cloud.NumClusters())
	for k := range agents {
		la, err := cluster.NewLocalAgent(scen, model.ClusterID(k), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		agents[k] = la
	}
	mgr, err := cluster.NewManager(scen, agents, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return a.Profit(), stats
}

// startChaosServer serves one local agent behind a fault-injecting
// listener and returns the listener for crash control.
func startChaosServer(t testing.TB, scen *model.Scenario, k model.ClusterID, seed int64, perConn func(int) chaos.Faults, opts ...agentrpc.Option) (*chaos.Listener, string) {
	t.Helper()
	la, err := cluster.NewLocalAgent(scen, k, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := chaos.NewListener(l, seed+int64(k), perConn)
	srv := agentrpc.NewServer(cl, la, opts...)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return cl, l.Addr().String()
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(b))
}

// TestCrashMidRoundConverges is the headline chaos regression: with a
// ~10% per-I/O fault mix on every connection AND one agent
// crash-restart mid-solve, the distributed solve converges to the
// fault-free profit within float round-off and the attribution identity
// still holds.
func TestCrashMidRoundConverges(t *testing.T) {
	scen := genScenario(t, 10)
	mcfg := cluster.DefaultManagerConfig()

	refProfit, refStats := faultFreeSolve(t, scen, mcfg)

	faults := chaos.Faults{
		DropProb:  0.03,
		ErrProb:   0.03,
		DelayProb: 0.03,
		Delay:     time.Millisecond,
		TruncProb: 0.02,
	}
	perConn := func(int) chaos.Faults { return faults }
	pol := agentrpc.DefaultPolicy()
	pol.Timeout = 5 * time.Second
	pol.MaxAttempts = 16
	pol.BackoffBase = time.Millisecond
	pol.BackoffMax = 20 * time.Millisecond
	pol.Seed = 13

	agents := make([]cluster.Agent, scen.Cloud.NumClusters())
	var crashTarget *chaos.Listener
	for k := range agents {
		cl, addr := startChaosServer(t, scen, model.ClusterID(k), 99, perConn)
		if k == 0 {
			crashTarget = cl
		}
		ra, err := agentrpc.Dial(addr, agentrpc.WithPolicy(pol))
		if err != nil {
			t.Fatal(err)
		}
		agents[k] = ra
	}
	// Arm a crash-restart of agent 0 mid-solve: after 50 more reads on
	// its connections, every conn dies and dials are refused for 30ms.
	crashTarget.CrashAfterReads(50, 30*time.Millisecond)

	mgr, err := cluster.NewManager(scen, agents, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a, stats, err := mgr.Solve()
	if err != nil {
		t.Fatalf("chaos solve failed: %v", err)
	}
	if d := relDiff(a.Profit(), refProfit); d > 1e-9 {
		t.Fatalf("chaos profit %.12f vs fault-free %.12f (rel diff %.3e)", a.Profit(), refProfit, d)
	}
	at := stats.Attribution
	if got := at.Initial + at.Improve + at.CentralReassign; math.Abs(got-at.Final) > 1e-6*(1+math.Abs(at.Final)) {
		t.Fatalf("attribution identity broken: %v sums to %.12f", at, got)
	}
	if d := relDiff(stats.FinalProfit, refStats.FinalProfit); d > 1e-9 {
		t.Fatalf("stats profit %.12f vs fault-free %.12f", stats.FinalProfit, refStats.FinalProfit)
	}
	if crashTarget.Stats().Crashes != 1 {
		t.Fatalf("crash never fired (stats %+v)", crashTarget.Stats())
	}
}

// TestSlowConnHedgeWins: the first connection is pathologically slow
// (every I/O op stalls 150ms); with hedging enabled a read-only call
// races a second, clean connection and the hedge wins.
func TestSlowConnHedgeWins(t *testing.T) {
	scen := genScenario(t, 5)
	perConn := func(conn int) chaos.Faults {
		if conn == 0 {
			return chaos.Faults{DelayProb: 1, Delay: 150 * time.Millisecond}
		}
		return chaos.Faults{}
	}
	_, addr := startChaosServer(t, scen, 0, 5, perConn)

	set := telemetry.New(nil)
	pol := agentrpc.DefaultPolicy()
	pol.HedgeDelay = 10 * time.Millisecond
	pol.Seed = 3
	ra, err := agentrpc.Dial(addr, agentrpc.WithPolicy(pol), agentrpc.WithTelemetry(set))
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	if _, err := ra.Profit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := set.Counter("rpc_client_hedges_total").Value(); got < 1 {
		t.Fatalf("no hedge launched (hedges=%d)", got)
	}
	if got := set.Counter("rpc_client_hedge_wins_total").Value(); got < 1 {
		t.Fatalf("hedge launched but never won against a 150ms-per-op conn")
	}
}

// commitCrashAgent applies Commit on the inner agent, then crashes the
// listener once — the canonical ambiguous failure: op applied, response
// lost. The retried Commit must be answered from the dedup cache, not
// re-applied.
type commitCrashAgent struct {
	cluster.Agent
	ln      *chaos.Listener
	commits atomic.Int64
	crashed atomic.Bool
}

func (c *commitCrashAgent) Commit(ctx context.Context, id model.ClientID, p []alloc.Portion) error {
	err := c.Agent.Commit(ctx, id, p)
	c.commits.Add(1)
	if err == nil && !c.crashed.Swap(true) {
		c.ln.Crash(0) // kill the conn before the response can be written
	}
	return err
}

func TestRetryAfterAmbiguousCommitIsIdempotent(t *testing.T) {
	scen := genScenario(t, 5)
	la, err := cluster.NewLocalAgent(scen, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := chaos.NewListener(l, 1, nil)
	hook := &commitCrashAgent{Agent: la, ln: cl}
	srvSet := telemetry.New(nil)
	srv := agentrpc.NewServer(cl, hook, agentrpc.WithTelemetry(srvSet))
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	pol := agentrpc.DefaultPolicy()
	pol.BackoffBase = time.Millisecond
	pol.Seed = 17
	ra, err := agentrpc.Dial(l.Addr().String(), agentrpc.WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	ctx := context.Background()
	bid, err := ra.Evaluate(ctx, 0)
	if err != nil || !bid.Feasible {
		t.Fatalf("evaluate: feasible=%v err=%v", bid.Feasible, err)
	}
	// The commit is applied server-side, the response is lost to the
	// crash, and the client's retry must succeed via the dedup cache.
	if err := ra.Commit(ctx, 0, bid.Portions); err != nil {
		t.Fatalf("commit after ambiguous failure: %v", err)
	}
	if got := hook.commits.Load(); got != 1 {
		t.Fatalf("commit applied %d times, want exactly 1", got)
	}
	if got := srvSet.Counter("rpc_server_dedup_hits_total").Value(); got != 1 {
		t.Fatalf("rpc_server_dedup_hits_total = %d, want 1", got)
	}
	snap, err := ra.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d clients, want 1", len(snap))
	}
	if _, ok := snap[0]; !ok {
		t.Fatalf("client 0 missing from snapshot %v", snap)
	}
}

// TestFlakyAgentDeterministic: the same (seed, idx) wrap produces the
// same fault sequence — the replayability every chaos schedule rests on.
func TestFlakyAgentDeterministic(t *testing.T) {
	run := func() []bool {
		inner := &nopAgent{}
		fa := chaos.WrapAgent(inner, chaos.AgentFaults{ErrProb: 0.5}, 23, 4)
		out := make([]bool, 100)
		for i := range out {
			out[i] = fa.Reset(context.Background()) != nil
		}
		return out
	}
	a, b := run(), run()
	var errs int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical seeds", i)
		}
		if a[i] {
			errs++
		}
	}
	if errs == 0 || errs == len(a) {
		t.Fatalf("degenerate fault sequence: %d/%d errors", errs, len(a))
	}
	if !errors.Is(chaosErr(t), chaos.ErrInjected) {
		t.Fatal("injected error does not unwrap to ErrInjected")
	}
}

func chaosErr(t *testing.T) error {
	t.Helper()
	fa := chaos.WrapAgent(&nopAgent{}, chaos.AgentFaults{ErrProb: 1}, 1, 1)
	return fa.Reset(context.Background())
}

// nopAgent is the minimal inner agent for wrapper unit tests.
type nopAgent struct{}

func (nopAgent) ClusterID(context.Context) (model.ClusterID, error) { return 0, nil }
func (nopAgent) Reset(context.Context) error                        { return nil }
func (nopAgent) Evaluate(context.Context, model.ClientID) (cluster.EvalResult, error) {
	return cluster.EvalResult{}, nil
}
func (nopAgent) Commit(context.Context, model.ClientID, []alloc.Portion) error { return nil }
func (nopAgent) Remove(context.Context, model.ClientID) error                  { return nil }
func (nopAgent) Improve(context.Context) (cluster.ImproveStats, error) {
	return cluster.ImproveStats{}, nil
}
func (nopAgent) Profit(context.Context) (float64, error) { return 0, nil }
func (nopAgent) Snapshot(context.Context) (map[model.ClientID][]alloc.Portion, error) {
	return nil, nil
}
func (nopAgent) Close() error { return nil }

// TestCrashWindowRefusesDials: connections during the down window die
// instantly; after it passes, service resumes.
func TestCrashWindowRefusesDials(t *testing.T) {
	scen := genScenario(t, 5)
	cl, addr := startChaosServer(t, scen, 0, 2, nil)
	pol := agentrpc.DefaultPolicy()
	pol.BackoffBase = 5 * time.Millisecond
	pol.BackoffMax = 50 * time.Millisecond
	pol.MaxAttempts = 10
	pol.Seed = 29
	ra, err := agentrpc.Dial(addr, agentrpc.WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	if _, err := ra.Profit(context.Background()); err != nil {
		t.Fatal(err)
	}
	cl.Crash(40 * time.Millisecond)
	// The retry loop rides out the down window transparently.
	if _, err := ra.Profit(context.Background()); err != nil {
		t.Fatalf("call across crash-restart: %v", err)
	}
	if cl.Stats().Crashes != 1 {
		t.Fatalf("stats %+v", cl.Stats())
	}
}

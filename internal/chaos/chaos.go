// Package chaos is the proving ground for the fault-tolerant control
// plane: seeded, deterministic fault injection at two layers — the
// net.Conn byte stream under the agentrpc wire (drops, delays, I/O
// errors, byte truncation, crash-restart) and the cluster.Agent
// interface itself (latency and error injection without a network).
//
// Every random decision derives from a master seed via splitmix64
// seed-splitting, one independent stream per connection or per wrapped
// agent, so a fault schedule replays bit-for-bit regardless of
// goroutine scheduling: the k-th operation on the n-th connection
// always sees the same draw.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/parallel"
)

// ErrInjected marks a fault synthesized by this package, so tests can
// distinguish injected failures from real ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Faults is one connection's (or agent's) fault profile. Probabilities
// are per I/O operation (one Read or Write call) and are drawn as a
// single cumulative band per op — at most one fault fires per op, and
// raising one probability never changes which draws trigger another.
type Faults struct {
	// DropProb closes the connection instead of performing the op.
	DropProb float64
	// ErrProb fails the op with ErrInjected without closing the conn;
	// the gob stream is desynchronized either way, so the client must
	// treat it exactly like a drop.
	ErrProb float64
	// DelayProb stalls the op for Delay before performing it.
	DelayProb float64
	Delay     time.Duration
	// TruncProb writes (or reads) only the first half of the buffer and
	// then closes the connection — a mid-frame cut.
	TruncProb float64
	// FailWriteAt / FailReadAt, when > 0, close the connection on the
	// n-th Write / Read call (1-based), deterministically — for scripted
	// "the response was lost" scenarios. They fire independently of the
	// probabilistic bands.
	FailWriteAt int
	FailReadAt  int
}

func (f Faults) active() bool {
	return f.DropProb > 0 || f.ErrProb > 0 || f.DelayProb > 0 ||
		f.TruncProb > 0 || f.FailWriteAt > 0 || f.FailReadAt > 0
}

// Stats counts the faults a Listener (or Agent wrapper) injected.
type Stats struct {
	Drops   int64
	Errs    int64
	Delays  int64
	Truncs  int64
	Crashes int64
}

// Listener wraps a net.Listener with per-connection fault injection and
// crash-restart. Connections are numbered in accept order; PerConn maps
// a connection's index to its fault profile, so a schedule can single
// out "the manager's third connection" deterministically.
type Listener struct {
	net.Listener
	seed    int64
	perConn func(conn int) Faults

	mu        sync.Mutex
	accepted  int
	live      map[net.Conn]struct{}
	downUntil time.Time
	stats     Stats
	// crashReads, when > 0, arms a one-shot Crash(crashDown) after that
	// many more successful reads across all connections.
	crashReads int64
	crashDown  time.Duration
}

// NewListener wraps ln. perConn returns the fault profile for the n-th
// accepted connection (0-based); nil means no faults (crash-restart via
// Crash still works).
func NewListener(ln net.Listener, seed int64, perConn func(conn int) Faults) *Listener {
	return &Listener{
		Listener: ln,
		seed:     seed,
		perConn:  perConn,
		live:     make(map[net.Conn]struct{}),
	}
}

// Accept applies the crash window (connections during the down window
// are accepted and instantly closed, like a dead backend's OS RST) and
// wraps live connections with their fault profile.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		idx := l.accepted
		l.accepted++
		down := time.Now().Before(l.downUntil)
		l.mu.Unlock()
		if down {
			c.Close()
			continue
		}
		var f Faults
		if l.perConn != nil {
			f = l.perConn(idx)
		}
		fc := &faultConn{
			Conn: c,
			f:    f,
			rng:  parallel.Rand(l.seed, uint64(idx)),
			ln:   l,
		}
		l.mu.Lock()
		l.live[fc] = struct{}{}
		l.mu.Unlock()
		return fc, nil
	}
}

// Crash kills every live connection and refuses new ones for the down
// window — a process crash plus restart. Agent state survives (the
// in-process server keeps its allocation), modeling a warm restart
// behind a stable address.
func (l *Listener) Crash(down time.Duration) {
	l.mu.Lock()
	l.downUntil = time.Now().Add(down)
	conns := make([]net.Conn, 0, len(l.live))
	for c := range l.live {
		conns = append(conns, c)
	}
	l.live = make(map[net.Conn]struct{})
	l.stats.Crashes++
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// CrashAfterReads arms a one-shot crash: after the listener's
// connections have served n more successful Read calls in total, Crash
// fires with the given down window. Returns immediately.
func (l *Listener) CrashAfterReads(n int64, down time.Duration) {
	l.mu.Lock()
	l.crashReads = n
	l.crashDown = down
	l.mu.Unlock()
}

// Stats returns a copy of the fault counters.
func (l *Listener) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// noteRead decrements an armed CrashAfterReads trigger; fired crash
// runs outside the lock.
func (l *Listener) noteRead() {
	l.mu.Lock()
	if l.crashReads <= 0 {
		l.mu.Unlock()
		return
	}
	l.crashReads--
	fire := l.crashReads == 0
	down := l.crashDown
	l.mu.Unlock()
	if fire {
		l.Crash(down)
	}
}

func (l *Listener) drop(c net.Conn) {
	l.mu.Lock()
	delete(l.live, c)
	l.stats.Drops++
	l.mu.Unlock()
}

func (l *Listener) count(f func(*Stats)) {
	l.mu.Lock()
	f(&l.stats)
	l.mu.Unlock()
}

// faultConn injects faults on one connection's byte stream. The rng is
// only touched under mu, so concurrent Read/Write (as gob does —
// encoder and decoder on separate goroutines during hedging) stay
// race-free and the draw sequence stays deterministic per connection.
type faultConn struct {
	net.Conn
	f  Faults
	ln *Listener

	mu     sync.Mutex
	rng    *rand.Rand
	reads  int
	writes int
}

// decide draws the single cumulative band for one op and updates the
// scripted counters. Returns the action to take.
type action int

const (
	actPass action = iota
	actDrop
	actErr
	actDelay
	actTrunc
)

func (c *faultConn) decide(write bool) (action, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if write {
		c.writes++
		if c.f.FailWriteAt > 0 && c.writes == c.f.FailWriteAt {
			return actDrop, 0
		}
	} else {
		c.reads++
		if c.f.FailReadAt > 0 && c.reads == c.f.FailReadAt {
			return actDrop, 0
		}
	}
	if !c.f.active() {
		return actPass, 0
	}
	u := c.rng.Float64()
	switch {
	case u < c.f.DropProb:
		return actDrop, 0
	case u < c.f.DropProb+c.f.ErrProb:
		return actErr, 0
	case u < c.f.DropProb+c.f.ErrProb+c.f.DelayProb:
		return actDelay, c.f.Delay
	case u < c.f.DropProb+c.f.ErrProb+c.f.DelayProb+c.f.TruncProb:
		return actTrunc, 0
	}
	return actPass, 0
}

func (c *faultConn) Read(p []byte) (int, error) {
	act, d := c.decide(false)
	switch act {
	case actDrop:
		c.ln.drop(c)
		c.Conn.Close()
		return 0, fmt.Errorf("chaos: read dropped: %w", ErrInjected)
	case actErr:
		c.ln.count(func(s *Stats) { s.Errs++ })
		return 0, fmt.Errorf("chaos: read error: %w", ErrInjected)
	case actDelay:
		c.ln.count(func(s *Stats) { s.Delays++ })
		time.Sleep(d)
	case actTrunc:
		c.ln.count(func(s *Stats) { s.Truncs++ })
		if len(p) > 1 {
			p = p[:len(p)/2]
		}
		n, _ := c.Conn.Read(p)
		c.Conn.Close()
		return n, fmt.Errorf("chaos: read truncated: %w", ErrInjected)
	}
	n, err := c.Conn.Read(p)
	if err == nil {
		c.ln.noteRead()
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	act, d := c.decide(true)
	switch act {
	case actDrop:
		c.ln.drop(c)
		c.Conn.Close()
		return 0, fmt.Errorf("chaos: write dropped: %w", ErrInjected)
	case actErr:
		c.ln.count(func(s *Stats) { s.Errs++ })
		return 0, fmt.Errorf("chaos: write error: %w", ErrInjected)
	case actDelay:
		c.ln.count(func(s *Stats) { s.Delays++ })
		time.Sleep(d)
	case actTrunc:
		c.ln.count(func(s *Stats) { s.Truncs++ })
		half := p
		if len(p) > 1 {
			half = p[:len(p)/2]
		}
		n, _ := c.Conn.Write(half)
		c.Conn.Close()
		return n, fmt.Errorf("chaos: write truncated: %w", ErrInjected)
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.ln.mu.Lock()
	delete(c.ln.live, c)
	c.ln.mu.Unlock()
	return c.Conn.Close()
}

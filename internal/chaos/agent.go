package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/parallel"
)

// AgentFaults shapes WrapAgent's per-call injection: each call draws one
// cumulative band (error first, then delay), so schedules compose the
// same way conn-level Faults do.
type AgentFaults struct {
	// ErrProb fails the call with ErrInjected before reaching the inner
	// agent.
	ErrProb float64
	// DelayProb stalls the call for Delay before forwarding it.
	DelayProb float64
	Delay     time.Duration
}

// FlakyAgent wraps a cluster.Agent with seeded per-call fault
// injection — the no-network counterpart of Listener for tests that
// want manager-visible failures without TCP in the loop.
type FlakyAgent struct {
	inner cluster.Agent
	f     AgentFaults

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64
	errs  int64
}

// WrapAgent wraps inner; the fault stream derives from (seed, idx) so
// each wrapped agent draws independently.
func WrapAgent(inner cluster.Agent, f AgentFaults, seed int64, idx uint64) *FlakyAgent {
	return &FlakyAgent{inner: inner, f: f, rng: parallel.Rand(seed, idx)}
}

// Calls and Errs report the wrapper's traffic: total calls forwarded or
// failed, and injected failures among them.
func (a *FlakyAgent) Calls() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.calls }
func (a *FlakyAgent) Errs() int64  { a.mu.Lock(); defer a.mu.Unlock(); return a.errs }

// inject draws the call's fate; it returns a non-nil error when the
// call must fail without reaching the inner agent.
func (a *FlakyAgent) inject(op string) error {
	a.mu.Lock()
	a.calls++
	u := a.rng.Float64()
	var delay time.Duration
	fail := false
	switch {
	case u < a.f.ErrProb:
		fail = true
		a.errs++
	case u < a.f.ErrProb+a.f.DelayProb:
		delay = a.f.Delay
	}
	a.mu.Unlock()
	if fail {
		return fmt.Errorf("chaos: agent %s: %w", op, ErrInjected)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

func (a *FlakyAgent) ClusterID(ctx context.Context) (model.ClusterID, error) {
	if err := a.inject("cluster_id"); err != nil {
		return 0, err
	}
	return a.inner.ClusterID(ctx)
}

func (a *FlakyAgent) Reset(ctx context.Context) error {
	if err := a.inject("reset"); err != nil {
		return err
	}
	return a.inner.Reset(ctx)
}

func (a *FlakyAgent) Evaluate(ctx context.Context, id model.ClientID) (cluster.EvalResult, error) {
	if err := a.inject("evaluate"); err != nil {
		return cluster.EvalResult{}, err
	}
	return a.inner.Evaluate(ctx, id)
}

func (a *FlakyAgent) Commit(ctx context.Context, id model.ClientID, portions []alloc.Portion) error {
	if err := a.inject("commit"); err != nil {
		return err
	}
	return a.inner.Commit(ctx, id, portions)
}

func (a *FlakyAgent) Remove(ctx context.Context, id model.ClientID) error {
	if err := a.inject("remove"); err != nil {
		return err
	}
	return a.inner.Remove(ctx, id)
}

func (a *FlakyAgent) Improve(ctx context.Context) (cluster.ImproveStats, error) {
	if err := a.inject("improve"); err != nil {
		return cluster.ImproveStats{}, err
	}
	return a.inner.Improve(ctx)
}

func (a *FlakyAgent) Profit(ctx context.Context) (float64, error) {
	if err := a.inject("profit"); err != nil {
		return 0, err
	}
	return a.inner.Profit(ctx)
}

func (a *FlakyAgent) Snapshot(ctx context.Context) (map[model.ClientID][]alloc.Portion, error) {
	if err := a.inject("snapshot"); err != nil {
		return nil, err
	}
	return a.inner.Snapshot(ctx)
}

func (a *FlakyAgent) Close() error { return a.inner.Close() }

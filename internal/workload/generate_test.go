package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumClusters != 5 || cfg.NumServerClasses != 10 || cfg.NumUtilityClasses != 5 {
		t.Fatalf("paper constants wrong: %+v", cfg)
	}
	if cfg.ExecTime != (Range{Min: 0.4, Max: 1}) {
		t.Fatalf("ExecTime = %+v", cfg.ExecTime)
	}
	if cfg.Arrival != (Range{Min: 0.5, Max: 4.5}) {
		t.Fatalf("Arrival = %+v", cfg.Arrival)
	}
	if cfg.Capacity != (Range{Min: 2, Max: 6}) || cfg.FixedCost != (Range{Min: 2, Max: 6}) {
		t.Fatalf("capacity/cost ranges wrong: %+v", cfg)
	}
	if cfg.UtilCost != (Range{Min: 1, Max: 3}) || cfg.DiskNeed != (Range{Min: 0.2, Max: 2}) {
		t.Fatalf("utilcost/disk ranges wrong: %+v", cfg)
	}
	if cfg.Slope != (Range{Min: 0.4, Max: 1}) {
		t.Fatalf("Slope = %+v", cfg.Slope)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestGenerateValidScenario(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClients = 30
	scen, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := scen.Validate(); err != nil {
		t.Fatal(err)
	}
	if scen.NumClients() != 30 {
		t.Fatalf("clients = %d", scen.NumClients())
	}
	if scen.Cloud.NumClusters() != 5 {
		t.Fatalf("clusters = %d", scen.Cloud.NumClusters())
	}
	for _, cl := range scen.Clients {
		if cl.ArrivalRate < 0.5 || cl.ArrivalRate > 4.5 {
			t.Fatalf("arrival rate %v outside paper range", cl.ArrivalRate)
		}
		if cl.ProcTime < 0.4 || cl.ProcTime > 1 || cl.CommTime < 0.4 || cl.CommTime > 1 {
			t.Fatalf("exec time outside paper range: %+v", cl)
		}
		if cl.DiskNeed < 0.2 || cl.DiskNeed > 2 {
			t.Fatalf("disk need %v outside paper range", cl.DiskNeed)
		}
		if cl.PredictedRate != cl.ArrivalRate {
			t.Fatalf("default prediction factor must be 1: %+v", cl)
		}
	}
	for _, sc := range scen.Cloud.ServerClasses {
		if sc.ProcCap < 2 || sc.ProcCap > 6 || sc.FixedCost < 2 || sc.FixedCost > 6 {
			t.Fatalf("server class outside paper ranges: %+v", sc)
		}
		if sc.UtilizationCost < 1 || sc.UtilizationCost > 3 {
			t.Fatalf("P1 outside paper range: %+v", sc)
		}
	}
	for k := 0; k < scen.Cloud.NumClusters(); k++ {
		n := len(scen.Cloud.Clusters[k].Servers)
		if n < cfg.MinServersPerCluster || n > cfg.MaxServersPerCluster {
			t.Fatalf("cluster %d has %d servers, want [%d,%d]", k, n,
				cfg.MinServersPerCluster, cfg.MaxServersPerCluster)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClients = 10
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestPredictionFactor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClients = 5
	cfg.PredictionFactor = 0.8
	scen, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range scen.Clients {
		want := cl.ArrivalRate * 0.8
		if diff := cl.PredictedRate - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("predicted %v, want %v", cl.PredictedRate, want)
		}
	}
}

func TestConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero clusters", func(c *Config) { c.NumClusters = 0 }},
		{"zero server classes", func(c *Config) { c.NumServerClasses = 0 }},
		{"zero utility classes", func(c *Config) { c.NumUtilityClasses = 0 }},
		{"zero clients", func(c *Config) { c.NumClients = 0 }},
		{"bad cluster size range", func(c *Config) { c.MaxServersPerCluster = c.MinServersPerCluster - 1 }},
		{"zero prediction", func(c *Config) { c.PredictionFactor = 0 }},
		{"prediction above 1", func(c *Config) { c.PredictionFactor = 1.5 }},
		{"inverted range", func(c *Config) { c.Arrival = Range{Min: 2, Max: 1} }},
		{"negative range", func(c *Config) { c.DiskNeed = Range{Min: -1, Max: 1} }},
		{"zero exec min", func(c *Config) { c.ExecTime = Range{Min: 0, Max: 1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
			if _, err := Generate(cfg); err == nil {
				t.Fatal("Generate accepted invalid config")
			}
		})
	}
}

func TestRangeDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Range{Min: 2, Max: 6}
	for i := 0; i < 1000; i++ {
		v := r.Draw(rng)
		if v < 2 || v > 6 {
			t.Fatalf("draw %v outside range", v)
		}
	}
	point := Range{Min: 3, Max: 3}
	if v := point.Draw(rng); v != 3 {
		t.Fatalf("degenerate range draw = %v", v)
	}
}

// Property: any seed generates a scenario that passes model validation.
func TestGenerateAlwaysValid(t *testing.T) {
	f := func(seed int64, nClients uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.NumClients = 1 + int(nClients)%64
		scen, err := Generate(cfg)
		if err != nil {
			return false
		}
		return scen.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package workload

// ScaleConfig sizes a scenario for the large-scale benchmarks
// (1k–1M clients). The paper's experimental cloud (5 clusters, 20–30
// servers each) saturates long before 100k clients, so the scale
// instances grow the cloud with the demand: uniform 128-server clusters
// and about 0.8 clients per server — between the paper's sweep
// endpoints (0.4 at 50 clients, 1.6 at 200), loaded enough that
// admission and server activation matter but solvable enough that the
// allocator, not the instance, decides who is served — never fewer
// than the paper's five clusters. Everything else — class counts, parameter
// distributions — stays at the paper's values, so a scale instance is
// a paper instance with more of the same clusters and clients.
//
// Memory and generation time are linear in the client count: Generate
// draws each server and client independently and the scenario stores
// flat slices, so a 1M-client instance is just a long slice, not a
// quadratic structure.
func ScaleConfig(clients int, seed int64) Config {
	// 128 servers/cluster × ~0.8 clients/server = 100 clients/cluster.
	const (
		serversPerCluster = 128
		clientsPerCluster = 100
	)
	numClusters := clients / clientsPerCluster
	if numClusters < 5 {
		numClusters = 5
	}
	cfg := DefaultConfig()
	cfg.NumClients = clients
	cfg.NumClusters = numClusters
	cfg.MinServersPerCluster = serversPerCluster
	cfg.MaxServersPerCluster = serversPerCluster
	cfg.Seed = seed
	return cfg
}

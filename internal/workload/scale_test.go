package workload

import (
	"runtime"
	"testing"
)

func TestScaleConfigShape(t *testing.T) {
	cases := []struct {
		clients  int
		clusters int
	}{
		{1_000, 10},
		{10_000, 100},
		{100_000, 1_000},
		{1_000_000, 10_000},
	}
	for _, c := range cases {
		cfg := ScaleConfig(c.clients, 1)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("clients=%d: %v", c.clients, err)
		}
		if cfg.NumClusters != c.clusters {
			t.Fatalf("clients=%d: %d clusters, want %d", c.clients, cfg.NumClusters, c.clusters)
		}
		if cfg.MinServersPerCluster != 128 || cfg.MaxServersPerCluster != 128 {
			t.Fatalf("clients=%d: servers per cluster [%d,%d], want uniform 128",
				c.clients, cfg.MinServersPerCluster, cfg.MaxServersPerCluster)
		}
	}
}

// TestScaleGenerateLinearMemory generates a 200k-client instance and
// checks the allocation stays linear: a generous per-client budget that
// any quadratic structure would blow through by orders of magnitude.
func TestScaleGenerateLinearMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const clients = 200_000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	scen, err := Generate(ScaleConfig(clients, 7))
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if scen.NumClients() != clients {
		t.Fatalf("%d clients", scen.NumClients())
	}
	if got := scen.Cloud.NumServers(); got != scen.Cloud.NumClusters()*128 {
		t.Fatalf("%d servers for %d clusters", got, scen.Cloud.NumClusters())
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	const perClientBudget = 2048 // bytes; actual usage is ~100B/client
	if allocated > clients*perClientBudget {
		t.Fatalf("generating %d clients allocated %d bytes (> %d per client)",
			clients, allocated, perClientBudget)
	}
}

// Package workload generates random problem instances with the parameter
// distributions of the paper's experimental section (Section VI): 5
// clusters, 10 server classes, 5 utility classes, execution times and
// utility slopes ~ U(0.4,1), arrival rates ~ U(0.5,4.5), capacities and
// fixed costs ~ U(2,6), utilization costs ~ U(1,3), disk needs ~ U(0.2,2).
//
// Everything is driven by an explicit seed so scenarios are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Range is a closed interval for a uniform draw.
type Range struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Draw samples uniformly from the range.
func (r Range) Draw(rng *rand.Rand) float64 {
	return r.Min + rng.Float64()*(r.Max-r.Min)
}

func (r Range) valid() bool { return r.Max >= r.Min }

// Config controls scenario generation. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	NumClusters       int `json:"numClusters"`
	NumServerClasses  int `json:"numServerClasses"`
	NumUtilityClasses int `json:"numUtilityClasses"`
	NumClients        int `json:"numClients"`

	// MinServersPerCluster and MaxServersPerCluster bound the uniform
	// integer draw of each cluster's size. The paper does not state the
	// cluster sizes; the defaults give the 5-cluster cloud enough servers
	// that 200 clients neither trivially fit nor overload it.
	MinServersPerCluster int `json:"minServersPerCluster"`
	MaxServersPerCluster int `json:"maxServersPerCluster"`

	// PredictionFactor scales the predicted arrival rate relative to the
	// agreed contract rate (λ̃ = factor × λ). 1 means the allocator trusts
	// the contract exactly.
	PredictionFactor float64 `json:"predictionFactor"`

	Seed int64 `json:"seed"`

	ExecTime  Range `json:"execTime"`  // tp, tb per client
	Arrival   Range `json:"arrival"`   // λ per client
	DiskNeed  Range `json:"diskNeed"`  // m per client
	Capacity  Range `json:"capacity"`  // Cp, Cm, Cb per server class
	FixedCost Range `json:"fixedCost"` // P0 per server class
	UtilCost  Range `json:"utilCost"`  // P1 per server class
	Slope     Range `json:"slope"`     // b per utility class
	Base      Range `json:"base"`      // a per utility class
}

// DefaultConfig returns the paper's experimental parameters with the
// documented substitutions for the unspecified constants (see DESIGN.md).
func DefaultConfig() Config {
	return Config{
		NumClusters:          5,
		NumServerClasses:     10,
		NumUtilityClasses:    5,
		NumClients:           50,
		MinServersPerCluster: 20,
		MaxServersPerCluster: 30,
		PredictionFactor:     1,
		Seed:                 1,
		ExecTime:             Range{Min: 0.4, Max: 1},
		Arrival:              Range{Min: 0.5, Max: 4.5},
		DiskNeed:             Range{Min: 0.2, Max: 2},
		Capacity:             Range{Min: 2, Max: 6},
		FixedCost:            Range{Min: 2, Max: 6},
		UtilCost:             Range{Min: 1, Max: 3},
		Slope:                Range{Min: 0.4, Max: 1},
		Base:                 Range{Min: 3, Max: 6},
	}
}

// Validate checks that the configuration can produce a valid scenario.
func (c Config) Validate() error {
	switch {
	case c.NumClusters <= 0:
		return fmt.Errorf("workload: NumClusters = %d", c.NumClusters)
	case c.NumServerClasses <= 0:
		return fmt.Errorf("workload: NumServerClasses = %d", c.NumServerClasses)
	case c.NumUtilityClasses <= 0:
		return fmt.Errorf("workload: NumUtilityClasses = %d", c.NumUtilityClasses)
	case c.NumClients <= 0:
		return fmt.Errorf("workload: NumClients = %d", c.NumClients)
	case c.MinServersPerCluster <= 0 || c.MaxServersPerCluster < c.MinServersPerCluster:
		return fmt.Errorf("workload: servers per cluster range [%d,%d]",
			c.MinServersPerCluster, c.MaxServersPerCluster)
	case c.PredictionFactor <= 0 || c.PredictionFactor > 1:
		return fmt.Errorf("workload: PredictionFactor = %v", c.PredictionFactor)
	}
	for _, r := range []struct {
		name string
		r    Range
	}{
		{"ExecTime", c.ExecTime}, {"Arrival", c.Arrival}, {"DiskNeed", c.DiskNeed},
		{"Capacity", c.Capacity}, {"FixedCost", c.FixedCost}, {"UtilCost", c.UtilCost},
		{"Slope", c.Slope}, {"Base", c.Base},
	} {
		if !r.r.valid() || r.r.Min < 0 {
			return fmt.Errorf("workload: invalid %s range %+v", r.name, r.r)
		}
	}
	if c.ExecTime.Min <= 0 || c.Arrival.Min <= 0 {
		return fmt.Errorf("workload: ExecTime and Arrival must be strictly positive")
	}
	return nil
}

// Generate builds a random scenario from the configuration.
func Generate(cfg Config) (*model.Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	classes := make([]model.ServerClass, cfg.NumServerClasses)
	for s := range classes {
		classes[s] = model.ServerClass{
			ID:              model.ServerClassID(s),
			ProcCap:         cfg.Capacity.Draw(rng),
			StoreCap:        cfg.Capacity.Draw(rng),
			CommCap:         cfg.Capacity.Draw(rng),
			FixedCost:       cfg.FixedCost.Draw(rng),
			UtilizationCost: cfg.UtilCost.Draw(rng),
		}
	}
	utilities := make([]model.UtilityClass, cfg.NumUtilityClasses)
	for u := range utilities {
		utilities[u] = model.UtilityClass{
			ID:    model.UtilityClassID(u),
			Base:  cfg.Base.Draw(rng),
			Slope: cfg.Slope.Draw(rng),
		}
	}

	clusters := make([]model.Cluster, cfg.NumClusters)
	var servers []model.Server
	for k := range clusters {
		n := cfg.MinServersPerCluster
		if span := cfg.MaxServersPerCluster - cfg.MinServersPerCluster; span > 0 {
			n += rng.Intn(span + 1)
		}
		ids := make([]model.ServerID, n)
		for i := 0; i < n; i++ {
			id := model.ServerID(len(servers))
			servers = append(servers, model.Server{
				ID:      id,
				Class:   model.ServerClassID(rng.Intn(cfg.NumServerClasses)),
				Cluster: model.ClusterID(k),
			})
			ids[i] = id
		}
		clusters[k] = model.Cluster{ID: model.ClusterID(k), Servers: ids}
	}

	clients := make([]model.Client, cfg.NumClients)
	for i := range clients {
		arrival := cfg.Arrival.Draw(rng)
		clients[i] = model.Client{
			ID:            model.ClientID(i),
			Class:         model.UtilityClassID(rng.Intn(cfg.NumUtilityClasses)),
			ArrivalRate:   arrival,
			PredictedRate: arrival * cfg.PredictionFactor,
			ProcTime:      cfg.ExecTime.Draw(rng),
			CommTime:      cfg.ExecTime.Draw(rng),
			DiskNeed:      cfg.DiskNeed.Draw(rng),
		}
	}

	scen := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses:  classes,
			UtilityClasses: utilities,
			Clusters:       clusters,
			Servers:        servers,
		},
		Clients: clients,
	}
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid scenario: %w", err)
	}
	return scen, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ulpEqual reports |a−b| within one unit in the last place of the larger
// magnitude (the issue's "ledger-validated identical profit" tolerance).
func ulpEqual(a, b float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= math.Nextafter(m, math.Inf(1))-m
}

// sameAssignments fails the test unless the two allocations place every
// client identically — same cluster, bit-identical portions.
func sameAssignments(t *testing.T, scen *model.Scenario, x, y *alloc.Allocation, label string) {
	t.Helper()
	for i := range scen.Clients {
		id := model.ClientID(i)
		if x.ClusterOf(id) != y.ClusterOf(id) {
			t.Fatalf("%s: client %d on cluster %d vs %d", label, id, x.ClusterOf(id), y.ClusterOf(id))
		}
		px, py := x.Portions(id), y.Portions(id)
		if len(px) != len(py) {
			t.Fatalf("%s: client %d has %d vs %d portions", label, id, len(px), len(py))
		}
		for p := range px {
			if px[p] != py[p] {
				t.Fatalf("%s: client %d portion %d differs: %+v vs %+v", label, id, p, px[p], py[p])
			}
		}
	}
}

// TestReassignmentPassWorkerEquivalence is the determinism property the
// pipeline promises: for a fixed starting allocation, the pass commits
// the same move set, produces bit-identical assignments and ledger-equal
// profit for every scoring worker count. Run under -race this also
// exercises the scoring pool's concurrent reads.
func TestReassignmentPassWorkerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		wcfg := workload.DefaultConfig()
		wcfg.NumClients = 40
		wcfg.Seed = seed
		scen, err := workload.Generate(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		// Alternate admission control to cover the eviction branches.
		mutate := func(workers int) func(*Config) {
			return func(c *Config) {
				c.Workers = workers
				c.AdmissionControl = seed%2 == 0
			}
		}
		s1 := newTestSolver(t, scen, mutate(1))
		sN := newTestSolver(t, scen, mutate(4))

		a1, err := s1.InitialSolution(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		aN, err := sN.InitialSolution(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sameAssignments(t, scen, a1, aN, "greedy baseline")

		// Several passes so the second and third run against the marks
		// cached from the first (the cross-round skip path).
		for pass := 0; pass < 3; pass++ {
			m1 := s1.ReassignmentPass(a1)
			mN := sN.ReassignmentPass(aN)
			if m1 != mN {
				t.Fatalf("seed %d pass %d: %d moves with 1 worker, %d with 4", seed, pass, m1, mN)
			}
			sameAssignments(t, scen, a1, aN, "after pass")
			if !ulpEqual(a1.Profit(), aN.Profit()) {
				t.Fatalf("seed %d pass %d: profit %v vs %v", seed, pass, a1.Profit(), aN.Profit())
			}
		}
		if err := a1.Validate(); err != nil {
			t.Fatalf("seed %d: sequential result invalid: %v", seed, err)
		}
		if err := aN.Validate(); err != nil {
			t.Fatalf("seed %d: parallel result invalid: %v", seed, err)
		}
	}
}

// TestSolveWorkerEquivalencePaperSized runs the full heuristic on a
// paper-sized instance with sequential and parallel reassignment scoring
// and requires identical Reassignments counts, identical assignments and
// ledger-equal final profit (the PR's acceptance criterion).
func TestSolveWorkerEquivalencePaperSized(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-sized solve in -short mode")
	}
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = 250
	wcfg.Seed = 42
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestSolver(t, scen, func(c *Config) { c.Workers = 1 })
	sN := newTestSolver(t, scen, func(c *Config) { c.Workers = 8 })

	a1, st1, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	aN, stN, err := sN.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Reassignments != stN.Reassignments {
		t.Fatalf("Reassignments: %d sequential vs %d parallel", st1.Reassignments, stN.Reassignments)
	}
	sameAssignments(t, scen, a1, aN, "solve")
	if !ulpEqual(st1.FinalProfit, stN.FinalProfit) {
		t.Fatalf("final profit %v vs %v", st1.FinalProfit, stN.FinalProfit)
	}
	if err := aN.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReassignmentPassDirtySkip checks the cross-round invariant: a
// second pass over an untouched allocation scores nothing — every client
// hits the clean-cluster skip — and commits nothing.
func TestReassignmentPassDirtySkip(t *testing.T) {
	scen := smallScenario(t, 30, 9)
	set := telemetry.New(nil)
	s := newTestSolver(t, scen, func(c *Config) { c.Telemetry = set })
	a, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Drain to convergence (Solve usually already has, but be explicit).
	for i := 0; i < 5 && s.ReassignmentPass(a) > 0; i++ {
	}

	scored := set.Counter("solver_reassign_scored_total")
	skipped := set.Counter("solver_reassign_dirty_skipped_total")
	scoredBefore, skippedBefore := scored.Value(), skipped.Value()
	if moves := s.ReassignmentPass(a); moves != 0 {
		t.Fatalf("converged allocation still moved %d clients", moves)
	}
	if got := scored.Value() - scoredBefore; got != 0 {
		t.Fatalf("converged pass scored %d clients, want 0", got)
	}
	if got := skipped.Value() - skippedBefore; got != int64(scen.NumClients()) {
		t.Fatalf("converged pass skipped %d clients, want all %d", got, scen.NumClients())
	}

	// Touching one cluster must wake exactly the clients that depend on
	// it — at least the moved client, and never the whole cloud again.
	var touched model.ClientID
	found := false
	for i := range scen.Clients {
		id := model.ClientID(i)
		if a.Assigned(id) {
			touched = id
			found = true
			break
		}
	}
	if !found {
		t.Skip("no assigned client to perturb")
	}
	k, ps := a.Unassign(touched)
	if err := a.Assign(touched, k, ps); err != nil {
		t.Fatal(err)
	}
	scoredBefore = scored.Value()
	s.ReassignmentPass(a)
	if got := scored.Value() - scoredBefore; got == 0 {
		t.Fatal("perturbed cluster did not trigger rescoring")
	}
}

// TestReassignmentPassLegacyMatchesPreviousBehaviour pins the legacy
// (DisableParallelReassign) pass: it must still converge to a valid
// allocation and never lose profit.
func TestReassignmentPassLegacySequential(t *testing.T) {
	scen := smallScenario(t, 30, 4)
	s := newTestSolver(t, scen, func(c *Config) { c.DisableParallelReassign = true })
	a, err := s.InitialSolution(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	before := a.Profit()
	s.ReassignmentPass(a)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Profit() < before-1e-9 {
		t.Fatalf("legacy pass lost profit: %v -> %v", before, a.Profit())
	}
}

package core

import (
	"math"
	"os"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

// checkAttribution asserts the per-phase profit attribution identity:
// the greedy initial profit plus the sum of every phase's delta must
// reproduce the final profit up to ledger-style float regrouping (the
// deltas are plain differences of Kahan-compensated cluster sums, so
// the residual is bounded by the same drift tolerance the ledger uses).
func checkAttribution(t *testing.T, st Stats) {
	t.Helper()
	at := st.Attribution
	if at.Initial != st.InitialProfit || at.Final != st.FinalProfit {
		t.Fatalf("attribution endpoints %v→%v disagree with stats %v→%v",
			at.Initial, at.Final, st.InitialProfit, st.FinalProfit)
	}
	tol := 1e-6 * (1 + math.Abs(at.Final))
	if r := math.Abs(at.Residual()); r > tol {
		t.Fatalf("attribution does not account for the profit delta: initial %v + phases %v = %v, final %v (residual %v > %v)\n%+v",
			at.Initial, at.PhaseSum(), at.Initial+at.PhaseSum(), at.Final, r, tol, at)
	}
}

// TestAttributionIdentity checks Initial + Σphase ≈ Final on every
// solve path: plain, index-pruned, sharded (with reconciliation), and
// the warm start. Attribution is always on — no telemetry set needed.
func TestAttributionIdentity(t *testing.T) {
	scen := smallScenario(t, 60, 21)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"plain", nil},
		{"pruned", func(c *Config) { c.CandidateClusters = 2 }},
		{"sharded", func(c *Config) { c.Shards = 2 }},
		{"sharded_pruned", func(c *Config) { c.Shards = 2; c.CandidateClusters = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestSolver(t, scen, tc.mutate)
			_, st, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			checkAttribution(t, st)
			if st.Timings.Greedy <= 0 {
				t.Fatal("greedy phase timing not recorded")
			}
			if st.LocalSearchIters > 0 && st.Timings.Sweep <= 0 {
				t.Fatal("sweep phase timing not recorded despite local-search rounds")
			}
		})
	}

	t.Run("warmstart", func(t *testing.T) {
		s := newTestSolver(t, scen, nil)
		a, _, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		next := smallScenario(t, 60, 21)
		for i := range next.Clients {
			next.Clients[i].ArrivalRate *= 1.05
			next.Clients[i].PredictedRate *= 1.05
		}
		s2 := newTestSolver(t, next, nil)
		_, st, err := s2.SolveFrom(a)
		if err != nil {
			t.Fatal(err)
		}
		checkAttribution(t, st)
	})
}

// TestAttributionWithTelemetry pins that enabling the tracer and flight
// recorder does not change the attribution (the deltas are computed the
// same way with telemetry on and off).
func TestAttributionWithTelemetry(t *testing.T) {
	scen := smallScenario(t, 40, 22)
	off := newTestSolver(t, scen, nil)
	_, stOff, err := off.Solve()
	if err != nil {
		t.Fatal(err)
	}
	on := newTestSolver(t, scen, func(c *Config) { c.Telemetry = telemetry.New(nil) })
	_, stOn, err := on.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if stOn.Attribution != stOff.Attribution {
		t.Fatalf("telemetry changed attribution:\noff %+v\non  %+v", stOff.Attribution, stOn.Attribution)
	}
	checkAttribution(t, stOn)
}

// TestAttributionIdentity10k is the acceptance-scale check (CI scale
// smoke job, SCALE_SMOKE=1): on a 10k-client index-pruned sharded solve
// the attribution must still account for the whole profit delta.
func TestAttributionIdentity10k(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run (CI scale smoke job)")
	}
	if raceEnabled {
		t.Skip("scale smoke runs with -race off")
	}
	scen, err := workload.Generate(workload.ScaleConfig(10_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSolver(t, scen, func(c *Config) {
		c.NumInitSolutions = 1
		c.MaxLocalSearchIters = 1
		c.AlphaGranularity = 6
		c.Shards = scen.Cloud.NumClusters() / 8
		c.CandidateClusters = 8
	})
	_, st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkAttribution(t, st)
	t.Logf("10k attribution: %+v (timings %+v)", st.Attribution, st.Timings)
}

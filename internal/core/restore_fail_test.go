package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/telemetry"
)

// TestReassignRestoreFailureCounted forces the reassignment pass's
// worst-case branch — a client is unassigned for rescoring and its old
// placement no longer fits when the pass tries to put it back — and
// checks the event is counted in solver_reassign_restore_failures_total
// rather than passing silently. The scenario is made adversarial after
// the solve: blowing up one placed client's predicted rate makes every
// placement for it (including its own old one) infeasible.
func TestReassignRestoreFailureCounted(t *testing.T) {
	scen := smallScenario(t, 30, 21)
	set := telemetry.New(nil)
	s := newTestSolver(t, scen, func(c *Config) {
		c.Telemetry = set
		// The sequential pass is the one that physically unassigns before
		// rescoring; without admission control the restore branch is
		// reached whenever the best-placement branch falls through.
		c.DisableParallelReassign = true
		c.AdmissionControl = false
	})
	a, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}

	var victim model.ClientID
	found := false
	for i := range scen.Clients {
		if a.Assigned(model.ClientID(i)) {
			victim = model.ClientID(i)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("solve placed no clients")
	}
	// The victim's demand explodes: its old portions, sized for the
	// original rate, now saturate any server they land on, so both the
	// re-placement and the restore must fail.
	scen.Clients[victim].PredictedRate *= 1e6
	scen.Clients[victim].ArrivalRate *= 1e6

	restoreFails := set.Counter("solver_reassign_restore_failures_total")
	before := restoreFails.Value()
	s.ReassignmentPass(a)
	if got := restoreFails.Value() - before; got == 0 {
		t.Fatal("restore failure not counted in solver_reassign_restore_failures_total")
	}
	if a.Assigned(victim) {
		t.Fatal("victim still assigned; restore-failure path not exercised")
	}
	// No Validate here: mutating the scenario under a live allocation
	// necessarily leaves its incremental bookkeeping inconsistent (the
	// victim's loads were added at the old rate and removed at the new
	// one). The test's contract is only that the failed restore is
	// observable in the counter and the victim ends unserved.
}

package core

import (
	"math"
	"os"
	"testing"

	"repro/internal/workload"
)

// TestScaleSmoke10k is the CI scale smoke check (set SCALE_SMOKE=1): a
// 10k-client instance must solve within the job timeout, and the k=K
// exactness fallback must reproduce the unpruned solver's profit to
// within 1e-6 — at k=K the dispatch routes to the same exact scan, so
// any difference means the fallback contract broke. Runs without the
// race detector: at this size -race multiplies wall time without adding
// coverage beyond the small -race equivalence tests.
func TestScaleSmoke10k(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run (CI scale smoke job)")
	}
	if raceEnabled {
		t.Skip("scale smoke runs with -race off")
	}
	scen, err := workload.Generate(workload.ScaleConfig(10_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	numK := scen.Cloud.NumClusters()
	mk := func(k int) (float64, int) {
		s := newTestSolver(t, scen, func(c *Config) {
			c.NumInitSolutions = 1
			c.MaxLocalSearchIters = 1
			c.AlphaGranularity = 6
			c.Shards = numK / 8
			c.CandidateClusters = k
		})
		a, st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		return st.FinalProfit, st.Unplaced
	}
	exact, exactUnplaced := mk(0)
	atK, atKUnplaced := mk(numK)
	if diff := math.Abs(exact - atK); diff > 1e-6*(1+math.Abs(exact)) {
		t.Fatalf("k=K profit %v differs from unpruned %v by %v", atK, exact, diff)
	}
	if exactUnplaced != atKUnplaced {
		t.Fatalf("k=K unplaced %d vs unpruned %d", atKUnplaced, exactUnplaced)
	}
	t.Logf("10k clients: profit %.2f, %d unplaced", exact, exactUnplaced)
}

package core

import (
	"repro/internal/alloc"
	"repro/internal/model"
)

// undoLog records client allocations before tentative mutations so a
// phase can revert a non-improving experiment. All touched clients must
// live in one cluster, which keeps reverting cluster-local (and therefore
// safe under per-cluster parallelism).
type undoLog struct {
	entries []undoEntry
	seen    map[model.ClientID]struct{}
}

type undoEntry struct {
	client   model.ClientID
	cluster  model.ClusterID
	portions []alloc.Portion
	assigned bool
}

func newUndoLog() *undoLog {
	return &undoLog{seen: make(map[model.ClientID]struct{})}
}

// capture snapshots client i's current allocation the first time it is
// touched.
func (u *undoLog) capture(a *alloc.Allocation, i model.ClientID) {
	if _, ok := u.seen[i]; ok {
		return
	}
	u.seen[i] = struct{}{}
	e := undoEntry{client: i}
	if a.Assigned(i) {
		e.assigned = true
		e.cluster = model.ClusterID(a.ClusterOf(i))
		e.portions = a.Portions(i)
	}
	u.entries = append(u.entries, e)
}

// revert restores every captured client, newest first.
func (u *undoLog) revert(a *alloc.Allocation) error {
	for idx := len(u.entries) - 1; idx >= 0; idx-- {
		e := u.entries[idx]
		a.Unassign(e.client)
		if !e.assigned {
			continue
		}
		if err := a.Assign(e.client, e.cluster, e.portions); err != nil {
			return err
		}
	}
	return nil
}

// clusterProfit is the profit contribution of cluster k: revenue of the
// given member clients minus cost of the cluster's servers. It reads only
// cluster-local state, so concurrent phases on other clusters cannot race
// with it.
func (s *Solver) clusterProfit(a *alloc.Allocation, k model.ClusterID, members []model.ClientID) float64 {
	var p float64
	for _, i := range members {
		p += a.Revenue(i)
	}
	for _, j := range s.scen.Cloud.ClusterServers(k) {
		p -= a.ServerCost(j)
	}
	return p
}

package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// The pipelined reassignment pass (the default, see ReassignmentPass)
// splits the work the legacy pass interleaves:
//
//  1. Scoring: a worker pool prices every client's candidate placements
//     (one Assign_Distribute plus one exact marginal gain per cluster)
//     against the frozen allocation through a read-only alloc.View —
//     no mutation, no ledger traffic, so workers share the allocation
//     without locks.
//  2. Commit: a serial loop pops candidates in descending profit-delta
//     order (ties broken by ascending ClientID — this fixed order is
//     what makes the result independent of the worker count) and applies
//     each through a Txn, revalidating the exact delta against the live
//     allocation. Candidates whose source or target cluster was dirtied
//     by an earlier commit are rescored against the live state and
//     re-enter the queue.
//
// Across passes the solver remembers, per client, the cluster versions
// its last decision depended on (its own cluster and its best candidate
// cluster). A client whose relevant clusters are untouched since then is
// skipped entirely, so passes on a converged allocation approach
// O(changed) instead of O(clients × clusters).

// reassignCand is one client's committed-to-be-tried action: a move to
// cluster toK (fromK = -1 re-admits an unserved client), or an eviction
// (toK = -1).
type reassignCand struct {
	client   model.ClientID
	fromK    int
	toK      int
	delta    float64 // expected profit improvement; the commit-order key
	minDelta float64 // live-revalidation threshold (Txn.Delta must exceed it)
	fromVer  uint64  // ClusterVersion(fromK) at scoring time
	toVer    uint64  // ClusterVersion(toK) at scoring time
	portions []alloc.Portion
}

// clientMark records what a client's most recent scoring decision
// depended on, for the cross-pass skip rule.
type clientMark struct {
	scored bool
	cur    int32 // cluster the client was on when scored (-1 unassigned)
	best   int32 // best candidate cluster found (-1 when none was feasible)
	curVer uint64
	// bestVer is ClusterVersion(best) when best >= 0; when no cluster
	// could host the client it is the ClusterVersionSum instead — any
	// change anywhere may have opened capacity, so everything counts.
	bestVer uint64
}

// stale reports whether the mark no longer covers the allocation's
// current state and the client must be rescored.
func (m *clientMark) stale(a *alloc.Allocation, i model.ClientID, sumVer uint64) bool {
	if !m.scored || int(m.cur) != a.ClusterOf(i) {
		return true
	}
	if m.cur >= 0 && a.ClusterVersion(model.ClusterID(m.cur)) != m.curVer {
		return true
	}
	if m.best >= 0 {
		return a.ClusterVersion(model.ClusterID(m.best)) != m.bestVer
	}
	return sumVer != m.bestVer
}

// scoreResult is one client's scoring outcome, plus the index's
// evaluated/pruned tallies (folded into telemetry serially by the pass).
type scoreResult struct {
	cand      reassignCand
	hasCand   bool
	mark      clientMark
	evaluated int64
	pruned    int64
}

// reassignScratch is one scoring worker's reusable working memory.
type reassignScratch struct {
	dist  distScratch
	gain  alloc.GainScratch
	best  []alloc.Portion
	cands []alloc.Candidate
}

// reassignState carries the cross-pass skip marks plus recycled pass
// buffers. It is bound to one allocation; a pass over a different
// allocation starts fresh.
type reassignState struct {
	a       *alloc.Allocation
	marks   []clientMark
	toScore []model.ClientID
	results []scoreResult
	heap    []reassignCand
	scratch reassignScratch // serial-path and commit-loop scratch
	// ix is the candidate index when Config.CandidateClusters enables
	// top-k pruning; refreshed serially before the parallel scoring stage
	// and before each commit-loop rescore.
	ix *alloc.Index
}

// takeReassignState checks the solver's cached state out (concurrent
// passes on different allocations each get their own).
func (s *Solver) takeReassignState(a *alloc.Allocation, n int) *reassignState {
	s.reassignMu.Lock()
	st := s.reassignSt
	s.reassignSt = nil
	s.reassignMu.Unlock()
	if st == nil || st.a != a || len(st.marks) != n {
		st = &reassignState{a: a, marks: make([]clientMark, n)}
	}
	return st
}

func (s *Solver) storeReassignState(st *reassignState) {
	s.reassignMu.Lock()
	s.reassignSt = st
	s.reassignMu.Unlock()
}

// reassignWorkers resolves the scoring pool size for n scorable clients.
func (s *Solver) reassignWorkers(n int) int {
	w := s.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (s *Solver) reassignmentPassPipelined(ctx context.Context, a *alloc.Allocation, reconcile bool) int {
	ref := telemetry.RefFromContext(ctx)
	n := s.scen.NumClients()
	st := s.takeReassignState(a, n)
	defer s.storeReassignState(st)

	// Candidate index: built once per allocation, refreshed lazily here
	// (serial — the scoring workers only read it).
	var ix *alloc.Index
	if k := s.cfg.CandidateClusters; k > 0 && k < s.scen.Cloud.NumClusters() {
		if st.ix == nil || st.ix.Allocation() != a {
			st.ix = alloc.NewIndex(a)
		}
		st.ix.Refresh()
		ix = st.ix
	}

	outGain := math.Inf(-1)
	if s.cfg.AdmissionControl {
		outGain = 0
	}

	// Stage 0: the cross-pass skip rule — clients whose own and best
	// candidate clusters are untouched since their last scoring keep
	// their decision.
	sumVer := a.ClusterVersionSum()
	toScore := st.toScore[:0]
	for ci := 0; ci < n; ci++ {
		if s.scen.Clients[ci].PredictedRate == 0 {
			continue // absent client: never scored, never re-admitted
		}
		if st.marks[ci].stale(a, model.ClientID(ci), sumVer) {
			toScore = append(toScore, model.ClientID(ci))
		}
	}
	st.toScore = toScore
	skipped := n - len(toScore)

	// Stage 1: score all stale clients against the frozen allocation.
	var t0 time.Time
	if s.tel != nil {
		t0 = time.Now()
	}
	if cap(st.results) < len(toScore) {
		st.results = make([]scoreResult, len(toScore))
	}
	results := st.results[:len(toScore)]
	if workers := s.reassignWorkers(len(toScore)); workers <= 1 {
		for idx, i := range toScore {
			results[idx] = s.scoreClient(a, i, outGain, &st.scratch, ix, nil)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var ws reassignScratch
				for {
					idx := int(next.Add(1)) - 1
					if idx >= len(toScore) {
						return
					}
					results[idx] = s.scoreClient(a, toScore[idx], outGain, &ws, ix, nil)
				}
			}()
		}
		wg.Wait()
	}

	// Fold the results serially in client order: deterministic marks and
	// a deterministic initial heap regardless of worker interleaving.
	heap := st.heap[:0]
	var ixEvaluated, ixPruned int64
	for idx, i := range toScore {
		r := &results[idx]
		st.marks[i] = r.mark
		ixEvaluated += r.evaluated
		ixPruned += r.pruned
		if r.hasCand {
			heap = candPush(heap, r.cand)
		}
	}
	if s.tel != nil {
		s.tel.reassignScoreDur.ObserveSince(t0)
		s.tel.reassignScored.Add(int64(len(toScore)))
		s.tel.reassignSkipped.Add(int64(skipped))
	}

	// Stage 2: serial commit loop in descending-delta order.
	var tCommit time.Time
	if s.tel != nil {
		tCommit = time.Now()
	}
	var moves int
	var rescores, commitFails, restoreFails int64
	var rescoreDur time.Duration
	for len(heap) > 0 {
		var c reassignCand
		heap, c = candPop(heap)

		if (c.fromK >= 0 && a.ClusterVersion(model.ClusterID(c.fromK)) != c.fromVer) ||
			(c.toK >= 0 && a.ClusterVersion(model.ClusterID(c.toK)) != c.toVer) {
			// An earlier commit dirtied a cluster this candidate was
			// priced against: rescore against the live allocation.
			var tr time.Time
			if s.tel != nil {
				tr = time.Now()
			}
			if ix != nil {
				ix.Refresh() // lazy: only the committed-to clusters recompute
			}
			r := s.scoreClient(a, c.client, outGain, &st.scratch, ix, nil)
			st.marks[c.client] = r.mark
			ixEvaluated += r.evaluated
			ixPruned += r.pruned
			rescores++
			if s.tel != nil {
				rescoreDur += time.Since(tr)
			}
			if r.hasCand {
				heap = candPush(heap, r.cand)
			}
			continue
		}

		txn := a.Begin()
		txn.Capture(c.client)
		if c.fromK >= 0 {
			a.Unassign(c.client)
		}
		if c.toK >= 0 {
			if err := a.Assign(c.client, model.ClusterID(c.toK), c.portions); err != nil {
				// The scored candidate does not fit the live allocation
				// after all (borderline DP estimate). Restore and drop it —
				// rescoring the unchanged state would reproduce it.
				commitFails++
				s.flightRecord(telemetry.Event{Kind: telemetry.EventCommitFail,
					Client: int64(c.client), Cluster: int64(c.toK),
					Delta: finiteOr0(c.delta), Trace: ref})
				s.debugf("reassign: commit of scored candidate failed",
					"client", c.client, "cluster", c.toK, "err", err)
				if rbErr := txn.Rollback(); rbErr != nil {
					restoreFails++
					s.flightRecord(telemetry.Event{Kind: telemetry.EventRestoreFail,
						Client: int64(c.client), Cluster: int64(c.fromK), Trace: ref})
					s.debugf("reassign: rollback failed", "client", c.client, "err", rbErr)
				}
				continue
			}
		}
		if delta := txn.Delta(); delta > c.minDelta {
			txn.Commit()
			moves++
			if reconcile {
				if f := s.flightSampled(c.client); f != nil {
					f.Record(telemetry.Event{Kind: telemetry.EventReconcileMove,
						Client: int64(c.client), Cluster: int64(c.toK),
						Delta: delta, Trace: ref})
				}
			}
			// The commit changed the clusters this client's own decision
			// depended on; make sure the next pass rescores it.
			st.marks[c.client] = clientMark{}
		} else if rbErr := txn.Rollback(); rbErr != nil {
			restoreFails++
			s.flightRecord(telemetry.Event{Kind: telemetry.EventRestoreFail,
				Client: int64(c.client), Cluster: int64(c.fromK), Trace: ref})
			s.debugf("reassign: rollback failed", "client", c.client, "err", rbErr)
		}
	}
	st.heap = heap[:0]
	if s.tel != nil {
		s.tel.reassignCommitDur.Observe(max(0, time.Since(tCommit)-rescoreDur).Seconds())
		if rescoreDur > 0 {
			s.tel.reassignRescoreDur.Observe(rescoreDur.Seconds())
		}
		s.tel.reassignRescores.Add(rescores)
		if commitFails > 0 {
			s.tel.reassignCommitFails.Add(commitFails)
		}
		if restoreFails > 0 {
			s.tel.reassignRestoreFails.Add(restoreFails)
		}
		if ixEvaluated > 0 {
			s.tel.indexEvaluated.Add(ixEvaluated)
		}
		if ixPruned > 0 {
			s.tel.indexPruned.Add(ixPruned)
		}
	}
	return moves
}

// scoreClient prices candidate clusters for one client against the
// current allocation (read-only, through an exclusion view) and
// translates the legacy pass's commit switch into at most one candidate
// action. The mark records what the decision depended on.
//
// With a nil ix every cluster in scope is evaluated exactly (the seed
// behaviour). With an index, the client's own cluster is always evaluated
// exactly (the index bound is not sound for it) and the remaining
// clusters come from TopK in bound-descending order, stopping once no
// bound can clear the acceptance threshold max(bestGain, prevGain+1e-9,
// outGain) — every pruned cluster provably cannot change the action.
// subset restricts the scope (nil = whole cloud); the sharded solve
// passes its own clusters so no cross-shard state is read.
func (s *Solver) scoreClient(a *alloc.Allocation, i model.ClientID, outGain float64,
	ws *reassignScratch, ix *alloc.Index, subset []model.ClusterID) scoreResult {
	scope := s.scen.Cloud.NumClusters()
	if subset != nil {
		scope = len(subset)
	}
	view := a.Excluding(i)
	prevK := a.ClusterOf(i)

	prevGain := math.Inf(-1)
	if prevK != alloc.Unassigned {
		if g, ok := view.CurrentGain(&ws.gain); ok {
			prevGain = g
		}
	}

	bestGain := math.Inf(-1)
	bestK := -1
	var evaluated int64
	evalCluster := func(k model.ClusterID) {
		evaluated++
		_, portions, err := s.assignDistribute(&view, i, k, nil, &ws.dist)
		if err != nil {
			return
		}
		if g, ok := view.PlacementGain(k, portions, &ws.gain); ok && g > bestGain {
			bestGain = g
			bestK = int(k)
			ws.best = append(ws.best[:0], portions...)
		}
	}
	switch {
	case ix == nil && subset == nil:
		for k := 0; k < scope; k++ {
			evalCluster(model.ClusterID(k))
		}
	case ix == nil:
		for _, k := range subset {
			evalCluster(k)
		}
	default:
		if prevK != alloc.Unassigned {
			evalCluster(model.ClusterID(prevK))
		}
		ws.cands = ix.TopK(i, s.cfg.CandidateClusters, subset, ws.cands)
		for _, c := range ws.cands {
			if int(c.Cluster) == prevK {
				continue
			}
			threshold := bestGain
			if t := prevGain + 1e-9; t > threshold {
				threshold = t
			}
			if outGain > threshold {
				threshold = outGain
			}
			if c.Bound <= threshold {
				// Bound-descending order: no remaining candidate can strictly
				// beat the threshold, so none can change the action below.
				break
			}
			evalCluster(c.Cluster)
		}
	}

	mark := clientMark{scored: true, cur: int32(prevK), best: int32(bestK)}
	if prevK != alloc.Unassigned {
		mark.curVer = a.ClusterVersion(model.ClusterID(prevK))
	}
	switch {
	case bestK >= 0:
		mark.bestVer = a.ClusterVersion(model.ClusterID(bestK))
	case subset != nil:
		mark.bestVer = a.ClusterVersionSumOf(subset)
	default:
		mark.bestVer = a.ClusterVersionSum()
	}
	res := scoreResult{mark: mark, evaluated: evaluated, pruned: int64(scope) - evaluated}

	// The legacy commit switch, split into "which action" (decided here
	// on scored gains) and "apply" (the commit loop, revalidated against
	// the live ledger).
	switch {
	case bestK >= 0 && bestGain > prevGain+1e-9 && bestGain > outGain:
		c := reassignCand{
			client:   i,
			fromK:    prevK,
			toK:      bestK,
			toVer:    mark.bestVer,
			portions: append([]alloc.Portion(nil), ws.best...),
		}
		switch {
		case prevK == alloc.Unassigned:
			// Re-admission: the live delta is the full placement gain.
			c.fromK = -1
			c.delta = bestGain
			c.minDelta = 0
			if !s.cfg.AdmissionControl {
				c.minDelta = math.Inf(-1)
			}
		case math.IsInf(prevGain, -1):
			// The current placement is saturated; any feasible move out
			// of it is taken, as the legacy pass would.
			c.delta = math.Inf(1)
			c.minDelta = math.Inf(-1)
		default:
			c.delta = bestGain - prevGain
			c.minDelta = 1e-9
		}
		if c.fromK >= 0 {
			c.fromVer = mark.curVer
		}
		res.cand = c
		res.hasCand = true
	case prevK != alloc.Unassigned && prevGain < outGain:
		// Eviction (admission control only): serving this client at its
		// current placement loses money.
		res.cand = reassignCand{
			client:  i,
			fromK:   prevK,
			toK:     -1,
			delta:   -prevGain,
			fromVer: mark.curVer,
		}
		res.hasCand = true
	}
	return res
}

// finiteOr0 clamps non-finite deltas (the saturated-placement sentinel
// is +Inf) so flight events stay JSON-encodable.
func finiteOr0(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	return x
}

// candBefore orders the commit queue: larger expected delta first,
// ClientID ascending on ties. The total order is what keeps the commit
// sequence — and therefore the whole pass — independent of the scoring
// worker count.
func candBefore(x, y *reassignCand) bool {
	if x.delta != y.delta {
		return x.delta > y.delta
	}
	return x.client < y.client
}

// candPush/candPop implement a plain binary max-heap on a recycled slice.
func candPush(h []reassignCand, c reassignCand) []reassignCand {
	h = append(h, c)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !candBefore(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func candPop(h []reassignCand) ([]reassignCand, reassignCand) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = reassignCand{} // release the portions slice
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < len(h) && candBefore(&h[l], &h[next]) {
			next = l
		}
		if r < len(h) && candBefore(&h[r], &h[next]) {
			next = r
		}
		if next == i {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return h, top
}

package core

import (
	"math"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/opt"
)

// AdjustResourceShares re-optimizes the GPS shares of every portion on
// server j with the dispersion rates held fixed (paper Section V.B.1).
// With fixed α the problem is convex; the KKT solution is the water-fill
// of eq. (18), run independently on the processing and communication
// dimensions. The experiment runs inside a cluster-scoped transaction:
// it commits only when the exact (clipped-utility) profit does not
// decrease, and rolls the ledger back otherwise. Returns true when
// shares changed.
func (s *Solver) AdjustResourceShares(a *alloc.Allocation, j model.ServerID) bool {
	ids := a.ClientsOn(j)
	if len(ids) == 0 {
		return false
	}
	scen := s.scen
	class := scen.Cloud.ServerClass(j)
	srv := &scen.Cloud.Servers[j]

	itemsP := make([]opt.ShareItem, len(ids))
	itemsB := make([]opt.ShareItem, len(ids))
	alphas := make([]float64, len(ids))
	for n, i := range ids {
		cl := &scen.Clients[i]
		var alpha float64
		for _, p := range a.Portions(i) {
			if p.Server == j {
				alpha = p.Alpha
				break
			}
		}
		alphas[n] = alpha
		w := cl.ArrivalRate * scen.Utility(i).Slope * alpha
		rate := alpha * cl.PredictedRate
		itemsP[n] = opt.ShareItem{Weight: w, Exec: cl.ProcTime, PortionRate: rate, Cap: class.ProcCap}
		itemsB[n] = opt.ShareItem{Weight: w, Exec: cl.CommTime, PortionRate: rate, Cap: class.CommCap}
	}
	sharesP, _, errP := opt.WaterfillShares(itemsP, 1-srv.PreProcShare)
	sharesB, _, errB := opt.WaterfillShares(itemsB, 1-srv.PreCommShare)
	if errP != nil || errB != nil {
		// The current allocation is feasible, so this only happens on
		// pathological numerics; keep the existing shares.
		return false
	}

	// A share change on server j re-prices every client with a portion on
	// j; the transaction's captures and the ledger's dirty-marking track
	// exactly that set, so Delta is O(touched).
	txn := a.BeginCluster(srv.Cluster)
	ok := true
	for n, i := range ids {
		txn.Capture(i)
		k, ps := a.Unassign(i)
		for pi := range ps {
			if ps[pi].Server == j {
				ps[pi].ProcShare = sharesP[n]
				ps[pi].CommShare = sharesB[n]
			}
		}
		if err := a.Assign(i, k, ps); err != nil {
			ok = false
			break
		}
	}
	if !ok || txn.Delta() < -1e-12 {
		if err := txn.Rollback(); err != nil {
			// Restoring a previously-feasible state cannot fail; if it
			// somehow does, the allocation is corrupt and the caller's
			// Validate will catch it.
			return false
		}
		return false
	}
	txn.Commit()
	return true
}

// AdjustDispersionRates re-optimizes client i's dispersion rates α_ij
// over the servers it currently holds shares on, with the shares fixed
// (the dual of Adjust_ResourceShares; paper Section V.B.2). The profit is
// concave separable in α, solved by water-filling on the derivative.
// Portions driven to α = 0 are released. Commits only on exact profit
// improvement; returns true when the rates changed.
func (s *Solver) AdjustDispersionRates(a *alloc.Allocation, i model.ClientID) bool {
	if !a.Assigned(i) {
		return false
	}
	ps := a.Portions(i)
	if len(ps) < 2 {
		return false
	}
	scen := s.scen
	cl := &scen.Clients[i]
	w := cl.ArrivalRate * scen.Utility(i).Slope

	items := make([]opt.ConcaveItem, len(ps))
	for n, p := range ps {
		class := scen.Cloud.ServerClass(p.Server)
		var (
			mp = p.ProcShare * class.ProcCap
			mb = p.CommShare * class.CommCap
			sp = cl.PredictedRate * cl.ProcTime
			sb = cl.PredictedRate * cl.CommTime
			c  = class.UtilizationCost * cl.PredictedRate * cl.ProcTime / class.ProcCap
		)
		maxAlpha := math.Min(mp/sp, mb/sb)
		items[n] = opt.ConcaveItem{
			Cap: maxAlpha,
			Deriv: func(x float64) float64 {
				denP := mp - x*sp
				denB := mb - x*sb
				if denP <= 0 || denB <= 0 {
					return math.Inf(-1)
				}
				return -w*(cl.ProcTime*mp/(denP*denP)+cl.CommTime*mb/(denB*denB)) - c
			},
		}
	}
	xs, err := opt.MaximizeOnSimplex(items, 1)
	if err != nil {
		return false
	}

	k := model.ClusterID(a.ClusterOf(i))
	next := make([]alloc.Portion, 0, len(ps))
	for n, p := range ps {
		if xs[n] <= 0 {
			continue
		}
		p.Alpha = xs[n]
		next = append(next, p)
	}
	if len(next) == 0 {
		return false
	}

	// The move changes only client i's revenue and the costs of the
	// servers it touches; the cluster-scoped transaction measures exactly
	// that delta from the ledger.
	txn := a.BeginCluster(k)
	txn.Capture(i)
	a.Unassign(i)
	if err := a.Assign(i, k, next); err != nil {
		_ = txn.Rollback()
		return false
	}
	if txn.Delta() < -1e-12 {
		_ = txn.Rollback()
		return false
	}
	txn.Commit()
	return true
}

//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Large
// scale-coverage tests gate on it: under -race they would time out the
// suite without exercising anything the small equivalence tests do not.
const raceEnabled = true

package core

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/queueing"
)

// _commitMargin is the minimum exact-profit improvement required to commit
// a server activation or deactivation experiment.
const _commitMargin = 1e-9

// TurnOnServers tries to activate inactive servers in cluster k (paper
// Section V.B.2, TurnON_servers): for every server class with an inactive
// machine, it greedily moves client portions onto a fresh server of that
// class and commits the experiment when the exact cluster profit improves
// by more than the activation cost implicitly charged through ServerCost.
// Returns the number of servers activated.
func (s *Solver) TurnOnServers(a *alloc.Allocation, k model.ClusterID) int {
	return s.turnOnServers(a, k, s.membersOf(a, k))
}

// membersOf lists the clients assigned to cluster k.
func (s *Solver) membersOf(a *alloc.Allocation, k model.ClusterID) []model.ClientID {
	var ids []model.ClientID
	for i := range s.scen.Clients {
		if a.ClusterOf(model.ClientID(i)) == int(k) {
			ids = append(ids, model.ClientID(i))
		}
	}
	return ids
}

// turnOnServers is TurnOnServers with precomputed cluster membership so a
// per-cluster goroutine never reads other clusters' assignment fields.
func (s *Solver) turnOnServers(a *alloc.Allocation, k model.ClusterID, members []model.ClientID) int {
	var activated int
	tried := make(map[model.ServerClassID]struct{})
	for _, j := range s.scen.Cloud.ClusterServers(k) {
		if a.Active(j) {
			continue
		}
		class := s.scen.Cloud.Servers[j].Class
		if _, done := tried[class]; done {
			continue
		}
		tried[class] = struct{}{}
		if s.tryActivate(a, k, j, members) {
			activated++
		}
	}
	return activated
}

// moveCandidate is one tentative "shift part of client i onto the new
// server" move.
type moveCandidate struct {
	client model.ClientID
	next   []alloc.Portion
	delta  float64
}

// tryActivate experiments with activating server j0 inside a cluster-
// scoped transaction: it repeatedly applies the best positive-gain
// single-client move onto j0 and commits only if the exact cluster
// profit improved; otherwise the ledger rolls back with the moves.
func (s *Solver) tryActivate(a *alloc.Allocation, k model.ClusterID, j0 model.ServerID, members []model.ClientID) bool {
	txn := a.BeginCluster(k)
	maxMoves := 2 * s.cfg.AlphaGranularity
	for move := 0; move < maxMoves; move++ {
		best := s.bestMoveOnto(a, k, j0, members)
		if best == nil {
			break
		}
		txn.Capture(best.client)
		if err := a.Reassign(best.client, k, best.next); err != nil {
			break
		}
	}
	if txn.Delta() > _commitMargin {
		txn.Commit()
		return a.Active(j0)
	}
	_ = txn.Rollback()
	return false
}

// bestMoveOnto scans the cluster's clients for the most profitable shift
// of a fraction of one client's stream onto server j0, estimated with the
// exact per-move local profit (client revenue plus touched server costs).
func (s *Solver) bestMoveOnto(a *alloc.Allocation, k model.ClusterID, j0 model.ServerID, members []model.ClientID) *moveCandidate {
	scen := s.scen
	class := scen.Cloud.ServerClass(j0)
	availP := 1 - a.ProcShareUsed(j0)
	availB := 1 - a.CommShareUsed(j0)
	g := s.cfg.AlphaGranularity

	var best *moveCandidate
	for _, i := range members {
		cl := &scen.Clients[i]
		if a.DiskUsed(j0)+cl.DiskNeed > class.StoreCap {
			continue
		}
		ps := a.Portions(i)
		if hasServer(ps, j0) {
			continue // already there; dispersion adjust owns that case
		}
		w := cl.ArrivalRate * scen.Utility(i).Slope
		before := s.portionLocalProfitFor(a, i, ps, j0)
		for ug := 1; ug <= g; ug++ {
			alpha := float64(ug) / float64(g)
			rate := alpha * cl.PredictedRate
			phiP, okP := greedyShare(w*alpha, cl.ProcTime, rate, class.ProcCap, s.prices.proc, availP)
			if !okP {
				break
			}
			phiB, okB := greedyShare(w*alpha, cl.CommTime, rate, class.CommCap, s.prices.comm, availB)
			if !okB {
				break
			}
			next := scalePortions(ps, 1-alpha)
			next = append(next, alloc.Portion{Server: j0, Alpha: alpha, ProcShare: phiP, CommShare: phiB})
			after, feasible := s.evalPortions(a, i, next, j0)
			if !feasible {
				continue
			}
			if delta := after - before; delta > _commitMargin && (best == nil || delta > best.delta) {
				best = &moveCandidate{client: i, next: next, delta: delta}
			}
		}
	}
	return best
}

// hasServer reports whether the portions already include server j.
func hasServer(ps []alloc.Portion, j model.ServerID) bool {
	for _, p := range ps {
		if p.Server == j {
			return true
		}
	}
	return false
}

// scalePortions multiplies every α by f, dropping portions that vanish.
func scalePortions(ps []alloc.Portion, f float64) []alloc.Portion {
	out := make([]alloc.Portion, 0, len(ps))
	for _, p := range ps {
		p.Alpha *= f
		if p.Alpha > 0 {
			out = append(out, p)
		}
	}
	return out
}

// portionLocalProfitFor is client i's revenue minus the costs of its
// portion servers and the extra server, from current state.
func (s *Solver) portionLocalProfitFor(a *alloc.Allocation, i model.ClientID, ps []alloc.Portion, extra model.ServerID) float64 {
	p := a.Revenue(i)
	seen := map[model.ServerID]struct{}{extra: {}}
	p -= a.ServerCost(extra)
	for _, t := range ps {
		if _, ok := seen[t.Server]; ok {
			continue
		}
		seen[t.Server] = struct{}{}
		p -= a.ServerCost(t.Server)
	}
	return p
}

// evalPortions computes the hypothetical local profit of client i under
// the candidate portions without mutating the allocation: revenue from
// the implied response time, minus recomputed costs of the touched
// servers (including activation of j0 if it would become active).
func (s *Solver) evalPortions(a *alloc.Allocation, i model.ClientID, next []alloc.Portion, j0 model.ServerID) (float64, bool) {
	scen := s.scen
	cl := &scen.Clients[i]
	var resp float64
	for _, p := range next {
		class := scen.Cloud.ServerClass(p.Server)
		d, err := queueing.TandemDelay(
			queueing.PortionShares{Proc: p.ProcShare, Comm: p.CommShare},
			queueing.ServerCaps{Proc: class.ProcCap, Comm: class.CommCap},
			queueing.ExecTimes{Proc: cl.ProcTime, Comm: cl.CommTime},
			p.Alpha*cl.PredictedRate,
		)
		if err != nil {
			return 0, false
		}
		resp += p.Alpha * d
	}
	profit := cl.ArrivalRate * scen.Utility(i).Value(resp)

	// Rebuild touched-server costs under the hypothetical move.
	prev := make(map[model.ServerID]float64) // old utilization contribution
	for _, p := range a.Portions(i) {
		class := scen.Cloud.ServerClass(p.Server)
		prev[p.Server] = queueing.LoadFraction(class.ProcCap, cl.ProcTime, p.Alpha*cl.PredictedRate)
	}
	touched := map[model.ServerID]float64{j0: 0}
	for jj := range prev {
		touched[jj] = 0
	}
	for _, p := range next {
		class := scen.Cloud.ServerClass(p.Server)
		touched[p.Server] += queueing.LoadFraction(class.ProcCap, cl.ProcTime, p.Alpha*cl.PredictedRate)
	}
	for jj, newLoad := range touched {
		class := scen.Cloud.ServerClass(jj)
		baseLoad := a.ProcUtilization(jj) - prev[jj]
		othersActive := serverActiveWithout(a, jj, i)
		nowActive := othersActive || newLoad > 0
		if !nowActive {
			continue
		}
		profit -= class.FixedCost + class.UtilizationCost*(baseLoad+newLoad)
	}
	return profit, true
}

// serverActiveWithout reports whether server j would remain active if
// client i's portions were removed.
func serverActiveWithout(a *alloc.Allocation, j model.ServerID, i model.ClientID) bool {
	for _, id := range a.ClientsOn(j) {
		if id != i {
			return true
		}
	}
	return false
}

// TurnOffServers tries to deactivate active servers in cluster k (paper
// TurnOFF_servers): servers are ranked by their approximated utility and,
// lowest first, each is experimentally drained — every client portion on
// it is re-routed to the remaining servers (re-splitting the dispersion
// rates when the client keeps other portions, or fully re-assigning it
// inside the cluster otherwise). The experiment commits when the exact
// cluster profit improves. Returns the number of servers deactivated.
func (s *Solver) TurnOffServers(a *alloc.Allocation, k model.ClusterID) int {
	return s.turnOffServers(a, k)
}

// turnOffServers is the cluster-goroutine-safe body of TurnOffServers: it
// reads only cluster-local state (drain experiments are evaluated via the
// cluster-scoped transaction ledger, so no membership snapshot is needed).
func (s *Solver) turnOffServers(a *alloc.Allocation, k model.ClusterID) int {
	type ranked struct {
		server  model.ServerID
		utility float64
	}
	var order []ranked
	for _, j := range s.scen.Cloud.ClusterServers(k) {
		if a.Active(j) {
			order = append(order, ranked{server: j, utility: s.serverUtility(a, j)})
		}
	}
	sort.Slice(order, func(x, y int) bool { return order[x].utility < order[y].utility })

	var deactivated int
	for _, cand := range order {
		if !a.Active(cand.server) {
			continue // drained as a side effect of an earlier commit
		}
		if s.tryDeactivate(a, k, cand.server) {
			deactivated++
		}
	}
	return deactivated
}

// serverUtility approximates the utility the server currently produces:
// Σ over its portions of α·λ·U(R̄) attributed by dispersion weight.
func (s *Solver) serverUtility(a *alloc.Allocation, j model.ServerID) float64 {
	var u float64
	for _, i := range a.ClientsOn(j) {
		rev := a.Revenue(i)
		for _, p := range a.Portions(i) {
			if p.Server == j {
				u += p.Alpha * rev
			}
		}
	}
	return u
}

// tryDeactivate drains server j inside a cluster-scoped transaction and
// commits if the exact cluster profit improved.
func (s *Solver) tryDeactivate(a *alloc.Allocation, k model.ClusterID, j model.ServerID) bool {
	txn := a.BeginCluster(k)
	ok := true
	for _, i := range a.ClientsOn(j) {
		txn.Capture(i)
		if !s.rerouteOff(a, i, k, j) {
			ok = false
			break
		}
	}
	if ok && txn.Delta() > _commitMargin {
		txn.Commit()
		return true
	}
	_ = txn.Rollback()
	return false
}

// rerouteOff removes client i's portion on server j. When the client has
// other portions their α are re-scaled (respecting stability caps);
// otherwise the client is fully re-assigned inside cluster k excluding j.
func (s *Solver) rerouteOff(a *alloc.Allocation, i model.ClientID, k model.ClusterID, j model.ServerID) bool {
	ps := a.Portions(i)
	var rest []alloc.Portion
	var freed float64
	for _, p := range ps {
		if p.Server == j {
			freed = p.Alpha
			continue
		}
		rest = append(rest, p)
	}
	if freed == 0 {
		return true
	}
	if len(rest) > 0 {
		if next, ok := s.respreadAlpha(rest, &s.scen.Clients[i], freed); ok {
			if err := a.Reassign(i, k, next); err == nil {
				return true
			}
		}
	}
	// Full re-assignment inside the cluster, excluding the drained server.
	a.Unassign(i)
	_, portions, err := s.assignDistribute(a, i, k, func(srv model.ServerID) bool { return srv != j }, nil)
	if err == nil {
		if err := a.Assign(i, k, portions); err == nil {
			return true
		}
	}
	return false
}

// respreadAlpha distributes the freed dispersion mass across the
// remaining portions proportionally to their spare stability headroom.
func (s *Solver) respreadAlpha(rest []alloc.Portion, cl *model.Client, freed float64) ([]alloc.Portion, bool) {
	caps := make([]float64, len(rest))
	var headroom float64
	for n, p := range rest {
		class := s.scen.Cloud.ServerClass(p.Server)
		maxA := p.ProcShare * class.ProcCap / (cl.PredictedRate * cl.ProcTime)
		if mb := p.CommShare * class.CommCap / (cl.PredictedRate * cl.CommTime); mb < maxA {
			maxA = mb
		}
		maxA *= 1 - 1e-6
		caps[n] = maxA
		if h := maxA - p.Alpha; h > 0 {
			headroom += h
		}
	}
	if headroom <= freed {
		return nil, false
	}
	out := make([]alloc.Portion, len(rest))
	copy(out, rest)
	for n := range out {
		if h := caps[n] - out[n].Alpha; h > 0 {
			out[n].Alpha += freed * h / headroom
		}
	}
	return out, true
}

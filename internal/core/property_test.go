package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// TestSolveInvariantsProperty: on random paper-shaped instances, Solve
// always returns a feasible allocation whose profit the local search did
// not regress, with consistent stats.
func TestSolveInvariantsProperty(t *testing.T) {
	f := func(seed int64, nClients uint8) bool {
		cfg := workload.DefaultConfig()
		cfg.Seed = seed
		cfg.NumClients = 5 + int(nClients)%30
		cfg.MinServersPerCluster = 4
		cfg.MaxServersPerCluster = 8
		scen, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		solver, err := NewSolver(scen, DefaultConfig())
		if err != nil {
			return false
		}
		a, stats, err := solver.Solve()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := a.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if stats.FinalProfit < stats.InitialProfit-1e-9 {
			t.Logf("seed %d: regression %v -> %v", seed, stats.InitialProfit, stats.FinalProfit)
			return false
		}
		if math.Abs(a.Profit()-stats.FinalProfit) > 1e-9 {
			return false
		}
		if a.NumAssigned()+stats.Unplaced != scen.NumClients() {
			return false
		}
		// Every assigned client must have a finite response time and its
		// dispersion rates summing to 1 (constraint 6), which Validate
		// checked; additionally no client should sit on an inactive server.
		for j := 0; j < scen.Cloud.NumServers(); j++ {
			id := scen.Cloud.Servers[j].ID
			if len(a.ClientsOn(id)) > 0 != a.Active(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyShareProperty: the closed-form share always sits strictly
// above the stability floor and within the available budget, and grows
// with the delay weight.
func TestGreedyShareProperty(t *testing.T) {
	f := func(wRaw, execRaw, rateRaw, capRaw, etaRaw, availRaw float64) bool {
		w := math.Abs(wRaw)
		exec := 0.1 + math.Mod(math.Abs(execRaw), 1)
		rate := math.Mod(math.Abs(rateRaw), 3)
		capC := 1 + math.Mod(math.Abs(capRaw), 5)
		eta := 0.01 + math.Mod(math.Abs(etaRaw), 10)
		avail := math.Mod(math.Abs(availRaw), 1)
		phi, ok := greedyShare(w, exec, rate, capC, eta, avail)
		floor := rate * exec / capC
		if !ok {
			// Infeasible means the floor (plus margin) does not fit.
			return floor*(1+1e-6)+1e-12 >= avail
		}
		if phi <= floor || phi > avail {
			return false
		}
		// More weight never shrinks the share.
		phi2, ok2 := greedyShare(w*2, exec, rate, capC, eta, avail)
		return ok2 && phi2 >= phi-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPricesPositiveProperty: calibration always yields positive finite
// shadow prices.
func TestPricesPositiveProperty(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		cfg := workload.DefaultConfig()
		cfg.Seed = seed
		cfg.NumClients = 1 + int(scaleRaw)%80
		scen, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		pr := calibratePrices(scen, 1)
		return pr.proc > 0 && pr.comm > 0 &&
			!math.IsInf(pr.proc, 0) && !math.IsInf(pr.comm, 0) &&
			!math.IsNaN(pr.proc) && !math.IsNaN(pr.comm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"math"
	"sync"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Candidate generation for the greedy phase. placeBest dispatches between
// the exact full scan (placeBestFull — every cluster in scope priced with
// Assign_Distribute, the seed behaviour, bit-compatible) and the indexed
// path (placeBestIndexed — the alloc.Index yields the top-k clusters by
// gain upper bound, which are evaluated exactly in bound order with early
// exit once no remaining bound can beat the best exact estimate). The
// pruning is sound because the index bound dominates the Assign_Distribute
// estimate as well as the exact gain: the DP's revenue term is λ·(Base −
// Slope·Σα_j d_j) with every portion's tandem delay d_j at least the
// bound's r_lb, and its cost term is at least the bound's cost floor.

// greedyEval is one exactly-evaluated candidate cluster of the indexed
// greedy path, with eval-owned (recycled) portions. bound keeps the
// index's gain upper bound so the flight recorder can report bound vs
// exact for the chosen candidate.
type greedyEval struct {
	k        model.ClusterID
	est      float64
	bound    float64
	portions []alloc.Portion
	ok       bool
}

// greedyState carries one greedy pass's candidate-generation machinery:
// the index (nil for the exact path), the cluster scope (nil for the
// whole cloud — the sharded solve passes its own clusters), recycled
// buffers, the trace context stamped onto flight-recorder events, and
// the index hit/prune counts the owner folds into telemetry when the
// pass ends.
type greedyState struct {
	ix     *alloc.Index
	subset []model.ClusterID
	cands  []alloc.Candidate
	evals  []greedyEval
	dist   distScratch
	ref    telemetry.TraceRef

	evaluated int64
	pruned    int64
}

// newGreedyState builds the candidate-generation state for one greedy
// pass over allocation a: index-backed when Config.CandidateClusters
// enables top-k pruning within the scope, plain (exact scan) otherwise.
func (s *Solver) newGreedyState(a *alloc.Allocation, subset []model.ClusterID) *greedyState {
	limit := s.scen.Cloud.NumClusters()
	if subset != nil {
		limit = len(subset)
	}
	if k := s.cfg.CandidateClusters; k > 0 && k < limit {
		return &greedyState{ix: alloc.NewIndex(a), subset: subset}
	}
	return &greedyState{subset: subset}
}

// setRef stamps the pass's flight-recorder events with the enclosing
// span's trace context. Nil-safe (placeBest accepts a nil state).
func (gs *greedyState) setRef(ref telemetry.TraceRef) {
	if gs != nil {
		gs.ref = ref
	}
}

// flushTelemetry folds the pass's index counters into the solver metrics.
func (gs *greedyState) flushTelemetry(tel *solverTel) {
	if gs == nil || tel == nil {
		return
	}
	if gs.evaluated > 0 {
		tel.indexEvaluated.Add(gs.evaluated)
	}
	if gs.pruned > 0 {
		tel.indexPruned.Add(gs.pruned)
	}
	gs.evaluated, gs.pruned = 0, 0
}

// placeBest assigns client i to its most profitable cluster within gs's
// scope (nil gs = exact whole-cloud scan); ErrCannotPlace when no cluster
// can host it.
func (s *Solver) placeBest(a *alloc.Allocation, i model.ClientID, gs *greedyState) error {
	if gs != nil && gs.ix != nil {
		return s.placeBestIndexed(a, i, gs)
	}
	var subset []model.ClusterID
	var ref telemetry.TraceRef
	if gs != nil {
		subset = gs.subset
		ref = gs.ref
	}
	return s.placeBestFull(a, i, subset, ref)
}

// flightSampled returns the flight recorder when client i falls into its
// deterministic sample; nil otherwise (and always when telemetry is off),
// so hot-path callers skip building the event entirely.
func (s *Solver) flightSampled(i model.ClientID) *telemetry.Flight {
	f := s.tel.flightRec()
	if f == nil || !f.SampleClient(int64(i)) {
		return nil
	}
	return f
}

// flightRecord logs an event unconditionally — for rare outcomes
// (commit/restore failures) that must never be sampled away. Inert when
// telemetry is off.
func (s *Solver) flightRecord(e telemetry.Event) {
	if f := s.tel.flightRec(); f != nil {
		f.Record(e)
	}
}

// placeBestFull is the exact path: price every cluster in scope, pick the
// best estimate, and fall through the estimate order until one Assign
// sticks. With a nil subset this is exactly the seed solver's placeBest.
// ref stamps the outcome's flight-recorder event.
func (s *Solver) placeBestFull(a *alloc.Allocation, i model.ClientID, subset []model.ClusterID, ref telemetry.TraceRef) error {
	type result struct {
		est      float64
		portions []alloc.Portion
		ok       bool
	}
	numC := s.scen.Cloud.NumClusters()
	clusterAt := func(idx int) model.ClusterID { return model.ClusterID(idx) }
	if subset != nil {
		numC = len(subset)
		clusterAt = func(idx int) model.ClusterID { return subset[idx] }
	}
	results := make([]result, numC)
	eval := func(idx int) {
		est, portions, err := s.AssignDistribute(a, i, clusterAt(idx))
		if err != nil {
			return
		}
		results[idx] = result{est: est, portions: portions, ok: true}
	}
	if s.cfg.Parallel && numC > 1 {
		// The paper's distributed decision making: each cluster agent
		// evaluates the client against its own state in parallel.
		var wg sync.WaitGroup
		for idx := 0; idx < numC; idx++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				eval(idx)
			}(idx)
		}
		wg.Wait()
	} else {
		for idx := 0; idx < numC; idx++ {
			eval(idx)
		}
	}

	best := -1
	for idx, r := range results {
		if !r.ok {
			continue
		}
		if best == -1 || r.est > results[best].est {
			best = idx
		}
	}
	if s.cfg.AdmissionControl && best != -1 && results[best].est < 0 {
		// Serving this client anywhere would lose money; leave it out and
		// let the exact-profit reassignment pass re-admit it if the
		// linearized estimate was too pessimistic.
		if f := s.flightSampled(i); f != nil {
			f.Record(telemetry.Event{Kind: telemetry.EventPlaceReject, Client: int64(i),
				Reason: "negative_gain", Exact: results[best].est, Trace: ref})
		}
		return ErrCannotPlace
	}
	// Try clusters in descending estimate order until one accepts: the
	// estimate is approximate, so an Assign can still fail in rare
	// borderline cases.
	for best != -1 {
		r := results[best]
		if err := a.Assign(i, clusterAt(best), r.portions); err == nil {
			if f := s.flightSampled(i); f != nil {
				f.Record(telemetry.Event{Kind: telemetry.EventPlaceAccept, Client: int64(i),
					Cluster: int64(clusterAt(best)), Exact: r.est, Trace: ref})
			}
			return nil
		}
		results[best].ok = false
		best = -1
		for idx, rr := range results {
			if !rr.ok {
				continue
			}
			if best == -1 || rr.est > results[best].est {
				best = idx
			}
		}
	}
	if f := s.flightSampled(i); f != nil {
		f.Record(telemetry.Event{Kind: telemetry.EventPlaceReject, Client: int64(i),
			Reason: "no_feasible_cluster", Trace: ref})
	}
	return ErrCannotPlace
}

// placeBestIndexed is the pruned path: refresh the index (lazy — only
// clusters whose version moved are recomputed), take the top-k clusters
// by gain upper bound, and evaluate them exactly in bound order, stopping
// as soon as the next bound cannot beat the best exact estimate seen.
func (s *Solver) placeBestIndexed(a *alloc.Allocation, i model.ClientID, gs *greedyState) error {
	scope := s.scen.Cloud.NumClusters()
	if gs.subset != nil {
		scope = len(gs.subset)
		gs.ix.RefreshClusters(gs.subset)
	} else {
		gs.ix.Refresh()
	}
	gs.cands = gs.ix.TopK(i, s.cfg.CandidateClusters, gs.subset, gs.cands)

	evals := gs.evals[:0]
	bestEst := math.Inf(-1)
	var evaluated int64
	var boundPruned bool
	var prunedBound float64
	for _, c := range gs.cands {
		if c.Bound <= bestEst {
			// Candidates are bound-descending: nothing after this one can
			// strictly beat the best exact estimate either.
			boundPruned, prunedBound = true, c.Bound
			break
		}
		est, portions, err := s.assignDistribute(a, i, c.Cluster, nil, &gs.dist)
		evaluated++
		if err != nil {
			continue
		}
		n := len(evals)
		if n < cap(evals) {
			evals = evals[:n+1]
		} else {
			evals = append(evals, greedyEval{})
		}
		ev := &evals[n]
		ev.k, ev.est, ev.bound, ev.ok = c.Cluster, est, c.Bound, true
		// The scratch-backed portions alias gs.dist; copy into the
		// eval-owned recycled slice before the next evaluation.
		ev.portions = append(ev.portions[:0], portions...)
		if est > bestEst {
			bestEst = est
		}
	}
	gs.evals = evals
	gs.evaluated += evaluated
	gs.pruned += int64(scope) - evaluated
	if boundPruned {
		// Bound-vs-exact at the prune decision: the best bound left
		// unevaluated against the exact estimate that beat it.
		if f := s.flightSampled(i); f != nil {
			f.Record(telemetry.Event{Kind: telemetry.EventPruneBound, Client: int64(i),
				Bound: prunedBound, Exact: bestEst, Trace: gs.ref})
		}
	}

	best := -1
	for idx := range evals {
		if !evals[idx].ok {
			continue
		}
		if best == -1 || evals[idx].est > evals[best].est {
			best = idx
		}
	}
	if s.cfg.AdmissionControl && best != -1 && evals[best].est < 0 {
		return s.escalateFull(a, i, gs, evaluated, scope, "negative_gain")
	}
	for best != -1 {
		if err := a.Assign(i, evals[best].k, evals[best].portions); err == nil {
			if f := s.flightSampled(i); f != nil {
				f.Record(telemetry.Event{Kind: telemetry.EventPlaceAccept, Client: int64(i),
					Cluster: int64(evals[best].k), Bound: evals[best].bound,
					Exact: evals[best].est, Trace: gs.ref})
			}
			return nil
		}
		evals[best].ok = false
		best = -1
		for idx := range evals {
			if !evals[idx].ok {
				continue
			}
			if best == -1 || evals[idx].est > evals[best].est {
				best = idx
			}
		}
	}
	return s.escalateFull(a, i, gs, evaluated, scope, "topk_rejected")
}

// escalateFull is the indexed path's exactness fallback for rejections:
// when none of the top-k candidates accepts the client, the pruned
// clusters are the only hope left, so the client gets the full exact
// scan over the scope before being declared unplaceable. On loaded
// clouds the gain bound separates candidates poorly (many clusters have
// a thin positive bound but a negative exact gain) and top-k-only
// admission rejects far too many clients; the escalation bounds that
// damage at the cost of O(scope) exact evaluations per rejected client
// — in the sharded solve the scope is one shard's clusters, keeping the
// fallback cheap.
func (s *Solver) escalateFull(a *alloc.Allocation, i model.ClientID, gs *greedyState, evaluated int64, scope int, reason string) error {
	if evaluated >= int64(scope) {
		// Nothing was pruned; the rejection is exact.
		if f := s.flightSampled(i); f != nil {
			f.Record(telemetry.Event{Kind: telemetry.EventPlaceReject, Client: int64(i),
				Reason: "no_feasible_cluster", Trace: gs.ref})
		}
		return ErrCannotPlace
	}
	gs.pruned -= int64(scope) - evaluated
	gs.evaluated += int64(scope) - evaluated
	if f := s.flightSampled(i); f != nil {
		f.Record(telemetry.Event{Kind: telemetry.EventEscalate, Client: int64(i),
			Reason: reason, Trace: gs.ref})
	}
	return s.placeBestFull(a, i, gs.subset, gs.ref)
}

package core

import (
	"math"
	"sync"

	"repro/internal/alloc"
	"repro/internal/model"
)

// Candidate generation for the greedy phase. placeBest dispatches between
// the exact full scan (placeBestFull — every cluster in scope priced with
// Assign_Distribute, the seed behaviour, bit-compatible) and the indexed
// path (placeBestIndexed — the alloc.Index yields the top-k clusters by
// gain upper bound, which are evaluated exactly in bound order with early
// exit once no remaining bound can beat the best exact estimate). The
// pruning is sound because the index bound dominates the Assign_Distribute
// estimate as well as the exact gain: the DP's revenue term is λ·(Base −
// Slope·Σα_j d_j) with every portion's tandem delay d_j at least the
// bound's r_lb, and its cost term is at least the bound's cost floor.

// greedyEval is one exactly-evaluated candidate cluster of the indexed
// greedy path, with eval-owned (recycled) portions.
type greedyEval struct {
	k        model.ClusterID
	est      float64
	portions []alloc.Portion
	ok       bool
}

// greedyState carries one greedy pass's candidate-generation machinery:
// the index (nil for the exact path), the cluster scope (nil for the
// whole cloud — the sharded solve passes its own clusters), recycled
// buffers, and the index hit/prune counts the owner folds into telemetry
// when the pass ends.
type greedyState struct {
	ix     *alloc.Index
	subset []model.ClusterID
	cands  []alloc.Candidate
	evals  []greedyEval
	dist   distScratch

	evaluated int64
	pruned    int64
}

// newGreedyState builds the candidate-generation state for one greedy
// pass over allocation a. It returns nil when neither pruning nor a
// cluster scope is in play — placeBest treats nil as the plain exact
// whole-cloud scan.
func (s *Solver) newGreedyState(a *alloc.Allocation, subset []model.ClusterID) *greedyState {
	limit := s.scen.Cloud.NumClusters()
	if subset != nil {
		limit = len(subset)
	}
	if k := s.cfg.CandidateClusters; k > 0 && k < limit {
		return &greedyState{ix: alloc.NewIndex(a), subset: subset}
	}
	if subset == nil {
		return nil
	}
	return &greedyState{subset: subset}
}

// flushTelemetry folds the pass's index counters into the solver metrics.
func (gs *greedyState) flushTelemetry(tel *solverTel) {
	if gs == nil || tel == nil {
		return
	}
	if gs.evaluated > 0 {
		tel.indexEvaluated.Add(gs.evaluated)
	}
	if gs.pruned > 0 {
		tel.indexPruned.Add(gs.pruned)
	}
	gs.evaluated, gs.pruned = 0, 0
}

// placeBest assigns client i to its most profitable cluster within gs's
// scope (nil gs = exact whole-cloud scan); ErrCannotPlace when no cluster
// can host it.
func (s *Solver) placeBest(a *alloc.Allocation, i model.ClientID, gs *greedyState) error {
	if gs != nil && gs.ix != nil {
		return s.placeBestIndexed(a, i, gs)
	}
	var subset []model.ClusterID
	if gs != nil {
		subset = gs.subset
	}
	return s.placeBestFull(a, i, subset)
}

// placeBestFull is the exact path: price every cluster in scope, pick the
// best estimate, and fall through the estimate order until one Assign
// sticks. With a nil subset this is exactly the seed solver's placeBest.
func (s *Solver) placeBestFull(a *alloc.Allocation, i model.ClientID, subset []model.ClusterID) error {
	type result struct {
		est      float64
		portions []alloc.Portion
		ok       bool
	}
	numC := s.scen.Cloud.NumClusters()
	clusterAt := func(idx int) model.ClusterID { return model.ClusterID(idx) }
	if subset != nil {
		numC = len(subset)
		clusterAt = func(idx int) model.ClusterID { return subset[idx] }
	}
	results := make([]result, numC)
	eval := func(idx int) {
		est, portions, err := s.AssignDistribute(a, i, clusterAt(idx))
		if err != nil {
			return
		}
		results[idx] = result{est: est, portions: portions, ok: true}
	}
	if s.cfg.Parallel && numC > 1 {
		// The paper's distributed decision making: each cluster agent
		// evaluates the client against its own state in parallel.
		var wg sync.WaitGroup
		for idx := 0; idx < numC; idx++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				eval(idx)
			}(idx)
		}
		wg.Wait()
	} else {
		for idx := 0; idx < numC; idx++ {
			eval(idx)
		}
	}

	best := -1
	for idx, r := range results {
		if !r.ok {
			continue
		}
		if best == -1 || r.est > results[best].est {
			best = idx
		}
	}
	if s.cfg.AdmissionControl && best != -1 && results[best].est < 0 {
		// Serving this client anywhere would lose money; leave it out and
		// let the exact-profit reassignment pass re-admit it if the
		// linearized estimate was too pessimistic.
		return ErrCannotPlace
	}
	// Try clusters in descending estimate order until one accepts: the
	// estimate is approximate, so an Assign can still fail in rare
	// borderline cases.
	for best != -1 {
		r := results[best]
		if err := a.Assign(i, clusterAt(best), r.portions); err == nil {
			return nil
		}
		results[best].ok = false
		best = -1
		for idx, rr := range results {
			if !rr.ok {
				continue
			}
			if best == -1 || rr.est > results[best].est {
				best = idx
			}
		}
	}
	return ErrCannotPlace
}

// placeBestIndexed is the pruned path: refresh the index (lazy — only
// clusters whose version moved are recomputed), take the top-k clusters
// by gain upper bound, and evaluate them exactly in bound order, stopping
// as soon as the next bound cannot beat the best exact estimate seen.
func (s *Solver) placeBestIndexed(a *alloc.Allocation, i model.ClientID, gs *greedyState) error {
	scope := s.scen.Cloud.NumClusters()
	if gs.subset != nil {
		scope = len(gs.subset)
		gs.ix.RefreshClusters(gs.subset)
	} else {
		gs.ix.Refresh()
	}
	gs.cands = gs.ix.TopK(i, s.cfg.CandidateClusters, gs.subset, gs.cands)

	evals := gs.evals[:0]
	bestEst := math.Inf(-1)
	var evaluated int64
	for _, c := range gs.cands {
		if c.Bound <= bestEst {
			// Candidates are bound-descending: nothing after this one can
			// strictly beat the best exact estimate either.
			break
		}
		est, portions, err := s.assignDistribute(a, i, c.Cluster, nil, &gs.dist)
		evaluated++
		if err != nil {
			continue
		}
		n := len(evals)
		if n < cap(evals) {
			evals = evals[:n+1]
		} else {
			evals = append(evals, greedyEval{})
		}
		ev := &evals[n]
		ev.k, ev.est, ev.ok = c.Cluster, est, true
		// The scratch-backed portions alias gs.dist; copy into the
		// eval-owned recycled slice before the next evaluation.
		ev.portions = append(ev.portions[:0], portions...)
		if est > bestEst {
			bestEst = est
		}
	}
	gs.evals = evals
	gs.evaluated += evaluated
	gs.pruned += int64(scope) - evaluated

	best := -1
	for idx := range evals {
		if !evals[idx].ok {
			continue
		}
		if best == -1 || evals[idx].est > evals[best].est {
			best = idx
		}
	}
	if s.cfg.AdmissionControl && best != -1 && evals[best].est < 0 {
		return s.escalateFull(a, i, gs, evaluated, scope)
	}
	for best != -1 {
		if err := a.Assign(i, evals[best].k, evals[best].portions); err == nil {
			return nil
		}
		evals[best].ok = false
		best = -1
		for idx := range evals {
			if !evals[idx].ok {
				continue
			}
			if best == -1 || evals[idx].est > evals[best].est {
				best = idx
			}
		}
	}
	return s.escalateFull(a, i, gs, evaluated, scope)
}

// escalateFull is the indexed path's exactness fallback for rejections:
// when none of the top-k candidates accepts the client, the pruned
// clusters are the only hope left, so the client gets the full exact
// scan over the scope before being declared unplaceable. On loaded
// clouds the gain bound separates candidates poorly (many clusters have
// a thin positive bound but a negative exact gain) and top-k-only
// admission rejects far too many clients; the escalation bounds that
// damage at the cost of O(scope) exact evaluations per rejected client
// — in the sharded solve the scope is one shard's clusters, keeping the
// fallback cheap.
func (s *Solver) escalateFull(a *alloc.Allocation, i model.ClientID, gs *greedyState, evaluated int64, scope int) error {
	if evaluated >= int64(scope) {
		// Nothing was pruned; the rejection is exact.
		return ErrCannotPlace
	}
	gs.pruned -= int64(scope) - evaluated
	gs.evaluated += int64(scope) - evaluated
	return s.placeBestFull(a, i, gs.subset)
}

package core

import (
	"math"

	"repro/internal/alloc"
	"repro/internal/model"
)

// ReassignmentPass is the cloud-level move of the paper's local search:
// each client in turn is removed and re-placed on whichever cluster now
// offers the highest exact profit ("this local search is not only used to
// change client assignment to decrease the resource saturation in some of
// clusters but also to combine the clients", Section V). It is a central-
// manager operation — unlike the per-cluster phases it may move clients
// across clusters, so it runs sequentially. Returns the number of
// improving moves.
//
// Candidates are compared by their exact marginal profit against the
// "client unserved" state: moving one client only changes its own revenue
// and the costs of the servers it leaves or joins, so the comparison is
// O(portions) instead of O(clients).
func (s *Solver) ReassignmentPass(a *alloc.Allocation) int {
	numK := s.scen.Cloud.NumClusters()
	var moves int
	for ci := 0; ci < s.scen.NumClients(); ci++ {
		i := model.ClientID(ci)
		prevK, prevPortions := a.Unassign(i)

		// Marginal profit of a candidate placement vs staying out.
		gainOf := func(k model.ClusterID, portions []alloc.Portion) (float64, bool) {
			costBefore := s.portionServerCost(a, portions)
			if err := a.Assign(i, k, portions); err != nil {
				return 0, false
			}
			// RevenueErr separates "infeasible move" (saturated portions —
			// reject the candidate) from "worthless move" (zero revenue —
			// a legitimate gain of −Δcost).
			rev, revErr := a.RevenueErr(i)
			gain := rev - (s.portionServerCost(a, portions) - costBefore)
			a.Unassign(i)
			if revErr != nil {
				return 0, false
			}
			return gain, true
		}

		prevGain := math.Inf(-1)
		if prevK != alloc.Unassigned {
			if g, ok := gainOf(prevK, prevPortions); ok {
				prevGain = g
			}
		}

		bestGain := math.Inf(-1)
		var bestK model.ClusterID
		var bestPortions []alloc.Portion
		for k := 0; k < numK; k++ {
			_, portions, err := s.AssignDistribute(a, i, model.ClusterID(k))
			if err != nil {
				continue
			}
			if g, ok := gainOf(model.ClusterID(k), portions); ok && g > bestGain {
				bestGain = g
				bestK = model.ClusterID(k)
				bestPortions = portions
			}
		}

		// Pick the best of: previous placement, best new placement, or —
		// with admission control — leaving the client out (gain 0).
		outGain := math.Inf(-1)
		if s.cfg.AdmissionControl {
			outGain = 0
		}
		switch {
		case bestPortions != nil && bestGain > prevGain+1e-9 && bestGain > outGain:
			if err := a.Assign(i, bestK, bestPortions); err == nil {
				moves++
				continue
			}
			fallthrough
		case prevK != alloc.Unassigned && prevGain >= outGain:
			if err := a.Assign(i, prevK, prevPortions); err != nil {
				continue
			}
		default:
			// Client stays (or becomes) unserved.
			if prevK != alloc.Unassigned {
				moves++ // eviction is a move
			}
		}
	}
	return moves
}

// portionServerCost sums the current cost of the (deduplicated) servers
// referenced by the portions.
func (s *Solver) portionServerCost(a *alloc.Allocation, portions []alloc.Portion) float64 {
	var cost float64
	seen := make(map[model.ServerID]struct{}, len(portions))
	for _, p := range portions {
		if _, ok := seen[p.Server]; ok {
			continue
		}
		seen[p.Server] = struct{}{}
		cost += a.ServerCost(p.Server)
	}
	return cost
}

package core

import (
	"context"
	"math"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// ReassignmentPass is the cloud-level move of the paper's local search:
// each client is removed and re-placed on whichever cluster now offers
// the highest exact profit ("this local search is not only used to
// change client assignment to decrease the resource saturation in some of
// clusters but also to combine the clients", Section V). It is a central-
// manager operation — unlike the per-cluster phases it may move clients
// across clusters. Returns the number of improving moves (evictions and
// re-admissions included).
//
// Candidates are compared by their exact marginal profit against the
// "client unserved" state: moving one client only changes its own revenue
// and the costs of the servers it leaves or joins, so the comparison is
// O(portions) instead of O(clients).
//
// By default the pass runs as a two-stage pipeline (reassign_pipeline.go):
// candidate scoring for all clients in parallel against the frozen
// allocation, then a serial commit loop in descending-gain order. Config
// DisableParallelReassign selects the legacy one-client-at-a-time pass
// instead.
func (s *Solver) ReassignmentPass(a *alloc.Allocation) int {
	return s.ReassignmentPassCtx(context.Background(), a)
}

// ReassignmentPassCtx is ReassignmentPass under a caller-provided
// context: the pass's flight-recorder events carry the trace context of
// the span in ctx, linking each commit/restore failure to the round it
// happened in.
func (s *Solver) ReassignmentPassCtx(ctx context.Context, a *alloc.Allocation) int {
	return s.reassignmentPass(ctx, a, false)
}

// reassignmentPass dispatches between the pipelined pass and the legacy
// sequential one. reconcile marks the sharded solve's serial cross-shard
// reconciliation: successful moves are then logged (sampled) to the
// flight recorder as reconcile_move events.
func (s *Solver) reassignmentPass(ctx context.Context, a *alloc.Allocation, reconcile bool) int {
	if s.cfg.DisableParallelReassign {
		return s.reassignmentPassSequential(ctx, a, reconcile)
	}
	return s.reassignmentPassPipelined(ctx, a, reconcile)
}

// reassignmentPassSequential is the pre-pipeline baseline: score and
// commit one client at a time in ID order, each client seeing the moves
// of every client before it.
func (s *Solver) reassignmentPassSequential(ctx context.Context, a *alloc.Allocation, reconcile bool) int {
	ref := telemetry.RefFromContext(ctx)
	numK := s.scen.Cloud.NumClusters()
	var moves int
	var commitFails, restoreFails int64
	var seen []model.ServerID // portionServerCost dedup scratch
	for ci := 0; ci < s.scen.NumClients(); ci++ {
		i := model.ClientID(ci)
		if s.scen.Clients[ci].PredictedRate == 0 {
			continue // absent client: nothing to move or admit
		}
		prevK, prevPortions := a.Unassign(i)

		// Marginal profit of a candidate placement vs staying out.
		gainOf := func(k model.ClusterID, portions []alloc.Portion) (float64, bool) {
			costBefore := s.portionServerCost(a, portions, &seen)
			if err := a.Assign(i, k, portions); err != nil {
				return 0, false
			}
			// RevenueErr separates "infeasible move" (saturated portions —
			// reject the candidate) from "worthless move" (zero revenue —
			// a legitimate gain of −Δcost).
			rev, revErr := a.RevenueErr(i)
			gain := rev - (s.portionServerCost(a, portions, &seen) - costBefore)
			a.Unassign(i)
			if revErr != nil {
				return 0, false
			}
			return gain, true
		}

		prevGain := math.Inf(-1)
		if prevK != alloc.Unassigned {
			if g, ok := gainOf(prevK, prevPortions); ok {
				prevGain = g
			}
		}

		bestGain := math.Inf(-1)
		var bestK model.ClusterID
		var bestPortions []alloc.Portion
		for k := 0; k < numK; k++ {
			_, portions, err := s.AssignDistribute(a, i, model.ClusterID(k))
			if err != nil {
				continue
			}
			if g, ok := gainOf(model.ClusterID(k), portions); ok && g > bestGain {
				bestGain = g
				bestK = model.ClusterID(k)
				bestPortions = portions
			}
		}

		// Pick the best of: previous placement, best new placement, or —
		// with admission control — leaving the client out (gain 0).
		outGain := math.Inf(-1)
		if s.cfg.AdmissionControl {
			outGain = 0
		}
		switch {
		case bestPortions != nil && bestGain > prevGain+1e-9 && bestGain > outGain:
			if err := a.Assign(i, bestK, bestPortions); err == nil {
				moves++
				if reconcile {
					if f := s.flightSampled(i); f != nil {
						f.Record(telemetry.Event{Kind: telemetry.EventReconcileMove,
							Client: int64(i), Cluster: int64(bestK),
							Delta: bestGain, Trace: ref})
					}
				}
				continue
			} else {
				commitFails++
				s.flightRecord(telemetry.Event{Kind: telemetry.EventCommitFail,
					Client: int64(i), Cluster: int64(bestK), Delta: bestGain, Trace: ref})
				s.debugf("reassign: commit of best placement failed",
					"client", i, "cluster", bestK, "err", err)
			}
			fallthrough
		case prevK != alloc.Unassigned && prevGain >= outGain:
			if err := a.Assign(i, prevK, prevPortions); err != nil {
				// The client's previous placement no longer fits either —
				// it is now unserved, which must not pass silently.
				commitFails++
				restoreFails++
				s.flightRecord(telemetry.Event{Kind: telemetry.EventRestoreFail,
					Client: int64(i), Cluster: int64(prevK), Trace: ref})
				s.debugf("reassign: restore of previous placement failed, client unserved",
					"client", i, "cluster", prevK, "err", err)
				continue
			}
		default:
			// Client stays (or becomes) unserved.
			if prevK != alloc.Unassigned {
				moves++ // eviction is a move
			}
		}
	}
	if s.tel != nil {
		if commitFails > 0 {
			s.tel.reassignCommitFails.Add(commitFails)
		}
		if restoreFails > 0 {
			s.tel.reassignRestoreFails.Add(restoreFails)
		}
	}
	return moves
}

// portionServerCost sums the current cost of the (deduplicated) servers
// referenced by the portions. seen is a reused dedup scratch — portions
// touch at most a handful of servers, so a linear scan over a recycled
// small slice beats a per-call map on this hot path.
func (s *Solver) portionServerCost(a *alloc.Allocation, portions []alloc.Portion, seen *[]model.ServerID) float64 {
	var cost float64
	sl := (*seen)[:0]
	for _, p := range portions {
		dup := false
		for _, j := range sl {
			if j == p.Server {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sl = append(sl, p.Server)
		cost += a.ServerCost(p.Server)
	}
	*seen = sl
	return cost
}

// debugf emits a debug log line through the telemetry set's logger; inert
// when telemetry is disabled.
func (s *Solver) debugf(msg string, args ...any) {
	if s.tel != nil {
		s.tel.set.Logger().Debug(msg, args...)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Solver runs the Resource_Alloc heuristic on one scenario. A Solver is
// safe for concurrent use as long as each goroutine works on its own
// allocation; it must not be copied (it guards internal pass state with
// a mutex).
type Solver struct {
	scen   *model.Scenario
	cfg    Config
	prices shadowPrices
	tel    *solverTel // nil when telemetry is disabled

	// reassignSt caches the pipelined reassignment pass's cross-round
	// skip marks between calls (reassign_pipeline.go). The mutex makes
	// check-out/check-in safe when callers run passes concurrently on
	// different allocations.
	reassignMu sync.Mutex
	reassignSt *reassignState
}

// Stats reports what the solver did.
type Stats struct {
	InitialProfit    float64
	FinalProfit      float64
	LocalSearchIters int
	Activations      int
	Deactivations    int
	Reassignments    int
	Unplaced         int
	Elapsed          time.Duration
	// Attribution splits the profit between the initial solution and the
	// local-search phases (attribution.go). Always populated — the deltas
	// come from the allocation's O(touched) per-cluster ledger reads, so
	// no telemetry set is needed. ImproveLocal fills the phase deltas;
	// Solve/SolveFrom additionally set Initial and Final.
	Attribution Attribution
	// Timings is the per-phase wall-clock breakdown (attribution.go).
	Timings PhaseTimings
}

// NewSolver validates the inputs and calibrates the capacity shadow
// prices for the scenario.
func NewSolver(scen *model.Scenario, cfg Config) (*Solver, error) {
	if scen == nil {
		return nil, errors.New("core: nil scenario")
	}
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Solver{
		scen:   scen,
		cfg:    cfg,
		prices: calibratePrices(scen, cfg.ShadowPriceScale),
		tel:    newSolverTel(cfg.Telemetry),
	}, nil
}

// Scenario returns the scenario the solver was built for.
func (s *Solver) Scenario() *model.Scenario { return s.scen }

// Solve runs the full heuristic: multi-start greedy initial solutions,
// then local search on the best one (paper Figure 3).
//
// The greedy starts fan out over a bounded worker pool (Config.Workers).
// Each start derives its own RNG by seed-splitting from Config.Seed —
// start i sees the same random client order at any worker count — and
// the winner is reduced under the total order (profit descending, start
// index ascending), so the solve is bit-identical for W=1 and W=N. Each
// worker recycles one allocation arena across its starts (alloc.Reset),
// keeping only its running best.
func (s *Solver) Solve() (*alloc.Allocation, Stats, error) {
	return s.SolveCtx(context.Background())
}

// SolveCtx is Solve under a caller-provided context: every span the
// solve records — greedy, rounds, fan-outs, shards — parents into the
// span carried by ctx (a fresh trace tree when ctx carries none), and
// flight-recorder events are stamped with that trace context.
func (s *Solver) SolveCtx(ctx context.Context) (*alloc.Allocation, Stats, error) {
	if s.cfg.Shards > 1 && s.scen.Cloud.NumClusters() > 1 {
		// Sharded mode (shard.go): clusters partitioned across independent
		// shards, per-shard greedy + local search on the fan-out pool, with
		// serial cross-shard reconciliation between rounds.
		return s.solveSharded(ctx)
	}
	start := time.Now()
	sp, ctx := s.tel.startCtx(ctx, "solver.solve")
	sp.Attr("clients", s.scen.NumClients())
	sp.Attr("clusters", s.scen.Cloud.NumClusters())
	if s.tel != nil {
		s.tel.solves.Inc()
	}

	gsp, gctx := s.tel.startCtx(ctx, "solver.greedy")
	tGreedy := time.Now()
	best, bestProfit, err := s.multiStart(gctx)
	if err != nil {
		return nil, Stats{}, err
	}
	if s.tel != nil {
		s.tel.greedyDur.ObserveSince(tGreedy)
		gsp.Attr("initial_profit", bestProfit)
		gsp.Attr("starts", s.cfg.NumInitSolutions)
	}
	gsp.End()
	if best == nil {
		return nil, Stats{}, errors.New("core: no initial solution produced")
	}

	stats := Stats{InitialProfit: bestProfit}
	stats.Timings.Greedy = time.Since(tGreedy)
	s.ImproveLocalCtx(ctx, best, &stats)
	stats.FinalProfit = best.Profit()
	stats.Attribution.Initial = stats.InitialProfit
	stats.Attribution.Final = stats.FinalProfit
	stats.Unplaced = s.scen.NumClients() - best.NumAssigned()
	stats.Elapsed = time.Since(start)
	if s.tel != nil {
		s.tel.unplacedClients.Set(float64(stats.Unplaced))
		sp.Attr("final_profit", stats.FinalProfit)
		sp.Attr("rounds", stats.LocalSearchIters)
	}
	sp.End()
	return best, stats, nil
}

// multiStart runs the NumInitSolutions greedy starts on the fan-out
// engine and returns the winner under (profit desc, start index asc).
func (s *Solver) multiStart(ctx context.Context) (*alloc.Allocation, float64, error) {
	n := s.cfg.NumInitSolutions
	workers := parallel.Bound(s.cfg.Workers, n)
	// Per-worker state: cur is the recycled arena for the next start,
	// best the worker's winner so far under the global total order.
	type workerBest struct {
		a      *alloc.Allocation
		profit float64
		index  int
	}
	curs := make([]*alloc.Allocation, workers)
	bests := make([]workerBest, workers)
	errs := make([]error, n)
	opts := parallel.Options{Workers: workers, Phase: "multistart", Ctx: ctx}
	if s.tel != nil {
		opts.Tel = s.tel.set
	}
	ref := telemetry.RefFromContext(ctx)
	parallel.For(opts, n, func(w, iter int) {
		a := curs[w]
		if a == nil {
			a = alloc.New(s.scen)
			if s.tel != nil {
				a.Instrument(s.tel.set)
			}
		} else {
			a.Reset()
		}
		if err := s.buildInitial(a, parallel.Rand(s.cfg.Seed, uint64(iter)), ref); err != nil {
			errs[iter] = err
			curs[w] = a
			return
		}
		p := a.Profit()
		if b := &bests[w]; b.a == nil || p > b.profit || (p == b.profit && iter < b.index) {
			curs[w] = b.a
			*b = workerBest{a: a, profit: p, index: iter}
		} else {
			curs[w] = a
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	var best *alloc.Allocation
	var bestProfit float64
	bestIndex := n
	for w := range bests {
		b := &bests[w]
		if b.a == nil {
			continue
		}
		if best == nil || b.profit > bestProfit || (b.profit == bestProfit && b.index < bestIndex) {
			best, bestProfit, bestIndex = b.a, b.profit, b.index
		}
	}
	return best, bestProfit, nil
}

// InitialSolution builds one greedy solution: clients in random order,
// each placed on the cluster whose Assign_Distribute promises the highest
// approximate profit. Clients that fit nowhere stay unassigned (the paper
// assumes a feasible instance; we degrade gracefully).
func (s *Solver) InitialSolution(rng *rand.Rand) (*alloc.Allocation, error) {
	a := alloc.New(s.scen)
	if s.tel != nil {
		a.Instrument(s.tel.set)
	}
	if err := s.buildInitial(a, rng, telemetry.TraceRef{}); err != nil {
		return nil, err
	}
	return a, nil
}

// buildInitial runs one greedy pass into an empty (fresh or Reset)
// allocation. Candidate generation goes through a per-pass greedyState
// (candidates.go): nil for the exact full scan, index-backed when
// Config.CandidateClusters enables top-k pruning. ref stamps the pass's
// flight-recorder events with the enclosing span's trace context.
func (s *Solver) buildInitial(a *alloc.Allocation, rng *rand.Rand, ref telemetry.TraceRef) error {
	gs := s.newGreedyState(a, nil)
	gs.setRef(ref)
	order := rng.Perm(s.scen.NumClients())
	for _, ci := range order {
		i := model.ClientID(ci)
		if s.scen.Clients[i].PredictedRate == 0 {
			continue // absent client (zero rate): nothing to place
		}
		if err := s.placeBest(a, i, gs); err != nil && !errors.Is(err, ErrCannotPlace) {
			return err
		}
	}
	gs.flushTelemetry(s.tel)
	return nil
}

// ImproveLocal runs the local-search phases until the profit is steady or
// the iteration budget is exhausted. It mutates a in place and records
// activity in stats (which may be nil).
func (s *Solver) ImproveLocal(a *alloc.Allocation, stats *Stats) {
	s.ImproveLocalCtx(context.Background(), a, stats)
}

// ImproveLocalCtx is ImproveLocal under a caller-provided context: round
// and reassignment spans parent into the span carried by ctx. It always
// accumulates the per-phase profit deltas and timings into
// stats.Attribution and stats.Timings (Initial/Final stay zero unless the
// caller sets them, as Solve and SolveFrom do).
func (s *Solver) ImproveLocalCtx(ctx context.Context, a *alloc.Allocation, stats *Stats) {
	if stats == nil {
		stats = &Stats{}
	}
	prev := a.Profit()
	for iter := 0; iter < s.cfg.MaxLocalSearchIters; iter++ {
		stats.LocalSearchIters = iter + 1
		rsp, rctx := s.tel.startCtx(ctx, "solver.round")
		var t0 time.Time
		if s.tel != nil {
			t0 = time.Now()
			s.tel.rounds.Inc()
			rsp.Attr("round", iter+1)
		}
		tSweep := time.Now()
		s.improvePass(a, stats)
		stats.Timings.Sweep += time.Since(tSweep)
		if !s.cfg.DisableReassign {
			// Cloud-level client reassignment is a central-manager move and
			// runs between the parallel per-cluster sweeps.
			tr := time.Now()
			before := a.Profit()
			moved := s.ReassignmentPassCtx(rctx, a)
			stats.Reassignments += moved
			delta := a.Profit() - before
			stats.Attribution.Reassign += delta
			stats.Timings.Reassign += time.Since(tr)
			if s.tel != nil {
				s.tel.reassignDur.ObserveSince(tr)
				s.tel.reassignments.Add(int64(moved))
				s.tel.reassignDelta.Add(delta)
			}
		}
		p := a.Profit()
		if s.tel != nil {
			s.tel.roundDur.ObserveSince(t0)
			rsp.Attr("profit", p)
			rsp.Attr("delta", p-prev)
		}
		rsp.End()
		if p-prev <= s.cfg.Tolerance*(1+absf(prev)) {
			break
		}
		prev = p
	}
}

// improvePass runs one sweep of all enabled phases. When Parallel is set
// the per-cluster work runs concurrently: every mutation a phase makes is
// confined to one cluster (clients are pinned to a single cluster by
// constraint (6)), so cluster goroutines touch disjoint state. Cluster
// membership is snapshotted up front so no goroutine reads another
// cluster's assignment fields.
func (s *Solver) improvePass(a *alloc.Allocation, stats *Stats) {
	numK := s.scen.Cloud.NumClusters()
	members := s.clusterMembers(a)
	acts := make([]int, numK)
	deacts := make([]int, numK)
	deltas := make([]sweepDeltas, numK)
	run := func(k int) {
		acts[k], deacts[k], deltas[k] = s.sweepCluster(a, model.ClusterID(k), members[k])
	}
	if s.cfg.Parallel && numK > 1 {
		var wg sync.WaitGroup
		for k := 0; k < numK; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				run(k)
			}(k)
		}
		wg.Wait()
	} else {
		for k := 0; k < numK; k++ {
			run(k)
		}
	}
	var total sweepDeltas
	for k := 0; k < numK; k++ {
		stats.Activations += acts[k]
		stats.Deactivations += deacts[k]
		total.add(deltas[k])
	}
	stats.Attribution.ShareAdjust += total.share
	stats.Attribution.DispersionAdjust += total.disp
	stats.Attribution.TurnOn += total.turnOn
	stats.Attribution.TurnOff += total.turnOff
}

// sweepCluster runs the enabled per-cluster local-search phases on one
// cluster and returns the activation/deactivation counts plus each
// phase's profit delta, read through the allocation's O(touched)
// per-cluster ledger. Every mutation (and every profit read) is confined
// to the cluster, so callers may run sweeps on distinct clusters
// concurrently (improvePass's per-cluster goroutines, the sharded
// solve's per-shard rounds). When telemetry is attached the sweep also
// records per-phase timing, move-acceptance counters and cumulative
// delta gauges — same moves either way.
func (s *Solver) sweepCluster(a *alloc.Allocation, kid model.ClusterID, members []model.ClientID) (acts, deacts int, d sweepDeltas) {
	tel := s.tel
	if !s.cfg.DisableShareAdjust {
		var t0 time.Time
		if tel != nil {
			t0 = time.Now()
		}
		before := a.ClusterProfit(kid)
		var accepted int64
		servers := s.scen.Cloud.ClusterServers(kid)
		for _, j := range servers {
			if s.AdjustResourceShares(a, j) {
				accepted++
			}
		}
		d.share = a.ClusterProfit(kid) - before
		if tel != nil {
			tel.shareDur.ObserveSince(t0)
			tel.shareMoves.Add(int64(len(servers)))
			tel.shareAccepts.Add(accepted)
			tel.shareDelta.Add(d.share)
		}
	}
	if !s.cfg.DisableDispersionAdjust {
		var t0 time.Time
		if tel != nil {
			t0 = time.Now()
		}
		before := a.ClusterProfit(kid)
		var accepted int64
		for _, id := range members {
			if s.AdjustDispersionRates(a, id) {
				accepted++
			}
		}
		d.disp = a.ClusterProfit(kid) - before
		if tel != nil {
			tel.dispersionDur.ObserveSince(t0)
			tel.dispMoves.Add(int64(len(members)))
			tel.dispAccepts.Add(accepted)
			tel.dispDelta.Add(d.disp)
		}
	}
	if !s.cfg.DisableTurnOn {
		var t0 time.Time
		if tel != nil {
			t0 = time.Now()
		}
		before := a.ClusterProfit(kid)
		acts = s.turnOnServers(a, kid, members)
		d.turnOn = a.ClusterProfit(kid) - before
		if tel != nil {
			tel.turnOnDur.ObserveSince(t0)
			tel.activations.Add(int64(acts))
			tel.turnOnDelta.Add(d.turnOn)
		}
	}
	if !s.cfg.DisableTurnOff {
		var t0 time.Time
		if tel != nil {
			t0 = time.Now()
		}
		before := a.ClusterProfit(kid)
		deacts = s.turnOffServers(a, kid)
		d.turnOff = a.ClusterProfit(kid) - before
		if tel != nil {
			tel.turnOffDur.ObserveSince(t0)
			tel.deactivations.Add(int64(deacts))
			tel.turnOffDelta.Add(d.turnOff)
		}
	}
	return acts, deacts, d
}

// clusterMembers snapshots the assigned clients of every cluster.
func (s *Solver) clusterMembers(a *alloc.Allocation) [][]model.ClientID {
	members := make([][]model.ClientID, s.scen.Cloud.NumClusters())
	for i := range s.scen.Clients {
		id := model.ClientID(i)
		if k := a.ClusterOf(id); k != alloc.Unassigned {
			members[k] = append(members[k], id)
		}
	}
	return members
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/parallel"
)

// Solver runs the Resource_Alloc heuristic on one scenario. A Solver is
// safe for concurrent use as long as each goroutine works on its own
// allocation; it must not be copied (it guards internal pass state with
// a mutex).
type Solver struct {
	scen   *model.Scenario
	cfg    Config
	prices shadowPrices
	tel    *solverTel // nil when telemetry is disabled

	// reassignSt caches the pipelined reassignment pass's cross-round
	// skip marks between calls (reassign_pipeline.go). The mutex makes
	// check-out/check-in safe when callers run passes concurrently on
	// different allocations.
	reassignMu sync.Mutex
	reassignSt *reassignState
}

// Stats reports what the solver did.
type Stats struct {
	InitialProfit    float64
	FinalProfit      float64
	LocalSearchIters int
	Activations      int
	Deactivations    int
	Reassignments    int
	Unplaced         int
	Elapsed          time.Duration
}

// NewSolver validates the inputs and calibrates the capacity shadow
// prices for the scenario.
func NewSolver(scen *model.Scenario, cfg Config) (*Solver, error) {
	if scen == nil {
		return nil, errors.New("core: nil scenario")
	}
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Solver{
		scen:   scen,
		cfg:    cfg,
		prices: calibratePrices(scen, cfg.ShadowPriceScale),
		tel:    newSolverTel(cfg.Telemetry),
	}, nil
}

// Scenario returns the scenario the solver was built for.
func (s *Solver) Scenario() *model.Scenario { return s.scen }

// Solve runs the full heuristic: multi-start greedy initial solutions,
// then local search on the best one (paper Figure 3).
//
// The greedy starts fan out over a bounded worker pool (Config.Workers).
// Each start derives its own RNG by seed-splitting from Config.Seed —
// start i sees the same random client order at any worker count — and
// the winner is reduced under the total order (profit descending, start
// index ascending), so the solve is bit-identical for W=1 and W=N. Each
// worker recycles one allocation arena across its starts (alloc.Reset),
// keeping only its running best.
func (s *Solver) Solve() (*alloc.Allocation, Stats, error) {
	if s.cfg.Shards > 1 && s.scen.Cloud.NumClusters() > 1 {
		// Sharded mode (shard.go): clusters partitioned across independent
		// shards, per-shard greedy + local search on the fan-out pool, with
		// serial cross-shard reconciliation between rounds.
		return s.solveSharded()
	}
	start := time.Now()
	sp := s.tel.start("solver.solve")
	sp.Attr("clients", s.scen.NumClients())
	sp.Attr("clusters", s.scen.Cloud.NumClusters())
	if s.tel != nil {
		s.tel.solves.Inc()
	}

	gsp := s.tel.start("solver.greedy")
	tGreedy := time.Now()
	best, bestProfit, err := s.multiStart()
	if err != nil {
		return nil, Stats{}, err
	}
	if s.tel != nil {
		s.tel.greedyDur.ObserveSince(tGreedy)
		gsp.Attr("initial_profit", bestProfit)
		gsp.Attr("starts", s.cfg.NumInitSolutions)
	}
	gsp.End()
	if best == nil {
		return nil, Stats{}, errors.New("core: no initial solution produced")
	}

	stats := Stats{InitialProfit: bestProfit}
	s.ImproveLocal(best, &stats)
	stats.FinalProfit = best.Profit()
	stats.Unplaced = s.scen.NumClients() - best.NumAssigned()
	stats.Elapsed = time.Since(start)
	if s.tel != nil {
		s.tel.unplacedClients.Set(float64(stats.Unplaced))
		sp.Attr("final_profit", stats.FinalProfit)
		sp.Attr("rounds", stats.LocalSearchIters)
	}
	sp.End()
	return best, stats, nil
}

// multiStart runs the NumInitSolutions greedy starts on the fan-out
// engine and returns the winner under (profit desc, start index asc).
func (s *Solver) multiStart() (*alloc.Allocation, float64, error) {
	n := s.cfg.NumInitSolutions
	workers := parallel.Bound(s.cfg.Workers, n)
	// Per-worker state: cur is the recycled arena for the next start,
	// best the worker's winner so far under the global total order.
	type workerBest struct {
		a      *alloc.Allocation
		profit float64
		index  int
	}
	curs := make([]*alloc.Allocation, workers)
	bests := make([]workerBest, workers)
	errs := make([]error, n)
	opts := parallel.Options{Workers: workers, Phase: "multistart"}
	if s.tel != nil {
		opts.Tel = s.tel.set
	}
	parallel.For(opts, n, func(w, iter int) {
		a := curs[w]
		if a == nil {
			a = alloc.New(s.scen)
			if s.tel != nil {
				a.Instrument(s.tel.set)
			}
		} else {
			a.Reset()
		}
		if err := s.buildInitial(a, parallel.Rand(s.cfg.Seed, uint64(iter))); err != nil {
			errs[iter] = err
			curs[w] = a
			return
		}
		p := a.Profit()
		if b := &bests[w]; b.a == nil || p > b.profit || (p == b.profit && iter < b.index) {
			curs[w] = b.a
			*b = workerBest{a: a, profit: p, index: iter}
		} else {
			curs[w] = a
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	var best *alloc.Allocation
	var bestProfit float64
	bestIndex := n
	for w := range bests {
		b := &bests[w]
		if b.a == nil {
			continue
		}
		if best == nil || b.profit > bestProfit || (b.profit == bestProfit && b.index < bestIndex) {
			best, bestProfit, bestIndex = b.a, b.profit, b.index
		}
	}
	return best, bestProfit, nil
}

// InitialSolution builds one greedy solution: clients in random order,
// each placed on the cluster whose Assign_Distribute promises the highest
// approximate profit. Clients that fit nowhere stay unassigned (the paper
// assumes a feasible instance; we degrade gracefully).
func (s *Solver) InitialSolution(rng *rand.Rand) (*alloc.Allocation, error) {
	a := alloc.New(s.scen)
	if s.tel != nil {
		a.Instrument(s.tel.set)
	}
	if err := s.buildInitial(a, rng); err != nil {
		return nil, err
	}
	return a, nil
}

// buildInitial runs one greedy pass into an empty (fresh or Reset)
// allocation. Candidate generation goes through a per-pass greedyState
// (candidates.go): nil for the exact full scan, index-backed when
// Config.CandidateClusters enables top-k pruning.
func (s *Solver) buildInitial(a *alloc.Allocation, rng *rand.Rand) error {
	gs := s.newGreedyState(a, nil)
	order := rng.Perm(s.scen.NumClients())
	for _, ci := range order {
		i := model.ClientID(ci)
		if err := s.placeBest(a, i, gs); err != nil && !errors.Is(err, ErrCannotPlace) {
			return err
		}
	}
	gs.flushTelemetry(s.tel)
	return nil
}

// ImproveLocal runs the local-search phases until the profit is steady or
// the iteration budget is exhausted. It mutates a in place and records
// activity in stats (which may be nil).
func (s *Solver) ImproveLocal(a *alloc.Allocation, stats *Stats) {
	if stats == nil {
		stats = &Stats{}
	}
	prev := a.Profit()
	for iter := 0; iter < s.cfg.MaxLocalSearchIters; iter++ {
		stats.LocalSearchIters = iter + 1
		rsp := s.tel.start("solver.round")
		var t0 time.Time
		if s.tel != nil {
			t0 = time.Now()
			s.tel.rounds.Inc()
			rsp.Attr("round", iter+1)
		}
		s.improvePass(a, stats)
		if !s.cfg.DisableReassign {
			// Cloud-level client reassignment is a central-manager move and
			// runs between the parallel per-cluster sweeps.
			if s.tel != nil {
				tr := time.Now()
				before := a.Profit()
				moved := s.ReassignmentPass(a)
				stats.Reassignments += moved
				s.tel.reassignDur.ObserveSince(tr)
				s.tel.reassignments.Add(int64(moved))
				s.tel.reassignDelta.Add(a.Profit() - before)
			} else {
				stats.Reassignments += s.ReassignmentPass(a)
			}
		}
		p := a.Profit()
		if s.tel != nil {
			s.tel.roundDur.ObserveSince(t0)
			rsp.Attr("profit", p)
			rsp.Attr("delta", p-prev)
		}
		rsp.End()
		if p-prev <= s.cfg.Tolerance*(1+absf(prev)) {
			break
		}
		prev = p
	}
}

// improvePass runs one sweep of all enabled phases. When Parallel is set
// the per-cluster work runs concurrently: every mutation a phase makes is
// confined to one cluster (clients are pinned to a single cluster by
// constraint (6)), so cluster goroutines touch disjoint state. Cluster
// membership is snapshotted up front so no goroutine reads another
// cluster's assignment fields.
func (s *Solver) improvePass(a *alloc.Allocation, stats *Stats) {
	numK := s.scen.Cloud.NumClusters()
	members := s.clusterMembers(a)
	acts := make([]int, numK)
	deacts := make([]int, numK)
	run := func(k int) {
		acts[k], deacts[k] = s.sweepCluster(a, model.ClusterID(k), members[k])
	}
	if s.cfg.Parallel && numK > 1 {
		var wg sync.WaitGroup
		for k := 0; k < numK; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				run(k)
			}(k)
		}
		wg.Wait()
	} else {
		for k := 0; k < numK; k++ {
			run(k)
		}
	}
	for k := 0; k < numK; k++ {
		stats.Activations += acts[k]
		stats.Deactivations += deacts[k]
	}
}

// sweepCluster runs the enabled per-cluster local-search phases on one
// cluster. Every mutation is confined to the cluster, so callers may run
// sweeps on distinct clusters concurrently (improvePass's per-cluster
// goroutines, the sharded solve's per-shard rounds).
func (s *Solver) sweepCluster(a *alloc.Allocation, kid model.ClusterID, members []model.ClientID) (acts, deacts int) {
	if s.tel != nil {
		return s.clusterPassInstrumented(a, kid, members)
	}
	if !s.cfg.DisableShareAdjust {
		for _, j := range s.scen.Cloud.ClusterServers(kid) {
			s.AdjustResourceShares(a, j)
		}
	}
	if !s.cfg.DisableDispersionAdjust {
		for _, id := range members {
			s.AdjustDispersionRates(a, id)
		}
	}
	if !s.cfg.DisableTurnOn {
		acts += s.turnOnServers(a, kid, members)
	}
	if !s.cfg.DisableTurnOff {
		deacts += s.turnOffServers(a, kid)
	}
	return acts, deacts
}

// clusterMembers snapshots the assigned clients of every cluster.
func (s *Solver) clusterMembers(a *alloc.Allocation) [][]model.ClientID {
	members := make([][]model.ClientID, s.scen.Cloud.NumClusters())
	for i := range s.scen.Clients {
		id := model.ClientID(i)
		if k := a.ClusterOf(id); k != alloc.Unassigned {
			members[k] = append(members[k], id)
		}
	}
	return members
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

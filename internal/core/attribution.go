package core

import "time"

// Attribution splits a solve's profit between its initial value and the
// contribution of each local-search phase, read from the allocation's
// incremental per-cluster ledger (O(touched) per read, so the breakdown
// is always on — no telemetry required). The identity
//
//	Initial + PhaseSum() ≈ Final
//
// holds up to floating-point summation order: the ledger groups Kahan
// sums per cluster, so the per-phase deltas and the final whole-cloud
// profit fold the same terms in different orders. Residual() reports the
// gap; tests bound it by the ledger's drift tolerance.
type Attribution struct {
	// Initial is the profit of the greedy initial solution (or the warm
	// start) before any local search.
	Initial float64 `json:"initial"`
	// ShareAdjust .. TurnOff are the cumulative profit deltas of the
	// per-cluster sweep phases across all improvement rounds.
	ShareAdjust      float64 `json:"share_adjust"`
	DispersionAdjust float64 `json:"dispersion_adjust"`
	TurnOn           float64 `json:"turn_on"`
	TurnOff          float64 `json:"turn_off"`
	// Reassign is the cumulative delta of the reassignment passes (the
	// whole-cloud pass, or the shard-scoped passes in sharded mode).
	Reassign float64 `json:"reassign"`
	// Reconcile is the cumulative delta of the sharded solve's serial
	// cross-shard reconciliation passes (zero when not sharded).
	Reconcile float64 `json:"reconcile"`
	// Final is the profit after the last round.
	Final float64 `json:"final"`
}

// PhaseSum is the total profit attributed to the local-search phases.
func (at Attribution) PhaseSum() float64 {
	return at.ShareAdjust + at.DispersionAdjust + at.TurnOn + at.TurnOff +
		at.Reassign + at.Reconcile
}

// Residual is the part of Final − Initial the phase deltas do not
// account for — floating-point regrouping only, bounded by the ledger
// drift tolerance.
func (at Attribution) Residual() float64 {
	return at.Final - at.Initial - at.PhaseSum()
}

// PhaseTimings reports where a solve's wall-clock time went. In sharded
// mode Sweep and Reassign sum the per-shard goroutines' busy time, so
// they may exceed the solve's elapsed wall clock.
type PhaseTimings struct {
	// Greedy covers the initial-solution construction (all starts, or
	// the warm-start replay plus re-placements).
	Greedy time.Duration `json:"greedy"`
	// Sweep covers the per-cluster phases (share adjust, dispersion
	// adjust, turn on, turn off) across all rounds.
	Sweep time.Duration `json:"sweep"`
	// Reassign covers the reassignment passes across all rounds.
	Reassign time.Duration `json:"reassign"`
	// Reconcile covers the sharded solve's serial cross-shard
	// reconciliation passes (zero when not sharded).
	Reconcile time.Duration `json:"reconcile"`
}

// sweepDeltas carries one cluster sweep's per-phase profit deltas.
type sweepDeltas struct {
	share, disp, turnOn, turnOff float64
}

func (d *sweepDeltas) add(o sweepDeltas) {
	d.share += o.share
	d.disp += o.disp
	d.turnOn += o.turnOn
	d.turnOff += o.turnOff
}

// Package core implements the paper's primary contribution: the
// Resource_Alloc heuristic (Figure 3) — a multi-start greedy initial
// solution built from per-cluster Assign_Distribute evaluations (closed-
// form KKT shares + dynamic programming over servers), followed by a local
// search that alternates Adjust_ResourceShares, Adjust_DispersionRates,
// TurnON_servers and TurnOFF_servers until the profit is steady.
package core

import (
	"fmt"

	"repro/internal/telemetry"
)

// Config tunes the Resource_Alloc heuristic. Use DefaultConfig as the
// starting point.
type Config struct {
	// NumInitSolutions is the number of randomized greedy passes; the most
	// profitable initial solution seeds the local search (paper uses 3).
	NumInitSolutions int
	// AlphaGranularity is the number of grid units the dispersion rate α
	// is discretized into for the Assign_Distribute dynamic program (the
	// paper's 1/ℓ).
	AlphaGranularity int
	// MaxLocalSearchIters bounds the improvement loop.
	MaxLocalSearchIters int
	// Tolerance is the relative profit improvement below which the local
	// search is considered steady.
	Tolerance float64
	// Seed drives client-order shuffling; same seed, same solution.
	Seed int64
	// Parallel evaluates clusters concurrently (the paper's distributed
	// decision making, executed with one goroutine per cluster).
	Parallel bool
	// ShadowPriceScale scales the calibrated capacity shadow price η used
	// by the greedy share formula. >1 reserves more headroom for future
	// clients; <1 is more generous to the client being placed.
	ShadowPriceScale float64
	// Workers bounds the solver's fan-out worker pools: the multi-start
	// greedy phase (solver.go, internal/parallel) and the scoring stage
	// of the pipelined reassignment pass (reassign.go). 0, the default,
	// uses runtime.GOMAXPROCS; 1 runs sequentially. Results are
	// bit-identical for every worker count: each greedy start draws from
	// its own seed-split RNG stream and the winner is reduced under a
	// fixed total order (profit, then start index).
	Workers int
	// CandidateClusters bounds how many candidate clusters a client is
	// scored against per placement decision. 0 (the default) keeps the
	// exact behaviour: every cluster in scope is priced with the full
	// Assign_Distribute + PlacementGain evaluation. A value in (0, K)
	// switches the greedy and reassignment phases to index-guided
	// candidate generation (alloc.Index): the top-k clusters by gain
	// upper bound are evaluated exactly, in bound order with early exit,
	// and the rest are pruned. Values >= the number of clusters in scope
	// fall back to the exact scan — k=K is the exactness fallback, proven
	// bit-identical by the equivalence tests. The client's own cluster is
	// always evaluated exactly regardless of k (the index's bound is not
	// sound for it; see alloc.Index.GainUpperBound).
	CandidateClusters int
	// Shards partitions the clusters into Shards contiguous groups that
	// solve independently — greedy placement and local-search rounds run
	// per shard on the fan-out pool, touching only the shard's own
	// clusters and clients, with a serial cross-shard reconciliation pass
	// between rounds that re-scores clients against the whole cloud and
	// moves the ones that profit from crossing a shard boundary. 0 or 1
	// disables sharding. Results are deterministic at any worker count
	// but differ from the unsharded solve (a different, equally valid
	// search trajectory).
	Shards int
	// DisableParallelReassign falls back to the legacy strictly
	// sequential reassignment pass — score and commit one client at a
	// time in ID order — instead of the two-stage score/commit pipeline.
	// Kept as the pre-pipeline baseline and escape hatch; the pipeline
	// may visit a different (equally valid) local optimum.
	DisableParallelReassign bool
	// AdmissionControl lets the provider leave a client unserved when
	// serving it would lose money (negative marginal profit). The paper's
	// constraint (6) nominally serves everyone, but its experiments only
	// produce profitable contracts, where this switch changes nothing; on
	// adversarial instances it prevents forced-loss placements. Disable
	// for strict constraint-(6) behaviour.
	AdmissionControl bool

	// Ablation switches: disable individual local-search phases.
	DisableShareAdjust      bool
	DisableReassign         bool
	DisableDispersionAdjust bool
	DisableTurnOn           bool
	DisableTurnOff          bool

	// Telemetry, when non-nil, instruments the solver: per-phase spans
	// and timing histograms, move-acceptance counters and profit-delta
	// gauges (DESIGN.md §8). Nil (the default) disables all of it; the
	// disabled path costs only nil checks.
	Telemetry *telemetry.Set
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		NumInitSolutions:    3,
		AdmissionControl:    true,
		AlphaGranularity:    10,
		MaxLocalSearchIters: 20,
		Tolerance:           1e-4,
		Seed:                1,
		ShadowPriceScale:    1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumInitSolutions <= 0:
		return fmt.Errorf("core: NumInitSolutions = %d", c.NumInitSolutions)
	case c.AlphaGranularity <= 0:
		return fmt.Errorf("core: AlphaGranularity = %d", c.AlphaGranularity)
	case c.MaxLocalSearchIters < 0:
		return fmt.Errorf("core: MaxLocalSearchIters = %d", c.MaxLocalSearchIters)
	case c.Tolerance < 0:
		return fmt.Errorf("core: Tolerance = %v", c.Tolerance)
	case c.ShadowPriceScale <= 0:
		return fmt.Errorf("core: ShadowPriceScale = %v", c.ShadowPriceScale)
	case c.Workers < 0:
		return fmt.Errorf("core: Workers = %d", c.Workers)
	case c.CandidateClusters < 0:
		return fmt.Errorf("core: CandidateClusters = %d", c.CandidateClusters)
	case c.Shards < 0:
		return fmt.Errorf("core: Shards = %d", c.Shards)
	}
	return nil
}

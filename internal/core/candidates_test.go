package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestTopKExactFallbackEquiv is the exactness-fallback acceptance
// criterion: CandidateClusters = K (or more) must reproduce the unpruned
// solver bit-for-bit — same assignments, same portions, ledger-equal
// profit.
func TestTopKExactFallbackEquiv(t *testing.T) {
	scen := smallScenario(t, 60, 9)
	numK := scen.Cloud.NumClusters()
	exact := newTestSolver(t, scen, nil)
	aExact, stExact, err := exact.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{numK, numK + 10} {
		s := newTestSolver(t, scen, func(c *Config) { c.CandidateClusters = k })
		a, st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sameAssignments(t, scen, aExact, a, "k=K fallback")
		if !ulpEqual(stExact.FinalProfit, st.FinalProfit) {
			t.Fatalf("k=%d: profit %v vs exact %v", k, st.FinalProfit, stExact.FinalProfit)
		}
	}
}

// TestScoreClientIndexedEquiv checks the reassignment scoring pruning at
// its exact operating point: with the index active and k = K, scoreClient
// must reach the same action as the full scan for every client — the
// early exit only ever skips clusters that provably cannot change it.
// With k < K it checks the one-sided guarantees the pruning does promise.
func TestScoreClientIndexedEquiv(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClusters = 12
	wcfg.NumClients = 80
	wcfg.Seed = 17
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	numK := scen.Cloud.NumClusters()

	for _, admission := range []bool{true, false} {
		full := newTestSolver(t, scen, func(c *Config) { c.AdmissionControl = admission })
		atK := newTestSolver(t, scen, func(c *Config) {
			c.AdmissionControl = admission
			c.CandidateClusters = numK
		})
		pruned := newTestSolver(t, scen, func(c *Config) {
			c.AdmissionControl = admission
			c.CandidateClusters = 3
		})

		a, err := full.InitialSolution(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		ix := alloc.NewIndex(a)
		ix.Refresh()
		outGain := math.Inf(-1)
		if admission {
			outGain = 0
		}

		var wsFull, wsIx, wsPruned reassignScratch
		var sawPruning bool
		for ci := 0; ci < scen.NumClients(); ci++ {
			i := model.ClientID(ci)
			rf := full.scoreClient(a, i, outGain, &wsFull, nil, nil)
			rx := atK.scoreClient(a, i, outGain, &wsIx, ix, nil)

			if rf.hasCand != rx.hasCand {
				t.Fatalf("admission=%v client %d: full hasCand=%v, indexed k=K hasCand=%v",
					admission, i, rf.hasCand, rx.hasCand)
			}
			// mark.best may differ when no action results (the indexed path
			// stops refining its non-actionable best once the bound says no
			// remaining cluster can produce a move); when there IS an action
			// the target must match, checked below via cand.toK.
			if rf.hasCand {
				if rf.cand.toK != rx.cand.toK || rf.cand.fromK != rx.cand.fromK {
					t.Fatalf("admission=%v client %d: action %d→%d vs %d→%d", admission, i,
						rf.cand.fromK, rf.cand.toK, rx.cand.fromK, rx.cand.toK)
				}
				if !ulpEqual(rf.cand.delta, rx.cand.delta) {
					t.Fatalf("admission=%v client %d: delta %v vs %v",
						admission, i, rf.cand.delta, rx.cand.delta)
				}
				if len(rf.cand.portions) != len(rx.cand.portions) {
					t.Fatalf("admission=%v client %d: %d vs %d portions",
						admission, i, len(rf.cand.portions), len(rx.cand.portions))
				}
				for p := range rf.cand.portions {
					if rf.cand.portions[p] != rx.cand.portions[p] {
						t.Fatalf("admission=%v client %d portion %d: %+v vs %+v",
							admission, i, p, rf.cand.portions[p], rx.cand.portions[p])
					}
				}
			}
			if rx.evaluated+rx.pruned != int64(numK) {
				t.Fatalf("client %d: evaluated %d + pruned %d != %d clusters",
					i, rx.evaluated, rx.pruned, numK)
			}
			if rx.pruned > 0 {
				sawPruning = true
			}

			// k < K: one-sided guarantees only — a pruned candidate implies
			// a full candidate at least as good.
			rp := pruned.scoreClient(a, i, outGain, &wsPruned, ix, nil)
			if rp.hasCand {
				if !rf.hasCand {
					t.Fatalf("admission=%v client %d: pruned found a candidate the full scan did not",
						admission, i)
				}
				if rp.cand.delta > rf.cand.delta && !ulpEqual(rp.cand.delta, rf.cand.delta) {
					t.Fatalf("admission=%v client %d: pruned delta %v beats full %v",
						admission, i, rp.cand.delta, rf.cand.delta)
				}
			}
		}
		if !sawPruning {
			t.Fatal("indexed k=K scoring never pruned a cluster; early exit untested")
		}
	}
}

// TestPrunedSolveWorkerEquiv: the pruned solve stays deterministic at any
// worker count (scoring is a pure function of the frozen state; pruning
// and the index refresh happen serially).
func TestPrunedSolveWorkerEquiv(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClusters = 8
	wcfg.NumClients = 80
	wcfg.Seed = 29
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(workers int) func(*Config) {
		return func(c *Config) {
			c.Workers = workers
			c.CandidateClusters = 3
		}
	}
	s1 := newTestSolver(t, scen, mutate(1))
	sN := newTestSolver(t, scen, mutate(8))
	a1, st1, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	aN, stN, err := sN.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sameAssignments(t, scen, a1, aN, "pruned solve")
	if !ulpEqual(st1.FinalProfit, stN.FinalProfit) {
		t.Fatalf("final profit %v vs %v", st1.FinalProfit, stN.FinalProfit)
	}
	if err := aN.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPrunedSolveQuality: the default-k profit-loss budget, scaled down
// to a unit-test instance (the 10k-client acceptance check runs in the
// scale experiment and CI smoke job).
func TestPrunedSolveQuality(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumClusters = 10
	wcfg.NumClients = 150
	wcfg.Seed = 31
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := newTestSolver(t, scen, nil)
	_, stExact, err := exact.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pruned := newTestSolver(t, scen, func(c *Config) { c.CandidateClusters = 4 })
	a, st, err := pruned.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if stExact.FinalProfit <= 0 {
		t.Fatalf("exact profit %v not positive; instance unusable", stExact.FinalProfit)
	}
	if loss := (stExact.FinalProfit - st.FinalProfit) / stExact.FinalProfit; loss > 0.02 {
		t.Fatalf("top-4 pruning lost %.2f%% profit (exact %v, pruned %v)",
			loss*100, stExact.FinalProfit, st.FinalProfit)
	}
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestSolveFromKeepsFeasiblePlacements(t *testing.T) {
	scen := smallScenario(t, 30, 21)
	s1 := newTestSolver(t, scen, nil)
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Same cloud, slightly drifted rates.
	next := smallScenario(t, 30, 21)
	for i := range next.Clients {
		next.Clients[i].ArrivalRate *= 0.95
		next.Clients[i].PredictedRate *= 0.95
	}
	s2 := newTestSolver(t, next, nil)
	a, stats, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Admission control may leave a handful of unprofitable clients out;
	// the bulk must carry over.
	if a.NumAssigned() < 25 {
		t.Fatalf("assigned only %d of 30", a.NumAssigned())
	}
	if stats.FinalProfit < stats.InitialProfit-1e-9 {
		t.Fatalf("local search regressed: %+v", stats)
	}

	// Quality must be close to a cold solve of the new scenario.
	cold, _, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Profit() < 0.9*cold.Profit() {
		t.Fatalf("warm profit %v far below cold %v", a.Profit(), cold.Profit())
	}
}

func TestSolveFromReplacesSaturatedClients(t *testing.T) {
	scen := smallScenario(t, 20, 22)
	s1 := newTestSolver(t, scen, nil)
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Triple the rates: many old placements saturate and must be redone.
	next := smallScenario(t, 20, 22)
	for i := range next.Clients {
		next.Clients[i].ArrivalRate *= 3
		next.Clients[i].PredictedRate *= 3
	}
	s2 := newTestSolver(t, next, nil)
	a, _, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Whatever got placed must be stable under the new rates (Validate
	// checks this); the heavy load may leave some clients out.
	if a.NumAssigned() == 0 {
		t.Fatal("nothing placed after drift")
	}
}

func TestSolveFromRejectsShapeMismatch(t *testing.T) {
	scen := smallScenario(t, 10, 23)
	s := newTestSolver(t, scen, nil)
	prev, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.NumClients = 11
	cfg.Seed = 23
	other, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestSolver(t, other, nil)
	if _, _, err := s2.SolveFrom(prev); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, _, err := s2.SolveFrom(nil); err == nil {
		t.Fatal("nil previous accepted")
	}
}

// driftChurn applies churn-shaped drift to a copy of scen: every rate
// jittered by a seeded factor, departFrac of the clients zeroed out
// (departed). Returns the drifted scenario.
func driftChurn(t *testing.T, n int, scenSeed, driftSeed int64, departFrac float64) *model.Scenario {
	t.Helper()
	drift := smallScenario(t, n, scenSeed)
	rng := rand.New(rand.NewSource(driftSeed))
	for i := range drift.Clients {
		f := 0.8 + 0.4*rng.Float64()
		drift.Clients[i].ArrivalRate *= f
		drift.Clients[i].PredictedRate *= f
		if rng.Float64() < departFrac {
			drift.Clients[i].ArrivalRate = 0
			drift.Clients[i].PredictedRate = 0
		}
	}
	return drift
}

// TestSolveFromDropsDepartedClients: clients whose rates dropped to zero
// (departed, in the online service's churn model) must not survive the
// warm start — their old placements are dropped, not replayed, and the
// re-placement pass never re-admits them.
func TestSolveFromDropsDepartedClients(t *testing.T) {
	scen := smallScenario(t, 30, 24)
	s1 := newTestSolver(t, scen, nil)
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}

	drift := driftChurn(t, 30, 24, 99, 0.3)
	if err := drift.Validate(); err != nil {
		t.Fatal(err)
	}
	var departed []model.ClientID
	for i := range drift.Clients {
		if drift.Clients[i].PredictedRate == 0 {
			departed = append(departed, model.ClientID(i))
		}
	}
	if len(departed) == 0 {
		t.Fatal("drift produced no departures; pick another seed")
	}

	s2 := newTestSolver(t, drift, nil)
	a, _, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range departed {
		if a.Assigned(id) {
			t.Fatalf("departed client %d still assigned after warm start", id)
		}
	}
}

// TestSolveFromPlacesArrivals: clients absent in the previous epoch
// (zero rate, unassigned) that now carry positive rates are newly
// arrived and must flow through the re-placement path into the warm
// allocation.
func TestSolveFromPlacesArrivals(t *testing.T) {
	base := smallScenario(t, 30, 25)
	// First third of the clients have not arrived yet.
	var absent []model.ClientID
	for i := 0; i < 10; i++ {
		base.Clients[i].ArrivalRate = 0
		base.Clients[i].PredictedRate = 0
		absent = append(absent, model.ClientID(i))
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	s1 := newTestSolver(t, base, nil)
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range absent {
		if prev.Assigned(id) {
			t.Fatalf("absent client %d assigned in base solve", id)
		}
	}

	// They arrive: fresh scenario with every rate positive.
	next := smallScenario(t, 30, 25)
	s2 := newTestSolver(t, next, nil)
	a, _, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	var placed int
	for _, id := range absent {
		if a.Assigned(id) {
			placed++
		}
	}
	// Admission control may price a few arrivals out; most must land.
	if placed < len(absent)/2 {
		t.Fatalf("only %d of %d arrivals placed into the warm allocation", placed, len(absent))
	}
}

// TestSolveFromWarmBeatsColdGreedy: on the same drifted scenario the
// warm start (replay + re-place + local search) must end at least as
// profitable as a single cold greedy pass without local search. The
// floor is empirical, not a theorem — replayed placements can trap the
// hill climber in a nearby local optimum (seed 33 lands 0.8% below the
// cold greedy) — so the property allows the same 1% slack the online
// service's profit-retention gate enforces.
func TestSolveFromWarmBeatsColdGreedy(t *testing.T) {
	for _, seed := range []int64{31, 32, 33, 34, 35} {
		base := smallScenario(t, 40, seed)
		s1 := newTestSolver(t, base, nil)
		prev, _, err := s1.Solve()
		if err != nil {
			t.Fatal(err)
		}

		drift := driftChurn(t, 40, seed, seed*7+1, 0.15)
		warmSolver := newTestSolver(t, drift, nil)
		warm, _, err := warmSolver.SolveFrom(prev)
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Validate(); err != nil {
			t.Fatal(err)
		}

		coldGreedy := newTestSolver(t, drift, func(c *Config) {
			c.MaxLocalSearchIters = 0
			c.NumInitSolutions = 1
		})
		cold, _, err := coldGreedy.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if warm.Profit() < 0.99*cold.Profit()-1e-9 {
			t.Fatalf("seed %d: warm profit %v below 99%% of cold greedy %v",
				seed, warm.Profit(), cold.Profit())
		}
	}
}

package core

import (
	"testing"

	"repro/internal/workload"
)

func TestSolveFromKeepsFeasiblePlacements(t *testing.T) {
	scen := smallScenario(t, 30, 21)
	s1 := newTestSolver(t, scen, nil)
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Same cloud, slightly drifted rates.
	next := smallScenario(t, 30, 21)
	for i := range next.Clients {
		next.Clients[i].ArrivalRate *= 0.95
		next.Clients[i].PredictedRate *= 0.95
	}
	s2 := newTestSolver(t, next, nil)
	a, stats, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Admission control may leave a handful of unprofitable clients out;
	// the bulk must carry over.
	if a.NumAssigned() < 25 {
		t.Fatalf("assigned only %d of 30", a.NumAssigned())
	}
	if stats.FinalProfit < stats.InitialProfit-1e-9 {
		t.Fatalf("local search regressed: %+v", stats)
	}

	// Quality must be close to a cold solve of the new scenario.
	cold, _, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Profit() < 0.9*cold.Profit() {
		t.Fatalf("warm profit %v far below cold %v", a.Profit(), cold.Profit())
	}
}

func TestSolveFromReplacesSaturatedClients(t *testing.T) {
	scen := smallScenario(t, 20, 22)
	s1 := newTestSolver(t, scen, nil)
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Triple the rates: many old placements saturate and must be redone.
	next := smallScenario(t, 20, 22)
	for i := range next.Clients {
		next.Clients[i].ArrivalRate *= 3
		next.Clients[i].PredictedRate *= 3
	}
	s2 := newTestSolver(t, next, nil)
	a, _, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Whatever got placed must be stable under the new rates (Validate
	// checks this); the heavy load may leave some clients out.
	if a.NumAssigned() == 0 {
		t.Fatal("nothing placed after drift")
	}
}

func TestSolveFromRejectsShapeMismatch(t *testing.T) {
	scen := smallScenario(t, 10, 23)
	s := newTestSolver(t, scen, nil)
	prev, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.NumClients = 11
	cfg.Seed = 23
	other, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestSolver(t, other, nil)
	if _, _, err := s2.SolveFrom(prev); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, _, err := s2.SolveFrom(nil); err == nil {
		t.Fatal("nil previous accepted")
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/workload"
)

// benchReassignSetup builds a solver in the requested mode plus a greedy
// (not yet reassigned) allocation — the state the pass sees inside
// ImproveLocal's first round.
func benchReassignSetup(b *testing.B, clients int, mutate func(*Config)) (*Solver, *alloc.Allocation) {
	b.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = clients
	wcfg.Seed = 42
	scen, err := workload.Generate(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSolver(scen, cfg)
	if err != nil {
		b.Fatal(err)
	}
	a, err := s.InitialSolution(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return s, a
}

// BenchmarkReassignmentPass measures one reassignment pass over a fresh
// greedy allocation in the three modes: the legacy sequential pass (the
// pre-pipeline baseline), the pipeline with one scoring worker, and the
// pipeline with the full worker pool. Run with -cpu 1,4,8 for the
// scaling row.
func BenchmarkReassignmentPass(b *testing.B) {
	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"legacy", func(c *Config) { c.DisableParallelReassign = true }},
		{"workers1", func(c *Config) { c.Workers = 1 }},
		{"parallel", func(c *Config) { c.Workers = 0 }},
	}
	for _, clients := range []int{50, 250, 1000} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("clients=%d/mode=%s", clients, mode.name), func(b *testing.B) {
				s, base := benchReassignSetup(b, clients, mode.mutate)
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					b.StopTimer()
					a := base.Clone()
					b.StartTimer()
					s.ReassignmentPass(a)
				}
			})
		}
	}
}

// BenchmarkReassignmentPassConverged measures the cross-round skip path:
// repeated passes over an already-converged allocation, where the
// pipeline's dirty-cluster marks reduce the pass to a clean-scan —
// O(clients) instead of O(clients × clusters × servers).
func BenchmarkReassignmentPassConverged(b *testing.B) {
	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"legacy", func(c *Config) { c.DisableParallelReassign = true }},
		{"parallel", func(c *Config) { c.Workers = 0 }},
	}
	for _, clients := range []int{250} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("clients=%d/mode=%s", clients, mode.name), func(b *testing.B) {
				s, a := benchReassignSetup(b, clients, mode.mutate)
				for i := 0; i < 10 && s.ReassignmentPass(a) > 0; i++ {
				}
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if moves := s.ReassignmentPass(a); moves != 0 {
						b.Fatalf("converged allocation moved %d clients", moves)
					}
				}
			})
		}
	}
}

package core

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/queueing"
)

// ErrCannotPlace is returned when a client cannot feasibly be served by
// the requested cluster (no disk, no stable share combination).
var ErrCannotPlace = errors.New("core: client cannot be placed in cluster")

// candidateKey memoizes Assign_Distribute rows across identical servers:
// inactive servers of one class look the same to the client, so the paper
// solves them "only once" (Section V.A).
type candidateKey struct {
	class  model.ServerClassID
	availP float64
	availB float64
	diskOK bool
	active bool
}

// candidate is one server's tabulated contribution to the DP.
type candidate struct {
	server model.ServerID
	values []float64 // profit contribution per α grid unit
	shareP []float64
	shareB []float64
}

// AssignDistribute evaluates the best placement of (unassigned) client i
// on cluster k given the current allocation state, without mutating it.
// It returns the approximate profit of the placement and the portions
// realizing it (paper Section V.A: closed-form shares per server and α
// grid, combined by dynamic programming so that Σα = 1).
func (s *Solver) AssignDistribute(a *alloc.Allocation, i model.ClientID, k model.ClusterID) (float64, []alloc.Portion, error) {
	return s.assignDistribute(a, i, k, nil)
}

// assignDistribute is AssignDistribute with an optional server filter
// (used by TurnOFF to exclude the server being drained).
func (s *Solver) assignDistribute(a *alloc.Allocation, i model.ClientID, k model.ClusterID, allowed func(model.ServerID) bool) (float64, []alloc.Portion, error) {
	scen := s.scen
	if int(k) < 0 || int(k) >= scen.Cloud.NumClusters() {
		return 0, nil, fmt.Errorf("core: unknown cluster %d", k)
	}
	cl := &scen.Clients[i]
	u := scen.Utility(i)
	w := cl.ArrivalRate * u.Slope
	g := s.cfg.AlphaGranularity

	var cands []candidate
	memo := make(map[candidateKey]int)
	for _, j := range scen.Cloud.ClusterServers(k) {
		if allowed != nil && !allowed(j) {
			continue
		}
		class := scen.Cloud.ServerClass(j)
		key := candidateKey{
			class:  class.ID,
			availP: 1 - a.ProcShareUsed(j),
			availB: 1 - a.CommShareUsed(j),
			diskOK: a.DiskUsed(j)+cl.DiskNeed <= class.StoreCap,
			active: a.Active(j),
		}
		if idx, ok := memo[key]; ok {
			prev := cands[idx]
			cands = append(cands, candidate{
				server: j,
				values: prev.values,
				shareP: prev.shareP,
				shareB: prev.shareB,
			})
			continue
		}
		cand := s.tabulateServer(cl, u, w, j, class, key, g)
		memo[key] = len(cands)
		cands = append(cands, cand)
	}
	if len(cands) == 0 {
		return 0, nil, ErrCannotPlace
	}

	rows := make([][]float64, len(cands))
	for c := range cands {
		rows[c] = cands[c].values
	}
	best, units, err := opt.CombinePortions(rows, g)
	if err != nil {
		if errors.Is(err, opt.ErrNoFeasibleCombination) {
			return 0, nil, ErrCannotPlace
		}
		return 0, nil, fmt.Errorf("core: assign-distribute DP: %w", err)
	}
	var portions []alloc.Portion
	for c, ug := range units {
		if ug == 0 {
			continue
		}
		portions = append(portions, alloc.Portion{
			Server:    cands[c].server,
			Alpha:     float64(ug) / float64(g),
			ProcShare: cands[c].shareP[ug],
			CommShare: cands[c].shareB[ug],
		})
	}
	return best, portions, nil
}

// tabulateServer fills the per-α-grid contribution of one server: the
// linearized revenue α·λ·a minus the weighted tandem delay, the marginal
// energy cost P1·α·λ̃·tp/Cp, and the activation cost P0 for an inactive
// server.
func (s *Solver) tabulateServer(cl *model.Client, u model.UtilityClass, w float64,
	j model.ServerID, class model.ServerClass, key candidateKey, g int) candidate {
	cand := candidate{
		server: j,
		values: make([]float64, g+1),
		shareP: make([]float64, g+1),
		shareB: make([]float64, g+1),
	}
	for ug := 1; ug <= g; ug++ {
		cand.values[ug] = opt.NegInf
		if !key.diskOK {
			continue
		}
		alpha := float64(ug) / float64(g)
		rate := alpha * cl.PredictedRate
		phiP, okP := greedyShare(w*alpha, cl.ProcTime, rate, class.ProcCap, s.prices.proc, key.availP)
		if !okP {
			continue
		}
		phiB, okB := greedyShare(w*alpha, cl.CommTime, rate, class.CommCap, s.prices.comm, key.availB)
		if !okB {
			continue
		}
		dP, errP := queueing.PortionDelay(phiP, class.ProcCap, cl.ProcTime, rate)
		dB, errB := queueing.PortionDelay(phiB, class.CommCap, cl.CommTime, rate)
		if errP != nil || errB != nil {
			continue
		}
		val := alpha*cl.ArrivalRate*u.Base -
			w*alpha*(dP+dB) -
			class.UtilizationCost*queueing.LoadFraction(class.ProcCap, cl.ProcTime, rate)
		if !key.active {
			val -= class.FixedCost
		}
		cand.values[ug] = val
		cand.shareP[ug] = phiP
		cand.shareB[ug] = phiB
	}
	return cand
}

package core

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/queueing"
)

// ErrCannotPlace is returned when a client cannot feasibly be served by
// the requested cluster (no disk, no stable share combination).
var ErrCannotPlace = errors.New("core: client cannot be placed in cluster")

// placementView is the read surface Assign_Distribute prices a candidate
// placement against. Both a live *alloc.Allocation and a read-only
// *alloc.View (the allocation with one client subtracted, used by the
// reassignment scoring pool) satisfy it.
type placementView interface {
	ProcShareUsed(model.ServerID) float64
	CommShareUsed(model.ServerID) float64
	DiskUsed(model.ServerID) float64
	Active(model.ServerID) bool
}

// candidateKey memoizes Assign_Distribute rows across identical servers:
// inactive servers of one class look the same to the client, so the paper
// solves them "only once" (Section V.A).
type candidateKey struct {
	class  model.ServerClassID
	availP float64
	availB float64
	diskOK bool
	active bool
}

// candidate is one server's tabulated contribution to the DP.
type candidate struct {
	server model.ServerID
	values []float64 // profit contribution per α grid unit
	shareP []float64
	shareB []float64
}

// distScratch holds one Assign_Distribute evaluation's working memory so
// a hot caller (one per reassignment scoring worker) can reuse it across
// calls. The portions returned from a scratch-backed call alias the
// scratch and are only valid until the next call with the same scratch.
type distScratch struct {
	memo     map[candidateKey]int
	cands    []candidate
	rows     [][]float64
	arena    []float64 // backing store for values/shareP/shareB rows
	dp       opt.PortionScratch
	portions []alloc.Portion
}

// AssignDistribute evaluates the best placement of (unassigned) client i
// on cluster k given the current allocation state, without mutating it.
// It returns the approximate profit of the placement and the portions
// realizing it (paper Section V.A: closed-form shares per server and α
// grid, combined by dynamic programming so that Σα = 1).
func (s *Solver) AssignDistribute(a *alloc.Allocation, i model.ClientID, k model.ClusterID) (float64, []alloc.Portion, error) {
	return s.assignDistribute(a, i, k, nil, nil)
}

// assignDistribute is AssignDistribute generalized over the read surface
// (live allocation or exclusion view), with an optional server filter
// (used by TurnOFF to exclude the server being drained) and an optional
// scratch for allocation-free evaluation.
func (s *Solver) assignDistribute(v placementView, i model.ClientID, k model.ClusterID,
	allowed func(model.ServerID) bool, scr *distScratch) (float64, []alloc.Portion, error) {
	scen := s.scen
	if int(k) < 0 || int(k) >= scen.Cloud.NumClusters() {
		return 0, nil, fmt.Errorf("core: unknown cluster %d", k)
	}
	cl := &scen.Clients[i]
	u := scen.Utility(i)
	w := cl.ArrivalRate * u.Slope
	g := s.cfg.AlphaGranularity
	servers := scen.Cloud.ClusterServers(k)

	var cands []candidate
	var memo map[candidateKey]int
	var arena []float64
	if scr != nil {
		cands = scr.cands[:0]
		if scr.memo == nil {
			scr.memo = make(map[candidateKey]int, len(servers))
		} else {
			clear(scr.memo)
		}
		memo = scr.memo
		// Size the row arena for the worst case (every server unique) up
		// front so handing out sub-slices never reallocates mid-call.
		need := 3 * (g + 1) * len(servers)
		if cap(scr.arena) < need {
			scr.arena = make([]float64, need)
		}
		arena = scr.arena[:0]
	} else {
		memo = make(map[candidateKey]int)
	}

	for _, j := range servers {
		if allowed != nil && !allowed(j) {
			continue
		}
		class := scen.Cloud.ServerClass(j)
		key := candidateKey{
			class:  class.ID,
			availP: 1 - v.ProcShareUsed(j),
			availB: 1 - v.CommShareUsed(j),
			diskOK: v.DiskUsed(j)+cl.DiskNeed <= class.StoreCap,
			active: v.Active(j),
		}
		if idx, ok := memo[key]; ok {
			prev := cands[idx]
			cands = append(cands, candidate{
				server: j,
				values: prev.values,
				shareP: prev.shareP,
				shareB: prev.shareB,
			})
			continue
		}
		cand := candidate{server: j}
		if scr != nil {
			n := len(arena)
			arena = arena[:n+3*(g+1)]
			cand.values = arena[n : n+g+1 : n+g+1]
			cand.shareP = arena[n+g+1 : n+2*(g+1) : n+2*(g+1)]
			cand.shareB = arena[n+2*(g+1) : n+3*(g+1) : n+3*(g+1)]
		} else {
			cand.values = make([]float64, g+1)
			cand.shareP = make([]float64, g+1)
			cand.shareB = make([]float64, g+1)
		}
		s.tabulateServer(&cand, cl, u, w, class, key, g)
		memo[key] = len(cands)
		cands = append(cands, cand)
	}
	if scr != nil {
		scr.cands = cands
		scr.arena = arena
	}
	if len(cands) == 0 {
		return 0, nil, ErrCannotPlace
	}

	var rows [][]float64
	if scr != nil {
		rows = scr.rows[:0]
	}
	for c := range cands {
		rows = append(rows, cands[c].values)
	}
	var best float64
	var units []int
	var err error
	if scr != nil {
		scr.rows = rows
		best, units, err = scr.dp.Combine(rows, g)
	} else {
		best, units, err = opt.CombinePortions(rows, g)
	}
	if err != nil {
		if errors.Is(err, opt.ErrNoFeasibleCombination) {
			return 0, nil, ErrCannotPlace
		}
		return 0, nil, fmt.Errorf("core: assign-distribute DP: %w", err)
	}
	var portions []alloc.Portion
	if scr != nil {
		portions = scr.portions[:0]
	}
	for c, ug := range units {
		if ug == 0 {
			continue
		}
		portions = append(portions, alloc.Portion{
			Server:    cands[c].server,
			Alpha:     float64(ug) / float64(g),
			ProcShare: cands[c].shareP[ug],
			CommShare: cands[c].shareB[ug],
		})
	}
	if scr != nil {
		scr.portions = portions
	}
	return best, portions, nil
}

// tabulateServer fills the per-α-grid contribution of one server into
// cand's (pre-sized, possibly recycled) rows: the linearized revenue
// α·λ·a minus the weighted tandem delay, the marginal energy cost
// P1·α·λ̃·tp/Cp, and the activation cost P0 for an inactive server.
func (s *Solver) tabulateServer(cand *candidate, cl *model.Client, u model.UtilityClass, w float64,
	class model.ServerClass, key candidateKey, g int) {
	cand.values[0] = 0
	for ug := 1; ug <= g; ug++ {
		cand.values[ug] = opt.NegInf
		if !key.diskOK {
			continue
		}
		alpha := float64(ug) / float64(g)
		rate := alpha * cl.PredictedRate
		phiP, okP := greedyShare(w*alpha, cl.ProcTime, rate, class.ProcCap, s.prices.proc, key.availP)
		if !okP {
			continue
		}
		phiB, okB := greedyShare(w*alpha, cl.CommTime, rate, class.CommCap, s.prices.comm, key.availB)
		if !okB {
			continue
		}
		dP, errP := queueing.PortionDelay(phiP, class.ProcCap, cl.ProcTime, rate)
		dB, errB := queueing.PortionDelay(phiB, class.CommCap, cl.CommTime, rate)
		if errP != nil || errB != nil {
			continue
		}
		val := alpha*cl.ArrivalRate*u.Base -
			w*alpha*(dP+dB) -
			class.UtilizationCost*queueing.LoadFraction(class.ProcCap, cl.ProcTime, rate)
		if !key.active {
			val -= class.FixedCost
		}
		cand.values[ug] = val
		cand.shareP[ug] = phiP
		cand.shareB[ug] = phiB
	}
}

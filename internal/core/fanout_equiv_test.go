package core

import (
	"reflect"
	"testing"
)

// TestSolveMultiStartWorkerEquivalence: the multi-start fan-out's
// determinism contract — same seed, any worker count, bit-identical
// solve. Each start draws from its own seed-split stream and the winner
// is reduced under (profit desc, start index asc), so W=1 and W=8 must
// agree on every profit and every placement. Run under -race in CI.
func TestSolveMultiStartWorkerEquivalence(t *testing.T) {
	scen := smallScenario(t, 40, 3)
	solveWith := func(workers int) (float64, float64, any) {
		s := newTestSolver(t, scen, func(c *Config) {
			c.NumInitSolutions = 6
			c.Workers = workers
		})
		a, stats, err := s.Solve()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stats.InitialProfit, stats.FinalProfit, a.Snapshot()
	}

	refInit, refFinal, refSnap := solveWith(1)
	for _, workers := range []int{4, 8} {
		init, final, snap := solveWith(workers)
		if init != refInit {
			t.Errorf("workers=%d: InitialProfit %v != W=1's %v", workers, init, refInit)
		}
		if final != refFinal {
			t.Errorf("workers=%d: FinalProfit %v != W=1's %v", workers, final, refFinal)
		}
		if !reflect.DeepEqual(snap, refSnap) {
			t.Errorf("workers=%d: placements differ from W=1", workers)
		}
	}
}

// TestMultiStartArenaReuse: more starts than workers forces every worker
// to recycle its allocation through Reset; the result must still match
// the all-fresh W=1 run (which itself recycles one arena serially).
func TestMultiStartArenaReuse(t *testing.T) {
	scen := smallScenario(t, 25, 9)
	profits := map[int]float64{}
	for _, workers := range []int{1, 2} {
		s := newTestSolver(t, scen, func(c *Config) {
			c.NumInitSolutions = 8
			c.MaxLocalSearchIters = 0 // isolate the multi-start phase
			c.Workers = workers
		})
		a, stats, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		profits[workers] = stats.InitialProfit
	}
	if profits[1] != profits[2] {
		t.Fatalf("initial profit differs: W=1 %v, W=2 %v", profits[1], profits[2])
	}
}

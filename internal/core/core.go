package core

package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestWarmstartDirtyRescoring10k is the at-scale warmstart check: a
// 10k-client epoch roll (SolveFrom on drifted rates) must keep the bulk
// of the placements, and the reassignment pass's dirty-cluster tracking
// must actually engage at that size — a converged pass re-scores almost
// nothing instead of sweeping all 10k clients again. Gated off -race
// (it would dominate the race suite) and -short.
func TestWarmstartDirtyRescoring10k(t *testing.T) {
	if raceEnabled {
		t.Skip("scale test; skipped under -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const clients = 10_000
	// Both epochs isolate the reassignment machinery: the per-cluster
	// polish phases are orthogonal to what this test covers and dominate
	// wall time at 10k.
	mutate := func(c *Config) {
		c.NumInitSolutions = 1
		c.MaxLocalSearchIters = 1
		c.AlphaGranularity = 6
		c.CandidateClusters = 6
		c.DisableShareAdjust = true
		c.DisableDispersionAdjust = true
		c.DisableTurnOn = true
		c.DisableTurnOff = true
	}

	prevScen, err := workload.Generate(workload.ScaleConfig(clients, 3))
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestSolver(t, prevScen, func(c *Config) {
		mutate(c)
		c.Shards = 12
	})
	prev, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	kept := 0

	// Next epoch: same cloud, mildly drifted rates.
	nextScen, err := workload.Generate(workload.ScaleConfig(clients, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range nextScen.Clients {
		drift := 0.9 + 0.2*float64(i%11)/10 // deterministic ±10%
		nextScen.Clients[i].ArrivalRate *= drift
		nextScen.Clients[i].PredictedRate *= drift
	}

	set := telemetry.New(nil)
	s2 := newTestSolver(t, nextScen, func(c *Config) {
		mutate(c)
		c.Telemetry = set
	})
	a, stats, err := s2.SolveFrom(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		id := model.ClientID(i)
		if prev.Assigned(id) && a.Assigned(id) && a.ClusterOf(id) == prev.ClusterOf(id) {
			kept++
		}
	}
	if kept < prev.NumAssigned()/2 {
		t.Fatalf("warm start kept only %d of %d placements", kept, prev.NumAssigned())
	}
	if stats.FinalProfit < stats.InitialProfit-1e-9 {
		t.Fatalf("local search regressed: %+v", stats)
	}

	// Drain to convergence, then check the dirty tracking: one more pass
	// over the untouched allocation must skip essentially everyone.
	for i := 0; i < 5 && s2.ReassignmentPass(a) > 0; i++ {
	}
	scored := set.Counter("solver_reassign_scored_total")
	skipped := set.Counter("solver_reassign_dirty_skipped_total")
	scoredBefore, skippedBefore := scored.Value(), skipped.Value()
	if moves := s2.ReassignmentPass(a); moves != 0 {
		t.Fatalf("converged allocation still moved %d clients", moves)
	}
	if got := scored.Value() - scoredBefore; got != 0 {
		t.Fatalf("converged pass re-scored %d clients, want 0", got)
	}
	if got := skipped.Value() - skippedBefore; got != int64(clients) {
		t.Fatalf("converged pass skipped %d clients, want all %d", got, clients)
	}
}

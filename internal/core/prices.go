package core

import (
	"math"

	"repro/internal/model"
)

// shadowPrices hold the calibrated capacity shadow prices η used by the
// greedy share formula of Assign_Distribute.
//
// The paper's eq. (16) gives the optimal share for a fixed dispersion rate
// as φ = a·t/C + sqrt(w·t/(η·C)) clamped to the available range, where η
// prices one unit of GPS share. The paper does not spell out how η is
// chosen; we calibrate it so that, if every client were placed whole on an
// average server, the sqrt-headroom demanded across all clients would
// exactly equal the share headroom the cloud has left after serving the
// raw load (see DESIGN.md). An overloaded cloud therefore gets a large η
// (shares hug the stability floors, packing tightly) and an idle cloud a
// small η (clients get generous shares).
type shadowPrices struct {
	proc float64
	comm float64
}

// calibratePrices computes the shadow prices for a scenario.
func calibratePrices(scen *model.Scenario, scale float64) shadowPrices {
	var (
		capP, capB   float64 // total capacity per dimension
		nServers     = float64(scen.Cloud.NumServers())
		avgCapP      float64
		avgCapB      float64
		loadP, loadB float64 // expected busy share demand (Σ λ̃t/C̄)
		demandP      float64 // Σ sqrt(w·t/C̄)
		demandB      float64
	)
	for j := range scen.Cloud.Servers {
		class := scen.Cloud.ServerClass(model.ServerID(j))
		capP += class.ProcCap
		capB += class.CommCap
	}
	if nServers == 0 {
		return shadowPrices{proc: 1, comm: 1}
	}
	avgCapP = capP / nServers
	avgCapB = capB / nServers
	for i := range scen.Clients {
		cl := &scen.Clients[i]
		w := cl.ArrivalRate * scen.Utility(model.ClientID(i)).Slope
		loadP += cl.PredictedRate * cl.ProcTime / avgCapP
		loadB += cl.PredictedRate * cl.CommTime / avgCapB
		demandP += math.Sqrt(w * cl.ProcTime / avgCapP)
		demandB += math.Sqrt(w * cl.CommTime / avgCapB)
	}
	price := func(demand, load float64) float64 {
		headroom := nServers - load
		// Keep a sliver of headroom even when the cloud is (over)loaded so
		// the price stays finite; the floors dominate in that regime.
		if headroom < 0.05*nServers {
			headroom = 0.05 * nServers
		}
		if demand == 0 {
			return 1
		}
		eta := demand / headroom
		return eta * eta * scale
	}
	return shadowPrices{
		proc: price(demandP, loadP),
		comm: price(demandB, loadB),
	}
}

// greedyShare is the closed-form share of paper eq. (16): the stability
// floor plus priced sqrt headroom, clamped to [minShare·(1+margin), avail].
// It returns 0, false when even the floor does not fit.
func greedyShare(weight, exec, portionRate, capacity, eta, avail float64) (float64, bool) {
	floor := portionRate * exec / capacity
	lo := floor*(1+1e-6) + 1e-12
	if lo >= avail {
		return 0, false
	}
	phi := floor
	if weight > 0 && eta > 0 {
		phi += math.Sqrt(weight * exec / (eta * capacity))
	}
	if phi < lo {
		phi = lo
	}
	if phi > avail {
		phi = avail
	}
	return phi, true
}

package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func shardScenario(t *testing.T, clients, clusters int, seed int64) *model.Scenario {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.NumClients = clients
	wcfg.NumClusters = clusters
	wcfg.Seed = seed
	scen, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

// TestShardedSolveWorkerEquiv: the sharded solve must be bit-identical at
// any worker count — shard membership, per-shard orders and the serial
// reconciliation are all deterministic. Under -race this also proves the
// shards' cluster ownership is disjoint.
func TestShardedSolveWorkerEquiv(t *testing.T) {
	for _, shards := range []int{2, 3, 7} {
		scen := shardScenario(t, 90, 6, int64(40+shards))
		mutate := func(workers int) func(*Config) {
			return func(c *Config) {
				c.Workers = workers
				c.Shards = shards
			}
		}
		s1 := newTestSolver(t, scen, mutate(1))
		sN := newTestSolver(t, scen, mutate(8))
		a1, st1, err := s1.Solve()
		if err != nil {
			t.Fatal(err)
		}
		aN, stN, err := sN.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sameAssignments(t, scen, a1, aN, "sharded solve")
		if !ulpEqual(st1.FinalProfit, stN.FinalProfit) {
			t.Fatalf("shards=%d: final profit %v vs %v", shards, st1.FinalProfit, stN.FinalProfit)
		}
		if st1.Reassignments != stN.Reassignments {
			t.Fatalf("shards=%d: %d vs %d reassignments", shards, st1.Reassignments, stN.Reassignments)
		}
		if err := aN.Validate(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

// TestShardedSolveQuality: sharding trades search breadth for
// parallelism; the reconciliation pass must keep the profit close to the
// unsharded solver's.
func TestShardedSolveQuality(t *testing.T) {
	scen := shardScenario(t, 120, 8, 77)
	exact := newTestSolver(t, scen, nil)
	_, stExact, err := exact.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sharded := newTestSolver(t, scen, func(c *Config) { c.Shards = 4 })
	a, st, err := sharded.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if stExact.FinalProfit <= 0 {
		t.Fatalf("unsharded profit %v not positive; instance unusable", stExact.FinalProfit)
	}
	if loss := (stExact.FinalProfit - st.FinalProfit) / stExact.FinalProfit; loss > 0.05 {
		t.Fatalf("sharded solve lost %.2f%% profit (unsharded %v, sharded %v)",
			loss*100, stExact.FinalProfit, st.FinalProfit)
	}
	if st.Unplaced > stExact.Unplaced+scen.NumClients()/20 {
		t.Fatalf("sharded solve left %d clients unplaced (unsharded %d)", st.Unplaced, stExact.Unplaced)
	}
}

// TestShardedPrunedSolveEquiv: sharding composed with index pruning —
// still deterministic across worker counts and still a valid allocation.
func TestShardedPrunedSolveEquiv(t *testing.T) {
	scen := shardScenario(t, 100, 9, 55)
	mutate := func(workers int) func(*Config) {
		return func(c *Config) {
			c.Workers = workers
			c.Shards = 3
			c.CandidateClusters = 2
		}
	}
	s1 := newTestSolver(t, scen, mutate(1))
	sN := newTestSolver(t, scen, mutate(6))
	a1, st1, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	aN, stN, err := sN.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sameAssignments(t, scen, a1, aN, "sharded pruned solve")
	if !ulpEqual(st1.FinalProfit, stN.FinalProfit) {
		t.Fatalf("final profit %v vs %v", st1.FinalProfit, stN.FinalProfit)
	}
	if err := aN.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardsMoreThanClusters: Shards beyond the cluster count must clamp,
// not break.
func TestShardsMoreThanClusters(t *testing.T) {
	scen := shardScenario(t, 30, 3, 5)
	s := newTestSolver(t, scen, func(c *Config) { c.Shards = 16 })
	a, st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.FinalProfit <= 0 {
		t.Fatalf("profit %v", st.FinalProfit)
	}
}

// TestShardedSolveNoReassign: DisableReassign must skip both the scoped
// passes and the reconciliation without breaking the sharded rounds.
func TestShardedSolveNoReassign(t *testing.T) {
	scen := shardScenario(t, 60, 6, 13)
	s := newTestSolver(t, scen, func(c *Config) {
		c.Shards = 3
		c.DisableReassign = true
	})
	a, st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Reassignments != 0 {
		t.Fatalf("DisableReassign but %d reassignments", st.Reassignments)
	}
}

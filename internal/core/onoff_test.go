package core

import (
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/model"
)

// consolidationScenario: one cluster, two identical servers with a high
// fixed cost, two tiny clients. Serving both on one server easily meets
// the SLA, so turning one server off must be profitable.
func consolidationScenario(t *testing.T) *model.Scenario {
	t.Helper()
	s := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses: []model.ServerClass{
				{ID: 0, ProcCap: 10, StoreCap: 10, CommCap: 10, FixedCost: 5, UtilizationCost: 1},
			},
			UtilityClasses: []model.UtilityClass{{ID: 0, Base: 10, Slope: 0.5}},
			Clusters:       []model.Cluster{{ID: 0, Servers: []model.ServerID{0, 1}}},
			Servers: []model.Server{
				{ID: 0, Class: 0, Cluster: 0},
				{ID: 1, Class: 0, Cluster: 0},
			},
		},
		Clients: []model.Client{
			{ID: 0, Class: 0, ArrivalRate: 0.5, PredictedRate: 0.5, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1},
			{ID: 1, Class: 0, ArrivalRate: 0.5, PredictedRate: 0.5, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTurnOffConsolidates(t *testing.T) {
	scen := consolidationScenario(t)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	// One client per server: wasteful (two fixed costs).
	for i, srv := range []model.ServerID{0, 1} {
		p := []alloc.Portion{{Server: srv, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}
		if err := a.Assign(model.ClientID(i), 0, p); err != nil {
			t.Fatal(err)
		}
	}
	before := a.Profit()
	if a.NumActiveServers() != 2 {
		t.Fatal("setup should use two servers")
	}
	deact := s.TurnOffServers(a, 0)
	if deact != 1 {
		t.Fatalf("deactivations = %d, want 1", deact)
	}
	if a.NumActiveServers() != 1 {
		t.Fatalf("active servers = %d, want 1", a.NumActiveServers())
	}
	if a.Profit() <= before {
		t.Fatalf("consolidation did not improve profit: %v -> %v", before, a.Profit())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// congestionScenario: one cluster, two servers, two heavy latency-
// sensitive clients crammed onto one server. Activating the second
// server must pay for itself.
func congestionScenario(t *testing.T) *model.Scenario {
	t.Helper()
	s := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses: []model.ServerClass{
				{ID: 0, ProcCap: 4, StoreCap: 10, CommCap: 4, FixedCost: 0.5, UtilizationCost: 0.2},
			},
			UtilityClasses: []model.UtilityClass{{ID: 0, Base: 10, Slope: 2}},
			Clusters:       []model.Cluster{{ID: 0, Servers: []model.ServerID{0, 1}}},
			Servers: []model.Server{
				{ID: 0, Class: 0, Cluster: 0},
				{ID: 1, Class: 0, Cluster: 0},
			},
		},
		Clients: []model.Client{
			{ID: 0, Class: 0, ArrivalRate: 3, PredictedRate: 3, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1},
			{ID: 1, Class: 0, ArrivalRate: 3, PredictedRate: 3, ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTurnOnRelievesCongestion(t *testing.T) {
	scen := congestionScenario(t)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	// Both clients share server 0 with half shares each: μ = 0.5·4/0.5 = 4,
	// λ = 3 → per-stage delay 1, R̄ = 2 → revenue 3·(10−4) = 18 each, but
	// server 1 is idle and could halve the response times for 0.5 cost.
	for i := 0; i < 2; i++ {
		p := []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}
		if err := a.Assign(model.ClientID(i), 0, p); err != nil {
			t.Fatal(err)
		}
	}
	before := a.Profit()
	acts := s.TurnOnServers(a, 0)
	if acts != 1 {
		t.Fatalf("activations = %d, want 1", acts)
	}
	if !a.Active(1) {
		t.Fatal("server 1 should be active")
	}
	if a.Profit() <= before {
		t.Fatalf("activation did not improve profit: %v -> %v", before, a.Profit())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTurnOnSkipsWhenUnprofitable(t *testing.T) {
	scen := consolidationScenario(t)
	// Make activation clearly unprofitable: huge fixed cost.
	scen.Cloud.ServerClasses[0].FixedCost = 100
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	// Full shares: the idle server cannot offer anything better, so any
	// activation would only add the prohibitive fixed cost.
	p := []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 1, CommShare: 1}}
	if err := a.Assign(0, 0, p); err != nil {
		t.Fatal(err)
	}
	before := a.Profit()
	if acts := s.TurnOnServers(a, 0); acts != 0 {
		t.Fatalf("activated %d servers despite prohibitive cost", acts)
	}
	if math.Abs(a.Profit()-before) > 1e-9 {
		t.Fatalf("failed experiment mutated the allocation: %v -> %v", before, a.Profit())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTurnOffKeepsNecessaryServers(t *testing.T) {
	scen := congestionScenario(t)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	// One heavy client per server; neither server can absorb both
	// (2 clients × λ̃·t = 1.5 work each → 3.0 total vs stability on Cp=4
	// possible, but delay explodes). TurnOff must not force a merge that
	// hurts profit.
	for i, srv := range []model.ServerID{0, 1} {
		p := []alloc.Portion{{Server: srv, Alpha: 1, ProcShare: 0.9, CommShare: 0.9}}
		if err := a.Assign(model.ClientID(i), 0, p); err != nil {
			t.Fatal(err)
		}
	}
	before := a.Profit()
	s.TurnOffServers(a, 0)
	if a.Profit() < before-1e-9 {
		t.Fatalf("TurnOff decreased profit: %v -> %v", before, a.Profit())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustResourceSharesImprovesSkewedShares(t *testing.T) {
	scen := consolidationScenario(t)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	// Both clients on server 0 with deliberately lopsided shares.
	if err := a.Assign(0, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.85, CommShare: 0.85}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(1, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.05, CommShare: 0.05}}); err != nil {
		t.Fatal(err)
	}
	before := a.Profit()
	if !s.AdjustResourceShares(a, 0) {
		t.Fatal("share adjustment did not change anything")
	}
	if a.Profit() <= before {
		t.Fatalf("share adjustment did not improve profit: %v -> %v", before, a.Profit())
	}
	// Identical clients should now have (nearly) identical shares.
	p0 := a.Portions(0)[0]
	p1 := a.Portions(1)[0]
	if math.Abs(p0.ProcShare-p1.ProcShare) > 1e-6 {
		t.Fatalf("symmetric clients got %v and %v", p0.ProcShare, p1.ProcShare)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustDispersionRatesImprovesSkewedSplit(t *testing.T) {
	scen := consolidationScenario(t)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	// One client split 90/10 across two identical servers with equal
	// shares; the optimum is 50/50.
	p := []alloc.Portion{
		{Server: 0, Alpha: 0.9, ProcShare: 0.5, CommShare: 0.5},
		{Server: 1, Alpha: 0.1, ProcShare: 0.5, CommShare: 0.5},
	}
	if err := a.Assign(0, 0, p); err != nil {
		t.Fatal(err)
	}
	before := a.Profit()
	if !s.AdjustDispersionRates(a, 0) {
		t.Fatal("dispersion adjustment did not change anything")
	}
	if a.Profit() <= before {
		t.Fatalf("dispersion adjustment did not improve profit: %v -> %v", before, a.Profit())
	}
	ps := a.Portions(0)
	if len(ps) != 2 {
		t.Fatalf("portions = %v", ps)
	}
	if math.Abs(ps[0].Alpha-0.5) > 0.01 {
		t.Fatalf("α = %v, want ≈ 0.5", ps[0].Alpha)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustNoOpsOnTrivialCases(t *testing.T) {
	scen := consolidationScenario(t)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	if s.AdjustResourceShares(a, 0) {
		t.Fatal("empty server adjusted")
	}
	if s.AdjustDispersionRates(a, 0) {
		t.Fatal("unassigned client adjusted")
	}
	if err := a.Assign(0, 0, []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if s.AdjustDispersionRates(a, 0) {
		t.Fatal("single-portion client has nothing to adjust")
	}
}

func TestTurnOnRespectsDiskConstraint(t *testing.T) {
	scen := congestionScenario(t)
	// Shrink server 1's class... both servers share class 0, so instead
	// give the clients disk needs that fit server 0 (already placed) but
	// exceed a fresh server's remaining capacity when combined with the
	// other client's reservation. Here: each client needs 6 of the 10
	// disk units, so server 1 can host at most one of them; the scenario
	// stays feasible but the move generator must skip infeasible targets.
	scen.Clients[0].DiskNeed = 6
	scen.Clients[1].DiskNeed = 6
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	for i := 0; i < 2; i++ {
		p := []alloc.Portion{{Server: 0, Alpha: 1, ProcShare: 0.5, CommShare: 0.5}}
		if err := a.Assign(model.ClientID(i), 0, p); err != nil {
			// Disk on server 0 only fits one client at 6 units; place the
			// second on server 1 directly then.
			p[0].Server = 1
			if err := a.Assign(model.ClientID(i), 0, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := a.Profit()
	s.TurnOnServers(a, 0)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Profit() < before-1e-9 {
		t.Fatalf("TurnOn regressed profit: %v -> %v", before, a.Profit())
	}
}

func TestReassignmentPassNoOpOnOptimal(t *testing.T) {
	scen := consolidationScenario(t)
	s := newTestSolver(t, scen, nil)
	a, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	p := a.Profit()
	// A second pass over an already-converged solution must not change it.
	s.ReassignmentPass(a)
	if math.Abs(a.Profit()-p) > 1e-9 {
		t.Fatalf("pass on converged solution changed profit: %v -> %v", p, a.Profit())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// SolveFrom re-solves for this solver's scenario starting from a previous
// epoch's allocation instead of an empty cloud (paper Figure 3:
// "curr_state_k = state of the cluster at end of prev. epoch").
//
// prev may belong to a different scenario snapshot — typically the same
// cloud with drifted client arrival rates. Every client keeps its previous
// portions when they are still feasible under the new rates; clients whose
// old placement saturates are re-placed greedily; then the usual local
// search runs. Returns the allocation, stats and the number of clients
// that had to be re-placed.
func (s *Solver) SolveFrom(prev *alloc.Allocation) (*alloc.Allocation, Stats, error) {
	return s.SolveFromCtx(context.Background(), prev)
}

// SolveFromCtx is SolveFrom under a caller-provided context: the warm
// start records a solver.solve_from span (replay + re-placements +
// local search) parenting into the span carried by ctx — under the epoch
// controller this chains every epoch's solve into one trace per step.
func (s *Solver) SolveFromCtx(ctx context.Context, prev *alloc.Allocation) (*alloc.Allocation, Stats, error) {
	if prev == nil {
		return nil, Stats{}, errors.New("core: nil previous allocation")
	}
	prevScen := prev.Scenario()
	if prevScen.Cloud.NumServers() != s.scen.Cloud.NumServers() ||
		prevScen.NumClients() != s.scen.NumClients() {
		return nil, Stats{}, fmt.Errorf("core: previous allocation shape mismatch: %d/%d servers, %d/%d clients",
			prevScen.Cloud.NumServers(), s.scen.Cloud.NumServers(),
			prevScen.NumClients(), s.scen.NumClients())
	}
	sp, ctx := s.tel.startCtx(ctx, "solver.solve_from")
	sp.Attr("clients", s.scen.NumClients())
	defer sp.End()

	tGreedy := time.Now()
	a := alloc.New(s.scen)
	if s.tel != nil {
		a.Instrument(s.tel.set)
	}
	var displaced []model.ClientID
	for i := 0; i < s.scen.NumClients(); i++ {
		id := model.ClientID(i)
		if s.scen.Clients[i].PredictedRate == 0 {
			continue // departed since prev: drop the old placement, don't re-place
		}
		if !prev.Assigned(id) {
			displaced = append(displaced, id)
			continue
		}
		k := model.ClusterID(prev.ClusterOf(id))
		if err := a.Assign(id, k, prev.Portions(id)); err != nil {
			// The old shares no longer sustain the new rates (or disk
			// changed); re-place below once the keepers are in.
			displaced = append(displaced, id)
		}
	}
	var replaced int
	gs := s.newGreedyState(a, nil)
	gs.setRef(telemetry.RefFromContext(ctx))
	for _, id := range displaced {
		if err := s.placeBest(a, id, gs); err != nil {
			if errors.Is(err, ErrCannotPlace) {
				continue
			}
			return nil, Stats{}, err
		}
		replaced++
	}
	gs.flushTelemetry(s.tel)
	sp.Attr("replaced", replaced)

	stats := Stats{InitialProfit: a.Profit()}
	stats.Timings.Greedy = time.Since(tGreedy)
	s.ImproveLocalCtx(ctx, a, &stats)
	stats.FinalProfit = a.Profit()
	stats.Attribution.Initial = stats.InitialProfit
	stats.Attribution.Final = stats.FinalProfit
	stats.Unplaced = s.scen.NumClients() - a.NumAssigned()
	return a, stats, nil
}

package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/workload"
)

// smallScenario generates a paper-shaped scenario with n clients.
func smallScenario(t *testing.T, n int, seed int64) *model.Scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumClients = n
	cfg.Seed = seed
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

func newTestSolver(t *testing.T, scen *model.Scenario, mutate func(*Config)) *Solver {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSolver(scen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(nil, DefaultConfig()); err == nil {
		t.Fatal("nil scenario accepted")
	}
	scen := smallScenario(t, 5, 1)
	bad := DefaultConfig()
	bad.AlphaGranularity = 0
	if _, err := NewSolver(scen, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	bad2 := DefaultConfig()
	bad2.NumInitSolutions = 0
	if _, err := NewSolver(scen, bad2); err == nil {
		t.Fatal("zero init solutions accepted")
	}
}

func TestAssignDistributeProducesFeasiblePortions(t *testing.T) {
	scen := smallScenario(t, 10, 2)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	for i := 0; i < scen.NumClients(); i++ {
		id := model.ClientID(i)
		est, portions, err := s.AssignDistribute(a, id, 0)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if math.IsInf(est, 0) || math.IsNaN(est) {
			t.Fatalf("client %d: estimate %v", i, est)
		}
		var alphaSum float64
		for _, p := range portions {
			alphaSum += p.Alpha
			if scen.Cloud.Servers[p.Server].Cluster != 0 {
				t.Fatalf("portion outside requested cluster: %+v", p)
			}
		}
		if math.Abs(alphaSum-1) > 1e-9 {
			t.Fatalf("client %d: Σα = %v", i, alphaSum)
		}
		if err := a.Assign(id, 0, portions); err != nil {
			t.Fatalf("client %d: returned portions rejected: %v", i, err)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignDistributeUnknownCluster(t *testing.T) {
	scen := smallScenario(t, 3, 1)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	if _, _, err := s.AssignDistribute(a, 0, 99); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestAssignDistributeDoesNotMutate(t *testing.T) {
	scen := smallScenario(t, 5, 3)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	if _, _, err := s.AssignDistribute(a, 0, 1); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 0 || a.NumActiveServers() != 0 {
		t.Fatal("AssignDistribute mutated the allocation")
	}
}

func TestInitialSolutionAssignsEveryone(t *testing.T) {
	scen := smallScenario(t, 40, 4)
	// Without admission control the greedy must place every client the
	// cloud can feasibly host (paper constraint (6)).
	s := newTestSolver(t, scen, func(c *Config) { c.AdmissionControl = false })
	a, err := s.InitialSolution(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NumAssigned(); got != 40 {
		t.Fatalf("assigned %d of 40 clients", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Profit() <= 0 {
		t.Fatalf("initial profit %v should be positive on a paper-shaped instance", a.Profit())
	}
}

func TestSolveImprovesOnInitial(t *testing.T) {
	scen := smallScenario(t, 50, 5)
	s := newTestSolver(t, scen, nil)
	a, stats, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.FinalProfit < stats.InitialProfit-1e-9 {
		t.Fatalf("local search regressed: initial %v final %v", stats.InitialProfit, stats.FinalProfit)
	}
	if math.Abs(a.Profit()-stats.FinalProfit) > 1e-9 {
		t.Fatalf("stats profit %v != allocation profit %v", stats.FinalProfit, a.Profit())
	}
	if stats.LocalSearchIters == 0 {
		t.Fatal("local search did not run")
	}
	if stats.Elapsed <= 0 {
		t.Fatal("elapsed time not recorded")
	}
}

func TestSolveDeterministic(t *testing.T) {
	scen := smallScenario(t, 30, 6)
	s1 := newTestSolver(t, scen, nil)
	s2 := newTestSolver(t, scen, nil)
	a1, _, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.Profit()-a2.Profit()) > 1e-12 {
		t.Fatalf("same seed, different profit: %v vs %v", a1.Profit(), a2.Profit())
	}
}

func TestSolveParallelMatchesSequential(t *testing.T) {
	scen := smallScenario(t, 30, 7)
	seq := newTestSolver(t, scen, nil)
	par := newTestSolver(t, scen, func(c *Config) { c.Parallel = true })
	a1, _, err := seq.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := par.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.Profit()-a2.Profit()) > 1e-9 {
		t.Fatalf("parallel %v != sequential %v", a2.Profit(), a1.Profit())
	}
	if err := a2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveOverloadedCloudDegradesGracefully(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumClients = 120
	cfg.MinServersPerCluster = 1
	cfg.MaxServersPerCluster = 2
	cfg.Seed = 8
	scen, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSolver(t, scen, nil)
	a, stats, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Unplaced == 0 {
		t.Log("note: overloaded cloud still placed everyone (tight but feasible)")
	}
	if a.NumAssigned()+stats.Unplaced != scen.NumClients() {
		t.Fatalf("assigned %d + unplaced %d != %d", a.NumAssigned(), stats.Unplaced, scen.NumClients())
	}
}

func TestAblationSwitchesRespected(t *testing.T) {
	scen := smallScenario(t, 25, 9)
	full := newTestSolver(t, scen, nil)
	crippled := newTestSolver(t, scen, func(c *Config) {
		c.DisableShareAdjust = true
		c.DisableDispersionAdjust = true
		c.DisableTurnOn = true
		c.DisableTurnOff = true
	})
	af, sf, err := full.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ac, sc, err := crippled.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// With every phase disabled the local search must be a no-op.
	if math.Abs(sc.FinalProfit-sc.InitialProfit) > 1e-9 {
		t.Fatalf("disabled local search still changed profit: %v -> %v", sc.InitialProfit, sc.FinalProfit)
	}
	if af.Profit() < ac.Profit()-1e-9 {
		t.Fatalf("full solver (%v) worse than crippled (%v)", sf.FinalProfit, ac.Profit())
	}
}

func TestPlaceBestRejectsWhenFull(t *testing.T) {
	// One cluster, one tiny server, one client that cannot fit its disk.
	scen := &model.Scenario{
		Cloud: model.Cloud{
			ServerClasses:  []model.ServerClass{{ID: 0, ProcCap: 4, StoreCap: 0.1, CommCap: 4, FixedCost: 1, UtilizationCost: 1}},
			UtilityClasses: []model.UtilityClass{{ID: 0, Base: 4, Slope: 0.5}},
			Clusters:       []model.Cluster{{ID: 0, Servers: []model.ServerID{0}}},
			Servers:        []model.Server{{ID: 0, Class: 0, Cluster: 0}},
		},
		Clients: []model.Client{{
			ID: 0, Class: 0, ArrivalRate: 1, PredictedRate: 1,
			ProcTime: 0.5, CommTime: 0.5, DiskNeed: 1,
		}},
	}
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	if _, _, err := s.AssignDistribute(a, 0, 0); !errors.Is(err, ErrCannotPlace) {
		t.Fatalf("err = %v, want ErrCannotPlace", err)
	}
	sol, stats, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unplaced != 1 || sol.NumAssigned() != 0 {
		t.Fatalf("unplaceable client was placed: %+v", stats)
	}
}

func TestTxnRollbackRestoresFirstSnapshot(t *testing.T) {
	scen := smallScenario(t, 5, 51)
	s := newTestSolver(t, scen, nil)
	a := alloc.New(scen)
	if err := s.placeBest(a, 0, nil); err != nil {
		t.Fatal(err)
	}
	origK := a.ClusterOf(0)
	origPortions := a.Portions(0)
	origProfit := a.Profit()

	txn := a.Begin()
	txn.Capture(0)
	// Mutate twice; capture again in between (must be a no-op snapshot).
	otherK := model.ClusterID((origK + 1) % scen.Cloud.NumClusters())
	if _, portions, err := s.AssignDistribute(func() *alloc.Allocation { a.Unassign(0); return a }(), 0, otherK); err == nil {
		_ = a.Assign(0, otherK, portions)
	}
	txn.Capture(0)
	a.Unassign(0)

	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if a.ClusterOf(0) != origK {
		t.Fatalf("rollback restored cluster %d, want %d", a.ClusterOf(0), origK)
	}
	got := a.Portions(0)
	if len(got) != len(origPortions) {
		t.Fatalf("portions %v, want %v", got, origPortions)
	}
	if math.Abs(a.Profit()-origProfit) > 1e-12 {
		t.Fatalf("profit %v, want %v", a.Profit(), origProfit)
	}
	if delta := txn.Delta(); math.Abs(delta) > 1e-12 {
		t.Fatalf("delta after rollback = %v, want 0", delta)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

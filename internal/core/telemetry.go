package core

import (
	"context"

	"repro/internal/telemetry"
)

// Phase labels used by the solver's metrics and spans.
const (
	phaseGreedy     = "greedy"
	phaseShare      = "share_adjust"
	phaseDispersion = "dispersion_adjust"
	phaseTurnOn     = "turn_on"
	phaseTurnOff    = "turn_off"
	phaseReassign   = "reassign"

	// Sub-phases of the pipelined reassignment pass (reassign.go):
	// parallel candidate scoring, the serial commit loop, and the
	// rescoring of candidates invalidated by earlier commits.
	phaseReassignScore   = "reassign_score"
	phaseReassignCommit  = "reassign_commit"
	phaseReassignRescore = "reassign_rescore"
)

// solverTel bundles the solver's pre-resolved metric handles so the hot
// path never performs registry lookups. A nil *solverTel is the
// disabled state: callers guard with `s.tel != nil` (spans/timing) or
// rely on the handles' own nil-safety (counters).
type solverTel struct {
	set *telemetry.Set
	// flight is the set's flight recorder (flight.go): typed placement /
	// pruning / commit-failure events, deterministically sampled by
	// client ID. A nil *Flight is a valid no-op recorder.
	flight *telemetry.Flight

	solves *telemetry.Counter
	rounds *telemetry.Counter

	greedyDur     *telemetry.Histogram
	roundDur      *telemetry.Histogram
	shareDur      *telemetry.Histogram
	dispersionDur *telemetry.Histogram
	turnOnDur     *telemetry.Histogram
	turnOffDur    *telemetry.Histogram
	reassignDur   *telemetry.Histogram

	reassignScoreDur   *telemetry.Histogram
	reassignCommitDur  *telemetry.Histogram
	reassignRescoreDur *telemetry.Histogram

	reassignScored       *telemetry.Counter
	reassignSkipped      *telemetry.Counter
	reassignRescores     *telemetry.Counter
	reassignCommitFails  *telemetry.Counter
	reassignRestoreFails *telemetry.Counter

	// Candidate-index instrumentation (candidates.go, alloc.Index):
	// exact evaluations performed after pruning vs clusters skipped via
	// the gain upper bound / feasibility screens / top-k cutoff.
	indexEvaluated *telemetry.Counter
	indexPruned    *telemetry.Counter

	shareMoves      *telemetry.Counter
	shareAccepts    *telemetry.Counter
	dispMoves       *telemetry.Counter
	dispAccepts     *telemetry.Counter
	activations     *telemetry.Counter
	deactivations   *telemetry.Counter
	reassignments   *telemetry.Counter
	unplacedClients *telemetry.Gauge

	shareDelta    *telemetry.Gauge
	dispDelta     *telemetry.Gauge
	turnOnDelta   *telemetry.Gauge
	turnOffDelta  *telemetry.Gauge
	reassignDelta *telemetry.Gauge
}

// newSolverTel resolves every handle once; nil in, nil out.
func newSolverTel(set *telemetry.Set) *solverTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("solver_phase_seconds", "time spent in each Resource_Alloc phase")
	set.Metrics.Help("solver_moves_total", "local-search moves attempted per phase")
	set.Metrics.Help("solver_moves_accepted_total", "local-search moves accepted per phase")
	set.Metrics.Help("solver_profit_delta_total", "cumulative profit change contributed per phase")
	set.Metrics.Help("solver_reassign_scored_total", "clients whose reassignment candidates were (re)scored")
	set.Metrics.Help("solver_reassign_dirty_skipped_total", "clients that skipped reassignment scoring because their clusters were clean")
	set.Metrics.Help("solver_reassign_rescores_total", "reassignment candidates rescored after an earlier commit dirtied their clusters")
	set.Metrics.Help("solver_reassign_commit_failures_total", "reassignment commits rejected by the allocation despite a feasible score")
	set.Metrics.Help("solver_reassign_restore_failures_total", "clients left unserved because restoring their previous placement failed after a rejected move")
	set.Metrics.Help("solver_index_evaluated_total", "candidate clusters evaluated exactly after index pruning")
	set.Metrics.Help("solver_index_pruned_total", "candidate clusters skipped by the index's gain upper bound, feasibility screens or top-k cutoff")
	phaseDur := func(phase string) *telemetry.Histogram {
		return set.Histogram(telemetry.Name("solver_phase_seconds", "phase", phase), telemetry.DurationBuckets)
	}
	phaseDelta := func(phase string) *telemetry.Gauge {
		return set.Gauge(telemetry.Name("solver_profit_delta_total", "phase", phase))
	}
	return &solverTel{
		set:    set,
		flight: set.FlightRecorder(),
		solves: set.Counter("solver_solves_total"),
		rounds: set.Counter("solver_local_search_rounds_total"),

		greedyDur:     phaseDur(phaseGreedy),
		roundDur:      set.Histogram("solver_round_seconds", telemetry.DurationBuckets),
		shareDur:      phaseDur(phaseShare),
		dispersionDur: phaseDur(phaseDispersion),
		turnOnDur:     phaseDur(phaseTurnOn),
		turnOffDur:    phaseDur(phaseTurnOff),
		reassignDur:   phaseDur(phaseReassign),

		reassignScoreDur:   phaseDur(phaseReassignScore),
		reassignCommitDur:  phaseDur(phaseReassignCommit),
		reassignRescoreDur: phaseDur(phaseReassignRescore),

		reassignScored:       set.Counter("solver_reassign_scored_total"),
		reassignSkipped:      set.Counter("solver_reassign_dirty_skipped_total"),
		reassignRescores:     set.Counter("solver_reassign_rescores_total"),
		reassignCommitFails:  set.Counter("solver_reassign_commit_failures_total"),
		reassignRestoreFails: set.Counter("solver_reassign_restore_failures_total"),

		indexEvaluated: set.Counter("solver_index_evaluated_total"),
		indexPruned:    set.Counter("solver_index_pruned_total"),

		shareMoves:      set.Counter(telemetry.Name("solver_moves_total", "phase", phaseShare)),
		shareAccepts:    set.Counter(telemetry.Name("solver_moves_accepted_total", "phase", phaseShare)),
		dispMoves:       set.Counter(telemetry.Name("solver_moves_total", "phase", phaseDispersion)),
		dispAccepts:     set.Counter(telemetry.Name("solver_moves_accepted_total", "phase", phaseDispersion)),
		activations:     set.Counter("solver_activations_total"),
		deactivations:   set.Counter("solver_deactivations_total"),
		reassignments:   set.Counter("solver_reassignments_total"),
		unplacedClients: set.Gauge("solver_unplaced_clients"),

		shareDelta:    phaseDelta(phaseShare),
		dispDelta:     phaseDelta(phaseDispersion),
		turnOnDelta:   phaseDelta(phaseTurnOn),
		turnOffDelta:  phaseDelta(phaseTurnOff),
		reassignDelta: phaseDelta(phaseReassign),
	}
}

// startCtx opens a span as a child of the span in ctx; inert (and ctx
// unchanged) when disabled.
func (t *solverTel) startCtx(ctx context.Context, name string) (telemetry.Span, context.Context) {
	if t == nil {
		return telemetry.Span{}, ctx
	}
	return t.set.StartCtx(ctx, name)
}

// startCtxAt is startCtx with an explicit child index: fan-out sites
// (per-shard spans) pass their task index so the span ID is independent
// of goroutine scheduling.
func (t *solverTel) startCtxAt(ctx context.Context, name string, index int) (telemetry.Span, context.Context) {
	if t == nil {
		return telemetry.Span{}, ctx
	}
	return t.set.Tracer.StartCtxAt(ctx, name, index)
}

// flightRec returns the flight recorder; nil when telemetry is off.
func (t *solverTel) flightRec() *telemetry.Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

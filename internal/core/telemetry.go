package core

import (
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Phase labels used by the solver's metrics and spans.
const (
	phaseGreedy     = "greedy"
	phaseShare      = "share_adjust"
	phaseDispersion = "dispersion_adjust"
	phaseTurnOn     = "turn_on"
	phaseTurnOff    = "turn_off"
	phaseReassign   = "reassign"

	// Sub-phases of the pipelined reassignment pass (reassign.go):
	// parallel candidate scoring, the serial commit loop, and the
	// rescoring of candidates invalidated by earlier commits.
	phaseReassignScore   = "reassign_score"
	phaseReassignCommit  = "reassign_commit"
	phaseReassignRescore = "reassign_rescore"
)

// solverTel bundles the solver's pre-resolved metric handles so the hot
// path never performs registry lookups. A nil *solverTel is the
// disabled state: callers guard with `s.tel != nil` (spans/timing) or
// rely on the handles' own nil-safety (counters).
type solverTel struct {
	set *telemetry.Set

	solves *telemetry.Counter
	rounds *telemetry.Counter

	greedyDur     *telemetry.Histogram
	roundDur      *telemetry.Histogram
	shareDur      *telemetry.Histogram
	dispersionDur *telemetry.Histogram
	turnOnDur     *telemetry.Histogram
	turnOffDur    *telemetry.Histogram
	reassignDur   *telemetry.Histogram

	reassignScoreDur   *telemetry.Histogram
	reassignCommitDur  *telemetry.Histogram
	reassignRescoreDur *telemetry.Histogram

	reassignScored       *telemetry.Counter
	reassignSkipped      *telemetry.Counter
	reassignRescores     *telemetry.Counter
	reassignCommitFails  *telemetry.Counter
	reassignRestoreFails *telemetry.Counter

	// Candidate-index instrumentation (candidates.go, alloc.Index):
	// exact evaluations performed after pruning vs clusters skipped via
	// the gain upper bound / feasibility screens / top-k cutoff.
	indexEvaluated *telemetry.Counter
	indexPruned    *telemetry.Counter

	shareMoves      *telemetry.Counter
	shareAccepts    *telemetry.Counter
	dispMoves       *telemetry.Counter
	dispAccepts     *telemetry.Counter
	activations     *telemetry.Counter
	deactivations   *telemetry.Counter
	reassignments   *telemetry.Counter
	unplacedClients *telemetry.Gauge

	shareDelta    *telemetry.Gauge
	dispDelta     *telemetry.Gauge
	turnOnDelta   *telemetry.Gauge
	turnOffDelta  *telemetry.Gauge
	reassignDelta *telemetry.Gauge
}

// newSolverTel resolves every handle once; nil in, nil out.
func newSolverTel(set *telemetry.Set) *solverTel {
	if set == nil {
		return nil
	}
	set.Metrics.Help("solver_phase_seconds", "time spent in each Resource_Alloc phase")
	set.Metrics.Help("solver_moves_total", "local-search moves attempted per phase")
	set.Metrics.Help("solver_moves_accepted_total", "local-search moves accepted per phase")
	set.Metrics.Help("solver_profit_delta_total", "cumulative profit change contributed per phase")
	set.Metrics.Help("solver_reassign_scored_total", "clients whose reassignment candidates were (re)scored")
	set.Metrics.Help("solver_reassign_dirty_skipped_total", "clients that skipped reassignment scoring because their clusters were clean")
	set.Metrics.Help("solver_reassign_rescores_total", "reassignment candidates rescored after an earlier commit dirtied their clusters")
	set.Metrics.Help("solver_reassign_commit_failures_total", "reassignment commits rejected by the allocation despite a feasible score")
	set.Metrics.Help("solver_reassign_restore_failures_total", "clients left unserved because restoring their previous placement failed after a rejected move")
	set.Metrics.Help("solver_index_evaluated_total", "candidate clusters evaluated exactly after index pruning")
	set.Metrics.Help("solver_index_pruned_total", "candidate clusters skipped by the index's gain upper bound, feasibility screens or top-k cutoff")
	phaseDur := func(phase string) *telemetry.Histogram {
		return set.Histogram(telemetry.Name("solver_phase_seconds", "phase", phase), telemetry.DurationBuckets)
	}
	phaseDelta := func(phase string) *telemetry.Gauge {
		return set.Gauge(telemetry.Name("solver_profit_delta_total", "phase", phase))
	}
	return &solverTel{
		set:    set,
		solves: set.Counter("solver_solves_total"),
		rounds: set.Counter("solver_local_search_rounds_total"),

		greedyDur:     phaseDur(phaseGreedy),
		roundDur:      set.Histogram("solver_round_seconds", telemetry.DurationBuckets),
		shareDur:      phaseDur(phaseShare),
		dispersionDur: phaseDur(phaseDispersion),
		turnOnDur:     phaseDur(phaseTurnOn),
		turnOffDur:    phaseDur(phaseTurnOff),
		reassignDur:   phaseDur(phaseReassign),

		reassignScoreDur:   phaseDur(phaseReassignScore),
		reassignCommitDur:  phaseDur(phaseReassignCommit),
		reassignRescoreDur: phaseDur(phaseReassignRescore),

		reassignScored:       set.Counter("solver_reassign_scored_total"),
		reassignSkipped:      set.Counter("solver_reassign_dirty_skipped_total"),
		reassignRescores:     set.Counter("solver_reassign_rescores_total"),
		reassignCommitFails:  set.Counter("solver_reassign_commit_failures_total"),
		reassignRestoreFails: set.Counter("solver_reassign_restore_failures_total"),

		indexEvaluated: set.Counter("solver_index_evaluated_total"),
		indexPruned:    set.Counter("solver_index_pruned_total"),

		shareMoves:      set.Counter(telemetry.Name("solver_moves_total", "phase", phaseShare)),
		shareAccepts:    set.Counter(telemetry.Name("solver_moves_accepted_total", "phase", phaseShare)),
		dispMoves:       set.Counter(telemetry.Name("solver_moves_total", "phase", phaseDispersion)),
		dispAccepts:     set.Counter(telemetry.Name("solver_moves_accepted_total", "phase", phaseDispersion)),
		activations:     set.Counter("solver_activations_total"),
		deactivations:   set.Counter("solver_deactivations_total"),
		reassignments:   set.Counter("solver_reassignments_total"),
		unplacedClients: set.Gauge("solver_unplaced_clients"),

		shareDelta:    phaseDelta(phaseShare),
		dispDelta:     phaseDelta(phaseDispersion),
		turnOnDelta:   phaseDelta(phaseTurnOn),
		turnOffDelta:  phaseDelta(phaseTurnOff),
		reassignDelta: phaseDelta(phaseReassign),
	}
}

// start opens a span on the underlying tracer; inert when disabled.
func (t *solverTel) start(name string) telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	return t.set.Start(name)
}

// clusterPassInstrumented is the telemetry-enabled twin of the inline
// cluster sweep in improvePass: identical moves, plus per-phase timing,
// move-acceptance counters and profit-delta gauges. It reads profit only
// through ClusterProfit(k), so it stays safe under the solver's
// per-cluster parallelism.
func (s *Solver) clusterPassInstrumented(a *alloc.Allocation, kid model.ClusterID, members []model.ClientID) (acts, deacts int) {
	tel := s.tel
	if !s.cfg.DisableShareAdjust {
		t0 := time.Now()
		before := a.ClusterProfit(kid)
		var accepted int64
		servers := s.scen.Cloud.ClusterServers(kid)
		for _, j := range servers {
			if s.AdjustResourceShares(a, j) {
				accepted++
			}
		}
		tel.shareDur.ObserveSince(t0)
		tel.shareMoves.Add(int64(len(servers)))
		tel.shareAccepts.Add(accepted)
		tel.shareDelta.Add(a.ClusterProfit(kid) - before)
	}
	if !s.cfg.DisableDispersionAdjust {
		t0 := time.Now()
		before := a.ClusterProfit(kid)
		var accepted int64
		for _, id := range members {
			if s.AdjustDispersionRates(a, id) {
				accepted++
			}
		}
		tel.dispersionDur.ObserveSince(t0)
		tel.dispMoves.Add(int64(len(members)))
		tel.dispAccepts.Add(accepted)
		tel.dispDelta.Add(a.ClusterProfit(kid) - before)
	}
	if !s.cfg.DisableTurnOn {
		t0 := time.Now()
		before := a.ClusterProfit(kid)
		acts = s.turnOnServers(a, kid, members)
		tel.turnOnDur.ObserveSince(t0)
		tel.activations.Add(int64(acts))
		tel.turnOnDelta.Add(a.ClusterProfit(kid) - before)
	}
	if !s.cfg.DisableTurnOff {
		t0 := time.Now()
		before := a.ClusterProfit(kid)
		deacts = s.turnOffServers(a, kid)
		tel.turnOffDur.ObserveSince(t0)
		tel.deactivations.Add(int64(deacts))
		tel.turnOffDelta.Add(a.ClusterProfit(kid) - before)
	}
	return acts, deacts
}

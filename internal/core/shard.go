package core

import (
	"context"
	"math"
	"time"

	"repro/internal/alloc"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Sharded solve (Config.Shards > 1): the clusters are partitioned into
// contiguous shards that build and improve the solution independently on
// the fan-out pool, so one allocation arena can absorb 100k–1M clients
// without every phase scanning the whole cloud.
//
// Safety is inherited from the allocation's per-cluster ownership
// discipline: every mutation (Assign/Unassign, ledger settles, version
// bumps) is confined to the touched cluster, each client is owned by
// exactly one shard at any time (the shard of its current cluster, or of
// its statically routed cluster while unassigned), and shard-scoped
// transactions (BeginClusters) and version folds (ClusterVersionSumOf)
// never read another shard's ledgers or counters. Cross-shard moves only
// happen in the serial reconciliation pass between rounds, when no shard
// goroutine is running.
//
// Determinism: shard membership, per-shard client order (seed-split RNG
// per shard), per-shard commit order, and the serial reconciliation are
// all independent of the worker count, so the solve is bit-identical for
// W=1 and W=N — the same property the unsharded fan-outs guarantee.
type shardPlan struct {
	clusters [][]model.ClusterID // shard -> owned clusters
	byTopKey []int               // client -> statically routed shard
	owner    [][]model.ClientID  // shard -> currently owned clients (rebuilt per round)
	shardOf  []int               // cluster -> shard
}

// planShards partitions the clusters contiguously and routes the
// clients round-robin across the shards. Round-robin — not
// best-bound-first — because on an empty cloud the gain bound is
// dominated by the clusters' static costs, which are the same for every
// client: attractiveness-based routing would herd the whole population
// onto the shard owning the statically cheapest cluster, overloading it
// while the rest of the cloud idles. Uniform routing keeps the load
// balanced (the scale workloads draw clusters i.i.d.), and the
// reconciliation pass corrects the residual imbalance. The routing is
// static: it only depends on client IDs.
func (s *Solver) planShards(a *alloc.Allocation, numShards int) *shardPlan {
	numK := s.scen.Cloud.NumClusters()
	if numShards > numK {
		numShards = numK
	}
	p := &shardPlan{
		clusters: make([][]model.ClusterID, numShards),
		byTopKey: make([]int, s.scen.NumClients()),
		owner:    make([][]model.ClientID, numShards),
		shardOf:  make([]int, numK),
	}
	for sh := 0; sh < numShards; sh++ {
		lo, hi := sh*numK/numShards, (sh+1)*numK/numShards
		for k := lo; k < hi; k++ {
			p.clusters[sh] = append(p.clusters[sh], model.ClusterID(k))
			p.shardOf[k] = sh
		}
	}
	for i := range p.byTopKey {
		p.byTopKey[i] = i % numShards
	}
	return p
}

// rebuildOwners recomputes each shard's client set: the shard of the
// client's current cluster, or its static route while unassigned. Must
// run serially (reads every client's assignment).
func (p *shardPlan) rebuildOwners(a *alloc.Allocation) {
	for sh := range p.owner {
		p.owner[sh] = p.owner[sh][:0]
	}
	for i := range p.byTopKey {
		id := model.ClientID(i)
		sh := p.byTopKey[i]
		if k := a.ClusterOf(id); k != alloc.Unassigned {
			sh = p.shardOf[k]
		}
		p.owner[sh] = append(p.owner[sh], id)
	}
}

// solveSharded is the sharded twin of Solve. Per-shard spans are started
// with the shard index as the explicit child index (StartCtxAt), so the
// span tree — IDs included — is identical at any worker count.
func (s *Solver) solveSharded(ctx context.Context) (*alloc.Allocation, Stats, error) {
	start := time.Now()
	sp, ctx := s.tel.startCtx(ctx, "solver.solve_sharded")
	if s.tel != nil {
		s.tel.solves.Inc()
		sp.Attr("clients", s.scen.NumClients())
		sp.Attr("shards", s.cfg.Shards)
	}

	a := alloc.New(s.scen)
	if s.tel != nil {
		a.Instrument(s.tel.set)
	}
	plan := s.planShards(a, s.cfg.Shards)
	numShards := len(plan.clusters)
	workers := parallel.Bound(s.cfg.Workers, numShards)
	opts := parallel.Options{Workers: workers, Phase: "shard"}
	if s.tel != nil {
		opts.Tel = s.tel.set
	}

	// Phase 1: parallel greedy. Each shard places its routed clients on
	// its own clusters in a seed-split random order. One greedy start per
	// shard: the multi-start diversification buys little once the cloud
	// is sliced, and at shard scale one pass is the budget.
	tGreedy := time.Now()
	gsp, gctx := s.tel.startCtx(ctx, "solver.greedy")
	plan.rebuildOwners(a)
	gss := make([]*greedyState, numShards)
	gopts := opts
	gopts.Ctx = gctx
	parallel.For(gopts, numShards, func(w, sh int) {
		ssp, sctx := s.tel.startCtxAt(gctx, "solver.shard_greedy", sh)
		ssp.Attr("shard", sh)
		gs := s.newGreedyState(a, plan.clusters[sh])
		gs.setRef(telemetry.RefFromContext(sctx))
		gss[sh] = gs
		rng := parallel.Rand(s.cfg.Seed, uint64(sh))
		clients := plan.owner[sh]
		for _, idx := range rng.Perm(len(clients)) {
			// ErrCannotPlace is expected (the client may only fit on another
			// shard; reconciliation will pick it up).
			_ = s.placeBest(a, clients[idx], gs)
		}
		ssp.End()
	})
	for _, gs := range gss {
		gs.flushTelemetry(s.tel)
	}
	if s.tel != nil {
		s.tel.greedyDur.ObserveSince(tGreedy)
	}
	gsp.End()
	stats := Stats{InitialProfit: a.Profit()}
	stats.Timings.Greedy = time.Since(tGreedy)

	// Phase 2: improvement rounds. Each round runs the per-cluster
	// sweeps and a shard-scoped reassignment pass on every shard in
	// parallel, then a serial whole-cloud reassignment pass that
	// reconciles shard boundaries (the only place clients cross shards).
	prev := stats.InitialProfit
	for iter := 0; iter < s.cfg.MaxLocalSearchIters; iter++ {
		stats.LocalSearchIters = iter + 1
		rsp, rctx := s.tel.startCtx(ctx, "solver.shard_round")
		var t0 time.Time
		if s.tel != nil {
			t0 = time.Now()
			s.tel.rounds.Inc()
			rsp.Attr("round", iter+1)
		}
		members := s.clusterMembers(a)
		plan.rebuildOwners(a)
		acts := make([]int, numShards)
		deacts := make([]int, numShards)
		moves := make([]int, numShards)
		deltas := make([]sweepDeltas, numShards)
		reassignDelta := make([]float64, numShards)
		sweepNanos := make([]int64, numShards)
		reassignNanos := make([]int64, numShards)
		ropts := opts
		ropts.Ctx = rctx
		parallel.For(ropts, numShards, func(w, sh int) {
			ssp, sctx := s.tel.startCtxAt(rctx, "solver.shard_sweep", sh)
			ssp.Attr("shard", sh)
			tSweep := time.Now()
			for _, kid := range plan.clusters[sh] {
				ak, dk, dd := s.sweepCluster(a, kid, members[kid])
				acts[sh] += ak
				deacts[sh] += dk
				deltas[sh].add(dd)
			}
			sweepNanos[sh] = int64(time.Since(tSweep))
			if !s.cfg.DisableReassign {
				tr := time.Now()
				// Profit reads stay within the shard's own clusters, so they
				// are safe inside the shard goroutine.
				before := s.clustersProfit(a, plan.clusters[sh])
				moves[sh] = s.reassignScoped(sctx, a, plan.owner[sh], plan.clusters[sh])
				reassignDelta[sh] = s.clustersProfit(a, plan.clusters[sh]) - before
				reassignNanos[sh] = int64(time.Since(tr))
			}
			ssp.End()
		})
		for sh := 0; sh < numShards; sh++ {
			stats.Activations += acts[sh]
			stats.Deactivations += deacts[sh]
			stats.Reassignments += moves[sh]
			stats.Attribution.ShareAdjust += deltas[sh].share
			stats.Attribution.DispersionAdjust += deltas[sh].disp
			stats.Attribution.TurnOn += deltas[sh].turnOn
			stats.Attribution.TurnOff += deltas[sh].turnOff
			stats.Attribution.Reassign += reassignDelta[sh]
			stats.Timings.Sweep += time.Duration(sweepNanos[sh])
			stats.Timings.Reassign += time.Duration(reassignNanos[sh])
		}
		if !s.cfg.DisableReassign {
			// Serial boundary reconciliation: clients are scored against the
			// whole cloud, so profitable cross-shard moves happen here. The
			// flight recorder logs the (sampled) moves as reconcile_move.
			tr := time.Now()
			before := a.Profit()
			moved := s.reassignmentPass(rctx, a, true)
			stats.Reassignments += moved
			delta := a.Profit() - before
			stats.Attribution.Reconcile += delta
			stats.Timings.Reconcile += time.Since(tr)
			if s.tel != nil {
				s.tel.reassignDur.ObserveSince(tr)
				s.tel.reassignments.Add(int64(moved))
				s.tel.reassignDelta.Add(delta)
			}
		}
		p := a.Profit()
		if s.tel != nil {
			s.tel.roundDur.ObserveSince(t0)
			rsp.Attr("profit", p)
			rsp.Attr("delta", p-prev)
		}
		rsp.End()
		if p-prev <= s.cfg.Tolerance*(1+absf(prev)) {
			break
		}
		prev = p
	}

	stats.FinalProfit = a.Profit()
	stats.Attribution.Initial = stats.InitialProfit
	stats.Attribution.Final = stats.FinalProfit
	stats.Unplaced = s.scen.NumClients() - a.NumAssigned()
	stats.Elapsed = time.Since(start)
	if s.tel != nil {
		s.tel.unplacedClients.Set(float64(stats.Unplaced))
		sp.Attr("final_profit", stats.FinalProfit)
		sp.Attr("rounds", stats.LocalSearchIters)
	}
	sp.End()
	return a, stats, nil
}

// clustersProfit folds the given clusters' ledger profits (each read is
// O(entries touched since the last read) and confined to that cluster).
func (s *Solver) clustersProfit(a *alloc.Allocation, clusters []model.ClusterID) float64 {
	var p float64
	for _, k := range clusters {
		p += a.ClusterProfit(k)
	}
	return p
}

// reassignScoped is the shard-local reassignment pass: score the shard's
// clients against the shard's clusters only, then commit improving moves
// serially in descending-delta order through shard-scoped transactions.
// It runs inside a shard goroutine, so everything it reads or writes —
// exclusion views, candidate index, transactions, version counters —
// stays within the shard's clusters.
func (s *Solver) reassignScoped(ctx context.Context, a *alloc.Allocation, clients []model.ClientID, clusters []model.ClusterID) int {
	ref := telemetry.RefFromContext(ctx)
	outGain := math.Inf(-1)
	if s.cfg.AdmissionControl {
		outGain = 0
	}
	var ix *alloc.Index
	if k := s.cfg.CandidateClusters; k > 0 && k < len(clusters) {
		ix = alloc.NewIndex(a)
		ix.RefreshClusters(clusters)
	}

	var ws reassignScratch
	var heap []reassignCand
	var ixEvaluated, ixPruned int64
	for _, i := range clients {
		r := s.scoreClient(a, i, outGain, &ws, ix, clusters)
		ixEvaluated += r.evaluated
		ixPruned += r.pruned
		if r.hasCand {
			heap = candPush(heap, r.cand)
		}
	}

	var moves int
	var restoreFails int64
	for len(heap) > 0 {
		var c reassignCand
		heap, c = candPop(heap)
		if (c.fromK >= 0 && a.ClusterVersion(model.ClusterID(c.fromK)) != c.fromVer) ||
			(c.toK >= 0 && a.ClusterVersion(model.ClusterID(c.toK)) != c.toVer) {
			if ix != nil {
				ix.RefreshClusters(clusters)
			}
			r := s.scoreClient(a, c.client, outGain, &ws, ix, clusters)
			ixEvaluated += r.evaluated
			ixPruned += r.pruned
			if r.hasCand {
				heap = candPush(heap, r.cand)
			}
			continue
		}

		// Scope the transaction to exactly the clusters the move touches,
		// so no other shard's ledger is read or settled.
		var txn *alloc.Txn
		switch {
		case c.fromK >= 0 && c.toK >= 0 && c.fromK != c.toK:
			txn = a.BeginClusters(model.ClusterID(c.fromK), model.ClusterID(c.toK))
		case c.fromK >= 0:
			txn = a.BeginClusters(model.ClusterID(c.fromK))
		default:
			txn = a.BeginClusters(model.ClusterID(c.toK))
		}
		txn.Capture(c.client)
		if c.fromK >= 0 {
			a.Unassign(c.client)
		}
		if c.toK >= 0 {
			if err := a.Assign(c.client, model.ClusterID(c.toK), c.portions); err != nil {
				s.flightRecord(telemetry.Event{Kind: telemetry.EventCommitFail,
					Client: int64(c.client), Cluster: int64(c.toK),
					Delta: finiteOr0(c.delta), Trace: ref})
				s.debugf("shard reassign: commit of scored candidate failed",
					"client", c.client, "cluster", c.toK, "err", err)
				if rbErr := txn.Rollback(); rbErr != nil {
					restoreFails++
					s.flightRecord(telemetry.Event{Kind: telemetry.EventRestoreFail,
						Client: int64(c.client), Cluster: int64(c.fromK), Trace: ref})
					s.debugf("shard reassign: rollback failed", "client", c.client, "err", rbErr)
				}
				continue
			}
		}
		if txn.Delta() > c.minDelta {
			txn.Commit()
			moves++
		} else if rbErr := txn.Rollback(); rbErr != nil {
			restoreFails++
			s.flightRecord(telemetry.Event{Kind: telemetry.EventRestoreFail,
				Client: int64(c.client), Cluster: int64(c.fromK), Trace: ref})
			s.debugf("shard reassign: rollback failed", "client", c.client, "err", rbErr)
		}
	}
	if s.tel != nil {
		if restoreFails > 0 {
			s.tel.reassignRestoreFails.Add(restoreFails)
		}
		if ixEvaluated > 0 {
			s.tel.indexEvaluated.Add(ixEvaluated)
		}
		if ixPruned > 0 {
			s.tel.indexPruned.Add(ixPruned)
		}
	}
	return moves
}

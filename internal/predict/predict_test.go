package predict

import (
	"math"
	"testing"
	"testing/quick"
)

func constantTrace(epochs int, vals ...float64) [][]float64 {
	tr := make([][]float64, epochs)
	for e := range tr {
		tr[e] = append([]float64(nil), vals...)
	}
	return tr
}

func rampTrace(epochs int, start, step float64) [][]float64 {
	tr := make([][]float64, epochs)
	for e := range tr {
		tr[e] = []float64{start + float64(e)*step}
	}
	return tr
}

func TestLastValue(t *testing.T) {
	p := NewLastValue()
	if err := p.Observe([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	got := p.Predict()
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("predict = %v", got)
	}
	if err := p.Observe([]float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if got := p.Predict(); got[0] != 3 {
		t.Fatalf("predict after update = %v", got)
	}
}

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	p, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe([]float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe([]float64{1, 2}); err == nil {
		t.Fatal("size change accepted")
	}
}

func TestEWMASmoothing(t *testing.T) {
	p, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe([]float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe([]float64{4}); err != nil {
		t.Fatal(err)
	}
	// s = 0.5·4 + 0.5·2 = 3.
	if got := p.Predict()[0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("EWMA = %v, want 3", got)
	}
}

func TestHoltTracksRamp(t *testing.T) {
	holt, err := NewHolt(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ewma, err := NewEWMA(0.8)
	if err != nil {
		t.Fatal(err)
	}
	tr := rampTrace(20, 1, 0.5)
	mHolt, err := Backtest(tr, holt)
	if err != nil {
		t.Fatal(err)
	}
	mEWMA, err := Backtest(tr, ewma)
	if err != nil {
		t.Fatal(err)
	}
	if mHolt.RMSE >= mEWMA.RMSE {
		t.Fatalf("Holt (%v) should beat EWMA (%v) on a ramp", mHolt.RMSE, mEWMA.RMSE)
	}
	if _, err := NewHolt(0, 0.5); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestSlidingMean(t *testing.T) {
	p, err := NewSlidingMean(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{2, 4, 6} {
		if err := p.Observe([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	// Window 2 → mean(4, 6) = 5.
	if got := p.Predict()[0]; math.Abs(got-5) > 1e-12 {
		t.Fatalf("sliding mean = %v, want 5", got)
	}
	if _, err := NewSlidingMean(0); err == nil {
		t.Fatal("window 0 accepted")
	}
	if err := p.Observe([]float64{1, 2}); err == nil {
		t.Fatal("size change accepted")
	}
}

func TestBacktestPerfectOnConstantTrace(t *testing.T) {
	tr := constantTrace(10, 3, 1.5)
	for _, p := range []Predictor{NewLastValue(), mustEWMA(t, 0.3), mustSliding(t, 3)} {
		m, err := Backtest(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		if m.MAPE > 1e-12 || m.RMSE > 1e-12 {
			t.Fatalf("constant trace should be predicted exactly: %+v", m)
		}
		if m.Epochs != 9 {
			t.Fatalf("epochs = %d", m.Epochs)
		}
	}
}

func TestBacktestValidation(t *testing.T) {
	if _, err := Backtest(constantTrace(1, 1), NewLastValue()); err == nil {
		t.Fatal("single-epoch trace accepted")
	}
}

func mustEWMA(t *testing.T, a float64) *EWMA {
	t.Helper()
	p, err := NewEWMA(a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustSliding(t *testing.T, w int) *SlidingMean {
	t.Helper()
	p, err := NewSlidingMean(w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Property: EWMA predictions stay within the observed range (convex
// combinations cannot escape it).
func TestEWMAWithinRangeProperty(t *testing.T) {
	f := func(seedVals [8]float64, alphaRaw float64) bool {
		alpha := 0.05 + math.Mod(math.Abs(alphaRaw), 0.95)
		p, err := NewEWMA(alpha)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, raw := range seedVals {
			v := 0.1 + math.Mod(math.Abs(raw), 10)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			if err := p.Observe([]float64{v}); err != nil {
				return false
			}
		}
		got := p.Predict()[0]
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package predict forecasts client arrival rates between decision epochs.
// The paper allocates resources against *predicted* mean arrival rates
// ("predicted based on the behavior of the client", Section III) but
// leaves estimation out of scope; this package supplies the standard
// one-step-ahead forecasters and a backtesting harness so the decision
// controller can run against realistic, imperfect predictions.
package predict

import (
	"errors"
	"fmt"
	"math"
)

// Predictor is a one-step-ahead forecaster over a fixed client
// population. Observe feeds the actual rates of the epoch that just
// ended; Predict forecasts the next epoch's rates.
type Predictor interface {
	Observe(actual []float64) error
	Predict() []float64
}

// LastValue predicts that the next epoch repeats the last observation.
type LastValue struct {
	last []float64
}

// NewLastValue builds the naive forecaster.
func NewLastValue() *LastValue { return &LastValue{} }

// Observe implements Predictor.
func (p *LastValue) Observe(actual []float64) error {
	p.last = copyRates(p.last, actual)
	return nil
}

// Predict implements Predictor.
func (p *LastValue) Predict() []float64 { return append([]float64(nil), p.last...) }

// EWMA is exponential smoothing: s ← α·actual + (1−α)·s.
type EWMA struct {
	Alpha float64

	state []float64
	warm  bool
}

// NewEWMA builds an exponential smoother (0 < alpha ≤ 1).
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("predict: EWMA alpha = %v", alpha)
	}
	return &EWMA{Alpha: alpha}, nil
}

// Observe implements Predictor.
func (p *EWMA) Observe(actual []float64) error {
	if !p.warm {
		p.state = copyRates(p.state, actual)
		p.warm = true
		return nil
	}
	if len(actual) != len(p.state) {
		return errors.New("predict: observation size changed")
	}
	for i, a := range actual {
		p.state[i] = p.Alpha*a + (1-p.Alpha)*p.state[i]
	}
	return nil
}

// Predict implements Predictor.
func (p *EWMA) Predict() []float64 { return append([]float64(nil), p.state...) }

// Holt is double exponential smoothing (level + trend): it extrapolates
// ramps that EWMA lags behind.
type Holt struct {
	Alpha float64 // level gain
	Beta  float64 // trend gain

	level []float64
	trend []float64
	warm  int
}

// NewHolt builds a Holt linear smoother (gains in (0,1]).
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("predict: Holt gains α=%v β=%v", alpha, beta)
	}
	return &Holt{Alpha: alpha, Beta: beta}, nil
}

// Observe implements Predictor.
func (p *Holt) Observe(actual []float64) error {
	switch p.warm {
	case 0:
		p.level = copyRates(p.level, actual)
		p.trend = make([]float64, len(actual))
		p.warm = 1
		return nil
	default:
		if len(actual) != len(p.level) {
			return errors.New("predict: observation size changed")
		}
		for i, a := range actual {
			prevLevel := p.level[i]
			p.level[i] = p.Alpha*a + (1-p.Alpha)*(prevLevel+p.trend[i])
			p.trend[i] = p.Beta*(p.level[i]-prevLevel) + (1-p.Beta)*p.trend[i]
		}
		return nil
	}
}

// Predict implements Predictor.
func (p *Holt) Predict() []float64 {
	out := make([]float64, len(p.level))
	for i := range out {
		v := p.level[i] + p.trend[i]
		if v < 1e-6 {
			v = 1e-6
		}
		out[i] = v
	}
	return out
}

// SlidingMean averages the last Window observations.
type SlidingMean struct {
	Window int

	history [][]float64
}

// NewSlidingMean builds a moving-average forecaster (window ≥ 1).
func NewSlidingMean(window int) (*SlidingMean, error) {
	if window < 1 {
		return nil, fmt.Errorf("predict: window = %d", window)
	}
	return &SlidingMean{Window: window}, nil
}

// Observe implements Predictor.
func (p *SlidingMean) Observe(actual []float64) error {
	if len(p.history) > 0 && len(actual) != len(p.history[0]) {
		return errors.New("predict: observation size changed")
	}
	p.history = append(p.history, append([]float64(nil), actual...))
	if len(p.history) > p.Window {
		p.history = p.history[1:]
	}
	return nil
}

// Predict implements Predictor.
func (p *SlidingMean) Predict() []float64 {
	if len(p.history) == 0 {
		return nil
	}
	out := make([]float64, len(p.history[0]))
	for _, row := range p.history {
		for i, v := range row {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(p.history))
	}
	return out
}

func copyRates(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// Metrics summarize a backtest.
type Metrics struct {
	// MAPE is the mean absolute percentage error over all forecasted
	// (epoch, client) pairs.
	MAPE float64
	// RMSE is the root mean squared error.
	RMSE float64
	// Epochs counts forecasted epochs (the first observation is warm-up).
	Epochs int
}

// Backtest replays a rate trace through the predictor: after observing
// epoch e it forecasts epoch e+1 and the error is measured against the
// trace.
func Backtest(trace [][]float64, p Predictor) (Metrics, error) {
	if len(trace) < 2 {
		return Metrics{}, errors.New("predict: backtest needs at least 2 epochs")
	}
	var (
		m      Metrics
		sumAPE float64
		sumSq  float64
		n      int
	)
	if err := p.Observe(trace[0]); err != nil {
		return Metrics{}, err
	}
	for e := 1; e < len(trace); e++ {
		forecast := p.Predict()
		if len(forecast) != len(trace[e]) {
			return Metrics{}, fmt.Errorf("predict: forecast size %d != %d", len(forecast), len(trace[e]))
		}
		for i, actual := range trace[e] {
			diff := forecast[i] - actual
			sumSq += diff * diff
			if actual > 0 {
				sumAPE += math.Abs(diff) / actual
			}
			n++
		}
		m.Epochs++
		if err := p.Observe(trace[e]); err != nil {
			return Metrics{}, err
		}
	}
	if n > 0 {
		m.MAPE = sumAPE / float64(n)
		m.RMSE = math.Sqrt(sumSq / float64(n))
	}
	return m, nil
}

package experiment

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
)

// Fig4Row is one x-axis point of Figure 4: mean normalized total profit
// of each method (normalized per scenario by the best profit found).
type Fig4Row struct {
	Clients    int
	Proposed   float64
	ModifiedPS float64
	BestFound  float64 // 1 by construction; kept for the table
	Scenarios  int
}

// Fig4Rows reduces a sweep to the Figure 4 series.
func Fig4Rows(points []SweepPoint) []Fig4Row {
	rows := make([]Fig4Row, 0, len(points))
	for _, pt := range points {
		var row Fig4Row
		row.Clients = pt.Clients
		for _, st := range pt.Stats {
			if st.Best <= 0 {
				// Degenerate scenario (cloud saturated, nothing profitable):
				// normalization is meaningless, skip it.
				continue
			}
			row.Scenarios++
			row.Proposed += st.Proposed / st.Best
			row.ModifiedPS += st.PS / st.Best
			row.BestFound += math.Max(st.MCBestOpt, 0) / st.Best
		}
		if row.Scenarios > 0 {
			n := float64(row.Scenarios)
			row.Proposed /= n
			row.ModifiedPS /= n
			row.BestFound /= n
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig4Table renders the Figure 4 series as text.
func Fig4Table(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Figure 4: normalized total profit vs number of clients\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tproposed\tmodifiedPS\tbestFound\tscenarios")
	for _, r := range Fig4Rows(points) {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%d\n",
			r.Clients, r.Proposed, r.ModifiedPS, r.BestFound, r.Scenarios)
	}
	w.Flush()
	return b.String()
}

// Fig5Row is one x-axis point of Figure 5: the worst-case profile across
// the scenarios, normalized per scenario by the best profit found.
type Fig5Row struct {
	Clients            int
	WorstInitialBefore float64 // worst random solution before optimization
	WorstInitialAfter  float64 // worst random solution after local search
	WorstProposed      float64 // worst proposed-solution profit
	BestFound          float64 // 1 by construction
	Scenarios          int
}

// Fig5Rows reduces a sweep to the Figure 5 series.
func Fig5Rows(points []SweepPoint) []Fig5Row {
	rows := make([]Fig5Row, 0, len(points))
	for _, pt := range points {
		row := Fig5Row{
			Clients:            pt.Clients,
			WorstInitialBefore: math.Inf(1),
			WorstInitialAfter:  math.Inf(1),
			WorstProposed:      math.Inf(1),
			BestFound:          1,
		}
		for _, st := range pt.Stats {
			if st.Best <= 0 {
				continue
			}
			row.Scenarios++
			row.WorstInitialBefore = math.Min(row.WorstInitialBefore, st.MCWorstInit/st.Best)
			row.WorstInitialAfter = math.Min(row.WorstInitialAfter, st.MCWorstOpt/st.Best)
			row.WorstProposed = math.Min(row.WorstProposed, st.Proposed/st.Best)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig5Table renders the Figure 5 series as text.
func Fig5Table(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Figure 5: worst-case normalized profit vs number of clients\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tworstInit(before)\tworstInit(afterLS)\tworstProposed\tbestFound\tscenarios")
	for _, r := range Fig5Rows(points) {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t%d\n",
			r.Clients, r.WorstInitialBefore, r.WorstInitialAfter, r.WorstProposed, r.BestFound, r.Scenarios)
	}
	w.Flush()
	return b.String()
}

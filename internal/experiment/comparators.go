package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// ComparatorConfig drives the solver-quality-vs-time comparison across
// every implemented method (extension of Figure 4: the paper only shows
// PS and the Monte-Carlo envelope; we add the stochastic optimizers it
// names in Section V).
type ComparatorConfig struct {
	Clients   int
	Scenarios int
	BaseSeed  int64
	Workload  workload.Config
	Solver    core.Config
	PS        baseline.PSConfig
	MC        baseline.MCConfig
	SA        baseline.SAConfig
	GA        baseline.GAConfig
}

// DefaultComparatorConfig compares on 5 mid-size scenarios.
func DefaultComparatorConfig() ComparatorConfig {
	mc := baseline.DefaultMCConfig()
	mc.Draws = 100
	return ComparatorConfig{
		Clients:   60,
		Scenarios: 5,
		BaseSeed:  1,
		Workload:  workload.DefaultConfig(),
		Solver:    core.DefaultConfig(),
		PS:        baseline.DefaultPSConfig(),
		MC:        mc,
		SA:        baseline.DefaultSAConfig(),
		GA:        baseline.DefaultGAConfig(),
	}
}

// ComparatorRow is one method's mean performance.
type ComparatorRow struct {
	Method     string
	MeanProfit float64
	Relative   float64 // vs the proposed heuristic
	MeanTime   time.Duration
}

// RunComparators evaluates every method on the same scenario set.
func RunComparators(cfg ComparatorConfig) ([]ComparatorRow, error) {
	if cfg.Clients <= 0 || cfg.Scenarios <= 0 {
		return nil, fmt.Errorf("experiment: bad comparator config %+v", cfg)
	}
	type method struct {
		name string
		run  func(*model.Scenario, int64) (float64, error)
	}
	methods := []method{
		{name: "proposed (Resource_Alloc)", run: func(s *model.Scenario, seed int64) (float64, error) {
			sc := cfg.Solver
			sc.Seed = seed
			solver, err := core.NewSolver(s, sc)
			if err != nil {
				return 0, err
			}
			a, _, err := solver.Solve()
			if err != nil {
				return 0, err
			}
			return a.Profit(), nil
		}},
		{name: "modified PS", run: func(s *model.Scenario, _ int64) (float64, error) {
			a, err := baseline.SolveModifiedPS(s, cfg.PS)
			if err != nil {
				return 0, err
			}
			return a.Profit(), nil
		}},
		{name: "monte carlo (best)", run: func(s *model.Scenario, seed int64) (float64, error) {
			mc := cfg.MC
			mc.Seed = seed
			env, err := baseline.RunMonteCarlo(s, mc)
			if err != nil {
				return 0, err
			}
			return env.BestOptimized, nil
		}},
		{name: "simulated annealing", run: func(s *model.Scenario, seed int64) (float64, error) {
			sa := cfg.SA
			sa.Seed = seed
			a, err := baseline.SolveAnnealing(s, sa)
			if err != nil {
				return 0, err
			}
			return a.Profit(), nil
		}},
		{name: "genetic search", run: func(s *model.Scenario, seed int64) (float64, error) {
			ga := cfg.GA
			ga.Seed = seed
			a, err := baseline.SolveGenetic(s, ga)
			if err != nil {
				return 0, err
			}
			return a.Profit(), nil
		}},
	}

	sums := make([]float64, len(methods))
	times := make([]time.Duration, len(methods))
	for sc := 0; sc < cfg.Scenarios; sc++ {
		wcfg := cfg.Workload
		wcfg.NumClients = cfg.Clients
		wcfg.Seed = cfg.BaseSeed + int64(sc)
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		for mi, m := range methods {
			start := time.Now()
			p, err := m.run(scen, wcfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s on seed %d: %w", m.name, wcfg.Seed, err)
			}
			times[mi] += time.Since(start)
			sums[mi] += p
		}
	}
	rows := make([]ComparatorRow, len(methods))
	ref := sums[0] / float64(cfg.Scenarios)
	for mi, m := range methods {
		mean := sums[mi] / float64(cfg.Scenarios)
		rows[mi] = ComparatorRow{
			Method:     m.name,
			MeanProfit: mean,
			MeanTime:   times[mi] / time.Duration(cfg.Scenarios),
		}
		if ref != 0 {
			rows[mi].Relative = mean / ref
		}
	}
	return rows, nil
}

// ComparatorTable renders the comparison as text.
func ComparatorTable(rows []ComparatorRow) string {
	var b strings.Builder
	b.WriteString("Comparators: mean profit and decision time per method\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tmeanProfit\tvs proposed\tmeanTime")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%s\n", r.Method, r.MeanProfit, r.Relative,
			r.MeanTime.Round(time.Millisecond))
	}
	w.Flush()
	return b.String()
}

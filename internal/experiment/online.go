package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// OnlineRow reports one onlinebench run: a seeded churn stream slammed
// through the online allocation service, with decision throughput,
// latency percentiles, commit behavior, and the profit retained versus a
// cold full re-solve of the true final scenario.
type OnlineRow struct {
	// Mode is "sync" (deterministic inline commits) or "background"
	// (commits on a dedicated goroutine).
	Mode     string `json:"mode"`
	Clients  int    `json:"clients"`
	Clusters int    `json:"clusters"`
	Seed     int64  `json:"seed"`
	Events   int    `json:"events"`
	// Flash reports whether the stream included a flash-crowd burst.
	Flash bool `json:"flash"`
	// CommitRel/CommitFloor are the deferred-commit thresholds.
	CommitRel   float64 `json:"commit_rel"`
	CommitFloor float64 `json:"commit_floor"`

	// Throughput and latency of the decision path.
	Elapsed         time.Duration `json:"elapsed_ns"`
	DecisionsPerSec float64       `json:"decisions_per_sec"`
	P50Latency      time.Duration `json:"p50_latency_ns"`
	P99Latency      time.Duration `json:"p99_latency_ns"`

	// Decision mix and write filtering.
	Admits  int64 `json:"admits"`
	Rejects int64 `json:"rejects"`
	Commits int64 `json:"commits"`
	// EventsPerCommit is the write-filter amortization: decisions per
	// ledger commit (0 when nothing committed).
	EventsPerCommit float64 `json:"events_per_commit"`

	// Profit retention vs a cold full re-solve on the final scenario.
	OnlineProfit float64 `json:"online_profit"`
	ColdProfit   float64 `json:"cold_profit"`
	// Retention is OnlineProfit/ColdProfit (1 = no loss).
	Retention float64 `json:"retention"`
}

// OnlineReport is the BENCH_online.json schema.
type OnlineReport struct {
	BenchMeta
	Rows []OnlineRow `json:"rows"`
}

// WriteOnlineJSON writes the report in the BENCH_*.json house format.
func WriteOnlineJSON(w io.Writer, rep *OnlineReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// OnlineTable renders the human-readable summary.
func OnlineTable(rep *OnlineReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online serving: streaming admission/placement (GOMAXPROCS=%d, %d CPUs, %s)\n",
		rep.GoMaxProcs, rep.NumCPU, rep.GoVersion)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tclients\tevents\tflash\tdec/s\tp50\tp99\tadmits\trejects\tcommits\tev/commit\tonline\tcold\tretention")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.0f\t%s\t%s\t%d\t%d\t%d\t%.0f\t%.2f\t%.2f\t%.4f\n",
			r.Mode, r.Clients, r.Events, r.Flash, r.DecisionsPerSec,
			r.P50Latency, r.P99Latency, r.Admits, r.Rejects, r.Commits,
			r.EventsPerCommit, r.OnlineProfit, r.ColdProfit, r.Retention)
	}
	w.Flush()
	return b.String()
}

package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// ComplexityConfig drives the decision-time scaling measurement backing
// the paper's complexity analysis (Section VI): initial-solution cost
// O(|A|·|S|·G) and the ÷K speedup from distributing per-cluster work.
type ComplexityConfig struct {
	ClientCounts []int
	Repeats      int
	BaseSeed     int64
	Workload     workload.Config
	Solver       core.Config
}

// DefaultComplexityConfig measures 3 repeats over the paper's range.
func DefaultComplexityConfig() ComplexityConfig {
	return ComplexityConfig{
		ClientCounts: []int{25, 50, 100, 200},
		Repeats:      3,
		BaseSeed:     1,
		Workload:     workload.DefaultConfig(),
		Solver:       core.DefaultConfig(),
	}
}

// ComplexityRow reports mean solve times for one client count.
type ComplexityRow struct {
	Clients    int
	Servers    int
	Sequential time.Duration
	Parallel   time.Duration
	Speedup    float64
}

// RunComplexity measures sequential vs cluster-parallel solve times.
func RunComplexity(cfg ComplexityConfig) ([]ComplexityRow, error) {
	if len(cfg.ClientCounts) == 0 || cfg.Repeats <= 0 {
		return nil, fmt.Errorf("experiment: bad complexity config %+v", cfg)
	}
	rows := make([]ComplexityRow, 0, len(cfg.ClientCounts))
	for _, n := range cfg.ClientCounts {
		var seq, par time.Duration
		var servers int
		for r := 0; r < cfg.Repeats; r++ {
			wcfg := cfg.Workload
			wcfg.NumClients = n
			wcfg.Seed = cfg.BaseSeed + int64(n) + int64(r)*131
			scen, err := workload.Generate(wcfg)
			if err != nil {
				return nil, err
			}
			servers = scen.Cloud.NumServers()

			sCfg := cfg.Solver
			sCfg.Parallel = false
			ds, err := timeSolve(scen, sCfg)
			if err != nil {
				return nil, err
			}
			seq += ds

			pCfg := cfg.Solver
			pCfg.Parallel = true
			dp, err := timeSolve(scen, pCfg)
			if err != nil {
				return nil, err
			}
			par += dp
		}
		seq /= time.Duration(cfg.Repeats)
		par /= time.Duration(cfg.Repeats)
		row := ComplexityRow{Clients: n, Servers: servers, Sequential: seq, Parallel: par}
		if par > 0 {
			row.Speedup = float64(seq) / float64(par)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeSolve runs one full solve and returns its wall-clock time.
func timeSolve(scen *model.Scenario, cfg core.Config) (time.Duration, error) {
	solver, err := core.NewSolver(scen, cfg)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, _, err := solver.Solve(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// ComplexityTable renders the scaling rows as text.
func ComplexityTable(rows []ComplexityRow) string {
	var b strings.Builder
	b.WriteString("Decision-time scaling (paper Section VI complexity claims)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tservers\tsequential\tcluster-parallel\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%.2fx\n",
			r.Clients, r.Servers, r.Sequential.Round(time.Microsecond),
			r.Parallel.Round(time.Microsecond), r.Speedup)
	}
	w.Flush()
	return b.String()
}

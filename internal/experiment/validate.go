package experiment

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ValidationConfig drives the analytic-vs-simulation validation (an
// extension: the paper trusts the M/M/1 GPS model; we measure it).
type ValidationConfig struct {
	Clients  int
	Seed     int64
	Workload workload.Config
	Solver   core.Config
	Sim      sim.Config
}

// DefaultValidationConfig validates a mid-size scenario.
func DefaultValidationConfig() ValidationConfig {
	simCfg := sim.DefaultConfig()
	simCfg.Horizon = 20000
	simCfg.Warmup = 2000
	return ValidationConfig{
		Clients:  50,
		Seed:     1,
		Workload: workload.DefaultConfig(),
		Solver:   core.DefaultConfig(),
		Sim:      simCfg,
	}
}

// ValidationResult compares the analytical model against discrete-event
// measurement.
type ValidationResult struct {
	Clients            int
	MeasuredClients    int // clients with enough completions to compare
	MeanAbsRelRespErr  float64
	MaxAbsRelRespErr   float64
	AnalyticProfit     float64
	SimulatedProfit    float64
	ProfitRelErr       float64
	MeanAbsUtilErr     float64
	CompletedRequests  int
	UnstablePredicated int // clients the model flagged as saturated
}

// RunValidation solves a scenario and simulates the resulting allocation.
func RunValidation(cfg ValidationConfig) (ValidationResult, error) {
	wcfg := cfg.Workload
	wcfg.NumClients = cfg.Clients
	wcfg.Seed = cfg.Seed
	scen, err := workload.Generate(wcfg)
	if err != nil {
		return ValidationResult{}, err
	}
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		return ValidationResult{}, err
	}
	a, _, err := solver.Solve()
	if err != nil {
		return ValidationResult{}, err
	}
	res, err := sim.Simulate(a, cfg.Sim)
	if err != nil {
		return ValidationResult{}, err
	}

	out := ValidationResult{
		Clients:         cfg.Clients,
		AnalyticProfit:  res.AnalyticValue,
		SimulatedProfit: res.Profit,
	}
	var respErrSum float64
	for _, cs := range res.Clients {
		out.CompletedRequests += cs.Completed
		if cs.Completed < 500 || cs.AnalyticMean <= 0 {
			continue
		}
		out.MeasuredClients++
		relErr := math.Abs(cs.MeanResponse-cs.AnalyticMean) / cs.AnalyticMean
		respErrSum += relErr
		out.MaxAbsRelRespErr = math.Max(out.MaxAbsRelRespErr, relErr)
	}
	if out.MeasuredClients > 0 {
		out.MeanAbsRelRespErr = respErrSum / float64(out.MeasuredClients)
	}
	var utilErrSum float64
	var utilCnt int
	for _, ss := range res.Servers {
		if ss.Analytic == 0 && ss.Busy == 0 {
			continue
		}
		utilErrSum += math.Abs(ss.Busy - ss.Analytic)
		utilCnt++
	}
	if utilCnt > 0 {
		out.MeanAbsUtilErr = utilErrSum / float64(utilCnt)
	}
	if out.AnalyticProfit != 0 {
		out.ProfitRelErr = math.Abs(out.SimulatedProfit-out.AnalyticProfit) / math.Abs(out.AnalyticProfit)
	}
	return out, nil
}

// ValidationTable renders the validation result as text.
func ValidationTable(v ValidationResult) string {
	var b strings.Builder
	b.WriteString("Model validation: analytic M/M/1 GPS model vs discrete-event simulation\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "clients\t%d (measured %d)\n", v.Clients, v.MeasuredClients)
	fmt.Fprintf(w, "completed requests\t%d\n", v.CompletedRequests)
	fmt.Fprintf(w, "mean |rel err| response time\t%.3f\n", v.MeanAbsRelRespErr)
	fmt.Fprintf(w, "max |rel err| response time\t%.3f\n", v.MaxAbsRelRespErr)
	fmt.Fprintf(w, "analytic profit\t%.2f\n", v.AnalyticProfit)
	fmt.Fprintf(w, "simulated profit\t%.2f\n", v.SimulatedProfit)
	fmt.Fprintf(w, "profit rel err\t%.3f\n", v.ProfitRelErr)
	fmt.Fprintf(w, "mean |utilization err|\t%.4f\n", v.MeanAbsUtilErr)
	w.Flush()
	return b.String()
}

package experiment

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of an ASCII chart.
type Series struct {
	Name   string
	Marker byte
	Values []float64
}

// AsciiChart renders series over a shared x-axis as a fixed-size ASCII
// plot — enough to eyeball the shape of Figures 4 and 5 in a terminal.
func AsciiChart(title string, xs []int, series []Series, height int) string {
	if len(xs) == 0 || len(series) == 0 || height < 2 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	if hi == lo {
		hi = lo + 1
	}
	// One column block per x value.
	const colWidth = 8
	width := len(xs) * colWidth
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range series {
		for xi, v := range s.Values {
			if xi >= len(xs) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c := xi*colWidth + colWidth/2
			grid[row(v)][c] = s.Marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		label := "      "
		switch r {
		case 0:
			label = fmt.Sprintf("%6.2f", hi)
		case height - 1:
			label = fmt.Sprintf("%6.2f", lo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	b.WriteString("       +" + strings.Repeat("-", width) + "\n        ")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-*d", colWidth, x)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "        %c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}

// Fig4Chart renders the Figure 4 series as an ASCII plot.
func Fig4Chart(points []SweepPoint) string {
	rows := Fig4Rows(points)
	xs := make([]int, len(rows))
	proposed := make([]float64, len(rows))
	ps := make([]float64, len(rows))
	best := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.Clients
		proposed[i] = r.Proposed
		ps[i] = r.ModifiedPS
		best[i] = r.BestFound
	}
	return AsciiChart("Figure 4 (normalized total profit vs clients)", xs, []Series{
		{Name: "proposed", Marker: 'P', Values: proposed},
		{Name: "modified PS", Marker: 's', Values: ps},
		{Name: "best found", Marker: '*', Values: best},
	}, 16)
}

// Fig5Chart renders the Figure 5 series as an ASCII plot.
func Fig5Chart(points []SweepPoint) string {
	rows := Fig5Rows(points)
	xs := make([]int, len(rows))
	before := make([]float64, len(rows))
	after := make([]float64, len(rows))
	worstProp := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.Clients
		before[i] = r.WorstInitialBefore
		after[i] = r.WorstInitialAfter
		worstProp[i] = r.WorstProposed
	}
	return AsciiChart("Figure 5 (worst-case normalized profit vs clients)", xs, []Series{
		{Name: "worst initial (before opt)", Marker: 'w', Values: before},
		{Name: "worst initial (after local search)", Marker: 'a', Values: after},
		{Name: "worst proposed", Marker: 'P', Values: worstProp},
	}, 16)
}

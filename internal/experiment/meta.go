package experiment

import "runtime"

// BenchMeta records the runtime environment of a benchmark run. Every
// BENCH_*.json report embeds it so perf trajectories across PRs are
// only compared like-for-like (a 2-core CI runner and a 16-core
// workstation produce very different parallel speedups).
type BenchMeta struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// NewBenchMeta captures the current process's environment.
func NewBenchMeta() BenchMeta {
	return BenchMeta{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// FaultsRow reports one loadtest run: a distributed solve over real TCP
// under one seeded fault schedule, compared against the fault-free
// solve of the same instance.
type FaultsRow struct {
	// Schedule identifies the run: "baseline" (no faults) or the fault
	// mix label (e.g. "mixed-12pct", "crash", "slow+hedge").
	Schedule string `json:"schedule"`
	Clients  int    `json:"clients"`
	Clusters int    `json:"clusters"`
	Seed     int64  `json:"seed"`
	// FaultRate is the per-I/O-op injected fault probability (sum of the
	// drop/err/delay/trunc bands).
	FaultRate float64 `json:"fault_rate"`
	Crashes   int64   `json:"crashes"`

	// Profit and convergence vs the fault-free run.
	Profit       float64 `json:"profit"`
	RefProfit    float64 `json:"ref_profit"`
	RelProfitGap float64 `json:"rel_profit_gap"`
	Converged    bool    `json:"converged"`
	Unplaced     int     `json:"unplaced"`

	// Round throughput.
	Rounds  int           `json:"rounds"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// RoundsPerSec counts improvement rounds per wall-clock second of
	// the whole solve (0 when the solve converged before one round).
	RoundsPerSec float64 `json:"rounds_per_sec"`

	// Fault-handling traffic, from the client-side telemetry set.
	Calls     int64 `json:"calls"`
	CallErrs  int64 `json:"call_errors"`
	Retries   int64 `json:"retries"`
	Redials   int64 `json:"redials"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// DedupHits is the server-side count of retried mutating calls
	// answered from the idempotency cache — each one a double-apply the
	// scheme prevented.
	DedupHits int64 `json:"dedup_hits"`

	// Injected is the fault injector's own ledger.
	InjectedDrops  int64 `json:"injected_drops"`
	InjectedErrs   int64 `json:"injected_errors"`
	InjectedDelays int64 `json:"injected_delays"`
	InjectedTruncs int64 `json:"injected_truncs"`
}

// FaultsReport is the BENCH_faults.json schema.
type FaultsReport struct {
	BenchMeta
	Rows []FaultsRow `json:"rows"`
}

// WriteFaultsJSON writes the report in the BENCH_*.json house format.
func WriteFaultsJSON(w io.Writer, rep *FaultsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FaultsTable renders the human-readable summary.
func FaultsTable(rep *FaultsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault injection: distributed solve under chaos (GOMAXPROCS=%d, %d CPUs)\n",
		rep.GoMaxProcs, rep.NumCPU)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "schedule\trate\tcrashes\tprofit\tgap\tok\trounds\tr/s\tcalls\tretries\tredials\thedges\twins\tdedup\telapsed")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%s\t%.0f%%\t%d\t%.2f\t%.2e\t%v\t%d\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Schedule, r.FaultRate*100, r.Crashes, r.Profit, r.RelProfitGap, r.Converged,
			r.Rounds, r.RoundsPerSec, r.Calls, r.Retries, r.Redials, r.Hedges, r.HedgeWins,
			r.DedupHits, r.Elapsed.Round(time.Millisecond))
	}
	w.Flush()
	return b.String()
}

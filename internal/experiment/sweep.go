// Package experiment reproduces the paper's evaluation (Section VI):
// the Figure 4 comparison (proposed vs modified PS vs best-found), the
// Figure 5 worst-case envelope, the complexity/scaling measurements the
// paper claims, plus two extensions: discrete-event validation of the
// analytical model and ablations of the heuristic's phases.
package experiment

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// SweepConfig drives the Figure 4/5 sweep over client counts.
type SweepConfig struct {
	// ClientCounts is the x-axis (paper: up to 200 clients).
	ClientCounts []int
	// ScenariosPerCount is the number of random scenarios per count
	// (paper: at least 20, 5 for 200 clients).
	ScenariosPerCount int
	// ScenariosAtMaxCount overrides ScenariosPerCount at the largest
	// count (the paper drops to 5 there); 0 keeps ScenariosPerCount.
	ScenariosAtMaxCount int
	// MCDraws is the number of Monte-Carlo draws per scenario (paper:
	// at least 10,000).
	MCDraws int
	// MCPasses bounds the per-draw reassignment search.
	MCPasses int
	// BaseSeed seeds the scenario generator; scenario s of count c uses
	// BaseSeed + hash(c, s).
	BaseSeed int64
	// Workload is the scenario template (client count and seed are
	// overwritten per point).
	Workload workload.Config
	// Solver configures the proposed heuristic.
	Solver core.Config
	// PS configures the modified Proportional Share baseline.
	PS baseline.PSConfig
	// Workers bounds scenario-level parallelism (0 = GOMAXPROCS). The
	// sweep's results and error reporting are identical for every
	// worker count.
	Workers int
}

// DefaultSweepConfig returns a fast-but-faithful sweep; the benchmark
// harness raises the scenario and draw counts to the paper's numbers.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		ClientCounts:        []int{10, 20, 50, 100, 150, 200},
		ScenariosPerCount:   20,
		ScenariosAtMaxCount: 5,
		MCDraws:             200,
		MCPasses:            5,
		BaseSeed:            1,
		Workload:            workload.DefaultConfig(),
		Solver:              core.DefaultConfig(),
		PS:                  baseline.DefaultPSConfig(),
	}
}

// ScenarioStats are the profits measured on one random scenario. Raw
// profits, not normalized; Best is the normalization denominator (the
// best profit any method found, the paper's "best solution found").
type ScenarioStats struct {
	Seed         int64
	Proposed     float64
	ProposedInit float64
	PS           float64
	MCBestOpt    float64
	MCWorstOpt   float64
	MCBestInit   float64
	MCWorstInit  float64
	Best         float64
}

// SweepPoint aggregates the scenarios of one client count.
type SweepPoint struct {
	Clients int
	Stats   []ScenarioStats
}

// RunSweep evaluates every method on every (count, scenario) pair.
func RunSweep(cfg SweepConfig) ([]SweepPoint, error) {
	if len(cfg.ClientCounts) == 0 {
		return nil, fmt.Errorf("experiment: no client counts")
	}
	if cfg.ScenariosPerCount <= 0 || cfg.MCDraws <= 0 {
		return nil, fmt.Errorf("experiment: scenarios=%d draws=%d", cfg.ScenariosPerCount, cfg.MCDraws)
	}
	maxCount := 0
	for _, c := range cfg.ClientCounts {
		if c > maxCount {
			maxCount = c
		}
	}
	points := make([]SweepPoint, len(cfg.ClientCounts))
	type job struct {
		point, slot int
		clients     int
		seed        int64
	}
	var jobs []job
	for pi, c := range cfg.ClientCounts {
		n := cfg.ScenariosPerCount
		if c == maxCount && cfg.ScenariosAtMaxCount > 0 {
			n = cfg.ScenariosAtMaxCount
		}
		points[pi] = SweepPoint{Clients: c, Stats: make([]ScenarioStats, n)}
		for s := 0; s < n; s++ {
			jobs = append(jobs, job{
				point:   pi,
				slot:    s,
				clients: c,
				seed:    cfg.BaseSeed + int64(c)*1000 + int64(s),
			})
		}
	}

	// Scenario jobs fan out over the shared engine. Each job writes its
	// own (point, slot) cell and every job runs even when another fails,
	// so the sweep's output — including which error is reported, the
	// lowest-indexed one — does not depend on the worker count.
	err := parallel.ForErr(parallel.Options{Workers: cfg.Workers, Tel: cfg.Solver.Telemetry, Phase: "sweep"},
		len(jobs), func(_, idx int) error {
			jb := jobs[idx]
			st, err := runScenario(cfg, jb.clients, jb.seed)
			if err != nil {
				return fmt.Errorf("experiment: clients=%d seed=%d: %w", jb.clients, jb.seed, err)
			}
			points[jb.point].Stats[jb.slot] = st
			return nil
		})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// runScenario measures every method on one random scenario.
func runScenario(cfg SweepConfig, clients int, seed int64) (ScenarioStats, error) {
	wcfg := cfg.Workload
	wcfg.NumClients = clients
	wcfg.Seed = seed
	scen, err := workload.Generate(wcfg)
	if err != nil {
		return ScenarioStats{}, err
	}
	solver, err := core.NewSolver(scen, cfg.Solver)
	if err != nil {
		return ScenarioStats{}, err
	}
	proposed, stats, err := solver.Solve()
	if err != nil {
		return ScenarioStats{}, err
	}
	ps, err := baseline.SolveModifiedPS(scen, cfg.PS)
	if err != nil {
		return ScenarioStats{}, err
	}
	mcCfg := baseline.MCConfig{
		Draws:           cfg.MCDraws,
		Seed:            seed,
		MaxSearchPasses: cfg.MCPasses,
		Solver:          cfg.Solver,
	}
	env, err := baseline.RunMonteCarlo(scen, mcCfg)
	if err != nil {
		return ScenarioStats{}, err
	}
	st := ScenarioStats{
		Seed:         seed,
		Proposed:     proposed.Profit(),
		ProposedInit: stats.InitialProfit,
		PS:           ps.Profit(),
		MCBestOpt:    env.BestOptimized,
		MCWorstOpt:   env.WorstOptimized,
		MCBestInit:   env.BestInitial,
		MCWorstInit:  env.WorstInitial,
	}
	st.Best = math.Max(st.Proposed, math.Max(st.PS, st.MCBestOpt))
	return st, nil
}

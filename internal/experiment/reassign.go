package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/workload"
)

// ReassignConfig drives the reassignment-pass microbenchmark backing the
// REASSIGN section of EXPERIMENTS.md: one pass over a fresh greedy
// allocation, timed in the legacy sequential mode and in the pipelined
// mode with one and with all scoring workers.
type ReassignConfig struct {
	ClientCounts []int
	Repeats      int
	BaseSeed     int64
	Workload     workload.Config
	Solver       core.Config
}

// DefaultReassignConfig measures the issue's 50/250/1000-client points.
func DefaultReassignConfig() ReassignConfig {
	return ReassignConfig{
		ClientCounts: []int{50, 250, 1000},
		Repeats:      5,
		BaseSeed:     42,
		Workload:     workload.DefaultConfig(),
		Solver:       core.DefaultConfig(),
	}
}

// ReassignRow reports mean single-pass times for one client count.
type ReassignRow struct {
	Clients int `json:"clients"`
	Servers int `json:"servers"`
	// Moves the pipelined pass commits on the greedy allocation; the
	// pipeline commits the same set for every worker count.
	Moves int `json:"moves"`
	// LegacyMoves may differ: the legacy pass is a different algorithm
	// (mutate-and-measure, immediate commit in client order).
	LegacyMoves int           `json:"legacy_moves"`
	Legacy      time.Duration `json:"legacy_ns"`
	Workers1    time.Duration `json:"workers1_ns"`
	Parallel    time.Duration `json:"parallel_ns"`
	// Speedups are legacy time over pipeline time.
	SpeedupWorkers1 float64 `json:"speedup_workers1"`
	SpeedupParallel float64 `json:"speedup_parallel"`
}

// ReassignReport is the machine-readable record written to
// BENCH_reassign.json so later PRs have a perf trajectory to compare
// against.
type ReassignReport struct {
	BenchMeta
	Repeats int           `json:"repeats"`
	Rows    []ReassignRow `json:"rows"`
}

// RunReassign measures one reassignment pass per mode over identical
// greedy allocations.
func RunReassign(cfg ReassignConfig) (*ReassignReport, error) {
	if len(cfg.ClientCounts) == 0 || cfg.Repeats <= 0 {
		return nil, fmt.Errorf("experiment: bad reassign config %+v", cfg)
	}
	report := &ReassignReport{
		BenchMeta: NewBenchMeta(),
		Repeats:   cfg.Repeats,
	}
	for _, n := range cfg.ClientCounts {
		wcfg := cfg.Workload
		wcfg.NumClients = n
		wcfg.Seed = cfg.BaseSeed + int64(n)
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}

		mode := func(mutate func(*core.Config)) (*core.Solver, *alloc.Allocation, error) {
			sCfg := cfg.Solver
			mutate(&sCfg)
			s, err := core.NewSolver(scen, sCfg)
			if err != nil {
				return nil, nil, err
			}
			base, err := s.InitialSolution(rand.New(rand.NewSource(1)))
			if err != nil {
				return nil, nil, err
			}
			return s, base, nil
		}
		sLegacy, baseLegacy, err := mode(func(c *core.Config) { c.DisableParallelReassign = true })
		if err != nil {
			return nil, err
		}
		s1, base1, err := mode(func(c *core.Config) { c.Workers = 1 })
		if err != nil {
			return nil, err
		}
		sN, baseN, err := mode(func(c *core.Config) { c.Workers = 0 })
		if err != nil {
			return nil, err
		}

		row := ReassignRow{Clients: n, Servers: scen.Cloud.NumServers()}
		timePass := func(s *core.Solver, base *alloc.Allocation) (time.Duration, int) {
			var total time.Duration
			var moves int
			for r := 0; r < cfg.Repeats; r++ {
				a := base.Clone()
				start := time.Now()
				moves = s.ReassignmentPass(a)
				total += time.Since(start)
			}
			return total / time.Duration(cfg.Repeats), moves
		}
		row.Legacy, row.LegacyMoves = timePass(sLegacy, baseLegacy)
		row.Workers1, row.Moves = timePass(s1, base1)
		var parMoves int
		row.Parallel, parMoves = timePass(sN, baseN)
		if parMoves != row.Moves {
			return nil, fmt.Errorf("experiment: pipeline nondeterminism at %d clients: %d moves with 1 worker, %d with %d",
				n, row.Moves, parMoves, report.GoMaxProcs)
		}
		if row.Workers1 > 0 {
			row.SpeedupWorkers1 = float64(row.Legacy) / float64(row.Workers1)
		}
		if row.Parallel > 0 {
			row.SpeedupParallel = float64(row.Legacy) / float64(row.Parallel)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// ReassignTable renders the report as text.
func ReassignTable(rep *ReassignReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reassignment pass: legacy vs pipelined (GOMAXPROCS=%d, %d CPUs, mean of %d)\n",
		rep.GoMaxProcs, rep.NumCPU, rep.Repeats)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tservers\tlegacy\tworkers=1\tworkers=max\tspeedup(1)\tspeedup(max)\tmoves")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\t%.2fx\t%.2fx\t%d\n",
			r.Clients, r.Servers,
			r.Legacy.Round(time.Microsecond),
			r.Workers1.Round(time.Microsecond),
			r.Parallel.Round(time.Microsecond),
			r.SpeedupWorkers1, r.SpeedupParallel, r.Moves)
	}
	w.Flush()
	return b.String()
}

// WriteReassignJSON writes the machine-readable report.
func WriteReassignJSON(w io.Writer, rep *ReassignReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

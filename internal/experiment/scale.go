package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// ScaleExpConfig drives the large-scale benchmark backing the SCALE
// section of EXPERIMENTS.md: one solve per client count on a
// workload.ScaleConfig instance, with the scale-mode solver settings
// (single greedy start, one improvement round, index-pruned candidate
// generation, sharded rounds) — the configuration that makes 100k–1M
// clients tractable on one machine.
type ScaleExpConfig struct {
	// ClientCounts are the instance sizes to run, in order.
	ClientCounts []int
	BaseSeed     int64
	// CandidateClusters is the top-k pruning width (core.Config
	// .CandidateClusters). 0 disables pruning.
	CandidateClusters int
	// ShardClusters sizes the shard count as clusters/ShardClusters
	// (clamped to [1, clusters]), so shards keep a roughly constant
	// cluster span as the cloud grows. 0 disables sharding.
	ShardClusters int
	// CompareExactAt, when one of the ClientCounts, additionally solves
	// that instance with pruning and sharding disabled and records the
	// profit gap — the acceptance check that the default k loses well
	// under a percent. Exact solves are O(clients × clusters), so keep
	// this at a mid-size point.
	CompareExactAt int
	// AlphaGranularity overrides the solver's dispersion grid (0 keeps
	// the paper's default). The scale runs use a coarser grid: the DP is
	// the inner loop of every exact evaluation.
	AlphaGranularity int
}

// DefaultScaleExpConfig runs the issue's 1k/10k/100k/1M ladder.
func DefaultScaleExpConfig() ScaleExpConfig {
	return ScaleExpConfig{
		ClientCounts:      []int{1_000, 10_000, 100_000, 1_000_000},
		BaseSeed:          1,
		CandidateClusters: 6,
		ShardClusters:     8,
		CompareExactAt:    10_000,
		AlphaGranularity:  6,
	}
}

// ScaleRow reports one instance size.
type ScaleRow struct {
	Clients  int `json:"clients"`
	Clusters int `json:"clusters"`
	Servers  int `json:"servers"`
	Shards   int `json:"shards"`
	TopK     int `json:"top_k"`

	Generate time.Duration `json:"generate_ns"`
	Solve    time.Duration `json:"solve_ns"`
	// Timings splits Solve into the solver's phases (greedy build,
	// cluster sweeps, reassignment, cross-shard reconciliation). In
	// sharded mode Sweep and Reassign sum per-shard busy time, so they
	// can exceed the row's wall-clock Solve.
	Timings core.PhaseTimings `json:"timings"`
	// Attribution splits the row's profit across the same phases
	// (core.Stats.Attribution): which phase the profit came from, at
	// this scale.
	Attribution core.Attribution `json:"attribution"`
	// AllocBytes is the TotalAlloc delta across generate+solve;
	// BytesPerClient the same divided by the client count — the
	// linear-memory acceptance number.
	AllocBytes     uint64  `json:"alloc_bytes"`
	BytesPerClient float64 `json:"bytes_per_client"`

	Profit   float64 `json:"profit"`
	Unplaced int     `json:"unplaced"`

	// ExactProfit and LossVsExact are only set on the CompareExactAt row:
	// the unpruned, unsharded solve of the same instance and the relative
	// profit gap ((exact-pruned)/exact; negative means the scale mode
	// found more profit).
	ExactProfit float64 `json:"exact_profit,omitempty"`
	LossVsExact float64 `json:"loss_vs_exact,omitempty"`
}

// ScaleReport is the machine-readable record written to
// BENCH_scale.json so later PRs have a perf trajectory to compare
// against.
type ScaleReport struct {
	BenchMeta
	Rows []ScaleRow `json:"rows"`
}

// scaleSolverConfig is the scale-mode solver: one greedy start, one
// improvement round, coarse dispersion grid, pruned candidates, sharded
// rounds. Everything it gives up is breadth the big instances cannot
// afford; correctness (feasibility, determinism) is untouched.
func scaleSolverConfig(cfg ScaleExpConfig, clusters int) core.Config {
	sc := core.DefaultConfig()
	sc.NumInitSolutions = 1
	sc.MaxLocalSearchIters = 1
	if cfg.AlphaGranularity > 0 {
		sc.AlphaGranularity = cfg.AlphaGranularity
	}
	sc.CandidateClusters = cfg.CandidateClusters
	if cfg.ShardClusters > 0 {
		sc.Shards = clusters / cfg.ShardClusters
		if sc.Shards < 1 {
			sc.Shards = 1
		}
	}
	return sc
}

// RunScale runs the ladder. Each row is generated and solved once —
// at these sizes a single run dominates noise, and determinism makes
// reruns exact.
func RunScale(cfg ScaleExpConfig, progress io.Writer) (*ScaleReport, error) {
	if len(cfg.ClientCounts) == 0 {
		return nil, fmt.Errorf("experiment: bad scale config %+v", cfg)
	}
	report := &ScaleReport{BenchMeta: NewBenchMeta()}
	for _, n := range cfg.ClientCounts {
		wcfg := workload.ScaleConfig(n, cfg.BaseSeed+int64(n))

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)

		tGen := time.Now()
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		genDur := time.Since(tGen)

		sc := scaleSolverConfig(cfg, scen.Cloud.NumClusters())
		s, err := core.NewSolver(scen, sc)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			fmt.Fprintf(progress, "scale: %d clients, %d clusters, shards=%d topk=%d...\n",
				n, scen.Cloud.NumClusters(), sc.Shards, sc.CandidateClusters)
		}
		a, st, err := s.Solve()
		if err != nil {
			return nil, err
		}
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: scale %d clients: %w", n, err)
		}
		runtime.ReadMemStats(&after)

		row := ScaleRow{
			Clients:        n,
			Clusters:       scen.Cloud.NumClusters(),
			Servers:        scen.Cloud.NumServers(),
			Shards:         sc.Shards,
			TopK:           sc.CandidateClusters,
			Generate:       genDur,
			Solve:          st.Elapsed,
			Timings:        st.Timings,
			Attribution:    st.Attribution,
			AllocBytes:     after.TotalAlloc - before.TotalAlloc,
			Profit:         st.FinalProfit,
			Unplaced:       st.Unplaced,
			BytesPerClient: float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		}

		if n == cfg.CompareExactAt {
			ec := scaleSolverConfig(cfg, scen.Cloud.NumClusters())
			ec.CandidateClusters = 0
			ec.Shards = 0
			es, err := core.NewSolver(scen, ec)
			if err != nil {
				return nil, err
			}
			_, est, err := es.Solve()
			if err != nil {
				return nil, err
			}
			row.ExactProfit = est.FinalProfit
			if math.Abs(est.FinalProfit) > 0 {
				row.LossVsExact = (est.FinalProfit - st.FinalProfit) / math.Abs(est.FinalProfit)
			}
		}
		report.Rows = append(report.Rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "scale: %d clients solved in %s, profit %.2f, %d unplaced\n",
				n, row.Solve.Round(time.Millisecond), row.Profit, row.Unplaced)
		}
	}
	return report, nil
}

// ScaleTable renders the report as text.
func ScaleTable(rep *ScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale ladder: pruned+sharded solve (GOMAXPROCS=%d, %d CPUs)\n",
		rep.GoMaxProcs, rep.NumCPU)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tclusters\tshards\ttopk\tgenerate\tsolve\tgreedy\tsweep\treassign\treconcile\tB/client\tprofit\tunplaced\tloss-vs-exact")
	for _, r := range rep.Rows {
		loss := "-"
		if r.ExactProfit != 0 {
			loss = fmt.Sprintf("%.4f%%", r.LossVsExact*100)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.0f\t%.2f\t%d\t%s\n",
			r.Clients, r.Clusters, r.Shards, r.TopK,
			r.Generate.Round(time.Millisecond), r.Solve.Round(time.Millisecond),
			r.Timings.Greedy.Round(time.Millisecond), r.Timings.Sweep.Round(time.Millisecond),
			r.Timings.Reassign.Round(time.Millisecond), r.Timings.Reconcile.Round(time.Millisecond),
			r.BytesPerClient, r.Profit, r.Unplaced, loss)
	}
	w.Flush()
	return b.String()
}

// WriteScaleJSON writes the machine-readable report.
func WriteScaleJSON(w io.Writer, rep *ScaleReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

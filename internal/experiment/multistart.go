package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/workload"
)

// MultistartConfig drives the fan-out microbenchmark backing the
// MULTISTART section of EXPERIMENTS.md: the solver's multi-start greedy
// phase and the Monte-Carlo draw loop, each timed with one worker and
// with all workers over identical scenarios.
type MultistartConfig struct {
	ClientCounts []int
	// Starts is the number of greedy initial solutions per solve.
	Starts int
	// MCDraws is the number of Monte-Carlo draws per run.
	MCDraws int
	// MCPasses bounds each draw's reassignment search.
	MCPasses int
	Repeats  int
	BaseSeed int64
	Workload workload.Config
	Solver   core.Config
}

// DefaultMultistartConfig measures the issue's 50/250-client points.
func DefaultMultistartConfig() MultistartConfig {
	return MultistartConfig{
		ClientCounts: []int{50, 250},
		Starts:       8,
		MCDraws:      32,
		MCPasses:     3,
		Repeats:      3,
		BaseSeed:     42,
		Workload:     workload.DefaultConfig(),
		Solver:       core.DefaultConfig(),
	}
}

// MultistartRow reports mean wall-clock times for one client count.
type MultistartRow struct {
	Clients int `json:"clients"`
	Servers int `json:"servers"`
	// Multi-start greedy phase (local search disabled to isolate it).
	SolveWorkers1 time.Duration `json:"solve_workers1_ns"`
	SolveParallel time.Duration `json:"solve_parallel_ns"`
	SolveSpeedup  float64       `json:"solve_speedup"`
	// Monte-Carlo draw loop.
	MCWorkers1 time.Duration `json:"mc_workers1_ns"`
	MCParallel time.Duration `json:"mc_parallel_ns"`
	MCSpeedup  float64       `json:"mc_speedup"`
	// Profits cross-checked between worker counts; recorded for the
	// perf-trajectory file.
	InitialProfit float64 `json:"initial_profit"`
	MCBestProfit  float64 `json:"mc_best_profit"`
}

// MultistartReport is the machine-readable record written to
// BENCH_multistart.json so later PRs have a perf trajectory to compare
// against.
type MultistartReport struct {
	BenchMeta
	Starts  int             `json:"starts"`
	MCDraws int             `json:"mc_draws"`
	Repeats int             `json:"repeats"`
	Rows    []MultistartRow `json:"rows"`
}

// RunMultistart times the two fan-outs with one worker and with
// GOMAXPROCS workers over identical scenarios, and fails loudly if the
// worker count changes any profit — the fan-out determinism contract,
// checked here on benchmark-scale inputs.
func RunMultistart(cfg MultistartConfig) (*MultistartReport, error) {
	if len(cfg.ClientCounts) == 0 || cfg.Repeats <= 0 || cfg.Starts <= 0 || cfg.MCDraws <= 0 {
		return nil, fmt.Errorf("experiment: bad multistart config %+v", cfg)
	}
	report := &MultistartReport{
		BenchMeta: NewBenchMeta(),
		Starts:    cfg.Starts,
		MCDraws:   cfg.MCDraws,
		Repeats:   cfg.Repeats,
	}
	for _, n := range cfg.ClientCounts {
		wcfg := cfg.Workload
		wcfg.NumClients = n
		wcfg.Seed = cfg.BaseSeed + int64(n)
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		row := MultistartRow{Clients: n, Servers: scen.Cloud.NumServers()}

		// Multi-start greedy phase, isolated from the local search.
		timeSolve := func(workers int) (time.Duration, float64, error) {
			sCfg := cfg.Solver
			sCfg.NumInitSolutions = cfg.Starts
			sCfg.MaxLocalSearchIters = 0
			sCfg.Workers = workers
			s, err := core.NewSolver(scen, sCfg)
			if err != nil {
				return 0, 0, err
			}
			var total time.Duration
			var profit float64
			for r := 0; r < cfg.Repeats; r++ {
				start := time.Now()
				_, stats, err := s.Solve()
				if err != nil {
					return 0, 0, err
				}
				total += time.Since(start)
				profit = stats.InitialProfit
			}
			return total / time.Duration(cfg.Repeats), profit, nil
		}
		var p1, pN float64
		if row.SolveWorkers1, p1, err = timeSolve(1); err != nil {
			return nil, err
		}
		if row.SolveParallel, pN, err = timeSolve(0); err != nil {
			return nil, err
		}
		if p1 != pN {
			return nil, fmt.Errorf("experiment: multi-start nondeterminism at %d clients: profit %v with 1 worker, %v with %d",
				n, p1, pN, report.GoMaxProcs)
		}
		row.InitialProfit = p1
		if row.SolveParallel > 0 {
			row.SolveSpeedup = float64(row.SolveWorkers1) / float64(row.SolveParallel)
		}

		// Monte-Carlo draw loop.
		timeMC := func(workers int) (time.Duration, float64, error) {
			mcCfg := baseline.MCConfig{
				Draws:           cfg.MCDraws,
				Seed:            cfg.BaseSeed,
				MaxSearchPasses: cfg.MCPasses,
				Workers:         workers,
				Solver:          cfg.Solver,
			}
			var total time.Duration
			var best float64
			for r := 0; r < cfg.Repeats; r++ {
				start := time.Now()
				env, err := baseline.RunMonteCarlo(scen, mcCfg)
				if err != nil {
					return 0, 0, err
				}
				total += time.Since(start)
				best = env.BestOptimized
			}
			return total / time.Duration(cfg.Repeats), best, nil
		}
		var b1, bN float64
		if row.MCWorkers1, b1, err = timeMC(1); err != nil {
			return nil, err
		}
		if row.MCParallel, bN, err = timeMC(0); err != nil {
			return nil, err
		}
		if b1 != bN {
			return nil, fmt.Errorf("experiment: Monte-Carlo nondeterminism at %d clients: best %v with 1 worker, %v with %d",
				n, b1, bN, report.GoMaxProcs)
		}
		row.MCBestProfit = b1
		if row.MCParallel > 0 {
			row.MCSpeedup = float64(row.MCWorkers1) / float64(row.MCParallel)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// MultistartTable renders the report as text.
func MultistartTable(rep *MultistartReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fan-out: multi-start (%d starts) and Monte-Carlo (%d draws), workers=1 vs max (GOMAXPROCS=%d, %d CPUs, mean of %d)\n",
		rep.Starts, rep.MCDraws, rep.GoMaxProcs, rep.NumCPU, rep.Repeats)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tservers\tsolve w=1\tsolve w=max\tspeedup\tmc w=1\tmc w=max\tspeedup")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%.2fx\t%s\t%s\t%.2fx\n",
			r.Clients, r.Servers,
			r.SolveWorkers1.Round(time.Microsecond),
			r.SolveParallel.Round(time.Microsecond),
			r.SolveSpeedup,
			r.MCWorkers1.Round(time.Microsecond),
			r.MCParallel.Round(time.Microsecond),
			r.MCSpeedup)
	}
	w.Flush()
	return b.String()
}

// WriteMultistartJSON writes the machine-readable report.
func WriteMultistartJSON(w io.Writer, rep *MultistartReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

package experiment

import (
	"math"
	"strings"
	"testing"
)

// fastSweep returns a sweep config small enough for unit tests.
func fastSweep() SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.ClientCounts = []int{10, 20}
	cfg.ScenariosPerCount = 3
	cfg.ScenariosAtMaxCount = 2
	cfg.MCDraws = 10
	cfg.MCPasses = 2
	return cfg
}

func TestRunSweepShapes(t *testing.T) {
	points, err := RunSweep(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if len(points[0].Stats) != 3 {
		t.Fatalf("count 10 has %d scenarios", len(points[0].Stats))
	}
	if len(points[1].Stats) != 2 {
		t.Fatalf("max count should use ScenariosAtMaxCount: %d", len(points[1].Stats))
	}
	for _, pt := range points {
		for _, st := range pt.Stats {
			if st.Best <= 0 {
				t.Fatalf("best profit %v", st.Best)
			}
			if st.Proposed > st.Best+1e-9 || st.PS > st.Best+1e-9 || st.MCBestOpt > st.Best+1e-9 {
				t.Fatalf("best is not max: %+v", st)
			}
			if st.MCWorstInit > st.MCBestInit+1e-9 {
				t.Fatalf("MC envelope inverted: %+v", st)
			}
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	cfg := fastSweep()
	cfg.ClientCounts = nil
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("empty counts accepted")
	}
	cfg = fastSweep()
	cfg.MCDraws = 0
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("zero draws accepted")
	}
}

func TestFigureTablesQualitativeShape(t *testing.T) {
	points, err := RunSweep(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	f4 := Fig4Rows(points)
	for _, r := range f4 {
		// The paper's headline claims: proposed within ~9% of best found,
		// clearly above the modified PS baseline.
		if r.Proposed < 0.85 {
			t.Errorf("clients=%d: proposed normalized %v below paper's band", r.Clients, r.Proposed)
		}
		if r.Proposed <= r.ModifiedPS {
			t.Errorf("clients=%d: proposed (%v) should beat PS (%v)", r.Clients, r.Proposed, r.ModifiedPS)
		}
		if r.BestFound > 1+1e-9 {
			t.Errorf("bestFound normalized %v > 1", r.BestFound)
		}
	}
	f5 := Fig5Rows(points)
	for _, r := range f5 {
		if r.WorstInitialAfter < r.WorstInitialBefore-1e-9 {
			t.Errorf("clients=%d: local search made worst random worse: %+v", r.Clients, r)
		}
		if r.WorstProposed <= 0 || r.WorstProposed > 1+1e-9 {
			t.Errorf("clients=%d: worst proposed %v outside (0,1]", r.Clients, r.WorstProposed)
		}
	}
	for _, table := range []string{Fig4Table(points), Fig5Table(points)} {
		if !strings.Contains(table, "clients") {
			t.Fatalf("table missing header: %q", table)
		}
	}
}

func TestRunComplexity(t *testing.T) {
	cfg := DefaultComplexityConfig()
	cfg.ClientCounts = []int{10, 25}
	cfg.Repeats = 1
	rows, err := RunComplexity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sequential <= 0 || r.Parallel <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if r.Servers <= 0 {
			t.Fatalf("servers = %d", r.Servers)
		}
	}
	if !strings.Contains(ComplexityTable(rows), "speedup") {
		t.Fatal("table missing speedup column")
	}
	cfg.Repeats = 0
	if _, err := RunComplexity(cfg); err == nil {
		t.Fatal("zero repeats accepted")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultValidationConfig()
	cfg.Clients = 15
	cfg.Sim.Horizon = 3000
	cfg.Sim.Warmup = 300
	v, err := RunValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.MeasuredClients == 0 {
		t.Fatal("no clients measured")
	}
	if v.MeanAbsRelRespErr > 0.3 {
		t.Fatalf("analytic model far from simulation: mean rel err %v", v.MeanAbsRelRespErr)
	}
	if v.CompletedRequests == 0 {
		t.Fatal("no requests completed")
	}
	if !strings.Contains(ValidationTable(v), "profit") {
		t.Fatal("table missing profit row")
	}
}

func TestRunAblation(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Clients = 20
	cfg.Scenarios = 2
	rows, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ablationVariants()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Variant != "full" || rows[0].Relative != 1 {
		t.Fatalf("first row must be the full solver: %+v", rows[0])
	}
	for _, r := range rows {
		if r.MeanProfit <= 0 {
			t.Fatalf("variant %s has profit %v", r.Variant, r.MeanProfit)
		}
	}
	// Disabling the entire local search must not beat the full solver.
	for _, r := range rows {
		if r.Variant == "no-local-search" && r.Relative > 1+1e-9 {
			t.Fatalf("no-local-search beats full: %+v", r)
		}
	}
	if !strings.Contains(AblationTable(rows), "variant") {
		t.Fatal("table missing header")
	}
	cfg.Scenarios = 0
	if _, err := RunAblation(cfg); err == nil {
		t.Fatal("zero scenarios accepted")
	}
}

func TestRunComparators(t *testing.T) {
	cfg := DefaultComparatorConfig()
	cfg.Clients = 15
	cfg.Scenarios = 2
	cfg.MC.Draws = 5
	cfg.SA.Anneal.Steps = 20
	cfg.GA.Population = 4
	cfg.GA.Generations = 2
	rows, err := RunComparators(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Method != "proposed (Resource_Alloc)" || rows[0].Relative != 1 {
		t.Fatalf("first row must be the proposed solver: %+v", rows[0])
	}
	var psRel float64
	for _, r := range rows {
		if r.MeanTime <= 0 {
			t.Fatalf("method %s has no timing", r.Method)
		}
		if r.Method == "modified PS" {
			psRel = r.Relative
		}
	}
	if psRel >= 1 {
		t.Fatalf("modified PS should trail the proposed solver, got relative %v", psRel)
	}
	if !strings.Contains(ComparatorTable(rows), "meanProfit") {
		t.Fatal("table missing header")
	}
	cfg.Scenarios = 0
	if _, err := RunComparators(cfg); err == nil {
		t.Fatal("zero scenarios accepted")
	}
}

func TestRunEpochsExperiment(t *testing.T) {
	cfg := DefaultEpochsConfig()
	cfg.Clients = 15
	cfg.Epochs = 6
	rows, err := RunEpochsExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]EpochsRow, len(rows))
	for _, r := range rows {
		byName[r.Policy] = r
	}
	always, never := byName["always"], byName["never"]
	if always.Decisions != 6 || never.Decisions != 1 {
		t.Fatalf("decision counts wrong: always=%d never=%d", always.Decisions, never.Decisions)
	}
	if always.TotalProfit < never.TotalProfit-1e-6 {
		t.Fatalf("always (%v) earned less than never (%v)", always.TotalProfit, never.TotalProfit)
	}
	if always.SolveTime <= never.SolveTime {
		t.Fatalf("always should spend more solve time: %v vs %v", always.SolveTime, never.SolveTime)
	}
	if !strings.Contains(EpochsTable(rows), "decisions") {
		t.Fatal("table missing header")
	}
	cfg.Epochs = 0
	if _, err := RunEpochsExperiment(cfg); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestRunPredictors(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.Clients = 12
	cfg.Epochs = 6
	rows, err := RunPredictors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Predictor != "oracle (actual rates)" {
		t.Fatalf("first row must be the oracle: %+v", rows[0])
	}
	if rows[0].MAPE != 0 || rows[0].RMSE != 0 {
		t.Fatalf("oracle has no forecast error by definition: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.MAPE <= 0 || r.RMSE <= 0 {
			t.Fatalf("forecaster %s reports no error on a noisy trace: %+v", r.Predictor, r)
		}
		if r.RealizedProfit > rows[0].RealizedProfit+1e-6 {
			t.Fatalf("forecaster %s beat the oracle: %v > %v",
				r.Predictor, r.RealizedProfit, rows[0].RealizedProfit)
		}
	}
	if !strings.Contains(PredictorTable(rows), "MAPE") {
		t.Fatal("table missing header")
	}
	cfg.Epochs = 1
	if _, err := RunPredictors(cfg); err == nil {
		t.Fatal("single epoch accepted")
	}
}

func TestAsciiChart(t *testing.T) {
	xs := []int{10, 20, 50}
	out := AsciiChart("demo", xs, []Series{
		{Name: "up", Marker: 'u', Values: []float64{0.1, 0.5, 0.9}},
		{Name: "down", Marker: 'd', Values: []float64{0.9, 0.5, 0.1}},
	}, 8)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "u = up") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "u") || !strings.Contains(out, "d") {
		t.Fatal("markers missing")
	}
	// Degenerate inputs render nothing rather than panicking.
	if AsciiChart("x", nil, nil, 8) != "" {
		t.Fatal("empty chart should be empty")
	}
	if AsciiChart("x", xs, []Series{{Name: "n", Marker: 'n', Values: []float64{math.NaN()}}}, 8) != "" {
		t.Fatal("all-NaN chart should be empty")
	}
	// Constant series must not divide by zero.
	flat := AsciiChart("flat", xs, []Series{{Name: "f", Marker: 'f', Values: []float64{1, 1, 1}}}, 8)
	if flat == "" {
		t.Fatal("flat series should still render")
	}
}

func TestFigureCharts(t *testing.T) {
	points, err := RunSweep(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if c := Fig4Chart(points); !strings.Contains(c, "proposed") {
		t.Fatalf("fig4 chart malformed:\n%s", c)
	}
	if c := Fig5Chart(points); !strings.Contains(c, "worst proposed") {
		t.Fatalf("fig5 chart malformed:\n%s", c)
	}
}

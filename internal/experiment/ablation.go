package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/workload"
)

// AblationConfig drives the heuristic-phase ablation study (extension:
// quantifies how much each Resource_Alloc phase contributes).
type AblationConfig struct {
	Clients   int
	Scenarios int
	BaseSeed  int64
	Workload  workload.Config
	Solver    core.Config
}

// DefaultAblationConfig ablates on 10 mid-size scenarios.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Clients:   80,
		Scenarios: 10,
		BaseSeed:  1,
		Workload:  workload.DefaultConfig(),
		Solver:    core.DefaultConfig(),
	}
}

// AblationRow is the mean profit of one solver variant relative to the
// full configuration.
type AblationRow struct {
	Variant    string
	MeanProfit float64
	Relative   float64 // vs the full solver
}

// variant mutates a solver config for one ablation arm.
type variant struct {
	name   string
	mutate func(*core.Config)
}

func ablationVariants() []variant {
	return []variant{
		{name: "full", mutate: func(*core.Config) {}},
		{name: "no-share-adjust", mutate: func(c *core.Config) { c.DisableShareAdjust = true }},
		{name: "no-dispersion-adjust", mutate: func(c *core.Config) { c.DisableDispersionAdjust = true }},
		{name: "no-turn-on", mutate: func(c *core.Config) { c.DisableTurnOn = true }},
		{name: "no-turn-off", mutate: func(c *core.Config) { c.DisableTurnOff = true }},
		{name: "no-reassign", mutate: func(c *core.Config) { c.DisableReassign = true }},
		{name: "no-local-search", mutate: func(c *core.Config) {
			c.DisableShareAdjust = true
			c.DisableDispersionAdjust = true
			c.DisableTurnOn = true
			c.DisableTurnOff = true
			c.DisableReassign = true
		}},
		{name: "single-init", mutate: func(c *core.Config) { c.NumInitSolutions = 1 }},
		{name: "coarse-alpha (G=4)", mutate: func(c *core.Config) { c.AlphaGranularity = 4 }},
		{name: "fine-alpha (G=20)", mutate: func(c *core.Config) { c.AlphaGranularity = 20 }},
		{name: "stingy-shares (η×4)", mutate: func(c *core.Config) { c.ShadowPriceScale = 4 }},
		{name: "generous-shares (η÷4)", mutate: func(c *core.Config) { c.ShadowPriceScale = 0.25 }},
	}
}

// RunAblation evaluates every solver variant on the same scenario set.
func RunAblation(cfg AblationConfig) ([]AblationRow, error) {
	if cfg.Clients <= 0 || cfg.Scenarios <= 0 {
		return nil, fmt.Errorf("experiment: bad ablation config %+v", cfg)
	}
	variants := ablationVariants()
	sums := make([]float64, len(variants))
	for s := 0; s < cfg.Scenarios; s++ {
		wcfg := cfg.Workload
		wcfg.NumClients = cfg.Clients
		wcfg.Seed = cfg.BaseSeed + int64(s)
		scen, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			sCfg := cfg.Solver
			v.mutate(&sCfg)
			solver, err := core.NewSolver(scen, sCfg)
			if err != nil {
				return nil, err
			}
			a, _, err := solver.Solve()
			if err != nil {
				return nil, err
			}
			sums[vi] += a.Profit()
		}
	}
	rows := make([]AblationRow, len(variants))
	full := sums[0] / float64(cfg.Scenarios)
	for vi, v := range variants {
		mean := sums[vi] / float64(cfg.Scenarios)
		rows[vi] = AblationRow{Variant: v.name, MeanProfit: mean}
		if full != 0 {
			rows[vi].Relative = mean / full
		}
	}
	return rows, nil
}

// AblationTable renders the ablation rows as text.
func AblationTable(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: mean profit of solver variants (relative to full)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tmeanProfit\trelative")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\n", r.Variant, r.MeanProfit, r.Relative)
	}
	w.Flush()
	return b.String()
}

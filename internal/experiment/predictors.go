package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/predict"
	"repro/internal/workload"
)

// PredictorConfig drives the forecast-quality experiment: every predictor
// runs the same diurnal trace through the decision controller, so the
// table links forecast error (MAPE/RMSE) to realized profit — the
// quantity the paper's "predicted average request arrival rates" feed.
type PredictorConfig struct {
	Clients    int
	Epochs     int
	Seed       int64
	NoiseSigma float64
	Workload   workload.Config
	Solver     core.Config
}

// DefaultPredictorConfig runs 16 epochs of a noisy diurnal day.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		Clients:    40,
		Epochs:     16,
		Seed:       1,
		NoiseSigma: 0.08,
		Workload:   workload.DefaultConfig(),
		Solver:     core.DefaultConfig(),
	}
}

// PredictorRow is one forecaster's outcome.
type PredictorRow struct {
	Predictor      string
	MAPE           float64
	RMSE           float64
	RealizedProfit float64
	Saturated      int
}

// RunPredictors backtests each forecaster and replays it through the
// controller on the same trace.
func RunPredictors(cfg PredictorConfig) ([]PredictorRow, error) {
	if cfg.Clients <= 0 || cfg.Epochs < 2 {
		return nil, fmt.Errorf("experiment: bad predictor config %+v", cfg)
	}
	wcfg := cfg.Workload
	wcfg.NumClients = cfg.Clients
	wcfg.Seed = cfg.Seed
	scen, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	tr, err := epoch.GenerateTrace(base, cfg.Epochs, []epoch.Pattern{
		epoch.Diurnal{Period: cfg.Epochs, Amplitude: 0.4, Phase: 0.1},
	}, cfg.NoiseSigma, cfg.Seed)
	if err != nil {
		return nil, err
	}

	mk := func(name string, build func() (predict.Predictor, error)) (PredictorRow, error) {
		row := PredictorRow{Predictor: name}
		if build != nil {
			p, err := build()
			if err != nil {
				return row, err
			}
			m, err := predict.Backtest(tr, p)
			if err != nil {
				return row, err
			}
			row.MAPE = m.MAPE
			row.RMSE = m.RMSE
		}
		ccfg := epoch.DefaultControllerConfig()
		ccfg.Policy = epoch.AlwaysPolicy{}
		ccfg.Solver = cfg.Solver
		if build != nil {
			// A fresh predictor for the controller run (the backtest
			// consumed the first one's state).
			p, err := build()
			if err != nil {
				return row, err
			}
			ccfg.Predictor = p
		}
		sum, err := epoch.RunController(scen, tr, ccfg)
		if err != nil {
			return row, err
		}
		row.RealizedProfit = sum.TotalProfit
		for _, st := range sum.Steps {
			row.Saturated += st.SaturatedClients
		}
		return row, nil
	}

	specs := []struct {
		name  string
		build func() (predict.Predictor, error)
	}{
		{"oracle (actual rates)", nil},
		{"last value", func() (predict.Predictor, error) { return predict.NewLastValue(), nil }},
		{"EWMA α=0.5", func() (predict.Predictor, error) { return predict.NewEWMA(0.5) }},
		{"Holt α=0.6 β=0.3", func() (predict.Predictor, error) { return predict.NewHolt(0.6, 0.3) }},
		{"sliding mean w=4", func() (predict.Predictor, error) { return predict.NewSlidingMean(4) }},
	}
	rows := make([]PredictorRow, 0, len(specs))
	for _, s := range specs {
		row, err := mk(s.name, s.build)
		if err != nil {
			return nil, fmt.Errorf("experiment: predictor %s: %w", s.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PredictorTable renders the forecast comparison as text.
func PredictorTable(rows []PredictorRow) string {
	var b strings.Builder
	b.WriteString("Forecasters on a noisy diurnal trace (controller re-decides every epoch)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "predictor\tMAPE\tRMSE\trealizedProfit\tsaturatedClientEpochs")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.2f\t%d\n", r.Predictor, r.MAPE, r.RMSE, r.RealizedProfit, r.Saturated)
	}
	w.Flush()
	return b.String()
}

package experiment

import (
	"reflect"
	"testing"
)

// TestSweepWorkerEquivalence: RunSweep's scenario fan-out must produce
// byte-for-byte identical points at any worker count — each job writes
// its own (point, slot) cell and all per-job randomness is seeded from
// the job itself. Run under -race in CI.
func TestSweepWorkerEquivalence(t *testing.T) {
	run := func(workers int) []SweepPoint {
		cfg := DefaultSweepConfig()
		cfg.ClientCounts = []int{8, 15}
		cfg.ScenariosPerCount = 3
		cfg.ScenariosAtMaxCount = 2
		cfg.MCDraws = 10
		cfg.MCPasses = 2
		cfg.Workers = workers
		points, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return points
	}
	ref := run(1)
	got := run(4)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("sweep results differ between W=1 and W=4:\nW=1: %+v\nW=4: %+v", ref, got)
	}
}

package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/workload"
)

// EpochsConfig drives the decision-policy experiment: a diurnal +
// flash-crowd rate trace replayed against several decision policies
// (extension motivated by the paper's Section III epoch discussion).
type EpochsConfig struct {
	Clients    int
	Epochs     int
	Seed       int64
	NoiseSigma float64
	Workload   workload.Config
	Solver     core.Config
}

// DefaultEpochsConfig runs 16 epochs of a diurnal day with a flash crowd.
func DefaultEpochsConfig() EpochsConfig {
	return EpochsConfig{
		Clients:    50,
		Epochs:     16,
		Seed:       1,
		NoiseSigma: 0.05,
		Workload:   workload.DefaultConfig(),
		Solver:     core.DefaultConfig(),
	}
}

// EpochsRow is one decision policy's aggregate outcome.
type EpochsRow struct {
	Policy      string
	TotalProfit float64
	Decisions   int
	SolveTime   time.Duration
	Saturated   int
}

// RunEpochsExperiment replays one trace against every policy.
func RunEpochsExperiment(cfg EpochsConfig) ([]EpochsRow, error) {
	if cfg.Clients <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("experiment: bad epochs config %+v", cfg)
	}
	wcfg := cfg.Workload
	wcfg.NumClients = cfg.Clients
	wcfg.Seed = cfg.Seed
	scen, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	base := make([]float64, scen.NumClients())
	for i := range base {
		base[i] = scen.Clients[i].ArrivalRate
	}
	tr, err := epoch.GenerateTrace(base, cfg.Epochs, []epoch.Pattern{
		epoch.Diurnal{Period: cfg.Epochs, Amplitude: 0.4, Phase: 0.1},
		epoch.FlashCrowd{At: cfg.Epochs / 2, Duration: 2, Boost: 2, Every: 4},
	}, cfg.NoiseSigma, cfg.Seed)
	if err != nil {
		return nil, err
	}

	policies := []struct {
		name   string
		policy epoch.Policy
	}{
		{"always", epoch.AlwaysPolicy{}},
		{"threshold 10%", epoch.ThresholdPolicy{RelChange: 0.1}},
		{"threshold 30%", epoch.ThresholdPolicy{RelChange: 0.3}},
		{"periodic /4", &epoch.PeriodicPolicy{Every: 4}},
		{"never", epoch.NeverPolicy{}},
	}
	rows := make([]EpochsRow, 0, len(policies))
	for _, p := range policies {
		ccfg := epoch.DefaultControllerConfig()
		ccfg.Policy = p.policy
		ccfg.Solver = cfg.Solver
		sum, err := epoch.RunController(scen, tr, ccfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: policy %s: %w", p.name, err)
		}
		row := EpochsRow{
			Policy:      p.name,
			TotalProfit: sum.TotalProfit,
			Decisions:   sum.Decisions,
			SolveTime:   sum.TotalSolveTime,
		}
		for _, st := range sum.Steps {
			row.Saturated += st.SaturatedClients
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EpochsTable renders the policy comparison as text.
func EpochsTable(rows []EpochsRow) string {
	var b strings.Builder
	b.WriteString("Decision policies on a diurnal + flash-crowd trace\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\ttotalProfit\tdecisions\tsolveTime\tsaturatedClientEpochs")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%s\t%d\n",
			r.Policy, r.TotalProfit, r.Decisions, r.SolveTime.Round(time.Millisecond), r.Saturated)
	}
	w.Flush()
	return b.String()
}

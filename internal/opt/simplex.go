package opt

import (
	"errors"
	"fmt"
	"math"
)

// ConcaveItem is one coordinate of a separable concave maximization over a
// simplex: maximize Σ f_i(x_i) subject to Σ x_i = budget, 0 ≤ x_i < Cap_i.
//
// Deriv must be the derivative f_i', strictly decreasing on [0, Cap), with
// Deriv → −∞ as x → Cap (true for M/M/1 delays approaching saturation).
type ConcaveItem struct {
	Deriv func(x float64) float64
	Cap   float64
}

// ErrSimplexInfeasible is returned when Σ Cap_i ≤ budget, so the budget
// cannot be placed.
var ErrSimplexInfeasible = errors.New("opt: simplex budget exceeds total capacity")

// _capMargin keeps solutions strictly inside each item's capacity.
const _capMargin = 1e-9

// MaximizeOnSimplex solves the separable concave program by water-filling
// on the common derivative value ν: each x_i(ν) inverts f_i' (clipped to
// [0, Cap_i)), Σ x_i(ν) is decreasing in ν, and ν is found by bisection so
// the budget is met exactly. Returns the allocation aligned with items.
func MaximizeOnSimplex(items []ConcaveItem, budget float64) ([]float64, error) {
	if budget < 0 {
		return nil, fmt.Errorf("opt: negative simplex budget %v", budget)
	}
	if len(items) == 0 {
		if budget == 0 {
			return nil, nil
		}
		return nil, ErrSimplexInfeasible
	}
	var capSum float64
	for i, it := range items {
		if it.Cap < 0 || it.Deriv == nil {
			return nil, fmt.Errorf("opt: invalid concave item %d", i)
		}
		capSum += it.Cap * (1 - _capMargin)
	}
	if capSum <= budget {
		return nil, ErrSimplexInfeasible
	}

	// x_i(ν): invert the decreasing derivative by bisection on [0, cap).
	invert := func(it ConcaveItem, nu float64) float64 {
		hi := it.Cap * (1 - _capMargin)
		if hi <= 0 {
			return 0
		}
		if it.Deriv(0) <= nu {
			return 0
		}
		if it.Deriv(hi) >= nu {
			return hi
		}
		x, err := Bisect(func(x float64) float64 { return it.Deriv(x) - nu }, 0, hi)
		if err != nil {
			return 0
		}
		return x
	}
	sumAt := func(nu float64) float64 {
		var s float64
		for _, it := range items {
			s += invert(it, nu)
		}
		return s
	}

	// Bracket ν. At ν = max f'(0) the sum is 0 ≤ budget; decrease ν until
	// the sum exceeds the budget.
	hiNu := math.Inf(-1)
	for _, it := range items {
		if d := it.Deriv(0); d > hiNu {
			hiNu = d
		}
	}
	if math.IsInf(hiNu, -1) || sumAt(hiNu) >= budget {
		// Degenerate: even the top derivative already forces the budget.
		hiNu = math.Max(hiNu, 1)
	}
	loNu := hiNu - 1
	for sumAt(loNu) < budget {
		loNu = hiNu - 2*(hiNu-loNu)
		if hiNu-loNu > 1e30 {
			return nil, errors.New("opt: simplex multiplier bracket failed")
		}
	}
	nu, err := Bisect(func(nu float64) float64 { return sumAt(nu) - budget }, loNu, hiNu)
	if err != nil {
		return nil, fmt.Errorf("opt: simplex multiplier search: %w", err)
	}
	xs := make([]float64, len(items))
	var sum float64
	for i, it := range items {
		xs[i] = invert(it, nu)
		sum += xs[i]
	}
	// Repair residual numerical slack by scaling toward items with
	// remaining headroom.
	if slack := budget - sum; slack != 0 {
		distributeSlack(items, xs, slack)
	}
	return xs, nil
}

// distributeSlack adds (or removes) slack across items proportionally to
// their remaining headroom (or current value when removing).
func distributeSlack(items []ConcaveItem, xs []float64, slack float64) {
	if slack > 0 {
		var head float64
		for i, it := range items {
			head += it.Cap*(1-_capMargin) - xs[i]
		}
		if head <= 0 {
			return
		}
		for i, it := range items {
			xs[i] += slack * (it.Cap*(1-_capMargin) - xs[i]) / head
		}
		return
	}
	var total float64
	for _, x := range xs {
		total += x
	}
	if total <= 0 {
		return
	}
	for i := range xs {
		xs[i] += slack * xs[i] / total
	}
}

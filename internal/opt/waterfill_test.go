package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWaterfillSymmetricItems(t *testing.T) {
	items := []ShareItem{
		{Weight: 1, Exec: 1, PortionRate: 1, Cap: 4},
		{Weight: 1, Exec: 1, PortionRate: 1, Cap: 4},
	}
	shares, cost, err := WaterfillShares(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shares[0]-shares[1]) > 1e-9 {
		t.Fatalf("symmetric items got asymmetric shares %v", shares)
	}
	if math.Abs(shares[0]+shares[1]-1) > 1e-9 {
		t.Fatalf("budget not exhausted: %v", shares)
	}
	// Each queue: μ = 0.5·4 = 2, λ = 1 → delay 1, weighted cost 1 each.
	if math.Abs(cost-2) > 1e-6 {
		t.Fatalf("cost = %v, want 2", cost)
	}
}

func TestWaterfillHeavierItemGetsMore(t *testing.T) {
	items := []ShareItem{
		{Weight: 4, Exec: 1, PortionRate: 1, Cap: 4},
		{Weight: 1, Exec: 1, PortionRate: 1, Cap: 4},
	}
	shares, _, err := WaterfillShares(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] <= shares[1] {
		t.Fatalf("heavier item should get more share: %v", shares)
	}
}

func TestWaterfillZeroWeightGetsFloorOnly(t *testing.T) {
	items := []ShareItem{
		{Weight: 0, Exec: 1, PortionRate: 1, Cap: 4},
		{Weight: 1, Exec: 1, PortionRate: 1, Cap: 4},
	}
	shares, _, err := WaterfillShares(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	floor := items[0].minShare()
	if shares[0] > floor*(1+1e-3) {
		t.Fatalf("zero-weight share %v, want ≈ floor %v", shares[0], floor)
	}
}

func TestWaterfillInfeasible(t *testing.T) {
	items := []ShareItem{
		{Weight: 1, Exec: 1, PortionRate: 3, Cap: 4}, // floor 0.75
		{Weight: 1, Exec: 1, PortionRate: 2, Cap: 4}, // floor 0.5
	}
	if _, _, err := WaterfillShares(items, 1); !errors.Is(err, ErrInsufficientBudget) {
		t.Fatalf("err = %v, want ErrInsufficientBudget", err)
	}
	if _, _, err := WaterfillShares(items, 0); !errors.Is(err, ErrInsufficientBudget) {
		t.Fatalf("zero budget: err = %v, want ErrInsufficientBudget", err)
	}
}

func TestWaterfillInvalidItem(t *testing.T) {
	if _, _, err := WaterfillShares([]ShareItem{{Weight: 1, Exec: -1, PortionRate: 1, Cap: 4}}, 1); err == nil {
		t.Fatal("negative exec time should error")
	}
	if _, _, err := WaterfillShares([]ShareItem{{Weight: -1, Exec: 1, PortionRate: 1, Cap: 4}}, 1); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestWaterfillEmpty(t *testing.T) {
	shares, cost, err := WaterfillShares(nil, 1)
	if err != nil || shares != nil || cost != 0 {
		t.Fatalf("empty waterfill: %v %v %v", shares, cost, err)
	}
}

// TestWaterfillOptimalVsGrid verifies KKT optimality against an exhaustive
// 1-D grid search on two items (φ2 = budget − φ1).
func TestWaterfillOptimalVsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		items := []ShareItem{
			{Weight: 0.5 + rng.Float64()*3, Exec: 0.4 + 0.6*rng.Float64(), PortionRate: 0.2 + rng.Float64(), Cap: 2 + 4*rng.Float64()},
			{Weight: 0.5 + rng.Float64()*3, Exec: 0.4 + 0.6*rng.Float64(), PortionRate: 0.2 + rng.Float64(), Cap: 2 + 4*rng.Float64()},
		}
		budget := items[0].minShare() + items[1].minShare() + 0.1 + rng.Float64()*0.3
		if budget > 1 {
			budget = 1
		}
		shares, cost, err := WaterfillShares(items, budget)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(shares[0]+shares[1]-budget) > 1e-6 {
			t.Fatalf("trial %d: shares %v do not exhaust budget %v", trial, shares, budget)
		}
		best := math.Inf(1)
		for g := 1; g < 4000; g++ {
			p1 := budget * float64(g) / 4000
			c := items[0].delayCost(p1) + items[1].delayCost(budget-p1)
			if c < best {
				best = c
			}
		}
		if cost > best*(1+1e-3)+1e-9 {
			t.Fatalf("trial %d: waterfill cost %v worse than grid best %v", trial, cost, best)
		}
	}
}

// Property: shares respect floors and never exceed budget.
func TestWaterfillFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		items := make([]ShareItem, n)
		var floors float64
		for i := range items {
			items[i] = ShareItem{
				Weight:      rng.Float64() * 3,
				Exec:        0.4 + 0.6*rng.Float64(),
				PortionRate: rng.Float64(),
				Cap:         2 + 4*rng.Float64(),
			}
			floors += items[i].minShare()
		}
		budget := floors + 0.05 + rng.Float64()*0.5
		if budget > 1 {
			budget = 1
		}
		if floors >= budget {
			return true // infeasible inputs are exercised elsewhere
		}
		shares, _, err := WaterfillShares(items, budget)
		if err != nil {
			return false
		}
		var sum float64
		for i, s := range shares {
			if s < items[i].minShare()-1e-12 {
				return false
			}
			sum += s
		}
		return sum <= budget+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

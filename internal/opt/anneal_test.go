package opt

import (
	"math"
	"math/rand"
	"testing"
)

// quadState anneals over a 1-D quadratic bowl with minimum at 3.
type quadState struct {
	x float64
}

func (s quadState) Energy() float64 { return (s.x - 3) * (s.x - 3) }

func (s quadState) Neighbor(rng *rand.Rand) AnnealState {
	return quadState{x: s.x + rng.NormFloat64()*0.5}
}

func TestAnnealFindsQuadraticMinimum(t *testing.T) {
	cfg := AnnealConfig{InitialTemp: 2, Cooling: 0.995, Steps: 3000, Seed: 1}
	best, err := Anneal(quadState{x: -10}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := best.(quadState)
	if !ok {
		t.Fatalf("foreign state %T", best)
	}
	if math.Abs(got.x-3) > 0.3 {
		t.Fatalf("annealed to %v, want ≈3", got.x)
	}
}

func TestAnnealReturnsBestVisited(t *testing.T) {
	// Even if the walk wanders off late, the best state is retained.
	cfg := AnnealConfig{InitialTemp: 100, Cooling: 0.9999, Steps: 2000, Seed: 2}
	best, err := Anneal(quadState{x: 3}, cfg) // start at the optimum
	if err != nil {
		t.Fatal(err)
	}
	if best.Energy() > 1e-12 {
		t.Fatalf("lost the optimal start: energy %v", best.Energy())
	}
}

func TestAnnealValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  AnnealConfig
	}{
		{"zero steps", AnnealConfig{InitialTemp: 1, Cooling: 0.9, Steps: 0}},
		{"cooling 0", AnnealConfig{InitialTemp: 1, Cooling: 0, Steps: 10}},
		{"cooling 1", AnnealConfig{InitialTemp: 1, Cooling: 1, Steps: 10}},
		{"temp 0", AnnealConfig{InitialTemp: 0, Cooling: 0.9, Steps: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Anneal(quadState{}, tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestDefaultAnnealConfigValid(t *testing.T) {
	if _, err := Anneal(quadState{x: 0}, DefaultAnnealConfig()); err != nil {
		t.Fatal(err)
	}
}

package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mm1DispersionItem builds a ConcaveItem for the dispersion-rate problem:
// f(α) = −w·α·t·M/(M − α·s) delay shape with fixed shares, where M = φC
// and s = λ̃t; f'(α) = −w·t·M/(M−αs)².
func mm1DispersionItem(w, execT, m, s float64) ConcaveItem {
	return ConcaveItem{
		Cap: m / s,
		Deriv: func(x float64) float64 {
			den := m - x*s
			if den <= 0 {
				return math.Inf(-1)
			}
			return -w * execT * m / (den * den)
		},
	}
}

func mm1DispersionValue(w, execT, m, s, x float64) float64 {
	den := m - x*s
	if den <= 0 {
		return math.Inf(-1)
	}
	return -w * x * execT / den
}

func TestSimplexSymmetric(t *testing.T) {
	items := []ConcaveItem{
		mm1DispersionItem(1, 1, 2, 1),
		mm1DispersionItem(1, 1, 2, 1),
	}
	xs, err := MaximizeOnSimplex(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xs[0]-xs[1]) > 1e-6 {
		t.Fatalf("symmetric items got %v", xs)
	}
	if math.Abs(xs[0]+xs[1]-1) > 1e-6 {
		t.Fatalf("budget not met: %v", xs)
	}
}

func TestSimplexPrefersFasterServer(t *testing.T) {
	// Item 0 has double the service margin; it should carry more load.
	items := []ConcaveItem{
		mm1DispersionItem(1, 1, 4, 1),
		mm1DispersionItem(1, 1, 2, 1),
	}
	xs, err := MaximizeOnSimplex(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	if xs[0] <= xs[1] {
		t.Fatalf("faster item should carry more: %v", xs)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	items := []ConcaveItem{mm1DispersionItem(1, 1, 0.5, 1)} // cap 0.5 < 1
	if _, err := MaximizeOnSimplex(items, 1); !errors.Is(err, ErrSimplexInfeasible) {
		t.Fatalf("err = %v, want ErrSimplexInfeasible", err)
	}
	if _, err := MaximizeOnSimplex(nil, 1); !errors.Is(err, ErrSimplexInfeasible) {
		t.Fatalf("empty items: err = %v, want ErrSimplexInfeasible", err)
	}
}

func TestSimplexZeroBudget(t *testing.T) {
	items := []ConcaveItem{mm1DispersionItem(1, 1, 2, 1)}
	xs, err := MaximizeOnSimplex(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if xs[0] != 0 {
		t.Fatalf("zero budget should allocate nothing, got %v", xs)
	}
}

func TestSimplexNegativeBudget(t *testing.T) {
	if _, err := MaximizeOnSimplex(nil, -1); err == nil {
		t.Fatal("negative budget should error")
	}
}

// TestSimplexOptimalVsGrid compares against a grid search on two items.
func TestSimplexOptimalVsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		w1, w2 := 0.5+rng.Float64()*2, 0.5+rng.Float64()*2
		m1, m2 := 1.5+rng.Float64()*3, 1.5+rng.Float64()*3
		s := 1.0
		items := []ConcaveItem{
			mm1DispersionItem(w1, 1, m1, s),
			mm1DispersionItem(w2, 1, m2, s),
		}
		xs, err := MaximizeOnSimplex(items, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := mm1DispersionValue(w1, 1, m1, s, xs[0]) + mm1DispersionValue(w2, 1, m2, s, xs[1])
		best := math.Inf(-1)
		for g := 0; g <= 4000; g++ {
			x1 := float64(g) / 4000
			v := mm1DispersionValue(w1, 1, m1, s, x1) + mm1DispersionValue(w2, 1, m2, s, 1-x1)
			if v > best {
				best = v
			}
		}
		if got < best-1e-3*math.Abs(best)-1e-6 {
			t.Fatalf("trial %d: simplex value %v worse than grid best %v (xs=%v)", trial, got, best, xs)
		}
	}
}

// Property: allocation is feasible — non-negative, within caps, sums to
// the budget.
func TestSimplexFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		items := make([]ConcaveItem, n)
		var capSum float64
		for i := range items {
			m := 0.5 + rng.Float64()*3
			items[i] = mm1DispersionItem(0.1+rng.Float64(), 0.4+0.6*rng.Float64(), m, 1)
			capSum += items[i].Cap
		}
		budget := rng.Float64()
		if capSum <= budget+0.01 {
			return true
		}
		xs, err := MaximizeOnSimplex(items, budget)
		if err != nil {
			return false
		}
		var sum float64
		for i, x := range xs {
			if x < -1e-12 || x >= items[i].Cap {
				return false
			}
			sum += x
		}
		return math.Abs(sum-budget) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

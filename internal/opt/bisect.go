// Package opt contains the numerical optimization primitives the
// allocation heuristic is built from: Lagrange-multiplier water-filling
// for GPS shares (the closed form of the paper's eq. (16)/(18) plus a
// binary search on the multiplier), a concave-separable simplex allocator
// used for dispersion rates, the dynamic program that combines per-server
// portion values (paper Section V.A), and generic 1-D searches.
package opt

import "errors"

// ErrNoBracket is returned when a root cannot be bracketed in the given
// interval.
var ErrNoBracket = errors.New("opt: root not bracketed")

// _defaultBisectIters bounds the bisection loops; 200 halvings reduce any
// float64 bracket below 1 ulp.
const _defaultBisectIters = 200

// Bisect finds x in [lo, hi] with f(x) ≈ 0 for a function that is
// monotone (either direction) on the interval. It requires f(lo) and
// f(hi) to have opposite signs (zero counts as either sign).
func Bisect(f func(float64) float64, lo, hi float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < _defaultBisectIters; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// GoldenSection maximizes a unimodal function on [lo, hi] and returns the
// argmax. It performs iters shrink steps (each multiplies the interval by
// ~0.618).
func GoldenSection(f func(float64) float64, lo, hi float64, iters int) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters; i++ {
		if f1 < f2 {
			a = x1
			x1, f1 = x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b = x2
			x2, f2 = x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	return a + (b-a)/2
}

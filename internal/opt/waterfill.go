package opt

import (
	"errors"
	"fmt"
	"math"
)

// ShareItem describes one client portion competing for the GPS share
// budget of a single server in a single resource dimension.
//
// The delay cost the solver minimizes is Weight · t/(φ·C − a·t): Weight is
// the coefficient of the portion's M/M/1 delay in the profit function
// (λ_i · b_{c(i)} · α_ij in the paper), Exec is t, PortionRate is a = α·λ̃,
// Cap is C.
type ShareItem struct {
	Weight      float64
	Exec        float64
	PortionRate float64
	Cap         float64
}

// minShare is the stability floor a·t/C for the item.
func (it ShareItem) minShare() float64 {
	return it.PortionRate * it.Exec / it.Cap
}

// delayCost evaluates Weight·t/(φC − at); +Inf if infeasible.
func (it ShareItem) delayCost(share float64) float64 {
	den := share*it.Cap - it.PortionRate*it.Exec
	if den <= 0 {
		return math.Inf(1)
	}
	return it.Weight * it.Exec / den
}

// ErrInsufficientBudget is returned when the stability floors alone exceed
// the share budget, so no feasible allocation exists.
var ErrInsufficientBudget = errors.New("opt: share budget below stability floor")

// _stabilityMargin keeps every share strictly above its floor so delays
// stay finite; it mirrors the paper's ε in constraint (7).
const _stabilityMargin = 1e-6

// WaterfillShares splits the share budget of one server dimension across
// the items, minimizing the total weighted M/M/1 delay. This is the
// closed-form KKT solution of the paper's eq. (16)/(18): for multiplier η,
//
//	φ_i(η) = clamp( a_i·t_i/C + sqrt(Weight_i·t_i/(C·η)), lo_i, budget )
//
// and η is found by binary search so that Σφ_i = budget (or every item is
// saturated). Items with zero weight receive only their stability floor.
//
// It returns the shares (aligned with items) and the achieved total
// weighted delay.
func WaterfillShares(items []ShareItem, budget float64) ([]float64, float64, error) {
	if len(items) == 0 {
		return nil, 0, nil
	}
	if budget <= 0 {
		return nil, 0, ErrInsufficientBudget
	}
	lows := make([]float64, len(items))
	var floorSum float64
	for i, it := range items {
		if it.Cap <= 0 || it.Exec <= 0 || it.PortionRate < 0 || it.Weight < 0 {
			return nil, 0, fmt.Errorf("opt: invalid share item %d: %+v", i, it)
		}
		lows[i] = it.minShare() * (1 + _stabilityMargin)
		if lows[i] == 0 {
			// Zero-load item: any positive share keeps it stable; it only
			// needs share if it has weight, which the water level provides.
			lows[i] = 0
		}
		floorSum += lows[i]
	}
	if floorSum >= budget {
		return nil, 0, ErrInsufficientBudget
	}

	sharesAt := func(eta float64) ([]float64, float64) {
		shares := make([]float64, len(items))
		var sum float64
		for i, it := range items {
			var phi float64
			if it.Weight > 0 {
				phi = it.minShare() + math.Sqrt(it.Weight*it.Exec/(it.Cap*eta))
			}
			if phi < lows[i] {
				phi = lows[i]
			}
			if phi > budget {
				phi = budget
			}
			shares[i] = phi
			sum += phi
		}
		return shares, sum
	}

	// Bracket η: total share is decreasing in η.
	loEta, hiEta := 1e-18, 1.0
	for {
		if _, sum := sharesAt(hiEta); sum <= budget {
			break
		}
		hiEta *= 4
		if hiEta > 1e30 {
			break
		}
	}
	if _, sum := sharesAt(loEta); sum <= budget {
		// Even a near-zero multiplier (maximal shares) fits: saturate.
		shares, _ := sharesAt(loEta)
		return shares, totalDelayCost(items, shares), nil
	}
	eta, err := Bisect(func(eta float64) float64 {
		_, sum := sharesAt(eta)
		return sum - budget
	}, loEta, hiEta)
	if err != nil {
		return nil, 0, fmt.Errorf("opt: waterfill multiplier search: %w", err)
	}
	shares, sum := sharesAt(eta)
	// Distribute any numerical slack to the heaviest item; never take share
	// away (that could destabilize a floor-clamped item).
	if slack := budget - sum; slack > 0 {
		best := 0
		for i, it := range items {
			if it.Weight > items[best].Weight {
				best = i
			}
		}
		shares[best] += slack
	}
	return shares, totalDelayCost(items, shares), nil
}

func totalDelayCost(items []ShareItem, shares []float64) float64 {
	var c float64
	for i, it := range items {
		if it.Weight == 0 {
			continue
		}
		c += it.delayCost(shares[i])
	}
	return c
}

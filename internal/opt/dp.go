package opt

import (
	"errors"
	"math"
)

// NegInf marks an infeasible cell in a CombinePortions value table.
var NegInf = math.Inf(-1)

// ErrNoFeasibleCombination is returned when no choice of per-candidate
// portions sums to the required total.
var ErrNoFeasibleCombination = errors.New("opt: no feasible portion combination")

// CombinePortions is the dynamic program of the paper's Assign_Distribute:
// given values[s][g] — the profit contribution of routing g grid units
// (g·δ of the request stream) to candidate server s — choose g_s ≥ 0 with
// Σ g_s = total that maximizes Σ values[s][g_s].
//
// values[s] may be shorter than total+1; missing cells and NegInf cells
// are infeasible. values[s][0] must be 0 for "route nothing" to be free.
// Returns the best value and the chosen grid units per candidate.
func CombinePortions(values [][]float64, total int) (float64, []int, error) {
	return combinePortions(values, total, nil)
}

// PortionScratch holds the working arrays of a CombinePortions run so a
// hot caller (the reassignment scoring pool prices every client against
// every cluster) can reuse them across calls. The units slice returned
// by Combine aliases the scratch and is only valid until the next call.
type PortionScratch struct {
	dp, next []float64
	choice   []int16 // flat len(values)×(total+1) back-pointer matrix
	units    []int
}

// Combine is CombinePortions evaluated in this scratch's buffers.
func (ps *PortionScratch) Combine(values [][]float64, total int) (float64, []int, error) {
	return combinePortions(values, total, ps)
}

func combinePortions(values [][]float64, total int, ps *PortionScratch) (float64, []int, error) {
	if total < 0 {
		return 0, nil, errors.New("opt: negative total")
	}
	if len(values) == 0 {
		if total == 0 {
			return 0, nil, nil
		}
		return 0, nil, ErrNoFeasibleCombination
	}
	// dp[g] = best value routing g units among candidates seen so far.
	// choice[s*(total+1)+g] = units given to candidate s in the best
	// solution that routes g units among candidates 0..s.
	var dp, next []float64
	var choice []int16
	if ps != nil {
		dp = grow(ps.dp, total+1)
		next = grow(ps.next, total+1)
		choice = grow(ps.choice, len(values)*(total+1))
		ps.dp, ps.next, ps.choice = dp, next, choice
	} else {
		dp = make([]float64, total+1)
		next = make([]float64, total+1)
		choice = make([]int16, len(values)*(total+1))
	}
	dp[0] = 0
	for g := 1; g <= total; g++ {
		dp[g] = NegInf
	}

	for s, vals := range values {
		row := choice[s*(total+1) : (s+1)*(total+1)]
		for g := 0; g <= total; g++ {
			next[g] = NegInf
			row[g] = -1
		}
		maxG := len(vals) - 1
		if maxG > total {
			maxG = total
		}
		for g := 0; g <= total; g++ {
			if dp[g] == NegInf {
				continue
			}
			for u := 0; u+g <= total && u <= maxG; u++ {
				v := vals[u]
				if v == NegInf || math.IsNaN(v) {
					continue
				}
				if cand := dp[g] + v; cand > next[g+u] {
					next[g+u] = cand
					row[g+u] = int16(u)
				}
			}
		}
		dp, next = next, dp
	}
	if dp[total] == NegInf {
		return 0, nil, ErrNoFeasibleCombination
	}
	var units []int
	if ps != nil {
		units = grow(ps.units, len(values))
		ps.units = units
		// The dp/next swap above may have left the slices crossed; keep
		// the scratch headers pointing at both backing arrays either way.
		ps.dp, ps.next = dp, next
	} else {
		units = make([]int, len(values))
	}
	g := total
	for s := len(values) - 1; s >= 0; s-- {
		u := int(choice[s*(total+1)+g])
		if u < 0 {
			return 0, nil, ErrNoFeasibleCombination
		}
		units[s] = u
		g -= u
	}
	return dp[total], units, nil
}

// grow returns buf resliced to n, reallocating only when the capacity is
// insufficient.
func grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

package opt

import (
	"math"
	"testing"
)

func TestBisectIncreasing(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-12 {
		t.Fatalf("root = %v, want √2", x)
	}
}

func TestBisectDecreasing(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return 3 - x }, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 1e-12 {
		t.Fatalf("root = %v, want 3", x)
	}
}

func TestBisectEndpoints(t *testing.T) {
	if x, err := Bisect(func(x float64) float64 { return x }, 0, 1); err != nil || x != 0 {
		t.Fatalf("root at lo endpoint: x=%v err=%v", x, err)
	}
	if x, err := Bisect(func(x float64) float64 { return x - 1 }, 0, 1); err != nil || x != 1 {
		t.Fatalf("root at hi endpoint: x=%v err=%v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x + 10 }, 0, 1); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestGoldenSection(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return -(x - 2) * (x - 2) }, 0, 5, 80)
	if math.Abs(x-2) > 1e-9 {
		t.Fatalf("argmax = %v, want 2", x)
	}
}

func TestGoldenSectionBoundaryMax(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return x }, 0, 1, 80)
	if math.Abs(x-1) > 1e-9 {
		t.Fatalf("argmax = %v, want 1", x)
	}
}

package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCombinePortionsSingleCandidate(t *testing.T) {
	vals := [][]float64{{0, 1, 3, 4}}
	best, units, err := CombinePortions(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 || units[0] != 3 {
		t.Fatalf("best=%v units=%v, want 4 / [3]", best, units)
	}
}

func TestCombinePortionsSplitBeatsSingle(t *testing.T) {
	// Concave per-candidate values: splitting 2 units as 1+1 (2+2=4) beats
	// 2+0 (3).
	vals := [][]float64{
		{0, 2, 3},
		{0, 2, 3},
	}
	best, units, err := CombinePortions(vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 || units[0] != 1 || units[1] != 1 {
		t.Fatalf("best=%v units=%v, want 4 / [1 1]", best, units)
	}
}

func TestCombinePortionsInfeasibleCells(t *testing.T) {
	vals := [][]float64{
		{0, NegInf, NegInf},
		{0, 5, NegInf},
	}
	// Total 2 can only be 1+1, but candidate 0 at 1 unit is infeasible and
	// candidate 1 at 2 units is infeasible → no solution.
	if _, _, err := CombinePortions(vals, 2); !errors.Is(err, ErrNoFeasibleCombination) {
		t.Fatalf("err = %v, want ErrNoFeasibleCombination", err)
	}
}

func TestCombinePortionsShortRows(t *testing.T) {
	vals := [][]float64{
		{0, 1}, // can take at most 1 unit
		{0, 1, 10},
	}
	best, units, err := CombinePortions(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best != 11 || units[0] != 1 || units[1] != 2 {
		t.Fatalf("best=%v units=%v, want 11 / [1 2]", best, units)
	}
}

func TestCombinePortionsZeroTotal(t *testing.T) {
	best, units, err := CombinePortions([][]float64{{0, 1}, {0, 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best != 0 || units[0] != 0 || units[1] != 0 {
		t.Fatalf("best=%v units=%v, want 0 / [0 0]", best, units)
	}
}

func TestCombinePortionsEmpty(t *testing.T) {
	if _, _, err := CombinePortions(nil, 1); !errors.Is(err, ErrNoFeasibleCombination) {
		t.Fatalf("err = %v, want ErrNoFeasibleCombination", err)
	}
	if _, units, err := CombinePortions(nil, 0); err != nil || units != nil {
		t.Fatalf("empty zero-total should succeed: units=%v err=%v", units, err)
	}
	if _, _, err := CombinePortions([][]float64{{0}}, -1); err == nil {
		t.Fatal("negative total should error")
	}
}

// TestCombinePortionsVsBruteForce cross-checks the DP against exhaustive
// enumeration on random small instances.
func TestCombinePortionsVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		nCand := 1 + rng.Intn(4)
		total := 1 + rng.Intn(6)
		vals := make([][]float64, nCand)
		for s := range vals {
			row := make([]float64, total+1)
			for g := 1; g <= total; g++ {
				if rng.Float64() < 0.15 {
					row[g] = NegInf
				} else {
					row[g] = math.Round(rng.Float64()*200) / 10
				}
			}
			vals[s] = row
		}
		gotBest, gotUnits, gotErr := CombinePortions(vals, total)

		// Brute force.
		best := math.Inf(-1)
		var rec func(s, rem int, acc float64)
		rec = func(s, rem int, acc float64) {
			if s == nCand {
				if rem == 0 && acc > best {
					best = acc
				}
				return
			}
			for u := 0; u <= rem; u++ {
				v := vals[s][u]
				if v == NegInf {
					continue
				}
				rec(s+1, rem-u, acc+v)
			}
		}
		rec(0, total, 0)

		if math.IsInf(best, -1) {
			if !errors.Is(gotErr, ErrNoFeasibleCombination) {
				t.Fatalf("trial %d: want infeasible, got best=%v err=%v", trial, gotBest, gotErr)
			}
			continue
		}
		if gotErr != nil {
			t.Fatalf("trial %d: unexpected error %v", trial, gotErr)
		}
		if math.Abs(gotBest-best) > 1e-9 {
			t.Fatalf("trial %d: DP best %v != brute force %v", trial, gotBest, best)
		}
		var sum int
		var check float64
		for s, u := range gotUnits {
			sum += u
			check += vals[s][u]
		}
		if sum != total || math.Abs(check-gotBest) > 1e-9 {
			t.Fatalf("trial %d: reconstruction inconsistent: units=%v sum=%d value=%v best=%v",
				trial, gotUnits, sum, check, gotBest)
		}
	}
}

package opt

import (
	"fmt"
	"math"
	"math/rand"
)

// AnnealState is a candidate solution for simulated annealing. Neighbor
// must return a random neighbor without mutating the receiver.
type AnnealState interface {
	// Energy is the value being minimized.
	Energy() float64
	// Neighbor proposes a random nearby state.
	Neighbor(rng *rand.Rand) AnnealState
}

// AnnealConfig tunes the annealing schedule.
type AnnealConfig struct {
	// InitialTemp is the starting temperature (in energy units).
	InitialTemp float64
	// Cooling multiplies the temperature each step (0 < Cooling < 1).
	Cooling float64
	// Steps is the number of proposals.
	Steps int
	// Seed drives proposals and acceptance.
	Seed int64
}

// DefaultAnnealConfig is a mild geometric schedule.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{InitialTemp: 1, Cooling: 0.999, Steps: 5000, Seed: 1}
}

// Anneal minimizes the state's energy with the Metropolis criterion and a
// geometric cooling schedule, returning the best state visited.
func Anneal(start AnnealState, cfg AnnealConfig) (AnnealState, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("opt: anneal steps = %d", cfg.Steps)
	}
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		return nil, fmt.Errorf("opt: anneal cooling = %v", cfg.Cooling)
	}
	if cfg.InitialTemp <= 0 {
		return nil, fmt.Errorf("opt: anneal initial temperature = %v", cfg.InitialTemp)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := start
	curE := cur.Energy()
	best, bestE := cur, curE
	temp := cfg.InitialTemp
	for step := 0; step < cfg.Steps; step++ {
		next := cur.Neighbor(rng)
		nextE := next.Energy()
		if nextE <= curE || rng.Float64() < math.Exp((curE-nextE)/temp) {
			cur, curE = next, nextE
			if curE < bestE {
				best, bestE = cur, curE
			}
		}
		temp *= cfg.Cooling
	}
	return best, nil
}

package queueing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMM1ResponseTime(t *testing.T) {
	tests := []struct {
		name    string
		mu, lam float64
		want    float64
		wantErr error
	}{
		{name: "basic", mu: 2, lam: 1, want: 1},
		{name: "light load", mu: 10, lam: 1, want: 1.0 / 9},
		{name: "near saturation", mu: 1, lam: 0.999, want: 1000},
		{name: "zero arrivals", mu: 4, lam: 0, want: 0.25},
		{name: "saturated", mu: 1, lam: 1, wantErr: ErrUnstable},
		{name: "overloaded", mu: 1, lam: 2, wantErr: ErrUnstable},
		{name: "zero service", mu: 0, lam: 0, wantErr: ErrUnstable},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MM1ResponseTime(tt.mu, tt.lam)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("MM1ResponseTime(%v,%v) err = %v, want %v", tt.mu, tt.lam, err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("MM1ResponseTime(%v,%v) unexpected error: %v", tt.mu, tt.lam, err)
			}
			if math.Abs(got-tt.want) > 1e-9*tt.want+1e-12 {
				t.Fatalf("MM1ResponseTime(%v,%v) = %v, want %v", tt.mu, tt.lam, got, tt.want)
			}
		})
	}
}

func TestMM1ResponseTimeNegativeArrival(t *testing.T) {
	if _, err := MM1ResponseTime(1, -0.5); err == nil {
		t.Fatal("expected error for negative arrival rate")
	}
}

func TestMM1QueueLengthLittlesLaw(t *testing.T) {
	// L = λW must hold by construction; check a known value:
	// μ=2, λ=1 → W=1 → L=1 and also ρ/(1−ρ) = 0.5/0.5 = 1.
	l, err := MM1QueueLength(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-12 {
		t.Fatalf("L = %v, want 1", l)
	}
}

func TestMM1UtilizationMonotone(t *testing.T) {
	if got := MM1Utilization(4, 1); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := MM1Utilization(0, 1); !math.IsInf(got, 1) {
		t.Fatalf("utilization with zero service = %v, want +Inf", got)
	}
}

// Property: response time is decreasing in service rate and increasing in
// arrival rate on the stable region.
func TestMM1Monotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1 + rng.Float64()*9
		lam := rng.Float64() * mu * 0.9
		w1, err1 := MM1ResponseTime(mu, lam)
		w2, err2 := MM1ResponseTime(mu*1.1, lam)
		w3, err3 := MM1ResponseTime(mu, lam*0.9)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return w2 < w1 && w3 <= w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGPSServiceRate(t *testing.T) {
	tests := []struct {
		share, cap, exec, want float64
	}{
		{0.5, 4, 1, 2},
		{1, 4, 0.5, 8},
		{0.25, 2, 0.4, 1.25},
	}
	for _, tt := range tests {
		if got := GPSServiceRate(tt.share, tt.cap, tt.exec); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("GPSServiceRate(%v,%v,%v) = %v, want %v", tt.share, tt.cap, tt.exec, got, tt.want)
		}
	}
	if got := GPSServiceRate(0.5, 4, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero exec time should give +Inf rate, got %v", got)
	}
}

func TestPortionDelay(t *testing.T) {
	// share 0.5 of cap 4 with exec 1 → μ = 2; rate 1 → delay 1.
	d, err := PortionDelay(0.5, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("delay = %v, want 1", d)
	}
	if _, err := PortionDelay(0.25, 4, 1, 1); !errors.Is(err, ErrUnstable) {
		t.Fatalf("saturated portion: err = %v, want ErrUnstable", err)
	}
}

func TestMinStableShareBoundary(t *testing.T) {
	// Just above the floor the queue is stable; at the floor it is not.
	const (
		cap  = 4.0
		exec = 0.7
		rate = 2.0
	)
	floor := MinStableShare(cap, exec, rate)
	if _, err := PortionDelay(floor, cap, exec, rate); !errors.Is(err, ErrUnstable) {
		t.Fatalf("at floor: err = %v, want ErrUnstable", err)
	}
	if _, err := PortionDelay(floor*1.001, cap, exec, rate); err != nil {
		t.Fatalf("above floor: unexpected error %v", err)
	}
	if got := MinStableShare(0, exec, rate); !math.IsInf(got, 1) {
		t.Fatalf("zero capacity floor = %v, want +Inf", got)
	}
}

func TestLoadFractionMatchesFloor(t *testing.T) {
	f := func(cap, exec, rate float64) bool {
		cap = 1 + math.Abs(cap)
		exec = 0.1 + math.Abs(exec)
		rate = math.Abs(rate)
		return LoadFraction(cap, exec, rate) == MinStableShare(cap, exec, rate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPoisson(t *testing.T) {
	rates, err := SplitPoisson(4, []float64{0.5, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 1}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-12 {
			t.Fatalf("rates[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
	if _, err := SplitPoisson(-1, []float64{1}); err == nil {
		t.Fatal("negative rate should error")
	}
	if _, err := SplitPoisson(1, []float64{-0.5}); err == nil {
		t.Fatal("negative probability should error")
	}
}

// Property: splitting preserves total rate when probabilities sum to 1.
func TestSplitPoissonConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		probs := make([]float64, n)
		var sum float64
		for i := range probs {
			probs[i] = rng.Float64()
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		rate := rng.Float64() * 10
		rates, err := SplitPoisson(rate, probs)
		if err != nil {
			return false
		}
		var got float64
		for _, r := range rates {
			got += r
		}
		return math.Abs(got-rate) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

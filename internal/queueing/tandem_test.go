package queueing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTandemDelayAdditive(t *testing.T) {
	sh := PortionShares{Proc: 0.5, Comm: 0.5}
	caps := ServerCaps{Proc: 4, Comm: 2}
	ex := ExecTimes{Proc: 1, Comm: 0.5}
	// proc: μ = 0.5·4/1 = 2, λ=1 → 1; comm: μ = 0.5·2/0.5 = 2, λ=1 → 1.
	d, err := TandemDelay(sh, caps, ex, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Fatalf("tandem delay = %v, want 2", d)
	}
}

func TestTandemDelayUnstableEitherStage(t *testing.T) {
	caps := ServerCaps{Proc: 4, Comm: 4}
	ex := ExecTimes{Proc: 1, Comm: 1}
	if _, err := TandemDelay(PortionShares{Proc: 0.1, Comm: 0.9}, caps, ex, 1); !errors.Is(err, ErrUnstable) {
		t.Fatalf("proc-saturated: err = %v, want ErrUnstable", err)
	}
	if _, err := TandemDelay(PortionShares{Proc: 0.9, Comm: 0.1}, caps, ex, 1); !errors.Is(err, ErrUnstable) {
		t.Fatalf("comm-saturated: err = %v, want ErrUnstable", err)
	}
}

func TestMeanResponseTimeSinglePortion(t *testing.T) {
	portions := []Portion{{
		Alpha:  1,
		Shares: PortionShares{Proc: 0.5, Comm: 0.5},
		Caps:   ServerCaps{Proc: 4, Comm: 4},
	}}
	r, err := MeanResponseTime(portions, ExecTimes{Proc: 1, Comm: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-12 {
		t.Fatalf("R̄ = %v, want 2", r)
	}
}

func TestMeanResponseTimeSkipsZeroAlpha(t *testing.T) {
	portions := []Portion{
		{Alpha: 0, Shares: PortionShares{}, Caps: ServerCaps{Proc: 1, Comm: 1}},
		{Alpha: 1, Shares: PortionShares{Proc: 0.5, Comm: 0.5}, Caps: ServerCaps{Proc: 4, Comm: 4}},
	}
	if _, err := MeanResponseTime(portions, ExecTimes{Proc: 1, Comm: 1}, 1); err != nil {
		t.Fatalf("zero-alpha portion must be ignored, got error %v", err)
	}
}

// Property: splitting a stream across two identical servers with identical
// shares cannot give a worse mean response time representation than the
// formula computed portion-wise; and R̄ is a convex combination of portion
// delays so it lies between the min and max portion delay.
func TestMeanResponseTimeConvexCombination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lam := 0.5 + rng.Float64()*2
		alpha := 0.05 + 0.9*rng.Float64()
		ex := ExecTimes{Proc: 0.4 + 0.6*rng.Float64(), Comm: 0.4 + 0.6*rng.Float64()}
		mk := func(a float64) Portion {
			// Shares sized with headroom ≥ 2× the stability floor.
			caps := ServerCaps{Proc: 4, Comm: 4}
			return Portion{
				Alpha: a,
				Caps:  caps,
				Shares: PortionShares{
					Proc: 2 * MinStableShare(caps.Proc, ex.Proc, a*lam) * (1 + rng.Float64()),
					Comm: 2 * MinStableShare(caps.Comm, ex.Comm, a*lam) * (1 + rng.Float64()),
				},
			}
		}
		p1, p2 := mk(alpha), mk(1-alpha)
		r, err := MeanResponseTime([]Portion{p1, p2}, ex, lam)
		if err != nil {
			return false
		}
		d1, err1 := TandemDelay(p1.Shares, p1.Caps, ex, p1.Alpha*lam)
		d2, err2 := TandemDelay(p2.Shares, p2.Caps, ex, p2.Alpha*lam)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, hi := math.Min(d1, d2), math.Max(d1, d2)
		return r >= lo-1e-9 && r <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

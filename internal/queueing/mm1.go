// Package queueing implements the analytical queueing model of the paper:
// M/M/1 response times under Generalized Processor Sharing (GPS), Poisson
// stream splitting, tandem (pipelined) processing+communication queues, and
// the stability bounds the optimizer must respect.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable is returned when an arrival rate meets or exceeds the service
// rate of a queue, so no finite mean response time exists.
var ErrUnstable = errors.New("queueing: arrival rate >= service rate (unstable queue)")

// MM1ResponseTime returns the mean sojourn (response) time of an M/M/1
// queue with the given service and arrival rates: 1/(μ − λ).
func MM1ResponseTime(serviceRate, arrivalRate float64) (float64, error) {
	if serviceRate <= 0 {
		return 0, ErrUnstable
	}
	if arrivalRate < 0 {
		return 0, errors.New("queueing: negative arrival rate")
	}
	if arrivalRate >= serviceRate {
		return 0, ErrUnstable
	}
	return 1 / (serviceRate - arrivalRate), nil
}

// MM1QueueLength returns the mean number of requests in an M/M/1 queue
// (in service plus waiting): ρ/(1−ρ).
func MM1QueueLength(serviceRate, arrivalRate float64) (float64, error) {
	t, err := MM1ResponseTime(serviceRate, arrivalRate)
	if err != nil {
		return 0, err
	}
	// Little's law: L = λ·W.
	return arrivalRate * t, nil
}

// MM1Utilization returns ρ = λ/μ.
func MM1Utilization(serviceRate, arrivalRate float64) float64 {
	if serviceRate <= 0 {
		return math.Inf(1)
	}
	return arrivalRate / serviceRate
}

// GPSServiceRate converts a GPS share of a server into the M/M/1 service
// rate seen by the client: share × capacity / execTime, where execTime is
// the mean execution time of one request on one unit of capacity.
func GPSServiceRate(share, capacity, execTime float64) float64 {
	if execTime <= 0 {
		return math.Inf(1)
	}
	return share * capacity / execTime
}

// PortionDelay is the mean response time of the portion of a client's
// requests served on one server in one resource dimension:
//
//	t / (φ·C − a·t)
//
// with share φ, capacity C, execution time t and portion arrival rate a
// (= α·λ̃). It returns ErrUnstable when the share cannot sustain the load.
func PortionDelay(share, capacity, execTime, portionRate float64) (float64, error) {
	mu := GPSServiceRate(share, capacity, execTime)
	return MM1ResponseTime(mu, portionRate)
}

// MinStableShare is the GPS share strictly below which a portion with the
// given load is unstable: a·t/C. Callers must allocate strictly more.
func MinStableShare(capacity, execTime, portionRate float64) float64 {
	if capacity <= 0 {
		return math.Inf(1)
	}
	return portionRate * execTime / capacity
}

// LoadFraction is the fraction of a server's capacity a portion actually
// consumes (its contribution to the processing-domain utilization used in
// the energy cost model): a·t/C. Numerically identical to MinStableShare
// but semantically distinct: this one is work, not a share floor.
func LoadFraction(capacity, execTime, portionRate float64) float64 {
	return MinStableShare(capacity, execTime, portionRate)
}

// SplitPoisson returns the arrival rates of a Poisson stream of rate λ
// split with the given probabilities. By the Poisson splitting property
// each output is again Poisson. Probabilities need not sum exactly to 1
// (the caller may route a remainder elsewhere), but must be non-negative.
func SplitPoisson(rate float64, probs []float64) ([]float64, error) {
	if rate < 0 {
		return nil, errors.New("queueing: negative rate")
	}
	out := make([]float64, len(probs))
	for i, p := range probs {
		if p < 0 {
			return nil, errors.New("queueing: negative split probability")
		}
		out[i] = rate * p
	}
	return out, nil
}

package queueing

import (
	"errors"
	"math"
)

// MM1SojournTail is P(T > t) for the sojourn time of an M/M/1 FCFS queue:
// the sojourn time is exponential with rate (μ − λ).
func MM1SojournTail(serviceRate, arrivalRate, t float64) (float64, error) {
	if arrivalRate >= serviceRate || serviceRate <= 0 {
		return 0, ErrUnstable
	}
	if t < 0 {
		return 1, nil
	}
	return math.Exp(-(serviceRate - arrivalRate) * t), nil
}

// MM1SojournPercentile returns the q-quantile (0 < q < 1) of the M/M/1
// sojourn time: −ln(1−q)/(μ−λ).
func MM1SojournPercentile(serviceRate, arrivalRate, q float64) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, errors.New("queueing: percentile must be in (0,1)")
	}
	if arrivalRate >= serviceRate || serviceRate <= 0 {
		return 0, ErrUnstable
	}
	return -math.Log(1-q) / (serviceRate - arrivalRate), nil
}

// TandemSojournTail is P(T > t) for the sum of the two independent
// exponential sojourn times of the pipelined processing→communication
// queues (a hypoexponential distribution): with rates r1 = μ1−λ and
// r2 = μ2−λ,
//
//	P(T > t) = (r2·e^{−r1·t} − r1·e^{−r2·t}) / (r2 − r1)
//
// and the Erlang-2 tail (1 + r·t)·e^{−r·t} when the rates coincide.
func TandemSojournTail(sh PortionShares, caps ServerCaps, ex ExecTimes, portionRate, t float64) (float64, error) {
	r1, err := stageRate(sh.Proc, caps.Proc, ex.Proc, portionRate)
	if err != nil {
		return 0, err
	}
	r2, err := stageRate(sh.Comm, caps.Comm, ex.Comm, portionRate)
	if err != nil {
		return 0, err
	}
	if t < 0 {
		return 1, nil
	}
	if diff := math.Abs(r1 - r2); diff < 1e-9*math.Max(r1, r2) {
		r := (r1 + r2) / 2
		return (1 + r*t) * math.Exp(-r*t), nil
	}
	return (r2*math.Exp(-r1*t) - r1*math.Exp(-r2*t)) / (r2 - r1), nil
}

// TandemSojournPercentile inverts TandemSojournTail by bisection: the
// smallest t with P(T > t) ≤ 1 − q.
func TandemSojournPercentile(sh PortionShares, caps ServerCaps, ex ExecTimes, portionRate, q float64) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, errors.New("queueing: percentile must be in (0,1)")
	}
	target := 1 - q
	// Bracket: the tail is 1 at t=0 and decays exponentially.
	hi := 1.0
	for {
		tail, err := TandemSojournTail(sh, caps, ex, portionRate, hi)
		if err != nil {
			return 0, err
		}
		if tail <= target {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, errors.New("queueing: percentile bracket failed")
		}
	}
	lo := 0.0
	for i := 0; i < 100; i++ {
		mid := lo + (hi-lo)/2
		tail, err := TandemSojournTail(sh, caps, ex, portionRate, mid)
		if err != nil {
			return 0, err
		}
		if tail > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// stageRate is the exponential sojourn rate μ − λ of one stage.
func stageRate(share, capacity, exec, rate float64) (float64, error) {
	mu := GPSServiceRate(share, capacity, exec)
	if rate >= mu || mu <= 0 {
		return 0, ErrUnstable
	}
	return mu - rate, nil
}

// DeadlineMissProbability is the fraction of a client's requests expected
// to exceed the deadline, aggregated over its portions: Σ_j α_j·P(T_j > d).
func DeadlineMissProbability(portions []Portion, ex ExecTimes, predictedRate, deadline float64) (float64, error) {
	var miss float64
	for _, p := range portions {
		if p.Alpha == 0 {
			continue
		}
		tail, err := TandemSojournTail(p.Shares, p.Caps, ex, p.Alpha*predictedRate, deadline)
		if err != nil {
			return 0, err
		}
		miss += p.Alpha * tail
	}
	return miss, nil
}

package queueing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMM1SojournTail(t *testing.T) {
	// μ=2, λ=1 → T ~ Exp(1): P(T>1) = e^{−1}.
	tail, err := MM1SojournTail(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tail-math.Exp(-1)) > 1e-12 {
		t.Fatalf("tail = %v, want e^-1", tail)
	}
	if tail, err := MM1SojournTail(2, 1, -1); err != nil || tail != 1 {
		t.Fatalf("negative t: tail=%v err=%v", tail, err)
	}
	if _, err := MM1SojournTail(1, 1, 1); !errors.Is(err, ErrUnstable) {
		t.Fatalf("saturated: err = %v", err)
	}
}

func TestMM1SojournPercentile(t *testing.T) {
	// μ−λ = 1 → median = ln 2.
	p, err := MM1SojournPercentile(2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-math.Ln2) > 1e-12 {
		t.Fatalf("median = %v, want ln2", p)
	}
	if _, err := MM1SojournPercentile(2, 1, 0); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := MM1SojournPercentile(2, 1, 1); err == nil {
		t.Fatal("q=1 accepted")
	}
}

// mm1PercentileMatchesMeanRelation: for an exponential distribution the
// mean equals the 63.2-percentile ( 1 − e^{−1} ).
func TestMM1PercentileMeanRelation(t *testing.T) {
	mean, err := MM1ResponseTime(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := MM1SojournPercentile(3, 1, 1-math.Exp(-1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-q) > 1e-9 {
		t.Fatalf("mean %v != 63.2th percentile %v", mean, q)
	}
}

func tandemArgs() (PortionShares, ServerCaps, ExecTimes) {
	return PortionShares{Proc: 0.5, Comm: 0.5},
		ServerCaps{Proc: 4, Comm: 2},
		ExecTimes{Proc: 1, Comm: 0.5}
}

func TestTandemSojournTailBoundaries(t *testing.T) {
	sh, caps, ex := tandemArgs()
	tail0, err := TandemSojournTail(sh, caps, ex, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tail0-1) > 1e-12 {
		t.Fatalf("P(T>0) = %v, want 1", tail0)
	}
	tailBig, err := TandemSojournTail(sh, caps, ex, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tailBig > 1e-12 {
		t.Fatalf("P(T>100) = %v, want ≈0", tailBig)
	}
	if _, err := TandemSojournTail(PortionShares{Proc: 0.1, Comm: 0.5}, caps, ex, 1, 1); !errors.Is(err, ErrUnstable) {
		t.Fatalf("saturated stage: err = %v", err)
	}
}

func TestTandemSojournTailEqualRates(t *testing.T) {
	// Both stages μ−λ = 1 → Erlang-2 tail (1+t)e^{−t}.
	sh := PortionShares{Proc: 0.5, Comm: 0.5}
	caps := ServerCaps{Proc: 4, Comm: 4}
	ex := ExecTimes{Proc: 1, Comm: 1}
	tail, err := TandemSojournTail(sh, caps, ex, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Exp(-2)
	if math.Abs(tail-want) > 1e-9 {
		t.Fatalf("Erlang-2 tail = %v, want %v", tail, want)
	}
}

func TestTandemPercentileInvertsTail(t *testing.T) {
	sh, caps, ex := tandemArgs()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		tq, err := TandemSojournPercentile(sh, caps, ex, 1, q)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := TandemSojournTail(sh, caps, ex, 1, tq)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tail-(1-q)) > 1e-9 {
			t.Fatalf("q=%v: tail(t_q) = %v, want %v", q, tail, 1-q)
		}
	}
	if _, err := TandemSojournPercentile(sh, caps, ex, 1, 1.5); err == nil {
		t.Fatal("q>1 accepted")
	}
}

// Property: the tandem tail is monotone decreasing in t and percentiles
// are monotone increasing in q.
func TestTandemTailMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sh := PortionShares{Proc: 0.3 + 0.6*rng.Float64(), Comm: 0.3 + 0.6*rng.Float64()}
		caps := ServerCaps{Proc: 2 + 4*rng.Float64(), Comm: 2 + 4*rng.Float64()}
		ex := ExecTimes{Proc: 0.4 + 0.6*rng.Float64(), Comm: 0.4 + 0.6*rng.Float64()}
		rate := 0.3 * math.Min(sh.Proc*caps.Proc/ex.Proc, sh.Comm*caps.Comm/ex.Comm)
		t1 := rng.Float64() * 3
		t2 := t1 + 0.1 + rng.Float64()
		a, err1 := TandemSojournTail(sh, caps, ex, rate, t1)
		b, err2 := TandemSojournTail(sh, caps, ex, rate, t2)
		if err1 != nil || err2 != nil {
			return false
		}
		if b > a+1e-12 {
			return false
		}
		p50, err3 := TandemSojournPercentile(sh, caps, ex, rate, 0.5)
		p95, err4 := TandemSojournPercentile(sh, caps, ex, rate, 0.95)
		if err3 != nil || err4 != nil {
			return false
		}
		return p95 > p50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineMissProbability(t *testing.T) {
	sh, caps, ex := tandemArgs()
	portions := []Portion{
		{Alpha: 0.5, Shares: sh, Caps: caps},
		{Alpha: 0.5, Shares: sh, Caps: caps},
		{Alpha: 0, Shares: PortionShares{}, Caps: caps}, // ignored
	}
	// With identical portions at half rate each, the miss probability is
	// the tail of one portion at rate 0.5.
	miss, err := DeadlineMissProbability(portions, ex, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := TandemSojournTail(sh, caps, ex, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(miss-single) > 1e-12 {
		t.Fatalf("miss = %v, want %v", miss, single)
	}
	if miss <= 0 || miss >= 1 {
		t.Fatalf("miss probability %v out of range", miss)
	}
}

package queueing

// PortionShares are the GPS shares granted to one portion of a client's
// requests on one server: a processing share and a communication share.
type PortionShares struct {
	Proc float64
	Comm float64
}

// ServerCaps are the two capacities of the server the portion runs on.
type ServerCaps struct {
	Proc float64
	Comm float64
}

// ExecTimes are the client's mean execution times per unit resource.
type ExecTimes struct {
	Proc float64
	Comm float64
}

// TandemDelay is the mean response time of one portion through the
// pipelined processing→communication queues (paper eq. (1)): the service
// times are independent and additive, and by Burke's theorem the departure
// process of the processing M/M/1 queue is Poisson with the same rate, so
// the communication queue is again M/M/1 with arrival rate a.
func TandemDelay(sh PortionShares, caps ServerCaps, ex ExecTimes, portionRate float64) (float64, error) {
	dp, err := PortionDelay(sh.Proc, caps.Proc, ex.Proc, portionRate)
	if err != nil {
		return 0, err
	}
	db, err := PortionDelay(sh.Comm, caps.Comm, ex.Comm, portionRate)
	if err != nil {
		return 0, err
	}
	return dp + db, nil
}

// Portion describes one routed fraction of a client's request stream for
// response-time aggregation.
type Portion struct {
	Alpha  float64 // fraction of the client's requests routed here
	Shares PortionShares
	Caps   ServerCaps
}

// MeanResponseTime aggregates the per-portion tandem delays into the
// client's overall mean response time: R̄ = Σ_j α_j · d_j, where the
// portion arrival rate is α_j·λ̃.
func MeanResponseTime(portions []Portion, ex ExecTimes, predictedRate float64) (float64, error) {
	var r float64
	for _, p := range portions {
		if p.Alpha == 0 {
			continue
		}
		d, err := TandemDelay(p.Shares, p.Caps, ex, p.Alpha*predictedRate)
		if err != nil {
			return 0, err
		}
		r += p.Alpha * d
	}
	return r, nil
}

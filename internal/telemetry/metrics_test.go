package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammering drives counters, gauges and histograms from
// many goroutines; run under -race this is the registry's thread-safety
// proof, and the totals double as a lost-update check.
func TestConcurrentHammering(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 16
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve handles inside the goroutine: creation races too.
			c := reg.Counter("hammer_total")
			g := reg.Gauge("hammer_gauge")
			h := reg.Histogram("hammer_seconds", DurationBuckets)
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("hammer_total").Value(); got != workers*perW {
		t.Errorf("counter = %d, want %d", got, workers*perW)
	}
	if got := reg.Gauge("hammer_gauge").Value(); got != workers*perW {
		t.Errorf("gauge = %v, want %d", got, workers*perW)
	}
	h := reg.Histogram("hammer_seconds", nil)
	if got := h.Count(); got != workers*perW {
		t.Errorf("histogram count = %d, want %d", got, workers*perW)
	}
	wantSum := float64(workers) * func() float64 {
		var s float64
		for i := 0; i < perW; i++ {
			s += float64(i%100) / 1000
		}
		return s
	}()
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestPrometheusGolden locks the exposition format: sorted families,
// HELP/TYPE headers, label merging on histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Help("zz_requests_total", "requests served")
	reg.Counter(Name("zz_requests_total", "op", "get")).Add(3)
	reg.Counter(Name("zz_requests_total", "op", "put")).Add(1)
	reg.Gauge("aa_profit").Set(12.5)
	reg.Histogram(Name("mid_seconds", "phase", "solve"), []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# TYPE aa_profit gauge
aa_profit 12.5
# TYPE mid_seconds histogram
mid_seconds_bucket{phase="solve",le="0.1"} 0
mid_seconds_bucket{phase="solve",le="1"} 1
mid_seconds_bucket{phase="solve",le="+Inf"} 1
mid_seconds_sum{phase="solve"} 0.5
mid_seconds_count{phase="solve"} 1
# HELP zz_requests_total requests served
# TYPE zz_requests_total counter
zz_requests_total{op="get"} 3
zz_requests_total{op="put"} 1
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryExpvarString(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(2)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	var decoded map[string]any
	if err := json.Unmarshal([]byte(reg.String()), &decoded); err != nil {
		t.Fatalf("expvar string is not JSON: %v\n%s", err, reg.String())
	}
	if decoded["c"].(float64) != 2 {
		t.Errorf("c = %v", decoded["c"])
	}
	hist := decoded["h"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 0.5 {
		t.Errorf("h = %v", hist)
	}
}

func TestPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	if err := reg.PublishExpvar("telemetry_test_reg"); err != nil {
		t.Fatal(err)
	}
	// Second publish of the same registry is a no-op.
	if err := reg.PublishExpvar("telemetry_test_reg"); err != nil {
		t.Fatal(err)
	}
	// A different registry must not panic on the taken name.
	if err := NewRegistry().PublishExpvar("telemetry_test_reg"); err == nil {
		t.Fatal("want error for duplicate expvar name")
	}
}

// TestNilSafety: every operation on nil handles must be a no-op.
func TestNilSafety(t *testing.T) {
	var (
		reg *Registry
		s   *Set
	)
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x", nil).Observe(1)
	reg.Help("x", "h")
	reg.WritePrometheus(&strings.Builder{})
	if reg.String() != "{}" {
		t.Error("nil registry String")
	}
	s.Counter("x").Add(5)
	s.Gauge("x").Add(1)
	s.Histogram("x", nil).Observe(1)
	sp := s.Start("x")
	sp.Attr("k", 1)
	sp.End()
	if s.Enabled() {
		t.Error("nil set reports enabled")
	}
	s.Logger().Info("dropped")
}

// TestDisabledPathAllocationFree is the ≤5%-overhead guarantee: with
// telemetry disabled (nil handles), instrumented hot paths must not
// allocate.
func TestDisabledPathAllocationFree(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
		s  *Set
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(2)
		sp := tr.Start("op")
		sp.Attr("k", "v")
		sp.End()
		sp2 := s.Start("op")
		sp2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestNameFormatting(t *testing.T) {
	if got := Name("m"); got != "m" {
		t.Errorf("Name no labels = %q", got)
	}
	if got := Name("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Errorf("Name = %q", got)
	}
	if got := Name("m", "a"); got != "m" {
		t.Errorf("Name odd kv = %q", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	if h.Mean() != 0 {
		t.Error("empty mean")
	}
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 {
		t.Errorf("mean = %v", h.Mean())
	}
}

// TestDurationBucketsCoverMinutes pins the widened histogram range: solve
// phases at the million-client scale run minutes, and before the 30–600s
// buckets existed a 94-second observation fell straight into +Inf.
func TestDurationBucketsCoverMinutes(t *testing.T) {
	if top := DurationBuckets[len(DurationBuckets)-1]; top != 600 {
		t.Fatalf("DurationBuckets top out at %vs, want 600s", top)
	}
	r := NewRegistry()
	h := r.Histogram("solve_seconds", DurationBuckets)
	h.Observe(94.0)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	// Cumulative buckets: everything below 120s is empty, 120s and up
	// (including +Inf) hold the observation.
	for _, want := range []string{
		`solve_seconds_bucket{le="60"} 0`,
		`solve_seconds_bucket{le="120"} 1`,
		`solve_seconds_bucket{le="600"} 1`,
		`solve_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestMicroBucketsCoverDecisionLatencies pins the fine-grained preset the
// online decision path uses: a few hundred nanoseconds must land in a
// low bucket, not collapse into the first DurationBuckets bucket, and an
// inline-commit observation (milliseconds) must still resolve finitely.
func TestMicroBucketsCoverDecisionLatencies(t *testing.T) {
	if bottom := MicroBuckets[0]; bottom != 1e-7 {
		t.Fatalf("MicroBuckets start at %vs, want 100ns", bottom)
	}
	if top := MicroBuckets[len(MicroBuckets)-1]; top != 1e-1 {
		t.Fatalf("MicroBuckets top out at %vs, want 0.1s", top)
	}
	r := NewRegistry()
	h := r.Histogram("decide_seconds", MicroBuckets)
	h.Observe(750e-9) // a typical lock-free decision
	h.Observe(3e-3)   // an inline commit (warm re-solve)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`decide_seconds_bucket{le="0.0000005"} 0`,
		`decide_seconds_bucket{le="0.000001"} 1`,
		`decide_seconds_bucket{le="0.0025"} 1`,
		`decide_seconds_bucket{le="0.005"} 2`,
		`decide_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

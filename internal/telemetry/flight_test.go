package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	if f.SampleClient(1) {
		t.Fatal("nil recorder sampled a client")
	}
	f.Record(Event{Kind: EventPlaceAccept})
	if got := f.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if f.Total() != 0 || f.SampleEvery() != 0 {
		t.Fatal("nil totals nonzero")
	}
}

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlight(4, 1)
	for i := 0; i < 10; i++ {
		f.Record(Event{Kind: EventPlaceAccept, Client: int64(i)})
	}
	if f.Total() != 10 {
		t.Fatalf("total = %d, want 10", f.Total())
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		// Oldest first: clients 6,7,8,9 with seq 7..10.
		if e.Client != int64(6+i) || e.Seq != uint64(7+i) {
			t.Fatalf("event %d = client %d seq %d, want client %d seq %d",
				i, e.Client, e.Seq, 6+i, 7+i)
		}
		if e.Time.IsZero() {
			t.Fatal("Record did not stamp Time")
		}
	}
}

func TestFlightSamplingDeterministic(t *testing.T) {
	f1 := NewFlight(16, 8)
	f2 := NewFlight(16, 8)
	var sampled int
	for i := int64(0); i < 1000; i++ {
		if f1.SampleClient(i) != f2.SampleClient(i) {
			t.Fatalf("sampling of client %d differs between identical recorders", i)
		}
		if f1.SampleClient(i) {
			sampled++
		}
	}
	// The hash keeps roughly 1-in-8; allow a generous band.
	if sampled < 60 || sampled > 250 {
		t.Fatalf("1-in-8 sampling kept %d of 1000 clients", sampled)
	}
	// every<=1 records everything.
	all := NewFlight(16, 1)
	for i := int64(0); i < 50; i++ {
		if !all.SampleClient(i) {
			t.Fatalf("unsampled recorder skipped client %d", i)
		}
	}
}

func TestEventKindNamesAndJSON(t *testing.T) {
	want := map[EventKind]string{
		EventPlaceAccept:   "place_accept",
		EventPlaceReject:   "place_reject",
		EventPruneBound:    "prune_bound",
		EventEscalate:      "escalate",
		EventCommitFail:    "commit_fail",
		EventRestoreFail:   "restore_fail",
		EventReconcileMove: "reconcile_move",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), name)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind not unknown")
	}

	f := NewFlight(4, 1)
	f.Record(Event{Kind: EventPruneBound, Client: 7, Cluster: 2, Bound: 3.5, Exact: 2.25,
		Trace: TraceRef{TraceID: 1, SpanID: 2}})
	b, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"kind":"prune_bound"`, `"bound":3.5`, `"span_id":"0000000000000002"`} {
		if !strings.Contains(string(b), frag) {
			t.Fatalf("flight JSON missing %s:\n%s", frag, b)
		}
	}
}

package telemetry

import (
	"context"
	"encoding/json"
	"testing"
)

func TestDeriveIDDeterministicAndSpread(t *testing.T) {
	seen := map[ID]bool{}
	for i := uint64(0); i < 1000; i++ {
		id := deriveID(ID(42), i)
		if id == 0 {
			t.Fatal("derived zero ID (reserved for absent)")
		}
		if id != deriveID(ID(42), i) {
			t.Fatal("deriveID not deterministic")
		}
		if seen[id] {
			t.Fatalf("sibling collision at index %d", i)
		}
		seen[id] = true
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	id := ID(0xDEADBEEF12345678)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef12345678"` {
		t.Fatalf("marshal = %s", b)
	}
	var back ID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip = %x, want %x", uint64(back), uint64(id))
	}
	// Lenient numeric form.
	if err := json.Unmarshal([]byte("7"), &back); err != nil || back != 7 {
		t.Fatalf("numeric unmarshal = %v, %v", back, err)
	}
	if err := json.Unmarshal([]byte(`"not hex"`), &back); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestStartCtxParentLinks(t *testing.T) {
	tr := NewTracer(8)
	root, ctx := tr.StartCtx(context.Background(), "root")
	child, cctx := tr.StartCtx(ctx, "child")
	grand, _ := tr.StartCtx(cctx, "grand")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.ParentID != 0 || r.TraceID != r.SpanID {
		t.Fatalf("root record malformed: %+v", r)
	}
	if c.TraceID != r.TraceID || c.ParentID != r.SpanID {
		t.Fatalf("child not under root: %+v", c)
	}
	if g.TraceID != r.TraceID || g.ParentID != c.SpanID {
		t.Fatalf("grand not under child: %+v", g)
	}
}

func TestStartCtxAtOrderIndependent(t *testing.T) {
	// Two tracers start the same indexed children in opposite orders; the
	// span IDs must match — fan-out span identity is a function of the
	// task index, not of goroutine scheduling.
	ids := func(order []int) map[int]ID {
		tr := NewTracer(8)
		root, ctx := tr.StartCtx(context.Background(), "root")
		out := map[int]ID{}
		for _, i := range order {
			sp, _ := tr.StartCtxAt(ctx, "shard", i)
			out[i] = sp.Ref().SpanID
			sp.End()
		}
		root.End()
		return out
	}
	a, b := ids([]int{0, 1, 2}), ids([]int{2, 0, 1})
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			t.Fatalf("shard %d ID depends on start order: %s vs %s", i, a[i], b[i])
		}
	}

	// Indexed children must not collide with counter-assigned siblings.
	tr := NewTracer(8)
	_, ctx := tr.StartCtx(context.Background(), "root")
	counter, _ := tr.StartCtx(ctx, "seq")
	indexed, _ := tr.StartCtxAt(ctx, "idx", 1)
	if counter.Ref().SpanID == indexed.Ref().SpanID {
		t.Fatal("counter and indexed children collided")
	}
}

func TestContextWithRefCrossProcess(t *testing.T) {
	// Simulate the RPC hop: a span on tracer A, its ref shipped over the
	// wire, rehydrated into a context for tracer B. B's span must join
	// A's trace.
	trA, trB := NewTracerSeeded(8, 1), NewTracerSeeded(8, 2)
	root, _ := trA.StartCtx(context.Background(), "manager.solve")
	wire := root.Ref()

	ctx := ContextWithRef(context.Background(), wire)
	if got := RefFromContext(ctx); got != wire {
		t.Fatalf("RefFromContext = %+v, want %+v", got, wire)
	}
	remote, _ := trB.StartCtx(ctx, "rpc.evaluate")
	remote.End()
	root.End()

	got := trB.Snapshot()[0]
	if got.TraceID != wire.TraceID || got.ParentID != wire.SpanID {
		t.Fatalf("remote span did not join the caller's trace: %+v", got)
	}

	// Zero refs are wire-compatible no-ops: the remote span is a root.
	ctx2 := ContextWithRef(context.Background(), TraceRef{})
	if RefFromContext(ctx2).Valid() {
		t.Fatal("zero ref produced trace context")
	}
}

package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// recordTree runs a tiny two-level trace on a fresh tracer and returns
// the snapshot: root → (child_a → grandchild, child_b).
func recordTree(t *testing.T) []SpanRecord {
	t.Helper()
	tr := NewTracer(16)
	root, ctx := tr.StartCtx(context.Background(), "root")
	a, actx := tr.StartCtx(ctx, "child_a")
	g, _ := tr.StartCtx(actx, "grandchild")
	g.End()
	a.End()
	b, _ := tr.StartCtx(ctx, "child_b")
	b.Attr("k", 3)
	b.End()
	root.End()
	return tr.Snapshot()
}

func TestWriteTraceTree(t *testing.T) {
	var sb strings.Builder
	WriteTraceTree(&sb, recordTree(t))
	out := sb.String()
	for _, want := range []string{"trace ", "root", "├── child_a", "│   └── grandchild", "└── child_b", "k=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	WriteTraceTree(&sb, nil)
	if !strings.Contains(sb.String(), "no spans") {
		t.Fatalf("empty tree output = %q", sb.String())
	}
}

func TestWriteTraceTreeOrphanBecomesRoot(t *testing.T) {
	// A child whose parent was evicted from the ring (or lives in another
	// process's tracer) must still render, as its own root.
	spans := []SpanRecord{
		{Name: "orphan", TraceID: 9, SpanID: 5, ParentID: 1234},
	}
	var sb strings.Builder
	WriteTraceTree(&sb, spans)
	if !strings.Contains(sb.String(), "orphan") {
		t.Fatalf("orphan span dropped:\n%s", sb.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, recordTree(t)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete (X)", e.Name, e.Ph)
		}
		if e.Args["trace_id"] == "" || e.Args["span_id"] == "" {
			t.Fatalf("event %q lacks span identity args: %v", e.Name, e.Args)
		}
	}
	for _, want := range []string{"root", "child_a", "child_b", "grandchild"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q (have %v)", want, names)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file renders span snapshots in two offline-consumable forms: the
// Chrome trace-event JSON that Perfetto / chrome://tracing load
// (cloudalloc -trace-out), and an ASCII tree for /debug/trace?format=tree.

// chromeEvent is one complete ("ph":"X") trace event.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes spans in the Chrome trace-event JSON format.
// Each trace tree gets its own tid so Perfetto renders one lane per
// trace; span/parent IDs and attrs ride in args.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	events := make([]chromeEvent, 0, len(spans))
	lane := map[ID]int{}
	laneOf := func(tid ID) int {
		if l, ok := lane[tid]; ok {
			return l
		}
		l := len(lane) + 1
		lane[tid] = l
		return l
	}
	for _, sp := range spans {
		args := map[string]any{
			"trace_id": sp.TraceID.String(),
			"span_id":  sp.SpanID.String(),
		}
		if sp.ParentID != 0 {
			args["parent_id"] = sp.ParentID.String()
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  float64(sp.Duration) / 1e3,
			Pid:  1,
			Tid:  laneOf(sp.TraceID),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// treeNode is one span plus its resolved children.
type treeNode struct {
	rec  SpanRecord
	kids []*treeNode
}

// buildTraceTrees groups spans by TraceID and links them parent→child.
// Roots (ParentID zero, or parent absent from the snapshot — it may have
// been evicted from the ring, or recorded by another process) come back
// ordered by start time; children are ordered by start time under each
// parent. Spans without IDs (legacy flat records) each form their own
// single-node tree.
func buildTraceTrees(spans []SpanRecord) []*treeNode {
	nodes := make(map[ID]*treeNode, len(spans))
	var all []*treeNode
	for _, sp := range spans {
		n := &treeNode{rec: sp}
		all = append(all, n)
		if sp.SpanID != 0 {
			nodes[sp.SpanID] = n
		}
	}
	var roots []*treeNode
	for _, n := range all {
		if p := n.rec.ParentID; p != 0 {
			if parent, ok := nodes[p]; ok && parent != n {
				parent.kids = append(parent.kids, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	sortNodes := func(ns []*treeNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			if !ns[i].rec.Start.Equal(ns[j].rec.Start) {
				return ns[i].rec.Start.Before(ns[j].rec.Start)
			}
			return ns[i].rec.SpanID < ns[j].rec.SpanID
		})
	}
	sortNodes(roots)
	for _, n := range all {
		sortNodes(n.kids)
	}
	return roots
}

// WriteTraceTree renders spans as indented ASCII trees, one per trace,
// newest-rooted trace last:
//
//	trace 4a2e...  manager.solve  1.24s
//	├── manager.improve_round  612ms  round=0
//	│   ├── rpc.improve  203ms  peer=127.0.0.1:7071
//	...
func WriteTraceTree(w io.Writer, spans []SpanRecord) {
	roots := buildTraceTrees(spans)
	for _, root := range roots {
		fmt.Fprintf(w, "trace %s  %s\n", root.rec.TraceID, formatTreeLine(root.rec))
		writeTreeChildren(w, root, "")
	}
	if len(roots) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
	}
}

func writeTreeChildren(w io.Writer, n *treeNode, prefix string) {
	for i, kid := range n.kids {
		connector, childPrefix := "├── ", prefix+"│   "
		if i == len(n.kids)-1 {
			connector, childPrefix = "└── ", prefix+"    "
		}
		fmt.Fprintf(w, "%s%s%s\n", prefix, connector, formatTreeLine(kid.rec))
		writeTreeChildren(w, kid, childPrefix)
	}
}

func formatTreeLine(sp SpanRecord) string {
	var b strings.Builder
	b.WriteString(sp.Name)
	b.WriteString("  ")
	b.WriteString(sp.Duration.Round(time.Microsecond).String())
	for _, a := range sp.Attrs {
		fmt.Fprintf(&b, "  %s=%v", a.Key, a.Value)
	}
	return b.String()
}

// Package telemetry is the repo's zero-dependency observability layer:
// a concurrent metrics registry (counters, gauges, fixed-bucket
// histograms) exposable in Prometheus text format and as expvar, a
// lightweight span tracer backed by a ring buffer, structured logging
// via log/slog, and an HTTP debug surface (/metrics, /debug/vars,
// /debug/trace, /debug/pprof).
//
// Everything is nil-safe: a nil *Set, *Counter, *Gauge, *Histogram or
// *Tracer turns every operation into an allocation-free no-op, so
// instrumented components pay only a nil check when telemetry is
// disabled (the default). See DESIGN.md §8.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; all methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; all methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add folds a delta into the gauge with a CAS loop.
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + dv)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// bucket i counts observations ≤ upper[i], with an implicit +Inf bucket
// at the end. All hot-path operations are atomic; methods are safe on a
// nil receiver.
type Histogram struct {
	upper   []float64
	counts  []atomic.Int64 // len(upper)+1, last is +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

// DurationBuckets spans 100µs to 10min. The upper decades matter:
// phase timings at the 1M-client scale run minutes (BENCH_scale.json
// records 12m for the full solve on a 1-core host), and before the
// 30–600s buckets were added every such observation collapsed into the
// +Inf overflow bucket, making the histograms useless exactly where
// they are most needed.
var DurationBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// MicroBuckets spans 100ns to 100ms for per-event decision latencies.
// The online service's hot path is a handful of atomic loads — decisions
// land in the sub-microsecond decades where every DurationBuckets
// observation would collapse into the first bucket. The top decades
// overlap DurationBuckets so the occasional inline commit (a warm
// re-solve, milliseconds) still lands in a finite bucket.
var MicroBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

// SizeBuckets spans 64B to 4MB for message-size metrics.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

func newHistogram(upper []float64) *Histogram {
	u := append([]float64(nil), upper...)
	sort.Float64s(u)
	return &Histogram{upper: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few and the slice is sorted; linear scan is branch-
	// predictable and beats binary search at this size.
	idx := len(h.upper)
	for i, ub := range h.upper {
		if v <= ub {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation (0 before any).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Registry holds named metrics. Metric handles are created once
// (get-or-create) and then operated on lock-free; the registry lock is
// only taken on (rare) creation and on export.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	helps     map[string]string // keyed by family (name sans labels)
	published bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		helps:    make(map[string]string),
	}
}

// Name formats a metric name with label pairs, deterministically:
// Name("rpc_calls_total", "op", "evaluate") → rpc_calls_total{op="evaluate"}.
// Pairs must come in key, value order; odd trailing keys are dropped.
func Name(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a full metric name into its family and the label
// body (without braces); labels are empty when the name has none.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// Help registers a description for a metric family, shown as the
// Prometheus # HELP line.
func (r *Registry) Help(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.helps[family] = help
	r.mu.Unlock()
}

// Counter returns the counter with the given full name (create on first
// use). Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given full name (create on first use).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given full name, creating it
// with the given bucket upper bounds on first use (later calls reuse the
// original buckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(buckets) == 0 {
			buckets = DurationBuckets
		}
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// row is one exportable sample.
type row struct {
	family string
	labels string
	kind   string // counter, gauge, histogram
	text   func(w io.Writer, full string)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, families sorted by name, with # HELP/# TYPE headers.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		fam, lab := splitName(name)
		v := c.Value()
		rows = append(rows, row{family: fam, labels: lab, kind: "counter",
			text: func(w io.Writer, full string) { fmt.Fprintf(w, "%s %d\n", full, v) }})
	}
	for name, g := range r.gauges {
		fam, lab := splitName(name)
		v := g.Value()
		rows = append(rows, row{family: fam, labels: lab, kind: "gauge",
			text: func(w io.Writer, full string) { fmt.Fprintf(w, "%s %s\n", full, formatFloat(v)) }})
	}
	for name, h := range r.hists {
		fam, lab := splitName(name)
		h := h
		rows = append(rows, row{family: fam, labels: lab, kind: "histogram",
			text: func(w io.Writer, full string) { writeHistogram(w, fam, lab, h) }})
	}
	helps := make(map[string]string, len(r.helps))
	for k, v := range r.helps {
		helps[k] = v
	}
	r.mu.RUnlock()

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].family != rows[j].family {
			return rows[i].family < rows[j].family
		}
		return rows[i].labels < rows[j].labels
	})
	lastFam := ""
	for _, rw := range rows {
		if rw.family != lastFam {
			if help := helps[rw.family]; help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", rw.family, help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", rw.family, rw.kind)
			lastFam = rw.family
		}
		full := rw.family
		if rw.labels != "" {
			full += "{" + rw.labels + "}"
		}
		rw.text(w, full)
	}
}

// writeHistogram renders one histogram family member: cumulative
// _bucket series (the le label merged into any existing labels), then
// _sum and _count.
func writeHistogram(w io.Writer, family, labels string, h *Histogram) {
	cum := int64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", family, labelPrefix(labels), formatFloat(ub), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, labelPrefix(labels), cum)
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", family, brace, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", family, brace, h.Count())
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// String renders the registry as a JSON object of name → value
// (histograms export {count, sum}), which makes *Registry an expvar.Var.
func (r *Registry) String() string {
	if r == nil {
		return "{}"
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:", n)
		switch {
		case r.counters[n] != nil:
			fmt.Fprintf(&b, "%d", r.counters[n].Value())
		case r.gauges[n] != nil:
			fmt.Fprintf(&b, "%g", r.gauges[n].Value())
		default:
			h := r.hists[n]
			fmt.Fprintf(&b, `{"count":%d,"sum":%g}`, h.Count(), h.Sum())
		}
	}
	b.WriteByte('}')
	return b.String()
}

var _ expvar.Var = (*Registry)(nil)

// PublishExpvar publishes the registry under the given expvar name.
// Safe to call more than once per registry; a second registry reusing a
// taken name is an error (expvar panics on duplicates, which we avoid).
func (r *Registry) PublishExpvar(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.published {
		return nil
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("telemetry: expvar name %q already taken", name)
	}
	expvar.Publish(name, r)
	r.published = true
	return nil
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	set := New(nil)
	set.Counter("requests_total").Add(7)
	sp := set.Start("solve")
	sp.Attr("clients", 10)
	sp.End()
	srv := httptest.NewServer(Handler(set))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "requests_total 7") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get("/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace: code=%d", code)
	}
	var trace struct {
		Total uint64       `json:"total_spans"`
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if trace.Total != 1 || len(trace.Spans) != 1 || trace.Spans[0].Name != "solve" {
		t.Errorf("trace = %+v", trace)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars: code=%d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestHandlerTraceLimit(t *testing.T) {
	set := New(nil)
	for i := 0; i < 5; i++ {
		sp := set.Start("op")
		sp.End()
	}
	srv := httptest.NewServer(Handler(set))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/trace?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trace struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) != 2 {
		t.Errorf("got %d spans, want 2", len(trace.Spans))
	}
}

func TestHandlerNilSet(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: code=%d", path, resp.StatusCode)
		}
	}
}

func TestLoggerHelpers(t *testing.T) {
	if LoggerOr(nil) == nil {
		t.Fatal("LoggerOr(nil) must not be nil")
	}
	var b strings.Builder
	l := NewTextLogger(&b, 0)
	l.Info("hello", "k", 1)
	if !strings.Contains(b.String(), "hello") {
		t.Errorf("log output = %q", b.String())
	}
	var s *Set
	s.Logger().Info("discarded")
}

package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("solve")
	sp.Attr("clients", 250)
	sp.Attr("phase", "greedy")
	time.Sleep(time.Millisecond)
	sp.End()

	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	got := spans[0]
	if got.Name != "solve" || got.Duration <= 0 || len(got.Attrs) != 2 {
		t.Errorf("span = %+v", got)
	}
	if got.Attrs[0].Key != "clients" || got.Attrs[1].Value != "greedy" {
		t.Errorf("attrs = %+v", got.Attrs)
	}
}

// TestRingWraparound fills the buffer past capacity and checks that the
// snapshot holds exactly the newest spans, oldest first.
func TestRingWraparound(t *testing.T) {
	const capacity = 4
	tr := NewTracer(capacity)
	for i := 0; i < 10; i++ {
		sp := tr.Start(fmt.Sprintf("span-%d", i))
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("snapshot len = %d, want %d", len(spans), capacity)
	}
	for i, sp := range spans {
		want := fmt.Sprintf("span-%d", 10-capacity+i)
		if sp.Name != want {
			t.Errorf("spans[%d] = %q, want %q", i, sp.Name, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
}

// TestTracerConcurrent exercises the ring under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("op")
				sp.Attr("worker", w)
				sp.End()
				if i%50 == 0 {
					tr.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 8*200 {
		t.Errorf("total = %d", tr.Total())
	}
	if got := len(tr.Snapshot()); got != 64 {
		t.Errorf("snapshot len = %d", got)
	}
}

func TestDoubleEndIsSingleRecord(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("once")
	sp.End()
	sp.End() // second End must be inert
	if tr.Total() != 1 {
		t.Errorf("total = %d, want 1", tr.Total())
	}
}

package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler builds the debug HTTP surface for a Set:
//
//	/metrics      — Prometheus text exposition of the registry
//	/debug/vars   — expvar JSON (includes the registry when published)
//	/debug/trace  — the tracer's recent spans; ?n=K limits the reply to
//	                the last K spans, ?format=tree renders ASCII trace
//	                trees, ?format=chrome emits Chrome trace-event JSON
//	                (Perfetto-loadable), default is plain JSON
//	/debug/flight — the flight recorder's recent events as JSON
//	                (?n=K limits to the last K events)
//	/debug/pprof/ — the standard net/http/pprof profiles
//
// The same mux is what allocd serves on -debug-addr.
func Handler(s *Set) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if s != nil {
			s.Metrics.WritePrometheus(w)
		}
	})
	if s != nil {
		// Best effort: a second registry reusing the name keeps the
		// process-global expvar page; its own /metrics is unaffected.
		_ = s.Metrics.PublishExpvar("cloudalloc")
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var spans []SpanRecord
		if s != nil {
			spans = s.Tracer.Snapshot()
		}
		spans = lastN(spans, r.URL.Query().Get("n"))
		switch r.URL.Query().Get("format") {
		case "tree":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteTraceTree(w, spans)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, spans)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Total uint64       `json:"total_spans"`
				Spans []SpanRecord `json:"spans"`
			}{Total: s.traceTotal(), Spans: spans})
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		var (
			events []Event
			total  uint64
			every  uint64
		)
		if s != nil {
			f := s.Flight
			events = f.Snapshot()
			total = f.Total()
			every = f.SampleEvery()
		}
		events = lastN(events, r.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total       uint64  `json:"total_events"`
			SampleEvery uint64  `json:"sample_every"`
			Events      []Event `json:"events"`
		}{Total: total, SampleEvery: every, Events: events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// lastN keeps the trailing n entries when the query parameter parses.
func lastN[T any](items []T, nStr string) []T {
	if nStr == "" {
		return items
	}
	if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(items) {
		return items[len(items)-n:]
	}
	return items
}

func (s *Set) traceTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.Tracer.Total()
}

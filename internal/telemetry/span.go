package telemetry

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as any so
// spans can carry counts, profits and peer addresses alike; they must be
// JSON-encodable for /debug/trace.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is a finished span as stored in the tracer's ring buffer.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer records finished spans into a fixed-size ring buffer: cheap,
// bounded, and always holding the most recent activity. A nil *Tracer
// is a valid disabled tracer: Start returns a zero Span whose methods
// are allocation-free no-ops.
type Tracer struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64
}

// DefaultTraceCapacity bounds the ring buffer when none is given.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer retaining the last capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]SpanRecord, 0, capacity)}
}

// Span is an in-flight operation. It is a value type so that starting a
// span on a disabled tracer performs no allocation; call End exactly
// once (deferred ends are fine).
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	attrs []Attr
}

// Start opens a span. On a nil tracer it returns an inert zero Span and
// does not read the clock.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Now()}
}

// Attr annotates the span; a no-op on a disabled span.
func (sp *Span) Attr(key string, value any) {
	if sp.tr == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and commits it to the ring buffer.
func (sp *Span) End() {
	if sp.tr == nil {
		return
	}
	sp.tr.record(SpanRecord{
		Name:     sp.name,
		Start:    sp.start,
		Duration: time.Since(sp.start),
		Attrs:    sp.attrs,
	})
	sp.tr = nil
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else {
		t.buf[t.next] = r
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns the number of spans recorded over the tracer's lifetime,
// including those already overwritten in the ring.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

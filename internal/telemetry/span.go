package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as any so
// spans can carry counts, profits and peer addresses alike; they must be
// JSON-encodable for /debug/trace.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// ID identifies a trace or a span. IDs are derived with the same
// splitmix64 finalizer as internal/parallel.SplitSeed (the constants are
// duplicated here because parallel imports telemetry), so the tree of
// span IDs under a given root is a pure function of the call structure —
// deterministic under any worker count and across processes. The zero ID
// means "absent". JSON encodes IDs as 16-hex-digit strings to survive
// the float64 round-trip of generic JSON consumers.
type ID uint64

// String renders the ID as 16 lowercase hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON encodes the ID as a hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the hex-string form (and bare numbers, for
// leniency toward hand-written fixtures).
func (id *ID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		var n uint64
		if err2 := json.Unmarshal(b, &n); err2 != nil {
			return err
		}
		*id = ID(n)
		return nil
	}
	n, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad ID %q: %w", s, err)
	}
	*id = ID(n)
	return nil
}

// splitmix64 finalizer constants — keep in sync with internal/parallel.
const (
	splitGamma = 0x9E3779B97F4A7C15
	splitMix1  = 0xBF58476D1CE4E5B9
	splitMix2  = 0x94D049BB133111EB
)

// deriveID maps (parent, index) to a child ID via the splitmix64
// finalizer: the same derivation as parallel.SplitSeed, so sibling IDs
// are well-spread and the mapping is deterministic. A zero result is
// nudged so that zero stays reserved for "absent".
func deriveID(parent ID, index uint64) ID {
	z := uint64(parent) + (index+1)*splitGamma
	z = (z ^ (z >> 30)) * splitMix1
	z = (z ^ (z >> 27)) * splitMix2
	z ^= z >> 31
	if z == 0 {
		z = splitGamma
	}
	return ID(z)
}

// TraceRef is the portable identity of a span: the pair that crosses
// process boundaries (it rides in the agentrpc wire request) and links a
// flight-recorder event to the span it happened under. The zero TraceRef
// is "no trace context".
type TraceRef struct {
	TraceID ID `json:"trace_id"`
	SpanID  ID `json:"span_id"`
}

// Valid reports whether the ref carries trace context.
func (r TraceRef) Valid() bool { return r.TraceID != 0 && r.SpanID != 0 }

// spanCtx is the in-process trace context carried through
// context.Context: the current span's identity plus the shared child
// counter that numbers its sequentially-started children.
type spanCtx struct {
	ref  TraceRef
	kids *atomic.Uint64
}

type spanCtxKey struct{}

// ContextWithRef rehydrates trace context received from another process
// (or another goroutine) into a context, so spans started under it
// become children of ref. A zero ref returns ctx unchanged.
func ContextWithRef(ctx context.Context, ref TraceRef) context.Context {
	if !ref.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, spanCtx{ref: ref, kids: new(atomic.Uint64)})
}

// RefFromContext extracts the current span's TraceRef from ctx (zero
// when ctx carries no trace context).
func RefFromContext(ctx context.Context) TraceRef {
	if ctx == nil {
		return TraceRef{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(spanCtx)
	return sc.ref
}

// SpanRecord is a finished span as stored in the tracer's ring buffer.
// TraceID groups the records of one logical operation (e.g. a manager
// round across all agents); ParentID links a record to the span that
// started it, zero for roots.
type SpanRecord struct {
	Name     string        `json:"name"`
	TraceID  ID            `json:"trace_id,omitempty"`
	SpanID   ID            `json:"span_id,omitempty"`
	ParentID ID            `json:"parent_id,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer records finished spans into a fixed-size ring buffer: cheap,
// bounded, and always holding the most recent activity. A nil *Tracer
// is a valid disabled tracer: Start returns a zero Span whose methods
// are allocation-free no-ops.
type Tracer struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64

	seed  uint64        // root-ID derivation seed
	roots atomic.Uint64 // numbers root spans within this tracer
}

// DefaultTraceCapacity bounds the ring buffer when none is given.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer retaining the last capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer { return NewTracerSeeded(capacity, 1) }

// NewTracerSeeded builds a tracer whose root trace IDs derive from seed;
// two processes given distinct seeds cannot collide on root IDs.
func NewTracerSeeded(capacity int, seed uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if seed == 0 {
		seed = 1
	}
	return &Tracer{buf: make([]SpanRecord, 0, capacity), seed: seed}
}

// Span is an in-flight operation. It is a value type so that starting a
// span on a disabled tracer performs no allocation; call End exactly
// once (deferred ends are fine).
type Span struct {
	tr     *Tracer
	name   string
	start  time.Time
	attrs  []Attr
	ref    TraceRef
	parent ID
	kids   *atomic.Uint64
}

// Ref returns the span's identity (zero on a disabled span) — what a
// caller forwards across a process boundary.
func (sp *Span) Ref() TraceRef { return sp.ref }

// Start opens a root span with a fresh trace ID. On a nil tracer it
// returns an inert zero Span and does not read the clock.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	traceID := deriveID(ID(t.seed), t.roots.Add(1)-1)
	return Span{
		tr: t, name: name, start: time.Now(),
		ref:  TraceRef{TraceID: traceID, SpanID: traceID},
		kids: new(atomic.Uint64),
	}
}

// StartCtx opens a span as a child of the span in ctx (a fresh root when
// ctx carries none) and returns a derived context under which further
// StartCtx calls nest. On a nil tracer it returns an inert Span and ctx
// unchanged, without reading the clock — the disabled path stays
// allocation-free.
func (t *Tracer) StartCtx(ctx context.Context, name string) (Span, context.Context) {
	if t == nil {
		return Span{}, ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanCtxKey{}).(spanCtx)
	sp := t.startUnder(parent, name, 0, false)
	return sp, context.WithValue(ctx, spanCtxKey{}, spanCtx{ref: sp.ref, kids: sp.kids})
}

// StartCtxAt is StartCtx with an explicit child index instead of the
// parent's running counter: fan-out sites (parallel.For workers, shard
// loops) pass their task index so the child span ID is independent of
// scheduling order. Indexes live in a separate namespace from counter-
// assigned ones, so mixing both under one parent cannot collide.
func (t *Tracer) StartCtxAt(ctx context.Context, name string, index int) (Span, context.Context) {
	if t == nil {
		return Span{}, ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanCtxKey{}).(spanCtx)
	sp := t.startUnder(parent, name, uint64(index), true)
	return sp, context.WithValue(ctx, spanCtxKey{}, spanCtx{ref: sp.ref, kids: sp.kids})
}

// indexedChildBit separates explicitly-indexed children from counter-
// numbered ones in the derivation space.
const indexedChildBit = uint64(1) << 62

func (t *Tracer) startUnder(parent spanCtx, name string, index uint64, indexed bool) Span {
	sp := Span{tr: t, name: name, start: time.Now(), kids: new(atomic.Uint64)}
	if parent.ref.Valid() {
		n := index | indexedChildBit
		if !indexed {
			if parent.kids != nil {
				n = parent.kids.Add(1) - 1
			} else {
				n = 0
			}
		}
		sp.ref = TraceRef{
			TraceID: parent.ref.TraceID,
			SpanID:  deriveID(parent.ref.SpanID, n),
		}
		sp.parent = parent.ref.SpanID
		return sp
	}
	traceID := deriveID(ID(t.seed), t.roots.Add(1)-1)
	sp.ref = TraceRef{TraceID: traceID, SpanID: traceID}
	return sp
}

// Attr annotates the span; a no-op on a disabled span.
func (sp *Span) Attr(key string, value any) {
	if sp.tr == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and commits it to the ring buffer.
func (sp *Span) End() {
	if sp.tr == nil {
		return
	}
	sp.tr.record(SpanRecord{
		Name:     sp.name,
		TraceID:  sp.ref.TraceID,
		SpanID:   sp.ref.SpanID,
		ParentID: sp.parent,
		Start:    sp.start,
		Duration: time.Since(sp.start),
		Attrs:    sp.attrs,
	})
	sp.tr = nil
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else {
		t.buf[t.next] = r
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns the number of spans recorded over the tracer's lifetime,
// including those already overwritten in the ring.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

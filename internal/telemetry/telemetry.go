package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// Set bundles the three observability facilities a component is handed:
// metrics, tracing and structured logging. A nil *Set disables all
// three at zero cost — every accessor below is safe on a nil receiver
// and returns a nil (no-op) handle, so components resolve their metric
// handles once at construction and the hot path pays only nil checks.
type Set struct {
	Metrics *Registry
	Tracer  *Tracer
	Log     *slog.Logger
	Flight  *Flight
}

// New builds a fully enabled Set: fresh registry, default-capacity
// tracer, default-capacity unsampled flight recorder, and the given
// logger (the no-op logger when nil).
func New(log *slog.Logger) *Set {
	return &Set{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(0),
		Log:     log,
		Flight:  NewFlight(0, 1),
	}
}

// Counter resolves a counter handle (nil when disabled).
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge handle (nil when disabled).
func (s *Set) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram resolves a histogram handle (nil when disabled).
func (s *Set) Histogram(name string, buckets []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Metrics.Histogram(name, buckets)
}

// Start opens a root span on the set's tracer (inert on a disabled set).
func (s *Set) Start(name string) Span {
	if s == nil {
		return Span{}
	}
	return s.Tracer.Start(name)
}

// StartCtx opens a span as a child of the span in ctx and returns the
// derived context (inert, ctx unchanged, on a disabled set).
func (s *Set) StartCtx(ctx context.Context, name string) (Span, context.Context) {
	if s == nil {
		return Span{}, ctx
	}
	return s.Tracer.StartCtx(ctx, name)
}

// FlightRecorder returns the set's flight recorder (nil when disabled);
// a nil *Flight is itself a valid no-op recorder.
func (s *Set) FlightRecorder() *Flight {
	if s == nil {
		return nil
	}
	return s.Flight
}

// Enabled reports whether the set records anything at all.
func (s *Set) Enabled() bool { return s != nil }

// Logger returns the set's logger, falling back to the no-op logger so
// callers never nil-check before logging.
func (s *Set) Logger() *slog.Logger {
	if s == nil || s.Log == nil {
		return NopLogger()
	}
	return s.Log
}

// discardHandler drops every record (log/slog gained a built-in discard
// handler only after the module's Go floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards everything.
func NopLogger() *slog.Logger { return nopLogger }

// LoggerOr returns l, or the no-op logger when l is nil — the standard
// way for a component to accept an optional injected logger.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// NewTextLogger builds a slog text logger writing to w at the given
// level — what the cmds install behind their -debug / -v flags.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

package telemetry

import (
	"context"
	"testing"
	"time"
)

// The solver's placement loop runs these paths per client per candidate:
// a disabled tracer's StartCtx and a sampled-out flight check must cost a
// nil/hash check and nothing else — no allocation, no clock read.

func TestDisabledTracerAllocFree(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		sp, c := tr.StartCtx(ctx, "solver.greedy")
		sp.Attr("clients", 1)
		sp.End()
		_ = c
	}); n != 0 {
		t.Fatalf("disabled tracer StartCtx allocates %.1f/op", n)
	}
	var set *Set
	if n := testing.AllocsPerRun(1000, func() {
		sp, c := set.StartCtx(ctx, "solver.greedy")
		sp.End()
		_ = c
	}); n != 0 {
		t.Fatalf("disabled set StartCtx allocates %.1f/op", n)
	}
}

func TestSampledOutFlightAllocFree(t *testing.T) {
	f := NewFlight(16, 1000)
	// Find a client the 1-in-1000 hash leaves out.
	out := int64(-1)
	for i := int64(0); i < 2000; i++ {
		if !f.SampleClient(i) {
			out = i
			break
		}
	}
	if out < 0 {
		t.Fatal("sampling kept every client")
	}
	if n := testing.AllocsPerRun(1000, func() {
		// The hot-path pattern: gate on the sample before building the
		// event, so a sampled-out client never constructs one.
		if f.SampleClient(out) {
			f.Record(Event{Kind: EventPlaceAccept, Client: out})
		}
	}); n != 0 {
		t.Fatalf("sampled-out flight path allocates %.1f/op", n)
	}
	var nilF *Flight
	if n := testing.AllocsPerRun(1000, func() {
		if nilF.SampleClient(3) {
			nilF.Record(Event{Kind: EventPlaceAccept, Client: 3})
		}
	}); n != 0 {
		t.Fatalf("nil flight path allocates %.1f/op", n)
	}
}

func BenchmarkStartCtxDisabled(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, _ := tr.StartCtx(ctx, "solver.greedy")
		sp.End()
	}
}

func BenchmarkStartCtxEnabled(b *testing.B) {
	tr := NewTracer(1024)
	root, ctx := tr.StartCtx(context.Background(), "root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, _ := tr.StartCtx(ctx, "solver.round")
		sp.End()
	}
}

func BenchmarkFlightSampledOut(b *testing.B) {
	f := NewFlight(1024, 1000)
	out := int64(-1)
	for i := int64(0); i < 2000; i++ {
		if !f.SampleClient(i) {
			out = i
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.SampleClient(out) {
			f.Record(Event{Kind: EventPlaceAccept, Client: out})
		}
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(1024, 1)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Record(Event{Kind: EventPlaceAccept, Client: int64(i), Time: now})
	}
}

package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// The flight recorder is the "why" companion to the span tracer's "how
// long": a bounded ring of typed, structured solver decisions — a
// placement accepted or rejected and for what reason, the bound vs the
// exact gain at a pruning decision, an escalation to a full scan, a
// commit or restore failure, a reconciliation move. At 100k–1M clients
// recording every decision would be both too hot and too big, so events
// that carry a client ID are sampled 1-in-N by a deterministic hash of
// the ID: the same clients are recorded at any worker or shard count,
// so two runs of the same instance produce comparable recordings.

// EventKind types a flight-recorder event.
type EventKind uint8

const (
	// EventPlaceAccept: a client was placed; Cluster is the chosen
	// cluster, Delta the profit gain.
	EventPlaceAccept EventKind = iota + 1
	// EventPlaceReject: no cluster accepted the client; Reason says why
	// (e.g. "no_gain", "admission").
	EventPlaceReject
	// EventPruneBound: the candidate index pruned a cluster scan; Bound
	// is the index's upper bound, Exact the gain of the cluster actually
	// chosen (bound-vs-exact gap at the pruning decision).
	EventPruneBound
	// EventEscalate: the pruned candidate set yielded nothing and the
	// solver fell back to a full exact scan.
	EventEscalate
	// EventCommitFail: a reassignment move failed transactional
	// revalidation at commit time and was dropped.
	EventCommitFail
	// EventRestoreFail: rolling a client back to its previous placement
	// failed — the client is left unassigned (counted, never silent).
	EventRestoreFail
	// EventReconcileMove: the serial whole-cloud reconciliation pass
	// moved a client across shard boundaries; Delta is the gain.
	EventReconcileMove
)

var eventKindNames = [...]string{
	0:                  "unknown",
	EventPlaceAccept:   "place_accept",
	EventPlaceReject:   "place_reject",
	EventPruneBound:    "prune_bound",
	EventEscalate:      "escalate",
	EventCommitFail:    "commit_fail",
	EventRestoreFail:   "restore_fail",
	EventReconcileMove: "reconcile_move",
}

// String returns the snake_case name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind by name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Event is one recorded solver decision. Client and Cluster are -1 when
// the event is not scoped to one; Trace links the event to the span tree
// it happened under.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    EventKind `json:"kind"`
	Client  int64     `json:"client"`
	Cluster int64     `json:"cluster"`
	Reason  string    `json:"reason,omitempty"`
	Bound   float64   `json:"bound,omitempty"`
	Exact   float64   `json:"exact,omitempty"`
	Delta   float64   `json:"delta,omitempty"`
	Trace   TraceRef  `json:"trace"`
}

// Flight is the bounded event ring. A nil *Flight is a valid disabled
// recorder: SampleClient reports false and Record is an allocation-free
// no-op, so instrumented hot loops pay only a nil check.
type Flight struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64

	every uint64 // record 1-in-every clients; 1 = record all
	seed  uint64
}

// DefaultFlightCapacity bounds the ring when none is given.
const DefaultFlightCapacity = 8192

// NewFlight builds a recorder retaining the last capacity events
// (DefaultFlightCapacity when capacity <= 0) and sampling 1-in-every
// client-scoped events (every <= 1 records all).
func NewFlight(capacity, every int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	if every < 1 {
		every = 1
	}
	return &Flight{buf: make([]Event, 0, capacity), every: uint64(every), seed: 1}
}

// SampleEvery returns the 1-in-N sampling stride (0 on nil).
func (f *Flight) SampleEvery() uint64 {
	if f == nil {
		return 0
	}
	return f.every
}

// SampleClient reports whether events for this client should be
// recorded. The decision hashes the client ID with the recorder's seed
// (splitmix64 finalizer), so it is a pure function of the ID — the same
// clients are sampled regardless of worker count, shard layout, or the
// order decisions happen in. Nil and disabled recorders report false.
func (f *Flight) SampleClient(client int64) bool {
	if f == nil {
		return false
	}
	if f.every <= 1 {
		return true
	}
	return uint64(deriveID(ID(f.seed), uint64(client)))%f.every == 0
}

// Record commits an event, stamping Seq and (when zero) Time. Callers
// gate client-scoped events behind SampleClient; rare events (commit or
// restore failures) are recorded unconditionally.
func (f *Flight) Record(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.total++
	e.Seq = f.total
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % cap(f.buf)
	}
	f.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Total returns the number of events recorded over the recorder's
// lifetime, including those already overwritten in the ring.
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
